// distributed runs the genuine distributed-memory implementations of all
// eight NPB kernels over simmpi ranks, verifies each against its serial
// counterpart, and prints the MPInside-style profile of one of them —
// the repository's two layers (real computation, virtual time) in one
// place.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math"

	"maia/internal/npb"
	"maia/internal/simmpi"
)

func main() {
	const ranks = 4
	fmt.Printf("all eight NPB kernels as real MPI programs on %d ranks:\n\n", ranks)

	ok := func(name string, match bool, detail string) {
		verdict := "MATCHES serial"
		if !match {
			verdict = "DIVERGES"
		}
		fmt.Printf("  %-3s %-15s %s\n", name, verdict, detail)
	}

	// EP: batch split + allreduce.
	epSer, err := npb.RunEPSerial(1 << 20)
	if err != nil {
		log.Fatal(err)
	}
	epPar, err := npb.RunEPMPI(1<<20, ranks)
	if err != nil {
		log.Fatal(err)
	}
	ok("EP", epPar.Accepted == epSer.Accepted && math.Abs(epPar.Sx-epSer.Sx) < 1e-9,
		fmt.Sprintf("accepted=%d", epPar.Accepted))

	// CG: row-partitioned matvec.
	m := npb.MakeCGMatrix(600, 6)
	cgSer, err := npb.RunCG(m, 10, 3, nil)
	if err != nil {
		log.Fatal(err)
	}
	cgPar, err := npb.RunCGMPI(m, 10, 3, ranks)
	if err != nil {
		log.Fatal(err)
	}
	ok("CG", math.Abs(cgPar.Zeta-cgSer.Zeta) < 1e-9*math.Abs(cgSer.Zeta),
		fmt.Sprintf("zeta=%.8f", cgPar.Zeta))

	// MG: slab halos + coarse gather.
	mgSer, err := npb.RunMG(16, 3, nil, false)
	if err != nil {
		log.Fatal(err)
	}
	mgPar, err := npb.RunMGMPI(16, 3, ranks)
	if err != nil {
		log.Fatal(err)
	}
	mgOK := true
	for c := range mgSer.ResidualNorms {
		if math.Abs(mgPar.ResidualNorms[c]-mgSer.ResidualNorms[c]) > 1e-10*mgSer.ResidualNorms[c] {
			mgOK = false
		}
	}
	ok("MG", mgOK, fmt.Sprintf("final residual=%.3e", mgPar.ResidualNorms[2]))

	// FT: slab decomposition + all-to-all transpose.
	ftSer, err := npb.RunFT(16, 8, 16, 2, nil)
	if err != nil {
		log.Fatal(err)
	}
	ftPar, err := npb.RunFTMPI(16, 8, 16, 2, ranks)
	if err != nil {
		log.Fatal(err)
	}
	d := ftSer.Checksums[1] - ftPar.Checksums[1]
	ok("FT", math.Hypot(real(d), imag(d)) < 1e-9,
		fmt.Sprintf("checksum=(%.3f,%.3f)", real(ftPar.Checksums[1]), imag(ftPar.Checksums[1])))

	// IS: bucket exchange.
	keys := npb.ISKeys(1<<12, 1<<8)
	isSer, err := npb.RunIS(keys, 1<<8, 10, nil)
	if err != nil {
		log.Fatal(err)
	}
	_ = isSer
	isPar, err := npb.RunISMPI(1<<12, 1<<8, 10, ranks)
	if err != nil {
		log.Fatal(err)
	}
	isOK := len(isPar.Sorted) == len(isSer.Sorted)
	for i := range isSer.Sorted {
		if isPar.Sorted[i] != isSer.Sorted[i] {
			isOK = false
			break
		}
	}
	ok("IS", isOK, fmt.Sprintf("%d keys sorted", len(isPar.Sorted)))

	// BT / LU / SP: pipelined line solves and wavefronts.
	for _, k := range []struct {
		name   string
		serial func() ([]float64, error)
		mpi    func() ([]float64, error)
	}{
		{"BT", func() ([]float64, error) { return npb.RunBT(10, 3, nil) },
			func() ([]float64, error) { return npb.RunBTMPI(10, 3, ranks) }},
		{"LU", func() ([]float64, error) { return npb.RunLU(8, 3, nil) },
			func() ([]float64, error) { return npb.RunLUMPI(8, 3, ranks) }},
		{"SP", func() ([]float64, error) { return npb.RunSP(12, 3, nil) },
			func() ([]float64, error) { return npb.RunSPMPI(12, 3, ranks) }},
	} {
		ser, err := k.serial()
		if err != nil {
			log.Fatal(err)
		}
		par, err := k.mpi()
		if err != nil {
			log.Fatal(err)
		}
		match := true
		for s := range ser {
			if math.Abs(par[s]-ser[s]) > 1e-12*math.Max(ser[s], 1e-30) {
				match = false
			}
		}
		ok(k.name, match, fmt.Sprintf("final norm=%.6f", par[len(par)-1]))
	}

	// The virtual-time layer: profile one of the runs MPInside-style.
	fmt.Println("\nMPInside-style profile of the CG run (rank 0):")
	w, err := simmpi.NewWorld(simmpi.Config{Ranks: simmpi.HostPlacement(ranks, 1)})
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Run(func(r *simmpi.Rank) {
		// Re-run one CG iteration's communication inline for the profile.
		for step := 0; step < 25; step++ {
			r.AllreduceSum(1)
			r.Allgather(make([]byte, 600/ranks*8))
		}
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Print(simmpi.FormatProfile(w.Profiles()[0]))
	fmt.Printf("summary: %v\n", w.Summarize())
}
