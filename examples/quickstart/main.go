// Quickstart: build the simulated Maia node, measure its memory system,
// and price one benchmark (NPB MG, whose kernel really runs first) in
// three of the paper's programming modes — native host, native Phi, and
// offload. (examples/cfd covers the fourth, symmetric mode.)
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"maia/internal/core"
	"maia/internal/machine"
	"maia/internal/memsim"
	"maia/internal/npb"
	"maia/internal/simomp"
)

func main() {
	// 1. The machine: one Maia node — two Sandy Bridge sockets plus two
	// Xeon Phi 5110P cards.
	node := machine.NewNode()
	fmt.Printf("node: %d host cores (%.0f GF peak) + %d x %d Phi cores (%.0f GF peak each)\n",
		node.HostCores(), node.HostPeakGflops(),
		node.Phis, node.PhiProc.Cores, node.PhiPeakGflops())

	// 2. The memory system: STREAM triad, like the paper's Figure 4.
	cfg := memsim.DefaultStreamConfig()
	host := machine.HostPartition(node, 1)
	phi := machine.PhiThreadsPartition(node, machine.Phi0, 118)
	fmt.Printf("STREAM triad: host %.0f GB/s, Phi(118t) %.0f GB/s\n",
		memsim.TriadBandwidth(host, cfg), memsim.TriadBandwidth(phi, cfg))

	// ...and the kernels are real: run an actual triad.
	a, b, c := make([]float64, 1<<16), make([]float64, 1<<16), make([]float64, 1<<16)
	for i := range b {
		b[i], c[i] = float64(i), 2.0
	}
	if err := memsim.Triad(a, b, c, 3.0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triad check: a[10] = %.0f (want 16)\n", a[10])

	// 3. Run real NPB MG (small grid) through the OpenMP runtime: the
	// multigrid kernel genuinely solves a Poisson problem.
	team := simomp.NewTeam(simomp.New(machine.HostCoresPartition(node, 8, 1)))
	res, err := npb.RunMG(32, 4, team, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MG V-cycle residuals (32^3 grid): %.3g -> %.3g over %d cycles\n",
		res.ResidualNorms[0], res.ResidualNorms[len(res.ResidualNorms)-1],
		len(res.ResidualNorms))

	// 4. Price paper-scale runs (class C) with the execution model: the
	// paper's central comparison in three modes.
	model := core.DefaultModel()
	hostRun, err := npb.OMPTime(model, npb.MG, npb.ClassC, host)
	if err != nil {
		log.Fatal(err)
	}
	phiRun, err := npb.OMPTime(model, npb.MG, npb.ClassC,
		machine.PhiThreadsPartition(node, machine.Phi0, 177))
	if err != nil {
		log.Fatal(err)
	}
	off, err := npb.MGOffload(model, npb.ClassC, node, npb.OffloadWhole)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MG class C: native host %.1f GF | native Phi(177t) %.1f GF | offload(whole) %.1f GF\n",
		hostRun.Gflops, phiRun.Gflops, off.Gflops)
	fmt.Println("=> the Phi wins MG natively (bandwidth-bound, unit stride); offload drowns in PCIe transfers.")
}
