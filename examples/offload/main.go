// offload is a tuning study of the offload programming mode (Sections
// 6.7 and 6.9.1.4-6.9.1.7): how granularity decides whether offloading
// pays, and what each invocation costs.
//
// Run with:
//
//	go run ./examples/offload
package main

import (
	"fmt"
	"log"

	"maia/internal/core"
	"maia/internal/machine"
	"maia/internal/npb"
	"maia/internal/offload"
	"maia/internal/pcie"
	"maia/internal/vclock"
)

func main() {
	node := machine.NewNode()
	model := core.DefaultModel()

	// The raw pipe: offload-mode PCIe bandwidth vs transfer size
	// (Figure 18), including the packet-framing ceiling.
	dma := pcie.DefaultDMAConfig()
	fmt.Println("offload PCIe bandwidth (host -> Phi0):")
	for _, size := range []int{4 << 10, 64 << 10, 1 << 20, 64 << 20} {
		fmt.Printf("  %8d B: %5.2f GB/s\n", size, pcie.OffloadBandwidth(dma, pcie.HostPhi0, size))
	}
	fmt.Printf("framing ceiling: %.1f GB/s at 128 B payloads (%.0f%% efficiency)\n",
		8.0*pcie.PacketEfficiency(128), 100*pcie.PacketEfficiency(128))

	// Granularity: moving the same data in many small offloads vs one
	// large one.
	const total = 256 << 20
	for _, pieces := range []int{1, 16, 256, 4096} {
		eng := offload.NewEngine(offload.DefaultConfig())
		var sum vclock.Time
		for i := 0; i < pieces; i++ {
			t, err := eng.Offload(int64(total/pieces), int64(total/pieces), 0, nil)
			if err != nil {
				log.Fatal(err)
			}
			sum += t
		}
		fmt.Printf("  %4d offloads of %s: total %v\n", pieces, mb(total/pieces), sum)
	}

	// The paper's experiment: NPB MG offloaded at three granularities
	// (Figures 25-27), with the OFFLOAD_REPORT-style ledger.
	fmt.Println("\nMG class C offload variants:")
	for _, v := range npb.MGOffloadVariants() {
		r, err := npb.MGOffload(model, npb.ClassC, node, v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28v %6.2f GF | %s\n", v, r.Gflops, r.Report)
	}
	fmt.Println("=> granularity decides everything: offload the whole computation or stay native.")
}

func mb(b int) string {
	if b >= 1<<20 {
		return fmt.Sprintf("%d MB", b>>20)
	}
	return fmt.Sprintf("%d KB", b>>10)
}
