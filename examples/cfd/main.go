// cfd runs the two production-application stand-ins end to end: the real
// mini-Cart3D Euler solver and the real mini-OVERFLOW multi-zone solver
// (serial, OpenMP, and genuine MPI over simmpi ranks), then prices the
// paper-scale cases of Figures 21-23.
//
// Run with:
//
//	go run ./examples/cfd
package main

import (
	"fmt"
	"log"

	"maia/internal/apps/cart3d"
	"maia/internal/apps/overflow"
	"maia/internal/core"
	"maia/internal/machine"
	"maia/internal/pcie"
	"maia/internal/simomp"
)

func main() {
	node := machine.NewNode()
	model := core.DefaultModel()

	// --- Cart3D: a real finite-volume Euler solve -------------------
	s, err := cart3d.NewSolver(16, 16, 16)
	if err != nil {
		log.Fatal(err)
	}
	s.AddPressurePulse(0.1)
	before := s.Totals()
	team := simomp.NewTeam(simomp.New(machine.HostCoresPartition(node, 8, 1)))
	for i := 0; i < 10; i++ {
		s.Step(s.StableDt(0.4), team)
	}
	after := s.Totals()
	fmt.Printf("cart3d: 10 RK2 steps on 16^3; mass drift %.2e (conserved)\n",
		after[0]-before[0])

	// Figure 21 at paper scale: OneraM6, 6M cells.
	host, phi := cart3d.Fig21(model, node)
	best := cart3d.Best(phi)
	fmt.Printf("cart3d OneraM6: host 16t %.1f GF; best Phi %.1f GF at %d threads (host/Phi %.2fx)\n",
		host.Gflops, best.Gflops, best.Partition.Threads(), host.Gflops/best.Gflops)

	// --- OVERFLOW: a real multi-zone implicit solve, serial vs MPI ---
	sizes := []int{10, 8, 12, 8}
	serial, err := overflow.RunMPI(sizes, 0.05, 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	mpi, err := overflow.RunMPI(sizes, 0.05, 3, 3)
	if err != nil {
		log.Fatal(err)
	}
	maxDiff := 0.0
	for z := range serial {
		if d := abs(serial[z] - mpi[z]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("overflow: 4 overset zones, 3 steps; 3-rank MPI vs serial max diff %.2e\n", maxDiff)

	// Figure 22 at paper scale: the (ranks x threads) sweep.
	hostT, phiT, err := overflow.Fig22(model, node)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overflow DLRF6-Medium: host 16x1 %.3f s/step, 1x16 %.3f; Phi 8x28 %.3f, 4x14 %.3f\n",
		hostT[overflow.Combo{Ranks: 16, Threads: 1}].Seconds(),
		hostT[overflow.Combo{Ranks: 1, Threads: 16}].Seconds(),
		phiT[overflow.Combo{Ranks: 8, Threads: 28}].Seconds(),
		phiT[overflow.Combo{Ranks: 4, Threads: 14}].Seconds())

	// Figure 23: symmetric host+Phi0+Phi1 with both software stacks.
	hostOnly, err := overflow.HostOnlyStepTime(model, node)
	if err != nil {
		log.Fatal(err)
	}
	cfg := overflow.SymmetricConfig{
		HostCombo: overflow.Combo{Ranks: 16, Threads: 1},
		PhiCombo:  overflow.Combo{Ranks: 8, Threads: 28},
	}
	cfg.Software = pcie.PreUpdate
	pre, err := overflow.SymmetricStepTime(model, node, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Software = pcie.PostUpdate
	post, err := overflow.SymmetricStepTime(model, node, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overflow DLRF6-Large symmetric: pre %.3f, post %.3f s/step (gain %+.1f%%); vs host-only %.3f (%.2fx)\n",
		pre.Seconds(), post.Seconds(), (pre.Seconds()/post.Seconds()-1)*100,
		hostOnly.Seconds(), hostOnly.Seconds()/post.Seconds())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
