// npbsweep reproduces the paper's NPB study interactively: the OpenMP
// thread-placement sweep of Figure 19 and the MPI rank sweep of
// Figure 20, including FT's out-of-memory failure on the Phi.
//
// Run with:
//
//	go run ./examples/npbsweep
package main

import (
	"errors"
	"fmt"
	"log"

	"maia/internal/core"
	"maia/internal/machine"
	"maia/internal/npb"
)

func main() {
	model := core.DefaultModel()
	node := machine.NewNode()

	fmt.Println("NPB class C, OpenMP (Gflop/s): host 16t vs Phi at 1-4 threads/core")
	for _, b := range npb.Fig19Benchmarks() {
		host, phi, err := npb.OMPThreadSweep(model, b, npb.ClassC, node)
		if err != nil {
			log.Fatal(err)
		}
		best := npb.BestPhi(phi)
		verdict := "host wins"
		if best.Gflops > host.Gflops {
			verdict = "PHI WINS"
		}
		fmt.Printf("  %-3v host %6.1f | phi 59t %6.1f  118t %6.1f  177t %6.1f  236t %6.1f | best@%dt/core (%s)\n",
			b, host.Gflops, phi[0].Gflops, phi[1].Gflops, phi[2].Gflops, phi[3].Gflops,
			best.Partition.ThreadsPerCore, verdict)
	}

	fmt.Println("\nNPB class C, MPI (Gflop/s): Phi rank counts per the paper's constraints")
	for _, b := range []npb.Benchmark{npb.CG, npb.MG, npb.FT, npb.LU} {
		sweep(model, node, b, []int{64, 128})
	}
	for _, b := range []npb.Benchmark{npb.BT, npb.SP} {
		sweep(model, node, b, []int{64, 121, 169, 225})
	}

	fmt.Println("\nwhy FT fails: the paper says it needs ~10 GB but the card has 8 GB:")
	mem, err := npb.MemoryBytes(npb.FT, npb.ClassC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  modeled FT.C footprint: %.1f GB (5 complex arrays of 512^3)\n", float64(mem)/(1<<30))
}

func sweep(model core.Model, node *machine.Node, b npb.Benchmark, ranks []int) {
	host, err := npb.MPIRun(model, b, npb.ClassC, machine.Host, 16, node)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-3v host(16) %6.1f |", b, host.Gflops)
	for _, r := range ranks {
		res, err := npb.MPIRun(model, b, npb.ClassC, machine.Phi0, r, node)
		if errors.Is(err, npb.ErrOOM) {
			fmt.Printf(" phi(%d) OOM |", r)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" phi(%d) %6.1f |", r, res.Gflops)
	}
	fmt.Println()
}
