// Benchmarks: one per reproduced table/figure (running the experiment
// end to end through the harness), plus ablations for the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
package main_test

import (
	"io"
	"testing"

	"maia/internal/apps/cart3d"
	"maia/internal/apps/overflow"
	"maia/internal/core"
	"maia/internal/harness"
	"maia/internal/machine"
	"maia/internal/memsim"
	"maia/internal/npb"
	"maia/internal/pcie"
	"maia/internal/simmpi"
	"maia/internal/simomp"
)

// benchExperiment runs one harness experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.Paper().ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	env := harness.DefaultEnv(harness.WithQuick(true))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1SystemCharacteristics(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig04STREAM(b *testing.B)                 { benchExperiment(b, "fig4") }
func BenchmarkFig05MemoryLatency(b *testing.B)          { benchExperiment(b, "fig5") }
func BenchmarkFig06BandwidthPerCore(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkFig07MPILatencyPCIe(b *testing.B)         { benchExperiment(b, "fig7") }
func BenchmarkFig08MPIBandwidthPCIe(b *testing.B)       { benchExperiment(b, "fig8") }
func BenchmarkFig09UpdateGain(b *testing.B)             { benchExperiment(b, "fig9") }
func BenchmarkFig10SendRecv(b *testing.B)               { benchExperiment(b, "fig10") }
func BenchmarkFig11Bcast(b *testing.B)                  { benchExperiment(b, "fig11") }
func BenchmarkFig12Allreduce(b *testing.B)              { benchExperiment(b, "fig12") }
func BenchmarkFig13Allgather(b *testing.B)              { benchExperiment(b, "fig13") }
func BenchmarkFig14Alltoall(b *testing.B)               { benchExperiment(b, "fig14") }
func BenchmarkFig15OMPSync(b *testing.B)                { benchExperiment(b, "fig15") }
func BenchmarkFig16OMPSched(b *testing.B)               { benchExperiment(b, "fig16") }
func BenchmarkFig17IO(b *testing.B)                     { benchExperiment(b, "fig17") }
func BenchmarkFig18OffloadBW(b *testing.B)              { benchExperiment(b, "fig18") }
func BenchmarkFig19NPBOpenMP(b *testing.B)              { benchExperiment(b, "fig19") }
func BenchmarkFig20NPBMPI(b *testing.B)                 { benchExperiment(b, "fig20") }
func BenchmarkFig21Cart3D(b *testing.B)                 { benchExperiment(b, "fig21") }
func BenchmarkFig22Overflow(b *testing.B)               { benchExperiment(b, "fig22") }
func BenchmarkFig23OverflowSymmetric(b *testing.B)      { benchExperiment(b, "fig23") }
func BenchmarkFig24LoopCollapse(b *testing.B)           { benchExperiment(b, "fig24") }
func BenchmarkFig25MGModes(b *testing.B)                { benchExperiment(b, "fig25") }
func BenchmarkFig26OffloadOverhead(b *testing.B)        { benchExperiment(b, "fig26") }
func BenchmarkFig27OffloadCost(b *testing.B)            { benchExperiment(b, "fig27") }

// --- Ablations: the design choices behind the headline effects --------

// The GDDR5 open-bank limit: Figure 4's drop beyond 118 threads.
func BenchmarkAblationBankLimit(b *testing.B) {
	node := machine.NewNode()
	threads := []int{59, 118, 177, 236}
	with := memsim.DefaultStreamConfig()
	without := memsim.StreamConfig{BankLimit: false}
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range memsim.StreamCurve(node, machine.Phi0, threads, with) {
			sink += p.TriadGBs
		}
		for _, p := range memsim.StreamCurve(node, machine.Phi0, threads, without) {
			sink -= p.TriadGBs
		}
	}
	_ = sink
}

// The SCIF provider switch at 256 KB: Figures 8-9's large-message gain.
func BenchmarkAblationSCIFSwitch(b *testing.B) {
	withSwitch := pcie.NewStack(pcie.PostUpdate)
	noSwitch := pcie.NewStack(pcie.PostUpdate)
	cfg := pcie.DefaultDAPLConfig()
	cfg.ProviderSwitchBytes = 1 << 30
	noSwitch.SetDAPLConfig(cfg)
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for m := 1; m <= 4<<20; m *= 4 {
			sink += withSwitch.Bandwidth(pcie.HostPhi0, m) - noSwitch.Bandwidth(pcie.HostPhi0, m)
		}
	}
	_ = sink
}

// The allgather algorithm switch: Figure 13's 2-4 KB jump.
func BenchmarkAblationAllgatherSwitch(b *testing.B) {
	mk := func(switchBytes int) simmpi.Config {
		return simmpi.Config{
			Ranks:                simmpi.PhiPlacement(machine.Phi0, 64, 1),
			AllgatherSwitchBytes: switchBytes,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simmpi.CollectiveTime(mk(2<<10), simmpi.AllgatherKind, 4096, 1); err != nil {
			b.Fatal(err)
		}
		if _, err := simmpi.CollectiveTime(mk(1<<20), simmpi.AllgatherKind, 4096, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// The in-order latency-hiding thread curve: why 1 thread/core starves.
func BenchmarkAblationThreadLatencyHiding(b *testing.B) {
	with := core.DefaultModel()
	without := core.DefaultModel()
	without.ThreadLatencyHiding = false
	node := machine.NewNode()
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range []core.Model{with, without} {
			for _, th := range []int{59, 177} {
				r, err := npb.OMPTime(m, npb.BT, npb.ClassC,
					machine.PhiThreadsPartition(node, machine.Phi0, th))
				if err != nil {
					b.Fatal(err)
				}
				sink += r.Gflops
			}
		}
	}
	_ = sink
}

// The cache-capture model: why the host wins everything but MG (Fig 19).
func BenchmarkAblationCacheCapture(b *testing.B) {
	with := core.DefaultModel()
	without := core.DefaultModel()
	without.CacheCapture = false
	node := machine.NewNode()
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range []core.Model{with, without} {
			host, phi, err := npb.OMPThreadSweep(m, npb.BT, npb.ClassC, node)
			if err != nil {
				b.Fatal(err)
			}
			sink += host.Gflops - npb.BestPhi(phi).Gflops
		}
	}
	_ = sink
}

// The OS-core placement penalty: Figure 24's 59-vs-60 thread gap.
func BenchmarkAblationOSCore(b *testing.B) {
	m := core.DefaultModel()
	node := machine.NewNode()
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, th := range []int{177, 180} {
			g, err := npb.MGCollapseGflops(m, npb.ClassC,
				machine.PhiThreadsPartition(node, machine.Phi0, th), false)
			if err != nil {
				b.Fatal(err)
			}
			sink += g
		}
	}
	_ = sink
}

// The load balancer's zone-splitting granularity (Figure 23's symmetric
// imbalance): decomposition cost itself.
func BenchmarkDecomposeSymmetric(b *testing.B) {
	d := overflow.DLRF6Large()
	speeds := make([]float64, 32)
	for i := range speeds {
		speeds[i] = 1 + float64(i%3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := overflow.Decompose(d, speeds); err != nil {
			b.Fatal(err)
		}
	}
}

// Raw engine benchmarks: the simulators themselves.

func BenchmarkEngineCacheHierarchy(b *testing.B) {
	h := memsim.MustHierarchy(machine.SandyBridge())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i*64) % (1 << 22))
	}
}

func BenchmarkEngineMPIAllreduce(b *testing.B) {
	cfg := simmpi.Config{Ranks: simmpi.HostPlacement(16, 1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simmpi.CollectiveTime(cfg, simmpi.AllreduceKind, 1024, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineOMPDynamicSchedule(b *testing.B) {
	rt := simomp.New(machine.PhiThreadsPartition(machine.NewNode(), machine.Phi0, 236))
	team := simomp.NewTeam(rt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		team.For(1024, simomp.ForOpts{Sched: simomp.Dynamic, Chunk: 4}, nil)
	}
}

func BenchmarkKernelMGVCycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := npb.RunMG(16, 1, nil, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelCart3DStep(b *testing.B) {
	s, err := cart3d.NewSolver(16, 16, 16)
	if err != nil {
		b.Fatal(err)
	}
	s.AddPressurePulse(0.1)
	dt := s.StableDt(0.4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(dt, nil)
	}
}

// --- Engine: sequential vs parallel full-suite regeneration -----------

// benchRunAll regenerates the whole suite per iteration at the given
// worker count (0 = the sequential RunAll path). On a multi-core box the
// worker pool wins by roughly min(workers, cores, suite skew) — the
// experiments are embarrassingly parallel once each runs against its own
// cloned Env.
func benchRunAll(b *testing.B, workers int) {
	b.Helper()
	reg := harness.Paper()
	env := harness.DefaultEnv(harness.WithQuick(true))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if workers == 0 {
			if err := reg.RunAll(io.Discard, env); err != nil {
				b.Fatal(err)
			}
			continue
		}
		if _, err := reg.RunAllParallel(io.Discard, env, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuiteSequential(b *testing.B) { benchRunAll(b, 0) }
func BenchmarkSuiteWorkers1(b *testing.B)   { benchRunAll(b, 1) }
func BenchmarkSuiteWorkers2(b *testing.B)   { benchRunAll(b, 2) }
func BenchmarkSuiteWorkers4(b *testing.B)   { benchRunAll(b, 4) }
func BenchmarkSuiteWorkers8(b *testing.B)   { benchRunAll(b, 8) }

// --- Extension benchmarks ---------------------------------------------

func benchExtension(b *testing.B, id string) {
	b.Helper()
	benchExperiment(b, id)
}

func BenchmarkExtOffloadPipeline(b *testing.B) { benchExtension(b, "ext-offload-pipeline") }
func BenchmarkExtCheckpoint(b *testing.B)      { benchExtension(b, "ext-checkpoint") }
func BenchmarkExtProfile(b *testing.B)         { benchExtension(b, "ext-profile") }
func BenchmarkExtStride(b *testing.B)          { benchExtension(b, "ext-stride") }

// Synchronous vs pipelined offload, head to head.
func BenchmarkAblationOffloadPipelining(b *testing.B) {
	m := core.DefaultModel()
	node := machine.NewNode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := npb.MGOffload(m, npb.ClassC, node, npb.OffloadSubroutine); err != nil {
			b.Fatal(err)
		}
		if _, err := npb.MGOffloadPipelined(m, npb.ClassC, node); err != nil {
			b.Fatal(err)
		}
	}
}

// The long-message broadcast switch (van de Geijn vs binomial).
func BenchmarkAblationBcastLong(b *testing.B) {
	long := simmpi.Config{Ranks: simmpi.HostPlacement(16, 1)}
	binom := simmpi.Config{Ranks: simmpi.HostPlacement(16, 1), BcastLongBytes: 1 << 30}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simmpi.CollectiveTime(long, simmpi.BcastKind, 4<<20, 1); err != nil {
			b.Fatal(err)
		}
		if _, err := simmpi.CollectiveTime(binom, simmpi.BcastKind, 4<<20, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// The FMG-accelerated Cart3D steady solve vs a cold start.
func BenchmarkKernelCart3DFMG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := cart3d.NewSolver(8, 8, 8)
		if err != nil {
			b.Fatal(err)
		}
		s.AddPressurePulse(0.1)
		tol := s.ResidualNorm(nil) / 10
		if _, _, _, err := s.FMGSolveSteady(tol, 2000, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Real distributed kernels end to end (execution + virtual time).
func BenchmarkKernelCGMPI(b *testing.B) {
	m := npb.MakeCGMatrix(400, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := npb.RunCGMPI(m, 10, 1, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelFTMPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := npb.RunFTMPI(16, 8, 16, 1, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelMGMPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := npb.RunMGMPI(16, 1, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelBTMPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := npb.RunBTMPI(10, 1, 2); err != nil {
			b.Fatal(err)
		}
	}
}
