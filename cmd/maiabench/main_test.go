package main

import (
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-quick", "fig7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("empty invocation accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunParallelSubset(t *testing.T) {
	if err := run([]string{"-quick", "-parallel", "4", "fig7", "fig15", "fig16"}); err != nil {
		t.Fatal(err)
	}
}

// -quick golden snapshots don't exist; mixing the modes must fail fast
// instead of producing a guaranteed mismatch.
func TestRunVerifyRejectsQuick(t *testing.T) {
	if err := run([]string{"-quick", "-verify", "fig7"}); err == nil {
		t.Fatal("-quick -verify accepted")
	}
	if err := run([]string{"-quick", "-update", "fig7"}); err == nil {
		t.Fatal("-quick -update accepted")
	}
}

// -update writes a snapshot that -verify then accepts, and a corrupted
// snapshot is rejected.
func TestRunUpdateThenVerify(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-golden", dir, "-update", "fig7"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-golden", dir, "-verify", "fig7"}); err != nil {
		t.Fatalf("fresh snapshot rejected: %v", err)
	}
	path := filepath.Join(dir, "fig7.txt")
	if err := os.WriteFile(path, []byte("tampered\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-golden", dir, "-verify", "fig7"}); err == nil {
		t.Fatal("tampered snapshot accepted")
	}
}

// -faults re-prices a run on the degraded machine; unknown plan names
// and golden-mode combinations fail fast.
func TestRunFaults(t *testing.T) {
	if err := run([]string{"-quick", "-faults", "phi0-down", "fig25"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "-faults", "no-such-plan", "fig25"}); err == nil {
		t.Fatal("unknown fault plan accepted")
	}
	if err := run([]string{"-faults", "degraded", "-verify", "fig7"}); err == nil {
		t.Fatal("-faults -verify accepted (goldens are healthy-machine)")
	}
	if err := run([]string{"-faults", "degraded", "-update", "fig7"}); err == nil {
		t.Fatal("-faults -update accepted (goldens are healthy-machine)")
	}
}

// The fleet flags reshape the ext-fleet experiments and, like every
// env-shaping flag, reject golden verification.
func TestRunFleetFlags(t *testing.T) {
	if err := run([]string{"-quick", "-fleet", "8", "-scheduler", "round-robin", "-seed", "3", "ext-fleet-recovery"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "-fleet", "600", "ext-fleet-recovery"}); err == nil {
		t.Fatal("-fleet 600 accepted (max 512)")
	}
	if err := run([]string{"-quick", "-scheduler", "clairvoyant", "ext-fleet-recovery"}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if err := run([]string{"-fleet", "8", "-verify", "ext-fleet-recovery"}); err == nil {
		t.Fatal("-fleet -verify accepted (goldens use the default fleet shapes)")
	}
	if err := run([]string{"-scheduler", "random", "-update", "ext-fleet-recovery"}); err == nil {
		t.Fatal("-scheduler -update accepted (goldens use the default fleet shapes)")
	}
}

// The embedded fallback serves snapshots when the -golden directory does
// not exist (e.g. maiabench run outside the repository).
func TestGoldenSourceFallsBackToEmbedded(t *testing.T) {
	src := goldenSource(filepath.Join(t.TempDir(), "nope"))
	data, err := fs.ReadFile(src, "table1.txt")
	if err != nil {
		t.Fatalf("embedded fallback missing table1 snapshot: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("embedded table1 snapshot is empty")
	}
}

// -trace writes a loadable Chrome trace_event JSON and -trace-summary
// prints the category table; both work together in one invocation.
func TestRunTraceExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := run([]string{"-quick", "-trace", path, "-trace-summary", "fig15"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace file has no events")
	}
}

// An unwritable -trace path is a reported error, not a silent drop.
func TestRunTraceBadPath(t *testing.T) {
	if err := run([]string{"-quick", "-trace", filepath.Join(t.TempDir(), "no", "such", "dir.json"), "fig15"}); err == nil {
		t.Fatal("unwritable trace path accepted")
	}
}

// The shared -seed flag re-rolls a fault plan's decisions; without
// -faults it is rejected, and with -verify it is rejected like -faults.
func TestRunFaultSeed(t *testing.T) {
	if err := run([]string{"-quick", "-faults", "lossy-pcie", "-seed", "11", "fig7"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "-seed", "11", "fig7"}); err == nil {
		t.Fatal("-seed without -faults accepted")
	}
	if err := run([]string{"-verify", "-faults", "lossy-pcie", "-seed", "11", "fig7"}); err == nil {
		t.Fatal("-seed with -verify accepted")
	}
}
