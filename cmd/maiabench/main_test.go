package main

import (
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-quick", "fig7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("empty invocation accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunParallelSubset(t *testing.T) {
	if err := run([]string{"-quick", "-parallel", "4", "fig7", "fig15", "fig16"}); err != nil {
		t.Fatal(err)
	}
}

// -quick golden snapshots don't exist; mixing the modes must fail fast
// instead of producing a guaranteed mismatch.
func TestRunVerifyRejectsQuick(t *testing.T) {
	if err := run([]string{"-quick", "-verify", "fig7"}); err == nil {
		t.Fatal("-quick -verify accepted")
	}
	if err := run([]string{"-quick", "-update", "fig7"}); err == nil {
		t.Fatal("-quick -update accepted")
	}
}

// -update writes a snapshot that -verify then accepts, and a corrupted
// snapshot is rejected.
func TestRunUpdateThenVerify(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-golden", dir, "-update", "fig7"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-golden", dir, "-verify", "fig7"}); err != nil {
		t.Fatalf("fresh snapshot rejected: %v", err)
	}
	path := filepath.Join(dir, "fig7.txt")
	if err := os.WriteFile(path, []byte("tampered\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-golden", dir, "-verify", "fig7"}); err == nil {
		t.Fatal("tampered snapshot accepted")
	}
}

// The embedded fallback serves snapshots when the -golden directory does
// not exist (e.g. maiabench run outside the repository).
func TestGoldenSourceFallsBackToEmbedded(t *testing.T) {
	src := goldenSource(filepath.Join(t.TempDir(), "nope"))
	data, err := fs.ReadFile(src, "table1.txt")
	if err != nil {
		t.Fatalf("embedded fallback missing table1 snapshot: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("embedded table1 snapshot is empty")
	}
}
