package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-quick", "fig7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("empty invocation accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
