// Command maiabench reproduces the paper's evaluation: it runs any (or
// all) of the experiments behind Table 1 and Figures 4-27 on the
// simulated Maia system and prints the same rows the paper reports,
// plus the "report" card (every headline claim, graded) and the ext-*
// extension experiments.
//
// Experiments run on a worker pool (-parallel, default one worker per
// CPU); because every experiment executes against its own cloned
// environment and the simulation is virtual-time deterministic, the
// assembled output is byte-identical to a sequential run.
//
// With -trace (or -trace-summary) the simulated runtimes also record
// every virtual-time event — MPI operations and their transport
// flights, OpenMP constructs, offload phases, DMA, I/O — into a
// simtrace tracer: -trace writes Chrome trace_event JSON loadable at
// ui.perfetto.dev, -trace-summary prints the per-category rollup.
//
// With -faults the whole run is re-priced on a deterministically
// degraded machine: a named simfault plan (stragglers, thermal
// throttling, lossy PCIe, a dead coprocessor) threads into every
// runtime the experiments construct, and -seed re-rolls the plan's
// random decisions into a different degraded machine. Golden
// verification is healthy-machine only, so -faults rejects
// -verify/-update.
//
// With -nodes the ext-rack experiments cap their node sweeps at the
// given power-of-two count instead of the full 128-node system. Golden
// snapshots record the full sweep, so -nodes rejects -verify/-update.
//
// With -fleet the ext-fleet experiments cap their simulated fleet sizes
// at the given node count (1..512), and -scheduler selects the fleet's
// placement policy; -seed re-rolls the fleet's sampled conditions,
// arrivals, and failures. Like the other env-shaping flags, both reject
// -verify/-update.
//
// Usage:
//
//	maiabench -list
//	maiabench table1 fig4 fig19 report
//	maiabench -quick all
//	maiabench -parallel 8 all
//	maiabench -verify all        # compare against golden snapshots
//	maiabench -update all        # regenerate golden snapshots
//	maiabench -trace out.json fig13
//	maiabench -trace-summary fig26
//	maiabench -faults degraded -trace trace-fault.json fig10
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"runtime"
	"time"

	"maia/internal/harness"
	"maia/internal/simfault"
	"maia/internal/simfleet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "maiabench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("maiabench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list available experiments and exit")
	parallel := fs.Int("parallel", runtime.NumCPU(), "experiment worker count (1 = sequential)")
	verify := fs.Bool("verify", false, "compare output against golden snapshots instead of printing")
	update := fs.Bool("update", false, "regenerate golden snapshot files and exit")
	goldenDir := fs.String("golden", harness.DefaultGoldenDir,
		"golden snapshot directory (-verify falls back to the build-time copies when it does not exist)")
	stats := fs.Bool("stats", false, "print per-experiment wall time and output size to stderr")
	benchJSON := fs.String("benchjson", "", "append per-experiment wall-clock and allocation stats as a labeled run to this JSON file")
	benchLabel := fs.String("benchlabel", "run", "label for the -benchjson run entry")
	jf := harness.AddJobFlags(fs)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(),
			"usage: maiabench [-quick] [-parallel N] [-faults PLAN [-seed S]] [-nodes N] [-fleet N [-scheduler P]] [-verify|-update] [-trace FILE] [-trace-summary] [-stats] [-benchjson FILE [-benchlabel L]] [-list] <experiment>... | all")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if jf.Nodes != 0 && (*verify || *update) {
		return fmt.Errorf("golden snapshots sweep the full rack: drop -nodes with -verify/-update")
	}
	if (jf.Faults != "" || jf.Seed != 0) && (*verify || *update) {
		return fmt.Errorf("golden snapshots are healthy-machine: drop -faults/-seed with -verify/-update")
	}
	if (jf.Fleet != 0 || jf.Scheduler != "") && (*verify || *update) {
		return fmt.Errorf("golden snapshots use the default fleet shapes: drop -fleet/-scheduler with -verify/-update")
	}

	reg := harness.Paper()

	env, tracer, err := jf.Env()
	if err != nil {
		return err
	}

	if *list {
		for _, e := range reg.All() {
			fmt.Printf("%-22s %-12s %-9s %s\n", e.ID, e.Section, e.Kind, e.Title)
		}
		fmt.Println()
		fmt.Println("fault plans (-faults):")
		for _, p := range simfault.Plans() {
			fmt.Printf("%-22s %s\n", p.Name, p.Note)
		}
		fmt.Println()
		fmt.Println("fleet schedulers (-scheduler):")
		for _, p := range simfleet.Policies() {
			fmt.Printf("%-22s %s\n", p.Name, p.Note)
		}
		fmt.Println()
		fmt.Println("fleet MTBF profiles (jobspec fleet.mtbf):")
		for _, p := range simfleet.Profiles() {
			fmt.Printf("%-22s %s\n", p.Name, p.Note)
		}
		return nil
	}
	exps, err := selectExperiments(reg, fs.Args())
	if err != nil {
		if len(fs.Args()) == 0 {
			fs.Usage()
		}
		return err
	}

	switch {
	case *update:
		if jf.Quick {
			return fmt.Errorf("golden snapshots are full-mode: drop -quick with -update")
		}
		return harness.UpdateGolden(*goldenDir, env, exps)
	case *verify:
		if jf.Quick {
			return fmt.Errorf("golden snapshots are full-mode: drop -quick with -verify")
		}
		if err := harness.VerifyGolden(env, exps, goldenSource(*goldenDir)); err != nil {
			return err
		}
		fmt.Printf("verified %d experiment(s) against golden snapshots\n", len(exps))
		return nil
	}

	start := time.Now()
	results, err := harness.RunExperiments(os.Stdout, env, exps, *parallel)
	total := time.Since(start)
	if *benchJSON != "" {
		run := harness.NewBenchRun(*benchLabel, jf.Quick, *parallel, total, results)
		if berr := harness.AppendBenchJSON(*benchJSON, run); berr != nil && err == nil {
			err = berr
		} else if berr == nil {
			fmt.Fprintf(os.Stderr, "maiabench: appended run %q (%d experiments, %v) to %s\n",
				*benchLabel, len(results), total.Round(time.Millisecond), *benchJSON)
		}
	}
	if *stats {
		for _, r := range results {
			status := "ok"
			if r.Err != nil {
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "%-22s %10v %7d B  %s\n", r.ID, r.Wall.Round(1e6), r.Bytes, status)
		}
	}
	if terr := jf.WriteTrace(tracer, os.Stdout); terr != nil && err == nil {
		err = terr
	}
	return err
}

// selectExperiments resolves CLI arguments to experiments: the single
// word "all" means every experiment in presentation order.
func selectExperiments(reg *harness.Registry, ids []string) ([]harness.Experiment, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("no experiments given")
	}
	if len(ids) == 1 && ids[0] == "all" {
		return reg.All(), nil
	}
	exps := make([]harness.Experiment, 0, len(ids))
	for _, id := range ids {
		e, ok := reg.ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (try -list)", id)
		}
		exps = append(exps, e)
	}
	return exps, nil
}

// goldenSource prefers the on-disk snapshot directory (the committed
// files, freshest when run from the repository root) and falls back to
// the copies embedded at build time so -verify works from anywhere.
func goldenSource(dir string) fs.FS {
	if info, err := os.Stat(dir); err == nil && info.IsDir() {
		return os.DirFS(dir)
	}
	return harness.EmbeddedGolden()
}
