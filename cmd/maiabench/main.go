// Command maiabench reproduces the paper's evaluation: it runs any (or
// all) of the experiments behind Table 1 and Figures 4-27 on the
// simulated Maia system and prints the same rows the paper reports,
// plus the "report" card (every headline claim, graded) and the ext-*
// extension experiments.
//
// Usage:
//
//	maiabench -list
//	maiabench table1 fig4 fig19 report
//	maiabench -quick all
package main

import (
	"flag"
	"fmt"
	"os"

	"maia/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "maiabench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("maiabench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list available experiments and exit")
	quick := fs.Bool("quick", false, "trim sweep densities for a fast pass")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: maiabench [-quick] [-list] <experiment>... | all")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	env := harness.DefaultEnv()
	env.Quick = *quick

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}
	ids := fs.Args()
	if len(ids) == 0 {
		fs.Usage()
		return fmt.Errorf("no experiments given")
	}
	if len(ids) == 1 && ids[0] == "all" {
		return harness.RunAll(os.Stdout, env)
	}
	for _, id := range ids {
		e, ok := harness.ByID(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", id)
		}
		fmt.Printf("== %s: %s ==\npaper: %s\n", e.ID, e.Title, e.Paper)
		if err := e.Run(os.Stdout, env); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
