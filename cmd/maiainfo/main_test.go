package main

import (
	"bytes"
	"strings"
	"testing"
)

// The info card succeeds and names both processors, the fabrics, and the
// paper's headline peak.
func TestRunPrintsSystemCard(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"SGI Rackable",
		"Intel Xeon E5-2670",
		"Intel Xeon Phi 5110P",
		"nodes:        128",
		"TF host",
		"QPI",
		"PCIe 2.0 x16",
		"InfiniBand",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 20 {
		t.Errorf("suspiciously short output: %d lines", lines)
	}
}

func TestSizeLabel(t *testing.T) {
	if got := sizeLabel(32 << 10); got != "32 KB" {
		t.Errorf("sizeLabel(32K) = %q", got)
	}
	if got := sizeLabel(20 << 20); got != "20 MB" {
		t.Errorf("sizeLabel(20M) = %q", got)
	}
}
