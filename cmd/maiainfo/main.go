// Command maiainfo prints the modeled Maia system configuration — the
// simulated counterpart of inspecting /proc/cpuinfo and micinfo on the
// real machine.
package main

import (
	"fmt"
	"io"
	"os"

	"maia/internal/machine"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "maiainfo:", err)
		os.Exit(1)
	}
}

// run writes the full system description to w.
func run(w io.Writer) error {
	sys := machine.NewSystem()
	n := sys.Node
	fmt.Fprintf(w, "%s\n", sys.Name)
	fmt.Fprintf(w, "  nodes:        %d (%s)\n", sys.Nodes, sys.Interconnect)
	fmt.Fprintf(w, "  filesystem:   %s\n", sys.FileSystem)
	fmt.Fprintf(w, "  software:     %s, %s, %s, %s\n", sys.Compiler, sys.MPILibrary, sys.MathLibrary, sys.OS)
	host, phi, total := sys.PeakTflops()
	fmt.Fprintf(w, "  peak:         %.1f TF host + %.1f TF Phi = %.1f TF\n", host, phi, total)
	fmt.Fprintln(w)

	describe := func(name string, p machine.ProcessorSpec, count int, memGB int) {
		fmt.Fprintf(w, "%s: %d x %s (%s)\n", name, count, p.Name, p.Architecture)
		fmt.Fprintf(w, "  cores:        %d @ %.2f GHz, %d-bit SIMD, %d flops/clock, %d threads/core (%v)\n",
			p.Cores, p.BaseGHz, p.SIMDWidthBits, p.FlopsPerClock, p.ThreadsPerCore, p.MT)
		fmt.Fprintf(w, "  peak:         %.1f Gflop/s per core, %.1f Gflop/s per processor\n",
			p.PeakGflopsPerCore(), p.PeakGflops())
		for _, c := range p.Caches {
			shared := ""
			if c.Shared {
				shared = " (shared)"
			}
			fmt.Fprintf(w, "  %-4s          %s, %d-way, %.1f ns%s\n",
				c.Name+":", sizeLabel(c.SizeBytes), c.Assoc, c.LatencyNs, shared)
		}
		fmt.Fprintf(w, "  memory:       %d GB %s, %d channels, %.1f GB/s peak (%.0f GB/s sustained triad), %.0f ns\n",
			memGB, p.MemTechnology, p.MemChannels, p.MemPeakGBs, p.MemSustainedGBs, p.MemLatencyNs)
	}
	describe("host", n.HostProc, n.Sockets, n.HostMemGB)
	fmt.Fprintln(w)
	describe("coprocessor", n.PhiProc, n.Phis, n.PhiProc.MemGB)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "fabrics: %s; %s per Phi; %s\n", n.QPI.Name, n.PCIe.Name, n.HCA.Name)
	fmt.Fprintf(w, "rack:    %s\n", machine.NewRackFabric(sys.Nodes))
	return nil
}

func sizeLabel(b int) string {
	if b >= 1<<20 {
		return fmt.Sprintf("%d MB", b>>20)
	}
	return fmt.Sprintf("%d KB", b>>10)
}
