package main

import (
	"bytes"
	"strings"
	"testing"
)

// EP class S reproduces the official NPB verification sums and reports
// VERIFIED.
func TestRunEPClassS(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bench", "ep", "-class", "S", "-threads", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"--- EP ---", "accepted=13176389", "VERIFIED"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "FAILED") {
		t.Errorf("unexpected failure:\n%s", out)
	}
}

// The distributed MG run matches the serial residual history.
func TestRunMGWithMPI(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bench", "mg", "-mpi", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"--- MG ---", "MPI(2 ranks): residual history matches serial", "VERIFIED"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// Unknown benchmarks and bad flags are rejected (main exits nonzero on
// the returned error).
func TestRunRejectsBadArgs(t *testing.T) {
	if err := run([]string{"-bench", "nosuch"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &bytes.Buffer{}); err == nil {
		t.Error("bad flag accepted")
	}
}

// The shared fault surface threads into the simulated OpenMP runtime:
// kernel verification is unaffected, unknown plans and orphan seeds are
// rejected exactly like maiabench.
func TestRunWithFaultPlan(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bench", "ep", "-faults", "phi-straggler", "-seed", "7"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "VERIFIED") {
		t.Errorf("EP did not verify under a fault plan:\n%s", buf.String())
	}
	if err := run([]string{"-bench", "ep", "-faults", "nope"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown fault plan accepted")
	}
	if err := run([]string{"-bench", "ep", "-seed", "7"}, &bytes.Buffer{}); err == nil {
		t.Error("-seed without -faults accepted")
	}
}
