// Command npbrun executes the REAL NPB kernel implementations (not the
// performance models) at laptop-runnable scales and verifies their
// results, the way the reference suite's verification stage does:
//
//	npbrun -bench ep -class S      # reproduces the official EP.S sums
//	npbrun -bench mg               # V-cycle residual history
//	npbrun -bench all              # whole suite, small sizes
//
// The grid-based kernels run reduced grids regardless of class (the
// class only scales EP, CG and IS here); paper-scale performance is the
// job of cmd/maiabench, which prices class C through the execution
// model.
//
// npbrun shares maiabench's flag surface for tracing (-trace,
// -trace-summary) and fault injection (-faults, -seed): a fault plan
// derates the simulated OpenMP runtime's virtual time (visible in the
// trace output), while the kernels' numerical results — and their
// verification — are unaffected by design.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"maia/internal/harness"
	"maia/internal/machine"
	"maia/internal/npb"
	"maia/internal/simomp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "npbrun:", err)
		os.Exit(1)
	}
}

// benchNames lists the kernels in suite order.
var benchNames = []string{"ep", "cg", "mg", "ft", "is", "bt", "lu", "sp"}

// run executes the selected kernels and writes their verification
// transcripts to w; it returns an error if any kernel fails to verify,
// or if the arguments are invalid.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("npbrun", flag.ContinueOnError)
	bench := fs.String("bench", "all", "ep|cg|mg|ft|is|bt|lu|sp|all")
	class := fs.String("class", "S", "problem class for EP/CG/IS (S or W)")
	threads := fs.Int("threads", 8, "simulated OpenMP team width")
	mpiRanks := fs.Int("mpi", 0, "also run every distributed-memory kernel with this many MPI ranks")
	jf := &harness.JobFlags{}
	jf.RegisterTrace(fs)
	jf.RegisterFaults(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	plan, err := jf.FaultPlan()
	if err != nil {
		return err
	}

	tracer := jf.NewTracer()
	tracer.SetProcess("npbrun")

	kernels := map[string]func() error{}
	rt := simomp.New(machine.HostCoresPartition(machine.NewNode(), *threads, 1),
		simomp.WithTracer(tracer, fmt.Sprintf("omp:host%d", *threads)),
		simomp.WithFaultPlan(plan))
	team := simomp.NewTeam(rt)
	kernels["ep"] = func() error { return runEP(w, *class, team, *mpiRanks) }
	kernels["cg"] = func() error { return runCG(w, *class, team, *mpiRanks) }
	kernels["mg"] = func() error { return runMG(w, team, *mpiRanks) }
	kernels["ft"] = func() error { return runFT(w, team, *mpiRanks) }
	kernels["is"] = func() error { return runIS(w, *class, team, *mpiRanks) }
	kernels["bt"] = func() error { return runBT(w, team, *mpiRanks) }
	kernels["lu"] = func() error { return runLU(w, team, *mpiRanks) }
	kernels["sp"] = func() error { return runSP(w, team, *mpiRanks) }
	if *bench != "all" {
		if _, ok := kernels[*bench]; !ok {
			return fmt.Errorf("unknown benchmark %q (want one of %s, or all)",
				*bench, strings.Join(benchNames, "|"))
		}
	}

	failed := 0
	for _, name := range benchNames {
		if *bench != "all" && *bench != name {
			continue
		}
		fmt.Fprintf(w, "--- %s ---\n", strings.ToUpper(name))
		if err := kernels[name](); err != nil {
			fmt.Fprintf(w, "FAILED: %v\n", err)
			failed++
			continue
		}
		fmt.Fprintln(w, "VERIFIED")
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) failed verification", failed)
	}
	return jf.WriteTrace(tracer, w)
}

func runEP(w io.Writer, class string, team *simomp.Team, mpiRanks int) error {
	pairs := int64(1) << 24
	if class == "W" {
		pairs = 1 << 25
	}
	res, err := npb.RunEP(pairs, team)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "pairs=2^%d sx=%.12e sy=%.12e accepted=%d\n",
		log2i(pairs), res.Sx, res.Sy, res.Accepted)
	if mpiRanks > 0 {
		mres, err := npb.RunEPMPI(pairs, mpiRanks)
		if err != nil {
			return err
		}
		if mres.Accepted != res.Accepted || math.Abs(mres.Sx-res.Sx) > 1e-9 {
			return fmt.Errorf("MPI EP diverges from serial")
		}
		fmt.Fprintf(w, "MPI(%d ranks): sums match serial\n", mpiRanks)
	}
	if class == "S" {
		// The official NPB 3.3 class S verification values.
		const wantSx, wantSy = -3.247834652034740e3, -6.958407078382297e3
		if math.Abs(res.Sx-wantSx) > 1e-8 || math.Abs(res.Sy-wantSy) > 1e-8 {
			return fmt.Errorf("sums do not match the NPB reference")
		}
		if res.Accepted != 13176389 {
			return fmt.Errorf("accepted count %d != reference 13176389", res.Accepted)
		}
	}
	return nil
}

func runCG(w io.Writer, class string, team *simomp.Team, mpiRanks int) error {
	n, nz, iters, shift := 1400, 7, 15, 10.0
	if class == "W" {
		n, nz, shift = 7000, 8, 12.0
	}
	m := npb.MakeCGMatrix(n, nz)
	res, err := npb.RunCG(m, shift, iters, team)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "n=%d nnz=%d zeta=%.10f residual=%.3e\n", n, m.NNZ(), res.Zeta, res.Residual)
	if res.Residual > 1e-6 {
		return fmt.Errorf("inner CG residual %v too large", res.Residual)
	}
	h := res.ZetaHistory
	if d := math.Abs(h[len(h)-1] - h[len(h)-2]); d > 1e-2*math.Abs(res.Zeta) {
		return fmt.Errorf("zeta not converged (last delta %v)", d)
	}
	if mpiRanks > 0 {
		mres, err := npb.RunCGMPI(m, shift, iters, mpiRanks)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "MPI(%d ranks): zeta=%.10f\n", mpiRanks, mres.Zeta)
		if math.Abs(mres.Zeta-res.Zeta) > 1e-9*math.Abs(res.Zeta) {
			return fmt.Errorf("MPI zeta diverges from serial")
		}
	}
	return nil
}

func runMG(w io.Writer, team *simomp.Team, mpiRanks int) error {
	res, err := npb.RunMG(32, 4, team, false)
	if err != nil {
		return err
	}
	if mpiRanks > 0 {
		mres, err := npb.RunMGMPI(32, 4, mpiRanks)
		if err != nil {
			return err
		}
		for c := range res.ResidualNorms {
			if math.Abs(mres.ResidualNorms[c]-res.ResidualNorms[c]) > 1e-10*res.ResidualNorms[c] {
				return fmt.Errorf("MPI residual %d diverges from serial", c)
			}
		}
		fmt.Fprintf(w, "MPI(%d ranks): residual history matches serial\n", mpiRanks)
	}
	fmt.Fprintf(w, "32^3 grid, residuals per V-cycle: %.3e", res.ResidualNorms[0])
	for _, r := range res.ResidualNorms[1:] {
		fmt.Fprintf(w, " -> %.3e", r)
	}
	fmt.Fprintln(w)
	last := res.ResidualNorms[len(res.ResidualNorms)-1]
	if last >= res.ResidualNorms[0]/4 {
		return fmt.Errorf("V-cycles not contracting")
	}
	return nil
}

func runFT(w io.Writer, team *simomp.Team, mpiRanks int) error {
	res, err := npb.RunFT(32, 32, 16, 4, team)
	if err != nil {
		return err
	}
	if mpiRanks > 0 {
		mres, err := npb.RunFTMPI(32, 32, 16, 4, mpiRanks)
		if err != nil {
			return err
		}
		for s := range res.Checksums {
			d := res.Checksums[s] - mres.Checksums[s]
			if math.Hypot(real(d), imag(d)) > 1e-9 {
				return fmt.Errorf("MPI checksum %d diverges from serial", s)
			}
		}
		fmt.Fprintf(w, "MPI(%d ranks): checksums match serial\n", mpiRanks)
	}
	fmt.Fprintf(w, "32x32x16 grid, checksums:")
	for _, c := range res.Checksums {
		fmt.Fprintf(w, " (%.4f,%.4f)", real(c), imag(c))
	}
	fmt.Fprintln(w)
	for i := 1; i < len(res.Energies); i++ {
		if res.Energies[i] > res.Energies[i-1]*(1+1e-12) {
			return fmt.Errorf("diffusion energy grew at step %d", i)
		}
	}
	g := npb.NewFTGrid(16, 16, 16)
	for i := range g.V {
		g.V[i] = complex(float64(i%17)*0.1, float64(i%5)*0.2)
	}
	if e := npb.FTRoundTripError(g, team); e > 1e-10 {
		return fmt.Errorf("FFT round-trip error %v", e)
	}
	return nil
}

func runIS(w io.Writer, class string, team *simomp.Team, mpiRanks int) error {
	n, maxKey := int64(1)<<16, int64(1)<<11
	if class == "W" {
		n, maxKey = 1<<20, 1<<16
	}
	keys := npb.ISKeys(n, maxKey)
	res, err := npb.RunIS(keys, maxKey, 10, team)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "keys=2^%d maxKey=2^%d iterations=%d\n", log2i(n), log2i(maxKey), res.Iterations)
	if err := npb.ISVerify(keys, maxKey, 10, res); err != nil {
		return err
	}
	if mpiRanks > 0 {
		mres, err := npb.RunISMPI(n, maxKey, 10, mpiRanks)
		if err != nil {
			return err
		}
		for i := range res.Sorted {
			if mres.Sorted[i] != res.Sorted[i] {
				return fmt.Errorf("MPI sort diverges from serial at %d", i)
			}
		}
		fmt.Fprintf(w, "MPI(%d ranks): sorted output matches serial\n", mpiRanks)
	}
	return nil
}

func runBT(w io.Writer, team *simomp.Team, mpiRanks int) error {
	norms, err := npb.RunBT(12, 20, team)
	if err != nil {
		return err
	}
	if err := checkSettling(w, "BT", norms); err != nil {
		return err
	}
	return checkMPINorms(w, "BT", norms, mpiRanks, func(ranks int) ([]float64, error) {
		return npb.RunBTMPI(12, 20, ranks)
	})
}

func runLU(w io.Writer, team *simomp.Team, mpiRanks int) error {
	res, err := npb.RunLU(10, 8, team)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "10^3 grid, SSOR residuals: %.3e -> %.3e over %d sweeps\n",
		res[0], res[len(res)-1], len(res))
	if res[len(res)-1] >= res[0]/10 {
		return fmt.Errorf("SSOR not converging")
	}
	return checkMPINorms(w, "LU", res, mpiRanks, func(ranks int) ([]float64, error) {
		return npb.RunLUMPI(10, 8, ranks)
	})
}

func runSP(w io.Writer, team *simomp.Team, mpiRanks int) error {
	norms, err := npb.RunSP(12, 20, team)
	if err != nil {
		return err
	}
	if err := checkSettling(w, "SP", norms); err != nil {
		return err
	}
	return checkMPINorms(w, "SP", norms, mpiRanks, func(ranks int) ([]float64, error) {
		return npb.RunSPMPI(12, 20, ranks)
	})
}

// checkMPINorms runs the distributed variant and compares its norm
// history with the serial run.
func checkMPINorms(w io.Writer, name string, serial []float64, ranks int, f func(int) ([]float64, error)) error {
	if ranks <= 0 {
		return nil
	}
	got, err := f(ranks)
	if err != nil {
		return err
	}
	for s := range serial {
		if math.Abs(got[s]-serial[s]) > 1e-12*math.Max(serial[s], 1e-30) {
			return fmt.Errorf("%s MPI norm %d diverges from serial", name, s)
		}
	}
	fmt.Fprintf(w, "MPI(%d ranks): norm history matches serial\n", ranks)
	return nil
}

func checkSettling(w io.Writer, name string, norms []float64) error {
	fmt.Fprintf(w, "%s: 12^3 grid, %d ADI steps, final norm %.6f\n", name, len(norms), norms[len(norms)-1])
	early := math.Abs(norms[1] - norms[0])
	late := math.Abs(norms[len(norms)-1] - norms[len(norms)-2])
	if late > early {
		return fmt.Errorf("%s not approaching steady state", name)
	}
	return nil
}

func log2i(n int64) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
