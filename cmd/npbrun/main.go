// Command npbrun executes the REAL NPB kernel implementations (not the
// performance models) at laptop-runnable scales and verifies their
// results, the way the reference suite's verification stage does:
//
//	npbrun -bench ep -class S      # reproduces the official EP.S sums
//	npbrun -bench mg               # V-cycle residual history
//	npbrun -bench all              # whole suite, small sizes
//
// The grid-based kernels run reduced grids regardless of class (the
// class only scales EP, CG and IS here); paper-scale performance is the
// job of cmd/maiabench, which prices class C through the execution
// model.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"maia/internal/machine"
	"maia/internal/npb"
	"maia/internal/simomp"
)

func main() {
	bench := flag.String("bench", "all", "ep|cg|mg|ft|is|bt|lu|sp|all")
	class := flag.String("class", "S", "problem class for EP/CG/IS (S or W)")
	threads := flag.Int("threads", 8, "simulated OpenMP team width")
	mpiRanks := flag.Int("mpi", 0, "also run every distributed-memory kernel with this many MPI ranks")
	flag.Parse()

	team := simomp.NewTeam(simomp.New(
		machine.HostCoresPartition(machine.NewNode(), *threads, 1)))

	var failed bool
	run := func(name string, f func() error) {
		if *bench != "all" && *bench != name {
			return
		}
		fmt.Printf("--- %s ---\n", strings.ToUpper(name))
		if err := f(); err != nil {
			fmt.Printf("FAILED: %v\n", err)
			failed = true
			return
		}
		fmt.Println("VERIFIED")
	}

	run("ep", func() error { return runEP(*class, team, *mpiRanks) })
	run("cg", func() error { return runCG(*class, team, *mpiRanks) })
	run("mg", func() error { return runMG(team, *mpiRanks) })
	run("ft", func() error { return runFT(team, *mpiRanks) })
	run("is", func() error { return runIS(*class, team, *mpiRanks) })
	run("bt", func() error { return runBT(team, *mpiRanks) })
	run("lu", func() error { return runLU(team, *mpiRanks) })
	run("sp", func() error { return runSP(team, *mpiRanks) })

	if failed {
		os.Exit(1)
	}
}

func runEP(class string, team *simomp.Team, mpiRanks int) error {
	pairs := int64(1) << 24
	if class == "W" {
		pairs = 1 << 25
	}
	res, err := npb.RunEP(pairs, team)
	if err != nil {
		return err
	}
	fmt.Printf("pairs=2^%d sx=%.12e sy=%.12e accepted=%d\n",
		log2i(pairs), res.Sx, res.Sy, res.Accepted)
	if mpiRanks > 0 {
		mres, err := npb.RunEPMPI(pairs, mpiRanks)
		if err != nil {
			return err
		}
		if mres.Accepted != res.Accepted || math.Abs(mres.Sx-res.Sx) > 1e-9 {
			return fmt.Errorf("MPI EP diverges from serial")
		}
		fmt.Printf("MPI(%d ranks): sums match serial\n", mpiRanks)
	}
	if class == "S" {
		// The official NPB 3.3 class S verification values.
		const wantSx, wantSy = -3.247834652034740e3, -6.958407078382297e3
		if math.Abs(res.Sx-wantSx) > 1e-8 || math.Abs(res.Sy-wantSy) > 1e-8 {
			return fmt.Errorf("sums do not match the NPB reference")
		}
		if res.Accepted != 13176389 {
			return fmt.Errorf("accepted count %d != reference 13176389", res.Accepted)
		}
	}
	return nil
}

func runCG(class string, team *simomp.Team, mpiRanks int) error {
	n, nz, iters, shift := 1400, 7, 15, 10.0
	if class == "W" {
		n, nz, shift = 7000, 8, 12.0
	}
	m := npb.MakeCGMatrix(n, nz)
	res, err := npb.RunCG(m, shift, iters, team)
	if err != nil {
		return err
	}
	fmt.Printf("n=%d nnz=%d zeta=%.10f residual=%.3e\n", n, m.NNZ(), res.Zeta, res.Residual)
	if res.Residual > 1e-6 {
		return fmt.Errorf("inner CG residual %v too large", res.Residual)
	}
	h := res.ZetaHistory
	if d := math.Abs(h[len(h)-1] - h[len(h)-2]); d > 1e-2*math.Abs(res.Zeta) {
		return fmt.Errorf("zeta not converged (last delta %v)", d)
	}
	if mpiRanks > 0 {
		mres, err := npb.RunCGMPI(m, shift, iters, mpiRanks)
		if err != nil {
			return err
		}
		fmt.Printf("MPI(%d ranks): zeta=%.10f\n", mpiRanks, mres.Zeta)
		if math.Abs(mres.Zeta-res.Zeta) > 1e-9*math.Abs(res.Zeta) {
			return fmt.Errorf("MPI zeta diverges from serial")
		}
	}
	return nil
}

func runMG(team *simomp.Team, mpiRanks int) error {
	res, err := npb.RunMG(32, 4, team, false)
	if err != nil {
		return err
	}
	if mpiRanks > 0 {
		mres, err := npb.RunMGMPI(32, 4, mpiRanks)
		if err != nil {
			return err
		}
		for c := range res.ResidualNorms {
			if math.Abs(mres.ResidualNorms[c]-res.ResidualNorms[c]) > 1e-10*res.ResidualNorms[c] {
				return fmt.Errorf("MPI residual %d diverges from serial", c)
			}
		}
		fmt.Printf("MPI(%d ranks): residual history matches serial\n", mpiRanks)
	}
	fmt.Printf("32^3 grid, residuals per V-cycle: %.3e", res.ResidualNorms[0])
	for _, r := range res.ResidualNorms[1:] {
		fmt.Printf(" -> %.3e", r)
	}
	fmt.Println()
	last := res.ResidualNorms[len(res.ResidualNorms)-1]
	if last >= res.ResidualNorms[0]/4 {
		return fmt.Errorf("V-cycles not contracting")
	}
	return nil
}

func runFT(team *simomp.Team, mpiRanks int) error {
	res, err := npb.RunFT(32, 32, 16, 4, team)
	if err != nil {
		return err
	}
	if mpiRanks > 0 {
		mres, err := npb.RunFTMPI(32, 32, 16, 4, mpiRanks)
		if err != nil {
			return err
		}
		for s := range res.Checksums {
			d := res.Checksums[s] - mres.Checksums[s]
			if math.Hypot(real(d), imag(d)) > 1e-9 {
				return fmt.Errorf("MPI checksum %d diverges from serial", s)
			}
		}
		fmt.Printf("MPI(%d ranks): checksums match serial\n", mpiRanks)
	}
	fmt.Printf("32x32x16 grid, checksums:")
	for _, c := range res.Checksums {
		fmt.Printf(" (%.4f,%.4f)", real(c), imag(c))
	}
	fmt.Println()
	for i := 1; i < len(res.Energies); i++ {
		if res.Energies[i] > res.Energies[i-1]*(1+1e-12) {
			return fmt.Errorf("diffusion energy grew at step %d", i)
		}
	}
	g := npb.NewFTGrid(16, 16, 16)
	for i := range g.V {
		g.V[i] = complex(float64(i%17)*0.1, float64(i%5)*0.2)
	}
	if e := npb.FTRoundTripError(g, team); e > 1e-10 {
		return fmt.Errorf("FFT round-trip error %v", e)
	}
	return nil
}

func runIS(class string, team *simomp.Team, mpiRanks int) error {
	n, maxKey := int64(1)<<16, int64(1)<<11
	if class == "W" {
		n, maxKey = 1<<20, 1<<16
	}
	keys := npb.ISKeys(n, maxKey)
	res, err := npb.RunIS(keys, maxKey, 10, team)
	if err != nil {
		return err
	}
	fmt.Printf("keys=2^%d maxKey=2^%d iterations=%d\n", log2i(n), log2i(maxKey), res.Iterations)
	if err := npb.ISVerify(keys, maxKey, 10, res); err != nil {
		return err
	}
	if mpiRanks > 0 {
		mres, err := npb.RunISMPI(n, maxKey, 10, mpiRanks)
		if err != nil {
			return err
		}
		for i := range res.Sorted {
			if mres.Sorted[i] != res.Sorted[i] {
				return fmt.Errorf("MPI sort diverges from serial at %d", i)
			}
		}
		fmt.Printf("MPI(%d ranks): sorted output matches serial\n", mpiRanks)
	}
	return nil
}

func runBT(team *simomp.Team, mpiRanks int) error {
	norms, err := npb.RunBT(12, 20, team)
	if err != nil {
		return err
	}
	if err := checkSettling("BT", norms); err != nil {
		return err
	}
	return checkMPINorms("BT", norms, mpiRanks, func(ranks int) ([]float64, error) {
		return npb.RunBTMPI(12, 20, ranks)
	})
}

func runLU(team *simomp.Team, mpiRanks int) error {
	res, err := npb.RunLU(10, 8, team)
	if err != nil {
		return err
	}
	fmt.Printf("10^3 grid, SSOR residuals: %.3e -> %.3e over %d sweeps\n",
		res[0], res[len(res)-1], len(res))
	if res[len(res)-1] >= res[0]/10 {
		return fmt.Errorf("SSOR not converging")
	}
	return checkMPINorms("LU", res, mpiRanks, func(ranks int) ([]float64, error) {
		return npb.RunLUMPI(10, 8, ranks)
	})
}

func runSP(team *simomp.Team, mpiRanks int) error {
	norms, err := npb.RunSP(12, 20, team)
	if err != nil {
		return err
	}
	if err := checkSettling("SP", norms); err != nil {
		return err
	}
	return checkMPINorms("SP", norms, mpiRanks, func(ranks int) ([]float64, error) {
		return npb.RunSPMPI(12, 20, ranks)
	})
}

// checkMPINorms runs the distributed variant and compares its norm
// history with the serial run.
func checkMPINorms(name string, serial []float64, ranks int, f func(int) ([]float64, error)) error {
	if ranks <= 0 {
		return nil
	}
	got, err := f(ranks)
	if err != nil {
		return err
	}
	for s := range serial {
		if math.Abs(got[s]-serial[s]) > 1e-12*math.Max(serial[s], 1e-30) {
			return fmt.Errorf("%s MPI norm %d diverges from serial", name, s)
		}
	}
	fmt.Printf("MPI(%d ranks): norm history matches serial\n", ranks)
	return nil
}

func checkSettling(name string, norms []float64) error {
	fmt.Printf("%s: 12^3 grid, %d ADI steps, final norm %.6f\n", name, len(norms), norms[len(norms)-1])
	early := math.Abs(norms[1] - norms[0])
	late := math.Abs(norms[len(norms)-1] - norms[len(norms)-2])
	if late > early {
		return fmt.Errorf("%s not approaching steady state", name)
	}
	return nil
}

func log2i(n int64) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
