// Command maiad-load drives sustained traffic against a running maiad
// server and reports what it measured. Each client loops until the
// deadline, flipping a weighted coin per request: hot jobs replay specs
// the cache already holds (the golden-seeded defaults plus quick specs
// the run itself warms), cold jobs mint never-seen-before cache keys by
// pairing one of the FULL heavyweight experiments (fig5, fig20,
// ext-stride) with a fault plan and a fresh seed — so the mix exercises
// the cache, the coalescer, and the engine's closed-form cold path at a
// controlled ratio.
//
// With -fleet-frac a slice of the offered load becomes fleet traffic
// against POST /v1/fleet: half of it replays one fixed quick fleet
// scenario (a hit after the first draw), half mints fresh-seed fleet
// simulations that run the scheduler/remediation loop cold — so the
// fleet endpoint's cache, coalescer, and simulation path are measured
// under the same sustained load as the plain jobs, reported separately
// as fleet_p99_ns.
//
// The report (throughput, client-side latency quantiles, the
// misses-only cold p99, the fleet-only p99, cache-status counts, and
// the server's own final /metrics snapshot) is written as JSON to -out
// and summarized on stderr. -min-rps, -min-hit-ratio, -max-cold-p99,
// and -max-fleet-p99 turn the run into a pass/fail gate for CI.
//
// Usage:
//
//	maiad-load -addr http://127.0.0.1:8750 -duration 60s -out BENCH_PR7.json
//	maiad-load -addr http://127.0.0.1:8750 -duration 10s -clients 2 -min-rps 50 -min-hit-ratio 0.5
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"maia/internal/harness"
	"maia/internal/maiad"
)

// cheapExperiments are quick-mode experiments that render in ~a
// millisecond on one CPU — the pool both the hot replay and the cold
// seed-minting draw from, so the offered load is bounded by HTTP and
// cache machinery rather than simulation depth.
var cheapExperiments = []string{"fig7", "fig10", "fig13", "fig15", "fig16", "fig17", "fig22", "table1"}

// heavyColdExperiments are the FULL-mode experiments cold jobs mint
// never-seen keys for. These were the suite's wall-clock heavyweights
// until the closed-form engines (memsim's all-miss proof, simmpi's
// script replay) took over; serving them cold under 100 ms is exactly
// the claim the -max-cold-p99 gate checks. Fault plans do not enter
// these experiments' computations, so the re-seeded specs still render
// through the fast paths — each seed only mints a distinct cache key.
var heavyColdExperiments = []string{"fig5", "fig20", "ext-stride"}

// coldFaultPlan is the catalog plan cold jobs re-seed; any plan works,
// it only has to make each distinct seed a distinct content address.
const coldFaultPlan = "phi-straggler"

// fleetExperiment is the scenario fleet traffic runs: the quick
// recovery figure capped at a small fleet, hot as one fixed spec and
// cold as fresh-seed re-rolls of the same shape.
const fleetExperiment = "ext-fleet-recovery"

// fleetSpec builds one fleet job body; seed 0 is the fixed hot spec.
func fleetSpec(seed uint64) []byte {
	return harness.JobSpec{
		Experiment: fleetExperiment,
		Quick:      true,
		Seed:       seed,
		Fleet:      &harness.FleetSpec{Nodes: 8},
	}.MarshalCanonical()
}

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "maiad-load:", err)
		os.Exit(1)
	}
}

// Report is the JSON document a load run writes: the offered-load
// shape, the client-observed results, and the server's final metrics.
type Report struct {
	// SchemaVersion is the report wire version.
	SchemaVersion int `json:"schema_version"`
	// Label names the run; Time stamps it.
	Label string `json:"label"`
	Time  string `json:"time"`
	// Addr, DurationNs, Clients, HotFraction describe the offered load.
	Addr        string  `json:"addr"`
	DurationNs  int64   `json:"duration_ns"`
	Clients     int     `json:"clients"`
	HotFraction float64 `json:"hot_fraction"`
	// Requests and Errors count completed calls.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// ThroughputRPS is Requests over the elapsed wall clock.
	ThroughputRPS float64 `json:"throughput_rps"`
	// MeanNs through MaxNs summarize client-observed request latency.
	MeanNs int64 `json:"mean_ns"`
	P50Ns  int64 `json:"p50_ns"`
	P95Ns  int64 `json:"p95_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MaxNs  int64 `json:"max_ns"`
	// ColdP99Ns is the p99 over cache MISSES only — the cold path the
	// heavy experiments exercise, invisible in the hit-dominated P99Ns.
	ColdP99Ns int64 `json:"cold_p99_ns"`
	// FleetFraction is the slice of requests routed to POST /v1/fleet;
	// FleetRequests counts them and FleetP99Ns is their p99 (hits and
	// cold fleet simulations together).
	FleetFraction float64 `json:"fleet_fraction"`
	FleetRequests int64   `json:"fleet_requests"`
	FleetP99Ns    int64   `json:"fleet_p99_ns"`
	// Hits, Misses, Coalesced count the cache statuses clients saw.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	// HitRatio is Hits over Requests.
	HitRatio float64 `json:"hit_ratio"`
	// Server is the server's own /metrics snapshot after the run.
	Server maiad.Snapshot `json:"server"`
}

func run(args []string, logw io.Writer) error {
	flags := flag.NewFlagSet("maiad-load", flag.ContinueOnError)
	addr := flags.String("addr", "http://127.0.0.1:8750", "maiad base URL")
	duration := flags.Duration("duration", 60*time.Second, "how long to offer load")
	clients := flags.Int("clients", 4, "concurrent client loops")
	hot := flags.Float64("hot", 0.9, "fraction of requests replaying cacheable specs (0..1)")
	out := flags.String("out", "", "write the JSON report to this file")
	label := flags.String("label", "maiad-load", "label for the report")
	fleetFrac := flags.Float64("fleet-frac", 0.1, "fraction of requests sent to POST /v1/fleet (0 disables fleet traffic)")
	minRPS := flags.Float64("min-rps", 0, "fail unless throughput reaches this many req/s")
	minHitRatio := flags.Float64("min-hit-ratio", 0, "fail unless the cache hit ratio reaches this")
	maxColdP99 := flags.Duration("max-cold-p99", 0, "fail if the misses-only (cold path) p99 exceeds this")
	maxFleetP99 := flags.Duration("max-fleet-p99", 0, "fail if the fleet-traffic p99 exceeds this")
	if err := flags.Parse(args); err != nil {
		return err
	}
	if *clients < 1 {
		return fmt.Errorf("need at least one client")
	}
	if *hot < 0 || *hot > 1 {
		return fmt.Errorf("-hot %v outside [0,1]", *hot)
	}
	if *fleetFrac < 0 || *fleetFrac > 1 {
		return fmt.Errorf("-fleet-frac %v outside [0,1]", *fleetFrac)
	}

	base := strings.TrimRight(*addr, "/")
	if err := waitHealthy(base, 5*time.Second); err != nil {
		return err
	}

	// The hot pool: every cheap experiment's golden-seeded default spec
	// plus its quick spec (cold on the first draw, a hit forever after).
	hotPool := make([][]byte, 0, 2*len(cheapExperiments))
	for _, id := range cheapExperiments {
		hotPool = append(hotPool,
			harness.JobSpec{Experiment: id}.MarshalCanonical(),
			harness.JobSpec{Experiment: id, Quick: true}.MarshalCanonical())
	}

	var (
		hist      maiad.Histogram
		coldHist  maiad.Histogram // misses only
		fleetHist maiad.Histogram // fleet traffic only
		requests  atomic.Int64
		errorsN   atomic.Int64
		hits      atomic.Int64
		misses    atomic.Int64
		coalesced atomic.Int64
		coldSeq   atomic.Uint64
		fleetSeq  atomic.Uint64
		fleetN    atomic.Int64
	)
	client := &http.Client{Timeout: 30 * time.Second}
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			for time.Now().Before(deadline) {
				var body []byte
				endpoint := "/v1/jobs"
				fleet := rng.Float64() < *fleetFrac
				switch {
				case fleet && rng.Float64() < *hot:
					// The fixed fleet scenario: cold exactly once, a
					// cache hit for the rest of the run.
					endpoint, body = "/v1/fleet", fleetSpec(0)
				case fleet:
					// A never-seen fleet simulation (seeds start at 2:
					// seed 1 is the catalog default and normalizes to
					// the fixed spec's key).
					endpoint, body = "/v1/fleet", fleetSpec(1+fleetSeq.Add(1))
				case rng.Float64() < *hot:
					body = hotPool[rng.Intn(len(hotPool))]
				default:
					body = (harness.JobSpec{
						Experiment: heavyColdExperiments[rng.Intn(len(heavyColdExperiments))],
						FaultPlan:  coldFaultPlan,
						Seed:       coldSeq.Add(1),
					}).MarshalCanonical()
				}
				start := time.Now()
				status, err := postJob(client, base+endpoint, body)
				elapsed := time.Since(start)
				hist.Observe(elapsed)
				requests.Add(1)
				if fleet {
					fleetN.Add(1)
					fleetHist.Observe(elapsed)
				}
				switch {
				case err != nil:
					errorsN.Add(1)
				case status == maiad.CacheHit:
					hits.Add(1)
				case status == maiad.CacheMiss:
					misses.Add(1)
					coldHist.Observe(elapsed)
				case status == maiad.CacheCoalesced:
					coalesced.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := *duration

	snap, err := fetchSnapshot(client, base)
	if err != nil {
		return fmt.Errorf("final metrics snapshot: %w", err)
	}

	n := requests.Load()
	rep := Report{
		SchemaVersion: 1,
		Label:         *label,
		Time:          time.Now().UTC().Format(time.RFC3339),
		Addr:          base,
		DurationNs:    elapsed.Nanoseconds(),
		Clients:       *clients,
		HotFraction:   *hot,
		Requests:      n,
		Errors:        errorsN.Load(),
		ThroughputRPS: float64(n) / elapsed.Seconds(),
		MeanNs:        hist.Mean().Nanoseconds(),
		P50Ns:         hist.Quantile(0.50).Nanoseconds(),
		P95Ns:         hist.Quantile(0.95).Nanoseconds(),
		P99Ns:         hist.Quantile(0.99).Nanoseconds(),
		MaxNs:         hist.Max().Nanoseconds(),
		ColdP99Ns:     coldHist.Quantile(0.99).Nanoseconds(),
		FleetFraction: *fleetFrac,
		FleetRequests: fleetN.Load(),
		FleetP99Ns:    fleetHist.Quantile(0.99).Nanoseconds(),
		Hits:          hits.Load(),
		Misses:        misses.Load(),
		Coalesced:     coalesced.Load(),
		Server:        snap,
	}
	if n > 0 {
		rep.HitRatio = float64(rep.Hits) / float64(n)
	}

	fmt.Fprintf(logw,
		"maiad-load: %d requests in %v (%.1f req/s), p50 %v p95 %v p99 %v cold-p99 %v fleet-p99 %v (%d fleet), %d hits %d misses %d coalesced %d errors (hit ratio %.3f)\n",
		n, elapsed, rep.ThroughputRPS,
		time.Duration(rep.P50Ns), time.Duration(rep.P95Ns), time.Duration(rep.P99Ns), time.Duration(rep.ColdP99Ns),
		time.Duration(rep.FleetP99Ns), rep.FleetRequests,
		rep.Hits, rep.Misses, rep.Coalesced, rep.Errors, rep.HitRatio)

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(logw, "maiad-load: wrote report to %s\n", *out)
	}

	if rep.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed", rep.Errors, n)
	}
	if *minRPS > 0 && rep.ThroughputRPS < *minRPS {
		return fmt.Errorf("throughput %.1f req/s below the %.1f floor", rep.ThroughputRPS, *minRPS)
	}
	if *minHitRatio > 0 && rep.HitRatio < *minHitRatio {
		return fmt.Errorf("hit ratio %.3f below the %.3f floor", rep.HitRatio, *minHitRatio)
	}
	if *maxColdP99 > 0 && rep.Misses > 0 && time.Duration(rep.ColdP99Ns) > *maxColdP99 {
		return fmt.Errorf("cold-path p99 %v above the %v ceiling", time.Duration(rep.ColdP99Ns), *maxColdP99)
	}
	if *maxFleetP99 > 0 && rep.FleetRequests > 0 && time.Duration(rep.FleetP99Ns) > *maxFleetP99 {
		return fmt.Errorf("fleet-traffic p99 %v above the %v ceiling", time.Duration(rep.FleetP99Ns), *maxFleetP99)
	}
	return nil
}

// waitHealthy polls /healthz until the server answers or the window
// closes, so the load run can start the moment a freshly-booted maiad
// is ready.
func waitHealthy(base string, window time.Duration) error {
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(window)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %v: %v", base, window, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// postJob submits one spec and returns the cache status the server
// reported.
func postJob(client *http.Client, url string, body []byte) (string, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var jr maiad.JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d", resp.StatusCode)
	}
	return jr.Cache, nil
}

// fetchSnapshot grabs the server's JSON metrics snapshot.
func fetchSnapshot(client *http.Client, base string) (maiad.Snapshot, error) {
	var snap maiad.Snapshot
	resp, err := client.Get(base + "/metrics?format=json")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}
