package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"maia/internal/harness"
	"maia/internal/maiad"
)

// A short run against an in-process golden-seeded server completes
// without request errors and writes a coherent report.
func TestLoadRun(t *testing.T) {
	s, err := maiad.New(maiad.Config{Golden: harness.EmbeddedGolden(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "report.json")
	var log strings.Builder
	err = run([]string{
		"-addr", ts.URL,
		"-duration", "1s",
		"-clients", "2",
		"-out", out,
		"-label", "smoke",
		"-min-rps", "5",
		"-min-hit-ratio", "0.2",
	}, &log)
	if err != nil {
		t.Fatalf("load run failed: %v\nlog:\n%s", err, log.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Label != "smoke" || rep.Requests == 0 || rep.Errors != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Hits == 0 || rep.HitRatio <= 0 {
		t.Errorf("no cache hits observed: %+v", rep)
	}
	if rep.P50Ns <= 0 || rep.P99Ns < rep.P50Ns {
		t.Errorf("latency quantiles incoherent: p50=%d p99=%d", rep.P50Ns, rep.P99Ns)
	}
	if rep.Server.EngineRuns == 0 {
		t.Errorf("cold jobs never reached the engine: %+v", rep.Server)
	}
	if rep.Hits+rep.Misses+rep.Coalesced != rep.Requests {
		t.Errorf("status counts %d+%d+%d don't sum to %d requests",
			rep.Hits, rep.Misses, rep.Coalesced, rep.Requests)
	}
}

// Fleet traffic reaches POST /v1/fleet and reports its own p99; the
// -max-fleet-p99 gate fails when the ceiling is impossible.
func TestLoadFleetTraffic(t *testing.T) {
	s, err := maiad.New(maiad.Config{Golden: harness.EmbeddedGolden(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "report.json")
	var log strings.Builder
	err = run([]string{
		"-addr", ts.URL,
		"-duration", "1s",
		"-clients", "2",
		"-fleet-frac", "0.5",
		"-out", out,
	}, &log)
	if err != nil {
		t.Fatalf("fleet load run failed: %v\nlog:\n%s", err, log.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.FleetFraction != 0.5 || rep.FleetRequests == 0 || rep.FleetP99Ns <= 0 {
		t.Fatalf("fleet traffic not measured: %+v", rep)
	}

	log.Reset()
	err = run([]string{
		"-addr", ts.URL,
		"-duration", "300ms",
		"-fleet-frac", "1",
		"-max-fleet-p99", "1ns",
	}, &log)
	if err == nil || !strings.Contains(err.Error(), "fleet-traffic p99") {
		t.Fatalf("impossible fleet p99 ceiling did not fail the run: %v", err)
	}
}

// The gate flags fail the run when the floor is unreachable.
func TestLoadGates(t *testing.T) {
	s, err := maiad.New(maiad.Config{Golden: harness.EmbeddedGolden(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var log strings.Builder
	err = run([]string{
		"-addr", ts.URL,
		"-duration", "300ms",
		"-clients", "1",
		"-min-rps", "1000000",
	}, &log)
	if err == nil || !strings.Contains(err.Error(), "below the") {
		t.Fatalf("unreachable rps floor did not fail the run: %v", err)
	}
}

// Bad flags and an unreachable server fail fast.
func TestLoadErrors(t *testing.T) {
	var log strings.Builder
	if err := run([]string{"-clients", "0"}, &log); err == nil {
		t.Error("zero clients accepted")
	}
	if err := run([]string{"-hot", "1.5"}, &log); err == nil {
		t.Error("hot fraction above 1 accepted")
	}
	if err := run([]string{"-fleet-frac", "-0.1"}, &log); err == nil {
		t.Error("negative fleet fraction accepted")
	}
	if err := run([]string{"-addr", "http://127.0.0.1:1", "-duration", "100ms"}, &log); err == nil {
		t.Error("unreachable server accepted")
	}
}
