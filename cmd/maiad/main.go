// Command maiad serves the paper's experiments as a service: a
// long-running HTTP/JSON control plane over the same registry, engine,
// fault plans, and model that cmd/maiabench drives in batch. Clients
// POST typed JobSpecs to /v1/jobs (or batches to /v1/sweeps) and get
// the rendered experiment output back; results are content-addressed by
// the canonical spec hash, the committed golden snapshots pre-seed the
// cache, identical in-flight jobs coalesce onto one engine execution,
// and /metrics exposes per-endpoint latency histograms plus cache and
// coalescer counters.
//
// Usage:
//
//	maiad                      # listen on :8750, golden-seeded cache
//	maiad -addr 127.0.0.1:0    # ephemeral port (logged at startup)
//	maiad -workers 4           # bound concurrent engine executions
//	maiad -no-seed             # start fully cold (benchmarking misses)
//
// SIGINT/SIGTERM drain in-flight requests and exit 0, logging a final
// traffic summary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"maia/internal/harness"
	"maia/internal/maiad"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "maiad:", err)
		os.Exit(1)
	}
}

// run boots the server and serves until ctx is canceled. When ready is
// non-nil the bound address is sent on it once the listener is up (the
// hook tests use with -addr 127.0.0.1:0).
func run(ctx context.Context, args []string, ready chan<- string) error {
	flags := flag.NewFlagSet("maiad", flag.ContinueOnError)
	addr := flags.String("addr", ":8750", "listen address")
	workers := flags.Int("workers", runtime.NumCPU(), "max concurrent engine executions")
	goldenDir := flags.String("golden", harness.DefaultGoldenDir,
		"golden snapshot directory seeding the cache (falls back to the build-time copies)")
	noSeed := flags.Bool("no-seed", false, "skip golden seeding and start with a cold cache")
	if err := flags.Parse(args); err != nil {
		return err
	}

	var golden fs.FS
	if !*noSeed {
		golden = goldenSource(*goldenDir)
	}
	srv, err := maiad.New(maiad.Config{
		Golden:  golden,
		Workers: *workers,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "maiad: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			return err
		}
		<-done
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}

	snap := srv.Metrics().Snapshot()
	fmt.Fprintf(os.Stderr,
		"maiad: shutdown clean: %d hits, %d misses, %d coalesced, %d engine runs, %d errors, %d cache entries\n",
		snap.CacheHits, snap.CacheMisses, snap.Coalesced, snap.EngineRuns,
		snap.JobErrors, srv.Cache().Len())
	return nil
}

// goldenSource prefers the on-disk snapshot directory (freshest when
// run from the repository root) and falls back to the copies embedded
// at build time so seeding works from anywhere.
func goldenSource(dir string) fs.FS {
	if info, err := os.Stat(dir); err == nil && info.IsDir() {
		return os.DirFS(dir)
	}
	return harness.EmbeddedGolden()
}
