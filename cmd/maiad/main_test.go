package main

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"maia/internal/maiad"
)

// The daemon boots on an ephemeral port, serves jobs from the seeded
// cache, and drains cleanly when its context is canceled.
func TestServeAndShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-addr", "127.0.0.1:0"}, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h maiad.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.CacheEntries == 0 {
		t.Fatalf("healthz: %+v (want seeded cache)", h)
	}

	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"table1"}`))
	if err != nil {
		t.Fatal(err)
	}
	var jr maiad.JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if jr.Cache != maiad.CacheHit || !jr.Seeded {
		t.Fatalf("default job: cache=%q seeded=%v, want seeded hit", jr.Cache, jr.Seeded)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after cancel")
	}
}

// -no-seed starts fully cold.
func TestNoSeed(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-no-seed"}, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h maiad.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.CacheEntries != 0 {
		t.Fatalf("cold start has %d cache entries", h.CacheEntries)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// Bad flags fail fast.
func TestBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-addr", "not an address"}, nil); err == nil {
		t.Fatal("bad listen address accepted")
	}
}
