// Package-level meta-tests: the documentation deliverable, enforced.
package main_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Every exported declaration in every non-test source file must carry a
// doc comment.
func TestEveryExportedItemDocumented(t *testing.T) {
	var missing []string
	err := filepath.Walk(".", func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".go") ||
			strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		report := func(name string, pos token.Pos) {
			missing = append(missing, path+": "+name+" ("+fset.Position(pos).String()+")")
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					report("func "+d.Name.Name, d.Pos())
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report("type "+s.Name.Name, s.Pos())
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report("var/const "+n.Name, n.Pos())
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Errorf("%d exported items lack doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}

// Struct fields of exported structs should be documented too; this is
// advisory (fields with self-evident names inside documented structs are
// acceptable), so the test only guards against whole structs of
// undocumented fields in the public model types.
func TestModelStructFieldsDocumented(t *testing.T) {
	fset := token.NewFileSet()
	for _, path := range []string{
		"internal/core/workload.go",
		"internal/machine/processor.go",
	} {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil || len(st.Fields.List) == 0 {
				return true
			}
			documented := 0
			exported := 0
			for _, fl := range st.Fields.List {
				for _, name := range fl.Names {
					if !name.IsExported() {
						continue
					}
					exported++
					if fl.Doc != nil || fl.Comment != nil {
						documented++
					}
				}
			}
			if exported >= 3 && documented == 0 {
				t.Errorf("%s: a struct with %d exported fields documents none of them",
					fset.Position(st.Pos()), exported)
			}
			return true
		})
	}
}
