module maia

go 1.22
