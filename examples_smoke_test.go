// Smoke tests for the examples/ programs: each must build and run to
// completion, printing its headline lines — so refactors can't silently
// break the documented entry points.
package main_test

import (
	"os/exec"
	"strings"
	"testing"
)

// exampleChecks maps each example to substrings its output must contain.
var exampleChecks = map[string][]string{
	"quickstart":  {"node: 16 host cores", "STREAM triad", "offload"},
	"npbsweep":    {"NPB class C, OpenMP", "NPB class C, MPI", "FT"},
	"cfd":         {"cart3d", "overflow", "MPI"},
	"offload":     {"offload PCIe bandwidth", "framing ceiling"},
	"distributed": {"NPB kernels", "EP", "MATCHES serial"},
}

// Every example builds and runs successfully with the expected output.
func TestExamplesBuildAndRun(t *testing.T) {
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./examples/...")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./examples/...: %v\n%s", err, out)
	}
	for name, wants := range exampleChecks {
		name, wants := name, wants
		t.Run(name, func(t *testing.T) {
			out, err := exec.Command(bin + "/" + name).CombinedOutput()
			if err != nil {
				t.Fatalf("%s exited with %v\n%s", name, err, out)
			}
			for _, want := range wants {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q", name, want)
				}
			}
		})
	}
}
