//go:build !race

package memsim

// raceEnabled mirrors race_on_test.go for normal builds.
const raceEnabled = false
