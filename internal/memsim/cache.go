// Package memsim simulates the memory subsystems of the Maia node's two
// processor types: a set-associative, LRU, inclusive cache hierarchy in
// front of either DDR3 (host) or GDDR5 (Phi) main memory.
//
// It powers three of the paper's experiments:
//
//   - Figure 4: STREAM triad aggregate bandwidth vs thread count, including
//     the Phi's drop beyond 118 threads when access streams exceed the 128
//     simultaneously-open GDDR5 banks;
//   - Figure 5: memory load latency vs working-set size (the L1/L2/L3/DRAM
//     plateaus on the host, L1/L2/GDDR5 on the Phi), measured by running a
//     real pointer chase through the simulated hierarchy;
//   - Figure 6: per-core read and write bandwidth vs working-set size.
package memsim

import (
	"fmt"

	"maia/internal/machine"
	"maia/internal/vclock"
)

// Cache is one level of a set-associative cache with LRU replacement.
// Addresses are byte addresses; the cache operates on aligned lines.
type Cache struct {
	name      string
	lineBytes int
	sets      int
	assoc     int
	latency   vclock.Time

	// tags[s] holds the line tags resident in set s in LRU order:
	// index 0 is most recently used.
	tags [][]uint64

	hits, misses uint64
}

// NewCache builds a cache with the given geometry. sizeBytes must be a
// multiple of lineBytes*assoc; the set count is derived.
func NewCache(name string, sizeBytes, lineBytes, assoc int, latency vclock.Time) (*Cache, error) {
	if lineBytes <= 0 || assoc <= 0 || sizeBytes <= 0 {
		return nil, fmt.Errorf("memsim: non-positive cache geometry (%d/%d/%d)", sizeBytes, lineBytes, assoc)
	}
	if sizeBytes%(lineBytes*assoc) != 0 {
		return nil, fmt.Errorf("memsim: size %d not divisible by line*assoc %d", sizeBytes, lineBytes*assoc)
	}
	sets := sizeBytes / (lineBytes * assoc)
	c := &Cache{
		name:      name,
		lineBytes: lineBytes,
		sets:      sets,
		assoc:     assoc,
		latency:   latency,
		tags:      make([][]uint64, sets),
	}
	// All sets share one flat backing array: Fill caps each set at assoc
	// entries, so the capacity-limited subslices never reallocate, and a
	// 16K-set L3 costs two allocations instead of 16K.
	backing := make([]uint64, sets*assoc)
	for i := range c.tags {
		c.tags[i] = backing[i*assoc : i*assoc : (i+1)*assoc]
	}
	return c, nil
}

// Name returns the level name ("L1", "L2", ...).
func (c *Cache) Name() string { return c.name }

// Latency returns the hit latency of this level.
func (c *Cache) Latency() vclock.Time { return c.latency }

// SizeBytes returns the capacity.
func (c *Cache) SizeBytes() int { return c.sets * c.assoc * c.lineBytes }

// line maps a byte address to its line number.
func (c *Cache) line(addr uint64) uint64 { return addr / uint64(c.lineBytes) }

// Lookup probes the cache for the line containing addr, updating LRU state
// on a hit. It does NOT allocate on a miss; use Fill for that.
func (c *Cache) Lookup(addr uint64) bool {
	ln := c.line(addr)
	set := c.tags[ln%uint64(c.sets)]
	// MRU fast path: streaming accesses re-touch the most recent line, and
	// a hit at index 0 leaves LRU order unchanged, so no movement is
	// needed. This also fully covers the hit side of a direct-mapped
	// (assoc==1) cache, whose sets hold at most one line.
	if len(set) > 0 && set[0] == ln {
		c.hits++
		return true
	}
	if c.assoc == 1 {
		c.misses++
		return false
	}
	for i, tag := range set {
		if tag == ln {
			// Move to front (MRU).
			copy(set[1:i+1], set[:i])
			set[0] = ln
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// Fill installs the line containing addr as MRU, evicting the LRU line of
// its set if the set is full. The evicted line number and true are
// returned when an eviction happened.
func (c *Cache) Fill(addr uint64) (evicted uint64, didEvict bool) {
	ln := c.line(addr)
	idx := ln % uint64(c.sets)
	set := c.tags[idx]
	// Already present? Just promote.
	for i, tag := range set {
		if tag == ln {
			copy(set[1:i+1], set[:i])
			set[0] = ln
			return 0, false
		}
	}
	if len(set) < c.assoc {
		set = append(set, 0)
	} else {
		evicted, didEvict = set[len(set)-1], true
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = ln
	c.tags[idx] = set
	return evicted, didEvict
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// ResetStats clears hit/miss counters without touching cache contents.
func (c *Cache) ResetStats() { c.hits, c.misses = 0, 0 }

// Flush empties the cache (contents and statistics).
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = c.tags[i][:0]
	}
	c.ResetStats()
}

// Hierarchy is an inclusive multi-level cache hierarchy in front of main
// memory, modeling one core's view of the memory system.
type Hierarchy struct {
	proc   machine.ProcessorSpec
	levels []*Cache
	memLat vclock.Time

	memAccesses uint64

	// noFastPath forces the per-element simulation even for workloads
	// the steady-state engine (steady.go) could replay; the escape
	// hatch the equivalence property tests and CI use to keep the slow
	// path exercised.
	noFastPath bool
}

// NewHierarchy builds the hierarchy for one core of proc. Shared levels
// (the host L3) are modeled at full capacity: the micro-benchmarks the
// paper runs for Figures 5–6 are single-threaded per core, so one core can
// use the whole shared level.
func NewHierarchy(proc machine.ProcessorSpec) (*Hierarchy, error) {
	h := &Hierarchy{proc: proc, memLat: vclock.Time(proc.MemLatencyNs) * vclock.Nanosecond}
	for _, lv := range proc.Caches {
		c, err := NewCache(lv.Name, lv.SizeBytes, lv.LineBytes, lv.Assoc,
			vclock.Time(lv.LatencyNs)*vclock.Nanosecond)
		if err != nil {
			return nil, fmt.Errorf("memsim: %s: %w", lv.Name, err)
		}
		h.levels = append(h.levels, c)
	}
	return h, nil
}

// MustHierarchy is NewHierarchy that panics on error; the built-in
// processor specs are always valid.
func MustHierarchy(proc machine.ProcessorSpec) *Hierarchy {
	h, err := NewHierarchy(proc)
	if err != nil {
		panic(err)
	}
	return h
}

// Levels returns the cache levels, closest first.
func (h *Hierarchy) Levels() []*Cache { return h.levels }

// MemAccesses returns how many accesses reached main memory.
func (h *Hierarchy) MemAccesses() uint64 { return h.memAccesses }

// SetNoFastPath toggles the steady-state fast path (steady.go) off
// (true) so every access walks the per-element simulation — the escape
// hatch equivalence tests and CI use. The MAIA_NO_FASTPATH environment
// variable forces the same globally.
func (h *Hierarchy) SetNoFastPath(v bool) { h.noFastPath = v }

// Flush empties every level.
func (h *Hierarchy) Flush() {
	for _, c := range h.levels {
		c.Flush()
	}
	h.memAccesses = 0
}

// Access performs one load (or store) of the line containing addr and
// returns the level index that served it (len(levels) means main memory)
// and the load-to-use latency charged.
func (h *Hierarchy) Access(addr uint64) (level int, lat vclock.Time) {
	for i, c := range h.levels {
		if c.Lookup(addr) {
			// Fill into faster levels (inclusive hierarchy).
			for j := 0; j < i; j++ {
				h.levels[j].Fill(addr)
			}
			return i, c.Latency()
		}
	}
	// Miss everywhere: fetch from memory, install in every level.
	h.memAccesses++
	for _, c := range h.levels {
		c.Fill(addr)
	}
	return len(h.levels), h.memLat
}

// LevelName returns a printable name for a level index returned by Access.
func (h *Hierarchy) LevelName(level int) string {
	if level >= 0 && level < len(h.levels) {
		return h.levels[level].Name()
	}
	return "MEM"
}
