package memsim

import (
	"testing"

	"maia/internal/machine"
)

// Unit stride delivers (nearly) the full line bandwidth; growing strides
// waste proportionally more of every line.
func TestStridedBandwidthDecreases(t *testing.T) {
	proc := machine.XeonPhi5110P()
	h := MustHierarchy(proc)
	const ws = 16 << 20
	prev := 1e18
	for _, stride := range []int{8, 16, 32, 64} {
		bw := StridedBandwidth(h, proc, ws, stride, 8)
		if bw >= prev {
			t.Errorf("stride %d: bandwidth %v did not decrease (prev %v)", stride, bw, prev)
		}
		prev = bw
	}
}

// Within one line (stride <= 64 B), halving density halves useful
// bandwidth: line traffic is constant per line.
func TestStrideWasteRatio(t *testing.T) {
	proc := machine.SandyBridge()
	h := MustHierarchy(proc)
	const ws = 32 << 20
	unit := StridedBandwidth(h, proc, ws, 8, 8)
	s64 := StridedBandwidth(h, proc, ws, 64, 8)
	ratio := s64 / unit
	// A stride-64 walk touches one element per line: 8/64 useful.
	if ratio < 0.10 || ratio > 0.15 {
		t.Errorf("stride-64/unit = %.3f, want ~0.125", ratio)
	}
}

// Beyond the line size the useful bandwidth stops falling (every access
// already fetches one line per element).
func TestStrideBeyondLineFlat(t *testing.T) {
	proc := machine.SandyBridge()
	h := MustHierarchy(proc)
	const ws = 32 << 20
	a := StridedBandwidth(h, proc, ws, 64, 8)
	b := StridedBandwidth(h, proc, ws, 256, 8)
	if b > a*1.05 || b < a*0.7 {
		t.Errorf("stride 256 (%v) should be near stride 64 (%v)", b, a)
	}
}

// Random gather is latency-bound: far below even the stride-wasted
// streaming bandwidth on the Phi, whose memory latency is 295 ns.
func TestGatherLatencyBound(t *testing.T) {
	proc := machine.XeonPhi5110P()
	h := MustHierarchy(proc)
	gather := GatherLatencyBound(h, 16<<20, 8, 1)
	// 8 bytes per 295 ns = 0.027 GB/s.
	if gather > 0.05 {
		t.Errorf("phi gather bandwidth %v GB/s, want latency-bound ~0.03", gather)
	}
	hostH := MustHierarchy(machine.SandyBridge())
	hostGather := GatherLatencyBound(hostH, 64<<20, 8, 1)
	if hostGather/gather < 2 {
		t.Errorf("host gather (%v) should be several times the Phi's (%v)", hostGather, gather)
	}
}

// The measured derates back the execution model's stride factors: a
// stride-32 walk uses a quarter of every line, so useful bandwidth is a
// quarter of unit stride's on both architectures. (The Phi's FURTHER
// losses on irregular access are latency exposure — the gather test
// above — not line waste.)
func TestStrideDerateLineWaste(t *testing.T) {
	for _, proc := range []machine.ProcessorSpec{machine.SandyBridge(), machine.XeonPhi5110P()} {
		d := StrideDerate(proc, 32)
		if d < 0.2 || d > 0.3 {
			t.Errorf("%s stride-32 derate = %.3f, want ~0.25", proc.Architecture, d)
		}
	}
}
