package memsim

import (
	"testing"
	"testing/quick"

	"maia/internal/machine"
	"maia/internal/vclock"
)

func mustCache(t *testing.T, size, line, assoc int) *Cache {
	t.Helper()
	c, err := NewCache("T", size, line, assoc, vclock.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCacheRejectsBadGeometry(t *testing.T) {
	if _, err := NewCache("x", 0, 64, 8, 0); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewCache("x", 1024, 0, 8, 0); err == nil {
		t.Error("line 0 accepted")
	}
	if _, err := NewCache("x", 1000, 64, 8, 0); err == nil {
		t.Error("non-divisible size accepted")
	}
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := mustCache(t, 4096, 64, 4)
	if c.Lookup(0) {
		t.Fatal("cold lookup hit")
	}
	c.Fill(0)
	if !c.Lookup(0) {
		t.Fatal("lookup after fill missed")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", hits, misses)
	}
}

func TestCacheSameLineDifferentBytes(t *testing.T) {
	c := mustCache(t, 4096, 64, 4)
	c.Fill(0)
	if !c.Lookup(63) {
		t.Fatal("byte 63 of cached line missed")
	}
	if c.Lookup(64) {
		t.Fatal("next line hit without fill")
	}
}

// LRU: fill a set beyond its associativity; the least recently used line
// must be the one evicted.
func TestCacheLRUEviction(t *testing.T) {
	// 4 sets, assoc 2: lines mapping to set 0 are 0, 4, 8, ...
	c := mustCache(t, 64*4*2, 64, 2)
	addr := func(line int) uint64 { return uint64(line) * 64 }
	c.Fill(addr(0))
	c.Fill(addr(4))
	// Touch line 0 so line 4 becomes LRU.
	if !c.Lookup(addr(0)) {
		t.Fatal("line 0 evicted prematurely")
	}
	ev, did := c.Fill(addr(8))
	if !did || ev != 4 {
		t.Fatalf("evicted line %d (did=%v), want 4", ev, did)
	}
	if !c.Lookup(addr(0)) || c.Lookup(addr(4)) || !c.Lookup(addr(8)) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestCacheFillPromotesExisting(t *testing.T) {
	c := mustCache(t, 64*1*2, 64, 2) // one set, assoc 2
	c.Fill(0)
	c.Fill(64)
	// Re-fill line 0: must promote, not duplicate or evict.
	if _, did := c.Fill(0); did {
		t.Fatal("re-fill evicted")
	}
	// Now line at 64 is LRU.
	if ev, did := c.Fill(128); !did || ev != 1 {
		t.Fatalf("evicted %d, want line 1", ev)
	}
}

func TestCacheFlush(t *testing.T) {
	c := mustCache(t, 4096, 64, 4)
	c.Fill(0)
	c.Flush()
	if c.Lookup(0) {
		t.Fatal("hit after flush")
	}
	// Stats were reset then one miss recorded.
	if h, m := c.Stats(); h != 0 || m != 1 {
		t.Fatalf("stats after flush = %d/%d", h, m)
	}
}

// Property: a cache with S sets and associativity A holds at most A lines
// per set; re-accessing the A most recently used lines of a set always hits.
func TestCacheMRUAlwaysResident(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		c, err := NewCache("q", 64*8*4, 64, 4, 0) // 8 sets, assoc 4
		if err != nil {
			return false
		}
		rng := vclock.NewRNG(seed)
		var last []uint64 // last 4 distinct lines of set 0, most recent first
		for i := 0; i < int(n)+1; i++ {
			line := uint64(rng.Intn(64)) * 8 // all map to set 0
			c.Fill(line * 64)
			// Track recency of distinct lines.
			out := []uint64{line}
			for _, l := range last {
				if l != line {
					out = append(out, l)
				}
			}
			if len(out) > 4 {
				out = out[:4]
			}
			last = out
		}
		for _, l := range last {
			if !c.Lookup(l * 64) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: hits + misses equals total lookups for any access pattern.
func TestCacheStatsConsistent(t *testing.T) {
	f := func(addrs []uint16) bool {
		c, err := NewCache("q", 8192, 64, 8, 0)
		if err != nil {
			return false
		}
		for _, a := range addrs {
			if !c.Lookup(uint64(a)) {
				c.Fill(uint64(a))
			}
		}
		h, m := c.Stats()
		return h+m == uint64(len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyInclusive(t *testing.T) {
	h := MustHierarchy(machine.SandyBridge())
	// First access misses to memory.
	lv, lat := h.Access(0)
	if h.LevelName(lv) != "MEM" {
		t.Fatalf("cold access served by %s", h.LevelName(lv))
	}
	if lat.Nanoseconds() != 81 {
		t.Fatalf("cold access latency %v ns, want 81", lat.Nanoseconds())
	}
	// Second access hits L1.
	lv, lat = h.Access(0)
	if h.LevelName(lv) != "L1" || lat.Nanoseconds() != 1.5 {
		t.Fatalf("warm access = %s / %v ns", h.LevelName(lv), lat.Nanoseconds())
	}
	if h.MemAccesses() != 1 {
		t.Fatalf("mem accesses = %d, want 1", h.MemAccesses())
	}
}

func TestHierarchyL2HitFillsL1(t *testing.T) {
	h := MustHierarchy(machine.SandyBridge())
	// Evict line 0 from L1 by filling its set (64 sets in 32KB/64B/8):
	// lines 0, 64, 128, ... map to L1 set 0 but to distinct L2 sets
	// (L2 has 512 sets), so line 0 stays resident in L2.
	h.Access(0)
	for i := 1; i <= 8; i++ {
		h.Access(uint64(i) * 64 * 64)
	}
	// Line 0 must now be out of L1 but still in L2 (L2 set count 512, so
	// these lines spread over different L2 sets).
	lv, _ := h.Access(0)
	if h.LevelName(lv) != "L2" {
		t.Fatalf("expected L2 hit, got %s", h.LevelName(lv))
	}
	// And the L2 hit must have refilled L1.
	lv, _ = h.Access(0)
	if h.LevelName(lv) != "L1" {
		t.Fatalf("L2 hit did not refill L1 (got %s)", h.LevelName(lv))
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := MustHierarchy(machine.XeonPhi5110P())
	h.Access(0)
	h.Flush()
	lv, _ := h.Access(0)
	if h.LevelName(lv) != "MEM" {
		t.Fatalf("access after flush served by %s", h.LevelName(lv))
	}
}

func TestPhiHierarchyLevels(t *testing.T) {
	h := MustHierarchy(machine.XeonPhi5110P())
	if len(h.Levels()) != 2 {
		t.Fatalf("Phi hierarchy has %d levels, want 2", len(h.Levels()))
	}
	if h.Levels()[1].SizeBytes() != 512<<10 {
		t.Fatalf("Phi L2 size = %d", h.Levels()[1].SizeBytes())
	}
}
