package memsim

import (
	"maia/internal/machine"
	"maia/internal/vclock"
)

// LatencyPoint is one point of the Figure 5 curve: the average load-to-use
// latency observed when chasing pointers through a working set of the
// given size.
type LatencyPoint struct {
	WorkingSetBytes int
	LatencyNs       float64
}

// ChaseLatency measures average load latency for one working-set size by
// actually running a pointer chase through the simulated hierarchy: the
// working set is a random cyclic permutation of cache lines (so hardware
// prefetching cannot help, exactly like the lat_mem_rd-style tools the
// paper used), walked once to warm the caches and then measured.
func ChaseLatency(h *Hierarchy, workingSetBytes int, seed uint64) LatencyPoint {
	const lineBytes = 64
	lines := workingSetBytes / lineBytes
	if lines < 1 {
		lines = 1
	}
	h.Flush()
	var total vclock.Time
	// For tiny working sets one traversal is too short to average well;
	// walk at least 4096 loads.
	n := lines
	if n < 4096 {
		n = 4096
	}
	if eng := newChaseUniformSim(h, lines); eng != nil {
		// Provable serving level: every steady access is served at the
		// same level whatever the permutation order, so the permutation
		// is never built and the whole chase prices arithmetically.
		eng.run(lines, nil, nil)
		eng.run(n, &total, nil)
		eng.finish()
		return LatencyPoint{
			WorkingSetBytes: workingSetBytes,
			LatencyNs:       total.Nanoseconds() / float64(n),
		}
	}
	// Random cyclic permutation of the lines, walked starting at line 0.
	rng := vclock.NewRNG(seed)
	perm := steadyInt.Get(lines)
	rng.PermInto(perm)
	if eng := newChaseSim(h, perm); eng != nil {
		// Steady-state replay: warm-up cycle, then the measured loads.
		steadyInt.Put(perm)
		eng.run(lines, nil, nil)
		eng.run(n, &total, nil)
		eng.finish()
	} else {
		// Slow path: a real next-pointer walk. next[i] = successor line.
		next := steadyInt.Get(lines)
		for i := 0; i < lines; i++ {
			next[perm[i]] = perm[(i+1)%lines]
		}
		steadyInt.Put(perm)
		// Warm-up pass: touch every line once.
		idx := 0
		for i := 0; i < lines; i++ {
			h.Access(uint64(idx) * lineBytes)
			idx = next[idx]
		}
		// Measured pass.
		for i := 0; i < n; i++ {
			_, lat := h.Access(uint64(idx) * lineBytes)
			total += lat
			idx = next[idx]
		}
		steadyInt.Put(next)
	}
	return LatencyPoint{
		WorkingSetBytes: workingSetBytes,
		LatencyNs:       total.Nanoseconds() / float64(n),
	}
}

// LatencyCurve sweeps working-set sizes from minBytes to maxBytes
// (doubling) and returns the Figure 5 curve for the given processor.
// Each point keeps its historical seed (1, 2, 3, ... in sweep order)
// and measures against its own flushed hierarchy, so the concurrent
// sweep returns exactly what the sequential one did.
func LatencyCurve(proc machine.ProcessorSpec, minBytes, maxBytes int) []LatencyPoint {
	sizes := doublingSizes(minBytes, maxBytes)
	out := make([]LatencyPoint, len(sizes))
	sweepHier(proc, len(sizes), func(h *Hierarchy, i int) {
		out[i] = ChaseLatency(h, sizes[i], uint64(1+i))
	})
	return out
}
