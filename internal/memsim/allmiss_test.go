package memsim

import (
	"math/rand"
	"testing"

	"maia/internal/machine"
)

// Property tests for the total-overflow analytic paths: when every
// touched set at every level holds at least assoc+1 distinct sequence
// lines, the engine proves all-memory outcomes without simulating a
// single access. These suites bias footprints ABOVE that threshold
// (the 300-trial suites in steady_test.go rarely reach it) and pin
// bit-equality against the per-element simulation.

// allMissLines returns the smallest chase footprint (in lines) that the
// total-overflow proof accepts for spec: max over levels of
// sets*(assoc+1).
func allMissLines(spec machine.ProcessorSpec) int {
	need := 1
	for _, c := range spec.Caches {
		sets := c.SizeBytes / (c.LineBytes * c.Assoc)
		if n := sets * (c.Assoc + 1); n > need {
			need = n
		}
	}
	return need
}

// TestChaseAllMissMatchesSlow drives ChaseLatency into the proven
// all-memory regime over randomized geometries (non-power-of-two sets,
// direct-mapped levels) and requires the analytic answer — computed
// without ever building the permutation — to match the real seeded
// pointer chase bit for bit, counters included.
func TestChaseAllMissMatchesSlow(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		spec := steadySpec(rng, 64)
		lines := allMissLines(spec) + rng.Intn(64)
		ws := lines * 64
		seed := rng.Uint64()
		fast, slow := MustHierarchy(spec), MustHierarchy(spec)
		slow.SetNoFastPath(true)
		var fp LatencyPoint
		withFastPath(func() {
			if eng := newChaseUniformSim(fast, lines); eng == nil {
				t.Fatalf("trial %d (lines=%d spec=%+v): proof refused an overflowing chase", trial, lines, spec)
			} else {
				eng.finish()
			}
			fp = ChaseLatency(fast, ws, seed)
		})
		sp := ChaseLatency(slow, ws, seed)
		if fp != sp {
			t.Fatalf("trial %d (lines=%d seed=%d spec=%+v): fast %+v, slow %+v", trial, lines, seed, spec, fp, sp)
		}
		requireSameCounters(t, trial, fast, slow)
	}
}

// TestStridedAllMissMatchesSlow is the same property for the strided
// walks behind ext-stride, including sub-line strides whose same-line
// follow-up accesses the aggregate-only engine prices as a count rather
// than a vector.
func TestStridedAllMissMatchesSlow(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 300; trial++ {
		lineBytes := 16 << rng.Intn(3)
		spec := steadySpec(rng, lineBytes)
		ws := (allMissLines(spec) + 2 + rng.Intn(8)) * lineBytes
		stride := 1 + rng.Intn(lineBytes) // sub-line through full-line
		// Keep the per-element simulation affordable: the differential
		// cares about the sub-line grouping, not the access count.
		if min := ws / 20000; stride < min {
			stride = min
		}
		elem := 1 + rng.Intn(stride)
		fast, slow := MustHierarchy(spec), MustHierarchy(spec)
		slow.SetNoFastPath(true)
		var fb float64
		withFastPath(func() {
			if eng := newStridedAllMissSim(fast, ws/stride, uint64(stride)); eng == nil {
				t.Fatalf("trial %d (ws=%d stride=%d spec=%+v): proof refused an overflowing walk", trial, ws, stride, spec)
			} else {
				eng.finish()
			}
			fb = StridedBandwidth(fast, spec, ws, stride, elem)
		})
		sb := StridedBandwidth(slow, spec, ws, stride, elem)
		if fb != sb {
			t.Fatalf("trial %d (ws=%d stride=%d elem=%d spec=%+v): fast %v, slow %v", trial, ws, stride, elem, spec, fb, sb)
		}
		requireSameCounters(t, trial, fast, slow)
	}
}

// TestAllMissEngagementPins pins the proof's engagement on the paper's
// machines at the figure sizes — the wall-clock win rests on these being
// non-nil — and its refusal conditions.
func TestAllMissEngagementPins(t *testing.T) {
	withFastPath(func() {
		host := MustHierarchy(machine.SandyBridge())
		phi := MustHierarchy(machine.XeonPhi5110P())
		// Figure 5's DRAM tail: a 64 MB chase overflows even the 20 MB L3.
		if eng := newChaseUniformSim(host, (64<<20)/64); eng == nil {
			t.Error("host 64 MB chase not proven all-miss")
		} else {
			if eng.servLv != len(host.levels) {
				t.Errorf("host 64 MB chase served at level %d, want memory", eng.servLv)
			}
			eng.finish()
		}
		if eng := newChaseUniformSim(phi, (64<<20)/64); eng == nil {
			t.Error("phi 64 MB chase not proven all-miss")
		} else {
			eng.finish()
		}
		// Every host doubling point is provable: L3-resident sizes serve
		// uniformly at L3 (index 2) once the cold cycle fills it.
		if eng := newChaseUniformSim(host, (16<<20)/64); eng == nil {
			t.Error("host 16 MB chase not proven L3-resident")
		} else {
			if eng.servLv != 2 {
				t.Errorf("host 16 MB chase served at level %d, want 2 (L3)", eng.servLv)
			}
			eng.finish()
		}
		// ext-stride's DRAM sweep: 32 MB at stride 8.
		if eng := newStridedAllMissSim(host, (32<<20)/8, 8); eng == nil {
			t.Error("host 32 MB stride-8 walk not proven all-miss")
		} else {
			eng.finish()
		}
		// A partially resident footprint — between 20 and 21 lines per L3
		// set — has no closed form and must refuse.
		if eng := newChaseUniformSim(host, 330000); eng != nil {
			eng.finish()
			t.Error("proof accepted a partially L3-resident chase")
		}
		// Strides beyond a line leave per-set gaps; the generic engine owns
		// those.
		if eng := newStridedAllMissSim(host, (32<<20)/128, 128); eng != nil {
			eng.finish()
			t.Error("proof accepted a beyond-line stride")
		}
		// Escape hatches.
		host.SetNoFastPath(true)
		if eng := newChaseUniformSim(host, (64<<20)/64); eng != nil {
			eng.finish()
			t.Error("proof ignored SetNoFastPath")
		}
		if eng := newStridedAllMissSim(host, (32<<20)/8, 8); eng != nil {
			eng.finish()
			t.Error("strided proof ignored SetNoFastPath")
		}
	})
}

// TestChaseUniformLevelMatchesSlow sweeps footprints across every
// residency regime of randomized geometries — fully resident at some
// level, partially resident (stepping engine), totally overflowing —
// and requires bit-equality with the per-element simulation throughout.
func TestChaseUniformLevelMatchesSlow(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		spec := steadySpec(rng, 64)
		lines := 1 + rng.Intn(allMissLines(spec)+64)
		ws := lines * 64
		seed := rng.Uint64()
		fast, slow := MustHierarchy(spec), MustHierarchy(spec)
		slow.SetNoFastPath(true)
		var fp LatencyPoint
		withFastPath(func() { fp = ChaseLatency(fast, ws, seed) })
		sp := ChaseLatency(slow, ws, seed)
		if fp != sp {
			t.Fatalf("trial %d (lines=%d seed=%d spec=%+v): fast %+v, slow %+v", trial, lines, seed, spec, fp, sp)
		}
		requireSameCounters(t, trial, fast, slow)
	}
}

// TestFig5PointsMatchSlow pins the actual Figure 5 machines: each
// doubling point that now prices in closed form must reproduce the
// per-element simulation bit for bit (the goldens depend on it).
func TestFig5PointsMatchSlow(t *testing.T) {
	if testing.Short() {
		t.Skip("slow-path 16 MB chases take a while")
	}
	for _, spec := range []machine.ProcessorSpec{machine.SandyBridge(), machine.XeonPhi5110P()} {
		for i, ws := range []int{4 << 10, 32 << 10, 64 << 10, 256 << 10, 512 << 10, 1 << 20, 16 << 20} {
			fast, slow := MustHierarchy(spec), MustHierarchy(spec)
			slow.SetNoFastPath(true)
			seed := uint64(1 + i)
			var fp LatencyPoint
			withFastPath(func() { fp = ChaseLatency(fast, ws, seed) })
			sp := ChaseLatency(slow, ws, seed)
			if fp != sp {
				t.Fatalf("%s ws=%d: fast %+v, slow %+v", spec.Name, ws, fp, sp)
			}
			if fast.MemAccesses() != slow.MemAccesses() {
				t.Fatalf("%s ws=%d: mem accesses fast %d, slow %d", spec.Name, ws, fast.MemAccesses(), slow.MemAccesses())
			}
		}
	}
}

// TestStrideDerateMemoized pins the maiad win: repeated StrideDerate
// calls for a catalog processor reuse the first measurement bit for bit.
func TestStrideDerateMemoized(t *testing.T) {
	withFastPath(func() {
		spec := machine.SandyBridge()
		d1 := StrideDerate(spec, 32)
		derateMu.Lock()
		_, cached := derateMemo[derateKey{proc: spec.Name, stride: 32}]
		derateMu.Unlock()
		if !cached {
			t.Error("StrideDerate did not memoize its result")
		}
		if d2 := StrideDerate(spec, 32); d2 != d1 {
			t.Errorf("memoized derate %v differs from first measurement %v", d2, d1)
		}
	})
}
