package memsim

import (
	"testing"

	"maia/internal/machine"
)

// Allocation-regression guards for the steady-state engine. The sweep
// cost model is O(period) state (pooled) plus O(1) arithmetic per
// extrapolated cycle; a regression that reintroduces per-iteration
// allocation (or stops recycling the pooled engine state) trips these.

// TestSteadyCycleReplayAllocFree pins that once the engine reaches the
// steady state, pricing more cycles allocates nothing: the replay is
// counter arithmetic, not simulation.
func TestSteadyCycleReplayAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; bound asserted in normal builds")
	}
	withFastPath(func() {
		h := MustHierarchy(machine.SandyBridge())
		h.Flush()
		eng := newStridedSim(h, 64, 64)
		if eng == nil {
			t.Fatal("engine refused an eligible workload")
		}
		defer eng.finish()
		counts := make([]uint64, len(h.levels)+1)
		// Drive to steady state (two identical cycles) before measuring.
		for c := 0; c < 4; c++ {
			eng.run(eng.period, nil, counts)
		}
		if !eng.steady {
			t.Fatal("engine never reached the steady state")
		}
		allocs := testing.AllocsPerRun(5, func() {
			for c := 0; c < 4096; c++ {
				eng.run(eng.period, nil, counts)
			}
		})
		if allocs > 0 {
			t.Errorf("steady replay of 4096 cycles allocated %.1f times, want 0", allocs)
		}
	})
}

// TestChaseLatencySweepAllocBound pins the end-to-end sweep cost: a
// small-footprint ChaseLatency performs thousands of virtual accesses
// but must allocate only O(lines) — the permutation buffers plus the
// pooled engine state (recycled, so the steady-state marginal cost is
// near zero). The bound is loose; only an O(iterations) regression
// blows through it.
func TestChaseLatencySweepAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; bound asserted in normal builds")
	}
	h := MustHierarchy(machine.SandyBridge())
	allocs := testing.AllocsPerRun(5, func() {
		ChaseLatency(h, 8*64, 42) // 8 lines, 4096 measured accesses
	})
	if allocs > 64 {
		t.Errorf("ChaseLatency allocated %.1f times for an 8-line chase, want <= 64", allocs)
	}
}

// TestStridedSweepAllocBound is the same guard for the strided sweep
// behind Figures 5–6: ~4K accesses over a 16-line footprint must stay
// within a fixed allocation budget.
func TestStridedSweepAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; bound asserted in normal builds")
	}
	spec := machine.SandyBridge()
	h := MustHierarchy(spec)
	allocs := testing.AllocsPerRun(5, func() {
		StridedBandwidth(h, spec, 16*64, 64, 8)
	})
	if allocs > 64 {
		t.Errorf("StridedBandwidth allocated %.1f times for a 16-line sweep, want <= 64", allocs)
	}
}
