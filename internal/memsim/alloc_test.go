package memsim

import (
	"runtime"
	"testing"

	"maia/internal/machine"
)

// Allocation-regression guards for the steady-state engine. The sweep
// cost model is O(period) state (pooled) plus O(1) arithmetic per
// extrapolated cycle; a regression that reintroduces per-iteration
// allocation (or stops recycling the pooled engine state) trips these.

// TestSteadyCycleReplayAllocFree pins that once the engine reaches the
// steady state, pricing more cycles allocates nothing: the replay is
// counter arithmetic, not simulation.
func TestSteadyCycleReplayAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; bound asserted in normal builds")
	}
	withFastPath(func() {
		h := MustHierarchy(machine.SandyBridge())
		h.Flush()
		eng := newStridedSim(h, 64, 64)
		if eng == nil {
			t.Fatal("engine refused an eligible workload")
		}
		defer eng.finish()
		counts := make([]uint64, len(h.levels)+1)
		// Drive to steady state (two identical cycles) before measuring.
		for c := 0; c < 4; c++ {
			eng.run(eng.period, nil, counts)
		}
		if !eng.steady {
			t.Fatal("engine never reached the steady state")
		}
		allocs := testing.AllocsPerRun(5, func() {
			for c := 0; c < 4096; c++ {
				eng.run(eng.period, nil, counts)
			}
		})
		if allocs > 0 {
			t.Errorf("steady replay of 4096 cycles allocated %.1f times, want 0", allocs)
		}
	})
}

// TestChaseLatencySweepAllocBound pins the end-to-end sweep cost: a
// small-footprint ChaseLatency performs thousands of virtual accesses
// but must allocate only O(lines) — the permutation buffers plus the
// pooled engine state (recycled, so the steady-state marginal cost is
// near zero). The bound is loose; only an O(iterations) regression
// blows through it.
func TestChaseLatencySweepAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; bound asserted in normal builds")
	}
	h := MustHierarchy(machine.SandyBridge())
	allocs := testing.AllocsPerRun(5, func() {
		ChaseLatency(h, 8*64, 42) // 8 lines, 4096 measured accesses
	})
	if allocs > 64 {
		t.Errorf("ChaseLatency allocated %.1f times for an 8-line chase, want <= 64", allocs)
	}
}

// TestFig5SweepAllocBound pins the end-to-end Figure 5 sweep: the full
// 4 KB..64 MB latency curve on both machines. Before the flat cache
// backing, the pooled permutations, and the all-miss proof, this shape
// cost ~19.6k mallocs and ~202 MB of allocation; it now sits near 1.1k
// and 36 MB. The bounds leave ~4x headroom so only a real regression
// (per-set slices, per-point permutations, unpooled engine state)
// trips them.
func TestFig5SweepAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; bound asserted in normal builds")
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	LatencyCurve(machine.SandyBridge(), 4<<10, 64<<20)
	LatencyCurve(machine.XeonPhi5110P(), 4<<10, 64<<20)
	runtime.ReadMemStats(&after)
	if mallocs := after.Mallocs - before.Mallocs; mallocs > 5000 {
		t.Errorf("fig5-shaped sweep performed %d mallocs, want <= 5000", mallocs)
	}
	if bytes := after.TotalAlloc - before.TotalAlloc; bytes > 128<<20 {
		t.Errorf("fig5-shaped sweep allocated %d bytes, want <= %d", bytes, 128<<20)
	}
}

// TestStridedSweepAllocBound is the same guard for the strided sweep
// behind Figures 5–6: ~4K accesses over a 16-line footprint must stay
// within a fixed allocation budget.
func TestStridedSweepAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; bound asserted in normal builds")
	}
	spec := machine.SandyBridge()
	h := MustHierarchy(spec)
	allocs := testing.AllocsPerRun(5, func() {
		StridedBandwidth(h, spec, 16*64, 64, 8)
	})
	if allocs > 64 {
		t.Errorf("StridedBandwidth allocated %.1f times for a 16-line sweep, want <= 64", allocs)
	}
}
