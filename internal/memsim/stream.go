package memsim

import (
	"fmt"

	"maia/internal/machine"
)

// StreamConfig controls the STREAM triad model (Figure 4).
type StreamConfig struct {
	// BankLimit enables the GDDR5 open-bank model: when the number of
	// independent access streams (one per thread for triad, as the paper
	// argues) exceeds the device's simultaneously-open banks, row-buffer
	// thrashing cuts sustained bandwidth. Disabling it is the ablation
	// for the Figure 4 drop.
	BankLimit bool
	// BankPenalty is the bandwidth multiplier applied past the limit.
	// The paper measures 140 GB/s after 180 GB/s: 0.78.
	BankPenalty float64
}

// DefaultStreamConfig returns the configuration that reproduces Figure 4.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{BankLimit: true, BankPenalty: 140.0 / 180.0}
}

// StreamPoint is one point of the Figure 4 curve.
type StreamPoint struct {
	Threads  int
	TriadGBs float64
}

// TriadBandwidth returns the aggregate STREAM triad bandwidth of a
// partition. Bandwidth ramps linearly with threads until the processor's
// sustained limit, then (on GDDR5) falls off when threads exceed the open
// bank count.
func TriadBandwidth(part machine.Partition, cfg StreamConfig) float64 {
	proc := part.Proc
	// Per-thread ramp: a single stream cannot saturate the memory system;
	// the sustained aggregate is reached when every usable core
	// contributes one stream.
	saturating := proc.UsableCores()
	if saturating < 1 {
		saturating = 1
	}
	perThread := proc.MemSustainedGBs / float64(saturating)
	if part.Device == machine.Host {
		// Two-socket host: machine.SandyBridge is per socket; a host
		// partition spans both sockets (16 cores, 2x the bandwidth).
		sockets := float64(part.Cores) / float64(proc.Cores)
		if sockets < 1 {
			sockets = 1
		}
		perThread = proc.MemSustainedGBs / float64(proc.Cores)
		limit := proc.MemSustainedGBs * sockets
		bw := float64(part.Threads()) * perThread
		if bw > limit {
			bw = limit
		}
		return bw
	}
	threads := part.Threads()
	bw := float64(threads) * perThread
	if bw > proc.MemSustainedGBs {
		bw = proc.MemSustainedGBs
	}
	if cfg.BankLimit && threads > proc.MemBanks {
		bw *= cfg.BankPenalty
	}
	return bw
}

// StreamCurve returns the Figure 4 curve for a device: aggregate triad
// bandwidth at each thread count in threads. Points are independent
// model evaluations, so the sweep runs on the shared bounded worker
// pool with results written by index.
func StreamCurve(n *machine.Node, dev machine.Device, threads []int, cfg StreamConfig) []StreamPoint {
	out := make([]StreamPoint, len(threads))
	sweepPoints(len(threads), func(i int) {
		t := threads[i]
		var part machine.Partition
		if dev.IsPhi() {
			part = machine.PhiThreadsPartition(n, dev, t)
			// Partition is balanced (threads spread over cores); the
			// stream count is the requested thread count.
			part = exactThreads(part, t)
		} else {
			tpc := 1
			cores := t
			if t > n.HostCores() {
				tpc = 2
				cores = (t + 1) / 2
			}
			part = machine.HostCoresPartition(n, cores, tpc)
		}
		out[i] = StreamPoint{Threads: t, TriadGBs: TriadBandwidth(part, cfg)}
	})
	return out
}

// exactThreads trims a balanced partition so Threads() equals t when t is
// not an exact multiple of the per-core thread count. The model only needs
// the product, so we fold the remainder into the core count.
func exactThreads(p machine.Partition, t int) machine.Partition {
	if p.Threads() == t {
		return p
	}
	q := p
	q.Cores = t / q.ThreadsPerCore
	if q.Cores < 1 {
		q.Cores = 1
	}
	return q
}

// Triad runs a real STREAM triad kernel a[i] = b[i] + scalar*c[i]. The
// simulator charges virtual time elsewhere; this function exists so that
// examples and tests exercise genuine data movement and arithmetic.
func Triad(a, b, c []float64, scalar float64) error {
	if len(a) != len(b) || len(a) != len(c) {
		return fmt.Errorf("memsim: triad length mismatch (%d/%d/%d)", len(a), len(b), len(c))
	}
	for i := range a {
		a[i] = b[i] + scalar*c[i]
	}
	return nil
}

// Copy runs the STREAM copy kernel a[i] = b[i].
func Copy(a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("memsim: copy length mismatch (%d/%d)", len(a), len(b))
	}
	copy(a, b)
	return nil
}

// Add runs the STREAM add kernel a[i] = b[i] + c[i].
func Add(a, b, c []float64) error {
	if len(a) != len(b) || len(a) != len(c) {
		return fmt.Errorf("memsim: add length mismatch (%d/%d/%d)", len(a), len(b), len(c))
	}
	for i := range a {
		a[i] = b[i] + c[i]
	}
	return nil
}

// Scale runs the STREAM scale kernel a[i] = scalar*b[i].
func Scale(a, b []float64, scalar float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("memsim: scale length mismatch (%d/%d)", len(a), len(b))
	}
	for i := range a {
		a[i] = scalar * b[i]
	}
	return nil
}
