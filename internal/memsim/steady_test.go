package memsim

import (
	"math/rand"
	"testing"

	"maia/internal/machine"
)

// withFastPath runs fn with the steady-state engine force-enabled, so
// assertions that the engine engages still hold when the whole test
// binary runs under MAIA_NO_FASTPATH=1 (the CI slow-path job).
func withFastPath(fn func()) {
	prev := noFastPathEnv
	noFastPathEnv = false
	defer func() { noFastPathEnv = prev }()
	fn()
}

// steadySpec builds a small hierarchy with a uniform line size (the
// steady-state engine's eligibility condition), randomized level count,
// associativity (including direct-mapped) and set counts (including
// non-powers-of-two).
func steadySpec(rng *rand.Rand, lineBytes int) machine.ProcessorSpec {
	levels := 1 + rng.Intn(3)
	var caches []machine.CacheLevel
	sets := 1 + rng.Intn(7)
	for i := 0; i < levels; i++ {
		assoc := 1 << rng.Intn(3) // 1 (direct-mapped), 2, 4
		caches = append(caches, machine.CacheLevel{
			Name:            []string{"L1", "L2", "L3"}[i],
			SizeBytes:       lineBytes * assoc * sets,
			LineBytes:       lineBytes,
			Assoc:           assoc,
			LatencyNs:       float64(1 + i*5),
			ReadPerCoreGBs:  float64(40 - 10*i),
			WritePerCoreGBs: float64(30 - 8*i),
		})
		sets = sets*(2+rng.Intn(3)) + rng.Intn(3)
	}
	return machine.ProcessorSpec{
		Name: "rand", Caches: caches,
		MemLatencyNs: 100, MemReadPerCoreGBs: 5, MemWritePerCoreGBs: 4,
	}
}

// requireSameCounters asserts the fast and slow hierarchies observed
// bit-identical hit/miss/memory counters.
func requireSameCounters(t *testing.T, trial int, fast, slow *Hierarchy) {
	t.Helper()
	for lv := range slow.Levels() {
		sh, sm := slow.Levels()[lv].Stats()
		fh, fm := fast.Levels()[lv].Stats()
		if fh != sh || fm != sm {
			t.Fatalf("trial %d: level %d stats fast %d/%d, slow %d/%d", trial, lv, fh, fm, sh, sm)
		}
	}
	if fast.MemAccesses() != slow.MemAccesses() {
		t.Fatalf("trial %d: mem accesses fast %d, slow %d", trial, fast.MemAccesses(), slow.MemAccesses())
	}
}

// TestChaseLatencySteadyMatchesSlow is the tentpole exactness property:
// the steady-state engine's extrapolated latency and hit/miss counters
// must be BIT-identical to the per-element simulation over randomized
// cache geometries and footprints.
func TestChaseLatencySteadyMatchesSlow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		spec := steadySpec(rng, 64) // chases address 64-byte lines
		fast, slow := MustHierarchy(spec), MustHierarchy(spec)
		slow.SetNoFastPath(true)
		lines := 1 + rng.Intn(300)
		ws := lines * 64
		seed := rng.Uint64()
		fp := ChaseLatency(fast, ws, seed)
		sp := ChaseLatency(slow, ws, seed)
		if fp != sp {
			t.Fatalf("trial %d (ws=%d seed=%d spec=%+v): fast %+v, slow %+v", trial, ws, seed, spec, fp, sp)
		}
		requireSameCounters(t, trial, fast, slow)
	}
}

// TestStridedBandwidthSteadyMatchesSlow covers the strided sweeps,
// including non-power-of-two and sub-line strides.
func TestStridedBandwidthSteadyMatchesSlow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		lineBytes := 16 << rng.Intn(3)
		spec := steadySpec(rng, lineBytes)
		fast, slow := MustHierarchy(spec), MustHierarchy(spec)
		slow.SetNoFastPath(true)
		ws := 1 + rng.Intn(16<<10)
		stride := 1 + rng.Intn(3*lineBytes) // includes non-powers-of-two
		elem := 1 + rng.Intn(16)
		fb := StridedBandwidth(fast, spec, ws, stride, elem)
		sb := StridedBandwidth(slow, spec, ws, stride, elem)
		if fb != sb {
			t.Fatalf("trial %d (ws=%d stride=%d elem=%d): fast %v, slow %v", trial, ws, stride, elem, fb, sb)
		}
		requireSameCounters(t, trial, fast, slow)
	}
}

// TestStreamBandwidthSteadyMatchesSlow covers the sequential streaming
// sweep behind Figure 6.
func TestStreamBandwidthSteadyMatchesSlow(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		lineBytes := 16 << rng.Intn(3)
		spec := steadySpec(rng, lineBytes)
		fast, slow := MustHierarchy(spec), MustHierarchy(spec)
		slow.SetNoFastPath(true)
		ws := 1 + rng.Intn(32<<10)
		fp := StreamBandwidth(fast, spec, ws)
		sp := StreamBandwidth(slow, spec, ws)
		if fp != sp {
			t.Fatalf("trial %d (ws=%d): fast %+v, slow %+v", trial, ws, fp, sp)
		}
		requireSameCounters(t, trial, fast, slow)
	}
}

// TestSteadyEngineDetectsCycle pins that the fast path actually
// engages: a small strided loop must reach the steady state and stop
// simulating (the detection is what the wall-clock win rests on).
func TestSteadyEngineDetectsCycle(t *testing.T) {
	withFastPath(func() {
		h := MustHierarchy(machine.SandyBridge())
		h.Flush()
		eng := newStridedSim(h, 64, 64)
		if eng == nil {
			t.Fatal("engine refused an eligible workload")
		}
		counts := make([]uint64, len(h.Levels())+1)
		for p := 0; p < 16; p++ {
			eng.run(eng.period, nil, counts)
		}
		if !eng.steady {
			t.Fatal("engine never detected the steady state over 16 identical cycles")
		}
		eng.finish()
	})
}

// TestSteadyEngineRefusals pins the fallback conditions: the escape
// hatch and non-uniform line sizes must disable the engine.
func TestSteadyEngineRefusals(t *testing.T) {
	withFastPath(func() {
		h := MustHierarchy(machine.SandyBridge())
		h.SetNoFastPath(true)
		if eng := newStridedSim(h, 64, 64); eng != nil {
			t.Fatal("engine ignored SetNoFastPath")
		}
		mixed := machine.ProcessorSpec{
			Name: "mixed",
			Caches: []machine.CacheLevel{
				{Name: "L1", SizeBytes: 1024, LineBytes: 32, Assoc: 2, LatencyNs: 1},
				{Name: "L2", SizeBytes: 4096, LineBytes: 64, Assoc: 2, LatencyNs: 5},
			},
			MemLatencyNs: 100,
		}
		hm := MustHierarchy(mixed)
		if eng := newStridedSim(hm, 64, 64); eng != nil {
			t.Fatal("engine accepted non-uniform line sizes")
		}
	})
}
