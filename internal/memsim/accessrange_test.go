package memsim

import (
	"math/rand"
	"testing"

	"maia/internal/machine"
)

// randomSpec builds a small hierarchy with randomized line size,
// associativity (including direct-mapped), level count and capacities.
func randomSpec(rng *rand.Rand) machine.ProcessorSpec {
	lineBytes := 16 << rng.Intn(3) // 16, 32, 64
	levels := 1 + rng.Intn(3)
	var caches []machine.CacheLevel
	size := lineBytes * (1 + rng.Intn(4)) * (1 << rng.Intn(3)) // a few lines
	for i := 0; i < levels; i++ {
		assoc := 1 << rng.Intn(3) // 1 (direct-mapped), 2, 4
		// Size must be a multiple of lineBytes*assoc.
		sz := size * assoc
		caches = append(caches, machine.CacheLevel{
			Name:      []string{"L1", "L2", "L3"}[i],
			SizeBytes: sz,
			LineBytes: lineBytes,
			Assoc:     assoc,
			LatencyNs: float64(1 + i*5),
		})
		size = sz * (2 + rng.Intn(2))
	}
	return machine.ProcessorSpec{Name: "rand", Caches: caches, MemLatencyNs: 100}
}

// TestAccessRangeMatchesNaive is the exactness property: over random
// (addr, n, stride, assoc, level geometry), AccessRange must agree with
// the naive per-element Access loop on the serving-level counts, the
// returned total latency, every level's hit/miss counters, and the
// memory access count — i.e. the fast path is undetectable.
func TestAccessRangeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		spec := randomSpec(rng)
		naive, err := NewHierarchy(spec)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		fast, err := NewHierarchy(spec)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// A few batches back to back, so later batches start from
		// non-empty (and identical) cache state.
		for batch := 0; batch < 3; batch++ {
			addr := uint64(rng.Intn(1 << 16))
			n := rng.Intn(200)
			stride := uint64(rng.Intn(100)) // includes 0 and sub-line strides
			wantCounts := make([]uint64, len(naive.Levels())+1)
			var wantLat int64
			for i := 0; i < n; i++ {
				lv, lat := naive.Access(addr + uint64(i)*stride)
				wantCounts[lv]++
				wantLat += int64(lat)
			}
			st := fast.AccessRange(addr, n, stride)
			if int64(st.Latency) != wantLat {
				t.Fatalf("trial %d batch %d (addr=%d n=%d stride=%d): latency %d, naive %d",
					trial, batch, addr, n, stride, int64(st.Latency), wantLat)
			}
			for lv := range wantCounts {
				if st.LevelCounts[lv] != wantCounts[lv] {
					t.Fatalf("trial %d batch %d (addr=%d n=%d stride=%d): level %d count %d, naive %d",
						trial, batch, addr, n, stride, lv, st.LevelCounts[lv], wantCounts[lv])
				}
			}
			if st.Accesses() != uint64(n) {
				t.Fatalf("trial %d batch %d: tallied %d accesses, want %d", trial, batch, st.Accesses(), n)
			}
			for lv := range naive.Levels() {
				nh, nm := naive.Levels()[lv].Stats()
				fh, fm := fast.Levels()[lv].Stats()
				if nh != fh || nm != fm {
					t.Fatalf("trial %d batch %d level %d: hits/misses %d/%d, naive %d/%d",
						trial, batch, lv, fh, fm, nh, nm)
				}
			}
			if naive.MemAccesses() != fast.MemAccesses() {
				t.Fatalf("trial %d batch %d: mem accesses %d, naive %d",
					trial, batch, fast.MemAccesses(), naive.MemAccesses())
			}
		}
	}
}

// TestAccessRangeLRUStateMatches drives both hierarchies through a
// batched phase and then a shared probe phase: if the fast path had
// perturbed LRU order, the probe outcomes would diverge.
func TestAccessRangeLRUStateMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		spec := randomSpec(rng)
		naive := MustHierarchy(spec)
		fast := MustHierarchy(spec)
		addr := uint64(rng.Intn(4096))
		n := 1 + rng.Intn(300)
		stride := uint64(1 + rng.Intn(80))
		for i := 0; i < n; i++ {
			naive.Access(addr + uint64(i)*stride)
		}
		fast.AccessRange(addr, n, stride)
		// Probe random addresses through both; any LRU divergence shows
		// up as a different serving level.
		for p := 0; p < 200; p++ {
			a := uint64(rng.Intn(1 << 14))
			nlv, nlat := naive.Access(a)
			flv, flat := fast.Access(a)
			if nlv != flv || nlat != flat {
				t.Fatalf("trial %d probe %d addr=%d: level/lat %d/%v, naive %d/%v",
					trial, p, a, flv, flat, nlv, nlat)
			}
		}
	}
}

func TestAccessRangeEdgeCases(t *testing.T) {
	h := MustHierarchy(machine.SandyBridge())
	if st := h.AccessRange(0, 0, 8); st.Accesses() != 0 {
		t.Fatalf("n=0 tallied %d accesses", st.Accesses())
	}
	if st := h.AccessRange(128, -3, 8); st.Accesses() != 0 {
		t.Fatalf("n<0 tallied %d accesses", st.Accesses())
	}
	// Zero stride: one real access, then pure L1 hits.
	h.Flush()
	st := h.AccessRange(64, 100, 0)
	if st.Accesses() != 100 {
		t.Fatalf("zero stride tallied %d accesses, want 100", st.Accesses())
	}
	if st.LevelCounts[0] != 99 {
		t.Fatalf("zero stride: %d L1 hits, want 99", st.LevelCounts[0])
	}
}
