package memsim

import (
	"bytes"
	"os"

	"maia/internal/bufpool"
	"maia/internal/vclock"
)

// The steady-state engine replays the cyclic access patterns behind the
// Figure 5/6 sweeps (pointer chases and strided streams) without
// walking the per-set LRU state on every access. Both workloads visit a
// fixed sequence of DISTINCT cache lines over and over; for such
// sequences LRU residency has a closed form — the stack-distance
// property: a line hits at a level iff fewer than `assoc` distinct
// other lines of its set were touched there since its own last touch.
// The engine tracks, per (level, position), the value of a per-set
// touch counter at the line's last touch. Because each line touches a
// level at most once per cycle, a window that spans at most one full
// cycle contains only distinct touches, so `counter-now − stamp` IS the
// distinct count; for the rare stale windows (a line that skipped a
// level for a while during the cold transient) the exact distinct count
// is recovered by scanning the set's member stamps.
//
// On top of the exact per-access replay sits steady-state detection:
// the per-position serving levels of a cycle are a pure function of the
// previous cycle's, so once two consecutive full cycles produce the
// same outcome vector every later cycle repeats it. From there the
// remaining iterations are priced arithmetically — integer counters by
// multiplication, latency by replaying the same float additions in the
// same order, keeping results bit-identical to the per-element path.
//
// After a run the hierarchy's hit/miss counters are exact but its tag
// state is unspecified; callers must Flush before reusing it (every
// sweep in this package does).

// noFastPathEnv force-disables the steady-state engine process-wide.
var noFastPathEnv = os.Getenv("MAIA_NO_FASTPATH") != ""

var (
	steadyU64 bufpool.Pool[uint64]
	steadyU32 bufpool.Pool[uint32]
	steadyU8  bufpool.Pool[uint8]
	steadyI32 bufpool.Pool[int32]
	steadyInt bufpool.Pool[int]
)

// steadySim replays one cyclic sequence of distinct lines against one
// (freshly flushed) hierarchy. All storage is O(period + sets), pooled.
type steadySim struct {
	h      *Hierarchy
	period int
	seq    []uint64 // distinct line numbers, one per position
	extra  []uint32 // same-L1-line follow-up hits absorbed at each position (nil = none)

	L     int
	sets  []int
	assoc []uint64
	lat   []vclock.Time // per level; lat[L] is main memory

	touch  [][]uint64 // per level, per set: monotone touch counter
	stamps [][]uint64 // per level, per position: touch value at last touch (0 = never)
	lastCy [][]uint32 // per level, per position: cycle of last touch

	// Member CSR per level, built lazily on the first stale-window probe:
	// positions grouped by set, for exact distinct counting.
	memStart [][]int32
	memPos   [][]int32

	pos   int    // next position within the cycle
	cycle uint32 // 1-based current cycle

	prevO, curO []uint8 // serving level per position, previous/current cycle
	havePrev    bool
	steady      bool
	uniform     bool // proven: every position serves at servLv in steady state
	servLv      int  // the uniform serving level (s.L = main memory)
	coldLeft    int  // compulsory all-miss accesses left before the uniform steady state

	cycCounts []uint64 // per-level serve counts over one steady cycle
	cycExtra  uint64   // extra L1 hits over one steady cycle

	// Counter deltas applied to h in finish().
	dHits, dMiss []uint64
	dMem         uint64
}

// newSteadySim wraps a freshly flushed hierarchy for the given distinct-
// line cyclic sequence, or returns nil when the fast path must not be
// used (escape hatch set, no cache levels, or line sizes differ across
// levels so one address maps to different lines per level).
func newSteadySim(h *Hierarchy, seq []uint64, extra []uint32) *steadySim {
	if h.noFastPath || noFastPathEnv || len(h.levels) == 0 {
		return nil
	}
	lb := h.levels[0].lineBytes
	for _, c := range h.levels[1:] {
		if c.lineBytes != lb {
			return nil
		}
	}
	L := len(h.levels)
	s := &steadySim{
		h: h, period: len(seq), seq: seq, extra: extra, L: L,
		sets:      make([]int, L),
		assoc:     make([]uint64, L),
		lat:       make([]vclock.Time, L+1),
		curO:      steadyU8.Get(len(seq)),
		cycCounts: make([]uint64, L+1),
		dHits:     make([]uint64, L), dMiss: make([]uint64, L),
		cycle: 1,
	}
	for lv, c := range h.levels {
		s.sets[lv] = c.sets
		s.assoc[lv] = uint64(c.assoc)
		s.lat[lv] = c.latency
	}
	s.lat[L] = h.memLat
	if extra != nil {
		for _, e := range extra {
			s.cycExtra += uint64(e)
		}
	}
	// Uniform-outcome short-circuit: when the steady serving level is
	// provable analytically (total overflow of every level, or total
	// overflow down to a level that holds every touched set entirely),
	// no stepping state is needed at all.
	if s.proveUniform() {
		return s
	}
	s.touch = make([][]uint64, L)
	s.stamps = make([][]uint64, L)
	s.lastCy = make([][]uint32, L)
	s.memStart = make([][]int32, L)
	s.memPos = make([][]int32, L)
	s.prevO = steadyU8.Get(len(seq))
	for lv, c := range h.levels {
		s.touch[lv] = steadyU64.GetZeroed(c.sets)
		s.stamps[lv] = steadyU64.GetZeroed(len(seq))
		s.lastCy[lv] = steadyU32.GetZeroed(len(seq))
	}
	return s
}

// proveUniform detects the uniform-outcome regimes analytically.
// Walking the levels fast-to-slow, the steady serving level is provable
// when every level encountered TOTALLY OVERFLOWS (every touched set
// holds at least assoc+1 distinct sequence lines) until a level is
// reached that HOLDS EVERY TOUCHED SET ENTIRELY (at most assoc members
// per set) — or main memory, the total-overflow case.
//
// All-miss above: by induction, when all prior accesses were served at
// or below this level, each access touched it, so between two
// consecutive touches of a line all of its assoc-or-more distinct
// same-set neighbours were touched there — an LRU stack distance of at
// least assoc, a miss by the stack-distance property. All-hit at the
// serving level: every access reaches it, its sets only ever see their
// at-most-assoc members, so after cycle 1's compulsory fill nothing is
// ever evicted. (No such closed form exists for partially resident
// sets: which members keep touching a slower level depends circularly
// on their own serving levels, so those sizes keep the stepping
// engine.)
//
// On success the engine is marked steady from position 0. For the
// all-memory case cycle 1's compulsory misses price identically to the
// steady cycles; for an intermediate serving level cycle 1 is priced by
// the coldLeft phase (every access a compulsory full miss).
func (s *steadySim) proveUniform() bool {
	if s.period == 0 {
		return false
	}
	lo, hi := s.seq[0], s.seq[0]
	for _, ln := range s.seq[1:] {
		if ln < lo {
			lo = ln
		}
		if ln > hi {
			hi = ln
		}
	}
	// Lines are distinct, so a contiguous range has floor/ceil(P/S)
	// members per touched set at a level with S sets — checkable in
	// O(1). Chases (permutations of 0..P-1) and strided walks are
	// contiguous; anything else falls back to a histogram.
	contiguous := hi-lo+1 == uint64(s.period)
	for lv := 0; lv < s.L; lv++ {
		var minM, maxM uint64
		if contiguous {
			minM = uint64(s.period) / uint64(s.sets[lv])
			maxM = (uint64(s.period) + uint64(s.sets[lv]) - 1) / uint64(s.sets[lv])
		} else {
			minM, maxM = s.histMembers(lv)
		}
		if maxM <= s.assoc[lv] {
			// Fully resident serving level. The coldLeft pricing has no
			// per-position extras, so engines with an extra vector keep
			// the stepping path (the aggregate-only strided constructor
			// never reaches here).
			if s.extra != nil && s.cycExtra != 0 {
				return false
			}
			s.markUniform(lv)
			return true
		}
		if minM < s.assoc[lv]+1 {
			return false
		}
	}
	s.markAllMiss()
	return true
}

// histMembers returns the (min over touched sets, max) member counts at
// level lv for non-contiguous sequences by counting members per set.
func (s *steadySim) histMembers(lv int) (minM, maxM uint64) {
	ns := s.sets[lv]
	cnt := steadyI32.GetZeroed(ns)
	defer steadyI32.Put(cnt)
	for _, ln := range s.seq {
		cnt[ln%uint64(ns)]++
	}
	minM = uint64(s.period)
	for _, c := range cnt {
		if c == 0 {
			continue
		}
		if uint64(c) < minM {
			minM = uint64(c)
		}
		if uint64(c) > maxM {
			maxM = uint64(c)
		}
	}
	return minM, maxM
}

// markAllMiss pins the proven all-memory outcome vector so run() replays
// every cycle — including the first — without ever calling step().
func (s *steadySim) markAllMiss() {
	for j := range s.curO {
		s.curO[j] = uint8(s.L)
	}
	s.cycCounts[s.L] = uint64(s.period)
	s.steady = true
	s.uniform = true
	s.servLv = s.L
}

// markUniform pins a proven uniform serving level strictly above memory:
// the steady outcome vector serves every position at sv, and the first
// cycle — every access a compulsory miss down to memory — is priced by
// the coldLeft phase before the replay takes over.
func (s *steadySim) markUniform(sv int) {
	for j := range s.curO {
		s.curO[j] = uint8(sv)
	}
	s.cycCounts[sv] = uint64(s.period)
	s.steady = true
	s.uniform = true
	s.servLv = sv
	s.coldLeft = s.period
}

// newChaseSim builds the engine for a pointer chase over 64-byte lines.
// perm is the cyclic visit order; the walk starts at line 0, so the
// engine's sequence is perm rotated to begin at 0 — exactly the order a
// next-pointer walk from line 0 visits, recovered with two sequential
// copies instead of a cache-hostile random walk.
func newChaseSim(h *Hierarchy, perm []int) *steadySim {
	if len(h.levels) == 0 || h.levels[0].lineBytes != 64 {
		return nil
	}
	j0 := 0
	for j, v := range perm {
		if v == 0 {
			j0 = j
			break
		}
	}
	seq := steadyU64.Get(len(perm))
	k := 0
	for _, v := range perm[j0:] {
		seq[k] = uint64(v)
		k++
	}
	for _, v := range perm[:j0] {
		seq[k] = uint64(v)
		k++
	}
	if s := newSteadySim(h, seq, nil); s != nil {
		return s
	}
	steadyU64.Put(seq)
	return nil
}

// newChaseUniformSim builds the engine for a pointer chase whose steady
// serving level is provable from the geometry alone: every level either
// totally overflows or (first) holds every touched set entirely. In
// that regime the outcome is uniform regardless of visit order, so the
// permutation is never materialized — every point of the Figure 5
// doubling sweep and ext-stride's gather bound price without the
// permutation's allocation or a single simulated access. Returns nil
// when some level is partially resident (caller builds the permutation
// and takes the stepping or slow path).
func newChaseUniformSim(h *Hierarchy, lines int) *steadySim {
	if h.noFastPath || noFastPathEnv || len(h.levels) == 0 || lines <= 0 {
		return nil
	}
	if h.levels[0].lineBytes != 64 {
		return nil
	}
	lb := h.levels[0].lineBytes
	for _, c := range h.levels[1:] {
		if c.lineBytes != lb {
			return nil
		}
	}
	// The chase visits lines {0..lines-1}: per touched set a level with
	// S sets holds floor(lines/S) to ceil(lines/S) of them (see
	// proveUniform).
	L := len(h.levels)
	sv := L
	for lv, c := range h.levels {
		ceilM := (uint64(lines) + uint64(c.sets) - 1) / uint64(c.sets)
		if ceilM <= uint64(c.assoc) {
			sv = lv
			break
		}
		if uint64(lines)/uint64(c.sets) < uint64(c.assoc)+1 {
			return nil
		}
	}
	s := &steadySim{
		h: h, period: lines, L: L,
		lat:       make([]vclock.Time, L+1),
		curO:      steadyU8.Get(lines),
		cycCounts: make([]uint64, L+1),
		dHits:     make([]uint64, L), dMiss: make([]uint64, L),
		cycle: 1,
	}
	for lv, c := range h.levels {
		s.lat[lv] = c.latency
	}
	s.lat[L] = h.memLat
	if sv == L {
		s.markAllMiss()
	} else {
		s.markUniform(sv)
	}
	return s
}

// newStridedAllMissSim builds an aggregate-only engine for a strided
// walk whose line footprint provably overflows every level: the walk
// touches contiguous lines 0..G-1 (strides up to one line; larger
// strides leave gaps and take the generic path), so the overflow check
// is O(1) per level and neither the line sequence nor the per-position
// extra vector is materialized — only their aggregates (period G and
// the n-G same-line follow-up hits). Callers must run whole cycles with
// a nil latSink (StridedBandwidth's shape); partial-cycle replay would
// need the per-position extras this engine deliberately skips.
func newStridedAllMissSim(h *Hierarchy, n int, stride uint64) *steadySim {
	if h.noFastPath || noFastPathEnv || len(h.levels) == 0 || stride == 0 || n <= 0 {
		return nil
	}
	lb := uint64(h.levels[0].lineBytes)
	for _, c := range h.levels[1:] {
		if uint64(c.lineBytes) != lb {
			return nil
		}
	}
	if stride > lb {
		return nil
	}
	G := int(uint64(n-1)*stride/lb) + 1
	for _, c := range h.levels {
		if uint64(G)/uint64(c.sets) < uint64(c.assoc)+1 {
			return nil
		}
	}
	L := len(h.levels)
	s := &steadySim{
		h: h, period: G, L: L,
		lat:       make([]vclock.Time, L+1),
		curO:      steadyU8.Get(G),
		cycCounts: make([]uint64, L+1),
		dHits:     make([]uint64, L), dMiss: make([]uint64, L),
		cycle:    1,
		cycExtra: uint64(n - G),
	}
	for lv, c := range h.levels {
		s.lat[lv] = c.latency
	}
	s.lat[L] = h.memLat
	s.markAllMiss()
	return s
}

// newStridedSim builds the engine for one pass of n accesses at
// addresses 0, stride, 2*stride, ..., grouped exactly as
// AccessRangeInto groups them: accesses after the first that stay in
// the same L1 line become per-position extra hits.
func newStridedSim(h *Hierarchy, n int, stride uint64) *steadySim {
	if len(h.levels) == 0 || stride == 0 || n <= 0 {
		return nil
	}
	lb := uint64(h.levels[0].lineBytes)
	seq := steadyU64.Get(n)[:0]
	var extra []uint32
	if stride < lb {
		extra = steadyU32.Get(n)[:0]
	}
	for i := 0; i < n; {
		a := uint64(i) * stride
		seq = append(seq, a/lb)
		i++
		if extra == nil {
			continue
		}
		rem := (a/lb+1)*lb - 1 - a
		k := int(rem / stride)
		if k > n-i {
			k = n - i
		}
		extra = append(extra, uint32(k))
		i += k
	}
	if s := newSteadySim(h, seq, extra); s != nil {
		return s
	}
	steadyU64.Put(seq)
	if extra != nil {
		steadyU32.Put(extra)
	}
	return nil
}

// run advances the replay by nPos positions, accumulating per-level
// serve counts into counts (len L+1, not cleared) and, when latSink is
// non-nil, adding each access's latency to *latSink in access order.
func (s *steadySim) run(nPos int, latSink *vclock.Time, counts []uint64) {
	if s.coldLeft > 0 && nPos > 0 {
		m := s.coldLeft
		if m > nPos {
			m = nPos
		}
		s.priceCold(m, latSink, counts)
		s.coldLeft -= m
		s.pos = (s.pos + m) % s.period
		nPos -= m
	}
	for nPos > 0 {
		if s.steady {
			if s.pos == 0 && nPos >= s.period {
				k := nPos / s.period
				s.replayCycles(k, latSink, counts)
				nPos -= k * s.period
				continue
			}
			m := s.period - s.pos
			if m > nPos {
				m = nPos
			}
			s.replayRange(s.pos, m, latSink, counts)
			s.pos = (s.pos + m) % s.period
			nPos -= m
			continue
		}
		s.step(latSink, counts)
		nPos--
	}
}

// priceCold prices m compulsory accesses of a proven-uniform engine's
// first cycle: the hierarchy is flushed and every line is distinct, so
// each access misses at every level and is served by main memory.
func (s *steadySim) priceCold(m int, latSink *vclock.Time, counts []uint64) {
	um := uint64(m)
	s.dMem += um
	for lv := 0; lv < s.L; lv++ {
		s.dMiss[lv] += um
	}
	if counts != nil {
		counts[s.L] += um
	}
	if latSink != nil {
		// The same float additions in the same order as the per-element
		// path (uniform memory latency per access).
		t := *latSink
		lat := s.lat[s.L]
		for i := m; i > 0; i-- {
			t += lat
		}
		*latSink = t
	}
}

// step simulates one access (plus its absorbed same-line extras).
func (s *steadySim) step(latSink *vclock.Time, counts []uint64) {
	j := s.pos
	ln := s.seq[j]
	serving := s.L
	for lv := 0; lv < s.L; lv++ {
		st := s.stamps[lv][j]
		if st == 0 {
			continue
		}
		set := ln % uint64(s.sets[lv])
		// counter − stamp counts the set's touches since this line's
		// last touch: exactly the distinct count when the window spans
		// at most one cycle, an overcount otherwise — so a hit verdict
		// is always exact, and a miss verdict on a stale window is
		// re-checked against the true distinct count.
		if s.touch[lv][set]-st < s.assoc[lv] {
			serving = lv
			break
		}
		if s.lastCy[lv][j] != s.cycle-1 && s.distinctSince(lv, int(set), st) < s.assoc[lv] {
			serving = lv
			break
		}
	}
	// The access makes its line MRU at every level up to the one that
	// served it (Lookup promotion + Fill into faster levels; a full
	// miss installs everywhere).
	top := serving
	if top == s.L {
		top = s.L - 1
		s.dMem++
	} else {
		s.dHits[serving]++
	}
	for lv := 0; lv <= top; lv++ {
		set := ln % uint64(s.sets[lv])
		s.touch[lv][set]++
		s.stamps[lv][j] = s.touch[lv][set]
		s.lastCy[lv][j] = s.cycle
	}
	for lv := 0; lv < serving && lv < s.L; lv++ {
		s.dMiss[lv]++
	}
	if counts != nil {
		counts[serving]++
	}
	if latSink != nil {
		*latSink += s.lat[serving]
	}
	s.curO[j] = uint8(serving)
	if s.extra != nil {
		if e := s.extra[j]; e > 0 {
			s.dHits[0] += uint64(e)
			if counts != nil {
				counts[0] += uint64(e)
			}
			if latSink != nil {
				*latSink += vclock.Time(e) * s.lat[0]
			}
		}
	}
	s.pos++
	if s.pos == s.period {
		s.pos = 0
		s.endCycle()
	}
}

// endCycle runs steady-state detection at a full-cycle boundary: the
// next cycle's outcomes are a pure function of this cycle's, so two
// consecutive identical outcome vectors pin all future cycles.
func (s *steadySim) endCycle() {
	if s.havePrev && bytes.Equal(s.prevO, s.curO) {
		s.steady = true
		for lv := range s.cycCounts {
			s.cycCounts[lv] = 0
		}
		for _, o := range s.curO {
			s.cycCounts[o]++
		}
		return
	}
	s.prevO, s.curO = s.curO, s.prevO
	s.havePrev = true
	s.cycle++
}

// replayRange prices positions [from, from+m) of a steady cycle from
// the recorded outcome vector, without touching simulation state.
func (s *steadySim) replayRange(from, m int, latSink *vclock.Time, counts []uint64) {
	for j := from; j < from+m; j++ {
		o := int(s.curO[j])
		if o < s.L {
			s.dHits[o]++
		} else {
			s.dMem++
		}
		for lv := 0; lv < o && lv < s.L; lv++ {
			s.dMiss[lv]++
		}
		if counts != nil {
			counts[o]++
		}
		if latSink != nil {
			*latSink += s.lat[o]
		}
		if s.extra != nil {
			if e := s.extra[j]; e > 0 {
				s.dHits[0] += uint64(e)
				if counts != nil {
					counts[0] += uint64(e)
				}
				if latSink != nil {
					*latSink += vclock.Time(e) * s.lat[0]
				}
			}
		}
	}
}

// replayCycles prices k whole steady cycles. Integer counters multiply
// exactly; latency, when requested, replays the per-access additions in
// order because float addition is order-sensitive.
func (s *steadySim) replayCycles(k int, latSink *vclock.Time, counts []uint64) {
	if latSink != nil {
		if s.uniform && s.extra == nil && s.cycExtra == 0 {
			// Every access adds the same serving-level latency: the same
			// float additions in the same order, in a loop tight enough
			// that the whole sweep prices in milliseconds. Counters fall
			// through to the arithmetic below.
			t := *latSink
			lat := s.lat[s.servLv]
			for i := k * s.period; i > 0; i-- {
				t += lat
			}
			*latSink = t
		} else {
			for c := 0; c < k; c++ {
				s.replayRange(0, s.period, latSink, counts)
			}
			return
		}
	}
	uk := uint64(k)
	for lv := 0; lv <= s.L; lv++ {
		n := s.cycCounts[lv] * uk
		if counts != nil {
			counts[lv] += n
		}
		if lv < s.L {
			s.dHits[lv] += n
		} else {
			s.dMem += n
		}
	}
	var below uint64
	for lv := s.L; lv >= 1; lv-- {
		below += s.cycCounts[lv]
		s.dMiss[lv-1] += below * uk
	}
	n := s.cycExtra * uk
	s.dHits[0] += n
	if counts != nil {
		counts[0] += n
	}
}

// distinctSince counts the distinct set members touched at level lv
// since the probing line's own stamp st — the exact LRU stack distance
// for stale (multi-cycle) windows.
func (s *steadySim) distinctSince(lv, set int, st uint64) uint64 {
	if s.memStart[lv] == nil {
		s.buildMembers(lv)
	}
	var d uint64
	stamps := s.stamps[lv]
	for _, q := range s.memPos[lv][s.memStart[lv][set]:s.memStart[lv][set+1]] {
		if stamps[q] > st {
			d++
		}
	}
	return d
}

// buildMembers groups positions by their set at level lv (counting sort).
func (s *steadySim) buildMembers(lv int) {
	ns := s.sets[lv]
	start := steadyI32.GetZeroed(ns + 1)
	for _, ln := range s.seq {
		start[ln%uint64(ns)+1]++
	}
	for i := 0; i < ns; i++ {
		start[i+1] += start[i]
	}
	mp := steadyI32.Get(s.period)
	cursor := steadyI32.Get(ns)
	copy(cursor, start[:ns])
	for j, ln := range s.seq {
		set := ln % uint64(ns)
		mp[cursor[set]] = int32(j)
		cursor[set]++
	}
	steadyI32.Put(cursor)
	s.memStart[lv] = start
	s.memPos[lv] = mp
}

// finish applies the accumulated hit/miss/memory counter deltas to the
// hierarchy and releases all pooled storage. The engine must not be
// used afterwards; the hierarchy's tag state is unspecified until the
// next Flush.
func (s *steadySim) finish() {
	for lv, c := range s.h.levels {
		c.hits += s.dHits[lv]
		c.misses += s.dMiss[lv]
	}
	s.h.memAccesses += s.dMem
	// All-miss engines never allocate stepping state (and the chase
	// variant has no seq); release only what exists.
	for lv := 0; s.touch != nil && lv < s.L; lv++ {
		steadyU64.Put(s.touch[lv])
		steadyU64.Put(s.stamps[lv])
		steadyU32.Put(s.lastCy[lv])
		if s.memStart[lv] != nil {
			steadyI32.Put(s.memStart[lv])
			steadyI32.Put(s.memPos[lv])
		}
	}
	if s.seq != nil {
		steadyU64.Put(s.seq)
	}
	if s.extra != nil {
		steadyU32.Put(s.extra)
	}
	if s.prevO != nil {
		steadyU8.Put(s.prevO)
	}
	steadyU8.Put(s.curO)
	s.h = nil
}
