package memsim

import (
	"testing"

	"maia/internal/machine"
)

// Figure 6, host: read bandwidths 12.6/12.3/11.6/7.5 GB/s and write
// bandwidths 10.4/9.5/8.6/7.2 GB/s across the four regions.
func TestHostBandwidthPlateaus(t *testing.T) {
	proc := machine.SandyBridge()
	h := MustHierarchy(proc)
	cases := []struct {
		ws          int
		read, write float64
	}{
		{16 << 10, 12.6, 10.4},
		{128 << 10, 12.3, 9.5},
		{4 << 20, 11.6, 8.6},
		{64 << 20, 7.5, 7.2},
	}
	for _, c := range cases {
		p := StreamBandwidth(h, proc, c.ws)
		within(t, "host read", p.ReadGBs, c.read, 0.05)
		within(t, "host write", p.WriteGBs, c.write, 0.05)
	}
}

// Figure 6, Phi: read 1680/971/504 MB/s, write 1538/962/263 MB/s per core.
func TestPhiBandwidthPlateaus(t *testing.T) {
	proc := machine.XeonPhi5110P()
	h := MustHierarchy(proc)
	cases := []struct {
		ws          int
		read, write float64
	}{
		{16 << 10, 1.680, 1.538},
		{256 << 10, 0.971, 0.962},
		{8 << 20, 0.504, 0.263},
	}
	for _, c := range cases {
		p := StreamBandwidth(h, proc, c.ws)
		within(t, "phi read", p.ReadGBs, c.read, 0.05)
		within(t, "phi write", p.WriteGBs, c.write, 0.05)
	}
}

// Reads are never slower than writes at the same level, and per-core DRAM
// bandwidth on the Phi is far below the host's (the paper's central
// explanation for OVERFLOW's Phi performance).
func TestBandwidthOrdering(t *testing.T) {
	curve := BandwidthCurve(machine.XeonPhi5110P(), 4<<10, 8<<20)
	for _, p := range curve {
		if p.WriteGBs > p.ReadGBs*1.001 {
			t.Errorf("ws %d: write %v > read %v", p.WorkingSetBytes, p.WriteGBs, p.ReadGBs)
		}
	}
	host := StreamBandwidth(MustHierarchy(machine.SandyBridge()), machine.SandyBridge(), 64<<20)
	phi := StreamBandwidth(MustHierarchy(machine.XeonPhi5110P()), machine.XeonPhi5110P(), 64<<20)
	if host.ReadGBs/phi.ReadGBs < 10 {
		t.Errorf("host/phi per-core DRAM read ratio = %v, want ~15",
			host.ReadGBs/phi.ReadGBs)
	}
}

// Figure 4: the Phi reaches 180 GB/s at 59 and 118 threads, then drops to
// ~140 GB/s beyond 128 threads (open-bank limit).
func TestStreamTriadPhi(t *testing.T) {
	n := machine.NewNode()
	cfg := DefaultStreamConfig()
	pts := StreamCurve(n, machine.Phi0, []int{1, 30, 59, 118, 177, 236}, cfg)
	get := func(threads int) float64 {
		for _, p := range pts {
			if p.Threads == threads {
				return p.TriadGBs
			}
		}
		t.Fatalf("no point for %d threads", threads)
		return 0
	}
	within(t, "phi triad 59t", get(59), 180, 0.02)
	within(t, "phi triad 118t", get(118), 180, 0.02)
	within(t, "phi triad 177t", get(177), 140, 0.03)
	within(t, "phi triad 236t", get(236), 140, 0.03)
	if get(30) >= get(59) {
		t.Errorf("no ramp: 30t %v >= 59t %v", get(30), get(59))
	}
	if get(1) > 5 {
		t.Errorf("single thread triad = %v GB/s, want a few GB/s", get(1))
	}
}

// Ablation: without the bank limit there is no drop — the curve stays at
// the sustained plateau.
func TestStreamTriadBankAblation(t *testing.T) {
	n := machine.NewNode()
	cfg := StreamConfig{BankLimit: false}
	pts := StreamCurve(n, machine.Phi0, []int{118, 177, 236}, cfg)
	for _, p := range pts {
		within(t, "ablated triad", p.TriadGBs, 180, 0.02)
	}
}

// Host triad saturates at the two-socket sustained bandwidth.
func TestStreamTriadHost(t *testing.T) {
	n := machine.NewNode()
	pts := StreamCurve(n, machine.Host, []int{1, 8, 16}, DefaultStreamConfig())
	if pts[2].TriadGBs <= pts[0].TriadGBs {
		t.Fatal("host triad does not scale with threads")
	}
	within(t, "host triad 16t", pts[2].TriadGBs, 2*machine.SandyBridge().MemSustainedGBs, 0.02)
	// The Phi's aggregate STREAM advantage over the host is ~2.4x.
	phi := StreamCurve(n, machine.Phi0, []int{59}, DefaultStreamConfig())
	ratio := phi[0].TriadGBs / pts[2].TriadGBs
	if ratio < 2 || ratio > 3 {
		t.Errorf("phi/host STREAM ratio = %v, want ~2.4", ratio)
	}
}

// The real STREAM kernels must compute correct values.
func TestStreamKernels(t *testing.T) {
	n := 1024
	a, b, c := make([]float64, n), make([]float64, n), make([]float64, n)
	for i := range b {
		b[i] = float64(i)
		c[i] = 2
	}
	if err := Triad(a, b, c, 3); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != float64(i)+6 {
			t.Fatalf("triad a[%d] = %v", i, a[i])
		}
	}
	if err := Add(a, b, c); err != nil {
		t.Fatal(err)
	}
	if a[10] != 12 {
		t.Fatalf("add a[10] = %v", a[10])
	}
	if err := Scale(a, b, 2); err != nil {
		t.Fatal(err)
	}
	if a[10] != 20 {
		t.Fatalf("scale a[10] = %v", a[10])
	}
	if err := Copy(a, b); err != nil {
		t.Fatal(err)
	}
	if a[10] != 10 {
		t.Fatalf("copy a[10] = %v", a[10])
	}
}

func TestStreamKernelsLengthMismatch(t *testing.T) {
	a, b, c := make([]float64, 4), make([]float64, 5), make([]float64, 4)
	if Triad(a, b, c, 1) == nil || Add(a, b, c) == nil || Scale(a, b, 1) == nil || Copy(a, b) == nil {
		t.Fatal("length mismatch not rejected")
	}
}
