package memsim

import (
	"runtime"
	"sync"

	"maia/internal/machine"
	"maia/internal/vclock"
)

// RangeStats aggregates what a batch of accesses observed: how many
// were served by each level (index len(levels) is main memory) and the
// total load-to-use latency charged.
type RangeStats struct {
	LevelCounts []uint64
	Latency     vclock.Time
}

// Accesses returns the total access count tallied in s.
func (s RangeStats) Accesses() uint64 {
	var n uint64
	for _, c := range s.LevelCounts {
		n += c
	}
	return n
}

// AccessRange performs n accesses at addr, addr+stride, addr+2*stride, ...
// and returns the aggregate level counts and latency. It is exactly
// equivalent to calling Access on each address in order — same hit/miss
// counters, same LRU state, same latency — but takes an analytical fast
// path for runs that stay inside one L1 line.
//
// The fast path is exact, not approximate: after Access(a) the line of a
// is MRU in L1, and a repeated MRU hit neither reorders LRU state nor
// probes outer levels, so the k follow-up accesses that land in the same
// line contribute precisely k L1 hits and k*L1-latency — which can be
// added arithmetically without walking the cache.
func (h *Hierarchy) AccessRange(addr uint64, n int, stride uint64) RangeStats {
	st := RangeStats{LevelCounts: make([]uint64, len(h.levels)+1)}
	st.Latency = h.AccessRangeInto(st.LevelCounts, addr, n, stride)
	return st
}

// AccessRangeInto is AccessRange accumulating into a caller-provided
// counts slice (len(levels)+1 entries, NOT cleared first) and returning
// the batch's total latency — the allocation-free form the repeated-pass
// sweeps use.
func (h *Hierarchy) AccessRangeInto(counts []uint64, addr uint64, n int, stride uint64) vclock.Time {
	var total vclock.Time
	if n <= 0 {
		return 0
	}
	if len(h.levels) == 0 {
		for i := 0; i < n; i++ {
			lv, lat := h.Access(addr + uint64(i)*stride)
			counts[lv]++
			total += lat
		}
		return total
	}
	l1 := h.levels[0]
	lb := uint64(l1.lineBytes)
	for i := 0; i < n; {
		a := addr + uint64(i)*stride
		lv, lat := h.Access(a)
		counts[lv]++
		total += lat
		i++
		if i >= n || stride >= lb {
			continue
		}
		// How many of the remaining accesses stay inside a's L1 line?
		var k int
		if stride == 0 {
			k = n - i
		} else {
			rem := (a/lb+1)*lb - 1 - a // bytes left in the line after a
			k = int(rem / stride)
			if k > n-i {
				k = n - i
			}
		}
		if k > 0 {
			counts[0] += uint64(k)
			total += vclock.Time(k) * l1.latency
			l1.hits += uint64(k)
			i += k
		}
	}
	return total
}

// sweepPoints runs fn(i) for i in [0,n) on a bounded worker pool and
// returns once all points finish. Points must be independent; callers
// keep determinism by writing results into index i, mirroring the
// harness engine's ordered-merge pattern. With one usable CPU (or one
// point) it degenerates to a plain sequential loop.
func sweepPoints(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// sweepHier is sweepPoints with a worker-local hierarchy: building a
// Hierarchy allocates every cache set, so points share one per worker
// instead of constructing their own. Each measurement must Flush before
// it touches the hierarchy (they all do), which makes a reused hierarchy
// indistinguishable from a fresh one — the sequential case degenerates
// to the historical single-hierarchy-with-Flush pattern.
func sweepHier(proc machine.ProcessorSpec, n int, fn func(h *Hierarchy, i int)) {
	var mu sync.Mutex
	var idle []*Hierarchy
	sweepPoints(n, func(i int) {
		mu.Lock()
		var h *Hierarchy
		if k := len(idle); k > 0 {
			h, idle = idle[k-1], idle[:k-1]
		}
		mu.Unlock()
		if h == nil {
			h = MustHierarchy(proc)
		}
		fn(h, i)
		mu.Lock()
		idle = append(idle, h)
		mu.Unlock()
	})
}

// doublingSizes expands a min..max doubling sweep into its point list.
func doublingSizes(minBytes, maxBytes int) []int {
	var out []int
	for ws := minBytes; ws <= maxBytes; ws *= 2 {
		out = append(out, ws)
	}
	return out
}
