package memsim

import (
	"sync"

	"maia/internal/machine"
)

// Strided and random access experiments: the measured basis for the
// execution model's stride derates. Non-unit strides waste most of every
// cache line (a 64-byte line delivers 8 useful bytes to a stride-64
// walk), and random (gather) access additionally loses prefetch, leaving
// each access paying the full load latency of its serving level.

// StridedBandwidth streams through workingSetBytes touching one element
// (elemBytes) every strideBytes, through the simulated hierarchy, and
// returns the effective USEFUL-byte bandwidth in GB/s: useful traffic
// divided by the time to move whole lines at each serving level's rate.
func StridedBandwidth(h *Hierarchy, proc machine.ProcessorSpec, workingSetBytes, strideBytes, elemBytes int) float64 {
	if strideBytes < elemBytes {
		strideBytes = elemBytes
	}
	h.Flush()
	accesses := workingSetBytes / strideBytes
	if accesses < 1 {
		accesses = 1
	}
	passes := 1
	if accesses < 4096 {
		passes = 4096/accesses + 1
	}
	counts := make([]uint64, len(h.levels)+1)
	eng := newStridedAllMissSim(h, accesses, uint64(strideBytes))
	if eng == nil {
		eng = newStridedSim(h, accesses, uint64(strideBytes))
	}
	if eng != nil {
		// Steady-state replay: one warm-up pass, then the measured passes.
		eng.run(eng.period, nil, nil)
		for p := 0; p < passes; p++ {
			eng.run(eng.period, nil, counts)
		}
		eng.finish()
	} else {
		// Warm-up pass. Small strides ride AccessRange's analytic fast
		// path: only line-boundary accesses walk the LRU state.
		h.AccessRange(0, accesses, uint64(strideBytes))
		for p := 0; p < passes; p++ {
			h.AccessRangeInto(counts, 0, accesses, uint64(strideBytes))
		}
	}
	// Bottleneck accounting: the core consumes elemBytes per access from
	// L1; every level below moves a whole line per access it serves.
	// Streaming overlaps the levels, so the slowest level's traffic sets
	// the time and useful bandwidth = useful bytes / that time.
	const lineBytes = 64
	totalAccesses := float64(passes * accesses)
	useful := totalAccesses * float64(elemBytes)
	l1bw, _ := perLevelBandwidth(proc, 0)
	maxTime := useful / (l1bw * 1e9)
	for lv := 1; lv < len(counts); lv++ {
		if counts[lv] == 0 {
			continue
		}
		r, _ := perLevelBandwidth(proc, lv)
		if t := float64(counts[lv]) * lineBytes / (r * 1e9); t > maxTime {
			maxTime = t
		}
	}
	return useful / maxTime / 1e9
}

// GatherLatencyBound returns the effective bandwidth of a fully random
// gather over a working set: every access pays its serving level's load
// latency (no prefetch), delivering elemBytes each.
func GatherLatencyBound(h *Hierarchy, workingSetBytes, elemBytes int, seed uint64) float64 {
	pt := ChaseLatency(h, workingSetBytes, seed)
	return float64(elemBytes) / (pt.LatencyNs * 1e-9) / 1e9
}

// derateMemo caches StrideDerate results. The measurement is a pure
// function of the (catalog) processor spec and the stride, so repeated
// jobs in one process — the maiad cold path re-pricing ext-stride —
// reuse the first answer bit-for-bit. Keyed by spec name: catalog specs
// are identified by name.
var (
	derateMu   sync.Mutex
	derateMemo = map[derateKey]float64{}
)

type derateKey struct {
	proc   string
	stride int
}

// StrideDerate reports the measured unit-vs-strided bandwidth ratio for
// a DRAM-resident working set — the simulation-backed counterpart of the
// execution model's calibrated derates. Results are memoized per
// (processor, stride); MAIA_NO_FASTPATH disables the memo along with
// every other fast path so the slow-path CI job re-measures.
func StrideDerate(proc machine.ProcessorSpec, strideBytes int) float64 {
	key := derateKey{proc: proc.Name, stride: strideBytes}
	if !noFastPathEnv {
		derateMu.Lock()
		d, ok := derateMemo[key]
		derateMu.Unlock()
		if ok {
			return d
		}
	}
	ws := 32 << 20
	// The unit and strided measurements are independent (each flushes the
	// hierarchy it is given), so run them as a two-point sweep.
	var bw [2]float64
	strides := [2]int{8, strideBytes}
	sweepHier(proc, 2, func(h *Hierarchy, i int) {
		bw[i] = StridedBandwidth(h, proc, ws, strides[i], 8)
	})
	d := bw[1] / bw[0]
	if !noFastPathEnv {
		derateMu.Lock()
		derateMemo[key] = d
		derateMu.Unlock()
	}
	return d
}
