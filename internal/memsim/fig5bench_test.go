package memsim

import (
	"testing"

	"maia/internal/machine"
)

func BenchmarkFig5Shape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		LatencyCurve(machine.SandyBridge(), 4<<10, 64<<20)
		LatencyCurve(machine.XeonPhi5110P(), 4<<10, 64<<20)
	}
}
