package memsim

import (
	"math"
	"testing"

	"maia/internal/machine"
)

func within(t *testing.T, what string, got, want, relTol float64) {
	t.Helper()
	if math.Abs(got-want) > relTol*math.Abs(want) {
		t.Errorf("%s = %v, want %v (±%v%%)", what, got, want, relTol*100)
	}
}

// Figure 5, host side: four distinct latency regions. Deep inside each
// region the chase must measure the level's latency.
func TestHostLatencyPlateaus(t *testing.T) {
	h := MustHierarchy(machine.SandyBridge())
	within(t, "host 16KB", ChaseLatency(h, 16<<10, 1).LatencyNs, 1.5, 0.05)
	within(t, "host 128KB", ChaseLatency(h, 128<<10, 2).LatencyNs, 4.6, 0.05)
	within(t, "host 4MB", ChaseLatency(h, 4<<20, 3).LatencyNs, 15, 0.05)
	within(t, "host 64MB", ChaseLatency(h, 64<<20, 4).LatencyNs, 81, 0.05)
}

// Figure 5, Phi side: three regions with much higher latencies; main
// memory (GDDR5) latency is 295 ns vs the host's 81 ns.
func TestPhiLatencyPlateaus(t *testing.T) {
	h := MustHierarchy(machine.XeonPhi5110P())
	within(t, "phi 16KB", ChaseLatency(h, 16<<10, 1).LatencyNs, 2.9, 0.05)
	within(t, "phi 256KB", ChaseLatency(h, 256<<10, 2).LatencyNs, 22.9, 0.05)
	within(t, "phi 8MB", ChaseLatency(h, 8<<20, 3).LatencyNs, 295, 0.05)
}

// The latency curve must be (weakly) increasing with working-set size.
func TestLatencyCurveMonotone(t *testing.T) {
	for _, proc := range []machine.ProcessorSpec{machine.SandyBridge(), machine.XeonPhi5110P()} {
		curve := LatencyCurve(proc, 4<<10, 8<<20)
		for i := 1; i < len(curve); i++ {
			if curve[i].LatencyNs < curve[i-1].LatencyNs*0.999 {
				t.Errorf("%s: latency decreased from %v (%dB) to %v (%dB)",
					proc.Architecture, curve[i-1].LatencyNs, curve[i-1].WorkingSetBytes,
					curve[i].LatencyNs, curve[i].WorkingSetBytes)
			}
		}
	}
}

// Determinism: the same sweep twice yields identical numbers.
func TestLatencyCurveDeterministic(t *testing.T) {
	a := LatencyCurve(machine.XeonPhi5110P(), 4<<10, 1<<20)
	b := LatencyCurve(machine.XeonPhi5110P(), 4<<10, 1<<20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// The paper's headline comparison: Phi memory latency is ~3.6x the host's.
func TestPhiLatencyDisadvantage(t *testing.T) {
	hostMem := machine.SandyBridge().MemLatencyNs
	phiMem := machine.XeonPhi5110P().MemLatencyNs
	ratio := phiMem / hostMem
	if ratio < 3 || ratio > 4 {
		t.Errorf("phi/host memory latency ratio = %v, want ~3.6", ratio)
	}
}
