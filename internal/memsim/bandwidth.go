package memsim

import (
	"maia/internal/machine"
)

// BandwidthPoint is one point of the Figure 6 curves: sustained per-core
// read and write bandwidth when streaming through a working set of the
// given size.
type BandwidthPoint struct {
	WorkingSetBytes int
	ReadGBs         float64
	WriteGBs        float64
}

// perLevelBandwidth returns the per-core sustained (read, write) GB/s for
// hierarchy level index lv (len(caches) = main memory) of proc.
func perLevelBandwidth(proc machine.ProcessorSpec, lv int) (read, write float64) {
	if lv < len(proc.Caches) {
		c := proc.Caches[lv]
		return c.ReadPerCoreGBs, c.WritePerCoreGBs
	}
	return proc.MemReadPerCoreGBs, proc.MemWritePerCoreGBs
}

// StreamBandwidth measures per-core read and write bandwidth for one
// working-set size by streaming sequentially through the simulated
// hierarchy and charging each 64-byte line the transfer time of the level
// that served it. Sequential streams are what STREAM-style bandwidth tools
// use; prefetchers hide latency but not the bandwidth ceiling of the
// serving level, so transfer time (not load latency) is the right cost.
func StreamBandwidth(h *Hierarchy, proc machine.ProcessorSpec, workingSetBytes int) BandwidthPoint {
	const lineBytes = 64
	lines := workingSetBytes / lineBytes
	if lines < 1 {
		lines = 1
	}
	h.Flush()
	passes := 1
	if lines < 4096 {
		passes = 4096/lines + 1
	}
	counts := make([]uint64, len(h.levels)+1)
	eng := newStridedAllMissSim(h, lines, lineBytes)
	if eng == nil {
		eng = newStridedSim(h, lines, lineBytes)
	}
	if eng != nil {
		// Steady-state replay: one warm-up pass, then the measured
		// passes tallying which level serves each line.
		eng.run(eng.period, nil, nil)
		for p := 0; p < passes; p++ {
			eng.run(eng.period, nil, counts)
		}
		eng.finish()
	} else {
		// Warm-up pass.
		h.AccessRange(0, lines, lineBytes)
		// Measured passes: stream the set repeatedly, tallying which
		// level serves each line.
		for p := 0; p < passes; p++ {
			h.AccessRangeInto(counts, 0, lines, lineBytes)
		}
	}
	// Harmonic combination: total time = sum over levels of
	// bytes_served_by_level / level_bandwidth.
	var readTime, writeTime, bytes float64
	for lv, n := range counts {
		if n == 0 {
			continue
		}
		b := float64(n * lineBytes)
		r, w := perLevelBandwidth(proc, lv)
		readTime += b / r
		writeTime += b / w
		bytes += b
	}
	return BandwidthPoint{
		WorkingSetBytes: workingSetBytes,
		ReadGBs:         bytes / readTime,
		WriteGBs:        bytes / writeTime,
	}
}

// BandwidthCurve sweeps working-set sizes (doubling) and returns the
// Figure 6 curves for the given processor. Points are independent —
// StreamBandwidth flushes before measuring — so they run concurrently
// on a bounded worker pool, each against its own hierarchy, with
// results written by index (deterministic for any worker count).
func BandwidthCurve(proc machine.ProcessorSpec, minBytes, maxBytes int) []BandwidthPoint {
	sizes := doublingSizes(minBytes, maxBytes)
	out := make([]BandwidthPoint, len(sizes))
	sweepHier(proc, len(sizes), func(h *Hierarchy, i int) {
		out[i] = StreamBandwidth(h, proc, sizes[i])
	})
	return out
}
