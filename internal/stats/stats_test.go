package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMinMaxMean(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Fatal("Min/Max wrong")
	}
	if Mean(xs) != 2.8 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("GeoMean = %v", g)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("negative input must yield NaN")
	}
}

func TestEmptyPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Min":     func() { Min(nil) },
		"Max":     func() { Max(nil) },
		"Mean":    func() { Mean(nil) },
		"GeoMean": func() { GeoMean(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(nil) did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRatioRange(t *testing.T) {
	lo, hi, err := RatioRange([]float64{2, 9}, []float64{1, 3})
	if err != nil || lo != 2 || hi != 3 {
		t.Fatalf("RatioRange = %v, %v, %v", lo, hi, err)
	}
	if _, _, err := RatioRange([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := RatioRange([]float64{1}, []float64{0}); err == nil {
		t.Error("zero denominator accepted")
	}
	if _, _, err := RatioRange(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

// Property: Min <= GeoMean <= Mean <= Max for positive inputs.
func TestMeanOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1
		}
		g := GeoMean(xs)
		return Min(xs) <= g+1e-9 && g <= Mean(xs)+1e-9 && Mean(xs) <= Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesYs(t *testing.T) {
	s := Series{{1, 10}, {2, 20}}
	ys := s.Ys()
	if len(ys) != 2 || ys[0] != 10 || ys[1] != 20 {
		t.Fatalf("Ys = %v", ys)
	}
}
