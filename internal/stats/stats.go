// Package stats provides the small numeric helpers the experiment
// harness uses to summarize series: extrema, means, and ratio ranges
// (the paper reports most comparisons as "higher by a factor of X to Y").
package stats

import (
	"fmt"
	"math"
)

// Point is one (x, y) sample of a sweep.
type Point struct {
	X float64
	Y float64
}

// Series is an ordered sweep.
type Series []Point

// Ys returns the y values.
func (s Series) Ys() []float64 {
	out := make([]float64, len(s))
	for i, p := range s {
		out[i] = p.Y
	}
	return out
}

// Min returns the smallest value of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	mustNonEmpty(xs)
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	mustNonEmpty(xs)
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Mean returns the arithmetic mean. It panics on an empty slice.
func Mean(xs []float64) float64 {
	mustNonEmpty(xs)
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values. It panics on an
// empty slice and returns NaN if any value is non-positive.
func GeoMean(xs []float64) float64 {
	mustNonEmpty(xs)
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// RatioRange divides two equal-length sweeps elementwise and returns the
// (min, max) ratio — the paper's "factor of X to Y" summaries.
func RatioRange(num, den []float64) (lo, hi float64, err error) {
	if len(num) != len(den) || len(num) == 0 {
		return 0, 0, fmt.Errorf("stats: ratio of %d vs %d values", len(num), len(den))
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := range num {
		if den[i] == 0 {
			return 0, 0, fmt.Errorf("stats: zero denominator at %d", i)
		}
		r := num[i] / den[i]
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	return lo, hi, nil
}

func mustNonEmpty(xs []float64) {
	if len(xs) == 0 {
		panic("stats: empty input")
	}
}
