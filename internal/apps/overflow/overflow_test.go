package overflow

import (
	"math"
	"testing"
	"testing/quick"

	"maia/internal/core"
	"maia/internal/machine"
	"maia/internal/pcie"
	"maia/internal/simfault"
	"maia/internal/simmpi"
	"maia/internal/simomp"
	"maia/internal/vclock"
)

func team() *simomp.Team {
	return simomp.NewTeam(simomp.New(machine.HostCoresPartition(machine.NewNode(), 8, 1)))
}

// --- datasets & decomposition ---

func TestDatasets(t *testing.T) {
	large, medium := DLRF6Large(), DLRF6Medium()
	if large.TotalPoints() != 35_900_000 {
		t.Errorf("DLRF6-Large = %d points, want 35.9M", large.TotalPoints())
	}
	if medium.TotalPoints() != 10_800_000 {
		t.Errorf("DLRF6-Medium = %d points, want 10.8M", medium.TotalPoints())
	}
	if len(large.Zones) != 23 {
		t.Errorf("DLRF6-Large has %d zones, want 23", len(large.Zones))
	}
	// Deterministic.
	again := DLRF6Large()
	for i := range again.Zones {
		if again.Zones[i] != large.Zones[i] {
			t.Fatal("dataset synthesis not deterministic")
		}
	}
}

// Decompose conserves points and respects speeds.
func TestDecomposeConservesPoints(t *testing.T) {
	d := DLRF6Medium()
	for _, ranks := range []int{1, 2, 7, 16, 32} {
		speeds := make([]float64, ranks)
		for i := range speeds {
			speeds[i] = 1
		}
		a, err := Decompose(d, speeds)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, pieces := range a {
			total += Load(pieces)
		}
		if total != d.TotalPoints() {
			t.Fatalf("%d ranks: decomposition moved %d of %d points", ranks, total, d.TotalPoints())
		}
	}
}

func TestDecomposeBalanced(t *testing.T) {
	d := DLRF6Medium()
	speeds := make([]float64, 16)
	for i := range speeds {
		speeds[i] = 1
	}
	a, err := Decompose(d, speeds)
	if err != nil {
		t.Fatal(err)
	}
	if imb := Imbalance(a, speeds); imb > 1.15 {
		t.Errorf("equal-speed imbalance = %.3f, want <= 1.15", imb)
	}
}

// Weighted decomposition loads fast ranks more.
func TestDecomposeWeighted(t *testing.T) {
	d := DLRF6Large()
	speeds := []float64{1, 1, 3, 3}
	a, err := Decompose(d, speeds)
	if err != nil {
		t.Fatal(err)
	}
	slow := Load(a[0]) + Load(a[1])
	fast := Load(a[2]) + Load(a[3])
	if fast < 2*slow {
		t.Errorf("fast ranks got %d, slow %d; want ~3x", fast, slow)
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(DLRF6Medium(), nil); err == nil {
		t.Error("no ranks accepted")
	}
	if _, err := Decompose(DLRF6Medium(), []float64{1, 0}); err == nil {
		t.Error("zero speed accepted")
	}
}

// Property: decomposition conserves points for random speed vectors.
func TestDecomposeProperty(t *testing.T) {
	d := DLRF6Medium()
	f := func(seed uint64, rRaw uint8) bool {
		ranks := int(rRaw%12) + 1
		rng := vclock.NewRNG(seed)
		speeds := make([]float64, ranks)
		for i := range speeds {
			speeds[i] = 0.2 + rng.Float64()
		}
		a, err := Decompose(d, speeds)
		if err != nil {
			return false
		}
		var total int64
		for _, pieces := range a {
			total += Load(pieces)
			for _, p := range pieces {
				if p.Points <= 0 {
					return false
				}
			}
		}
		return total == d.TotalPoints()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// --- the real solver ---

func TestSolverApproachesSteadyState(t *testing.T) {
	s, err := NewSolver([]int{10, 8, 12}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var deltas []float64
	for i := 0; i < 10; i++ {
		deltas = append(deltas, s.StepDelta(nil))
	}
	if deltas[len(deltas)-1] >= deltas[0] {
		t.Fatalf("not settling: %v", deltas)
	}
	if s.Norm() <= 0 {
		t.Fatal("forced solution should be nonzero")
	}
}

func TestSolverParallelMatchesSerial(t *testing.T) {
	mk := func() *Solver {
		s, err := NewSolver([]int{8, 10}, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	ser, par := mk(), mk()
	tm := team()
	for i := 0; i < 4; i++ {
		ser.Step(nil)
		par.Step(tm)
	}
	for z := range ser.Zones {
		for i := range ser.Zones[z].V {
			if ser.Zones[z].V[i] != par.Zones[z].V[i] {
				t.Fatalf("zone %d differs at %d", z, i)
			}
		}
	}
}

// The MPI program produces exactly the serial per-zone sums, for any
// rank count.
func TestSolverMPIMatchesSerial(t *testing.T) {
	sizes := []int{8, 10, 6, 12, 8}
	const steps = 3
	ref, err := RunMPI(sizes, 0.05, steps, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{2, 3, 5} {
		got, err := RunMPI(sizes, 0.05, steps, ranks)
		if err != nil {
			t.Fatal(err)
		}
		for z := range ref {
			if math.Abs(got[z]-ref[z]) > 1e-12*math.Max(1, math.Abs(ref[z])) {
				t.Fatalf("%d ranks: zone %d sum %v != serial %v", ranks, z, got[z], ref[z])
			}
		}
	}
}

// Zones of different sizes couple: ghost interpolation samples the donor.
func TestGhostInterpolationAcrossResolutions(t *testing.T) {
	a, b := NewZoneGrid(4), NewZoneGrid(8)
	// Paint a's last interior plane with a recognizable value.
	for j := 0; j < 4; j++ {
		for k := 0; k < 4; k++ {
			a.V[a.Idx(4, j, k)] = float64(10 + j)
		}
	}
	plane := make([]float64, 16)
	a.BoundaryPlane(true, plane)
	b.SetGhostPlane(false, plane, 4)
	for j := 0; j < 8; j++ {
		want := float64(10 + j*4/8)
		if got := b.V[b.Idx(0, j, 3)]; got != want {
			t.Fatalf("ghost (0,%d,3) = %v, want %v", j, got, want)
		}
	}
}

func TestSolverValidation(t *testing.T) {
	if _, err := NewSolver(nil, 0.1); err == nil {
		t.Error("no zones accepted")
	}
	if _, err := NewSolver([]int{2}, 0.1); err == nil {
		t.Error("tiny zone accepted")
	}
	if _, err := RunMPI([]int{8}, 0.1, 1, 2); err == nil {
		t.Error("more ranks than zones accepted")
	}
}

func TestTridiagSolves(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 3
		rng := vclock.NewRNG(seed)
		lam := 0.3 + rng.Float64()
		r := make([]float64, n)
		for i := range r {
			r[i] = rng.Float64() - 0.5
		}
		orig := append([]float64(nil), r...)
		tridiag(lam, r, make([]float64, n))
		at := func(i int) float64 {
			if i < 0 || i >= n {
				return 0
			}
			return r[i]
		}
		for i := 0; i < n; i++ {
			got := (1+2*lam)*at(i) - lam*at(i-1) - lam*at(i+1)
			if math.Abs(got-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- Figure 22 ---

func TestFig22HostOrdering(t *testing.T) {
	m := core.DefaultModel()
	host, _, err := Fig22(m, machine.NewNode())
	if err != nil {
		t.Fatal(err)
	}
	combos := HostCombos()
	// Paper: best at 16x1, monotonically worse as OpenMP threads grow,
	// worst at 1x16.
	for i := 1; i < len(combos); i++ {
		if host[combos[i]] < host[combos[i-1]] {
			t.Errorf("host %v (%v) should not beat %v (%v)",
				combos[i], host[combos[i]], combos[i-1], host[combos[i-1]])
		}
	}
	if host[Combo{1, 16}].Seconds() < 1.3*host[Combo{16, 1}].Seconds() {
		t.Errorf("1x16 should clearly trail 16x1: %v vs %v",
			host[Combo{1, 16}], host[Combo{16, 1}])
	}
}

func TestFig22PhiOrdering(t *testing.T) {
	m := core.DefaultModel()
	_, phi, err := Fig22(m, machine.NewNode())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: on the Phi, performance improves as thread count grows;
	// worst at 4x14 (56 threads), best at 8x28 (224 threads).
	if !(phi[Combo{8, 28}] < phi[Combo{8, 14}] && phi[Combo{8, 14}] < phi[Combo{4, 14}]) {
		t.Errorf("phi ordering wrong: 8x28 %v, 8x14 %v, 4x14 %v",
			phi[Combo{8, 28}], phi[Combo{8, 14}], phi[Combo{4, 14}])
	}
}

func TestFig22HostPhiRatio(t *testing.T) {
	m := core.DefaultModel()
	host, phi, err := Fig22(m, machine.NewNode())
	if err != nil {
		t.Fatal(err)
	}
	bestHost, bestPhi := vclock.Time(math.Inf(1)), vclock.Time(math.Inf(1))
	for _, v := range host {
		bestHost = vclock.Min(bestHost, v)
	}
	for _, v := range phi {
		bestPhi = vclock.Min(bestPhi, v)
	}
	ratio := bestPhi.Seconds() / bestHost.Seconds()
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("bestPhi/bestHost = %.2f, want ~1.8 (paper)", ratio)
	}
}

// --- Figure 23 ---

func TestFig23SymmetricSpeedup(t *testing.T) {
	m := core.DefaultModel()
	node := machine.NewNode()
	hostOnly, err := HostOnlyStepTime(m, node)
	if err != nil {
		t.Fatal(err)
	}
	best := vclock.Time(math.Inf(1))
	for _, pc := range []Combo{{4, 14}, {8, 14}, {4, 28}, {8, 28}} {
		tt, err := SymmetricStepTime(m, node, SymmetricConfig{
			HostCombo: Combo{16, 1}, PhiCombo: pc, Software: pcie.PostUpdate})
		if err != nil {
			t.Fatal(err)
		}
		best = vclock.Min(best, tt)
	}
	speedup := hostOnly.Seconds() / best.Seconds()
	if speedup < 1.4 || speedup > 2.2 {
		t.Errorf("symmetric speedup vs host-only = %.2f, want ~1.9 (paper)", speedup)
	}
	// ...but symmetric stays behind two plain hosts (Section 6.9.1.3).
	twoHosts, err := TwoHostsStepTime(m, node)
	if err != nil {
		t.Fatal(err)
	}
	if best.Seconds() <= twoHosts.Seconds() {
		t.Errorf("symmetric (%v) should remain behind two hosts (%v)", best, twoHosts)
	}
}

func TestFig23PostUpdateGains(t *testing.T) {
	m := core.DefaultModel()
	node := machine.NewNode()
	maxGain := 0.0
	for _, pc := range []Combo{{4, 14}, {8, 14}, {4, 28}, {8, 28}} {
		pre, err := SymmetricStepTime(m, node, SymmetricConfig{
			HostCombo: Combo{16, 1}, PhiCombo: pc, Software: pcie.PreUpdate})
		if err != nil {
			t.Fatal(err)
		}
		post, err := SymmetricStepTime(m, node, SymmetricConfig{
			HostCombo: Combo{16, 1}, PhiCombo: pc, Software: pcie.PostUpdate})
		if err != nil {
			t.Fatal(err)
		}
		gain := pre.Seconds()/post.Seconds() - 1
		if gain < -0.001 {
			t.Errorf("phi=%v: post-update slower than pre (%.2f%%)", pc, gain*100)
		}
		if gain > maxGain {
			maxGain = gain
		}
	}
	if maxGain < 0.02 {
		t.Errorf("max post-update gain = %.1f%%, want >= 2%% (paper: 2-28%%)", maxGain*100)
	}
	// The worst symmetric choice is 4x14 (fewest Phi threads).
	worst, err := SymmetricStepTime(m, node, SymmetricConfig{
		HostCombo: Combo{16, 1}, PhiCombo: Combo{4, 14}, Software: pcie.PostUpdate})
	if err != nil {
		t.Fatal(err)
	}
	best, err := SymmetricStepTime(m, node, SymmetricConfig{
		HostCombo: Combo{16, 1}, PhiCombo: Combo{8, 28}, Software: pcie.PostUpdate})
	if err != nil {
		t.Fatal(err)
	}
	if worst <= best {
		t.Errorf("4x14 (%v) should trail 8x28 (%v)", worst, best)
	}
}

func TestComboString(t *testing.T) {
	if (Combo{8, 28}).String() != "8x28" {
		t.Error("Combo.String wrong")
	}
}

// The MPInside-style profile quantifies Section 6.9.1.3: symmetric runs
// carry real compute imbalance and a visible MPI share.
func TestSymmetricProfileShowsImbalance(t *testing.T) {
	m := core.DefaultModel()
	tt, prof, err := SymmetricStepProfile(m, machine.NewNode(), SymmetricConfig{
		HostCombo: Combo{Ranks: 16, Threads: 1},
		PhiCombo:  Combo{Ranks: 8, Threads: 28},
		Software:  pcie.PostUpdate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Ranks != 32 {
		t.Fatalf("profile ranks = %d, want 32", prof.Ranks)
	}
	if prof.ComputeBalance < 1.1 {
		t.Errorf("compute balance = %.2f, want visible imbalance (> 1.1)", prof.ComputeBalance)
	}
	if prof.MeanMPI <= 0 {
		t.Error("no MPI time recorded")
	}
	if prof.MaxTotal > tt {
		t.Errorf("profile makespan %v exceeds reported step time %v", prof.MaxTotal, tt)
	}
}

// Hybrid MPI+OpenMP execution and symmetric (host+Phi) placement both
// reproduce the serial fingerprint bitwise: placement changes timing,
// never results.
func TestRunHybridPlacementIndependent(t *testing.T) {
	sizes := []int{8, 10, 6, 12}
	const steps = 3
	ref, err := RunMPI(sizes, 0.05, steps, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Hybrid: 2 ranks x 4 OpenMP threads.
	hybrid, err := RunHybrid(sizes, 0.05, steps, simmpi.HostPlacement(2, 1), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric: one host rank, one rank on each Phi.
	locs := []simmpi.Location{
		{Device: machine.Host, ThreadsPerCore: 1},
		{Device: machine.Phi0, ThreadsPerCore: 2},
		{Device: machine.Phi1, ThreadsPerCore: 2},
	}
	sym, err := RunHybrid(sizes, 0.05, steps, locs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for z := range ref {
		if hybrid[z] != ref[z] {
			t.Fatalf("hybrid zone %d sum %v != serial %v", z, hybrid[z], ref[z])
		}
		if sym[z] != ref[z] {
			t.Fatalf("symmetric zone %d sum %v != serial %v", z, sym[z], ref[z])
		}
	}
	if _, err := RunHybrid(sizes, 0.05, 1, nil, 0); err == nil {
		t.Error("empty placement accepted")
	}
}

// The dynamic rebalancer sheds load from a degraded device: under a Phi
// straggler plan the rebalanced step beats the static decomposition,
// and the whole procedure is deterministic.
func TestSymmetricRebalanceUnderStraggler(t *testing.T) {
	m := core.DefaultModel()
	node := machine.NewNode()
	cfg := SymmetricConfig{
		HostCombo: Combo{16, 1},
		PhiCombo:  Combo{8, 28},
		Software:  pcie.PostUpdate,
		Faults:    simfault.PhiStraggler(),
	}
	static, rebalanced, err := SymmetricStepRebalanced(m, node, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rebalanced >= static {
		t.Errorf("rebalance did not help under straggler: %v >= %v", rebalanced, static)
	}
	s2, r2, err := SymmetricStepRebalanced(m, node, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s2 != static || r2 != rebalanced {
		t.Errorf("rebalance not deterministic: %v/%v vs %v/%v", s2, r2, static, rebalanced)
	}

	// The faulted static step is slower than the healthy static step.
	healthyCfg := cfg
	healthyCfg.Faults = nil
	healthy, err := SymmetricStepTime(m, node, healthyCfg)
	if err != nil {
		t.Fatal(err)
	}
	if static <= healthy {
		t.Errorf("straggler plan did not slow the static step: %v <= %v", static, healthy)
	}
}

// On the healthy machine the rebalancer corrects the balancer's Phi
// bias, so it never makes the step worse.
func TestSymmetricRebalanceHealthyNoWorse(t *testing.T) {
	m := core.DefaultModel()
	node := machine.NewNode()
	static, rebalanced, err := SymmetricStepRebalanced(m, node, SymmetricConfig{
		HostCombo: Combo{16, 1}, PhiCombo: Combo{8, 28}, Software: pcie.PostUpdate})
	if err != nil {
		t.Fatal(err)
	}
	if rebalanced > static {
		t.Errorf("healthy rebalance made the step worse: %v > %v", rebalanced, static)
	}
}
