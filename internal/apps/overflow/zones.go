// Package overflow is a compact stand-in for NASA's OVERFLOW-2
// (Section 3.7.1): a multi-zone, overset-structured-grid implicit solver,
// parallelized hybrid MPI+OpenMP — the paper's bandwidth-bound production
// application (Figures 22 and 23).
//
// The package has two layers, like the rest of this repository:
//
//   - a real solver (solver.go): an implicit ADI diffusion solver over a
//     chain of structured zones coupled by overset-style interpolated
//     ghost planes, runnable serially, with OpenMP teams, and as a true
//     MPI program over simmpi ranks;
//   - performance drivers (driver.go) that regenerate Figure 22 (native
//     host/Phi (MPI ranks x OpenMP threads) sweeps on DLRF6-Medium) and
//     Figure 23 (symmetric host+Phi0+Phi1 on DLRF6-Large, pre- vs
//     post-update software).
package overflow

import (
	"fmt"

	"maia/internal/vclock"
)

// Zone is one overset structured grid.
type Zone struct {
	ID     int
	Points int64
}

// Dataset is a named multi-zone grid system.
type Dataset struct {
	Name  string
	Zones []Zone
}

// TotalPoints sums the zone sizes.
func (d Dataset) TotalPoints() int64 {
	var t int64
	for _, z := range d.Zones {
		t += z.Points
	}
	return t
}

// synthesize builds a deterministic zone-size distribution: overset
// systems have a few large near-body grids and many smaller ones, which
// a squared-uniform draw imitates.
func synthesize(name string, zones int, totalPoints int64, seed uint64) Dataset {
	rng := vclock.NewRNG(seed)
	weights := make([]float64, zones)
	sum := 0.0
	for i := range weights {
		u := 0.15 + rng.Float64()
		weights[i] = u * u
		sum += weights[i]
	}
	d := Dataset{Name: name}
	var assigned int64
	for i, w := range weights {
		pts := int64(w / sum * float64(totalPoints))
		if i == zones-1 {
			pts = totalPoints - assigned
		}
		if pts < 1 {
			pts = 1
		}
		assigned += pts
		d.Zones = append(d.Zones, Zone{ID: i, Points: pts})
	}
	return d
}

// DLRF6Large returns the paper's wing-body-nacelle-pylon case: 23 zones,
// 35.9 million grid points (too large for a single Phi's 8 GB).
func DLRF6Large() Dataset { return synthesize("DLRF6-Large", 23, 35_900_000, 23) }

// DLRF6Medium returns the reduced case used for single-device runs:
// 10.8 million grid points.
func DLRF6Medium() Dataset { return synthesize("DLRF6-Medium", 17, 10_800_000, 17) }

// Piece is a (possibly split) fragment of a zone assigned to one rank.
type Piece struct {
	Zone   int
	Points int64
}

// Decompose assigns the dataset to ranks proportionally to the given
// speeds (relative rank throughputs), splitting zones that exceed a
// rank's remaining target — OVERFLOW's group/split load balancing, and
// the "challenge" the paper highlights for symmetric mode. It returns
// the per-rank piece lists.
func Decompose(d Dataset, speeds []float64) ([][]Piece, error) {
	r := len(speeds)
	if r == 0 {
		return nil, fmt.Errorf("overflow: no ranks")
	}
	totalSpeed := 0.0
	for i, s := range speeds {
		if s <= 0 {
			return nil, fmt.Errorf("overflow: rank %d has non-positive speed %v", i, s)
		}
		totalSpeed += s
	}
	total := float64(d.TotalPoints())
	targets := make([]float64, r)
	for i, s := range speeds {
		targets[i] = total * s / totalSpeed
	}

	// Longest-processing-time with splitting: zones are placed largest
	// first onto the rank with the biggest remaining deficit, splitting a
	// zone when it overfills the rank. OVERFLOW's splitter follows grid
	// planes, so a piece is never smaller than a twelfth of its zone —
	// the granularity that leaves residual imbalance when targets are
	// uneven (Section 6.9.1.3's "overhead due to load imbalance").
	order := make([]int, len(d.Zones))
	for i := range order {
		order[i] = i
	}
	for a := 1; a < len(order); a++ {
		for b := a; b > 0 && d.Zones[order[b]].Points > d.Zones[order[b-1]].Points; b-- {
			order[b], order[b-1] = order[b-1], order[b]
		}
	}
	out := make([][]Piece, r)
	loads := make([]float64, r)
	mostUnderloaded := func() int {
		best, bestDef := 0, loads[0]-targets[0]
		for i := 1; i < r; i++ {
			if def := loads[i] - targets[i]; def < bestDef {
				best, bestDef = i, def
			}
		}
		return best
	}
	for _, zi := range order {
		z := d.Zones[zi]
		minPiece := z.Points / 12
		if minPiece < 1 {
			minPiece = 1
		}
		remaining := z.Points
		for remaining > 0 {
			rank := mostUnderloaded()
			take := int64(targets[rank] - loads[rank])
			if take < minPiece {
				take = minPiece
			}
			if take > remaining {
				take = remaining
			}
			if rem := remaining - take; rem > 0 && rem < minPiece {
				take = remaining // no illegal slivers
			}
			out[rank] = append(out[rank], Piece{Zone: z.ID, Points: take})
			loads[rank] += float64(take)
			remaining -= take
		}
	}
	return out, nil
}

// Load returns the total points of a piece list.
func Load(pieces []Piece) int64 {
	var t int64
	for _, p := range pieces {
		t += p.Points
	}
	return t
}

// Imbalance returns max(load/speed) / mean(load/speed) over ranks — 1.0
// is perfect balance.
func Imbalance(assignment [][]Piece, speeds []float64) float64 {
	maxT, sumT := 0.0, 0.0
	for i, pieces := range assignment {
		t := float64(Load(pieces)) / speeds[i]
		sumT += t
		if t > maxT {
			maxT = t
		}
	}
	mean := sumT / float64(len(assignment))
	if mean == 0 {
		return 1
	}
	return maxT / mean
}
