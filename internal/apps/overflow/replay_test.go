package overflow

import (
	"os"
	"testing"

	"maia/internal/core"
	"maia/internal/machine"
	"maia/internal/simfault"
	"maia/internal/simmpi"
	"maia/internal/vclock"
)

// The hybrid step replay's exactness contract: on every homogeneous
// healthy world of Figure 22, SymmetricStepReplay must reproduce the
// goroutine engine's makespan bit for bit, and on every world it cannot
// price (heterogeneous, faulted, single-rank) it must refuse so the
// engine stays authoritative.

// stepInputs mirrors StepTime's world construction: equal-speed
// decomposition, one location per rank, and the per-rank compute charge
// from the steady slowdown math.
func stepInputs(t *testing.T, m core.Model, node *machine.Node, dev machine.Device,
	c Combo, d Dataset) ([]simmpi.Location, []vclock.Time, [][]Piece) {
	t.Helper()
	speeds := make([]float64, c.Ranks)
	for i := range speeds {
		speeds[i] = 1
	}
	assignment, err := Decompose(d, speeds)
	if err != nil {
		t.Fatal(err)
	}
	tpc := rankPartition(node, dev, c).ThreadsPerCore
	locs := make([]simmpi.Location, c.Ranks)
	computes := make([]vclock.Time, c.Ranks)
	for i := 0; i < c.Ranks; i++ {
		locs[i] = simmpi.Location{Device: dev, ThreadsPerCore: tpc}
		computes[i] = rankStepTime(m, node, dev, c, assignment[i])
	}
	return locs, computes, assignment
}

// TestStepReplayMatchesGoroutineRun drives the replay and the goroutine
// body over the full Figure 22 combo catalog on both datasets and
// demands bit-identical makespans.
func TestStepReplayMatchesGoroutineRun(t *testing.T) {
	if os.Getenv("MAIA_NO_FASTPATH") != "" {
		t.Skip("replay disabled by MAIA_NO_FASTPATH")
	}
	m := core.DefaultModel()
	node := machine.NewNode()
	type tc struct {
		dev machine.Device
		c   Combo
	}
	var cases []tc
	for _, c := range HostCombos() {
		cases = append(cases, tc{machine.Host, c})
	}
	for _, c := range PhiCombos() {
		cases = append(cases, tc{machine.Phi0, c})
	}
	for _, d := range []Dataset{DLRF6Medium(), DLRF6Large()} {
		for _, cs := range cases {
			locs, computes, assignment := stepInputs(t, m, node, cs.dev, cs.c, d)
			mk := func() *simmpi.World {
				w, err := simmpi.NewWorld(simmpi.Config{Ranks: locs, SizeOnlyPayloads: true})
				if err != nil {
					t.Fatal(err)
				}
				return w
			}
			fast, ok := SymmetricStepReplay(mk(), computes, assignment)
			if cs.c.Ranks < 2 {
				if ok {
					t.Errorf("%s %v: replay accepted a single-rank world", cs.dev, cs.c)
				}
				continue
			}
			if !ok {
				t.Fatalf("%s %v: replay refused a homogeneous healthy world", cs.dev, cs.c)
			}
			slow := mk()
			if err := slow.Run(func(r *simmpi.Rank) { stepBody(r, computes, assignment) }); err != nil {
				t.Fatal(err)
			}
			if fast != slow.MaxTime() {
				t.Fatalf("%s %v (%d zones): replay %v != goroutine %v",
					cs.dev, cs.c, len(d.Zones), fast, slow.MaxTime())
			}
		}
	}
}

// TestStepReplayRefusals pins the fallback conditions: the Figure 23
// symmetric (host+Phi) world and any faulted world must refuse, keeping
// profiles and fault derating on the goroutine engine.
func TestStepReplayRefusals(t *testing.T) {
	m := core.DefaultModel()
	node := machine.NewNode()
	d := DLRF6Medium()

	// Heterogeneous: 2 host ranks + 2 Phi ranks, the fig23 shape.
	locs := append(simmpi.HostPlacement(2, 1), simmpi.PhiPlacement(machine.Phi0, 2, 4)...)
	speeds := []float64{1, 1, 1, 1}
	assignment, err := Decompose(d, speeds)
	if err != nil {
		t.Fatal(err)
	}
	computes := make([]vclock.Time, len(locs))
	for i := range computes {
		computes[i] = rankStepTime(m, node, locs[i].Device, Combo{2, 1}, assignment[i])
	}
	wm, err := simmpi.NewWorld(simmpi.Config{Ranks: locs, SizeOnlyPayloads: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := SymmetricStepReplay(wm, computes, assignment); ok {
		t.Error("replay accepted the heterogeneous symmetric world")
	}

	// Faulted: a homogeneous world under a straggler plan.
	wf, err := simmpi.NewWorld(simmpi.Config{Ranks: simmpi.HostPlacement(4, 1), SizeOnlyPayloads: true},
		simmpi.WithFaultPlan(simfault.PhiStraggler()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := SymmetricStepReplay(wf, computes, assignment); ok {
		t.Error("replay accepted a faulted world")
	}
}
