package overflow

import (
	"fmt"

	"maia/internal/core"
	"maia/internal/machine"
	"maia/internal/pcie"
	"maia/internal/simfault"
	"maia/internal/simmpi"
	"maia/internal/simomp"
	"maia/internal/vclock"
)

// Performance drivers for Figures 22 and 23. OVERFLOW's character per the
// paper: implicit line solves streaming through large structured zones —
// memory-bandwidth-bound ("the performance of OVERFLOW depends on the
// bandwidth of the memory subsystem"), with non-unit-stride vectorization
// (Section 7 pairs it with CG's gather/scatter problem).

// perPoint is the modeled per-grid-point per-step operation count.
const (
	flopsPerPoint = 1500.0
	bytesPerPoint = 1100.0
)

// workloadFor returns the core.Workload of `points` grid points for one
// time step.
func workloadFor(points int64) core.Workload {
	return core.Workload{
		Name:             "OVERFLOW step",
		Flops:            float64(points) * flopsPerPoint,
		Bytes:            float64(points) * bytesPerPoint,
		VecFraction:      0.55,
		Stride:           core.Strided,
		Reuse:            0.35,
		ParallelFraction: 0.997,
	}
}

// Combo is an (I x J) run configuration: I MPI ranks with J OpenMP
// threads each.
type Combo struct{ Ranks, Threads int }

// String formats the paper's "I x J" notation.
func (c Combo) String() string { return fmt.Sprintf("%dx%d", c.Ranks, c.Threads) }

// HostCombos are the Figure 22 host configurations (16 threads total).
func HostCombos() []Combo {
	return []Combo{{16, 1}, {8, 2}, {4, 4}, {2, 8}, {1, 16}}
}

// PhiCombos are the Figure 22 Phi configurations.
func PhiCombos() []Combo {
	return []Combo{{4, 14}, {8, 14}, {4, 28}, {8, 28}}
}

// rankPartition returns the execution resources of ONE rank in a combo.
func rankPartition(node *machine.Node, dev machine.Device, c Combo) machine.Partition {
	if dev.IsPhi() {
		total := c.Ranks * c.Threads
		tpc := (total + node.PhiProc.Cores - 1) / node.PhiProc.Cores
		if tpc < 1 {
			tpc = 1
		}
		if tpc > node.PhiProc.ThreadsPerCore {
			tpc = node.PhiProc.ThreadsPerCore
		}
		cores := (c.Threads + tpc - 1) / tpc
		return machine.PhiPartition(node, dev, cores, tpc)
	}
	cores := c.Threads
	tpc := 1
	if cores > node.HostCores() {
		cores = node.HostCores()
		tpc = 2
	}
	return machine.HostCoresPartition(node, cores, tpc)
}

// devicePartition returns ALL the resources a combo occupies on one
// device (every rank's cores together). Memory bandwidth is a device
// resource shared by the combo's ranks, so per-rank times must be priced
// against the full partition, not a per-rank slice of the saturation
// curve.
func devicePartition(node *machine.Node, dev machine.Device, c Combo) machine.Partition {
	per := rankPartition(node, dev, c)
	cores := per.Cores * c.Ranks
	if dev.IsPhi() {
		if cores > node.PhiProc.Cores {
			cores = node.PhiProc.Cores
		}
		return machine.PhiPartition(node, dev, cores, per.ThreadsPerCore)
	}
	if cores > node.HostCores() {
		cores = node.HostCores()
	}
	return machine.HostCoresPartition(node, cores, per.ThreadsPerCore)
}

// rankStepTime prices one rank's compute share of one time step: the
// rank's points at the full device partition's per-point rate (times the
// rank count, since the rank holds 1/ranks of the device), plus the
// OpenMP region overheads of its per-zone ADI sweeps, plus the NUMA
// penalty when one host rank spans both sockets.
func rankStepTime(m core.Model, node *machine.Node, dev machine.Device, c Combo,
	pieces []Piece) vclock.Time {
	full := devicePartition(node, dev, c)
	w := workloadFor(Load(pieces))
	t := m.Time(w, full) * vclock.Time(c.Ranks)
	if !dev.IsPhi() {
		// On the host, OVERFLOW's loop-level OpenMP is less efficient
		// than its MPI domain decomposition (serial stretches between
		// parallel loops, poorer locality), so performance decreases as
		// threads per rank grow — the Figure 22 host ordering.
		t *= vclock.Time(1 + 0.02*float64(c.Threads-1))
		if c.Threads > node.HostProc.Cores {
			// A single rank's arrays span both sockets: remote-socket
			// accesses tax the bandwidth-bound sweeps.
			t *= 1.25
		}
	}
	rt := simomp.New(rankPartition(node, dev, c))
	const regionsPerZoneStep = 4 // forcing + three directional sweeps
	regions := vclock.Time(len(pieces) * regionsPerZoneStep)
	t += regions*rt.SyncOverhead(simomp.ParallelFor) + rt.SyncOverhead(simomp.Reduction)
	return t
}

// StepTime prices one time step of a dataset on one device under a
// combo: decompose the zones over the ranks, then run one representative
// step through simmpi (compute + interface exchanges + residual
// allreduce) and return the makespan — the "wallclock time per step" of
// Figures 22 and 23.
func StepTime(m core.Model, node *machine.Node, dev machine.Device, c Combo, d Dataset) (vclock.Time, error) {
	speeds := make([]float64, c.Ranks)
	for i := range speeds {
		speeds[i] = 1
	}
	assignment, err := Decompose(d, speeds)
	if err != nil {
		return 0, err
	}
	var locs []simmpi.Location
	combos := make([]Combo, c.Ranks)
	devs := make([]machine.Device, c.Ranks)
	tpc := rankPartition(node, dev, c).ThreadsPerCore
	for i := 0; i < c.Ranks; i++ {
		locs = append(locs, simmpi.Location{Device: dev, ThreadsPerCore: tpc})
		combos[i] = c
		devs[i] = dev
	}
	t, _, _, err := runStepMixed(m, node, combos, devs, assignment, locs, nil, nil)
	return t, err
}

// Fig22 returns the wallclock-per-step map for the native-mode combos of
// Figure 22 on DLRF6-Medium: host combos and Phi combos.
func Fig22(m core.Model, node *machine.Node) (host, phi map[Combo]vclock.Time, err error) {
	d := DLRF6Medium()
	host = make(map[Combo]vclock.Time)
	phi = make(map[Combo]vclock.Time)
	for _, c := range HostCombos() {
		t, err := StepTime(m, node, machine.Host, c, d)
		if err != nil {
			return nil, nil, err
		}
		host[c] = t
	}
	for _, c := range PhiCombos() {
		t, err := StepTime(m, node, machine.Phi0, c, d)
		if err != nil {
			return nil, nil, err
		}
		phi[c] = t
	}
	return host, phi, nil
}

// SymmetricConfig describes a Figure 23 symmetric run: host ranks plus
// ranks on each Phi.
type SymmetricConfig struct {
	HostCombo Combo // ranks x threads on the host
	PhiCombo  Combo // ranks x threads on EACH Phi
	Software  pcie.Software
	// Faults, when non-nil, prices the step on the degraded machine the
	// plan describes (straggler/throttled devices, lossy fabrics).
	Faults *simfault.Plan
}

// SymmetricStepTime prices one DLRF6-Large step in symmetric mode: the
// zone system is balanced across host and Phi ranks by their modeled
// speeds, then a representative step runs over the mixed-device world
// with the selected PCIe software stack.
func SymmetricStepTime(m core.Model, node *machine.Node, cfg SymmetricConfig) (vclock.Time, error) {
	t, _, err := SymmetricStepProfile(m, node, cfg)
	return t, err
}

// SymmetricStepProfile is SymmetricStepTime plus the MPInside-style
// breakdown: where each rank's time went, and how balanced the compute
// ended up — the quantitative form of Section 6.9.1.3's finding that
// "communication time and overhead due to load imbalance" outweigh the
// coprocessors' speedup.
func SymmetricStepProfile(m core.Model, node *machine.Node, cfg SymmetricConfig) (vclock.Time, simmpi.ProfileSummary, error) {
	locs, combos, devs, speeds := symmetricSetup(m, node, cfg)
	assignment, err := Decompose(DLRF6Large(), speeds)
	if err != nil {
		return 0, simmpi.ProfileSummary{}, err
	}
	t, prof, _, err := runStepMixed(m, node, combos, devs, assignment, locs,
		pcie.NewStack(cfg.Software), cfg.Faults)
	return t, prof, err
}

// symmetricSetup builds the rank placement of a symmetric run and the
// production balancer's estimated per-rank speeds.
func symmetricSetup(m core.Model, node *machine.Node, cfg SymmetricConfig) (
	locs []simmpi.Location, combos []Combo, devs []machine.Device, speeds []float64) {
	hostTpc := rankPartition(node, machine.Host, cfg.HostCombo).ThreadsPerCore
	for i := 0; i < cfg.HostCombo.Ranks; i++ {
		locs = append(locs, simmpi.Location{Device: machine.Host, ThreadsPerCore: hostTpc})
		combos = append(combos, cfg.HostCombo)
		devs = append(devs, machine.Host)
	}
	for _, phi := range []machine.Device{machine.Phi0, machine.Phi1} {
		tpc := rankPartition(node, phi, cfg.PhiCombo).ThreadsPerCore
		for i := 0; i < cfg.PhiCombo.Ranks; i++ {
			locs = append(locs, simmpi.Location{Device: phi, ThreadsPerCore: tpc})
			combos = append(combos, cfg.PhiCombo)
			devs = append(devs, phi)
		}
	}
	// Load balance by estimated rank speed. The production balancer
	// overestimates the Phi: its weights come from kernel benchmarks and
	// card peak, while delivered OVERFLOW throughput is bandwidth-bound
	// and zone-shape-sensitive. The resulting overload of the Phi ranks
	// is the "overhead due to load imbalance" of Section 6.9.1.3. The
	// static balancer is also blind to degradation a fault plan injects —
	// that blindness is what SymmetricStepRebalanced repairs.
	const phiBalanceBias = 1.5
	speeds = make([]float64, len(locs))
	unit := workloadFor(1_000_000)
	for i := range speeds {
		full := devicePartition(node, devs[i], combos[i])
		speeds[i] = unit.Flops / m.Time(unit, full).Seconds() / float64(combos[i].Ranks)
		if devs[i].IsPhi() {
			speeds[i] *= phiBalanceBias
		}
	}
	return locs, combos, devs, speeds
}

// SymmetricStepRebalanced prices the symmetric step twice: first with
// the static speed-model decomposition, then again after a dynamic
// rebalance that redistributes zones by the per-rank compute times the
// first step actually measured (the load-balancing loop production
// overset codes run between steps). Under a fault plan the first step
// observes the stragglers and throttles directly, so the rebalance
// sheds zones from degraded ranks; on the healthy machine it just
// corrects the balancer's Phi bias. Both makespans are returned.
func SymmetricStepRebalanced(m core.Model, node *machine.Node, cfg SymmetricConfig) (static, rebalanced vclock.Time, err error) {
	d := DLRF6Large()
	locs, combos, devs, speeds := symmetricSetup(m, node, cfg)
	assignment, err := Decompose(d, speeds)
	if err != nil {
		return 0, 0, err
	}
	stack := pcie.NewStack(cfg.Software)
	static, _, perRank, err := runStepMixed(m, node, combos, devs, assignment, locs, stack, cfg.Faults)
	if err != nil {
		return 0, 0, err
	}
	// Measured speed: grid points actually processed per second of
	// observed compute time, degradation included.
	measured := make([]float64, len(perRank))
	for i, ct := range perRank {
		measured[i] = float64(Load(assignment[i])) / ct.Seconds()
	}
	reassignment, err := Decompose(d, measured)
	if err != nil {
		return 0, 0, err
	}
	rebalanced, _, _, err = runStepMixed(m, node, combos, devs, reassignment, locs, stack, cfg.Faults)
	if err != nil {
		return 0, 0, err
	}
	return static, rebalanced, nil
}

// stepScript expresses one representative OVERFLOW step as a SeqStep
// script: the per-rank OMP-region compute (already priced by the
// steady slowdown math in rankStepTime), the fringe exchange as one
// shifted-ring step per partner with per-rank payload sizes, and the
// residual allreduce. The shift normalization mirrors the goroutine
// body's dst==id/src==id fallbacks: a shift that is a multiple of the
// rank count degenerates to the one-rank shift on every rank.
func stepScript(computes []vclock.Time, assignment [][]Piece) []simmpi.SeqStep {
	ranks := len(computes)
	steps := make([]simmpi.SeqStep, 0, 5)
	steps = append(steps, simmpi.SeqStep{Kind: simmpi.ComputeStep, ComputePer: computes})
	if ranks > 1 {
		partners := 3
		if partners > ranks-1 {
			partners = ranks - 1
		}
		per := make([]int, ranks)
		for i := range per {
			fringeBytes := int(0.15 * float64(Load(assignment[i])) * 56)
			per[i] = fringeBytes / partners
			if per[i] < 64 {
				per[i] = 64
			}
		}
		for p := 1; p <= partners; p++ {
			steps = append(steps, simmpi.SeqStep{
				Kind:     simmpi.RingKind,
				Shift:    p*ranks/(partners+1) + 1,
				BytesPer: per,
			})
		}
	}
	steps = append(steps, simmpi.SeqStep{Kind: simmpi.AllreduceKind, Bytes: 8})
	return steps
}

// SymmetricStepReplay prices one representative step in closed form on
// the clock-vector replay: the per-rank OMP regions charge as compute,
// and the fringe/residual exchanges replay through the step script. ok
// is false when the world refuses the fast path — fault plans,
// heterogeneous placement (every Figure 23 symmetric world), fewer
// than two ranks, or MAIA_NO_FASTPATH — and the goroutine engine runs
// instead.
func SymmetricStepReplay(w *simmpi.World, computes []vclock.Time, assignment [][]Piece) (vclock.Time, bool) {
	return w.RepeatSeq(stepScript(computes, assignment), 1)
}

// runStepMixed executes one representative step on a (possibly
// heterogeneous) world, returning the makespan, the MPI profile, and
// each rank's observed compute time (the signal the dynamic rebalancer
// keys on). plan, when non-nil, injects faults into the world: compute
// derating happens inside Rank.Compute, so the observed times include
// stragglers and throttle windows.
//
// Homogeneous healthy worlds (the Figure 22 ranks x threads sweep)
// price through SymmetricStepReplay instead of running goroutines; on
// that path the observed compute IS the charged compute (no plan to
// derate it) and the profile summary is zero — the profile-consuming
// callers all build heterogeneous worlds, which never take the replay.
func runStepMixed(m core.Model, node *machine.Node, combos []Combo, devs []machine.Device,
	assignment [][]Piece, locs []simmpi.Location, stack *pcie.Stack,
	plan *simfault.Plan) (vclock.Time, simmpi.ProfileSummary, []vclock.Time, error) {
	// The step script only exchanges representative payload sizes (the
	// fringe contents are never read), so the transport runs size-only.
	w, err := simmpi.NewWorld(simmpi.Config{Ranks: locs, Stack: stack, SizeOnlyPayloads: true},
		simmpi.WithFaultPlan(plan))
	if err != nil {
		return 0, simmpi.ProfileSummary{}, nil, err
	}
	ranks := len(locs)
	computes := make([]vclock.Time, ranks)
	for i := range computes {
		computes[i] = rankStepTime(m, node, devs[i], combos[i], assignment[i])
	}
	if t, ok := SymmetricStepReplay(w, computes, assignment); ok {
		return t, simmpi.ProfileSummary{}, computes, nil
	}
	err = w.Run(func(r *simmpi.Rank) { stepBody(r, computes, assignment) })
	if err != nil {
		return 0, simmpi.ProfileSummary{}, nil, err
	}
	observed := make([]vclock.Time, ranks)
	for i, p := range w.Profiles() {
		observed[i] = p.Compute
	}
	return w.MaxTime(), w.Summarize(), observed, nil
}

// stepBody is the goroutine-engine execution of one representative
// step: the fallback SymmetricStepReplay is pinned against, and the
// only path under fault plans, heterogeneous placement, or
// MAIA_NO_FASTPATH.
func stepBody(r *simmpi.Rank, computes []vclock.Time, assignment [][]Piece) {
	id := r.ID()
	ranks := r.Size()
	r.Compute(computes[id])
	if ranks > 1 {
		// Overset fringe exchange: each zone's fringe points are
		// interpolated from donor zones scattered across the grid
		// system, so every rank trades fringe data with a handful
		// of partners — not just chain neighbours. Fringe volume is
		// ~8% of the rank's points at 7 variables of 8 bytes.
		fringeBytes := int(0.15 * float64(Load(assignment[id])) * 56)
		partners := 3
		if partners > ranks-1 {
			partners = ranks - 1
		}
		per := fringeBytes / partners
		if per < 64 {
			per = 64
		}
		fringe := simmpi.GetPayload(per)
		for p := 1; p <= partners; p++ {
			dst := (id + p*ranks/(partners+1) + 1) % ranks
			if dst == id {
				dst = (id + 1) % ranks
			}
			src := (id - p*ranks/(partners+1) - 1 + ranks) % ranks
			if src == id {
				src = (id - 1 + ranks) % ranks
			}
			simmpi.Recycle(r.Sendrecv(dst, p, fringe, src, p))
		}
		simmpi.Recycle(fringe)
	}
	r.AllreduceSum(1)
}

// HostOnlyStepTime prices DLRF6-Large on the host alone (16x1) — the
// baseline the paper's 1.9x symmetric speedup is measured against.
func HostOnlyStepTime(m core.Model, node *machine.Node) (vclock.Time, error) {
	return StepTime(m, node, machine.Host, Combo{16, 1}, DLRF6Large())
}

// TwoHostsStepTime prices DLRF6-Large on two host nodes (16x1 each)
// connected by InfiniBand — the paper's host1+host2 comparison that the
// symmetric mode fails to beat.
func TwoHostsStepTime(m core.Model, node *machine.Node) (vclock.Time, error) {
	d := DLRF6Large()
	const ranks = 32
	speeds := make([]float64, ranks)
	for i := range speeds {
		speeds[i] = 1
	}
	assignment, err := Decompose(d, speeds)
	if err != nil {
		return 0, err
	}
	locs := make([]simmpi.Location, ranks)
	combos := make([]Combo, ranks)
	devs := make([]machine.Device, ranks)
	for i := range locs {
		locs[i] = simmpi.Location{Device: machine.Host, ThreadsPerCore: 1, Node: i / 16}
		combos[i] = Combo{16, 1}
		devs[i] = machine.Host
	}
	t, _, _, err := runStepMixed(m, node, combos, devs, assignment, locs, nil, nil)
	return t, err
}
