package overflow

import (
	"fmt"

	"maia/internal/core"
	"maia/internal/machine"
	"maia/internal/pcie"
	"maia/internal/simfault"
	"maia/internal/simmpi"
	"maia/internal/vclock"
)

// Rack-scale OVERFLOW: the overset grid system strong-scaled across
// the hypercube fabric. Every node runs the same local configuration
// (host ranks, optionally ranks on each Phi), so the per-node compute
// profile is identical across nodes and the step prices on the
// hierarchical replay — one time step of the full 128-node system in
// closed form.
//
// The paper's load-imbalance story carries over: the production
// balancer's Phi bias (phiBalanceBias) skews the per-rank point shares
// inside every node, which the script expresses as per-local-index
// compute. The overset fringe interpolation, whose donors are
// scattered across the whole grid system, becomes a global Alltoall;
// the residual norm is the usual Allreduce.

// RackDataset is the rack-sized grid system: 16x the DLRF6-Large
// points over 4x the zones — enough work that 128 nodes still hold
// several million points each.
func RackDataset() Dataset { return synthesize("DLRF6-Rack", 92, 574_400_000, 41) }

// RackConfig describes a rack-scale run: Nodes identical nodes, each
// with HostCombo ranks on the host and PhiCombo ranks on EACH Phi
// (PhiCombo.Ranks == 0 for host-only runs).
type RackConfig struct {
	Nodes     int
	HostCombo Combo
	PhiCombo  Combo
	Software  pcie.Software
	// Faults, when non-nil, prices the step on the degraded machine.
	// Faulted worlds refuse the replay and run the goroutine engine, so
	// keep the node count modest.
	Faults *simfault.Plan
}

// PerNode returns the MPI ranks each node hosts.
func (c RackConfig) PerNode() int { return c.HostCombo.Ranks + 2*c.PhiCombo.Ranks }

// RackHostOnly is the baseline configuration: 16 host ranks per node,
// no coprocessors.
func RackHostOnly(nodes int) RackConfig {
	return RackConfig{Nodes: nodes, HostCombo: Combo{16, 1}}
}

// RackStepTime prices one time step of the rack dataset strong-scaled
// over cfg.Nodes nodes — the rack-scale analogue of Figure 23's
// wallclock per step. opts thread into the simmpi world (tracing; a
// fault plan can also come via cfg.Faults).
func RackStepTime(m core.Model, node *machine.Node, cfg RackConfig, opts ...simmpi.Option) (vclock.Time, error) {
	if cfg.Nodes < 2 {
		return 0, fmt.Errorf("overflow: rack step needs at least 2 nodes, got %d", cfg.Nodes)
	}
	per := cfg.PerNode()
	if per < 1 {
		return 0, fmt.Errorf("overflow: rack config places no ranks on a node")
	}
	d := RackDataset()
	nodePoints := d.TotalPoints() / int64(cfg.Nodes)

	// Local placement and balancer-estimated speeds, identical on every
	// node. The same phiBalanceBias as symmetricSetup: the static
	// balancer overfeeds the Phi ranks.
	locs := make([]simmpi.Location, 0, per)
	combos := make([]Combo, 0, per)
	devs := make([]machine.Device, 0, per)
	hostTpc := rankPartition(node, machine.Host, cfg.HostCombo).ThreadsPerCore
	for i := 0; i < cfg.HostCombo.Ranks; i++ {
		locs = append(locs, simmpi.Location{Device: machine.Host, ThreadsPerCore: hostTpc})
		combos = append(combos, cfg.HostCombo)
		devs = append(devs, machine.Host)
	}
	if cfg.PhiCombo.Ranks > 0 {
		for _, phi := range []machine.Device{machine.Phi0, machine.Phi1} {
			tpc := rankPartition(node, phi, cfg.PhiCombo).ThreadsPerCore
			for i := 0; i < cfg.PhiCombo.Ranks; i++ {
				locs = append(locs, simmpi.Location{Device: phi, ThreadsPerCore: tpc})
				combos = append(combos, cfg.PhiCombo)
				devs = append(devs, phi)
			}
		}
	}
	const phiBalanceBias = 1.5
	speeds := make([]float64, per)
	unit := workloadFor(1_000_000)
	var totalSpeed float64
	for i := range speeds {
		full := devicePartition(node, devs[i], combos[i])
		speeds[i] = unit.Flops / m.Time(unit, full).Seconds() / float64(combos[i].Ranks)
		if devs[i].IsPhi() {
			speeds[i] *= phiBalanceBias
		}
		totalSpeed += speeds[i]
	}

	// Continuous biased split of the node's points (the splitter's
	// plane-granularity residual is a per-node constant here, so the
	// continuous split keeps nodes identical), priced per local rank.
	// Zone count per rank sets the OpenMP region overhead.
	zonesPerRank := len(d.Zones) / (cfg.Nodes * per)
	if zonesPerRank < 1 {
		zonesPerRank = 1
	}
	computes := make([]vclock.Time, per)
	for j := range computes {
		share := int64(float64(nodePoints) * speeds[j] / totalSpeed)
		if share < 1 {
			share = 1
		}
		pieces := make([]Piece, zonesPerRank)
		for z := range pieces {
			pieces[z] = Piece{Zone: z, Points: share / int64(zonesPerRank)}
		}
		computes[j] = rankStepTime(m, node, devs[j], combos[j], pieces)
	}

	// Fringe interpolation: ~15% of a rank's points at 7 variables of 8
	// bytes, traded with donors across the whole system.
	ranks := cfg.Nodes * per
	fringeBytes := int(0.15 * float64(nodePoints) / float64(per) * 56)
	block := fringeBytes / ranks
	if block < 64 {
		block = 64
	}
	steps := []simmpi.SeqStep{
		{ComputePer: computes, Kind: simmpi.AlltoallKind, Bytes: block},
		{Kind: simmpi.AllreduceKind, Bytes: 8},
	}

	wcfg := simmpi.Config{
		Ranks:  simmpi.ReplicateNodes(locs, cfg.Nodes),
		Fabric: machine.NewRackFabric(cfg.Nodes),
	}
	if cfg.PhiCombo.Ranks > 0 {
		wcfg.Stack = pcie.NewStack(cfg.Software)
	}
	return simmpi.SeqTime(wcfg, steps, 1, append([]simmpi.Option{simmpi.WithFaultPlan(cfg.Faults)}, opts...)...)
}
