package overflow

import (
	"fmt"
	"math"

	"maia/internal/machine"
	"maia/internal/simmpi"
	"maia/internal/simomp"
)

// The real solver: implicit ADI time stepping of a diffusion problem
// du/dt = ∇²u + f on a chain of cubic structured zones. Adjacent zones
// overlap through one interpolated ghost plane on each side, the way
// overset grids exchange fringe data; the interpolation is a
// nearest-neighbor sample so zones of different resolutions couple.

// ZoneGrid is one zone's scalar field: an n³ interior with one ghost
// plane at each end of the chain axis (the i direction).
type ZoneGrid struct {
	N int
	// V has (n+2) i-planes of n*n points each: plane 0 and n+1 are the
	// overset ghost planes.
	V []float64
	F []float64 // steady forcing on the interior
}

// NewZoneGrid allocates a zone with n interior points per dimension.
func NewZoneGrid(n int) *ZoneGrid {
	return &ZoneGrid{N: n, V: make([]float64, (n+2)*n*n), F: make([]float64, n*n*n)}
}

// Idx maps (i,j,k) with i in [0, n+2) (ghosts at 0 and n+1).
func (z *ZoneGrid) Idx(i, j, k int) int { return (i*z.N+j)*z.N + k }

// FIdx maps interior (i,j,k), i in [0, n).
func (z *ZoneGrid) FIdx(i, j, k int) int { return (i*z.N+j)*z.N + k }

// BoundaryPlane copies the first or last interior i-plane into out
// (n*n values).
func (z *ZoneGrid) BoundaryPlane(last bool, out []float64) {
	i := 1
	if last {
		i = z.N
	}
	copy(out, z.V[z.Idx(i, 0, 0):z.Idx(i+1, 0, 0)])
}

// SetGhostPlane fills a ghost plane by nearest-neighbor interpolation
// from a donor plane of edge size donorN.
func (z *ZoneGrid) SetGhostPlane(last bool, donor []float64, donorN int) {
	i := 0
	if last {
		i = z.N + 1
	}
	for j := 0; j < z.N; j++ {
		for k := 0; k < z.N; k++ {
			dj := j * donorN / z.N
			dk := k * donorN / z.N
			z.V[z.Idx(i, j, k)] = donor[dj*donorN+dk]
		}
	}
}

// Solver is a chain of zones advanced together.
type Solver struct {
	Zones  []*ZoneGrid
	lambda float64 // dt / h^2 (per-zone h differences folded in)
	dt     float64
}

// NewSolver builds a chain of zones with the given interior sizes,
// random forcing, and zero initial state.
func NewSolver(sizes []int, dt float64) (*Solver, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("overflow: no zones")
	}
	s := &Solver{dt: dt}
	seedState := 314159265.0
	for _, n := range sizes {
		if n < 3 {
			return nil, fmt.Errorf("overflow: zone size %d too small", n)
		}
		z := NewZoneGrid(n)
		for i := range z.F {
			// A fixed LCG keeps the forcing deterministic.
			seedState = math.Mod(seedState*1220703125, 70368744177664)
			z.F[i] = seedState/70368744177664 - 0.5
		}
		s.Zones = append(s.Zones, z)
	}
	s.lambda = dt * float64(sizes[0]*sizes[0])
	return s, nil
}

// tridiag solves (1+2λ) x_i - λ x_{i-1} - λ x_{i+1} = r_i in place
// (Thomas algorithm), with boundary terms already folded into r.
func tridiag(lambda float64, r, cw []float64) {
	n := len(r)
	d := 1 + 2*lambda
	cw[0] = -lambda / d
	r[0] /= d
	for i := 1; i < n; i++ {
		m := d + lambda*cw[i-1]
		cw[i] = -lambda / m
		r[i] = (r[i] + lambda*r[i-1]) / m
	}
	for i := n - 2; i >= 0; i-- {
		r[i] -= cw[i] * r[i+1]
	}
}

// stepZone advances one zone one ADI step, using the current ghost
// planes. Line solves along each dimension are work-shared when a team
// is given.
func (s *Solver) stepZone(z *ZoneGrid, team *simomp.Team) {
	n := z.N
	lam := s.lambda / 3
	// Forcing.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				z.V[z.Idx(i+1, j, k)] += s.dt * z.F[z.FIdx(i, j, k)]
			}
		}
	}
	// Three directional implicit solves. The i-direction lines see the
	// overset ghost planes as Dirichlet data.
	for dim := 0; dim < 3; dim++ {
		solveLine := func(line int) {
			p, q := line/n, line%n
			r := make([]float64, n)
			cw := make([]float64, n)
			for c := 0; c < n; c++ {
				switch dim {
				case 0:
					r[c] = z.V[z.Idx(c+1, p, q)]
				case 1:
					r[c] = z.V[z.Idx(p+1, c, q)]
				default:
					r[c] = z.V[z.Idx(p+1, q, c)]
				}
			}
			if dim == 0 {
				r[0] += lam * z.V[z.Idx(0, p, q)]
				r[n-1] += lam * z.V[z.Idx(n+1, p, q)]
			}
			tridiag(lam, r, cw)
			for c := 0; c < n; c++ {
				switch dim {
				case 0:
					z.V[z.Idx(c+1, p, q)] = r[c]
				case 1:
					z.V[z.Idx(p+1, c, q)] = r[c]
				default:
					z.V[z.Idx(p+1, q, c)] = r[c]
				}
			}
		}
		if team == nil {
			for line := 0; line < n*n; line++ {
				solveLine(line)
			}
		} else {
			team.ParallelFor(n*n, simomp.ForOpts{Sched: simomp.Static}, solveLine)
		}
	}
}

// exchangeSerial updates every interface's ghost planes in place.
func (s *Solver) exchangeSerial() {
	for i := 0; i+1 < len(s.Zones); i++ {
		a, b := s.Zones[i], s.Zones[i+1]
		planeA := make([]float64, a.N*a.N)
		planeB := make([]float64, b.N*b.N)
		a.BoundaryPlane(true, planeA)
		b.BoundaryPlane(false, planeB)
		b.SetGhostPlane(false, planeA, a.N)
		a.SetGhostPlane(true, planeB, b.N)
	}
}

// Step advances the whole chain one time step (exchange, then zone
// steps). team may be nil.
func (s *Solver) Step(team *simomp.Team) {
	s.exchangeSerial()
	for _, z := range s.Zones {
		s.stepZone(z, team)
	}
}

// Norm returns the RMS of the interior solution across all zones.
func (s *Solver) Norm() float64 {
	sum, count := 0.0, 0
	for _, z := range s.Zones {
		n := z.N
		for i := 1; i <= n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					v := z.V[z.Idx(i, j, k)]
					sum += v * v
					count++
				}
			}
		}
	}
	return math.Sqrt(sum / float64(count))
}

// StepDelta runs one step and reports how much the solution moved —
// a decreasing sequence as the chain approaches steady state.
func (s *Solver) StepDelta(team *simomp.Team) float64 {
	before := s.Norm()
	s.Step(team)
	return math.Abs(s.Norm() - before)
}

// RunMPI executes the solver as a real MPI program: `ranks` simmpi ranks
// own contiguous spans of zones and exchange interface planes as
// messages. It returns the per-zone interior sums (a fingerprint that
// must match the serial run exactly).
func RunMPI(sizes []int, dt float64, steps, ranks int) ([]float64, error) {
	return RunHybrid(sizes, dt, steps, simmpi.HostPlacement(ranks, 1), 0)
}

// RunHybrid is RunMPI generalized to the paper's actual programming
// model: arbitrary rank placement (host ranks, Phi ranks, or a symmetric
// mix — cross-device interface planes then travel over the modeled PCIe
// fabric) and an OpenMP team of `threads` per rank working the line
// solves (0 = no team). Results are placement-independent: the
// fingerprint matches the serial run bitwise.
func RunHybrid(sizes []int, dt float64, steps int, locs []simmpi.Location, threads int) ([]float64, error) {
	ranks := len(locs)
	if ranks < 1 || ranks > len(sizes) {
		return nil, fmt.Errorf("overflow: %d ranks for %d zones", ranks, len(sizes))
	}
	// Contiguous block assignment of zones to ranks.
	owner := make([]int, len(sizes))
	per := (len(sizes) + ranks - 1) / ranks
	for z := range sizes {
		owner[z] = z / per
		if owner[z] >= ranks {
			owner[z] = ranks - 1
		}
	}
	sums := make([]float64, len(sizes))

	w, err := simmpi.NewWorld(simmpi.Config{Ranks: locs})
	if err != nil {
		return nil, err
	}
	err = w.Run(func(r *simmpi.Rank) {
		// Per-rank OpenMP team (hybrid mode).
		var team *simomp.Team
		if threads > 0 {
			part := machine.HostCoresPartition(machine.NewNode(), threads, 1)
			if r.Device().IsPhi() {
				part = machine.PhiThreadsPartition(machine.NewNode(), r.Device(), threads)
			}
			team = simomp.NewTeam(simomp.New(part))
		}
		// Build only the local zones.
		var local []*ZoneGrid
		var localIDs []int
		full, err := NewSolver(sizes, dt)
		if err != nil {
			panic(err)
		}
		for z, o := range owner {
			if o == r.ID() {
				local = append(local, full.Zones[z])
				localIDs = append(localIDs, z)
			}
		}
		sub := &Solver{Zones: local, lambda: full.lambda, dt: dt}
		for step := 0; step < steps; step++ {
			// Internal interfaces.
			sub.exchangeSerial()
			// External interfaces: exchange boundary planes with the
			// neighbouring ranks that own adjacent zones.
			if len(localIDs) > 0 {
				first, last := localIDs[0], localIDs[len(localIDs)-1]
				if first > 0 {
					z := local[0]
					plane := make([]float64, z.N*z.N)
					z.BoundaryPlane(false, plane)
					got := r.Sendrecv(owner[first-1], step, planeBytes(plane),
						owner[first-1], step)
					donorN := sizes[first-1]
					z.SetGhostPlane(false, bytesPlane(got), donorN)
				}
				if last < len(sizes)-1 {
					z := local[len(local)-1]
					plane := make([]float64, z.N*z.N)
					z.BoundaryPlane(true, plane)
					got := r.Sendrecv(owner[last+1], step, planeBytes(plane),
						owner[last+1], step)
					donorN := sizes[last+1]
					z.SetGhostPlane(true, bytesPlane(got), donorN)
				}
			}
			for _, z := range sub.Zones {
				sub.stepZone(z, team)
			}
			// Residual-style collective, as the production code does.
			r.AllreduceSum(sub.Norm())
		}
		for i, z := range sub.Zones {
			sum := 0.0
			for idx := z.Idx(1, 0, 0); idx < z.Idx(z.N+1, 0, 0); idx++ {
				sum += z.V[idx]
			}
			sums[localIDs[i]] = sum
		}
	})
	if err != nil {
		return nil, err
	}
	return sums, nil
}

// planeBytes and bytesPlane move float64 planes through the byte
// transport.
func planeBytes(p []float64) []byte {
	b := make([]byte, 8*len(p))
	for i, v := range p {
		u := math.Float64bits(v)
		for s := 0; s < 8; s++ {
			b[8*i+s] = byte(u >> (8 * s))
		}
	}
	return b
}

func bytesPlane(b []byte) []float64 {
	p := make([]float64, len(b)/8)
	for i := range p {
		var u uint64
		for s := 0; s < 8; s++ {
			u |= uint64(b[8*i+s]) << (8 * s)
		}
		p[i] = math.Float64frombits(u)
	}
	return p
}
