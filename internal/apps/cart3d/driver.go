package cart3d

import (
	"maia/internal/core"
	"maia/internal/machine"
	"maia/internal/simomp"
	"maia/internal/vclock"
)

// Figure 21 driver: Cart3D on the OneraM6 wing (6 million cells), native
// host (16 OpenMP threads) vs native Phi (59/118/177/236 threads).

// OneraM6Cells is the paper's case size.
const OneraM6Cells = 6_000_000

// oneraM6Iters is the multigrid-accelerated steady-state iteration count
// the per-run totals are normalized over.
const oneraM6Iters = 250

// OneraM6Workload characterizes Flowcart on the OneraM6 case: a
// cell-centred FV Euler solver over a cut-cell Cartesian mesh.
// "Cart3D is not heavily vectorized" (Section 7), and the cut-cell data
// structures make its access pattern irregular — the combination that
// leaves it latency-bound on the Phi, where 4 threads per core is the
// optimum (Figure 21).
func OneraM6Workload() core.Workload {
	const flopsPerCellIter = 450
	const bytesPerCellIter = 360
	return core.Workload{
		Name:             "Cart3D OneraM6",
		Flops:            OneraM6Cells * flopsPerCellIter * oneraM6Iters,
		Bytes:            OneraM6Cells * bytesPerCellIter * oneraM6Iters,
		VecFraction:      0.35,
		Stride:           core.GatherScatter,
		Reuse:            0.40,
		ParallelFraction: 0.998,
	}
}

// Result is one Figure 21 datapoint.
type Result struct {
	Partition machine.Partition
	Time      vclock.Time
	Gflops    float64
}

// TimeOn prices the OneraM6 run on a partition: core-model compute plus
// the per-iteration OpenMP region overheads of the flux/update loops.
func TimeOn(m core.Model, part machine.Partition) Result {
	w := OneraM6Workload()
	rt := simomp.New(part)
	const regionsPerIter = 8 // flux passes, update, reduction of the residual norm
	perIter := vclock.Time(regionsPerIter-1)*rt.SyncOverhead(simomp.ParallelFor) +
		rt.SyncOverhead(simomp.Reduction)
	total := m.Time(w, part) + vclock.Time(oneraM6Iters)*perIter
	return Result{
		Partition: part,
		Time:      total,
		Gflops:    w.Flops / total.Seconds() / 1e9,
	}
}

// Fig21 returns the host reference (16 threads) and the Phi thread sweep.
func Fig21(m core.Model, node *machine.Node) (host Result, phi []Result) {
	host = TimeOn(m, machine.HostPartition(node, 1))
	for _, th := range []int{59, 118, 177, 236} {
		phi = append(phi, TimeOn(m, machine.PhiThreadsPartition(node, machine.Phi0, th)))
	}
	return host, phi
}

// Best returns the highest-Gflops result of a sweep.
func Best(rs []Result) Result {
	best := rs[0]
	for _, r := range rs[1:] {
		if r.Gflops > best.Gflops {
			best = r
		}
	}
	return best
}
