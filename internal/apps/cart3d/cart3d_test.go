package cart3d

import (
	"math"
	"testing"
	"testing/quick"

	"maia/internal/core"
	"maia/internal/machine"
	"maia/internal/simomp"
)

func team() *simomp.Team {
	return simomp.NewTeam(simomp.New(machine.HostCoresPartition(machine.NewNode(), 8, 1)))
}

func TestFreeStreamPreservation(t *testing.T) {
	s, err := NewSolver(8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), s.U...)
	for i := 0; i < 5; i++ {
		s.Step(s.StableDt(0.5), nil)
	}
	for i := range s.U {
		if math.Abs(s.U[i]-before[i]) > 1e-12 {
			t.Fatalf("free stream not preserved at %d: %v -> %v", i, before[i], s.U[i])
		}
	}
}

// Conservation: periodic box conserves mass, momentum and energy to
// machine precision while a pulse evolves.
func TestConservation(t *testing.T) {
	s, err := NewSolver(12, 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	s.AddPressurePulse(0.1)
	before := s.Totals()
	for i := 0; i < 10; i++ {
		s.Step(s.StableDt(0.4), nil)
	}
	after := s.Totals()
	for q := range before {
		if math.Abs(after[q]-before[q]) > 1e-9*math.Max(1, math.Abs(before[q])) {
			t.Fatalf("component %d not conserved: %v -> %v", q, before[q], after[q])
		}
	}
}

// Positivity: a modest pulse keeps density and pressure positive.
func TestPositivity(t *testing.T) {
	s, _ := NewSolver(12, 12, 12)
	s.AddPressurePulse(0.2)
	for i := 0; i < 20; i++ {
		s.Step(s.StableDt(0.4), nil)
	}
	rho, p := s.MinDensityPressure()
	if rho <= 0 || p <= 0 {
		t.Fatalf("positivity lost: rho=%v p=%v", rho, p)
	}
}

// The pulse actually moves: the solution changes, so the solver is not
// a no-op.
func TestPulseEvolves(t *testing.T) {
	s, _ := NewSolver(12, 12, 12)
	s.AddPressurePulse(0.1)
	before := append([]float64(nil), s.U...)
	s.Step(s.StableDt(0.4), nil)
	diff := 0.0
	for i := range s.U {
		diff += math.Abs(s.U[i] - before[i])
	}
	if diff < 1e-6 {
		t.Fatal("solution did not evolve")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	mk := func() *Solver {
		s, _ := NewSolver(10, 10, 10)
		s.AddPressurePulse(0.1)
		return s
	}
	ser, par := mk(), mk()
	dt := ser.StableDt(0.4)
	tm := team()
	for i := 0; i < 5; i++ {
		ser.Step(dt, nil)
		par.Step(dt, tm)
	}
	for i := range ser.U {
		if ser.U[i] != par.U[i] {
			t.Fatalf("parallel differs at %d: %v vs %v", i, par.U[i], ser.U[i])
		}
	}
}

// Property: conservation holds for random pulse amplitudes and mesh
// shapes.
func TestConservationProperty(t *testing.T) {
	f := func(ampRaw, dims uint8) bool {
		amp := 0.05 + float64(ampRaw%40)/200
		nx := 6 + int(dims%3)*2
		s, err := NewSolver(nx, 8, 6)
		if err != nil {
			return false
		}
		s.AddPressurePulse(amp)
		before := s.Totals()
		for i := 0; i < 3; i++ {
			s.Step(s.StableDt(0.4), nil)
		}
		after := s.Totals()
		for q := range before {
			if math.Abs(after[q]-before[q]) > 1e-9*math.Max(1, math.Abs(before[q])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSolverValidation(t *testing.T) {
	if _, err := NewSolver(2, 8, 8); err == nil {
		t.Fatal("tiny mesh accepted")
	}
}

// Figure 21 shape: host ~2x the best Phi result; Phi best at 4
// threads/core; performance increases with threads per core.
func TestFig21Shape(t *testing.T) {
	m := core.DefaultModel()
	host, phi := Fig21(m, machine.NewNode())
	best := Best(phi)
	ratio := host.Gflops / best.Gflops
	if ratio < 1.4 || ratio > 2.6 {
		t.Errorf("host/bestPhi = %.2f, want ~2 (paper: host twice the best Phi)", ratio)
	}
	if best.Partition.ThreadsPerCore != 4 {
		t.Errorf("best Phi at %d threads/core, want 4", best.Partition.ThreadsPerCore)
	}
	for i := 1; i < len(phi); i++ {
		if phi[i].Gflops <= phi[i-1].Gflops {
			t.Errorf("Phi Gflops not increasing with threads: %v", phi)
		}
	}
	if err := OneraM6Workload().Validate(); err != nil {
		t.Fatal(err)
	}
}

// --- multigrid acceleration ---

func TestCoarsenConserves(t *testing.T) {
	s, _ := NewSolver(8, 8, 8)
	s.AddPressurePulse(0.2)
	c, err := s.Coarsen()
	if err != nil {
		t.Fatal(err)
	}
	if c.Nx != 4 || c.H != s.H*2 {
		t.Fatalf("coarse geometry wrong: %d, h=%v", c.Nx, c.H)
	}
	// Volume averaging: coarse totals = fine totals / 8 (8x fewer cells,
	// same per-cell average).
	fine, coarse := s.Totals(), c.Totals()
	for q := range fine {
		if math.Abs(coarse[q]-fine[q]/8) > 1e-12*math.Max(1, math.Abs(fine[q])) {
			t.Fatalf("component %d not conserved under coarsening: %v vs %v/8", q, coarse[q], fine[q])
		}
	}
}

func TestCoarsenProlongRoundTrip(t *testing.T) {
	s, _ := NewSolver(8, 8, 8)
	s.AddPressurePulse(0.1)
	c, err := s.Coarsen()
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := NewSolver(8, 8, 8)
	if err := f2.ProlongFrom(c); err != nil {
		t.Fatal(err)
	}
	// Prolongation of the coarsening preserves totals exactly.
	a, b := s.Totals(), f2.Totals()
	for q := range a {
		if math.Abs(a[q]-b[q]) > 1e-12*math.Max(1, math.Abs(a[q])) {
			t.Fatalf("component %d drifted through restrict/prolong: %v vs %v", q, a[q], b[q])
		}
	}
}

func TestMultigridValidation(t *testing.T) {
	s, _ := NewSolver(7, 8, 8)
	if _, err := s.Coarsen(); err == nil {
		t.Error("odd mesh coarsened")
	}
	s8, _ := NewSolver(8, 8, 8)
	c, _ := NewSolver(3, 4, 4)
	if err := s8.ProlongFrom(c); err == nil {
		t.Error("mismatched prolongation accepted")
	}
}

// The headline property: FMG reaches the steady tolerance in fewer fine
// steps than a cold fine-mesh start.
func TestFMGAcceleratesSteadyState(t *testing.T) {
	mk := func() *Solver {
		s, _ := NewSolver(16, 16, 16)
		s.AddPressurePulse(0.15)
		return s
	}
	cold := mk()
	tol := cold.ResidualNorm(nil) / 20
	coldSteps, coldRes := cold.SolveSteady(tol, 4000, nil)
	if coldRes > tol {
		t.Fatalf("cold solve did not converge (res %v, tol %v)", coldRes, tol)
	}
	fmg := mk()
	fineSteps, coarseSteps, res, err := fmg.FMGSolveSteady(tol, 4000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res > tol {
		t.Fatalf("FMG did not converge (res %v)", res)
	}
	// Coarse steps cost 1/8 of fine steps; count them at that weight.
	fmgCost := float64(fineSteps) + float64(coarseSteps)/8
	if fmgCost >= float64(coldSteps) {
		t.Fatalf("FMG cost %.1f fine-equivalents >= cold %d steps (fine %d, coarse %d)",
			fmgCost, coldSteps, fineSteps, coarseSteps)
	}
}
