package cart3d

import (
	"fmt"
	"math"

	"maia/internal/simomp"
)

// Multigrid acceleration. Flowcart drives its Runge-Kutta smoother with
// a multigrid scheme for steady-state cases (Section 3.7.2). The mini-app
// implements the full-multigrid (FMG) form: converge a volume-averaged
// coarse mesh first, prolong that solution as the fine mesh's initial
// state, and finish with fine-mesh RK — reaching a given steady residual
// in far fewer fine-mesh iterations than a cold start.

// Coarsen returns a solver on the 2x-coarser mesh whose state is the
// volume average of each 2^3 block of fine cells. All dimensions must be
// even.
func (s *Solver) Coarsen() (*Solver, error) {
	if s.Nx%2 != 0 || s.Ny%2 != 0 || s.Nz%2 != 0 {
		return nil, fmt.Errorf("cart3d: mesh %dx%dx%d not coarsenable", s.Nx, s.Ny, s.Nz)
	}
	c, err := NewSolver(s.Nx/2, s.Ny/2, s.Nz/2)
	if err != nil {
		return nil, err
	}
	c.H = s.H * 2
	for i := 0; i < c.Nx; i++ {
		for j := 0; j < c.Ny; j++ {
			for k := 0; k < c.Nz; k++ {
				co := c.Idx(i, j, k) * nvar
				for q := 0; q < nvar; q++ {
					c.U[co+q] = 0
				}
				for di := 0; di < 2; di++ {
					for dj := 0; dj < 2; dj++ {
						for dk := 0; dk < 2; dk++ {
							fo := s.Idx(2*i+di, 2*j+dj, 2*k+dk) * nvar
							for q := 0; q < nvar; q++ {
								c.U[co+q] += s.U[fo+q] / 8
							}
						}
					}
				}
			}
		}
	}
	return c, nil
}

// ProlongFrom overwrites the fine state with the piecewise-constant
// prolongation of the coarse state (the FMG initial guess).
func (s *Solver) ProlongFrom(c *Solver) error {
	if c.Nx*2 != s.Nx || c.Ny*2 != s.Ny || c.Nz*2 != s.Nz {
		return fmt.Errorf("cart3d: %dx%dx%d is not the coarsening of %dx%dx%d",
			c.Nx, c.Ny, c.Nz, s.Nx, s.Ny, s.Nz)
	}
	for i := 0; i < s.Nx; i++ {
		for j := 0; j < s.Ny; j++ {
			for k := 0; k < s.Nz; k++ {
				fo := s.Idx(i, j, k) * nvar
				co := c.Idx(i/2, j/2, k/2) * nvar
				copy(s.U[fo:fo+nvar], c.U[co:co+nvar])
			}
		}
	}
	return nil
}

// ResidualNorm returns the RMS of dU/dt over the mesh — the steady-state
// convergence measure.
func (s *Solver) ResidualNorm(team *simomp.Team) float64 {
	s.residual(s.U, team)
	sum := 0.0
	for _, r := range s.res {
		sum += r * r
	}
	return math.Sqrt(sum / float64(len(s.res)))
}

// SolveSteady runs RK2 steps until the residual norm falls below tol (or
// maxSteps is hit) and returns the step count and the final residual.
func (s *Solver) SolveSteady(tol float64, maxSteps int, team *simomp.Team) (steps int, residual float64) {
	residual = s.ResidualNorm(team)
	for steps = 0; steps < maxSteps && residual > tol; steps++ {
		s.Step(s.StableDt(0.4), team)
		residual = s.ResidualNorm(team)
	}
	return steps, residual
}

// FMGSolveSteady is the multigrid-accelerated solve: converge the
// coarsened problem (cheap: 1/8 the cells, 2x the time step), prolong,
// then finish on the fine mesh. It returns the fine steps used, the
// coarse steps used, and the final fine residual.
func (s *Solver) FMGSolveSteady(tol float64, maxSteps int, team *simomp.Team) (fineSteps, coarseSteps int, residual float64, err error) {
	c, err := s.Coarsen()
	if err != nil {
		return 0, 0, 0, err
	}
	// The coarse mesh's truncation error floors its residual; converge it
	// to a comparable-but-looser tolerance.
	coarseSteps, _ = c.SolveSteady(tol*4, maxSteps, team)
	if err := s.ProlongFrom(c); err != nil {
		return 0, 0, 0, err
	}
	fineSteps, residual = s.SolveSteady(tol, maxSteps, team)
	return fineSteps, coarseSteps, residual, nil
}
