// Package cart3d is a compact stand-in for NASA's Cart3D (Section 3.7.2):
// an inviscid, cell-centred, finite-volume Euler solver on a Cartesian
// mesh, advanced with Runge-Kutta time stepping, parallelized purely with
// OpenMP — the paper's pure-OpenMP production application (Figure 21).
//
// The solver is real: it integrates the 3D compressible Euler equations
// with a Rusanov (local Lax-Friedrichs) flux on a periodic Cartesian box,
// conserving mass, momentum and energy to machine precision. The paper's
// OneraM6 case (6 million cells, steady-state with multigrid-accelerated
// RK) is represented by the OneraM6 work profile; the multigrid
// acceleration enters as its effect on the iteration count, since the
// evaluation depends only on per-iteration cost.
package cart3d

import (
	"fmt"
	"math"

	"maia/internal/simomp"
)

// nvar is the conservative variable count: rho, rho*u, rho*v, rho*w, E.
const nvar = 5

// Gamma is the ratio of specific heats (air).
const Gamma = 1.4

// Solver holds the mesh and state.
type Solver struct {
	Nx, Ny, Nz int
	H          float64 // cell size
	U          []float64
	res        []float64
	u1         []float64
}

// NewSolver allocates an nx x ny x nz periodic box initialized to the
// free stream (rho=1, u=(0.5,0,0), p=1).
func NewSolver(nx, ny, nz int) (*Solver, error) {
	if nx < 3 || ny < 3 || nz < 3 {
		return nil, fmt.Errorf("cart3d: mesh %dx%dx%d too small", nx, ny, nz)
	}
	n := nx * ny * nz * nvar
	s := &Solver{Nx: nx, Ny: ny, Nz: nz, H: 1.0 / float64(nx),
		U: make([]float64, n), res: make([]float64, n), u1: make([]float64, n)}
	for c := 0; c < nx*ny*nz; c++ {
		s.setPrimitive(c, 1.0, 0.5, 0, 0, 1.0)
	}
	return s, nil
}

// Idx returns the flat cell index of (i,j,k) with periodic wrapping.
func (s *Solver) Idx(i, j, k int) int {
	i = (i + s.Nx) % s.Nx
	j = (j + s.Ny) % s.Ny
	k = (k + s.Nz) % s.Nz
	return (i*s.Ny+j)*s.Nz + k
}

// setPrimitive writes a cell from primitive variables.
func (s *Solver) setPrimitive(cell int, rho, u, v, w, p float64) {
	o := cell * nvar
	s.U[o] = rho
	s.U[o+1] = rho * u
	s.U[o+2] = rho * v
	s.U[o+3] = rho * w
	s.U[o+4] = p/(Gamma-1) + 0.5*rho*(u*u+v*v+w*w)
}

// Primitive returns (rho, u, v, w, p) of a cell.
func (s *Solver) Primitive(cell int) (rho, u, v, w, p float64) {
	o := cell * nvar
	rho = s.U[o]
	u = s.U[o+1] / rho
	v = s.U[o+2] / rho
	w = s.U[o+3] / rho
	p = (Gamma - 1) * (s.U[o+4] - 0.5*rho*(u*u+v*v+w*w))
	return
}

// AddPressurePulse superimposes a smooth density/pressure bump centred in
// the domain — the test disturbance the verification suite evolves.
func (s *Solver) AddPressurePulse(amplitude float64) {
	for i := 0; i < s.Nx; i++ {
		for j := 0; j < s.Ny; j++ {
			for k := 0; k < s.Nz; k++ {
				dx := float64(i)/float64(s.Nx) - 0.5
				dy := float64(j)/float64(s.Ny) - 0.5
				dz := float64(k)/float64(s.Nz) - 0.5
				bump := amplitude * math.Exp(-50*(dx*dx+dy*dy+dz*dz))
				c := s.Idx(i, j, k)
				rho, u, v, w, p := s.Primitive(c)
				s.setPrimitive(c, rho+bump, u, v, w, p+bump)
			}
		}
	}
}

// flux computes the Euler flux of state u5 along direction d (0,1,2)
// into f.
func flux(u5 []float64, d int, f *[nvar]float64) {
	rho := u5[0]
	vel := u5[1+d] / rho
	p := (Gamma - 1) * (u5[4] - 0.5*(u5[1]*u5[1]+u5[2]*u5[2]+u5[3]*u5[3])/rho)
	f[0] = u5[1+d]
	f[1] = u5[1] * vel
	f[2] = u5[2] * vel
	f[3] = u5[3] * vel
	f[1+d] += p
	f[4] = (u5[4] + p) * vel
}

// waveSpeed returns |v_d| + c for state u5.
func waveSpeed(u5 []float64, d int) float64 {
	rho := u5[0]
	vel := math.Abs(u5[1+d] / rho)
	p := (Gamma - 1) * (u5[4] - 0.5*(u5[1]*u5[1]+u5[2]*u5[2]+u5[3]*u5[3])/rho)
	return vel + math.Sqrt(Gamma*p/rho)
}

// residual fills s.res with -div(F) for state u, work-shared over
// i-planes. Each cell accumulates Rusanov fluxes over its six faces;
// writes are disjoint per cell.
func (s *Solver) residual(u []float64, team *simomp.Team) {
	body := func(i int) {
		var fl, fr [nvar]float64
		for j := 0; j < s.Ny; j++ {
			for k := 0; k < s.Nz; k++ {
				c := s.Idx(i, j, k)
				co := c * nvar
				for q := 0; q < nvar; q++ {
					s.res[co+q] = 0
				}
				for d := 0; d < 3; d++ {
					var ni, nj, nk, pi, pj, pk int
					switch d {
					case 0:
						ni, nj, nk = i+1, j, k
						pi, pj, pk = i-1, j, k
					case 1:
						ni, nj, nk = i, j+1, k
						pi, pj, pk = i, j-1, k
					default:
						ni, nj, nk = i, j, k+1
						pi, pj, pk = i, j, k-1
					}
					nb := s.Idx(ni, nj, nk) * nvar
					pb := s.Idx(pi, pj, pk) * nvar
					uc := u[co : co+nvar]
					un := u[nb : nb+nvar]
					up := u[pb : pb+nvar]
					// Face (c, n): Rusanov.
					flux(uc, d, &fl)
					flux(un, d, &fr)
					sm := math.Max(waveSpeed(uc, d), waveSpeed(un, d))
					for q := 0; q < nvar; q++ {
						fPlus := 0.5*(fl[q]+fr[q]) - 0.5*sm*(un[q]-uc[q])
						s.res[co+q] -= fPlus / s.H
					}
					// Face (p, c).
					flux(up, d, &fl)
					flux(uc, d, &fr)
					sm = math.Max(waveSpeed(up, d), waveSpeed(uc, d))
					for q := 0; q < nvar; q++ {
						fMinus := 0.5*(fl[q]+fr[q]) - 0.5*sm*(uc[q]-up[q])
						s.res[co+q] += fMinus / s.H
					}
				}
			}
		}
	}
	if team == nil {
		for i := 0; i < s.Nx; i++ {
			body(i)
		}
		return
	}
	team.ParallelFor(s.Nx, simomp.ForOpts{Sched: simomp.Static}, body)
}

// Step advances one RK2 (Heun) step with time step dt.
func (s *Solver) Step(dt float64, team *simomp.Team) {
	n := len(s.U)
	s.residual(s.U, team)
	for i := 0; i < n; i++ {
		s.u1[i] = s.U[i] + dt*s.res[i]
	}
	s.residual(s.u1, team)
	for i := 0; i < n; i++ {
		s.U[i] = 0.5*(s.U[i]+s.u1[i]) + 0.5*dt*s.res[i]
	}
}

// StableDt returns a CFL-limited time step.
func (s *Solver) StableDt(cfl float64) float64 {
	maxS := 0.0
	cells := s.Nx * s.Ny * s.Nz
	for c := 0; c < cells; c++ {
		for d := 0; d < 3; d++ {
			if v := waveSpeed(s.U[c*nvar:(c+1)*nvar], d); v > maxS {
				maxS = v
			}
		}
	}
	return cfl * s.H / maxS / 3
}

// Totals returns the domain sums of the five conserved quantities —
// exactly constant on the periodic box.
func (s *Solver) Totals() [nvar]float64 {
	var t [nvar]float64
	cells := s.Nx * s.Ny * s.Nz
	for c := 0; c < cells; c++ {
		for q := 0; q < nvar; q++ {
			t[q] += s.U[c*nvar+q]
		}
	}
	return t
}

// MinDensityPressure returns the domain minima of density and pressure
// (positivity check).
func (s *Solver) MinDensityPressure() (rho, p float64) {
	rho, p = math.Inf(1), math.Inf(1)
	cells := s.Nx * s.Ny * s.Nz
	for c := 0; c < cells; c++ {
		r, _, _, _, pp := s.Primitive(c)
		if r < rho {
			rho = r
		}
		if pp < p {
			p = pp
		}
	}
	return
}
