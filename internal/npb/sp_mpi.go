package npb

import (
	"fmt"
	"math"

	"maia/internal/simmpi"
)

// Distributed SP: the ADI scheme with the i-direction scalar
// pentadiagonal solves pipelined through slab ranks. The banded forward
// elimination carries a two-row state (the eliminated diagonal, first
// superdiagonal and right-hand side of the previous two rows); back
// substitution carries the two leading solution values. With this, all
// eight NPB kernels have genuine distributed-memory implementations.

// spLineState is the forward-elimination carry of one line: rows i-2 and
// i-1 of (dw, f1w, r).
type spLineState struct {
	dw2, f1w2, r2 float64 // row i-2
	dw1, f1w1, r1 float64 // row i-1
}

// RunSPMPI runs the SP benchmark with `ranks` slab ranks. The norm
// history matches the serial RunSP exactly.
func RunSPMPI(n, steps, ranks int) ([]float64, error) {
	if n < 5 {
		return nil, fmt.Errorf("npb: SP grid %d too small", n)
	}
	if steps < 1 || ranks < 1 || ranks > n/2 {
		return nil, fmt.Errorf("npb: SP needs steps >= 1 and 1..%d ranks", n/2)
	}
	w, err := simmpi.NewWorld(simmpi.Config{Ranks: simmpi.HostPlacement(ranks, 1)})
	if err != nil {
		return nil, err
	}
	res := make([]float64, steps)
	err = w.Run(func(r *simmpi.Rank) {
		st, err := NewSP(n)
		if err != nil {
			panic(err)
		}
		lo, hi := blockRange(n, ranks, r.ID())

		for step := 0; step < steps; step++ {
			for i := lo; i < hi; i++ {
				base := st.U.Idx(i, 0, 0)
				for o := base; o < base+n*n*ncomp; o++ {
					st.U.V[o] += st.tau * st.F.V[o]
				}
			}
			spSolveILines(r, st, lo, hi, ranks)
			spSolveLocal(st, lo, hi, 1)
			spSolveLocal(st, lo, hi, 2)

			sum := 0.0
			for o := st.U.Idx(lo, 0, 0); o < st.U.Idx(hi, 0, 0); o++ {
				sum += st.U.V[o] * st.U.V[o]
			}
			tot := r.AllreduceSum(sum)
			if r.ID() == 0 {
				res[step] = math.Sqrt(tot / float64(n*n*n*ncomp))
			}
		}
	})
	return res, err
}

// spSolveLocal runs the dim-1/dim-2 pentadiagonal solves on owned planes.
func spSolveLocal(st *SPState, lo, hi, dim int) {
	n := st.N
	buf := make([]float64, n)
	scratch := newPentaScratch(n)
	for i := lo; i < hi; i++ {
		for q := 0; q < n; q++ {
			for comp := 0; comp < ncomp; comp++ {
				for c := 0; c < n; c++ {
					var off int
					if dim == 1 {
						off = st.U.Idx(i, c, q)
					} else {
						off = st.U.Idx(i, q, c)
					}
					buf[c] = st.U.V[off+comp]
				}
				pentaSolve(st.e2, st.e1, st.d, st.f1, st.f2, buf, scratch)
				for c := 0; c < n; c++ {
					var off int
					if dim == 1 {
						off = st.U.Idx(i, c, q)
					} else {
						off = st.U.Idx(i, q, c)
					}
					st.U.V[off+comp] = buf[c]
				}
			}
		}
	}
}

// spSolveILines runs the i-direction pentadiagonal solves as a pipeline.
// It reproduces pentaSolve's arithmetic row for row.
func spSolveILines(r *simmpi.Rank, st *SPState, lo, hi, ranks int) {
	n := st.N
	lines := n * n * ncomp // one system per (j,k,component)
	mine := hi - lo
	const stLen = 6 // spLineState floats
	e2, e1, d, f1, f2 := st.e2, st.e1, st.d, st.f1, st.f2

	// Stored eliminated coefficients for my rows, needed again in back
	// substitution: dw and f1w per (line, plane).
	dw := make([]float64, lines*mine)
	f1w := make([]float64, lines*mine)

	addr := func(line, i int) int {
		// line = ((j*n)+k)*ncomp + comp
		comp := line % ncomp
		k := (line / ncomp) % n
		j := line / (ncomp * n)
		return st.U.Idx(i, j, k) + comp
	}

	// Forward elimination.
	var incoming []float64
	if r.ID() > 0 {
		incoming = bytesToF64Buf(r.Recv(r.ID()-1, 40))
	}
	outgoing := make([]float64, lines*stLen)
	for line := 0; line < lines; line++ {
		var s spLineState
		if r.ID() > 0 {
			o := line * stLen
			s = spLineState{incoming[o], incoming[o+1], incoming[o+2],
				incoming[o+3], incoming[o+4], incoming[o+5]}
		}
		for i := lo; i < hi; i++ {
			ui := addr(line, i)
			rI := st.U.V[ui]
			dwI, f1wI := d, f1
			// e2 elimination against row i-2 (absent for global rows 0,1).
			if i >= 2 {
				m := e2 / s.dw2
				// This modifies the row's e1 coefficient before its own
				// elimination.
				e1I := e1 - m*s.f1w2
				dwI -= m * f2
				rI -= m * s.r2
				// e1 elimination against row i-1.
				m1 := e1I / s.dw1
				dwI -= m1 * s.f1w1
				f1wI -= m1 * f2
				rI -= m1 * s.r1
			} else if i == 1 {
				m1 := e1 / s.dw1
				dwI -= m1 * s.f1w1
				f1wI -= m1 * f2
				rI -= m1 * s.r1
			}
			st.U.V[ui] = rI
			idx := line*mine + (i - lo)
			dw[idx], f1w[idx] = dwI, f1wI
			// Shift the carry.
			s.dw2, s.f1w2, s.r2 = s.dw1, s.f1w1, s.r1
			s.dw1, s.f1w1, s.r1 = dwI, f1wI, rI
		}
		o := line * stLen
		outgoing[o], outgoing[o+1], outgoing[o+2] = s.dw2, s.f1w2, s.r2
		outgoing[o+3], outgoing[o+4], outgoing[o+5] = s.dw1, s.f1w1, s.r1
	}
	if r.ID() < ranks-1 {
		r.Send(r.ID()+1, 40, f64ToBytesBuf(outgoing))
	}

	// Back substitution: u_i = (r_i - f1w_i*u_{i+1} - f2*u_{i+2}) / dw_i.
	var uNext []float64
	if r.ID() < ranks-1 {
		uNext = bytesToF64Buf(r.Recv(r.ID()+1, 41))
	}
	uOut := make([]float64, lines*2)
	for line := 0; line < lines; line++ {
		var u1, u2 float64 // u_{i+1}, u_{i+2}
		have := 0
		if r.ID() < ranks-1 {
			u1, u2 = uNext[line*2], uNext[line*2+1]
			have = 2
		}
		for i := hi - 1; i >= lo; i-- {
			ui := addr(line, i)
			idx := line*mine + (i - lo)
			v := st.U.V[ui]
			if have >= 1 {
				v -= f1w[idx] * u1
			}
			if have >= 2 {
				v -= f2 * u2
			}
			v /= dw[idx]
			st.U.V[ui] = v
			u2 = u1
			u1 = v
			if have < 2 {
				have++
			}
		}
		uOut[line*2], uOut[line*2+1] = u1, u2
	}
	if r.ID() > 0 {
		r.Send(r.ID()-1, 41, f64ToBytesBuf(uOut))
	}
}
