package npb

import (
	"math"
	"testing"
	"testing/quick"

	"maia/internal/machine"
	"maia/internal/simomp"
	"maia/internal/vclock"
)

func testTeam() *simomp.Team {
	part := machine.HostCoresPartition(machine.NewNode(), 8, 1)
	return simomp.NewTeam(simomp.New(part))
}

// --- RANDLC ---

func TestRandlcRange(t *testing.T) {
	x := DefaultSeed
	for i := 0; i < 10000; i++ {
		v := Randlc(&x, MultA)
		if v <= 0 || v >= 1 {
			t.Fatalf("Randlc out of (0,1): %v", v)
		}
	}
}

// RandSeek(k) must equal k sequential steps, for arbitrary k.
func TestRandSeekMatchesSequential(t *testing.T) {
	f := func(kRaw uint16) bool {
		k := int64(kRaw % 5000)
		x := DefaultSeed
		for i := int64(0); i < k; i++ {
			Randlc(&x, MultA)
		}
		return RandSeek(DefaultSeed, k) == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestVRandlc(t *testing.T) {
	x1, x2 := DefaultSeed, DefaultSeed
	buf := make([]float64, 100)
	VRandlc(&x1, MultA, buf)
	for i := range buf {
		if buf[i] != Randlc(&x2, MultA) {
			t.Fatalf("VRandlc diverges at %d", i)
		}
	}
}

// --- EP ---

// The official NPB class S verification values: EP is reproduced exactly.
func TestEPClassSReference(t *testing.T) {
	if testing.Short() {
		t.Skip("class S EP is ~1s")
	}
	r, err := RunEPSerial(1 << 24)
	if err != nil {
		t.Fatal(err)
	}
	const wantSx, wantSy = -3.247834652034740e3, -6.958407078382297e3
	if math.Abs(r.Sx-wantSx) > 1e-8 || math.Abs(r.Sy-wantSy) > 1e-8 {
		t.Errorf("EP.S sums = (%v, %v), want (%v, %v)", r.Sx, r.Sy, wantSx, wantSy)
	}
	if r.Accepted != 13176389 {
		t.Errorf("EP.S accepted = %d, want 13176389", r.Accepted)
	}
	if r.Gaussians() != r.Accepted {
		t.Errorf("annulus counts (%d) != accepted (%d)", r.Gaussians(), r.Accepted)
	}
}

// The parallel run is bit-identical to the serial run.
func TestEPParallelMatchesSerial(t *testing.T) {
	const pairs = 1 << 20
	ser, err := RunEPSerial(pairs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunEP(pairs, testTeam())
	if err != nil {
		t.Fatal(err)
	}
	if ser != par {
		t.Fatalf("parallel EP differs: %+v vs %+v", par, ser)
	}
}

func TestEPValidation(t *testing.T) {
	if _, err := RunEPSerial(100); err == nil {
		t.Error("non-multiple pair count accepted")
	}
	if _, err := RunEP(0, testTeam()); err == nil {
		t.Error("zero pairs accepted")
	}
}

// --- IS ---

func TestISSortsAndPermutes(t *testing.T) {
	keys := ISKeys(1<<14, 1<<9)
	res, err := RunIS(keys, 1<<9, 10, testTeam())
	if err != nil {
		t.Fatal(err)
	}
	if err := ISVerify(keys, 1<<9, 10, res); err != nil {
		t.Fatal(err)
	}
}

func TestISKeyDistribution(t *testing.T) {
	// Sum of four uniforms: mean maxKey/2, concentrated middle.
	keys := ISKeys(1<<15, 1<<10)
	var mean float64
	for _, k := range keys {
		if k < 0 || int64(k) >= 1<<10 {
			t.Fatalf("key %d out of range", k)
		}
		mean += float64(k)
	}
	mean /= float64(len(keys))
	if mean < 450 || mean > 570 {
		t.Errorf("key mean = %v, want ~512", mean)
	}
}

func TestISValidation(t *testing.T) {
	if _, err := RunIS(nil, 16, 1, testTeam()); err == nil {
		t.Error("empty keys accepted")
	}
	if _, err := RunIS([]int32{1}, 0, 1, testTeam()); err == nil {
		t.Error("zero maxKey accepted")
	}
}

// Property: for random inputs, IS output is sorted and a permutation.
func TestISProperty(t *testing.T) {
	team := testTeam()
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%2000) + 10
		rng := vclock.NewRNG(seed)
		keys := make([]int32, n)
		for i := range keys {
			keys[i] = int32(rng.Intn(64))
		}
		res, err := RunIS(keys, 64, 3, team)
		if err != nil {
			return false
		}
		return ISVerify(keys, 64, 3, res) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// --- CG ---

func TestCGMatrixIsSymmetricDominant(t *testing.T) {
	m := MakeCGMatrix(200, 5)
	// Build a dense mirror to check symmetry.
	dense := make([][]float64, m.N)
	for i := range dense {
		dense[i] = make([]float64, m.N)
	}
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			dense[i][m.Col[k]] += m.Val[k]
		}
	}
	for i := 0; i < m.N; i++ {
		offSum := 0.0
		for j := 0; j < m.N; j++ {
			if math.Abs(dense[i][j]-dense[j][i]) > 1e-12 {
				t.Fatalf("matrix not symmetric at (%d,%d)", i, j)
			}
			if i != j {
				offSum += math.Abs(dense[i][j])
			}
		}
		if dense[i][i] <= offSum {
			t.Fatalf("row %d not strictly diagonally dominant", i)
		}
	}
}

func TestCGSolvesSystem(t *testing.T) {
	m := MakeCGMatrix(500, 7)
	x := make([]float64, m.N)
	z := make([]float64, m.N)
	for i := range x {
		x[i] = 1
	}
	res := cgSolve(m, x, z, 25, nil)
	// Residual must have dropped by orders of magnitude vs ||x||.
	if res > 1e-6*math.Sqrt(float64(m.N)) {
		t.Fatalf("CG residual %v too large", res)
	}
	// Check A z ~= x directly.
	y := make([]float64, m.N)
	SpMV(m, z, y, nil)
	for i := range y {
		if math.Abs(y[i]-x[i]) > 1e-5 {
			t.Fatalf("A z != x at %d: %v", i, y[i])
		}
	}
}

func TestCGParallelMatchesSerial(t *testing.T) {
	m := MakeCGMatrix(800, 6)
	ser, err := RunCG(m, 10, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCG(m, 10, 3, testTeam())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ser.Zeta-par.Zeta) > 1e-9*math.Abs(ser.Zeta) {
		t.Fatalf("zeta differs: %v vs %v", ser.Zeta, par.Zeta)
	}
}

func TestCGZetaStabilizes(t *testing.T) {
	// Power iteration converges geometrically: late zeta changes are
	// far smaller than early ones and settle below 1%.
	m := MakeCGMatrix(400, 6)
	r, err := RunCG(m, 10, 15, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := r.ZetaHistory
	early := math.Abs(h[2] - h[1])
	late := math.Abs(h[len(h)-1] - h[len(h)-2])
	if late > early/2 {
		t.Fatalf("zeta deltas not shrinking: early %v, late %v (%v)", early, late, h)
	}
	if late > 1e-2*math.Abs(h[len(h)-1]) {
		t.Fatalf("zeta still moving by %v at iteration 15", late)
	}
	if _, err := RunCG(m, 10, 0, nil); err == nil {
		t.Error("zero iterations accepted")
	}
}

// --- MG ---

func TestMGResidualDecreases(t *testing.T) {
	res, err := RunMG(32, 4, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.ResidualNorms); i++ {
		if res.ResidualNorms[i] >= res.ResidualNorms[i-1] {
			t.Fatalf("residual did not decrease at cycle %d: %v", i, res.ResidualNorms)
		}
	}
	if res.ResidualNorms[len(res.ResidualNorms)-1] > res.ResidualNorms[0]/4 {
		t.Fatalf("V-cycles converge too slowly: %v", res.ResidualNorms)
	}
}

func TestMGParallelAndCollapseMatchSerial(t *testing.T) {
	ser, err := RunMG(16, 3, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	team := testTeam()
	for _, collapse := range []bool{false, true} {
		par, err := RunMG(16, 3, team, collapse)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ser.ResidualNorms {
			if math.Abs(par.ResidualNorms[i]-ser.ResidualNorms[i]) > 1e-12 {
				t.Fatalf("collapse=%v: residual %d differs: %v vs %v",
					collapse, i, par.ResidualNorms[i], ser.ResidualNorms[i])
			}
		}
	}
}

func TestMGValidation(t *testing.T) {
	if _, err := RunMG(17, 1, nil, false); err == nil {
		t.Error("non-power-of-two grid accepted")
	}
	if _, err := RunMG(2, 1, nil, false); err == nil {
		t.Error("tiny grid accepted")
	}
	if _, err := RunMG(16, 0, nil, false); err == nil {
		t.Error("zero cycles accepted")
	}
}

// --- FT ---

func TestFFT1DKnownTransform(t *testing.T) {
	// FFT of a constant is a delta at k=0.
	a := make([]complex128, 8)
	for i := range a {
		a[i] = 1
	}
	fft1D(a, false)
	if math.Abs(real(a[0])-8) > 1e-12 || math.Abs(imag(a[0])) > 1e-12 {
		t.Fatalf("DC bin = %v, want 8", a[0])
	}
	for i := 1; i < 8; i++ {
		if math.Hypot(real(a[i]), imag(a[i])) > 1e-12 {
			t.Fatalf("bin %d = %v, want 0", i, a[i])
		}
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := vclock.NewRNG(seed)
		g := NewFTGrid(8, 4, 16)
		for i := range g.V {
			g.V[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		}
		return FTRoundTripError(g, nil) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFTParallelMatchesSerial(t *testing.T) {
	ser, err := RunFT(16, 16, 8, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFT(16, 16, 8, 3, testTeam())
	if err != nil {
		t.Fatal(err)
	}
	for i := range ser.Checksums {
		d := ser.Checksums[i] - par.Checksums[i]
		if math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("checksum %d differs: %v vs %v", i, ser.Checksums[i], par.Checksums[i])
		}
	}
}

// The diffusion evolution damps every nonzero mode: physical-space
// energy decreases monotonically across steps.
func TestFTEvolutionDamps(t *testing.T) {
	res, err := RunFT(16, 16, 16, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for i, e := range res.Energies {
		if e > prev*(1+1e-12) {
			t.Fatalf("energy grew at step %d: %v", i, res.Energies)
		}
		if e <= 0 {
			t.Fatalf("energy %d non-positive: %v", i, e)
		}
		prev = e
	}
}

func TestFTValidation(t *testing.T) {
	if _, err := RunFT(12, 16, 16, 1, nil); err == nil {
		t.Error("non-power-of-two dim accepted")
	}
	if _, err := RunFT(16, 16, 16, 0, nil); err == nil {
		t.Error("zero steps accepted")
	}
}

// --- linear algebra helpers ---

func TestMat5Invert(t *testing.T) {
	m := ident5(3).add(couplingMatrix())
	inv := m.invert()
	prod := m.mul(inv)
	id := ident5(1)
	for i := range prod {
		if math.Abs(prod[i]-id[i]) > 1e-12 {
			t.Fatalf("M * M^-1 != I at %d: %v", i, prod[i])
		}
	}
}

func TestMat5InvertSingularPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("singular invert did not panic")
		}
	}()
	var zero mat5
	zero.invert()
}

// blockTriSolve: multiply the solution back through the operator.
func TestBlockTriSolveProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 3
		rng := vclock.NewRNG(seed)
		op := newBTOperator(0.4)
		rhs := make([]float64, n*ncomp)
		for i := range rhs {
			rhs[i] = rng.Float64() - 0.5
		}
		orig := append([]float64(nil), rhs...)
		w := make([]mat5, n)
		blockTriSolve(op.a, op.b, op.c, rhs, w)
		// Verify A u = orig.
		var tmp [ncomp]float64
		for i := 0; i < n; i++ {
			var acc [ncomp]float64
			op.b.matvec(rhs[i*ncomp:(i+1)*ncomp], tmp[:])
			copy(acc[:], tmp[:])
			if i > 0 {
				op.a.matvec(rhs[(i-1)*ncomp:i*ncomp], tmp[:])
				for c := 0; c < ncomp; c++ {
					acc[c] += tmp[c]
				}
			}
			if i < n-1 {
				op.c.matvec(rhs[(i+1)*ncomp:(i+2)*ncomp], tmp[:])
				for c := 0; c < ncomp; c++ {
					acc[c] += tmp[c]
				}
			}
			for c := 0; c < ncomp; c++ {
				if math.Abs(acc[c]-orig[i*ncomp+c]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// pentaSolve: same check against the pentadiagonal operator.
func TestPentaSolveProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 5
		rng := vclock.NewRNG(seed)
		e2, e1, d, f1, f2 := 0.1, -0.8, 3.0, -0.7, 0.12
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.Float64() - 0.5
		}
		orig := append([]float64(nil), rhs...)
		pentaSolve(e2, e1, d, f1, f2, rhs, newPentaScratch(n))
		at := func(i int) float64 {
			if i < 0 || i >= n {
				return 0
			}
			return rhs[i]
		}
		for i := 0; i < n; i++ {
			got := e2*at(i-2) + e1*at(i-1) + d*at(i) + f1*at(i+1) + f2*at(i+2)
			if math.Abs(got-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// --- BT / SP / LU ---

func TestBTStableAndConverging(t *testing.T) {
	norms, err := RunBT(12, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	// ADI is unconditionally stable: the norm stays bounded, and the
	// late-time change per step shrinks as the field approaches steady
	// state.
	early := math.Abs(norms[1] - norms[0])
	late := math.Abs(norms[len(norms)-1] - norms[len(norms)-2])
	if late > early {
		t.Fatalf("BT not settling: early delta %v, late delta %v (%v)", early, late, norms)
	}
}

func TestBTParallelMatchesSerial(t *testing.T) {
	ser, err := RunBT(10, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunBT(10, 3, testTeam())
	if err != nil {
		t.Fatal(err)
	}
	for i := range ser {
		if math.Abs(ser[i]-par[i]) > 1e-12 {
			t.Fatalf("BT parallel differs at step %d: %v vs %v", i, par[i], ser[i])
		}
	}
}

func TestSPStableAndConverging(t *testing.T) {
	norms, err := RunSP(12, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	early := math.Abs(norms[1] - norms[0])
	late := math.Abs(norms[len(norms)-1] - norms[len(norms)-2])
	if late > early {
		t.Fatalf("SP not settling: %v", norms)
	}
}

func TestSPParallelMatchesSerial(t *testing.T) {
	ser, err := RunSP(10, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSP(10, 3, testTeam())
	if err != nil {
		t.Fatal(err)
	}
	for i := range ser {
		if math.Abs(ser[i]-par[i]) > 1e-12 {
			t.Fatalf("SP parallel differs at step %d", i)
		}
	}
}

func TestLUResidualDecreases(t *testing.T) {
	res, err := RunLU(10, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i] >= res[i-1] {
			t.Fatalf("LU residual did not decrease at %d: %v", i, res)
		}
	}
	if res[len(res)-1] > res[0]/10 {
		t.Fatalf("LU converging too slowly: %v", res)
	}
}

func TestLUWavefrontMatchesSerial(t *testing.T) {
	ser, err := RunLU(8, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunLU(8, 3, testTeam())
	if err != nil {
		t.Fatal(err)
	}
	for i := range ser {
		if math.Abs(ser[i]-par[i]) > 1e-12 {
			t.Fatalf("LU wavefront parallel differs at %d: %v vs %v", i, par[i], ser[i])
		}
	}
}

func TestHyperplaneCellsCover(t *testing.T) {
	n := 5
	seen := map[[3]int]bool{}
	for p := 0; p <= 3*(n-1); p++ {
		for _, c := range hyperplaneCells(n, p) {
			if c[0]+c[1]+c[2] != p {
				t.Fatalf("cell %v not on plane %d", c, p)
			}
			if seen[c] {
				t.Fatalf("cell %v repeated", c)
			}
			seen[c] = true
		}
	}
	if len(seen) != n*n*n {
		t.Fatalf("hyperplanes cover %d cells, want %d", len(seen), n*n*n)
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := NewBT(2); err == nil {
		t.Error("tiny BT grid accepted")
	}
	if _, err := NewSP(3); err == nil {
		t.Error("tiny SP grid accepted")
	}
	if _, err := NewLU(1); err == nil {
		t.Error("tiny LU grid accepted")
	}
}

func TestField5Helpers(t *testing.T) {
	f := NewField5(4)
	f.FillRandom()
	g := f.Clone()
	if f.MaxDiff(g) != 0 {
		t.Error("clone differs")
	}
	g.V[7] += 0.5
	if math.Abs(f.MaxDiff(g)-0.5) > 1e-15 {
		t.Errorf("MaxDiff = %v", f.MaxDiff(g))
	}
	if f.L2() <= 0 {
		t.Error("L2 of random field must be positive")
	}
}

// RunIS accepts a nil team and counts serially.
func TestISSerialTeam(t *testing.T) {
	keys := ISKeys(1<<10, 1<<6)
	ser, err := RunIS(keys, 1<<6, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunIS(keys, 1<<6, 3, testTeam())
	if err != nil {
		t.Fatal(err)
	}
	for i := range ser.Sorted {
		if ser.Sorted[i] != par.Sorted[i] {
			t.Fatalf("serial vs team sort differs at %d", i)
		}
	}
}
