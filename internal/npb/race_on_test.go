//go:build race

package npb

// raceEnabled reports whether the race detector is active; the heaviest
// allocation tests (FT class C materializes gigabytes of buffers) are
// skipped under it, since the detector's shadow memory multiplies their
// footprint past small machines.
const raceEnabled = true
