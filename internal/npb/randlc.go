package npb

// NPB's portable linear congruential generator: x_{k+1} = a*x_k mod 2^46
// with a = 5^13. The modular product is computed exactly in float64
// pieces, as in the reference Fortran RANDLC, so the Go kernels generate
// the same pseudo-random sequences as the original suite.

const (
	// r23..t46 are the RANDLC scaling constants.
	r23 = 1.0 / 8388608.0 // 2^-23
	r46 = r23 * r23       // 2^-46
	t23 = 8388608.0       // 2^23
	t46 = t23 * t23       // 2^46
	// DefaultSeed is the suite's standard starting seed.
	DefaultSeed = 314159265.0
	// MultA is the standard multiplier a = 5^13.
	MultA = 1220703125.0
)

// Randlc advances *x one LCG step and returns a uniform deviate in
// (0, 1). It is the exact NPB algorithm: the 46-bit product a*x is formed
// from 23-bit halves.
func Randlc(x *float64, a float64) float64 {
	t1 := r23 * a
	a1 := float64(int64(t1))
	a2 := a - t23*a1

	t1 = r23 * *x
	x1 := float64(int64(t1))
	x2 := *x - t23*x1

	t1 = a1*x2 + a2*x1
	t2 := float64(int64(r23 * t1))
	z := t1 - t23*t2
	t3 := t23*z + a2*x2
	t4 := float64(int64(r46 * t3))
	*x = t3 - t46*t4
	return r46 * *x
}

// RandSeek returns the seed x_k reached after k steps from seed, in
// O(log k) time — the trick NPB's EP uses to give each worker an
// independent, reproducible block of the stream.
func RandSeek(seed float64, k int64) float64 {
	x := seed
	a := MultA
	for k > 0 {
		if k&1 == 1 {
			advance(&x, a)
		}
		a = squareMult(a)
		k >>= 1
	}
	return x
}

// advance does x = a*x mod 2^46 in place.
func advance(x *float64, a float64) { Randlc(x, a) }

// squareMult returns a*a mod 2^46.
func squareMult(a float64) float64 {
	x := a
	Randlc(&x, a)
	return x
}

// VRandlc fills out with n uniform deviates, advancing *x.
func VRandlc(x *float64, a float64, out []float64) {
	for i := range out {
		out[i] = Randlc(x, a)
	}
}
