package npb

import (
	"fmt"

	"maia/internal/simomp"
)

// BT — the block-tridiagonal pseudo-application: an ADI scheme for a
// coupled 5-component diffusion-advection model problem. Each time step
// factors the implicit operator into three directional solves, and each
// directional solve is an independent 5x5 block-tridiagonal system per
// grid line — the flop-dense, cache-blocked, fully vectorizable pattern
// that makes BT the best-performing NPB kernel on the Phi (Figure 19).

// btOperator holds the constant line coefficients for one direction.
type btOperator struct {
	a, b, c mat5 // sub-, main-, super-diagonal blocks
}

// newBTOperator builds (I + tau*A_dim) for the model operator with
// diffusion number lambda and the fixed coupling matrix.
func newBTOperator(lambda float64) btOperator {
	m := couplingMatrix()
	return btOperator{
		a: ident5(-lambda).add(m.scale(-0.1 * lambda)),
		b: ident5(1 + 2*lambda).add(m.scale(0.05 * lambda)),
		c: ident5(-lambda).add(m.scale(0.1 * lambda)),
	}
}

// BTState is one BT run's mutable state.
type BTState struct {
	N      int
	U      *Field5
	F      *Field5 // steady forcing
	op     btOperator
	lambda float64
	tau    float64
}

// NewBT initializes the benchmark state for an n³ grid.
func NewBT(n int) (*BTState, error) {
	if n < 3 {
		return nil, fmt.Errorf("npb: BT grid %d too small", n)
	}
	st := &BTState{N: n, U: NewField5(n), F: NewField5(n)}
	st.U.FillRandom()
	st.F.FillRandom()
	st.tau = 0.5
	h := 1.0 / float64(n+1)
	st.lambda = st.tau / (h * h) * 0.01
	st.op = newBTOperator(st.lambda)
	return st, nil
}

// lineView gathers a grid line along dim into buf (n cells x 5 comps)
// and scatterLine writes it back.
func (st *BTState) lineView(dim, p, q int, buf []float64) {
	n := st.N
	for c := 0; c < n; c++ {
		var off int
		switch dim {
		case 0:
			off = st.U.Idx(c, p, q)
		case 1:
			off = st.U.Idx(p, c, q)
		default:
			off = st.U.Idx(p, q, c)
		}
		copy(buf[c*ncomp:(c+1)*ncomp], st.U.V[off:off+ncomp])
	}
}

func (st *BTState) scatterLine(dim, p, q int, buf []float64) {
	n := st.N
	for c := 0; c < n; c++ {
		var off int
		switch dim {
		case 0:
			off = st.U.Idx(c, p, q)
		case 1:
			off = st.U.Idx(p, c, q)
		default:
			off = st.U.Idx(p, q, c)
		}
		copy(st.U.V[off:off+ncomp], buf[c*ncomp:(c+1)*ncomp])
	}
}

// Step advances one ADI time step: add forcing, then solve the three
// directional block-tridiagonal factors. Lines are independent, so each
// directional pass is work-shared across the team.
func (st *BTState) Step(team *simomp.Team) {
	n := st.N
	// Explicit forcing contribution.
	for i := range st.U.V {
		st.U.V[i] += st.tau * st.F.V[i]
	}
	for dim := 0; dim < 3; dim++ {
		solveLine := func(line int) {
			p, q := line/n, line%n
			buf := make([]float64, n*ncomp)
			w := make([]mat5, n)
			st.lineView(dim, p, q, buf)
			blockTriSolve(st.op.a, st.op.b, st.op.c, buf, w)
			st.scatterLine(dim, p, q, buf)
		}
		if team == nil {
			for line := 0; line < n*n; line++ {
				solveLine(line)
			}
		} else {
			team.ParallelFor(n*n, simomp.ForOpts{Sched: simomp.Static}, solveLine)
		}
	}
}

// RunBT runs `steps` time steps and returns the RMS norms after each
// step. The ADI scheme is unconditionally stable, so norms stay bounded
// and the field approaches the forcing-balanced steady state.
func RunBT(n, steps int, team *simomp.Team) ([]float64, error) {
	st, err := NewBT(n)
	if err != nil {
		return nil, err
	}
	norms := make([]float64, 0, steps)
	for s := 0; s < steps; s++ {
		st.Step(team)
		norms = append(norms, st.U.L2())
	}
	return norms, nil
}
