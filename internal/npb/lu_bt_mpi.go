package npb

import (
	"fmt"
	"math"

	"maia/internal/simmpi"
)

// Distributed LU and BT: the two pseudo-applications whose parallel
// structure the paper's analysis leans on.
//
//   - LU-MPI: SSOR with the grid slab-decomposed along i and the sweeps
//     PIPELINED rank to rank — the production code's wavefront. Updates
//     read new values of lower neighbours and old values of upper ones,
//     so any topological order (serial hyperplanes, distributed
//     plane-pipeline) produces bit-identical results.
//   - BT-MPI: the ADI scheme with j- and k-line solves local to each
//     slab and the i-line block-tridiagonal solves PIPELINED through the
//     ranks (distributed Thomas: forward elimination flows right,
//     back-substitution flows left).
//   - EP-MPI: batches split across ranks, sums combined with Allreduce.

// RunLUMPI runs the LU benchmark with `ranks` slab ranks. The residual
// history matches the serial RunLU exactly.
func RunLUMPI(n, steps, ranks int) ([]float64, error) {
	if n < 3 {
		return nil, fmt.Errorf("npb: LU grid %d too small", n)
	}
	if steps < 1 || ranks < 1 || ranks > n {
		return nil, fmt.Errorf("npb: LU needs steps >= 1 and 1..%d ranks", n)
	}
	w, err := simmpi.NewWorld(simmpi.Config{Ranks: simmpi.HostPlacement(ranks, 1)})
	if err != nil {
		return nil, err
	}
	res := make([]float64, steps)
	err = w.Run(func(r *simmpi.Rank) {
		st, err := NewLU(n)
		if err != nil {
			panic(err)
		}
		lo, hi := blockRange(n, ranks, r.ID())
		planeVals := n * n * ncomp

		// ghostPlane extracts plane i of U.
		plane := func(i int) []float64 {
			return st.U.V[st.U.Idx(i, 0, 0) : st.U.Idx(i, 0, 0)+planeVals]
		}
		relaxPlane := func(i int) {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					luRelaxCell(st, i, j, k)
				}
			}
		}
		for step := 0; step < steps; step++ {
			// Forward sweep: wait for the updated plane lo-1, relax my
			// planes in order, pass plane hi right.
			if r.ID() > 0 {
				copy(plane(lo-1), bytesToF64Buf(r.Recv(r.ID()-1, 20)))
			}
			for i := lo; i < hi; i++ {
				relaxPlane(i)
			}
			if r.ID() < ranks-1 {
				r.Send(r.ID()+1, 20, f64ToBytesBuf(plane(hi-1)))
			}
			// Backward sweep: mirror image.
			if r.ID() < ranks-1 {
				copy(plane(hi), bytesToF64Buf(r.Recv(r.ID()+1, 21)))
			}
			for i := hi - 1; i >= lo; i-- {
				for j := n - 1; j >= 0; j-- {
					for k := n - 1; k >= 0; k-- {
						luRelaxCell(st, i, j, k)
					}
				}
			}
			if r.ID() > 0 {
				r.Send(r.ID()-1, 21, f64ToBytesBuf(plane(lo)))
			}
			// Residual over owned planes; neighbours' boundary planes
			// are needed once more for the stencil.
			if r.ID() > 0 {
				r.Send(r.ID()-1, 22, f64ToBytesBuf(plane(lo)))
			}
			if r.ID() < ranks-1 {
				copy(plane(hi), bytesToF64Buf(r.Recv(r.ID()+1, 22)))
				r.Send(r.ID()+1, 23, f64ToBytesBuf(plane(hi-1)))
			}
			if r.ID() > 0 {
				copy(plane(lo-1), bytesToF64Buf(r.Recv(r.ID()-1, 23)))
			}
			sum := luResidualPlanes(st, lo, hi)
			tot := r.AllreduceSum(sum)
			if r.ID() == 0 {
				res[step] = math.Sqrt(tot / float64(n*n*n*ncomp))
			}
		}
	})
	return res, err
}

// luRelaxCell applies one SSOR update to cell (i,j,k) — the same
// arithmetic as the serial sweep's body.
func luRelaxCell(st *LUState, i, j, k int) {
	n := st.N
	var rhs, tmp [ncomp]float64
	off := st.U.Idx(i, j, k)
	copy(rhs[:], st.F.V[off:off+ncomp])
	for _, d := range [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
		ni, nj, nk := i+d[0], j+d[1], k+d[2]
		if ni < 0 || nj < 0 || nk < 0 || ni >= n || nj >= n || nk >= n {
			continue
		}
		noff := st.U.Idx(ni, nj, nk)
		st.off.matvec(st.U.V[noff:noff+ncomp], tmp[:])
		for c := 0; c < ncomp; c++ {
			rhs[c] -= tmp[c]
		}
	}
	st.diagInv.matvec(rhs[:], tmp[:])
	for c := 0; c < ncomp; c++ {
		st.U.V[off+c] += st.omega * (tmp[c] - st.U.V[off+c])
	}
}

// luResidualPlanes sums the squared residual over planes [lo, hi).
func luResidualPlanes(st *LUState, lo, hi int) float64 {
	n := st.N
	var tmp [ncomp]float64
	s := 0.0
	for i := lo; i < hi; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				off := st.U.Idx(i, j, k)
				var rr [ncomp]float64
				st.diag.matvec(st.U.V[off:off+ncomp], tmp[:])
				for c := 0; c < ncomp; c++ {
					rr[c] = st.F.V[off+c] - tmp[c]
				}
				for _, d := range [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
					ni, nj, nk := i+d[0], j+d[1], k+d[2]
					if ni < 0 || nj < 0 || nk < 0 || ni >= n || nj >= n || nk >= n {
						continue
					}
					noff := st.U.Idx(ni, nj, nk)
					st.off.matvec(st.U.V[noff:noff+ncomp], tmp[:])
					for c := 0; c < ncomp; c++ {
						rr[c] -= tmp[c]
					}
				}
				for c := 0; c < ncomp; c++ {
					s += rr[c] * rr[c]
				}
			}
		}
	}
	return s
}

// RunBTMPI runs the BT benchmark with `ranks` slab ranks: j/k ADI sweeps
// local, i-sweeps as a distributed block-Thomas pipeline. Norm history
// matches the serial RunBT exactly.
func RunBTMPI(n, steps, ranks int) ([]float64, error) {
	if n < 3 {
		return nil, fmt.Errorf("npb: BT grid %d too small", n)
	}
	if steps < 1 || ranks < 1 || ranks > n {
		return nil, fmt.Errorf("npb: BT needs steps >= 1 and 1..%d ranks", n)
	}
	w, err := simmpi.NewWorld(simmpi.Config{Ranks: simmpi.HostPlacement(ranks, 1)})
	if err != nil {
		return nil, err
	}
	res := make([]float64, steps)
	err = w.Run(func(r *simmpi.Rank) {
		st, err := NewBT(n)
		if err != nil {
			panic(err)
		}
		lo, hi := blockRange(n, ranks, r.ID())

		for step := 0; step < steps; step++ {
			// Forcing on owned planes.
			for i := lo; i < hi; i++ {
				base := st.U.Idx(i, 0, 0)
				for o := base; o < base+n*n*ncomp; o++ {
					st.U.V[o] += st.tau * st.F.V[o]
				}
			}
			// dim 0: distributed i-line solves.
			btSolveILines(r, st, lo, hi, ranks)
			// dims 1, 2: local line solves on owned planes.
			btSolveLocal(st, lo, hi, 1)
			btSolveLocal(st, lo, hi, 2)

			// Norm over owned planes.
			sum := 0.0
			for o := st.U.Idx(lo, 0, 0); o < st.U.Idx(hi, 0, 0); o++ {
				sum += st.U.V[o] * st.U.V[o]
			}
			tot := r.AllreduceSum(sum)
			if r.ID() == 0 {
				res[step] = math.Sqrt(tot / float64(n*n*n*ncomp))
			}
		}
	})
	return res, err
}

// btSolveLocal runs the dim-1 or dim-2 line solves for the owned planes.
func btSolveLocal(st *BTState, lo, hi, dim int) {
	n := st.N
	buf := make([]float64, n*ncomp)
	ws := make([]mat5, n)
	for i := lo; i < hi; i++ {
		for q := 0; q < n; q++ {
			// Gather the line (i fixed; dim runs over j or k).
			for c := 0; c < n; c++ {
				var off int
				if dim == 1 {
					off = st.U.Idx(i, c, q)
				} else {
					off = st.U.Idx(i, q, c)
				}
				copy(buf[c*ncomp:(c+1)*ncomp], st.U.V[off:off+ncomp])
			}
			blockTriSolve(st.op.a, st.op.b, st.op.c, buf, ws)
			for c := 0; c < n; c++ {
				var off int
				if dim == 1 {
					off = st.U.Idx(i, c, q)
				} else {
					off = st.U.Idx(i, q, c)
				}
				copy(st.U.V[off:off+ncomp], buf[c*ncomp:(c+1)*ncomp])
			}
		}
	}
}

// btSolveILines runs the i-direction block-tridiagonal solves as a
// distributed Thomas pipeline: forward elimination state (the W matrix
// and g vector per line) flows right; back-substitution values flow
// left. The per-line arithmetic reproduces blockTriSolve exactly.
func btSolveILines(r *simmpi.Rank, st *BTState, lo, hi, ranks int) {
	n := st.N
	lines := n * n
	a, b, c := st.op.a, st.op.b, st.op.c
	const wgLen = ncomp*ncomp + ncomp // one line's (W, g) payload

	// Per-line state for my planes.
	wMat := make([]mat5, lines*(hi-lo))
	gVec := make([]float64, lines*(hi-lo)*ncomp)

	// Forward elimination.
	var incoming []float64
	if r.ID() > 0 {
		incoming = bytesToF64Buf(r.Recv(r.ID()-1, 30))
	}
	outgoing := make([]float64, lines*wgLen)
	var tmp [ncomp]float64
	for line := 0; line < lines; line++ {
		p, q := line/n, line%n
		var wPrev mat5
		var gPrev [ncomp]float64
		havePrev := false
		if r.ID() > 0 {
			copy(wPrev[:], incoming[line*wgLen:line*wgLen+ncomp*ncomp])
			copy(gPrev[:], incoming[line*wgLen+ncomp*ncomp:])
			havePrev = true
		}
		for i := lo; i < hi; i++ {
			off := st.U.Idx(i, p, q)
			rhs := st.U.V[off : off+ncomp]
			d := b
			if havePrev || i > 0 {
				d = b.sub(a.mul(wPrev))
				a.matvec(gPrev[:], tmp[:])
				for cc := 0; cc < ncomp; cc++ {
					rhs[cc] -= tmp[cc]
				}
			}
			dInv := d.invert()
			w := dInv.mul(c)
			dInv.matvec(rhs, tmp[:])
			copy(rhs, tmp[:])
			idx := line*(hi-lo) + (i - lo)
			wMat[idx] = w
			copy(gVec[idx*ncomp:(idx+1)*ncomp], rhs)
			wPrev = w
			copy(gPrev[:], rhs)
			havePrev = true
		}
		copy(outgoing[line*wgLen:line*wgLen+ncomp*ncomp], wPrev[:])
		copy(outgoing[line*wgLen+ncomp*ncomp:(line+1)*wgLen], gPrev[:])
	}
	if r.ID() < ranks-1 {
		r.Send(r.ID()+1, 30, f64ToBytesBuf(outgoing))
	}

	// Back substitution: u_i = g_i - W_i u_{i+1}.
	var uNext []float64
	if r.ID() < ranks-1 {
		uNext = bytesToF64Buf(r.Recv(r.ID()+1, 31))
	}
	uOut := make([]float64, lines*ncomp)
	for line := 0; line < lines; line++ {
		p, q := line/n, line%n
		var next [ncomp]float64
		haveNext := r.ID() < ranks-1
		if haveNext {
			copy(next[:], uNext[line*ncomp:(line+1)*ncomp])
		}
		for i := hi - 1; i >= lo; i-- {
			off := st.U.Idx(i, p, q)
			idx := line*(hi-lo) + (i - lo)
			u := st.U.V[off : off+ncomp]
			copy(u, gVec[idx*ncomp:(idx+1)*ncomp])
			if haveNext || i < st.N-1 {
				wMat[idx].matvec(next[:], tmp[:])
				for cc := 0; cc < ncomp; cc++ {
					u[cc] -= tmp[cc]
				}
			}
			copy(next[:], u)
			haveNext = true
		}
		copy(uOut[line*ncomp:(line+1)*ncomp], next[:])
	}
	if r.ID() > 0 {
		r.Send(r.ID()-1, 31, f64ToBytesBuf(uOut))
	}
}

// RunEPMPI runs EP with the batches divided across ranks and the sums
// combined by Allreduce. Counts are exact; sums match serial to
// reduction rounding.
func RunEPMPI(pairs int64, ranks int) (EPResult, error) {
	if err := epCheck(pairs); err != nil {
		return EPResult{}, err
	}
	batches := int(pairs >> epBatchLog2)
	if ranks < 1 || ranks > batches {
		return EPResult{}, fmt.Errorf("npb: %d ranks for %d batches", ranks, batches)
	}
	w, err := simmpi.NewWorld(simmpi.Config{Ranks: simmpi.HostPlacement(ranks, 1)})
	if err != nil {
		return EPResult{}, err
	}
	var res EPResult
	err = w.Run(func(r *simmpi.Rank) {
		lo, hi := blockRange(batches, ranks, r.ID())
		var part EPResult
		for j := lo; j < hi; j++ {
			epBatch(int64(j), &part)
		}
		vec := []float64{part.Sx, part.Sy, float64(part.Accepted), float64(part.Pairs)}
		for _, cnt := range part.Counts {
			vec = append(vec, float64(cnt))
		}
		tot := r.Allreduce(vec, simmpi.OpSum)
		if r.ID() == 0 {
			res.Sx, res.Sy = tot[0], tot[1]
			res.Accepted, res.Pairs = int64(tot[2]), int64(tot[3])
			for l := range res.Counts {
				res.Counts[l] = int64(tot[4+l])
			}
		}
	})
	return res, err
}
