//go:build !race

package npb

// raceEnabled mirrors race_on_test.go for normal builds.
const raceEnabled = false
