package npb

import (
	"math"

	"maia/internal/simmpi"
	"maia/internal/vclock"
)

// Closed-form pricing of the Figure 20 iteration scripts. Every NPB
// per-iteration pattern is a fixed sequence of symmetric steps —
// compute, id^1 pair exchanges, ring shifts, recursive-doubling
// allreduces, pairwise alltoalls — so on the flat homogeneous worlds
// MPIRun builds, the whole rank sweep prices through simmpi's replay
// engines instead of goroutine-running one representative iteration.
// LU's wavefront is the one non-lockstep shape; it replays through the
// clock-vector pipeline (simmpi.RepeatPipeline). The replays refuse
// (and MPIRun falls back to the goroutine engine) under fault plans,
// MAIA_NO_FASTPATH, single-rank worlds, or any step the flat replay
// cannot prove symmetric — differential tests pin the two paths
// bit-identical.

// iterationReplay prices one representative iteration of b in closed
// form, or reports ok=false when the goroutine engine is needed.
func iterationReplay(w *simmpi.World, b Benchmark, s Size, compute vclock.Time) (vclock.Time, bool) {
	if b == LU {
		// Wavefront pipeline: two sweeps of Grid[0] hyperplanes, each
		// flowing one boundary plane to the next rank.
		planes := 2 * s.Grid[0]
		msg := int(8 * ncomp * float64(s.Grid[0]))
		return w.RepeatPipeline(msg, planes, compute/vclock.Time(planes))
	}
	steps, ok := iterationSeq(b, s, w.Size(), compute)
	if !ok {
		return 0, false
	}
	return w.RepeatSeq(steps, 1)
}

// iterationSeq expresses one iteration of b as a SeqStep script. It
// must mirror iterationScript operation for operation — same payload
// sizes, same compute charges, same order — so the replayed clock
// recurrences are the goroutine engine's, bit for bit. Benchmarks whose
// per-rank control flow cannot be a lockstep script (LU's wavefront)
// return ok=false.
func iterationSeq(b Benchmark, s Size, n int, compute vclock.Time) ([]simmpi.SeqStep, bool) {
	pts := float64(s.Points())
	switch b {
	case EP:
		return []simmpi.SeqStep{{Compute: compute, Kind: simmpi.AllreduceKind, Bytes: 96}}, true
	case CG:
		rowBytes := int(8 * float64(s.N) / math.Sqrt(float64(n)))
		steps := make([]simmpi.SeqStep, 0, 25*4)
		for step := 0; step < 25; step++ {
			if n > 1 {
				steps = append(steps, simmpi.SeqStep{Compute: compute / 25, Kind: simmpi.PairKind, Bytes: rowBytes})
			} else {
				steps = append(steps, simmpi.SeqStep{Compute: compute / 25, Kind: simmpi.ComputeStep})
			}
			steps = append(steps,
				simmpi.SeqStep{Kind: simmpi.AllreduceKind, Bytes: 8},
				simmpi.SeqStep{Kind: simmpi.AllreduceKind, Bytes: 8},
				simmpi.SeqStep{Kind: simmpi.AllreduceKind, Bytes: 8})
		}
		return steps, true
	case MG:
		levels := log2(s.Grid[0]) - 1
		sub := pts / float64(n)
		face := math.Pow(sub, 2.0/3.0)
		steps := make([]simmpi.SeqStep, 0, 3*levels+1)
		for l := 0; l < levels; l++ {
			c := compute / vclock.Time(levels)
			faceBytes := int(8 * face / float64(int(1)<<(2*l)))
			if faceBytes < 8 {
				faceBytes = 8
			}
			if n > 1 {
				steps = append(steps,
					simmpi.SeqStep{Compute: c, Kind: simmpi.RingKind, Bytes: faceBytes},
					simmpi.SeqStep{Kind: simmpi.RingKind, Bytes: faceBytes},
					simmpi.SeqStep{Kind: simmpi.RingKind, Bytes: faceBytes})
			} else {
				steps = append(steps, simmpi.SeqStep{Compute: c, Kind: simmpi.ComputeStep})
			}
		}
		steps = append(steps, simmpi.SeqStep{Kind: simmpi.AllreduceKind, Bytes: 8})
		return steps, true
	case FT:
		block := int(16 * pts / float64(n) / float64(n))
		if block < 16 {
			block = 16
		}
		return []simmpi.SeqStep{{Compute: compute, Kind: simmpi.AlltoallKind, Bytes: block}}, true
	case IS:
		block := int(4 * float64(s.N) / float64(n) / float64(n))
		if block < 4 {
			block = 4
		}
		return []simmpi.SeqStep{
			{Compute: compute, Kind: simmpi.AlltoallKind, Bytes: block},
			{Kind: simmpi.AllreduceKind, Bytes: 32},
		}, true
	case BT, SP:
		// Square process grid: per directional sweep, a column-ring and
		// a row-ring face exchange. Both rings are symmetric shifts, so
		// each prices as one ring exchange.
		faceBytes := int(8 * ncomp * math.Pow(pts/float64(n), 2.0/3.0))
		steps := make([]simmpi.SeqStep, 0, 6)
		for dim := 0; dim < 3; dim++ {
			if n == 1 {
				steps = append(steps, simmpi.SeqStep{Compute: compute / 3, Kind: simmpi.ComputeStep})
				continue
			}
			steps = append(steps,
				simmpi.SeqStep{Compute: compute / 3, Kind: simmpi.RingKind, Bytes: faceBytes},
				simmpi.SeqStep{Kind: simmpi.RingKind, Bytes: faceBytes})
		}
		return steps, true
	default:
		return nil, false
	}
}
