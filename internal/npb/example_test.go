package npb_test

import (
	"fmt"

	"maia/internal/npb"
)

// The EP kernel reproduces the official NPB class S verification values
// exactly (the acceptance count shown here is the reference's).
func ExampleRunEPSerial() {
	res, err := npb.RunEPSerial(1 << 20) // a 1/16th-of-class-S slice
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Pairs, res.Accepted == res.Gaussians())
	// Output: 1048576 true
}

// Work profiles characterize paper-scale runs for the execution model.
func ExampleProfile() {
	w, err := npb.Profile(npb.MG, npb.ClassC)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %.1f Gflop, OI %.2f flops/byte\n",
		w.Name, w.Flops/1e9, w.OperationalIntensity())
	// Output: NPB MG.C: 155.7 Gflop, OI 0.26 flops/byte
}
