package npb

import (
	"fmt"
	"math"
	"math/cmplx"

	"maia/internal/simomp"
)

// FT — the spectral kernel: solve a 3D diffusion equation by forward
// 3D FFT, evolution in frequency space, and inverse FFT, with a checksum
// per time step. The transpose-like passes give FT its strided access
// character; its five complex-grid arrays are what overflow the Phi's
// 8 GB at class C (Section 6.8.2: "needs a minimum of 10 GB").

// fft1D runs an in-place iterative radix-2 Cooley-Tukey transform.
// invert selects the inverse transform (unscaled; callers normalize).
func fft1D(a []complex128, invert bool) {
	n := len(a)
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("npb: FFT length %d not a power of two", n))
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		tw := twiddles(length, invert)
		half := length / 2
		for i := 0; i < n; i += length {
			for j := 0; j < half; j++ {
				u := a[i+j]
				v := a[i+j+half] * tw[j]
				a[i+j] = u + v
				a[i+j+half] = u - v
			}
		}
	}
}

// FTGrid is a 3D complex grid stored x-fastest.
type FTGrid struct {
	Nx, Ny, Nz int
	V          []complex128
}

// NewFTGrid allocates a zeroed grid.
func NewFTGrid(nx, ny, nz int) *FTGrid {
	return &FTGrid{Nx: nx, Ny: ny, Nz: nz, V: make([]complex128, nx*ny*nz)}
}

// Idx maps (x,y,z) to the flat index.
func (g *FTGrid) Idx(x, y, z int) int { return (z*g.Ny+y)*g.Nx + x }

// FFT3D transforms the grid in place along all three dimensions. The
// per-pencil loops are work-shared across the team when one is given.
func FFT3D(g *FTGrid, invert bool, team *simomp.Team) {
	nx, ny, nz := g.Nx, g.Ny, g.Nz
	// X pencils: contiguous.
	runPencils(team, ny*nz, func(p int) {
		off := p * nx
		fft1D(g.V[off:off+nx], invert)
	})
	// Y pencils: stride nx. Pencil scratch comes from the free list;
	// the buffer is fully overwritten before it is read.
	runPencilsBuf(team, nx*nz, ny, func(p int, buf []complex128) {
		z := p / nx
		x := p % nx
		for y := 0; y < ny; y++ {
			buf[y] = g.V[g.Idx(x, y, z)]
		}
		fft1D(buf, invert)
		for y := 0; y < ny; y++ {
			g.V[g.Idx(x, y, z)] = buf[y]
		}
	})
	// Z pencils: stride nx*ny.
	runPencilsBuf(team, nx*ny, nz, func(p int, buf []complex128) {
		y := p / nx
		x := p % nx
		for z := 0; z < nz; z++ {
			buf[z] = g.V[g.Idx(x, y, z)]
		}
		fft1D(buf, invert)
		for z := 0; z < nz; z++ {
			g.V[g.Idx(x, y, z)] = buf[z]
		}
	})
}

func runPencils(team *simomp.Team, n int, body func(p int)) {
	if team == nil {
		for p := 0; p < n; p++ {
			body(p)
		}
		return
	}
	team.ParallelFor(n, simomp.ForOpts{Sched: simomp.Static}, body)
}

// runPencilsBuf is runPencils for bodies needing bufLen scratch
// elements. Serial runs share one pooled buffer across all pencils;
// team runs take one per body invocation, since bodies execute
// concurrently on the team's workers.
func runPencilsBuf(team *simomp.Team, n, bufLen int, body func(p int, buf []complex128)) {
	if team == nil {
		buf := c128Pool.Get(bufLen)
		for p := 0; p < n; p++ {
			body(p, buf)
		}
		c128Pool.Put(buf)
		return
	}
	team.ParallelFor(n, simomp.ForOpts{Sched: simomp.Static}, func(p int) {
		buf := c128Pool.Get(bufLen)
		body(p, buf)
		c128Pool.Put(buf)
	})
}

// FTResult carries the per-step checksums the suite verifies, plus the
// physical-space energy after each step (the diffusion evolution damps
// every nonzero mode, so energies decrease monotonically — the package's
// physical invariant).
type FTResult struct {
	Checksums []complex128
	Energies  []float64
}

// RunFT runs the FT benchmark: initialize the grid from the RANDLC
// stream, forward-transform once, then for each time step evolve in
// frequency space, inverse-transform a copy, and checksum it.
func RunFT(nx, ny, nz, steps int, team *simomp.Team) (FTResult, error) {
	for _, n := range []int{nx, ny, nz} {
		if n < 2 || n&(n-1) != 0 {
			return FTResult{}, fmt.Errorf("npb: FT dims must be powers of two >= 2, got %dx%dx%d", nx, ny, nz)
		}
	}
	if steps < 1 {
		return FTResult{}, fmt.Errorf("npb: FT needs at least one step")
	}
	u0 := NewPooledFTGrid(nx, ny, nz)
	defer u0.Free()
	seed := DefaultSeed
	for i := range u0.V {
		re := Randlc(&seed, MultA)
		im := Randlc(&seed, MultA)
		u0.V[i] = complex(re, im)
	}

	// Forward transform once.
	freq := NewPooledFTGrid(nx, ny, nz)
	defer freq.Free()
	copy(freq.V, u0.V)
	FFT3D(freq, false, team)

	// Frequency-space decay factors exp(-4 alpha pi^2 |k|^2 t).
	const alpha = 1e-6
	decay := func(n, i int) float64 {
		k := i
		if k > n/2 {
			k -= n
		}
		return float64(k * k)
	}

	res := FTResult{}
	work := NewPooledFTGrid(nx, ny, nz)
	defer work.Free()
	for step := 1; step <= steps; step++ {
		t := float64(step)
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					k2 := decay(nx, x) + decay(ny, y) + decay(nz, z)
					f := math.Exp(-4 * alpha * math.Pi * math.Pi * k2 * t)
					work.V[work.Idx(x, y, z)] = freq.V[freq.Idx(x, y, z)] * complex(f, 0)
				}
			}
		}
		FFT3D(work, true, team)
		// Normalize the inverse transform and checksum 1024 strided
		// samples, like the reference.
		norm := complex(1/float64(nx*ny*nz), 0)
		var sum complex128
		energy := 0.0
		n := nx * ny * nz
		for j := 1; j <= 1024; j++ {
			q := (j * 17) % n
			sum += work.V[q] * norm
		}
		for _, v := range work.V {
			vv := v * norm
			energy += real(vv)*real(vv) + imag(vv)*imag(vv)
		}
		res.Checksums = append(res.Checksums, sum)
		res.Energies = append(res.Energies, energy)
	}
	return res, nil
}

// FTRoundTripError transforms a grid forward and back and returns the
// max abs error vs the original — the property test for the FFT core.
func FTRoundTripError(g *FTGrid, team *simomp.Team) float64 {
	orig := make([]complex128, len(g.V))
	copy(orig, g.V)
	FFT3D(g, false, team)
	FFT3D(g, true, team)
	norm := complex(1/float64(g.Nx*g.Ny*g.Nz), 0)
	maxErr := 0.0
	for i := range g.V {
		g.V[i] *= norm
		if e := cmplx.Abs(g.V[i] - orig[i]); e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}
