// Package npb reimplements the NAS Parallel Benchmarks 3.3 suite the
// paper evaluates (Section 3.6, Figures 19, 20, 24, 25): five kernels
// (EP, CG, MG, FT, IS) and three compact applications (BT, LU, SP).
//
// Each benchmark exists in three forms:
//
//   - a real, runnable Go kernel (verified by tests at the small classes)
//     that executes through the simomp/simmpi runtimes so data movement
//     and results are genuine;
//   - an analytic work profile (core.Workload) derived from the
//     algorithm's operation counts, used by the execution model to price
//     paper-scale runs (Class C) that would not fit in a test budget;
//   - OpenMP and MPI drivers that combine both with the runtime overhead
//     models to regenerate the paper's figures.
//
// Operation counts are modeled from the algorithms (documented per
// benchmark below), not taken from the NPB reference outputs, so
// absolute Gflop/s differ from official NPB numbers while ratios between
// machines — the paper's subject — are preserved.
package npb

import (
	"fmt"

	"maia/internal/core"
)

// Benchmark enumerates the NPB suite.
type Benchmark int

const (
	EP Benchmark = iota // embarrassingly parallel random-number kernel
	CG                  // conjugate gradient, sparse matrix, irregular access
	MG                  // multigrid V-cycle on a 3D Poisson problem
	FT                  // 3D FFT-based spectral solver
	IS                  // integer bucket sort
	BT                  // block-tridiagonal ADI solver (5x5 blocks)
	LU                  // SSOR solver with wavefront dependencies
	SP                  // scalar-pentadiagonal ADI solver
	numBenchmarks
)

// String implements fmt.Stringer.
func (b Benchmark) String() string {
	switch b {
	case EP:
		return "EP"
	case CG:
		return "CG"
	case MG:
		return "MG"
	case FT:
		return "FT"
	case IS:
		return "IS"
	case BT:
		return "BT"
	case LU:
		return "LU"
	case SP:
		return "SP"
	default:
		return fmt.Sprintf("Benchmark(%d)", int(b))
	}
}

// Benchmarks lists the full suite.
func Benchmarks() []Benchmark {
	return []Benchmark{EP, CG, MG, FT, IS, BT, LU, SP}
}

// Fig19Benchmarks lists the six benchmarks shown in the paper's OpenMP
// figure (Figure 19).
func Fig19Benchmarks() []Benchmark {
	return []Benchmark{BT, CG, FT, LU, MG, SP}
}

// Class is an NPB problem class.
type Class byte

// The standard NPB classes, smallest to largest. Class C is what the
// paper runs.
const (
	ClassS Class = 'S'
	ClassW Class = 'W'
	ClassA Class = 'A'
	ClassB Class = 'B'
	ClassC Class = 'C'
)

// String implements fmt.Stringer.
func (c Class) String() string { return string(c) }

// Classes lists all supported classes in size order.
func Classes() []Class { return []Class{ClassS, ClassW, ClassA, ClassB, ClassC} }

// Size describes one benchmark instance.
type Size struct {
	Bench Benchmark
	Class Class

	// Grid is the problem grid for the grid-based benchmarks
	// (MG, FT, BT, LU, SP); unused entries are 1.
	Grid [3]int
	// N is the scalar problem size: CG matrix order, IS key count,
	// EP pair count.
	N int64
	// Iters is the benchmark's time-step / outer-iteration count.
	Iters int

	// CG-specific: nonzeros per row and the eigenvalue shift.
	NonzerosPerRow int
	Shift          float64
	// IS-specific: maximum key value.
	MaxKey int64
}

// Points returns the total grid points (or N for non-grid benchmarks).
func (s Size) Points() int64 {
	if s.Grid[0] > 1 {
		return int64(s.Grid[0]) * int64(s.Grid[1]) * int64(s.Grid[2])
	}
	return s.N
}

// SizeOf returns the standard NPB 3.3 problem definition for a
// benchmark/class pair.
func SizeOf(b Benchmark, c Class) (Size, error) {
	s := Size{Bench: b, Class: c, Grid: [3]int{1, 1, 1}}
	bad := func() (Size, error) {
		return Size{}, fmt.Errorf("npb: no size table for %v class %v", b, c)
	}
	switch b {
	case EP:
		m := map[Class]int64{ClassS: 1 << 24, ClassW: 1 << 25, ClassA: 1 << 28, ClassB: 1 << 30, ClassC: 1 << 32}
		n, ok := m[c]
		if !ok {
			return bad()
		}
		s.N, s.Iters = n, 1
	case CG:
		type cgp struct {
			n, nz, it int
			shift     float64
		}
		m := map[Class]cgp{
			ClassS: {1400, 7, 15, 10}, ClassW: {7000, 8, 15, 12},
			ClassA: {14000, 11, 15, 20}, ClassB: {75000, 13, 75, 60},
			ClassC: {150000, 15, 75, 110},
		}
		p, ok := m[c]
		if !ok {
			return bad()
		}
		s.N, s.NonzerosPerRow, s.Iters, s.Shift = int64(p.n), p.nz, p.it, p.shift
	case MG:
		type mgp struct {
			n, it int
		}
		m := map[Class]mgp{
			ClassS: {32, 4}, ClassW: {128, 4}, ClassA: {256, 4},
			ClassB: {256, 20}, ClassC: {512, 20},
		}
		p, ok := m[c]
		if !ok {
			return bad()
		}
		s.Grid = [3]int{p.n, p.n, p.n}
		s.Iters = p.it
	case FT:
		type ftp struct {
			nx, ny, nz, it int
		}
		m := map[Class]ftp{
			ClassS: {64, 64, 64, 6}, ClassW: {128, 128, 32, 6},
			ClassA: {256, 256, 128, 6}, ClassB: {512, 256, 256, 20},
			ClassC: {512, 512, 512, 20},
		}
		p, ok := m[c]
		if !ok {
			return bad()
		}
		s.Grid = [3]int{p.nx, p.ny, p.nz}
		s.Iters = p.it
	case IS:
		type isp struct{ keysLog, maxLog int }
		m := map[Class]isp{
			ClassS: {16, 11}, ClassW: {20, 16}, ClassA: {23, 19},
			ClassB: {25, 21}, ClassC: {27, 23},
		}
		p, ok := m[c]
		if !ok {
			return bad()
		}
		s.N, s.MaxKey, s.Iters = 1<<p.keysLog, 1<<p.maxLog, 10
	case BT, SP, LU:
		type gp struct{ n, it int }
		var m map[Class]gp
		switch b {
		case BT:
			m = map[Class]gp{ClassS: {12, 60}, ClassW: {24, 200}, ClassA: {64, 200},
				ClassB: {102, 200}, ClassC: {162, 200}}
		case SP:
			m = map[Class]gp{ClassS: {12, 100}, ClassW: {36, 400}, ClassA: {64, 400},
				ClassB: {102, 400}, ClassC: {162, 400}}
		default: // LU
			m = map[Class]gp{ClassS: {12, 50}, ClassW: {33, 300}, ClassA: {64, 250},
				ClassB: {102, 250}, ClassC: {162, 250}}
		}
		p, ok := m[c]
		if !ok {
			return bad()
		}
		s.Grid = [3]int{p.n, p.n, p.n}
		s.Iters = p.it
	default:
		return Size{}, fmt.Errorf("npb: unknown benchmark %v", b)
	}
	return s, nil
}

// character holds the per-point-per-iteration operation model and the
// architectural character of each benchmark, the inputs the paper's
// analysis turns on: vectorizability, stride, cache reuse, and serial
// fraction.
type character struct {
	flopsPerPoint float64
	bytesPerPoint float64
	vec           float64
	stride        core.StrideClass
	reuse         float64
	parallel      float64
}

// characters: the rationale per benchmark —
//
//	EP: pure compute (2 logs, a sqrt, ~30 flops per pair), fully
//	    parallel, vectorizable except the acceptance branch;
//	CG: sparse matrix-vector with indirect addressing (the paper's
//	    gather/scatter case), low intensity, memory bound;
//	MG: 27-ish-point stencils streaming through the grid: the
//	    bandwidth-bound, unit-stride case that favors the Phi;
//	FT: batched 1D FFTs along each dimension: vectorizable but with
//	    strided/transpose passes and moderate reuse;
//	IS: integer counting sort: almost no FP, irregular scatter;
//	BT: 5x5 block ADI sweeps: flop-dense, blocked, high reuse — the
//	    best NPB on the Phi (Figure 19);
//	LU: SSOR wavefronts: limited parallelism and vectorization;
//	SP: scalar pentadiagonal ADI: like BT but less flop-dense.
var characters = map[Benchmark]character{
	EP: {flopsPerPoint: 30, bytesPerPoint: 0.5, vec: 0.85, stride: core.Unit, reuse: 0, parallel: 1.0},
	CG: {flopsPerPoint: 0, bytesPerPoint: 0, vec: 0.50, stride: core.GatherScatter, reuse: 0.35, parallel: 0.995},
	MG: {flopsPerPoint: 58, bytesPerPoint: 220, vec: 0.90, stride: core.Unit, reuse: 0.10, parallel: 0.999},
	FT: {flopsPerPoint: 0, bytesPerPoint: 0, vec: 0.85, stride: core.Strided, reuse: 0.40, parallel: 0.999},
	IS: {flopsPerPoint: 4, bytesPerPoint: 32, vec: 0.10, stride: core.GatherScatter, reuse: 0.20, parallel: 0.99},
	BT: {flopsPerPoint: 3200, bytesPerPoint: 2000, vec: 0.90, stride: core.Unit, reuse: 0.75, parallel: 0.999},
	LU: {flopsPerPoint: 1800, bytesPerPoint: 1600, vec: 0.70, stride: core.Unit, reuse: 0.70, parallel: 0.995},
	SP: {flopsPerPoint: 1000, bytesPerPoint: 1400, vec: 0.90, stride: core.Unit, reuse: 0.60, parallel: 0.999},
}

// Profile returns the analytic work profile of a benchmark instance: the
// total flops and memory traffic of all iterations, plus its
// architectural character.
func Profile(b Benchmark, c Class) (core.Workload, error) {
	s, err := SizeOf(b, c)
	if err != nil {
		return core.Workload{}, err
	}
	ch := characters[b]
	pts := float64(s.Points())
	it := float64(s.Iters)
	w := core.Workload{
		Name:             fmt.Sprintf("NPB %v.%v", b, c),
		VecFraction:      ch.vec,
		Stride:           ch.stride,
		Reuse:            ch.reuse,
		ParallelFraction: ch.parallel,
	}
	switch b {
	case CG:
		// Per outer iteration: 25 CG steps, each one sparse matvec
		// (2 flops per nonzero) plus ~12 flops per row of vector work.
		n := float64(s.N)
		nnz := n * float64(s.NonzerosPerRow)
		w.Flops = it * 25 * (2*nnz + 12*n)
		// Matvec traffic: 8B value + 4B index + 8B gathered operand per
		// nonzero, plus ~10 vector sweeps of 8B per row.
		w.Bytes = it * 25 * (20*nnz + 80*n)
	case FT:
		// Three dimension passes of radix-2 FFTs (5 N log2(dim) flops
		// each) plus the evolve step.
		n := pts
		logs := float64(log2(s.Grid[0]) + log2(s.Grid[1]) + log2(s.Grid[2]))
		w.Flops = it * (5*n*logs + 6*n)
		// Each pass streams the complex grid (16 B) in and out.
		w.Bytes = it * (3*2*16 + 34) * n
	default:
		w.Flops = it * pts * ch.flopsPerPoint
		w.Bytes = it * pts * ch.bytesPerPoint
	}
	return w, nil
}

// MemoryBytes estimates the resident footprint of a benchmark instance —
// what decides whether it fits on the Phi's 8 GB card. FT keeps five
// complex-sized arrays (the paper: FT class C "needs a minimum of 10 GB").
func MemoryBytes(b Benchmark, c Class) (int64, error) {
	s, err := SizeOf(b, c)
	if err != nil {
		return 0, err
	}
	pts := s.Points()
	switch b {
	case FT:
		return 5 * 16 * pts, nil
	case MG:
		// The V-cycle hierarchy adds ~1/7 over the fine grid, times
		// three arrays (u, v, r).
		return 3 * 8 * pts * 8 / 7, nil
	case CG:
		nnz := s.N * int64(s.NonzerosPerRow)
		return 20*nnz + 6*8*s.N, nil
	case IS:
		return 4*s.N + 8*s.MaxKey, nil
	case EP:
		return 1 << 20, nil
	default: // BT, LU, SP keep ~15 double fields per point plus work arrays
		return 15 * 8 * pts * 2, nil
	}
}

// log2 returns floor(log2(n)) for n >= 1.
func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
