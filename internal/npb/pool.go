package npb

import "maia/internal/bufpool"

// Package-level free lists for the kernels' transient buffers: FFT
// pencil scratch and grids, transpose payloads, and the float<->byte
// conversion buffers on the MPI paths. Reuse is host-memory-only — no
// modeled (virtual-time) number depends on where a buffer came from.
var (
	c128Pool bufpool.Pool[complex128]
	f64Pool  bufpool.Pool[float64]
	bytePool bufpool.Pool[byte]
)

// NewPooledFTGrid is NewFTGrid drawing the backing array from the
// package free list; pair with Free when the grid's lifetime ends.
func NewPooledFTGrid(nx, ny, nz int) *FTGrid {
	return &FTGrid{Nx: nx, Ny: ny, Nz: nz, V: c128Pool.GetZeroed(nx * ny * nz)}
}

// Free recycles the grid's backing array. The grid must not be used
// afterwards.
func (g *FTGrid) Free() {
	c128Pool.Put(g.V)
	g.V = nil
}

// NewPooledField5 is NewField5 drawing the backing array from the
// package free list; pair with Free when the field's lifetime ends.
func NewPooledField5(n int) *Field5 {
	return &Field5{N: n, V: f64Pool.GetZeroed(n * n * n * ncomp)}
}

// Free recycles the field's backing array. The field must not be used
// afterwards.
func (f *Field5) Free() {
	f64Pool.Put(f.V)
	f.V = nil
}
