package npb

import (
	"fmt"
	"math"

	"maia/internal/simomp"
)

// CG — the conjugate-gradient kernel: estimate the largest eigenvalue
// shift of a sparse symmetric positive-definite matrix with inverse power
// iteration, using 25 unpreconditioned CG steps per outer iteration. The
// sparse matrix-vector product's indirect addressing is the paper's
// canonical gather/scatter workload (Section 6.8.1).

// SparseMatrix is a square CSR matrix.
type SparseMatrix struct {
	N      int
	RowPtr []int32
	Col    []int32
	Val    []float64
}

// NNZ returns the stored nonzero count.
func (m *SparseMatrix) NNZ() int { return len(m.Val) }

// MakeCGMatrix builds the benchmark's sparse SPD matrix: nzRow random
// off-diagonal positions per row (symmetrized by construction of the
// product pattern in the reference; here by averaging), made strictly
// diagonally dominant so CG is guaranteed to converge.
func MakeCGMatrix(n, nzRow int) *SparseMatrix {
	seed := DefaultSeed
	type entry struct {
		col int32
		val float64
	}
	rows := make([][]entry, n)
	for i := 0; i < n; i++ {
		for k := 0; k < nzRow-1; k++ {
			j := int(Randlc(&seed, MultA) * float64(n))
			if j >= n {
				j = n - 1
			}
			if j == i {
				continue
			}
			v := Randlc(&seed, MultA) - 0.5
			rows[i] = append(rows[i], entry{col: int32(j), val: v})
			rows[j] = append(rows[j], entry{col: int32(i), val: v})
		}
	}
	m := &SparseMatrix{N: n, RowPtr: make([]int32, n+1)}
	for i, r := range rows {
		// Diagonal dominance: |a_ii| > sum |a_ij|.
		sum := 0.0
		for _, e := range r {
			sum += math.Abs(e.val)
		}
		r = append(r, entry{col: int32(i), val: sum + 1.0})
		// Insertion sort by column keeps access patterns reproducible.
		for a := 1; a < len(r); a++ {
			for b := a; b > 0 && r[b].col < r[b-1].col; b-- {
				r[b], r[b-1] = r[b-1], r[b]
			}
		}
		for _, e := range r {
			m.Col = append(m.Col, e.col)
			m.Val = append(m.Val, e.val)
		}
		m.RowPtr[i+1] = int32(len(m.Col))
	}
	return m
}

// SpMV computes y = A*x, work-shared across the team by rows. Rows write
// disjoint outputs, so parallel results equal serial results exactly.
func SpMV(m *SparseMatrix, x, y []float64, team *simomp.Team) {
	body := func(i int) {
		sum := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Val[k] * x[m.Col[k]]
		}
		y[i] = sum
	}
	if team == nil {
		for i := 0; i < m.N; i++ {
			body(i)
		}
		return
	}
	team.ParallelFor(m.N, simomp.ForOpts{Sched: simomp.Static}, body)
}

func dot(a, b []float64, team *simomp.Team) float64 {
	if team == nil {
		s := 0.0
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	s, _ := team.ForReduceSum(len(a), simomp.ForOpts{Sched: simomp.Static},
		func(i int) float64 { return a[i] * b[i] })
	return s
}

// cgSolve runs `steps` unpreconditioned CG iterations for A z = x,
// starting from z = 0, and returns ||r|| at exit.
func cgSolve(m *SparseMatrix, x, z []float64, steps int, team *simomp.Team) float64 {
	n := m.N
	r := make([]float64, n)
	p := make([]float64, n)
	q := make([]float64, n)
	for i := range z {
		z[i] = 0
		r[i] = x[i]
		p[i] = x[i]
	}
	rho := dot(r, r, team)
	for it := 0; it < steps; it++ {
		SpMV(m, p, q, team)
		alpha := rho / dot(p, q, team)
		for i := 0; i < n; i++ {
			z[i] += alpha * p[i]
			r[i] -= alpha * q[i]
		}
		rho0 := rho
		rho = dot(r, r, team)
		beta := rho / rho0
		for i := 0; i < n; i++ {
			p[i] = r[i] + beta*p[i]
		}
	}
	return math.Sqrt(rho)
}

// CGResult is the benchmark's verification state.
type CGResult struct {
	Zeta        float64   // the eigenvalue-shift estimate the suite verifies
	Residual    float64   // final inner-CG residual
	ZetaHistory []float64 // zeta after each outer iteration
}

// RunCG runs the CG benchmark: outerIters inverse power iterations, each
// with 25 CG steps. team == nil runs serially.
func RunCG(m *SparseMatrix, shift float64, outerIters int, team *simomp.Team) (CGResult, error) {
	if outerIters < 1 {
		return CGResult{}, fmt.Errorf("npb: CG needs at least one iteration")
	}
	n := m.N
	x := make([]float64, n)
	z := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	var res CGResult
	for it := 0; it < outerIters; it++ {
		res.Residual = cgSolve(m, x, z, 25, team)
		res.Zeta = shift + 1/dot(x, z, team)
		res.ZetaHistory = append(res.ZetaHistory, res.Zeta)
		norm := math.Sqrt(dot(z, z, team))
		for i := range x {
			x[i] = z[i] / norm
		}
	}
	return res, nil
}
