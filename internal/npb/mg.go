package npb

import (
	"fmt"
	"math"

	"maia/internal/simomp"
)

// MG — the multigrid kernel: V-cycles for the 3D Poisson equation
// -∇²u = f with homogeneous Dirichlet boundaries, on a vertex-centered
// grid hierarchy with full-weighting restriction and trilinear
// prolongation. Stencil sweeps stream through memory with unit stride,
// which is what makes MG the one NPB kernel that runs faster on the Phi
// than on the host (Figures 19, 25). The paper's Figure 24 studies
// collapsing the outer two loops of these sweeps; RunMG exposes the same
// choice.

// MGGrid is a vertex-centered cubic grid with N intervals per dimension:
// (N+1)³ points, of which the interior 1..N-1 are unknowns and the
// boundary layer is fixed at zero.
type MGGrid struct {
	N int // intervals per dimension
	V []float64
}

// NewMGGrid allocates an (n+1)³-point grid of zeros.
func NewMGGrid(n int) *MGGrid {
	s := n + 1
	return &MGGrid{N: n, V: make([]float64, s*s*s)}
}

// Idx maps point (i,j,k) in [0, n] to the flat index.
func (g *MGGrid) Idx(i, j, k int) int {
	s := g.N + 1
	return (i*s+j)*s + k
}

// forPlanes runs the interior sweep: body row(i,j) covers k=1..n-1 for
// one (i,j) pencil. When team is nil the sweep is serial; otherwise the
// i loop (or the fused (i,j) loop, when collapse is set — the paper's
// collapse(2) transformation) is work-shared.
func forPlanes(n int, team *simomp.Team, collapse bool, row func(i, j int)) {
	ni := n - 1 // interior points per dimension
	if team == nil {
		for i := 1; i < n; i++ {
			for j := 1; j < n; j++ {
				row(i, j)
			}
		}
		return
	}
	if collapse {
		team.ParallelFor(ni*ni, simomp.ForOpts{Sched: simomp.Static}, func(ij int) {
			row(ij/ni+1, ij%ni+1)
		})
		return
	}
	team.ParallelFor(ni, simomp.ForOpts{Sched: simomp.Static}, func(i int) {
		for j := 1; j < n; j++ {
			row(i+1, j)
		}
	})
}

// MGSmooth runs one weighted-Jacobi sweep u <- u + w D⁻¹ (f - A u),
// writing into out (out must differ from u).
func MGSmooth(u, f, out *MGGrid, team *simomp.Team, collapse bool) {
	n := u.N
	h2 := 1.0 / float64(n*n)
	const w = 2.0 / 3.0
	s := n + 1
	forPlanes(n, team, collapse, func(i, j int) {
		for k := 1; k < n; k++ {
			c := u.Idx(i, j, k)
			lap := (6*u.V[c] - u.V[c-1] - u.V[c+1] -
				u.V[c-s] - u.V[c+s] - u.V[c-s*s] - u.V[c+s*s]) / h2
			out.V[c] = u.V[c] + w*(f.V[c]-lap)*h2/6
		}
	})
}

// MGResidual computes r = f - A u.
func MGResidual(u, f, r *MGGrid, team *simomp.Team, collapse bool) {
	n := u.N
	h2 := 1.0 / float64(n*n)
	s := n + 1
	forPlanes(n, team, collapse, func(i, j int) {
		for k := 1; k < n; k++ {
			c := u.Idx(i, j, k)
			lap := (6*u.V[c] - u.V[c-1] - u.V[c+1] -
				u.V[c-s] - u.V[c+s] - u.V[c-s*s] - u.V[c+s*s]) / h2
			r.V[c] = f.V[c] - lap
		}
	})
}

// MGRestrict full-weights the fine residual onto the coarse grid
// (coarse.N == fine.N/2): 27-point stencil with weights ∏(1/4, 1/2, 1/4).
func MGRestrict(fine, coarse *MGGrid) {
	nc := coarse.N
	w1 := [3]float64{0.25, 0.5, 0.25}
	for i := 1; i < nc; i++ {
		for j := 1; j < nc; j++ {
			for k := 1; k < nc; k++ {
				sum := 0.0
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						for dk := -1; dk <= 1; dk++ {
							w := w1[di+1] * w1[dj+1] * w1[dk+1]
							sum += w * fine.V[fine.Idx(2*i+di, 2*j+dj, 2*k+dk)]
						}
					}
				}
				coarse.V[coarse.Idx(i, j, k)] = sum
			}
		}
	}
}

// MGProlong adds the trilinear interpolation of the coarse correction
// into the fine grid. Coarse boundary values are zero, so the
// interpolation weights fall off correctly at the edges.
func MGProlong(coarse, fine *MGGrid) {
	n := fine.N
	for i := 1; i < n; i++ {
		for j := 1; j < n; j++ {
			for k := 1; k < n; k++ {
				v := 0.0
				// Per-dimension: even index hits a coarse point; odd
				// averages its two coarse neighbors.
				i0, iw := i/2, 1.0
				j0, jw := j/2, 1.0
				k0, kw := k/2, 1.0
				iOdd := i%2 == 1
				jOdd := j%2 == 1
				kOdd := k%2 == 1
				if iOdd {
					iw = 0.5
				}
				if jOdd {
					jw = 0.5
				}
				if kOdd {
					kw = 0.5
				}
				for di := 0; di <= b2i(iOdd); di++ {
					for dj := 0; dj <= b2i(jOdd); dj++ {
						for dk := 0; dk <= b2i(kOdd); dk++ {
							v += iw * jw * kw * coarse.V[coarse.Idx(i0+di, j0+dj, k0+dk)]
						}
					}
				}
				fine.V[fine.Idx(i, j, k)] += v
			}
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// mgHierarchy pre-allocates grids per level; level 0 is finest.
type mgHierarchy struct {
	u, f, r, tmp []*MGGrid
}

func newHierarchy(n int) *mgHierarchy {
	h := &mgHierarchy{}
	for s := n; s >= 2; s /= 2 {
		h.u = append(h.u, NewMGGrid(s))
		h.f = append(h.f, NewMGGrid(s))
		h.r = append(h.r, NewMGGrid(s))
		h.tmp = append(h.tmp, NewMGGrid(s))
	}
	return h
}

// vcycle runs one V-cycle at level l with 2 pre- and 2 post-smoothing
// sweeps.
func (h *mgHierarchy) vcycle(l int, team *simomp.Team, collapse bool) {
	if l == len(h.u)-1 {
		// Coarsest (one interior unknown): smooth to convergence.
		for s := 0; s < 8; s++ {
			MGSmooth(h.u[l], h.f[l], h.tmp[l], team, collapse)
			h.u[l], h.tmp[l] = h.tmp[l], h.u[l]
		}
		return
	}
	for s := 0; s < 2; s++ {
		MGSmooth(h.u[l], h.f[l], h.tmp[l], team, collapse)
		h.u[l], h.tmp[l] = h.tmp[l], h.u[l]
	}
	MGResidual(h.u[l], h.f[l], h.r[l], team, collapse)
	for i := range h.u[l+1].V {
		h.u[l+1].V[i] = 0
	}
	MGRestrict(h.r[l], h.f[l+1])
	h.vcycle(l+1, team, collapse)
	MGProlong(h.u[l+1], h.u[l])
	for s := 0; s < 2; s++ {
		MGSmooth(h.u[l], h.f[l], h.tmp[l], team, collapse)
		h.u[l], h.tmp[l] = h.tmp[l], h.u[l]
	}
}

// MGResult is the benchmark's verification state.
type MGResult struct {
	ResidualNorms []float64 // L2 residual after each V-cycle
}

// RunMG solves -∇²u = f (f from the RANDLC stream) with `cycles`
// V-cycles on a grid with n intervals per dimension. n must be a power
// of two >= 4. team == nil runs serially; collapse selects the Figure 24
// loop transformation.
func RunMG(n, cycles int, team *simomp.Team, collapse bool) (MGResult, error) {
	if n < 4 || n&(n-1) != 0 {
		return MGResult{}, fmt.Errorf("npb: MG grid %d must be a power of two >= 4", n)
	}
	if cycles < 1 {
		return MGResult{}, fmt.Errorf("npb: MG needs at least one cycle")
	}
	h := newHierarchy(n)
	seed := DefaultSeed
	f := h.f[0]
	for i := 1; i < n; i++ {
		for j := 1; j < n; j++ {
			for k := 1; k < n; k++ {
				f.V[f.Idx(i, j, k)] = Randlc(&seed, MultA) - 0.5
			}
		}
	}
	var res MGResult
	for c := 0; c < cycles; c++ {
		h.vcycle(0, team, collapse)
		MGResidual(h.u[0], f, h.r[0], team, collapse)
		res.ResidualNorms = append(res.ResidualNorms, l2norm(h.r[0]))
	}
	return res, nil
}

func l2norm(g *MGGrid) float64 {
	s := 0.0
	n := g.N
	for i := 1; i < n; i++ {
		for j := 1; j < n; j++ {
			for k := 1; k < n; k++ {
				v := g.V[g.Idx(i, j, k)]
				s += v * v
			}
		}
	}
	return math.Sqrt(s / float64((n-1)*(n-1)*(n-1)))
}
