package npb

import (
	"fmt"

	"maia/internal/core"
	"maia/internal/machine"
	"maia/internal/offload"
	"maia/internal/vclock"
)

// The offload-mode MG experiments (Sections 6.9.1.4–6.9.1.6, Figures
// 25–27): the paper ports NPB MG to offload mode in three granularities
// and shows the offload overhead — dominated by PCIe data motion — buries
// the coprocessor's gains.

// MGOffloadVariant selects which region of MG is offloaded.
type MGOffloadVariant int

const (
	// OffloadLoop offloads the most time-consuming do-loop inside the
	// resid subroutine: the least data per occurrence, but the most
	// occurrences and the most total data.
	OffloadLoop MGOffloadVariant = iota
	// OffloadSubroutine offloads all of resid: fewer occurrences, less
	// total data.
	OffloadSubroutine
	// OffloadWhole offloads the entire computation: input data crosses
	// PCIe once and results come back once.
	OffloadWhole
)

// String implements fmt.Stringer with the paper's labels.
func (v MGOffloadVariant) String() string {
	switch v {
	case OffloadLoop:
		return "offload one OpenMP loop"
	case OffloadSubroutine:
		return "offload subroutine"
	case OffloadWhole:
		return "offload whole computation"
	default:
		return fmt.Sprintf("MGOffloadVariant(%d)", int(v))
	}
}

// MGOffloadVariants lists the three versions in Figure 25 order.
func MGOffloadVariants() []MGOffloadVariant {
	return []MGOffloadVariant{OffloadLoop, OffloadSubroutine, OffloadWhole}
}

// MGOffloadResult is one offload-mode MG datapoint.
type MGOffloadResult struct {
	Variant MGOffloadVariant
	Report  offload.Report
	Time    vclock.Time
	Gflops  float64
}

// MGOffload prices offload-mode MG at class c, offloading to a
// 177-thread Phi0 partition (the native-mode sweet spot). Engine
// options (e.g. offload.WithTracer) apply to the engine driving the
// offloads.
func MGOffload(m core.Model, c Class, node *machine.Node, variant MGOffloadVariant, opts ...offload.EngineOption) (MGOffloadResult, error) {
	s, err := SizeOf(MG, c)
	if err != nil {
		return MGOffloadResult{}, err
	}
	w, err := Profile(MG, c)
	if err != nil {
		return MGOffloadResult{}, err
	}
	part := machine.PhiThreadsPartition(node, machine.Phi0, 177)
	// Offloaded kernels run noticeably below native Phi speed: every
	// OpenMP region inside the offloaded code dispatches through the COI
	// offload runtime, and a host proxy thread participates in each
	// region's lifecycle. Figure 25 shows the whole-computation offload
	// at roughly half of native Phi throughput; that gap is this derate.
	const offloadKernelEff = 0.55
	kernelTotal := m.Time(w, part) / offloadKernelEff

	gridBytes := int64(8 * s.Points())
	levels := int64(log2(s.Grid[0]) - 1)
	if levels < 1 {
		levels = 1
	}

	// Transfer plan per V-cycle, by variant. The loop variant re-ships
	// its operand grids on every one of its many small offloads; the
	// subroutine variant ships whole grids a few times; the whole-program
	// variant ships only initial input and final output.
	type plan struct {
		invocationsPerCycle int64
		inPerInv, outPerInv int64
		oneShot             bool
	}
	var p plan
	switch variant {
	case OffloadLoop:
		p = plan{invocationsPerCycle: 8 * levels, inPerInv: 2 * gridBytes / levels, outPerInv: gridBytes / levels}
	case OffloadSubroutine:
		p = plan{invocationsPerCycle: 2, inPerInv: 2 * gridBytes, outPerInv: gridBytes}
	case OffloadWhole:
		p = plan{invocationsPerCycle: 1, inPerInv: gridBytes, outPerInv: gridBytes, oneShot: true}
	default:
		return MGOffloadResult{}, fmt.Errorf("npb: unknown offload variant %d", int(variant))
	}

	eng := offload.NewEngine(offload.DefaultConfig(), opts...)
	var total vclock.Time
	cycles := int64(s.Iters)
	if p.oneShot {
		t, err := eng.Offload(p.inPerInv, p.outPerInv, kernelTotal, nil)
		if err != nil {
			return MGOffloadResult{}, err
		}
		total = t
	} else {
		kernelPerInv := kernelTotal / vclock.Time(cycles*p.invocationsPerCycle)
		for inv := int64(0); inv < cycles*p.invocationsPerCycle; inv++ {
			t, err := eng.Offload(p.inPerInv, p.outPerInv, kernelPerInv, nil)
			if err != nil {
				return MGOffloadResult{}, err
			}
			total += t
		}
	}
	return MGOffloadResult{
		Variant: variant,
		Report:  eng.Report(),
		Time:    total,
		Gflops:  w.Flops / total.Seconds() / 1e9,
	}, nil
}

// MGOffloadPipelined is the mitigation the paper's conclusions point
// toward: the subroutine-granularity offload with its transfers
// double-buffered against kernel execution (signal/wait offload
// clauses). Same data, same invocations, overlapped schedule. Engine
// options (e.g. offload.WithTracer) apply to the engine driving the
// offloads.
func MGOffloadPipelined(m core.Model, c Class, node *machine.Node, opts ...offload.EngineOption) (MGOffloadResult, error) {
	s, err := SizeOf(MG, c)
	if err != nil {
		return MGOffloadResult{}, err
	}
	w, err := Profile(MG, c)
	if err != nil {
		return MGOffloadResult{}, err
	}
	part := machine.PhiThreadsPartition(node, machine.Phi0, 177)
	const offloadKernelEff = 0.55
	kernelTotal := m.Time(w, part) / offloadKernelEff

	gridBytes := int64(8 * s.Points())
	chunks := 2 * s.Iters // the subroutine variant's invocation count
	eng := offload.NewEngine(offload.DefaultConfig(), opts...)
	total, err := eng.OffloadPipelined(chunks, 2*gridBytes, gridBytes,
		kernelTotal/vclock.Time(chunks), nil)
	if err != nil {
		return MGOffloadResult{}, err
	}
	return MGOffloadResult{
		Variant: OffloadSubroutine,
		Report:  eng.Report(),
		Time:    total,
		Gflops:  w.Flops / total.Seconds() / 1e9,
	}, nil
}
