package npb

import (
	"maia/internal/core"
	"maia/internal/machine"
	"maia/internal/simomp"
	"maia/internal/vclock"
)

// OpenMP driver: prices a full NPB OpenMP-mode run (Figure 19) as the
// core-model compute time plus the per-iteration OpenMP region overheads
// of the benchmark's loop structure, using the simomp overhead model.

// regionStructure returns the per-iteration count of parallel-for
// regions and of reduction regions, from each benchmark's loop
// structure. LU's wavefront sweeps spawn a region per hyperplane, which
// is exactly why its runtime overhead explodes at 236 threads.
func regionStructure(b Benchmark, s Size) (regions, reductions int) {
	n := s.Grid[0]
	switch b {
	case EP:
		return 1, 1
	case CG:
		// 25 CG steps: matvec + 2 axpy regions, 3 dot reductions each.
		return 25 * 3, 25 * 3
	case MG:
		// Per V-cycle: ~5 stencil regions per level.
		levels := log2(n) - 1
		if levels < 1 {
			levels = 1
		}
		return 5 * levels, 1
	case FT:
		return 4, 1 // three pencil passes + evolve, checksum reduction
	case IS:
		return 2, 1
	case BT, SP:
		return 4, 0 // forcing + three directional sweeps
	case LU:
		// Two SSOR sweeps, one region per i+j+k hyperplane.
		return 2 * (3*(n-1) + 1), 1
	default:
		return 1, 0
	}
}

// OMPResult is one OpenMP-mode datapoint of Figure 19.
type OMPResult struct {
	Bench     Benchmark
	Class     Class
	Partition machine.Partition
	Time      vclock.Time
	Gflops    float64
}

// OMPTime prices benchmark b at class c on the partition.
func OMPTime(m core.Model, b Benchmark, c Class, part machine.Partition) (OMPResult, error) {
	w, err := Profile(b, c)
	if err != nil {
		return OMPResult{}, err
	}
	s, err := SizeOf(b, c)
	if err != nil {
		return OMPResult{}, err
	}
	compute := m.Time(w, part)

	rt := simomp.New(part)
	regions, reductions := regionStructure(b, s)
	perIter := vclock.Time(regions)*rt.SyncOverhead(simomp.ParallelFor) +
		vclock.Time(reductions)*rt.SyncOverhead(simomp.Reduction)
	total := compute + vclock.Time(s.Iters)*perIter

	return OMPResult{
		Bench: b, Class: c, Partition: part,
		Time:   total,
		Gflops: w.Flops / total.Seconds() / 1e9,
	}, nil
}

// OMPThreadSweep returns the Figure 19 series for one benchmark on the
// Phi: Gflop/s at 1–4 threads per core (59/118/177/236 threads), plus
// the host reference at one thread per core.
func OMPThreadSweep(m core.Model, b Benchmark, c Class, node *machine.Node) (host OMPResult, phi []OMPResult, err error) {
	host, err = OMPTime(m, b, c, machine.HostPartition(node, 1))
	if err != nil {
		return OMPResult{}, nil, err
	}
	for _, threads := range []int{59, 118, 177, 236} {
		r, err := OMPTime(m, b, c, machine.PhiThreadsPartition(node, machine.Phi0, threads))
		if err != nil {
			return OMPResult{}, nil, err
		}
		phi = append(phi, r)
	}
	return host, phi, nil
}

// BestPhi returns the best Phi datapoint of a sweep.
func BestPhi(phi []OMPResult) OMPResult {
	best := phi[0]
	for _, r := range phi[1:] {
		if r.Gflops > best.Gflops {
			best = r
		}
	}
	return best
}

// MGCollapseTime prices the Figure 24 experiment: MG with and without
// collapsing the outer two loops of every stencil sweep. The effect is
// pure scheduling granularity, so it is computed by actually scheduling
// each level's loop through the simomp machinery: uncollapsed loops have
// only `level` iterations — fewer than the Phi's thread count on all but
// the finest grids — while collapsed loops have level² iterations and
// divide evenly.
func MGCollapseTime(m core.Model, c Class, part machine.Partition, collapse bool) (vclock.Time, error) {
	s, err := SizeOf(MG, c)
	if err != nil {
		return 0, err
	}
	w, err := Profile(MG, c)
	if err != nil {
		return 0, err
	}
	n := s.Grid[0]

	// Split the V-cycle's work across levels: level g (size g³) carries
	// work proportional to g³; all levels together sum to ~8/7 of the
	// finest.
	var levelSizes []int
	totalPts := 0.0
	for g := n; g >= 4; g /= 2 {
		levelSizes = append(levelSizes, g)
		totalPts += float64(g) * float64(g) * float64(g)
	}
	// Ideal compute time for the whole run, to be distributed over
	// levels and iterations.
	ideal := m.Time(w, part)

	rt := simomp.New(part)
	team := simomp.NewTeam(rt)
	const regionsPerLevel = 5
	var perCycle vclock.Time
	for _, g := range levelSizes {
		pts := float64(g) * float64(g) * float64(g)
		levelTime := ideal * vclock.Time(pts/totalPts) / vclock.Time(s.Iters)
		for rgn := 0; rgn < regionsPerLevel; rgn++ {
			// rgnTime is the region's PARALLEL span on a perfectly
			// balanced schedule; the per-iteration serial cost is that
			// span times the team width divided by the iteration count,
			// so static-schedule rounding (ceil(iters/threads) chunks)
			// surfaces as the imbalance the collapse removes.
			rgnTime := levelTime / regionsPerLevel
			var iters int
			if collapse {
				iters = g * g
			} else {
				iters = g
			}
			iterCost := rgnTime * vclock.Time(part.Threads()) / vclock.Time(iters)
			if collapse {
				// Fused loops recompute both indices per iteration.
				iterCost *= 1.015
			}
			perCycle += team.ParallelFor(iters, simomp.ForOpts{
				Sched:    simomp.Static,
				IterCost: iterCost,
			}, nil)
		}
	}
	return vclock.Time(s.Iters) * perCycle, nil
}

// MGCollapseGflops converts MGCollapseTime into the Gflop/s Figure 24
// reports.
func MGCollapseGflops(m core.Model, c Class, part machine.Partition, collapse bool) (float64, error) {
	t, err := MGCollapseTime(m, c, part, collapse)
	if err != nil {
		return 0, err
	}
	w, err := Profile(MG, c)
	if err != nil {
		return 0, err
	}
	return w.Flops / t.Seconds() / 1e9, nil
}
