package npb

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBlockRange(t *testing.T) {
	// Covers the whole range, contiguous, balanced within 1.
	f := func(nRaw, rRaw uint8) bool {
		n := int(nRaw) + 1
		ranks := int(rRaw)%n + 1
		prev := 0
		minSz, maxSz := n+1, -1
		for id := 0; id < ranks; id++ {
			lo, hi := blockRange(n, ranks, id)
			if lo != prev || hi < lo {
				return false
			}
			if sz := hi - lo; sz < minSz {
				minSz = sz
			}
			if sz := hi - lo; sz > maxSz {
				maxSz = sz
			}
			prev = hi
		}
		return prev == n && maxSz-minSz <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// CG as a real MPI program reproduces the serial zeta for several rank
// counts, including ones that do not divide the matrix order.
func TestCGMPIMatchesSerial(t *testing.T) {
	m := MakeCGMatrix(600, 6)
	ser, err := RunCG(m, 10, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 2, 3, 7} {
		par, err := RunCGMPI(m, 10, 4, ranks)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(par.Zeta-ser.Zeta) > 1e-9*math.Abs(ser.Zeta) {
			t.Fatalf("%d ranks: zeta %v != serial %v", ranks, par.Zeta, ser.Zeta)
		}
		if par.Residual > 1e-6 {
			t.Fatalf("%d ranks: residual %v", ranks, par.Residual)
		}
	}
}

func TestCGMPIValidation(t *testing.T) {
	m := MakeCGMatrix(50, 4)
	if _, err := RunCGMPI(m, 10, 0, 2); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := RunCGMPI(m, 10, 1, 51); err == nil {
		t.Error("more ranks than rows accepted")
	}
}

// FT as a real MPI program (slab decomposition + all-to-all transpose)
// reproduces the serial checksums.
func TestFTMPIMatchesSerial(t *testing.T) {
	const nx, ny, nz, steps = 16, 8, 16, 3
	ser, err := RunFT(nx, ny, nz, steps, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 2, 4, 8} {
		par, err := RunFTMPI(nx, ny, nz, steps, ranks)
		if err != nil {
			t.Fatal(err)
		}
		for s := range ser.Checksums {
			d := ser.Checksums[s] - par.Checksums[s]
			if math.Hypot(real(d), imag(d)) > 1e-9 {
				t.Fatalf("%d ranks: checksum %d = %v, serial %v", ranks, s, par.Checksums[s], ser.Checksums[s])
			}
			if math.Abs(ser.Energies[s]-par.Energies[s]) > 1e-9*ser.Energies[s] {
				t.Fatalf("%d ranks: energy %d = %v, serial %v", ranks, s, par.Energies[s], ser.Energies[s])
			}
		}
	}
}

func TestFTMPIValidation(t *testing.T) {
	if _, err := RunFTMPI(12, 8, 8, 1, 2); err == nil {
		t.Error("non-power-of-two dim accepted")
	}
	if _, err := RunFTMPI(16, 8, 16, 1, 3); err == nil {
		t.Error("non-dividing rank count accepted")
	}
	if _, err := RunFTMPI(16, 8, 16, 0, 2); err == nil {
		t.Error("zero steps accepted")
	}
}

// IS as a real MPI program (bucket exchange) reproduces the serial sort
// exactly.
func TestISMPIMatchesSerial(t *testing.T) {
	const n, maxKey, iters = 1 << 12, 1 << 8, 10
	keys := ISKeys(n, maxKey)
	ser, err := RunIS(keys, maxKey, iters, testTeam())
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 2, 4, 8} {
		par, err := RunISMPI(n, maxKey, iters, ranks)
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Sorted) != len(ser.Sorted) {
			t.Fatalf("%d ranks: length %d != %d", ranks, len(par.Sorted), len(ser.Sorted))
		}
		for i := range ser.Sorted {
			if par.Sorted[i] != ser.Sorted[i] {
				t.Fatalf("%d ranks: sorted[%d] = %d, serial %d", ranks, i, par.Sorted[i], ser.Sorted[i])
			}
		}
	}
}

func TestISMPIValidation(t *testing.T) {
	if _, err := RunISMPI(100, 64, 1, 3); err == nil {
		t.Error("non-dividing rank count accepted")
	}
	if _, err := RunISMPI(0, 64, 1, 2); err == nil {
		t.Error("empty input accepted")
	}
}

// The distributed kernels are deterministic across runs.
func TestMPIKernelsDeterministic(t *testing.T) {
	m := MakeCGMatrix(300, 5)
	a, err := RunCGMPI(m, 10, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCGMPI(m, 10, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Zeta != b.Zeta {
		t.Fatalf("CG-MPI nondeterministic: %v vs %v", a.Zeta, b.Zeta)
	}
}

// MG as a real MPI program (slab halos + coarse gather) reproduces the
// serial residual history.
func TestMGMPIMatchesSerial(t *testing.T) {
	const n, cycles = 16, 3
	ser, err := RunMG(n, cycles, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 2, 4} {
		par, err := RunMGMPI(n, cycles, ranks)
		if err != nil {
			t.Fatal(err)
		}
		for c := range ser.ResidualNorms {
			rel := math.Abs(par.ResidualNorms[c]-ser.ResidualNorms[c]) / ser.ResidualNorms[c]
			if rel > 1e-10 {
				t.Fatalf("%d ranks: cycle %d residual %v, serial %v (rel %v)",
					ranks, c, par.ResidualNorms[c], ser.ResidualNorms[c], rel)
			}
		}
	}
}

func TestMGMPIValidation(t *testing.T) {
	if _, err := RunMGMPI(12, 1, 2); err == nil {
		t.Error("non-power-of-two grid accepted")
	}
	if _, err := RunMGMPI(16, 1, 3); err == nil {
		t.Error("non-dividing rank count accepted")
	}
	if _, err := RunMGMPI(16, 0, 2); err == nil {
		t.Error("zero cycles accepted")
	}
	if _, err := RunMGMPI(4, 1, 2); err == nil {
		t.Error("too-small grid accepted")
	}
}

// LU as a pipelined-wavefront MPI program reproduces the serial residual
// history exactly (the distributed plane order is another topological
// order of the same dependency DAG).
func TestLUMPIMatchesSerial(t *testing.T) {
	const n, steps = 8, 3
	ser, err := RunLU(n, steps, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 2, 4} {
		par, err := RunLUMPI(n, steps, ranks)
		if err != nil {
			t.Fatal(err)
		}
		for s := range ser {
			if math.Abs(par[s]-ser[s]) > 1e-13*ser[s] {
				t.Fatalf("%d ranks: step %d residual %v, serial %v", ranks, s, par[s], ser[s])
			}
		}
	}
	if _, err := RunLUMPI(8, 0, 2); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := RunLUMPI(8, 1, 9); err == nil {
		t.Error("too many ranks accepted")
	}
}

// BT as a distributed block-Thomas ADI program reproduces the serial
// norm history exactly.
func TestBTMPIMatchesSerial(t *testing.T) {
	const n, steps = 10, 3
	ser, err := RunBT(n, steps, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 2, 5} {
		par, err := RunBTMPI(n, steps, ranks)
		if err != nil {
			t.Fatal(err)
		}
		for s := range ser {
			if math.Abs(par[s]-ser[s]) > 1e-12*math.Max(ser[s], 1e-30) {
				t.Fatalf("%d ranks: step %d norm %v, serial %v", ranks, s, par[s], ser[s])
			}
		}
	}
	if _, err := RunBTMPI(10, 1, 11); err == nil {
		t.Error("too many ranks accepted")
	}
}

// EP-MPI: exact counts, sums to reduction rounding.
func TestEPMPIMatchesSerial(t *testing.T) {
	const pairs = 1 << 20
	ser, err := RunEPSerial(pairs)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 2, 4} {
		par, err := RunEPMPI(pairs, ranks)
		if err != nil {
			t.Fatal(err)
		}
		if par.Accepted != ser.Accepted || par.Counts != ser.Counts || par.Pairs != ser.Pairs {
			t.Fatalf("%d ranks: counts differ", ranks)
		}
		if math.Abs(par.Sx-ser.Sx) > 1e-9 || math.Abs(par.Sy-ser.Sy) > 1e-9 {
			t.Fatalf("%d ranks: sums (%v, %v) vs serial (%v, %v)", ranks, par.Sx, par.Sy, ser.Sx, ser.Sy)
		}
	}
	if _, err := RunEPMPI(100, 2); err == nil {
		t.Error("bad pair count accepted")
	}
}

// SP as a pipelined pentadiagonal ADI program reproduces the serial norm
// history exactly — completing genuine distributed implementations for
// all eight NPB kernels.
func TestSPMPIMatchesSerial(t *testing.T) {
	const n, steps = 12, 3
	ser, err := RunSP(n, steps, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 2, 3, 6} {
		par, err := RunSPMPI(n, steps, ranks)
		if err != nil {
			t.Fatal(err)
		}
		for s := range ser {
			if math.Abs(par[s]-ser[s]) > 1e-12*math.Max(ser[s], 1e-30) {
				t.Fatalf("%d ranks: step %d norm %v, serial %v", ranks, s, par[s], ser[s])
			}
		}
	}
	if _, err := RunSPMPI(12, 1, 7); err == nil {
		t.Error("too many ranks accepted")
	}
	if _, err := RunSPMPI(4, 1, 1); err == nil {
		t.Error("tiny grid accepted")
	}
}
