package npb

import (
	"testing"
)

// Allocation-regression guards for the pooled kernels. Grids and
// pencil scratch come from the package free lists, so the marginal
// cost of one more FT time step or MG V-cycle must stay near zero —
// these tests pin that by differencing runs with k and k+1 iterations,
// which cancels the (pool-warming) setup cost.

func runAllocsDelta(t testing.TB, run func(iters int)) float64 {
	// Warm the free lists so neither measured run pays first-use cost.
	run(1)
	base := testing.AllocsPerRun(3, func() { run(1) })
	more := testing.AllocsPerRun(3, func() { run(3) })
	return (more - base) / 2
}

// TestFTStepAllocBound pins the allocations of one steady-state FT time
// step (evolution + inverse FFT3D + checksum) on warm pools. The
// twiddle tables are cached and the work grid is reused across steps,
// so a step's marginal cost is bookkeeping only.
func TestFTStepAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; bound asserted in normal builds")
	}
	perStep := runAllocsDelta(t, func(steps int) {
		if _, err := RunFT(16, 16, 16, steps, nil); err != nil {
			t.Fatal(err)
		}
	})
	if perStep > 32 {
		t.Errorf("FT time step allocates %.1f allocs/step, want <= 32", perStep)
	}
}

// TestMGVCycleAllocBound pins the allocations of one steady-state MG
// V-cycle. The hierarchy's level grids are allocated once up front, so
// a cycle's marginal cost is the fixed set of sweep closures passed to
// forPlanes (~25 at four levels) — NOT proportional to grid points. A
// per-cell or per-plane allocation regression lands in the thousands.
func TestMGVCycleAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; bound asserted in normal builds")
	}
	perCycle := runAllocsDelta(t, func(cycles int) {
		if _, err := RunMG(16, cycles, nil, false); err != nil {
			t.Fatal(err)
		}
	})
	if perCycle > 48 {
		t.Errorf("MG V-cycle allocates %.1f allocs/cycle, want <= 48", perCycle)
	}
}

// BenchmarkFTStep reports the wall and allocation cost of RunFT with a
// single time step on warm pools (-benchmem view of the guard above).
func BenchmarkFTStep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunFT(16, 16, 16, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMGVCycle reports the wall and allocation cost of RunMG with
// a single V-cycle on warm pools.
func BenchmarkMGVCycle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunMG(16, 1, nil, false); err != nil {
			b.Fatal(err)
		}
	}
}
