package npb

import (
	"fmt"
	"math"

	"maia/internal/simomp"
)

// EP — the embarrassingly parallel kernel. It generates pairs of uniform
// deviates with RANDLC, maps accepted pairs through the Marsaglia polar
// method to Gaussian deviates, and tallies them by annulus. The only
// communication is the final sum reduction, which is why the paper uses
// it as the pure-compute yardstick.

// epBatchLog2 is MK from the reference code: deviates are generated in
// batches of 2^16 pairs so workers can seek independently into the
// stream.
const epBatchLog2 = 16

// epSeed is EP's own starting seed (the reference uses e, not pi).
const epSeed = 271828183.0

// EPResult is the benchmark's verification state.
type EPResult struct {
	Sx, Sy   float64   // sums of the Gaussian deviates
	Counts   [10]int64 // deviates per annulus
	Accepted int64     // pairs passing the unit-disk test
	Pairs    int64     // pairs generated
}

// Gaussians returns the total number of Gaussian deviates produced.
func (r EPResult) Gaussians() int64 {
	var n int64
	for _, c := range r.Counts {
		n += c
	}
	return n
}

// epBatch processes batch j (of 2^epBatchLog2 pairs) and accumulates into
// res. Each batch seeks the generator to its own offset, exactly like the
// reference implementation, so results are independent of the batch
// execution order.
func epBatch(j int64, res *EPResult) {
	const nk = 1 << epBatchLog2
	// Each pair consumes two deviates; batch j starts after 2*j*nk draws.
	x := RandSeek(epSeed, 2*j*nk)
	var buf [2 * nk]float64
	VRandlc(&x, MultA, buf[:])
	for i := 0; i < nk; i++ {
		x1 := 2*buf[2*i] - 1
		x2 := 2*buf[2*i+1] - 1
		t1 := x1*x1 + x2*x2
		if t1 <= 1 {
			t2 := math.Sqrt(-2 * math.Log(t1) / t1)
			t3 := x1 * t2
			t4 := x2 * t2
			l := int(math.Max(math.Abs(t3), math.Abs(t4)))
			res.Counts[l]++
			res.Accepted++
			res.Sx += t3
			res.Sy += t4
		}
	}
	res.Pairs += nk
}

// RunEPSerial runs EP over `pairs` random pairs on one thread.
func RunEPSerial(pairs int64) (EPResult, error) {
	if err := epCheck(pairs); err != nil {
		return EPResult{}, err
	}
	// Accumulate per batch and combine in batch order — the same
	// association as the parallel path, so both are bit-identical.
	batches := int(pairs >> epBatchLog2)
	var res EPResult
	for j := 0; j < batches; j++ {
		var p EPResult
		epBatch(int64(j), &p)
		res = combineEP(res, p)
	}
	return res, nil
}

// combineEP merges two partial results.
func combineEP(a, b EPResult) EPResult {
	a.Sx += b.Sx
	a.Sy += b.Sy
	a.Accepted += b.Accepted
	a.Pairs += b.Pairs
	for l, c := range b.Counts {
		a.Counts[l] += c
	}
	return a
}

// RunEP runs EP with the batches work-shared across a simomp team. The
// result is combined in deterministic batch order, so it is bit-identical
// to the serial run.
func RunEP(pairs int64, team *simomp.Team) (EPResult, error) {
	if err := epCheck(pairs); err != nil {
		return EPResult{}, err
	}
	batches := int(pairs >> epBatchLog2)
	partial := make([]EPResult, batches)
	team.ParallelFor(batches, simomp.ForOpts{Sched: simomp.Static}, func(j int) {
		epBatch(int64(j), &partial[j])
	})
	var res EPResult
	for _, p := range partial {
		res = combineEP(res, p)
	}
	return res, nil
}

func epCheck(pairs int64) error {
	if pairs < 1<<epBatchLog2 || pairs%(1<<epBatchLog2) != 0 {
		return fmt.Errorf("npb: EP pair count %d must be a positive multiple of 2^%d", pairs, epBatchLog2)
	}
	return nil
}
