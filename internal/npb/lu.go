package npb

import (
	"fmt"
	"math"

	"maia/internal/simomp"
)

// LU — the SSOR pseudo-application: symmetric successive over-relaxation
// sweeps over the steady 7-point, 5x5-block system A u = f. The forward
// sweep's lower-triangular dependence serializes cells along i+j+k
// hyperplanes, so parallelism is wavefront-shaped — the reason LU's
// parallel efficiency and vectorization trail BT/SP in the paper.

// LUState is one LU run's mutable state.
type LUState struct {
	N       int
	U, F    *Field5
	diag    mat5
	diagInv mat5
	off     mat5 // neighbor coupling block (same for all six neighbors)
	omega   float64
}

// NewLU initializes the benchmark state.
func NewLU(n int) (*LUState, error) {
	if n < 3 {
		return nil, fmt.Errorf("npb: LU grid %d too small", n)
	}
	st := &LUState{N: n, U: NewField5(n), F: NewField5(n), omega: 1.2}
	st.F.FillRandom()
	m := couplingMatrix()
	// Diagonally dominant block Laplacian: 6 neighbors of weight ~1.
	st.off = ident5(-1).add(m.scale(-0.1))
	st.diag = ident5(6.5).add(m.scale(0.3))
	st.diagInv = st.diag.invert()
	return st, nil
}

// sweep runs one SSOR pass in the given order (+1 forward, -1 backward).
// Cells on the same i+j+k hyperplane are independent, so each hyperplane
// is work-shared across the team, like the pipelined wavefronts of the
// reference code.
func (st *LUState) sweep(team *simomp.Team, dir int) {
	n := st.N
	planes := 3*(n-1) + 1
	// Each invocation carries its own scratch so hyperplane cells can be
	// relaxed concurrently.
	relaxSafe := func(i, j, k int) {
		var rhsL, tmpL [ncomp]float64
		off := st.U.Idx(i, j, k)
		copy(rhsL[:], st.F.V[off:off+ncomp])
		for _, d := range [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
			ni, nj, nk := i+d[0], j+d[1], k+d[2]
			if ni < 0 || nj < 0 || nk < 0 || ni >= n || nj >= n || nk >= n {
				continue
			}
			noff := st.U.Idx(ni, nj, nk)
			st.off.matvec(st.U.V[noff:noff+ncomp], tmpL[:])
			for c := 0; c < ncomp; c++ {
				rhsL[c] -= tmpL[c]
			}
		}
		st.diagInv.matvec(rhsL[:], tmpL[:])
		for c := 0; c < ncomp; c++ {
			st.U.V[off+c] += st.omega * (tmpL[c] - st.U.V[off+c])
		}
	}

	for pi := 0; pi < planes; pi++ {
		plane := pi
		if dir < 0 {
			plane = planes - 1 - pi
		}
		cells := hyperplaneCells(n, plane)
		if team == nil {
			for _, c := range cells {
				relaxSafe(c[0], c[1], c[2])
			}
		} else {
			team.ParallelFor(len(cells), simomp.ForOpts{Sched: simomp.Static}, func(x int) {
				c := cells[x]
				relaxSafe(c[0], c[1], c[2])
			})
		}
	}
}

// hyperplaneCells lists the cells with i+j+k == plane.
func hyperplaneCells(n, plane int) [][3]int {
	var cells [][3]int
	for i := 0; i < n; i++ {
		if plane-i < 0 {
			break
		}
		for j := 0; j < n; j++ {
			k := plane - i - j
			if k < 0 {
				break
			}
			if k < n {
				cells = append(cells, [3]int{i, j, k})
			}
		}
	}
	return cells
}

// ResidualNorm returns ||f - A u|| (RMS).
func (st *LUState) ResidualNorm() float64 {
	n := st.N
	var tmp [ncomp]float64
	s := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				off := st.U.Idx(i, j, k)
				var r [ncomp]float64
				st.diag.matvec(st.U.V[off:off+ncomp], tmp[:])
				for c := 0; c < ncomp; c++ {
					r[c] = st.F.V[off+c] - tmp[c]
				}
				for _, d := range [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
					ni, nj, nk := i+d[0], j+d[1], k+d[2]
					if ni < 0 || nj < 0 || nk < 0 || ni >= n || nj >= n || nk >= n {
						continue
					}
					noff := st.U.Idx(ni, nj, nk)
					st.off.matvec(st.U.V[noff:noff+ncomp], tmp[:])
					for c := 0; c < ncomp; c++ {
						r[c] -= tmp[c]
					}
				}
				for c := 0; c < ncomp; c++ {
					s += r[c] * r[c]
				}
			}
		}
	}
	return math.Sqrt(s / float64(n*n*n*ncomp))
}

// Step runs one SSOR iteration (forward + backward sweep).
func (st *LUState) Step(team *simomp.Team) {
	st.sweep(team, +1)
	st.sweep(team, -1)
}

// RunLU runs `steps` SSOR iterations and returns the residual norm after
// each — a converging sequence.
func RunLU(n, steps int, team *simomp.Team) ([]float64, error) {
	st, err := NewLU(n)
	if err != nil {
		return nil, err
	}
	res := make([]float64, 0, steps)
	for s := 0; s < steps; s++ {
		st.Step(team)
		res = append(res, st.ResidualNorm())
	}
	return res, nil
}
