package npb

import (
	"fmt"

	"maia/internal/simomp"
)

// SP — the scalar-pentadiagonal pseudo-application: the same ADI model
// problem as BT, but the implicit factors are five INDEPENDENT scalar
// pentadiagonal systems per line (one per component) arising from a
// fourth-order-damped discretization, instead of coupled 5x5 blocks.
// Less arithmetic per point than BT, same sweep structure.

// SPState is one SP run's mutable state.
type SPState struct {
	N                 int
	U, F              *Field5
	e2, e1, d, f1, f2 float64
	tau               float64
}

// NewSP initializes the benchmark state for an n³ grid.
func NewSP(n int) (*SPState, error) {
	if n < 5 {
		return nil, fmt.Errorf("npb: SP grid %d too small", n)
	}
	st := &SPState{N: n, U: NewField5(n), F: NewField5(n), tau: 0.5}
	st.U.FillRandom()
	st.F.FillRandom()
	h := 1.0 / float64(n+1)
	lambda := st.tau / (h * h) * 0.01
	eps := lambda / 8 // fourth-order damping strength
	// (I + tau*A): pentadiagonal, diagonally dominant.
	st.e2, st.f2 = eps, eps
	st.e1, st.f1 = -lambda-4*eps, -lambda-4*eps
	st.d = 1 + 2*lambda + 6*eps
	return st, nil
}

// Step advances one ADI step: forcing plus three directional passes of
// per-component pentadiagonal solves.
func (st *SPState) Step(team *simomp.Team) {
	n := st.N
	for i := range st.U.V {
		st.U.V[i] += st.tau * st.F.V[i]
	}
	for dim := 0; dim < 3; dim++ {
		solveLine := func(line int) {
			p, q := line/n, line%n
			buf := make([]float64, n)
			scratch := newPentaScratch(n)
			for comp := 0; comp < ncomp; comp++ {
				for c := 0; c < n; c++ {
					var off int
					switch dim {
					case 0:
						off = st.U.Idx(c, p, q)
					case 1:
						off = st.U.Idx(p, c, q)
					default:
						off = st.U.Idx(p, q, c)
					}
					buf[c] = st.U.V[off+comp]
				}
				pentaSolve(st.e2, st.e1, st.d, st.f1, st.f2, buf, scratch)
				for c := 0; c < n; c++ {
					var off int
					switch dim {
					case 0:
						off = st.U.Idx(c, p, q)
					case 1:
						off = st.U.Idx(p, c, q)
					default:
						off = st.U.Idx(p, q, c)
					}
					st.U.V[off+comp] = buf[c]
				}
			}
		}
		if team == nil {
			for line := 0; line < n*n; line++ {
				solveLine(line)
			}
		} else {
			team.ParallelFor(n*n, simomp.ForOpts{Sched: simomp.Static}, solveLine)
		}
	}
}

// RunSP runs `steps` time steps and returns the RMS norm after each.
func RunSP(n, steps int, team *simomp.Team) ([]float64, error) {
	st, err := NewSP(n)
	if err != nil {
		return nil, err
	}
	norms := make([]float64, 0, steps)
	for s := 0; s < steps; s++ {
		st.Step(team)
		norms = append(norms, st.U.L2())
	}
	return norms, nil
}
