package npb

import (
	"errors"
	"testing"

	"maia/internal/core"
	"maia/internal/machine"
)

func model() core.Model        { return core.DefaultModel() }
func node() *machine.Node      { return machine.NewNode() }
func hostP() machine.Partition { return machine.HostPartition(node(), 1) }
func phiP(t int) machine.Partition {
	return machine.PhiThreadsPartition(node(), machine.Phi0, t)
}

// --- problem table ---

func TestSizeTableComplete(t *testing.T) {
	for _, b := range Benchmarks() {
		for _, c := range Classes() {
			s, err := SizeOf(b, c)
			if err != nil {
				t.Errorf("SizeOf(%v, %v): %v", b, c, err)
				continue
			}
			if s.Points() <= 0 || s.Iters <= 0 {
				t.Errorf("SizeOf(%v, %v) = %+v", b, c, s)
			}
			w, err := Profile(b, c)
			if err != nil {
				t.Errorf("Profile(%v, %v): %v", b, c, err)
				continue
			}
			if w.Flops <= 0 {
				t.Errorf("Profile(%v, %v) has no flops", b, c)
			}
			if err := w.Validate(); err != nil {
				t.Errorf("Profile(%v, %v): %v", b, c, err)
			}
			if mem, err := MemoryBytes(b, c); err != nil || mem <= 0 {
				t.Errorf("MemoryBytes(%v, %v) = %d, %v", b, c, mem, err)
			}
		}
	}
}

// Classes grow monotonically in work.
func TestClassesGrow(t *testing.T) {
	for _, b := range Benchmarks() {
		prev := 0.0
		for _, c := range Classes() {
			w, err := Profile(b, c)
			if err != nil {
				t.Fatal(err)
			}
			if w.Flops <= prev {
				t.Errorf("%v: class %v flops %.3g not above previous %.3g", b, c, w.Flops, prev)
			}
			prev = w.Flops
		}
	}
}

// Section 6.8.2: FT class C needs ~10 GB, more than the Phi's 8 GB.
func TestFTClassCFootprint(t *testing.T) {
	mem, err := MemoryBytes(FT, ClassC)
	if err != nil {
		t.Fatal(err)
	}
	gb := float64(mem) / (1 << 30)
	if gb < 9 || gb > 11 {
		t.Errorf("FT.C footprint = %.1f GB, want ~10", gb)
	}
}

// --- Figure 19: NPB-OMP ---

func TestFig19HostWinsExceptMG(t *testing.T) {
	m := model()
	n := node()
	for _, b := range Fig19Benchmarks() {
		host, phi, err := OMPThreadSweep(m, b, ClassC, n)
		if err != nil {
			t.Fatal(err)
		}
		best := BestPhi(phi)
		ratio := host.Gflops / best.Gflops
		if b == MG {
			if ratio >= 1 {
				t.Errorf("MG: host/bestPhi = %.2f, want Phi to win (paper: 23.5 vs 29.9 GF)", ratio)
			}
		} else if ratio <= 1 {
			t.Errorf("%v: host/bestPhi = %.2f, want host to win", b, ratio)
		}
	}
}

func TestFig19PhiThreadBehaviour(t *testing.T) {
	m := model()
	n := node()
	for _, b := range Fig19Benchmarks() {
		_, phi, err := OMPThreadSweep(m, b, ClassC, n)
		if err != nil {
			t.Fatal(err)
		}
		// One thread per core is the floor in native mode.
		min := phi[0]
		for _, r := range phi[1:] {
			if r.Gflops < min.Gflops {
				min = r
			}
		}
		if min.Partition.ThreadsPerCore != 1 {
			t.Errorf("%v: minimum at %v, want 1 thread/core", b, min.Partition)
		}
		// The sweet spot is 3 or 4 threads per core, never 1 or 2.
		best := BestPhi(phi)
		if tpc := best.Partition.ThreadsPerCore; tpc < 3 {
			t.Errorf("%v: best at %d threads/core, want 3 or 4", b, tpc)
		}
	}
}

func TestFig19BTBestCGWorstOnPhi(t *testing.T) {
	m := model()
	n := node()
	gf := map[Benchmark]float64{}
	for _, b := range Fig19Benchmarks() {
		_, phi, err := OMPThreadSweep(m, b, ClassC, n)
		if err != nil {
			t.Fatal(err)
		}
		gf[b] = BestPhi(phi).Gflops
	}
	for _, b := range Fig19Benchmarks() {
		if b != BT && gf[b] >= gf[BT] {
			t.Errorf("%v (%.1f GF) should not beat BT (%.1f GF) on the Phi", b, gf[b], gf[BT])
		}
		if b != CG && gf[b] <= gf[CG] {
			t.Errorf("%v (%.1f GF) should beat CG (%.1f GF) on the Phi", b, gf[b], gf[CG])
		}
	}
}

// --- Figure 20: NPB-MPI ---

func TestFig20RankValidation(t *testing.T) {
	cases := []struct {
		b     Benchmark
		ranks int
		ok    bool
	}{
		{CG, 64, true}, {CG, 128, true}, {CG, 100, false},
		{BT, 64, true}, {BT, 121, true}, {BT, 169, true}, {BT, 225, true}, {BT, 128, false},
		{SP, 121, true}, {SP, 120, false},
		{MG, 3, false}, {FT, 0, false},
	}
	for _, c := range cases {
		if got := ValidRankCount(c.b, c.ranks); got != c.ok {
			t.Errorf("ValidRankCount(%v, %d) = %v, want %v", c.b, c.ranks, got, c.ok)
		}
	}
	if _, err := MPIRun(model(), BT, ClassC, machine.Phi0, 128, node()); err == nil {
		t.Error("BT with 128 ranks accepted")
	}
}

// Figure 20's headline failure: FT class C cannot run on the Phi.
func TestFig20FTOOMOnPhi(t *testing.T) {
	_, err := MPIRun(model(), FT, ClassC, machine.Phi0, 64, node())
	if !errors.Is(err, ErrOOM) {
		t.Fatalf("FT.C on Phi: err = %v, want ErrOOM", err)
	}
	// It runs on the host's 32 GB. (Skipped under the race detector:
	// the run materializes multi-GB transpose buffers and the detector's
	// shadow memory would OOM small machines.)
	if !raceEnabled {
		if _, err := MPIRun(model(), FT, ClassC, machine.Host, 16, node()); err != nil {
			t.Fatalf("FT.C on host failed: %v", err)
		}
	}
	// And smaller classes fit on the Phi.
	if _, err := MPIRun(model(), FT, ClassA, machine.Phi0, 64, node()); err != nil {
		t.Fatalf("FT.A on Phi failed: %v", err)
	}
}

func TestFig20HostBeatsPhiMPI(t *testing.T) {
	m := model()
	n := node()
	for _, b := range []Benchmark{CG, LU, BT, SP} {
		host, err := MPIRun(m, b, ClassC, machine.Host, 16, n)
		if err != nil {
			t.Fatal(err)
		}
		ranks := 64
		phi, err := MPIRun(m, b, ClassC, machine.Phi0, ranks, n)
		if err != nil {
			t.Fatal(err)
		}
		if host.Gflops <= phi.Gflops {
			t.Errorf("%v: host16 %.1f GF should beat phi%d %.1f GF", b, host.Gflops, ranks, phi.Gflops)
		}
	}
}

func TestMPIRunDeterministic(t *testing.T) {
	m := model()
	n := node()
	a, err := MPIRun(m, CG, ClassB, machine.Phi0, 64, n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MPIRun(m, CG, ClassB, machine.Phi0, 64, n)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time {
		t.Fatalf("MPI run nondeterministic: %v vs %v", a.Time, b.Time)
	}
}

// --- Figure 24: loop collapse ---

func TestFig24CollapseGains(t *testing.T) {
	m := model()
	// Collapse helps on the Phi at every thread count...
	for _, th := range []int{59, 118, 177, 236} {
		g0, err := MGCollapseGflops(m, ClassC, phiP(th), false)
		if err != nil {
			t.Fatal(err)
		}
		g1, err := MGCollapseGflops(m, ClassC, phiP(th), true)
		if err != nil {
			t.Fatal(err)
		}
		if g1 <= g0 {
			t.Errorf("phi %dt: collapse gain %.1f%%, want positive", th, (g1/g0-1)*100)
		}
	}
	// ...by roughly the paper's 25%+ at 4 threads per core...
	g0, _ := MGCollapseGflops(m, ClassC, phiP(236), false)
	g1, _ := MGCollapseGflops(m, ClassC, phiP(236), true)
	if gain := (g1/g0 - 1) * 100; gain < 20 {
		t.Errorf("236t collapse gain = %.1f%%, want >= 20%%", gain)
	}
	// ...and slightly hurts the host (paper: -1%).
	h0, _ := MGCollapseGflops(m, ClassC, hostP(), false)
	h1, _ := MGCollapseGflops(m, ClassC, hostP(), true)
	if h1 >= h0 {
		t.Errorf("host: collapse should cost a little (got %+.1f%%)", (h1/h0-1)*100)
	}
	if h1 < 0.95*h0 {
		t.Errorf("host: collapse penalty too big: %+.1f%%", (h1/h0-1)*100)
	}
}

// Figure 24's second finding: 59/118/177/236 threads far outperform
// 60/120/180/240 (the OS core).
func TestFig24OSCorePlacements(t *testing.T) {
	m := model()
	for _, pair := range [][2]int{{59, 60}, {118, 120}, {177, 180}, {236, 240}} {
		clean, err := MGCollapseGflops(m, ClassC, phiP(pair[0]), false)
		if err != nil {
			t.Fatal(err)
		}
		dirty, err := MGCollapseGflops(m, ClassC, phiP(pair[1]), false)
		if err != nil {
			t.Fatal(err)
		}
		if clean <= dirty*1.1 {
			t.Errorf("%dt (%.1f GF) should clearly beat %dt (%.1f GF)",
				pair[0], clean, pair[1], dirty)
		}
	}
}

// --- Figures 25-27: MG modes and offload ---

func TestFig25MGModes(t *testing.T) {
	m := model()
	n := node()
	host, err := OMPTime(m, MG, ClassC, machine.HostPartition(n, 1))
	if err != nil {
		t.Fatal(err)
	}
	ht, err := OMPTime(m, MG, ClassC, machine.HostPartition(n, 2))
	if err != nil {
		t.Fatal(err)
	}
	phi, err := OMPTime(m, MG, ClassC, phiP(177))
	if err != nil {
		t.Fatal(err)
	}
	// Native Phi beats native host (paper: 29.9 vs 23.5 GF, +27%).
	if phi.Gflops <= host.Gflops {
		t.Errorf("MG native: phi %.1f GF should beat host %.1f GF", phi.Gflops, host.Gflops)
	}
	// HyperThreading costs the host a little (paper: -6%).
	if ht.Gflops >= host.Gflops || ht.Gflops < 0.85*host.Gflops {
		t.Errorf("HT = %.1f GF vs host %.1f GF, want a small deficit", ht.Gflops, host.Gflops)
	}
	// Every offload variant is far below both native modes.
	for _, v := range MGOffloadVariants() {
		r, err := MGOffload(m, ClassC, n, v)
		if err != nil {
			t.Fatal(err)
		}
		if r.Gflops >= host.Gflops || r.Gflops >= phi.Gflops {
			t.Errorf("%v: %.2f GF should trail both native modes", v, r.Gflops)
		}
	}
}

func TestFig26OffloadOverheadOrdering(t *testing.T) {
	m := model()
	n := node()
	var results []MGOffloadResult
	for _, v := range MGOffloadVariants() {
		r, err := MGOffload(m, ClassC, n, v)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
		// All three overhead components are present.
		if r.Report.HostTime <= 0 || r.Report.TransferTime <= 0 || r.Report.PhiTime <= 0 {
			t.Errorf("%v: incomplete overhead decomposition: %+v", v, r.Report)
		}
	}
	// Loop >> subroutine >> whole, in overhead, invocations and data.
	for i := 1; i < len(results); i++ {
		a, b := results[i-1], results[i]
		if a.Report.Overhead() <= b.Report.Overhead() {
			t.Errorf("%v overhead (%v) should exceed %v (%v)",
				a.Variant, a.Report.Overhead(), b.Variant, b.Report.Overhead())
		}
		if a.Report.Invocations <= b.Report.Invocations {
			t.Errorf("%v invocations (%d) should exceed %v (%d)",
				a.Variant, a.Report.Invocations, b.Variant, b.Report.Invocations)
		}
		dataA := a.Report.BytesIn + a.Report.BytesOut
		dataB := b.Report.BytesIn + b.Report.BytesOut
		if dataA <= dataB {
			t.Errorf("%v data (%d) should exceed %v (%d)", a.Variant, dataA, b.Variant, dataB)
		}
	}
	// PCIe transfer dominates the fine-grained variant's overhead.
	loop := results[0].Report
	if loop.TransferTime < loop.HostTime && loop.TransferTime < loop.PhiTime {
		t.Error("loop-variant overhead should be transfer-dominated")
	}
}

func TestOMPTimeErrors(t *testing.T) {
	if _, err := OMPTime(model(), Benchmark(99), ClassC, hostP()); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := OMPTime(model(), MG, Class('Z'), hostP()); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestBenchmarkStrings(t *testing.T) {
	if EP.String() != "EP" || SP.String() != "SP" || Benchmark(42).String() == "" {
		t.Error("Benchmark.String wrong")
	}
	if ClassC.String() != "C" {
		t.Error("Class.String wrong")
	}
	if OffloadLoop.String() == "" || MGOffloadVariant(9).String() == "" {
		t.Error("variant String wrong")
	}
}

// The pipelined-offload extension: same invocations and data as the
// synchronous subroutine variant, meaningfully faster, still behind
// native Phi (PCIe volume, not scheduling, is the fundamental limit).
func TestMGOffloadPipelined(t *testing.T) {
	m := model()
	n := node()
	sync, err := MGOffload(m, ClassC, n, OffloadSubroutine)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := MGOffloadPipelined(m, ClassC, n)
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Time >= sync.Time {
		t.Fatalf("pipelined (%v) should beat synchronous (%v)", pipe.Time, sync.Time)
	}
	if pipe.Report.BytesIn != sync.Report.BytesIn || pipe.Report.Invocations != sync.Report.Invocations {
		t.Fatalf("pipelined run changed the transfer plan: %+v vs %+v", pipe.Report, sync.Report)
	}
	native, err := OMPTime(m, MG, ClassC, machine.PhiThreadsPartition(n, machine.Phi0, 177))
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Gflops >= native.Gflops {
		t.Fatalf("pipelined offload (%.1f GF) should still trail native Phi (%.1f GF)",
			pipe.Gflops, native.Gflops)
	}
}
