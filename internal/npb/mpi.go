package npb

import (
	"fmt"
	"math"

	"maia/internal/core"
	"maia/internal/machine"
	"maia/internal/simmpi"
	"maia/internal/vclock"
)

// MPI driver (Figure 20): each benchmark's per-iteration communication
// pattern runs for real through the simmpi runtime (one representative
// iteration; iterations are identical, so the total is iters times the
// per-iteration makespan), with the rank's compute share charged from
// the core model.

// ErrOOM is returned when a benchmark does not fit in the target
// device's memory — the paper's FT-on-Phi case (Section 6.8.2) and the
// large-message Alltoall failures (Figure 14).
var ErrOOM = fmt.Errorf("npb: problem does not fit in device memory")

// ValidRankCount reports whether the benchmark accepts this many ranks:
// powers of two for CG, MG, FT, LU; perfect squares for BT and SP.
func ValidRankCount(b Benchmark, ranks int) bool {
	if ranks < 1 {
		return false
	}
	switch b {
	case BT, SP:
		r := int(math.Round(math.Sqrt(float64(ranks))))
		return r*r == ranks
	case CG, MG, FT, LU:
		return ranks&(ranks-1) == 0
	default:
		return true
	}
}

// MPIResult is one MPI-mode datapoint of Figure 20.
type MPIResult struct {
	Bench  Benchmark
	Class  Class
	Device machine.Device
	Ranks  int
	Time   vclock.Time
	Gflops float64
}

// MPIRun prices benchmark b at class c with `ranks` MPI ranks on dev.
// On the Phi, ranks beyond 59 oversubscribe cores with hardware threads
// (64 ranks ≈ 2 per core, 128 ≈ 3, 225+ ≈ 4).
func MPIRun(m core.Model, b Benchmark, c Class, dev machine.Device, ranks int, node *machine.Node) (MPIResult, error) {
	if !ValidRankCount(b, ranks) {
		return MPIResult{}, fmt.Errorf("npb: %v does not accept %d ranks", b, ranks)
	}
	w, err := Profile(b, c)
	if err != nil {
		return MPIResult{}, err
	}
	s, err := SizeOf(b, c)
	if err != nil {
		return MPIResult{}, err
	}
	mem, err := MemoryBytes(b, c)
	if err != nil {
		return MPIResult{}, err
	}
	var devMem int64
	var part machine.Partition
	var tpc int
	if dev.IsPhi() {
		devMem = int64(node.PhiProc.MemGB) << 30
		part = machine.PhiThreadsPartition(node, dev, ranks)
		tpc = part.ThreadsPerCore
	} else {
		devMem = int64(node.HostMemGB) << 30
		threadsPerCore := 1
		if ranks > node.HostCores() {
			threadsPerCore = 2
		}
		cores := ranks
		if cores > node.HostCores() {
			cores = node.HostCores()
		}
		part = machine.HostCoresPartition(node, cores, threadsPerCore)
		tpc = threadsPerCore
	}
	// MPI ranks add a fixed per-rank library footprint on top of the
	// problem's arrays.
	if mem+int64(ranks)*(25<<20) > devMem {
		return MPIResult{}, fmt.Errorf("%w: %v.%v needs %.1f GB + MPI overhead, device has %d GB",
			ErrOOM, b, c, float64(mem)/(1<<30), devMem>>30)
	}

	// Compute share per iteration, identical on every rank (the NPB
	// decompositions are balanced).
	computePerIter := m.Time(w, part) / vclock.Time(s.Iters)

	// The iteration scripts only ever use payload sizes (results are
	// recycled unread), so the world runs in size-only transport mode.
	cfg := simmpi.Config{SizeOnlyPayloads: true}
	if dev.IsPhi() {
		cfg.Ranks = simmpi.PhiPlacement(dev, ranks, tpc)
	} else {
		cfg.Ranks = simmpi.HostPlacement(ranks, tpc)
	}
	world, err := simmpi.NewWorld(cfg)
	if err != nil {
		return MPIResult{}, err
	}
	var perIter vclock.Time
	if t, ok := iterationReplay(world, b, s, computePerIter); ok {
		// Closed form: the iteration script replayed through the
		// symmetric-clock engines (seq.go) — bit-identical to the
		// goroutine run across the whole rank sweep.
		perIter = t
	} else {
		if err := world.Run(func(r *simmpi.Rank) {
			iterationScript(b, s, computePerIter, r)
		}); err != nil {
			return MPIResult{}, err
		}
		perIter = world.MaxTime()
	}
	total := perIter * vclock.Time(s.Iters)

	return MPIResult{
		Bench: b, Class: c, Device: dev, Ranks: ranks,
		Time:   total,
		Gflops: w.Flops / total.Seconds() / 1e9,
	}, nil
}

// iterationScript runs ONE representative iteration of the benchmark's
// communication pattern on rank r, with the compute share charged along
// the way. Payload sizes follow the benchmark's decomposition.
//
// Only sizes matter to the model (payload contents are never read), so
// send buffers are hoisted out of the loops and drawn from the free
// lists, and received payloads recycle as soon as they return — the
// per-message allocation churn this removed was most of Figure 20's
// host wall-clock.
func iterationScript(b Benchmark, s Size, compute vclock.Time, r *simmpi.Rank) {
	n := r.Size()
	id := r.ID()
	pts := float64(s.Points())
	switch b {
	case EP:
		r.Compute(compute)
		simmpi.RecycleF64(r.Allreduce(make([]float64, 12), simmpi.OpSum)) // sx, sy, q[10]
	case CG:
		// 25 CG steps: halo exchange with the transpose partner for the
		// matvec, then three dot-product allreduces.
		rowBytes := int(8 * float64(s.N) / math.Sqrt(float64(n)))
		partner := id ^ 1
		row := bytePool.Get(rowBytes)
		for step := 0; step < 25; step++ {
			r.Compute(compute / 25)
			if n > 1 {
				simmpi.Recycle(r.Sendrecv(partner, 0, row, partner, 0))
			}
			for d := 0; d < 3; d++ {
				r.AllreduceSum(1)
			}
		}
		bytePool.Put(row)
	case MG:
		// Halo exchanges on every level: 6 faces, shrinking with level.
		levels := log2(s.Grid[0]) - 1
		sub := pts / float64(n)
		face := math.Pow(sub, 2.0/3.0)
		for l := 0; l < levels; l++ {
			r.Compute(compute / vclock.Time(levels))
			faceBytes := int(8 * face / float64(int(1)<<(2*l)))
			if faceBytes < 8 {
				faceBytes = 8
			}
			if n > 1 {
				right := (id + 1) % n
				left := (id - 1 + n) % n
				fb := bytePool.Get(faceBytes)
				for f := 0; f < 3; f++ {
					simmpi.Recycle(r.Sendrecv(right, f, fb, left, f))
				}
				bytePool.Put(fb)
			}
		}
		r.AllreduceSum(1)
	case FT:
		// The 3D FFT transpose: one all-to-all of the full grid per
		// iteration, in n blocks per rank.
		r.Compute(compute)
		block := int(16 * pts / float64(n) / float64(n))
		if block < 16 {
			block = 16
		}
		buf := bytePool.Get(n * block)
		simmpi.Recycle(r.Alltoall(buf, block))
		bytePool.Put(buf)
	case IS:
		r.Compute(compute)
		block := int(4 * float64(s.N) / float64(n) / float64(n))
		if block < 4 {
			block = 4
		}
		buf := bytePool.Get(n * block)
		simmpi.Recycle(r.Alltoall(buf, block))
		bytePool.Put(buf)
		simmpi.RecycleF64(r.Allreduce(make([]float64, 4), simmpi.OpSum))
	case LU:
		// Wavefront pipeline: each hyperplane's boundary flows to the
		// next rank; two sweeps per iteration.
		planes := 2 * s.Grid[0]
		msg := int(8 * ncomp * float64(s.Grid[0]))
		plane := bytePool.Get(msg)
		for p := 0; p < planes; p++ {
			if id > 0 {
				simmpi.Recycle(r.Recv(id-1, p))
			}
			r.Compute(compute / vclock.Time(planes))
			if id < n-1 {
				r.Send(id+1, p, plane)
			}
		}
		bytePool.Put(plane)
	case BT, SP:
		// Square process grid: face exchanges with four neighbors per
		// directional sweep.
		side := int(math.Round(math.Sqrt(float64(n))))
		row, col := id/side, id%side
		faceBytes := int(8 * ncomp * math.Pow(pts/float64(n), 2.0/3.0))
		fb := bytePool.Get(faceBytes)
		for dim := 0; dim < 3; dim++ {
			r.Compute(compute / 3)
			if n == 1 {
				continue
			}
			rightCol := row*side + (col+1)%side
			leftCol := row*side + (col-1+side)%side
			downRow := ((row+1)%side)*side + col
			upRow := ((row-1+side)%side)*side + col
			if rightCol != id {
				simmpi.Recycle(r.Sendrecv(rightCol, dim, fb, leftCol, dim))
			}
			if downRow != id {
				simmpi.Recycle(r.Sendrecv(downRow, 100+dim, fb, upRow, 100+dim))
			}
		}
		bytePool.Put(fb)
	}
}
