package npb

import (
	"fmt"
	"math"

	"maia/internal/simmpi"
)

// MG as a real MPI program: the fine levels are slab-decomposed along
// the first grid dimension with one-plane halo exchanges before every
// stencil sweep; once a level is too coarse to keep every rank busy the
// whole problem is gathered to rank 0, which runs the remaining V-cycle
// serially (the reference code's strategy for its coarsest grids) and
// scatters the correction back. Residual histories match the serial
// RunMG to rounding.

// mgSlab is one rank's view of one level: full-size arrays (the mini-app
// trades memory for indexing simplicity) of which only planes
// [lo-1, hi+1] are meaningful.
type mgSlab struct {
	u, f, r, tmp *MGGrid
	lo, hi       int // owned interior i-planes, inclusive
}

// mgRankState is one rank's grid hierarchy.
type mgRankState struct {
	rank   *simmpi.Rank
	ranks  int
	levels []*mgSlab // distributed levels only
	serial *mgHierarchy
	// serialTop is the interval count at which the problem collapses to
	// rank 0.
	serialTop int
}

// slabRange returns the owned interior planes [lo, hi] for a level with
// n intervals (interior planes 1..n-1).
func slabRange(n, ranks, id int) (lo, hi int) {
	per := n / ranks
	lo = id*per + 1
	hi = (id + 1) * per
	if id == ranks-1 {
		hi = n - 1
	}
	return lo, hi
}

// exchangeHalo refreshes the ghost planes lo-1 and hi+1 of grid g from
// the neighbouring ranks. Plane tags disambiguate direction.
func (st *mgRankState) exchangeHalo(g *MGGrid, lo, hi int) {
	r := st.rank
	id := r.ID()
	s := g.N + 1
	planeBytes := func(i int) []byte {
		return planeToBytes(g.V[g.Idx(i, 0, 0) : g.Idx(i, 0, 0)+s*s])
	}
	setPlane := func(i int, b []byte) {
		bytesToPlane(b, g.V[g.Idx(i, 0, 0):g.Idx(i, 0, 0)+s*s])
	}
	// Right-going: my hi plane becomes the right neighbour's lo-1 ghost.
	if id < st.ranks-1 {
		r.Send(id+1, 10, planeBytes(hi))
	}
	if id > 0 {
		setPlane(lo-1, r.Recv(id-1, 10))
	}
	// Left-going.
	if id > 0 {
		r.Send(id-1, 11, planeBytes(lo))
	}
	if id < st.ranks-1 {
		setPlane(hi+1, r.Recv(id+1, 11))
	}
}

// smoothSlab runs one weighted-Jacobi sweep on the owned planes.
func smoothSlab(sl *mgSlab) {
	n := sl.u.N
	h2 := 1.0 / float64(n*n)
	const w = 2.0 / 3.0
	s := n + 1
	for i := sl.lo; i <= sl.hi; i++ {
		for j := 1; j < n; j++ {
			for k := 1; k < n; k++ {
				c := sl.u.Idx(i, j, k)
				lap := (6*sl.u.V[c] - sl.u.V[c-1] - sl.u.V[c+1] -
					sl.u.V[c-s] - sl.u.V[c+s] - sl.u.V[c-s*s] - sl.u.V[c+s*s]) / h2
				sl.tmp.V[c] = sl.u.V[c] + w*(sl.f.V[c]-lap)*h2/6
			}
		}
	}
	sl.u, sl.tmp = sl.tmp, sl.u
}

// residualSlab computes r = f - A u on the owned planes.
func residualSlab(sl *mgSlab) {
	n := sl.u.N
	h2 := 1.0 / float64(n*n)
	s := n + 1
	for i := sl.lo; i <= sl.hi; i++ {
		for j := 1; j < n; j++ {
			for k := 1; k < n; k++ {
				c := sl.u.Idx(i, j, k)
				lap := (6*sl.u.V[c] - sl.u.V[c-1] - sl.u.V[c+1] -
					sl.u.V[c-s] - sl.u.V[c+s] - sl.u.V[c-s*s] - sl.u.V[c+s*s]) / h2
				sl.r.V[c] = sl.f.V[c] - lap
			}
		}
	}
}

// restrictSlab full-weights the fine residual into the coarse forcing.
func restrictSlab(fine, coarse *mgSlab) {
	nc := coarse.f.N
	w1 := [3]float64{0.25, 0.5, 0.25}
	for i := coarse.lo; i <= coarse.hi; i++ {
		for j := 1; j < nc; j++ {
			for k := 1; k < nc; k++ {
				sum := 0.0
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						for dk := -1; dk <= 1; dk++ {
							w := w1[di+1] * w1[dj+1] * w1[dk+1]
							sum += w * fine.r.V[fine.r.Idx(2*i+di, 2*j+dj, 2*k+dk)]
						}
					}
				}
				coarse.f.V[coarse.f.Idx(i, j, k)] = sum
			}
		}
	}
}

// prolongSlab adds the trilinear coarse correction into the fine planes.
func prolongSlab(coarse, fine *mgSlab) {
	n := fine.u.N
	for i := fine.lo; i <= fine.hi; i++ {
		for j := 1; j < n; j++ {
			for k := 1; k < n; k++ {
				v := 0.0
				i0, iw := i/2, 1.0
				j0, jw := j/2, 1.0
				k0, kw := k/2, 1.0
				iOdd, jOdd, kOdd := i%2 == 1, j%2 == 1, k%2 == 1
				if iOdd {
					iw = 0.5
				}
				if jOdd {
					jw = 0.5
				}
				if kOdd {
					kw = 0.5
				}
				for di := 0; di <= b2i(iOdd); di++ {
					for dj := 0; dj <= b2i(jOdd); dj++ {
						for dk := 0; dk <= b2i(kOdd); dk++ {
							v += iw * jw * kw * coarse.u.V[coarse.u.Idx(i0+di, j0+dj, k0+dk)]
						}
					}
				}
				fine.u.V[fine.u.Idx(i, j, k)] += v
			}
		}
	}
}

// vcycleMPI runs one V-cycle from distributed level l.
func (st *mgRankState) vcycleMPI(l int) {
	sl := st.levels[l]
	for s := 0; s < 2; s++ {
		st.exchangeHalo(sl.u, sl.lo, sl.hi)
		smoothSlab(sl)
	}
	st.exchangeHalo(sl.u, sl.lo, sl.hi)
	residualSlab(sl)

	if l == len(st.levels)-1 {
		// Coarse remainder on rank 0.
		st.coarseSolve(sl)
	} else {
		next := st.levels[l+1]
		for i := range next.u.V {
			next.u.V[i] = 0
		}
		st.exchangeHalo(sl.r, sl.lo, sl.hi)
		restrictSlab(sl, next)
		st.vcycleMPI(l + 1)
		st.exchangeHalo(next.u, next.lo, next.hi)
		prolongSlab(next, sl)
	}

	for s := 0; s < 2; s++ {
		st.exchangeHalo(sl.u, sl.lo, sl.hi)
		smoothSlab(sl)
	}
}

// coarseSolve gathers the last distributed level's residual to rank 0,
// runs the remaining serial V-cycle there (restriction, recursion and
// prolongation included via the serial hierarchy), and scatters the
// resulting correction back, adding it into the distributed level's u.
func (st *mgRankState) coarseSolve(sl *mgSlab) {
	r := st.rank
	n := sl.r.N
	s := n + 1
	// Gather every rank's residual planes to rank 0. Blocks must be
	// equal-sized, so every rank ships exactly n/ranks planes starting
	// at lo; for the last rank the final plane is the (zero) boundary.
	per := n / st.ranks
	mine := sl.r.V[sl.r.Idx(sl.lo, 0, 0):sl.r.Idx(sl.lo+per, 0, 0)]
	full := r.Gather(0, planeToBytes(mine))
	if r.ID() == 0 {
		// Assemble the full residual as the coarse problem's forcing:
		// restrict it one level and run the serial hierarchy below.
		rFull := NewMGGrid(n)
		blockLen := per * s * s
		for id := 0; id < st.ranks; id++ {
			lo, _ := slabRange(n, st.ranks, id)
			src := bytesToF64Buf(full[id*blockLen*8 : (id+1)*blockLen*8])
			copy(rFull.V[rFull.Idx(lo, 0, 0):rFull.Idx(lo+per, 0, 0)], src)
		}
		// The serial hierarchy starts at n/2 (the next coarser level).
		h := st.serial
		MGRestrict(rFull, h.f[0])
		for i := range h.u[0].V {
			h.u[0].V[i] = 0
		}
		h.vcycle(0, nil, false)
		// Prolong the correction to level n and broadcast it.
		corr := NewMGGrid(n)
		MGProlong(h.u[0], corr)
		payload := planeToBytes(corr.V)
		r.Bcast(0, payload)
		for i := range corr.V {
			sl.u.V[i] += corr.V[i]
		}
	} else {
		payload := r.Bcast(0, make([]byte, len(sl.u.V)*8))
		corr := bytesToF64Buf(payload)
		// Apply only to owned planes (+ ghosts refreshed later anyway).
		for i := sl.u.Idx(sl.lo-1, 0, 0); i < sl.u.Idx(sl.hi+1, 0, 0)+s*s && i < len(corr); i++ {
			sl.u.V[i] += corr[i]
		}
	}
}

// RunMGMPI runs the MG benchmark with `ranks` MPI ranks. n must be a
// power of two >= 8 and divisible by 2*ranks (so at least the finest two
// levels are distributed).
func RunMGMPI(n, cycles, ranks int) (MGResult, error) {
	if n < 8 || n&(n-1) != 0 {
		return MGResult{}, fmt.Errorf("npb: MG grid %d must be a power of two >= 8", n)
	}
	if cycles < 1 {
		return MGResult{}, fmt.Errorf("npb: MG needs at least one cycle")
	}
	if ranks < 1 || n%(2*ranks) != 0 {
		return MGResult{}, fmt.Errorf("npb: %d ranks must divide n/2 = %d", ranks, n/2)
	}
	w, err := simmpi.NewWorld(simmpi.Config{Ranks: simmpi.HostPlacement(ranks, 1)})
	if err != nil {
		return MGResult{}, err
	}
	res := MGResult{ResidualNorms: make([]float64, cycles)}
	err = w.Run(func(r *simmpi.Rank) {
		st := &mgRankState{rank: r, ranks: ranks}
		// Distributed levels: while the slab keeps >= 2 planes per rank
		// and divides evenly.
		for lvl := n; lvl%ranks == 0 && lvl/ranks >= 2 && lvl > 2; lvl /= 2 {
			lo, hi := slabRange(lvl, ranks, r.ID())
			st.levels = append(st.levels, &mgSlab{
				u: NewMGGrid(lvl), f: NewMGGrid(lvl), r: NewMGGrid(lvl),
				tmp: NewMGGrid(lvl), lo: lo, hi: hi,
			})
			st.serialTop = lvl
		}
		if r.ID() == 0 {
			st.serial = newHierarchy(st.serialTop / 2)
		}
		// Forcing: the shared RANDLC stream in the serial kernel's plane
		// order, seekable per slab (one draw per interior point).
		fine := st.levels[0]
		ptsPerPlane := (n - 1) * (n - 1)
		seed := RandSeek(DefaultSeed, int64((fine.lo-1)*ptsPerPlane))
		for i := fine.lo; i <= fine.hi; i++ {
			for j := 1; j < n; j++ {
				for k := 1; k < n; k++ {
					fine.f.V[fine.f.Idx(i, j, k)] = Randlc(&seed, MultA) - 0.5
				}
			}
		}
		for c := 0; c < cycles; c++ {
			st.vcycleMPI(0)
			st.exchangeHalo(fine.u, fine.lo, fine.hi)
			residualSlab(fine)
			sum := 0.0
			for i := fine.lo; i <= fine.hi; i++ {
				for j := 1; j < n; j++ {
					for k := 1; k < n; k++ {
						v := fine.r.V[fine.r.Idx(i, j, k)]
						sum += v * v
					}
				}
			}
			tot := r.AllreduceSum(sum)
			if r.ID() == 0 {
				res.ResidualNorms[c] = math.Sqrt(tot / float64((n-1)*(n-1)*(n-1)))
			}
		}
	})
	return res, err
}

// planeToBytes / bytesToPlane move float64 planes through the byte
// transport without allocations beyond the message buffer.
func planeToBytes(v []float64) []byte { return f64ToBytesBuf(v) }

func bytesToPlane(b []byte, out []float64) {
	copy(out, bytesToF64Buf(b))
}
