package npb

import (
	"os"
	"testing"

	"maia/internal/machine"
	"maia/internal/simmpi"
	"maia/internal/vclock"
)

// TestIterationReplayMatchesGoroutine is the Figure 20 exactness
// property: for every benchmark's per-iteration script, across the rank
// counts the figure sweeps (including BT/SP's odd perfect squares) and
// both device placements, the closed-form replay must reproduce the
// goroutine engine's makespan BIT for bit.
func TestIterationReplayMatchesGoroutine(t *testing.T) {
	noFast := os.Getenv("MAIA_NO_FASTPATH") != ""
	rankSets := []int{2, 4, 9, 16, 25, 64}
	classes := []Class{ClassS, ClassA}
	for _, b := range Benchmarks() {
		for _, c := range classes {
			s, err := SizeOf(b, c)
			if err != nil {
				t.Fatalf("%v.%v: %v", b, c, err)
			}
			for _, ranks := range rankSets {
				if !ValidRankCount(b, ranks) {
					continue
				}
				for _, phi := range []bool{false, true} {
					cfg := simmpi.Config{SizeOnlyPayloads: true}
					if phi {
						cfg.Ranks = simmpi.PhiPlacement(machine.Phi0, ranks, 2)
					} else {
						cfg.Ranks = simmpi.HostPlacement(ranks, 1)
					}
					compute := vclock.Time(float64(ranks)*137.5 + 9e3)

					slow, err := simmpi.NewWorld(cfg)
					if err != nil {
						t.Fatalf("%v.%v/%d: %v", b, c, ranks, err)
					}
					if err := slow.Run(func(r *simmpi.Rank) {
						iterationScript(b, s, compute, r)
					}); err != nil {
						t.Fatalf("%v.%v/%d: goroutine run: %v", b, c, ranks, err)
					}
					want := slow.MaxTime()

					fast, err := simmpi.NewWorld(cfg)
					if err != nil {
						t.Fatalf("%v.%v/%d: %v", b, c, ranks, err)
					}
					// Collective steps replay only on power-of-two worlds;
					// BT/SP scripts are pure ring exchanges, so their odd
					// square grids replay too.
					eligible := ranks&(ranks-1) == 0 || b == BT || b == SP
					got, ok := iterationReplay(fast, b, s, compute)
					if !ok {
						if noFast || !eligible {
							continue // replay correctly refused
						}
						t.Fatalf("%v.%v/%d ranks (phi=%v): replay refused an eligible world", b, c, ranks, phi)
					}
					if got != want {
						t.Fatalf("%v.%v/%d ranks (phi=%v): replay %v, goroutine %v", b, c, ranks, phi, got, want)
					}
				}
			}
		}
	}
}

// TestIterationReplayRefusesSingleRank pins that single-rank worlds
// (no symmetry to exploit, nothing to win) take the goroutine engine.
func TestIterationReplayRefusesSingleRank(t *testing.T) {
	s, err := SizeOf(LU, ClassS)
	if err != nil {
		t.Fatal(err)
	}
	w, err := simmpi.NewWorld(simmpi.Config{SizeOnlyPayloads: true, Ranks: simmpi.HostPlacement(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := iterationReplay(w, LU, s, 1e4); ok {
		t.Error("replayed a single-rank LU pipeline")
	}
}
