package npb

import "math"

// Field5 is a 5-component field on an n³ grid (no ghost cells; boundary
// values are implicitly zero), the state the three pseudo-applications
// evolve.
type Field5 struct {
	N int
	V []float64
}

// NewField5 allocates a zero field.
func NewField5(n int) *Field5 {
	return &Field5{N: n, V: make([]float64, n*n*n*ncomp)}
}

// Idx returns the flat offset of cell (i,j,k)'s first component.
func (f *Field5) Idx(i, j, k int) int {
	return ((i*f.N+j)*f.N + k) * ncomp
}

// FillRandom initializes the field from the RANDLC stream (values in
// [-0.5, 0.5)).
func (f *Field5) FillRandom() {
	seed := DefaultSeed
	for i := range f.V {
		f.V[i] = Randlc(&seed, MultA) - 0.5
	}
}

// L2 returns the component-summed RMS norm.
func (f *Field5) L2() float64 {
	s := 0.0
	for _, v := range f.V {
		s += v * v
	}
	return math.Sqrt(s / float64(len(f.V)))
}

// Clone returns a deep copy.
func (f *Field5) Clone() *Field5 {
	g := NewField5(f.N)
	copy(g.V, f.V)
	return g
}

// MaxDiff returns the max absolute elementwise difference between two
// fields of the same size.
func (f *Field5) MaxDiff(g *Field5) float64 {
	m := 0.0
	for i := range f.V {
		if d := math.Abs(f.V[i] - g.V[i]); d > m {
			m = d
		}
	}
	return m
}

// couplingMatrix is the fixed 5x5 inter-component coupling used by all
// three pseudo-applications: a stand-in for the Navier-Stokes flux
// Jacobian structure (nonsymmetric, zero row sums are NOT required, but
// it is small enough to keep the implicit operators diagonally
// dominant).
func couplingMatrix() mat5 {
	return mat5{
		0.00, 0.10, 0.00, 0.00, 0.00,
		0.05, 0.00, 0.10, 0.00, 0.02,
		0.00, 0.05, 0.00, 0.10, 0.00,
		0.02, 0.00, 0.05, 0.00, 0.10,
		0.00, 0.02, 0.00, 0.05, 0.00,
	}
}
