package npb

import (
	"fmt"

	"maia/internal/simomp"
)

// IS — the integer sort kernel: rank (counting-sort) a sequence of keys
// drawn from a truncated binomial-ish distribution, ten times, mutating
// two keys per iteration as the reference code does. IS has almost no
// floating point and is all irregular scatter traffic.

// ISKeys generates the benchmark's key sequence: each key is the scaled
// sum of four RANDLC deviates (the reference create_seq).
func ISKeys(n, maxKey int64) []int32 {
	keys := make([]int32, n)
	seed := DefaultSeed
	k := float64(maxKey) / 4
	for i := range keys {
		x := Randlc(&seed, MultA)
		x += Randlc(&seed, MultA)
		x += Randlc(&seed, MultA)
		x += Randlc(&seed, MultA)
		keys[i] = int32(k * x)
	}
	return keys
}

// ISResult carries the sorted keys and bookkeeping for verification.
type ISResult struct {
	Sorted     []int32
	Iterations int
}

// RunIS runs the IS benchmark: iters ranking passes over the keys (with
// the reference's per-iteration key mutations), then a full sort built
// from the final ranks. The counting phase is work-shared across the
// team (nil runs serially) with per-thread histograms merged
// deterministically.
func RunIS(keys []int32, maxKey int64, iters int, team *simomp.Team) (ISResult, error) {
	if maxKey <= 0 {
		return ISResult{}, fmt.Errorf("npb: IS maxKey %d", maxKey)
	}
	n := int64(len(keys))
	if n == 0 {
		return ISResult{}, fmt.Errorf("npb: IS with no keys")
	}
	work := make([]int32, n)
	copy(work, keys)

	var counts []int64
	for it := 1; it <= iters; it++ {
		// Reference quirk: each iteration plants two sentinel keys.
		work[it%len(work)] = int32(it % int(maxKey))
		work[(it+int(maxKey/2))%len(work)] = int32(maxKey - 1 - int64(it)%maxKey)
		counts = isCount(work, maxKey, team)
	}
	if counts == nil {
		counts = isCount(work, maxKey, team)
	}

	// Exclusive prefix sum of the final counts gives each key's rank;
	// scatter into the output.
	sorted := make([]int32, n)
	pos := int64(0)
	for v, c := range counts {
		for j := int64(0); j < c; j++ {
			sorted[pos+j] = int32(v)
		}
		pos += c
	}
	return ISResult{Sorted: sorted, Iterations: iters}, nil
}

// isCount builds the key histogram with per-thread private histograms.
// A nil team counts serially.
func isCount(keys []int32, maxKey int64, team *simomp.Team) []int64 {
	if team == nil {
		h := make([]int64, maxKey)
		for _, k := range keys {
			h[k]++
		}
		return h
	}
	threads := team.Threads()
	private := make([][]int64, threads)
	n := len(keys)
	chunk := (n + threads - 1) / threads
	team.Parallel(func(tid int) {
		lo := tid * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			return
		}
		h := make([]int64, maxKey)
		for _, k := range keys[lo:hi] {
			h[k]++
		}
		private[tid] = h
	}, nil)
	total := make([]int64, maxKey)
	for _, h := range private {
		if h == nil {
			continue
		}
		for v, c := range h {
			total[v] += c
		}
	}
	return total
}

// ISVerify checks the result: sorted order and permutation (same
// multiset as the input after the iteration mutations are replayed).
func ISVerify(input []int32, maxKey int64, iters int, res ISResult) error {
	if len(res.Sorted) != len(input) {
		return fmt.Errorf("npb: IS output length %d != input %d", len(res.Sorted), len(input))
	}
	for i := 1; i < len(res.Sorted); i++ {
		if res.Sorted[i-1] > res.Sorted[i] {
			return fmt.Errorf("npb: IS output not sorted at %d", i)
		}
	}
	// Replay the mutations to reconstruct the final multiset.
	work := make([]int32, len(input))
	copy(work, input)
	for it := 1; it <= iters; it++ {
		work[it%len(work)] = int32(it % int(maxKey))
		work[(it+int(maxKey/2))%len(work)] = int32(maxKey - 1 - int64(it)%maxKey)
	}
	want := make(map[int32]int64, 1024)
	for _, k := range work {
		want[k]++
	}
	for _, k := range res.Sorted {
		want[k]--
		if want[k] == 0 {
			delete(want, k)
		}
	}
	if len(want) != 0 {
		return fmt.Errorf("npb: IS output is not a permutation of the input")
	}
	return nil
}
