package npb

import (
	"math"
	"math/cmplx"
	"sync"
)

// Twiddle-factor tables for fft1D. The butterfly loop historically
// recomputed w by repeated multiplication (w *= wl) inside every block
// of every stage of every pencil; the table is built ONCE per
// (length, direction) with exactly that multiplication sequence, so
// reading tw[j] yields bit-for-bit the floats the inline recurrence
// produced — checksums and golden snapshots cannot tell the difference.
//
// The cache is concurrency-safe: pencil bodies run on simomp team
// workers and simmpi rank goroutines simultaneously.
var twiddleCache struct {
	sync.RWMutex
	tables map[int][]complex128 // key: +length forward, -length inverse
}

func twiddles(length int, invert bool) []complex128 {
	key := length
	if invert {
		key = -length
	}
	twiddleCache.RLock()
	tw := twiddleCache.tables[key]
	twiddleCache.RUnlock()
	if tw != nil {
		return tw
	}

	ang := 2 * math.Pi / float64(length)
	if invert {
		ang = -ang
	}
	wl := cmplx.Exp(complex(0, ang))
	fresh := make([]complex128, length/2)
	w := complex(1, 0)
	for j := range fresh {
		fresh[j] = w
		w *= wl
	}

	twiddleCache.Lock()
	if twiddleCache.tables == nil {
		twiddleCache.tables = make(map[int][]complex128)
	}
	// Keep the first table registered for the key: two racers compute
	// identical contents, so either is correct, but a single canonical
	// slice keeps the cache small.
	if have := twiddleCache.tables[key]; have != nil {
		fresh = have
	} else {
		twiddleCache.tables[key] = fresh
	}
	twiddleCache.Unlock()
	return fresh
}
