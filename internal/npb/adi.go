package npb

import "fmt"

// Shared linear-algebra machinery for the three NPB pseudo-applications.
// All of them evolve a 5-component field (the five Navier-Stokes-like
// variables of the reference suite) on a cubic grid:
//
//	BT: ADI factorization with 5x5 BLOCK-TRIDIAGONAL line solves;
//	SP: ADI factorization with SCALAR-PENTADIAGONAL line solves;
//	LU: SSOR sweeps over the steady 7-point block system.

// ncomp is the field component count.
const ncomp = 5

// mat5 is a dense 5x5 matrix, row-major.
type mat5 [ncomp * ncomp]float64

// ident5 returns s * I.
func ident5(s float64) mat5 {
	var m mat5
	for i := 0; i < ncomp; i++ {
		m[i*ncomp+i] = s
	}
	return m
}

// add returns a + b.
func (a mat5) add(b mat5) mat5 {
	for i := range a {
		a[i] += b[i]
	}
	return a
}

// scale returns s * a.
func (a mat5) scale(s float64) mat5 {
	for i := range a {
		a[i] *= s
	}
	return a
}

// mul returns a * b.
func (a mat5) mul(b mat5) mat5 {
	var c mat5
	for i := 0; i < ncomp; i++ {
		for k := 0; k < ncomp; k++ {
			aik := a[i*ncomp+k]
			if aik == 0 {
				continue
			}
			for j := 0; j < ncomp; j++ {
				c[i*ncomp+j] += aik * b[k*ncomp+j]
			}
		}
	}
	return c
}

// sub returns a - b.
func (a mat5) sub(b mat5) mat5 {
	for i := range a {
		a[i] -= b[i]
	}
	return a
}

// matvec computes y = a*x for 5-vectors.
func (a mat5) matvec(x, y []float64) {
	for i := 0; i < ncomp; i++ {
		s := 0.0
		for j := 0; j < ncomp; j++ {
			s += a[i*ncomp+j] * x[j]
		}
		y[i] = s
	}
}

// invert returns a⁻¹ by Gauss-Jordan elimination with partial pivoting.
// It panics on a singular matrix: the benchmark matrices are diagonally
// dominant by construction, so singularity is a programming error.
func (a mat5) invert() mat5 {
	var aug [ncomp][2 * ncomp]float64
	for i := 0; i < ncomp; i++ {
		for j := 0; j < ncomp; j++ {
			aug[i][j] = a[i*ncomp+j]
		}
		aug[i][ncomp+i] = 1
	}
	for col := 0; col < ncomp; col++ {
		// Partial pivot.
		p := col
		for r := col + 1; r < ncomp; r++ {
			if abs(aug[r][col]) > abs(aug[p][col]) {
				p = r
			}
		}
		if abs(aug[p][col]) < 1e-14 {
			panic(fmt.Sprintf("npb: singular 5x5 matrix at column %d", col))
		}
		aug[col], aug[p] = aug[p], aug[col]
		piv := aug[col][col]
		for j := 0; j < 2*ncomp; j++ {
			aug[col][j] /= piv
		}
		for r := 0; r < ncomp; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			f := aug[r][col]
			for j := 0; j < 2*ncomp; j++ {
				aug[r][j] -= f * aug[col][j]
			}
		}
	}
	var inv mat5
	for i := 0; i < ncomp; i++ {
		for j := 0; j < ncomp; j++ {
			inv[i*ncomp+j] = aug[i][ncomp+j]
		}
	}
	return inv
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// blockTriSolve solves the constant-coefficient block-tridiagonal system
//
//	A u_{i-1} + B u_i + C u_{i+1} = r_i,  i = 0..n-1,  u_{-1} = u_n = 0
//
// in place: r (n cells x 5 components, flattened) is overwritten with u.
// w is caller-provided scratch of n mat5 (avoids per-line allocation in
// the inner loops of BT).
func blockTriSolve(a, b, c mat5, r []float64, w []mat5) {
	n := len(r) / ncomp
	if len(w) < n {
		panic("npb: blockTriSolve scratch too small")
	}
	var tmp [ncomp]float64

	// Forward elimination.
	dInv := b.invert()
	w[0] = dInv.mul(c)
	dInv.matvec(r[:ncomp], tmp[:])
	copy(r[:ncomp], tmp[:])
	for i := 1; i < n; i++ {
		d := b.sub(a.mul(w[i-1]))
		dInv = d.invert()
		w[i] = dInv.mul(c)
		// rhs_i -= A * u_{i-1}  (u_{i-1} currently holds g_{i-1})
		a.matvec(r[(i-1)*ncomp:i*ncomp], tmp[:])
		for k := 0; k < ncomp; k++ {
			r[i*ncomp+k] -= tmp[k]
		}
		dInv.matvec(r[i*ncomp:(i+1)*ncomp], tmp[:])
		copy(r[i*ncomp:(i+1)*ncomp], tmp[:])
	}
	// Back substitution.
	for i := n - 2; i >= 0; i-- {
		w[i].matvec(r[(i+1)*ncomp:(i+2)*ncomp], tmp[:])
		for k := 0; k < ncomp; k++ {
			r[i*ncomp+k] -= tmp[k]
		}
	}
}

// pentaScratch is the per-line working storage of pentaSolve, reusable
// across calls to keep the ADI inner loops allocation-free.
type pentaScratch struct {
	e2w, e1w, dw, f1w, f2w []float64
}

func newPentaScratch(n int) *pentaScratch {
	return &pentaScratch{
		e2w: make([]float64, n), e1w: make([]float64, n),
		dw: make([]float64, n), f1w: make([]float64, n), f2w: make([]float64, n),
	}
}

// pentaSolve solves the constant-coefficient pentadiagonal system
//
//	e2 u_{i-2} + e1 u_{i-1} + d u_i + f1 u_{i+1} + f2 u_{i+2} = r_i
//
// with zero boundary values, in place on r (one scalar per cell), by
// banded Gaussian elimination without pivoting (the matrices here are
// diagonally dominant).
func pentaSolve(e2, e1, d, f1, f2 float64, r []float64, s *pentaScratch) {
	n := len(r)
	if len(s.dw) < n {
		panic("npb: pentaSolve scratch too small")
	}
	for i := 0; i < n; i++ {
		s.e2w[i], s.e1w[i], s.dw[i], s.f1w[i], s.f2w[i] = e2, e1, d, f1, f2
	}
	s.e1w[0], s.e2w[0] = 0, 0
	if n > 1 {
		s.e2w[1] = 0
	}
	// Forward elimination: clear e2 with row i-2, then e1 with row i-1.
	for i := 1; i < n; i++ {
		if i >= 2 && s.e2w[i] != 0 {
			m := s.e2w[i] / s.dw[i-2]
			s.e1w[i] -= m * s.f1w[i-2]
			s.dw[i] -= m * s.f2w[i-2]
			r[i] -= m * r[i-2]
		}
		if s.e1w[i] != 0 {
			m := s.e1w[i] / s.dw[i-1]
			s.dw[i] -= m * s.f1w[i-1]
			s.f1w[i] -= m * s.f2w[i-1]
			r[i] -= m * r[i-1]
		}
	}
	// Back substitution.
	r[n-1] /= s.dw[n-1]
	if n >= 2 {
		r[n-2] = (r[n-2] - s.f1w[n-2]*r[n-1]) / s.dw[n-2]
	}
	for i := n - 3; i >= 0; i-- {
		r[i] = (r[i] - s.f1w[i]*r[i+1] - s.f2w[i]*r[i+2]) / s.dw[i]
	}
}
