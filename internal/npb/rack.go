package npb

import (
	"fmt"
	"math"

	"maia/internal/core"
	"maia/internal/machine"
	"maia/internal/simmpi"
	"maia/internal/vclock"
)

// Rack-scale MPI driver: the NPB kernels strong-scaled across the
// hypercube fabric of the full system (Section 3 / Table 1), rather
// than within one node. Each node contributes its 16 host cores; the
// benchmark's communication script runs on a two-level simmpi world
// where intra-node messages keep the shared-memory cost model and
// inter-node messages are priced by hop count over FDR InfiniBand.
//
// Only CG, MG and FT rack-scale here: they are the paper's
// communication-bound kernels (latency-, neighbor- and
// bisection-dominated respectively), and their per-iteration patterns
// map onto the script steps the hierarchical replay prices in closed
// form — which is what makes a 128-node, 2048-rank sweep simulable in
// milliseconds.

// RackResult is one datapoint of a rack-scale NPB sweep.
type RackResult struct {
	Bench   Benchmark
	Class   Class
	Nodes   int
	PerNode int
	Ranks   int
	Time    vclock.Time
	Gflops  float64
}

// RackSupported reports whether b has a rack-scale script.
func RackSupported(b Benchmark) bool {
	switch b {
	case CG, MG, FT:
		return true
	default:
		return false
	}
}

// RackRun prices benchmark b at class c strong-scaled over a rack of
// `nodes` identical host nodes with perNode MPI ranks each. The
// problem's arrays spread across node memories; the per-rank library
// footprint stays per rank. opts (tracer, fault plan) thread into the
// simmpi world — faulted worlds refuse the replay and run the
// goroutine engine, so keep faulted node counts modest.
func RackRun(m core.Model, b Benchmark, c Class, nodes, perNode int, node *machine.Node, opts ...simmpi.Option) (RackResult, error) {
	if !RackSupported(b) {
		return RackResult{}, fmt.Errorf("npb: %v has no rack-scale script", b)
	}
	if nodes < 2 {
		return RackResult{}, fmt.Errorf("npb: rack run needs at least 2 nodes, got %d", nodes)
	}
	if perNode < 1 || perNode > node.HostCores() {
		return RackResult{}, fmt.Errorf("npb: %d ranks per node outside 1..%d host cores", perNode, node.HostCores())
	}
	ranks := nodes * perNode
	if !ValidRankCount(b, ranks) {
		return RackResult{}, fmt.Errorf("npb: %v does not accept %d ranks", b, ranks)
	}
	w, err := Profile(b, c)
	if err != nil {
		return RackResult{}, err
	}
	s, err := SizeOf(b, c)
	if err != nil {
		return RackResult{}, err
	}
	mem, err := MemoryBytes(b, c)
	if err != nil {
		return RackResult{}, err
	}
	// Per-node share of the arrays plus the fixed per-rank MPI footprint
	// must fit one node's host memory.
	if mem/int64(nodes)+int64(perNode)*(25<<20) > int64(node.HostMemGB)<<30 {
		return RackResult{}, fmt.Errorf("%w: %v.%v needs %.1f GB/node + MPI overhead, node has %d GB",
			ErrOOM, b, c, float64(mem)/float64(nodes)/(1<<30), node.HostMemGB)
	}

	// Strong scaling: the whole workload's compute divides evenly across
	// nodes (each running its perNode ranks on host cores), and within a
	// node the per-iteration share is what one balanced rank charges.
	part := machine.HostCoresPartition(node, perNode, 1)
	computePerIter := m.Time(w, part) / vclock.Time(s.Iters) / vclock.Time(nodes)

	steps := rackScript(b, s, ranks, computePerIter)
	cfg := simmpi.Config{
		Ranks:  simmpi.RackPlacement(machine.Host, nodes, perNode, 1),
		Fabric: machine.NewRackFabric(nodes),
	}
	// One representative iteration, scaled by the iteration count —
	// iterations are identical, as in MPIRun.
	perIter, err := simmpi.SeqTime(cfg, steps, 1, opts...)
	if err != nil {
		return RackResult{}, err
	}
	total := perIter * vclock.Time(s.Iters)
	return RackResult{
		Bench: b, Class: c, Nodes: nodes, PerNode: perNode, Ranks: ranks,
		Time:   total,
		Gflops: w.Flops / total.Seconds() / 1e9,
	}, nil
}

// rackScript builds one iteration of b's communication pattern as a
// script, mirroring the message sizes of iterationScript with the rank
// count of the whole rack.
func rackScript(b Benchmark, s Size, ranks int, compute vclock.Time) []simmpi.SeqStep {
	n := ranks
	pts := float64(s.Points())
	switch b {
	case CG:
		// 25 CG steps: transpose-partner halo for the matvec, then three
		// dot-product allreduces.
		rowBytes := int(8 * float64(s.N) / math.Sqrt(float64(n)))
		steps := make([]simmpi.SeqStep, 0, 25*4)
		for step := 0; step < 25; step++ {
			steps = append(steps,
				simmpi.SeqStep{Compute: compute / 25, Kind: simmpi.PairKind, Bytes: rowBytes},
				simmpi.SeqStep{Kind: simmpi.AllreduceKind, Bytes: 8},
				simmpi.SeqStep{Kind: simmpi.AllreduceKind, Bytes: 8},
				simmpi.SeqStep{Kind: simmpi.AllreduceKind, Bytes: 8},
			)
		}
		return steps
	case MG:
		// Halo exchanges on every level: 3 face pairs, shrinking with
		// level, then the residual-norm allreduce.
		levels := log2(s.Grid[0]) - 1
		sub := pts / float64(n)
		face := math.Pow(sub, 2.0/3.0)
		steps := make([]simmpi.SeqStep, 0, 3*levels+1)
		for l := 0; l < levels; l++ {
			faceBytes := int(8 * face / float64(int(1)<<(2*l)))
			if faceBytes < 8 {
				faceBytes = 8
			}
			steps = append(steps,
				simmpi.SeqStep{Compute: compute / vclock.Time(levels), Kind: simmpi.PairKind, Bytes: faceBytes},
				simmpi.SeqStep{Kind: simmpi.PairKind, Bytes: faceBytes},
				simmpi.SeqStep{Kind: simmpi.PairKind, Bytes: faceBytes},
			)
		}
		return append(steps, simmpi.SeqStep{Kind: simmpi.AllreduceKind, Bytes: 8})
	case FT:
		// The 3D FFT transpose: one all-to-all of the full grid per
		// iteration, then the checksum allreduce.
		block := int(16 * pts / float64(n) / float64(n))
		if block < 16 {
			block = 16
		}
		return []simmpi.SeqStep{
			{Compute: compute, Kind: simmpi.AlltoallKind, Bytes: block},
			{Kind: simmpi.AllreduceKind, Bytes: 32},
		}
	default:
		panic(fmt.Sprintf("npb: no rack script for %v", b))
	}
}
