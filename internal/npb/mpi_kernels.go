package npb

import (
	"encoding/binary"
	"fmt"
	"math"

	"maia/internal/simmpi"
)

// Real distributed-memory kernels: CG, FT and IS implemented as genuine
// MPI programs over simmpi ranks, with the reference suite's
// decompositions — row-partitioned CG with an allgathered operand,
// slab-decomposed FT with an all-to-all transpose, and bucketed IS with
// a key exchange. Tests verify each against its serial kernel, so the
// message-passing layer is exercised by real numerics, not just timing
// scripts (those live in mpi.go and drive Figure 20 at class C).

// blockRange splits n items over `ranks`, returning [lo, hi) for rank id
// (first n%ranks ranks get one extra).
func blockRange(n, ranks, id int) (lo, hi int) {
	base := n / ranks
	extra := n % ranks
	lo = id*base + min(id, extra)
	hi = lo + base
	if id < extra {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// allgatherBlocks gathers variable-length float64 blocks (padded to the
// maximum block length for the fixed-size Allgather) and reassembles the
// full vector of length n. All conversion scratch recycles through the
// free lists; the returned vector is the caller's to free (f64Pool).
func allgatherBlocks(r *simmpi.Rank, block []float64, n int) []float64 {
	ranks := r.Size()
	maxLen := n/ranks + 1
	padded := f64Pool.GetZeroed(maxLen)
	copy(padded, block)
	pb := f64ToBytesBuf(padded)
	f64Pool.Put(padded)
	ag := r.Allgather(pb)
	bytePool.Put(pb)
	all := bytesToF64Buf(ag)
	simmpi.Recycle(ag)
	out := f64Pool.Get(n)[:0]
	for id := 0; id < ranks; id++ {
		lo, hi := blockRange(n, ranks, id)
		out = append(out, all[id*maxLen:id*maxLen+(hi-lo)]...)
	}
	f64Pool.Put(all)
	return out
}

func f64ToBytesBuf(v []float64) []byte {
	b := bytePool.Get(8 * len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

func bytesToF64Buf(b []byte) []float64 {
	v := f64Pool.Get(len(b) / 8)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return v
}

// --- CG ---------------------------------------------------------------

// RunCGMPI runs the CG benchmark as a real MPI program: each rank owns a
// contiguous row block of the matrix; the matvec operand is assembled
// with Allgather and the dot products with Allreduce — the communication
// pattern Figure 20's CG rows are priced with.
func RunCGMPI(m *SparseMatrix, shift float64, outerIters, ranks int) (CGResult, error) {
	if outerIters < 1 {
		return CGResult{}, fmt.Errorf("npb: CG needs at least one iteration")
	}
	if ranks < 1 || ranks > m.N {
		return CGResult{}, fmt.Errorf("npb: %d ranks for a %d-row matrix", ranks, m.N)
	}
	w, err := simmpi.NewWorld(simmpi.Config{Ranks: simmpi.HostPlacement(ranks, 1)})
	if err != nil {
		return CGResult{}, err
	}
	var res CGResult
	err = w.Run(func(r *simmpi.Rank) {
		n := m.N
		lo, hi := blockRange(n, ranks, r.ID())
		mine := hi - lo

		dot := func(a, b []float64) float64 {
			s := 0.0
			for i := range a {
				s += a[i] * b[i]
			}
			return r.AllreduceSum(s)
		}
		matvec := func(pBlock, out []float64) {
			pFull := allgatherBlocks(r, pBlock, n)
			for i := 0; i < mine; i++ {
				row := lo + i
				s := 0.0
				for k := m.RowPtr[row]; k < m.RowPtr[row+1]; k++ {
					s += m.Val[k] * pFull[m.Col[k]]
				}
				out[i] = s
			}
			f64Pool.Put(pFull)
		}

		x := make([]float64, mine)
		z := make([]float64, mine)
		rv := make([]float64, mine)
		p := make([]float64, mine)
		q := make([]float64, mine)
		for i := range x {
			x[i] = 1
		}
		var local CGResult
		for it := 0; it < outerIters; it++ {
			// 25 CG steps for A z = x.
			for i := 0; i < mine; i++ {
				z[i] = 0
				rv[i] = x[i]
				p[i] = x[i]
			}
			rho := dot(rv, rv)
			for step := 0; step < 25; step++ {
				matvec(p, q)
				alpha := rho / dot(p, q)
				for i := 0; i < mine; i++ {
					z[i] += alpha * p[i]
					rv[i] -= alpha * q[i]
				}
				rho0 := rho
				rho = dot(rv, rv)
				beta := rho / rho0
				for i := 0; i < mine; i++ {
					p[i] = rv[i] + beta*p[i]
				}
			}
			local.Residual = math.Sqrt(rho)
			local.Zeta = shift + 1/dot(x, z)
			local.ZetaHistory = append(local.ZetaHistory, local.Zeta)
			norm := math.Sqrt(dot(z, z))
			for i := range x {
				x[i] = z[i] / norm
			}
		}
		if r.ID() == 0 {
			res = local
		}
	})
	return res, err
}

// --- FT ---------------------------------------------------------------

// RunFTMPI runs the FT benchmark as a real MPI program with the
// reference's slab decomposition: ranks own z-slabs for the x/y
// transforms, all-to-all transpose to x-slabs for the z transform, and
// back. nz and nx must be divisible by the rank count. Checksums match
// the serial RunFT.
func RunFTMPI(nx, ny, nz, steps, ranks int) (FTResult, error) {
	for _, n := range []int{nx, ny, nz} {
		if n < 2 || n&(n-1) != 0 {
			return FTResult{}, fmt.Errorf("npb: FT dims must be powers of two >= 2, got %dx%dx%d", nx, ny, nz)
		}
	}
	if steps < 1 {
		return FTResult{}, fmt.Errorf("npb: FT needs at least one step")
	}
	if ranks < 1 || nz%ranks != 0 || nx%ranks != 0 {
		return FTResult{}, fmt.Errorf("npb: %d ranks must divide nz=%d and nx=%d", ranks, nz, nx)
	}
	w, err := simmpi.NewWorld(simmpi.Config{Ranks: simmpi.HostPlacement(ranks, 1)})
	if err != nil {
		return FTResult{}, err
	}
	res := FTResult{
		Checksums: make([]complex128, steps),
		Energies:  make([]float64, steps),
	}
	err = w.Run(func(r *simmpi.Rank) { ftRankBody(r, nx, ny, nz, steps, ranks, &res) })
	return res, err
}

// ftRankBody is one rank's FT program.
func ftRankBody(r *simmpi.Rank, nx, ny, nz, steps, ranks int, res *FTResult) {
	id := r.ID()
	zSlab := nz / ranks // planes per rank in layout A
	xSlab := nx / ranks // columns per rank in layout B
	myZ0 := id * zSlab

	// Layout A: a[(z-myZ0)*ny*nx + y*nx + x]. Initialize from the shared
	// RANDLC stream by seeking to this slab's offset (2 draws per point,
	// stream in z-major order — the serial kernel's layout). Every
	// element is assigned, so the pooled buffer needs no zeroing.
	a := c128Pool.Get(zSlab * ny * nx)
	seed := RandSeek(DefaultSeed, int64(2*myZ0*ny*nx))
	for i := range a {
		re := Randlc(&seed, MultA)
		im := Randlc(&seed, MultA)
		a[i] = complex(re, im)
	}

	// Forward: x and y transforms on each owned plane.
	ftXY(a, nx, ny, zSlab, false)
	// Transpose to layout B and do the z transforms.
	b := ftTranspose(r, a, nx, ny, nz, ranks, true)
	c128Pool.Put(a)
	ftZ(b, ny, nz, xSlab, false)
	freq := b // layout B: b[(x-myX0)*ny*nz + y*nz + z]
	defer c128Pool.Put(freq)

	const alpha = 1e-6
	decay := func(n, i int) float64 {
		k := i
		if k > n/2 {
			k -= n
		}
		return float64(k * k)
	}
	myX0 := id * xSlab
	work := c128Pool.Get(len(freq))
	defer c128Pool.Put(work)
	for step := 1; step <= steps; step++ {
		t := float64(step)
		for xi := 0; xi < xSlab; xi++ {
			for y := 0; y < ny; y++ {
				for z := 0; z < nz; z++ {
					k2 := decay(nx, myX0+xi) + decay(ny, y) + decay(nz, z)
					f := math.Exp(-4 * alpha * math.Pi * math.Pi * k2 * t)
					idx := (xi*ny+y)*nz + z
					work[idx] = freq[idx] * complex(f, 0)
				}
			}
		}
		// Inverse: z transform, transpose back, x/y transforms.
		ftZ(work, ny, nz, xSlab, true)
		back := ftTranspose(r, work, nx, ny, nz, ranks, false)
		ftXY(back, nx, ny, zSlab, true)

		// Checksum and energy over this slab, reduced globally.
		norm := complex(1/float64(nx*ny*nz), 0)
		var sumRe, sumIm, energy float64
		n := nx * ny * nz
		for j := 1; j <= 1024; j++ {
			q := (j * 17) % n
			z := q / (ny * nx)
			if z < myZ0 || z >= myZ0+zSlab {
				continue
			}
			v := back[q-myZ0*ny*nx] * norm
			sumRe += real(v)
			sumIm += imag(v)
		}
		for _, v := range back {
			vv := v * norm
			energy += real(vv)*real(vv) + imag(vv)*imag(vv)
		}
		c128Pool.Put(back)
		tot := r.Allreduce([]float64{sumRe, sumIm, energy}, simmpi.OpSum)
		if r.ID() == 0 {
			res.Checksums[step-1] = complex(tot[0], tot[1])
			res.Energies[step-1] = tot[2]
		}
		simmpi.RecycleF64(tot)
	}
}

// ftXY transforms along x then y for every owned z-plane (layout A).
func ftXY(a []complex128, nx, ny, zSlab int, invert bool) {
	buf := c128Pool.Get(ny)
	defer c128Pool.Put(buf)
	for zi := 0; zi < zSlab; zi++ {
		plane := a[zi*ny*nx : (zi+1)*ny*nx]
		for y := 0; y < ny; y++ {
			fft1D(plane[y*nx:(y+1)*nx], invert)
		}
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				buf[y] = plane[y*nx+x]
			}
			fft1D(buf, invert)
			for y := 0; y < ny; y++ {
				plane[y*nx+x] = buf[y]
			}
		}
	}
}

// ftZ transforms along z for every owned x-column (layout B).
func ftZ(b []complex128, ny, nz, xSlab int, invert bool) {
	for xi := 0; xi < xSlab; xi++ {
		for y := 0; y < ny; y++ {
			fft1D(b[(xi*ny+y)*nz:(xi*ny+y)*nz+nz], invert)
		}
	}
}

// ftTranspose redistributes between layout A (z-slabs, forward=true
// input) and layout B (x-slabs) with one all-to-all. Both directions
// pack (xSlab x ny x zSlab) tiles per destination rank.
func ftTranspose(r *simmpi.Rank, in []complex128, nx, ny, nz, ranks int, toB bool) []complex128 {
	zSlab := nz / ranks
	xSlab := nx / ranks
	tile := xSlab * ny * zSlab
	// sendBuf and out are fully overwritten below, so uninitialized
	// pooled buffers are safe; the caller frees out via c128Pool.
	sendBuf := bytePool.Get(ranks * tile * 16)
	for dst := 0; dst < ranks; dst++ {
		base := dst * tile
		for i := 0; i < tile; i++ {
			var v complex128
			xi := i / (ny * zSlab)
			y := (i / zSlab) % ny
			zi := i % zSlab
			if toB {
				// From layout A: my z-planes, dst's x-columns.
				x := dst*xSlab + xi
				v = in[(zi*ny+y)*nx+x]
			} else {
				// From layout B: my x-columns, dst's z-planes.
				z := dst*zSlab + zi
				v = in[(xi*ny+y)*nz+z]
			}
			off := (base + i) * 16
			binary.LittleEndian.PutUint64(sendBuf[off:], math.Float64bits(real(v)))
			binary.LittleEndian.PutUint64(sendBuf[off+8:], math.Float64bits(imag(v)))
		}
	}
	recvBuf := r.Alltoall(sendBuf, tile*16)
	bytePool.Put(sendBuf)
	var out []complex128
	if toB {
		out = c128Pool.Get(xSlab * ny * nz)
	} else {
		out = c128Pool.Get(zSlab * ny * nx)
	}
	for src := 0; src < ranks; src++ {
		base := src * tile
		for i := 0; i < tile; i++ {
			off := (base + i) * 16
			v := complex(
				math.Float64frombits(binary.LittleEndian.Uint64(recvBuf[off:])),
				math.Float64frombits(binary.LittleEndian.Uint64(recvBuf[off+8:])))
			xi := i / (ny * zSlab)
			y := (i / zSlab) % ny
			zi := i % zSlab
			if toB {
				// Tile from rank src holds its z-planes of my x-columns.
				z := src*zSlab + zi
				out[(xi*ny+y)*nz+z] = v
			} else {
				// Tile from rank src holds its x-columns of my z-planes.
				x := src*xSlab + xi
				out[(zi*ny+y)*nx+x] = v
			}
		}
	}
	simmpi.Recycle(recvBuf)
	return out
}

// --- IS ---------------------------------------------------------------

// RunISMPI runs the IS benchmark as a real MPI program: each rank
// generates its key block from the shared RANDLC stream, the ranks agree
// on bucket boundaries, exchange keys with an all-to-all, and sort
// locally — the reference's structure. The concatenated result equals
// the serial RunIS output.
func RunISMPI(n, maxKey int64, iters, ranks int) (ISResult, error) {
	if maxKey <= 0 || n <= 0 {
		return ISResult{}, fmt.Errorf("npb: IS needs positive sizes")
	}
	if ranks < 1 || int64(ranks) > n || maxKey%int64(ranks) != 0 {
		return ISResult{}, fmt.Errorf("npb: %d ranks must divide maxKey %d", ranks, maxKey)
	}
	w, err := simmpi.NewWorld(simmpi.Config{Ranks: simmpi.HostPlacement(ranks, 1)})
	if err != nil {
		return ISResult{}, err
	}
	sorted := make([]int32, n)
	counts := make([]int64, ranks)
	err = w.Run(func(r *simmpi.Rank) {
		id := r.ID()
		lo, hi := blockRange(int(n), ranks, id)
		// Generate my block by seeking the stream (4 draws per key).
		keys := make([]int32, hi-lo)
		seed := RandSeek(DefaultSeed, int64(4*lo))
		kscale := float64(maxKey) / 4
		for i := range keys {
			x := Randlc(&seed, MultA)
			x += Randlc(&seed, MultA)
			x += Randlc(&seed, MultA)
			x += Randlc(&seed, MultA)
			keys[i] = int32(kscale * x)
		}
		// The reference's per-iteration mutations, applied by the owner
		// of each mutated global index.
		for it := 1; it <= iters; it++ {
			g1 := it % int(n)
			g2 := (it + int(maxKey/2)) % int(n)
			if g1 >= lo && g1 < hi {
				keys[g1-lo] = int32(it % int(maxKey))
			}
			if g2 >= lo && g2 < hi {
				keys[g2-lo] = int32(maxKey - 1 - int64(it)%maxKey)
			}
		}
		// Bucket by destination rank: key k goes to rank k/(maxKey/ranks).
		per := maxKey / int64(ranks)
		outgoing := make([][]int32, ranks)
		for _, k := range keys {
			d := int(int64(k) / per)
			outgoing[d] = append(outgoing[d], k)
		}
		// Agree on the max block size, pad with -1, exchange.
		maxCount := 0.0
		for _, o := range outgoing {
			if float64(len(o)) > maxCount {
				maxCount = float64(len(o))
			}
		}
		block := int(r.Allreduce([]float64{maxCount}, simmpi.OpMax)[0])
		if block == 0 {
			block = 1
		}
		send := make([]byte, ranks*block*4)
		for d, o := range outgoing {
			for i := 0; i < block; i++ {
				v := int32(-1)
				if i < len(o) {
					v = o[i]
				}
				binary.LittleEndian.PutUint32(send[(d*block+i)*4:], uint32(v))
			}
		}
		recvd := r.Alltoall(send, block*4)
		// Local counting sort of my bucket.
		bucketLo := int64(id) * per
		hist := make([]int64, per)
		var mine int64
		for i := 0; i < len(recvd)/4; i++ {
			v := int32(binary.LittleEndian.Uint32(recvd[i*4:]))
			if v < 0 {
				continue
			}
			hist[int64(v)-bucketLo]++
			mine++
		}
		// Global placement: my bucket starts after all lower buckets.
		startF := r.Allgather(f64ToBytesBuf([]float64{float64(mine)}))
		start := int64(0)
		for j := 0; j < id; j++ {
			start += int64(bytesToF64Buf(startF[j*8 : (j+1)*8])[0])
		}
		pos := start
		for v, c := range hist {
			for j := int64(0); j < c; j++ {
				sorted[pos+j] = int32(int64(v) + bucketLo)
			}
			pos += c
		}
		counts[id] = mine
	})
	if err != nil {
		return ISResult{}, err
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != n {
		return ISResult{}, fmt.Errorf("npb: IS exchange lost keys: %d of %d", total, n)
	}
	return ISResult{Sorted: sorted, Iterations: iters}, nil
}
