// Package machine is the hardware model of NASA's "Maia" system: a 128-node
// SGI Rackable cluster whose nodes pair two Intel Xeon E5-2670 ("Sandy
// Bridge") processors with two Intel Xeon Phi 5110P coprocessors.
//
// Every quantity the paper's evaluation hinges on — clock rates, SIMD
// widths, cache geometry and latencies, memory channels and bandwidths,
// interconnect rates, hardware threading — is an explicit, documented
// parameter here (the paper's Table 1 and Figures 2–3). The rest of the
// repository consumes these parameters; nothing else hard-codes hardware
// numbers.
package machine

import "fmt"

// Multithreading describes how a processor presents hardware threads.
type Multithreading int

const (
	// HyperThreading is Sandy Bridge SMT: optional (can be disabled) and
	// aimed at improving utilization of an out-of-order core. The paper
	// finds compute-intensive codes gain nothing (or lose) from it.
	HyperThreading Multithreading = iota
	// HardwareThreads is the MIC scheme: four contexts per in-order core,
	// always on, required to hide in-order pipeline stalls. A core cannot
	// issue back-to-back instructions from the same thread, so a single
	// thread per core reaches at most half of peak issue rate.
	HardwareThreads
)

// String implements fmt.Stringer.
func (m Multithreading) String() string {
	switch m {
	case HyperThreading:
		return "HyperThread"
	case HardwareThreads:
		return "Hardware Threads"
	default:
		return fmt.Sprintf("Multithreading(%d)", int(m))
	}
}

// CacheLevel describes one level of a processor's cache hierarchy.
type CacheLevel struct {
	Name            string  // "L1", "L2", "L3"
	SizeBytes       int     // capacity visible to one core (shared levels: total)
	LineBytes       int     // cache line size
	Assoc           int     // set associativity
	LatencyNs       float64 // load-to-use latency for a hit in this level
	Shared          bool    // true if shared by all cores of the processor
	WritePerCoreGBs float64 // sustained per-core write bandwidth hitting this level
	ReadPerCoreGBs  float64 // sustained per-core read bandwidth hitting this level
}

// ProcessorSpec is the architectural model of one processor (a Sandy Bridge
// socket or a Xeon Phi card).
type ProcessorSpec struct {
	Name         string // marketing name, e.g. "Intel Xeon E5-2670"
	Architecture string // "Sandy Bridge" or "Many Integrated Core"

	Cores          int     // physical cores
	BaseGHz        float64 // base clock
	TurboGHz       float64 // max turbo clock (0 if not supported)
	FlopsPerClock  int     // double-precision flops per clock per core at peak
	SIMDWidthBits  int     // vector register width
	ThreadsPerCore int     // hardware thread contexts per core
	InOrder        bool    // true for the Phi's in-order P54C-derived pipeline
	MT             Multithreading

	Caches []CacheLevel // ordered L1 data, L2[, L3]

	// Memory system.
	MemTechnology      string  // "DDR3-1600" or "GDDR5-3400"
	MemChannels        int     // independent memory channels
	MemControllers     int     // memory controllers
	MemBanks           int     // independently open DRAM banks (bank-group limit)
	MemLatencyNs       float64 // load latency to main memory
	MemPeakGBs         float64 // peak memory bandwidth of the whole processor
	MemSustainedGBs    float64 // best sustained STREAM-triad bandwidth
	MemReadPerCoreGBs  float64 // sustained per-core read bandwidth from DRAM
	MemWritePerCoreGBs float64 // sustained per-core write bandwidth to DRAM
	MemGB              int     // memory capacity attached to this processor

	// OSReservedCores counts cores the OS effectively owns; scheduling user
	// work onto them incurs heavy interference (the Phi's 60th core runs
	// the MPSS micro-OS services).
	OSReservedCores int
}

// Clone returns a deep copy of the spec: the Caches slice is copied, so
// mutating the clone's cache levels cannot affect the original.
func (p ProcessorSpec) Clone() ProcessorSpec {
	c := p
	c.Caches = append([]CacheLevel(nil), p.Caches...)
	return c
}

// PeakGflopsPerCore returns the peak double-precision rate of one core.
func (p ProcessorSpec) PeakGflopsPerCore() float64 {
	return p.BaseGHz * float64(p.FlopsPerClock)
}

// PeakGflops returns the peak double-precision rate of the processor.
func (p ProcessorSpec) PeakGflops() float64 {
	return p.PeakGflopsPerCore() * float64(p.Cores)
}

// MaxThreads returns the total hardware thread count.
func (p ProcessorSpec) MaxThreads() int { return p.Cores * p.ThreadsPerCore }

// UsableCores returns the cores an application should use (total minus the
// OS-reserved ones). On the Phi this is 59: the paper shows 59/118/177/236
// threads far outperform 60/120/180/240.
func (p ProcessorSpec) UsableCores() int { return p.Cores - p.OSReservedCores }

// CacheBytesPerCore returns the total cache capacity one core can call its
// own: private levels in full, shared levels divided by core count. The
// paper quotes 544 KB for the Phi vs 2.788 MB ("2788 KB") for the host, a
// factor of 5.1.
func (p ProcessorSpec) CacheBytesPerCore() int {
	total := 0
	for _, c := range p.Caches {
		if c.Shared {
			total += c.SizeBytes / p.Cores
		} else {
			total += c.SizeBytes
		}
	}
	return total
}

// Level returns the cache level with the given name and true, or a zero
// CacheLevel and false if the processor has no such level.
func (p ProcessorSpec) Level(name string) (CacheLevel, bool) {
	for _, c := range p.Caches {
		if c.Name == name {
			return c, true
		}
	}
	return CacheLevel{}, false
}

// SandyBridge returns the model of one Intel Xeon E5-2670 socket as
// deployed in Maia (Table 1; Figure 2; Section 6.2 measurements).
func SandyBridge() ProcessorSpec {
	return ProcessorSpec{
		Name:           "Intel Xeon E5-2670",
		Architecture:   "Sandy Bridge",
		Cores:          8,
		BaseGHz:        2.60,
		TurboGHz:       3.20,
		FlopsPerClock:  8, // 256-bit AVX: 4 DP add + 4 DP mul per clock
		SIMDWidthBits:  256,
		ThreadsPerCore: 2,
		InOrder:        false,
		MT:             HyperThreading,
		Caches: []CacheLevel{
			{Name: "L1", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8,
				LatencyNs: 1.5, ReadPerCoreGBs: 12.6, WritePerCoreGBs: 10.4},
			{Name: "L2", SizeBytes: 256 << 10, LineBytes: 64, Assoc: 8,
				LatencyNs: 4.6, ReadPerCoreGBs: 12.3, WritePerCoreGBs: 9.5},
			{Name: "L3", SizeBytes: 20 << 20, LineBytes: 64, Assoc: 20,
				LatencyNs: 15, Shared: true, ReadPerCoreGBs: 11.6, WritePerCoreGBs: 8.6},
		},
		MemTechnology:      "DDR3-1600",
		MemChannels:        4,
		MemControllers:     1,
		MemBanks:           32, // 4 channels x 8 banks; never the bottleneck here
		MemLatencyNs:       81,
		MemPeakGBs:         51.2,
		MemSustainedGBs:    38.0, // per socket; two sockets sustain ~76 GB/s triad
		MemReadPerCoreGBs:  7.5,
		MemWritePerCoreGBs: 7.2,
		MemGB:              16, // per socket; 32 GB per node across two sockets
	}
}

// XeonPhi5110P returns the model of one Intel Xeon Phi 5110P coprocessor
// (Table 1; Figure 3; Section 6.2 measurements).
func XeonPhi5110P() ProcessorSpec {
	return ProcessorSpec{
		Name:           "Intel Xeon Phi 5110P",
		Architecture:   "Many Integrated Core",
		Cores:          60,
		BaseGHz:        1.05,
		TurboGHz:       0,
		FlopsPerClock:  16, // 512-bit vector FMA: 8 DP mul-add per clock
		SIMDWidthBits:  512,
		ThreadsPerCore: 4,
		InOrder:        true,
		MT:             HardwareThreads,
		Caches: []CacheLevel{
			{Name: "L1", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8,
				LatencyNs: 2.9, ReadPerCoreGBs: 1.680, WritePerCoreGBs: 1.538},
			{Name: "L2", SizeBytes: 512 << 10, LineBytes: 64, Assoc: 8,
				LatencyNs: 22.9, ReadPerCoreGBs: 0.971, WritePerCoreGBs: 0.962},
		},
		MemTechnology:      "GDDR5-3400",
		MemChannels:        16, // 8 controllers x two 32-bit channels
		MemControllers:     8,
		MemBanks:           128, // 16 banks/device x 8 devices: the Fig 4 limit
		MemLatencyNs:       295,
		MemPeakGBs:         320,
		MemSustainedGBs:    180, // STREAM triad at 59 or 118 threads (Fig 4)
		MemReadPerCoreGBs:  0.504,
		MemWritePerCoreGBs: 0.263,
		MemGB:              8,
		OSReservedCores:    1,
	}
}
