package machine

import "fmt"

// Partition is a set of execution resources on one device of a node: the
// thing a native-mode program, one side of a symmetric run, or an offloaded
// region executes on.
type Partition struct {
	Device         Device
	Proc           ProcessorSpec
	Cores          int // physical cores in use
	ThreadsPerCore int // hardware threads used per core
	// UsesOSCore is true when the placement spills onto an OS-reserved
	// core (e.g. 240 threads on the Phi use the 60th core, which hosts
	// MPSS services; the paper's Fig 24 shows the penalty).
	UsesOSCore bool
}

// HostPartition returns a partition of the full 16-core host using the
// given number of threads per core (1 = one thread per core, 2 = with
// HyperThreading).
func HostPartition(n *Node, threadsPerCore int) Partition {
	p := n.HostProc
	return Partition{
		Device:         Host,
		Proc:           p,
		Cores:          n.HostCores(),
		ThreadsPerCore: clampThreads(threadsPerCore, p),
	}
}

// HostCoresPartition returns a host partition restricted to cores cores.
func HostCoresPartition(n *Node, cores, threadsPerCore int) Partition {
	p := HostPartition(n, threadsPerCore)
	if cores < 1 {
		cores = 1
	}
	if cores > p.Cores {
		cores = p.Cores
	}
	p.Cores = cores
	return p
}

// PhiPartition returns a partition on the given Phi card using the first
// `cores` cores with threadsPerCore threads each. Using all 60 cores marks
// the partition as touching the OS core.
func PhiPartition(n *Node, dev Device, cores, threadsPerCore int) Partition {
	if !dev.IsPhi() {
		panic(fmt.Sprintf("machine: PhiPartition on %v", dev))
	}
	p := n.PhiProc
	if cores < 1 {
		cores = 1
	}
	if cores > p.Cores {
		cores = p.Cores
	}
	return Partition{
		Device:         dev,
		Proc:           p,
		Cores:          cores,
		ThreadsPerCore: clampThreads(threadsPerCore, p),
		UsesOSCore:     cores > p.UsableCores(),
	}
}

// PhiThreadsPartition places exactly `threads` threads on a Phi the way the
// paper does: threads are distributed one per core first, so 59 threads is
// one thread on each usable core, 118 is two, 236 is four, and 240 spills
// onto the OS core.
func PhiThreadsPartition(n *Node, dev Device, threads int) Partition {
	p := n.PhiProc
	if threads < 1 {
		threads = 1
	}
	if threads > p.MaxThreads() {
		threads = p.MaxThreads()
	}
	// Balanced placement: one thread per core up to 60, then a second
	// context on each core, and so on — so 59 threads leave the OS core
	// free while 60 claim it.
	tpc := (threads + p.Cores - 1) / p.Cores
	cores := (threads + tpc - 1) / tpc
	part := PhiPartition(n, dev, cores, tpc)
	part.UsesOSCore = cores > p.UsableCores()
	return part
}

func clampThreads(t int, p ProcessorSpec) int {
	if t < 1 {
		return 1
	}
	if t > p.ThreadsPerCore {
		return p.ThreadsPerCore
	}
	return t
}

// Threads returns the total thread count of the partition.
func (p Partition) Threads() int { return p.Cores * p.ThreadsPerCore }

// PeakGflops returns the peak double-precision rate of the partition.
func (p Partition) PeakGflops() float64 {
	return float64(p.Cores) * p.Proc.PeakGflopsPerCore()
}

// String implements fmt.Stringer, e.g. "Phi0[59c x 3t]".
func (p Partition) String() string {
	return fmt.Sprintf("%v[%dc x %dt]", p.Device, p.Cores, p.ThreadsPerCore)
}
