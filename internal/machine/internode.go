package machine

import (
	"fmt"
	"math/bits"

	"maia/internal/vclock"
)

// InterNodeFabric models the rack-level interconnect of Table 1: the 128
// compute nodes are joined by 4x FDR InfiniBand in an enhanced-hypercube
// topology (SGI's "single-plane enhanced hypercube"). Node addresses are
// hypercube corners; the distance between two nodes is the Hamming
// distance of their indices, and each extra hop adds switch latency and
// derates the achievable point-to-point bandwidth (links deeper in the
// cube carry more contending traffic).
//
// The single-hop numbers are calibrated to the pre-existing two-node
// model (1.8 us MPI latency, 5.8 GB/s effective bandwidth over the
// 7 GB/s FDR link), so a 2-node fabric prices messages exactly like the
// flat two-host path did.
type InterNodeFabric struct {
	// Nodes is the number of addressable nodes (hypercube corners in
	// use). Power-of-two counts form a complete cube; other counts are
	// an incomplete cube that still routes by Hamming distance.
	Nodes int
	// Link is the per-port link technology (4x FDR InfiniBand).
	Link LinkSpec
	// BaseLatency is the one-hop MPI small-message latency: HCA
	// injection, one switch traversal, HCA ejection.
	BaseLatency vclock.Time
	// PerHopLatency is the added latency of each switch hop past the
	// first.
	PerHopLatency vclock.Time
	// LinkGBs is the effective single-hop MPI bandwidth in GB/s
	// (protocol efficiency already applied to Link.PeakGBs).
	LinkGBs float64
	// HopDerate multiplies the effective bandwidth once per hop past
	// the first, modeling contention on shared higher-dimension links.
	HopDerate float64
}

// NewRackFabric returns the Table 1 rack fabric over the given number of
// nodes (2–128 in the paper's machine; larger cubes are allowed). It
// panics on fewer than two nodes — a single node has no fabric.
func NewRackFabric(nodes int) *InterNodeFabric {
	if nodes < 2 {
		panic(fmt.Sprintf("machine: rack fabric needs >= 2 nodes, got %d", nodes))
	}
	return &InterNodeFabric{
		Nodes:         nodes,
		Link:          FDRInfiniBand(),
		BaseLatency:   1.8 * vclock.Microsecond,
		PerHopLatency: 0.2 * vclock.Microsecond,
		LinkGBs:       5.8,
		HopDerate:     0.94,
	}
}

// Dims returns the hypercube dimensionality: the smallest d with
// 2^d >= Nodes. It is also the fabric diameter in hops.
func (f *InterNodeFabric) Dims() int {
	d := 0
	for 1<<d < f.Nodes {
		d++
	}
	return d
}

// HopCount returns the routing distance between two nodes: the Hamming
// distance of their hypercube addresses. Zero for a == b.
func (f *InterNodeFabric) HopCount(a, b int) int {
	return bits.OnesCount(uint(a) ^ uint(b))
}

// Route returns the dimension-order route from a to b: the sequence of
// nodes visited after a, correcting address bits from least to most
// significant. len(Route(a,b)) == HopCount(a,b), and every step flips
// exactly one bit. On an incomplete (non-power-of-two) cube an
// intermediate corner may be an unpopulated switch port; the endpoint is
// always b.
func (f *InterNodeFabric) Route(a, b int) []int {
	diff := uint(a) ^ uint(b)
	route := make([]int, 0, bits.OnesCount(diff))
	cur := uint(a)
	for diff != 0 {
		bit := diff & -diff
		cur ^= bit
		diff ^= bit
		route = append(route, int(cur))
	}
	return route
}

// Alpha returns the one-way small-message latency across the given
// number of hops.
func (f *InterNodeFabric) Alpha(hops int) vclock.Time {
	if hops < 1 {
		return 0
	}
	return f.BaseLatency + vclock.Time(hops-1)*f.PerHopLatency
}

// HopGBs returns the effective bandwidth in GB/s across the given number
// of hops: the single-hop bandwidth derated once per extra hop.
func (f *InterNodeFabric) HopGBs(hops int) float64 {
	gbs := f.LinkGBs
	for h := 1; h < hops; h++ {
		gbs *= f.HopDerate
	}
	return gbs
}

// FlightTime returns the latency-plus-bandwidth flight of n bytes from
// node a to node b (zero for a == b). Monotone in n, non-negative.
func (f *InterNodeFabric) FlightTime(a, b, n int) vclock.Time {
	hops := f.HopCount(a, b)
	if hops == 0 {
		return 0
	}
	return f.Alpha(hops) + vclock.Time(float64(n)/(f.HopGBs(hops)*1e9))
}

// BisectionGBs returns the bisection bandwidth of the cube: Nodes/2
// links cross any balanced cut of a complete hypercube.
func (f *InterNodeFabric) BisectionGBs() float64 {
	return f.LinkGBs * float64(f.Nodes/2)
}

// String describes the fabric in one line.
func (f *InterNodeFabric) String() string {
	return fmt.Sprintf("%d-node hypercube, %s, %d dims, %.1f GB/s/link, %.0f GB/s bisection",
		f.Nodes, f.Link.Name, f.Dims(), f.LinkGBs, f.BisectionGBs())
}
