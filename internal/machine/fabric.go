package machine

// LinkSpec describes one point-to-point transport inside (or out of) a node.
type LinkSpec struct {
	Name string
	// RawGTs is the signalling rate in giga-transfers per second
	// (0 when not meaningful for the transport).
	RawGTs float64
	// PeakGBs is the peak data bandwidth in one direction, GB/s.
	PeakGBs float64
	// Lanes or links aggregated (QPI links, PCIe lanes).
	Lanes int
}

// QPI returns the socket-to-socket interconnect of the host: two QPI links
// at 8 GT/s moving 2 bytes per transfer per direction, 32 GB/s aggregate.
func QPI() LinkSpec {
	return LinkSpec{Name: "QPI", RawGTs: 8.0, PeakGBs: 32.0, Lanes: 2}
}

// PCIeGen2x16 returns the 16-lane PCI Express 2.0 connection of each Phi:
// 5 GT/s per lane with 8b/10b encoding, 8 GB/s peak payload per direction.
func PCIeGen2x16() LinkSpec {
	return LinkSpec{Name: "PCIe 2.0 x16", RawGTs: 5.0, PeakGBs: 8.0, Lanes: 16}
}

// PCIeGen3x40 returns the host processor's integrated PCIe 3.0 complex
// (40 lanes at 8 GT/s).
func PCIeGen3x40() LinkSpec {
	return LinkSpec{Name: "PCIe 3.0 x40", RawGTs: 8.0, PeakGBs: 40.0, Lanes: 40}
}

// FDRInfiniBand returns the inter-node fabric: 4x FDR InfiniBand,
// 56 Gbit/s per port (the paper quotes 56 GB/s peak network performance
// for the hypercube fabric as a whole).
func FDRInfiniBand() LinkSpec {
	return LinkSpec{Name: "4x FDR InfiniBand", RawGTs: 14.0625, PeakGBs: 7.0, Lanes: 4}
}

// CoreRing returns the Phi's bi-directional ring interconnect that joins
// cores, distributed tag directories, and the eight GDDR5 memory
// controllers.
func CoreRing() LinkSpec {
	// 512-bit data ring at core clock, one direction; the effective
	// number matters only through MemSustainedGBs, but the ring is modeled
	// so per-hop costs can be charged for coherence traffic.
	return LinkSpec{Name: "Core Ring Interface", RawGTs: 1.05, PeakGBs: 67.2, Lanes: 2}
}
