package machine_test

import (
	"fmt"

	"maia/internal/machine"
)

// The modeled Maia system reproduces the paper's Table 1 quantities.
func ExampleNewSystem() {
	sys := machine.NewSystem()
	fmt.Printf("%d nodes, %d + %d cores\n",
		sys.Nodes, sys.TotalHostCores(), sys.TotalPhiCores())
	fmt.Printf("Phi peak: %.1f Gflop/s per card\n", sys.Node.PhiPeakGflops())
	// Output:
	// 128 nodes, 2048 + 15360 cores
	// Phi peak: 1008.0 Gflop/s per card
}

// Thread placements follow the paper's convention: one context per core
// first, so 59 threads leave the MPSS OS core free and 236 threads run
// four deep on 59 cores.
func ExamplePhiThreadsPartition() {
	n := machine.NewNode()
	for _, th := range []int{59, 236, 240} {
		p := machine.PhiThreadsPartition(n, machine.Phi0, th)
		fmt.Printf("%d threads -> %v (OS core: %v)\n", th, p, p.UsesOSCore)
	}
	// Output:
	// 59 threads -> Phi0[59c x 1t] (OS core: false)
	// 236 threads -> Phi0[59c x 4t] (OS core: false)
	// 240 threads -> Phi0[60c x 4t] (OS core: true)
}
