package machine

import (
	"math/bits"
	"testing"

	"maia/internal/vclock"
)

func TestRackFabricTable1(t *testing.T) {
	f := NewRackFabric(128)
	if f.Link.Name != FDRInfiniBand().Name {
		t.Errorf("fabric link = %q, want FDR InfiniBand", f.Link.Name)
	}
	if f.Dims() != 7 {
		t.Errorf("128-node cube dims = %d, want 7", f.Dims())
	}
	if got := f.BisectionGBs(); !almost(got, 64*5.8, 1e-9) {
		t.Errorf("bisection = %v GB/s, want %v", got, 64*5.8)
	}
	// The single-hop numbers are pinned to the legacy two-node model so
	// rack worlds at hops=1 price exactly like the flat path did.
	if f.Alpha(1) != 1.8*vclock.Microsecond {
		t.Errorf("one-hop alpha = %v, want 1.8us", f.Alpha(1))
	}
	if f.HopGBs(1) != 5.8 {
		t.Errorf("one-hop bandwidth = %v, want 5.8", f.HopGBs(1))
	}
}

func TestRackFabricPanicsOnOneNode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRackFabric(1) did not panic")
		}
	}()
	NewRackFabric(1)
}

func TestHopCountAndRoute(t *testing.T) {
	f := NewRackFabric(128)
	cases := []struct{ a, b, hops int }{
		{0, 0, 0}, {0, 1, 1}, {0, 127, 7}, {5, 3, 2}, {64, 0, 1}, {85, 42, 7},
	}
	for _, c := range cases {
		if got := f.HopCount(c.a, c.b); got != c.hops {
			t.Errorf("HopCount(%d,%d) = %d, want %d", c.a, c.b, got, c.hops)
		}
		route := f.Route(c.a, c.b)
		if len(route) != c.hops {
			t.Errorf("len(Route(%d,%d)) = %d, want %d", c.a, c.b, len(route), c.hops)
		}
		cur := c.a
		for _, next := range route {
			if bits.OnesCount(uint(cur)^uint(next)) != 1 {
				t.Errorf("Route(%d,%d) step %d->%d flips %d bits", c.a, c.b, cur, next,
					bits.OnesCount(uint(cur)^uint(next)))
			}
			cur = next
		}
		if c.hops > 0 && cur != c.b {
			t.Errorf("Route(%d,%d) ends at %d", c.a, c.b, cur)
		}
	}
}

func TestFlightTimeShape(t *testing.T) {
	f := NewRackFabric(128)
	if f.FlightTime(3, 3, 1<<20) != 0 {
		t.Error("self flight must be zero")
	}
	// More hops: strictly more latency, strictly less bandwidth.
	if f.Alpha(3) <= f.Alpha(1) || f.HopGBs(3) >= f.HopGBs(1) {
		t.Errorf("hop scaling wrong: alpha %v vs %v, gbs %v vs %v",
			f.Alpha(3), f.Alpha(1), f.HopGBs(3), f.HopGBs(1))
	}
	// Monotone in bytes across any pair.
	if f.FlightTime(0, 127, 1<<10) >= f.FlightTime(0, 127, 1<<20) {
		t.Error("flight not monotone in bytes")
	}
	// 2-node fabric's single hop matches the legacy flat constants.
	f2 := NewRackFabric(2)
	want := 1.8*vclock.Microsecond + vclock.Time(float64(4096)/(5.8*1e9))
	if got := f2.FlightTime(0, 1, 4096); got != want {
		t.Errorf("2-node flight = %v, want %v", got, want)
	}
}

// TestTable1AggregateInvariants is the catalog drift guard: the modeled
// 128-node system must keep summing to the paper's headline aggregates
// (2048 + 15360 cores, 42.6 + 258.8 = 301.4 Tflop/s) and the fabric must
// reach every node within the cube diameter.
func TestTable1AggregateInvariants(t *testing.T) {
	s := NewSystem()
	host, phi, total := s.PeakTflops()
	if !almost(host+phi, total, 1e-12) {
		t.Errorf("peak sum %v != total %v", host+phi, total)
	}
	if !almost(total, 301.4, 0.01) {
		t.Errorf("system peak = %v Tflop/s, want 301.4", total)
	}
	if got := float64(s.Nodes) * s.Node.HostPeakGflops() / 1000; !almost(got, host, 1e-12) {
		t.Errorf("host aggregate %v != nodes x per-node %v", host, got)
	}
	if s.TotalHostCores() != 2048 || s.TotalPhiCores() != 15360 {
		t.Errorf("core counts = %d/%d, want 2048/15360", s.TotalHostCores(), s.TotalPhiCores())
	}
	f := NewRackFabric(s.Nodes)
	for _, pair := range [][2]int{{0, s.Nodes - 1}, {17, 100}, {1, 2}} {
		if h := f.HopCount(pair[0], pair[1]); h > f.Dims() {
			t.Errorf("HopCount(%d,%d) = %d exceeds diameter %d", pair[0], pair[1], h, f.Dims())
		}
	}
}

// normNodes clamps an arbitrary fuzz int to a power-of-two node count in
// [2, 1024]; normAddr clamps an address into the cube.
func normNodes(v int) int {
	if v < 0 {
		v = -v
	}
	return 2 << (v % 10)
}

func normAddr(v, nodes int) int {
	if v < 0 {
		v = -v
	}
	return v % nodes
}

// FuzzHypercubeRoute checks that routing always terminates within the
// cube diameter, flips exactly one address bit per hop, and lands on the
// destination.
func FuzzHypercubeRoute(f *testing.F) {
	f.Add(0, 127, 128)
	f.Add(5, 3, 8)
	f.Add(85, 42, 128)
	f.Add(0, 0, 2)
	f.Add(1023, 0, 1024)
	f.Fuzz(func(t *testing.T, a, b, nodes int) {
		n := normNodes(nodes)
		fab := NewRackFabric(n)
		src, dst := normAddr(a, n), normAddr(b, n)
		hops := fab.HopCount(src, dst)
		if hops < 0 || hops > fab.Dims() {
			t.Fatalf("HopCount(%d,%d)=%d outside [0,%d]", src, dst, hops, fab.Dims())
		}
		route := fab.Route(src, dst)
		if len(route) != hops {
			t.Fatalf("route length %d != hop count %d", len(route), hops)
		}
		cur := src
		for _, next := range route {
			if bits.OnesCount(uint(cur)^uint(next)) != 1 {
				t.Fatalf("step %d->%d flips %d bits", cur, next, bits.OnesCount(uint(cur)^uint(next)))
			}
			if next < 0 || next >= n {
				t.Fatalf("route leaves the complete cube: %d not in [0,%d)", next, n)
			}
			cur = next
		}
		if cur != dst {
			t.Fatalf("route from %d ends at %d, want %d", src, cur, dst)
		}
	})
}

// FuzzInterNodeFlight checks the flight-time model: non-negative, zero
// only for self-sends, and monotone non-decreasing in the byte count.
func FuzzInterNodeFlight(f *testing.F) {
	f.Add(0, 127, 128, 0, 1<<20)
	f.Add(3, 5, 8, 64, 65)
	f.Add(1, 1, 2, 1024, 4096)
	f.Add(100, 27, 128, 8<<10, 9<<10)
	f.Fuzz(func(t *testing.T, a, b, nodes, n1, n2 int) {
		n := normNodes(nodes)
		fab := NewRackFabric(n)
		src, dst := normAddr(a, n), normAddr(b, n)
		if n1 < 0 {
			n1 = -n1
		}
		if n2 < 0 {
			n2 = -n2
		}
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		t1, t2 := fab.FlightTime(src, dst, n1), fab.FlightTime(src, dst, n2)
		if t1 < 0 || t2 < 0 {
			t.Fatalf("negative flight: %v / %v", t1, t2)
		}
		if src == dst {
			if t1 != 0 || t2 != 0 {
				t.Fatalf("self flight nonzero: %v / %v", t1, t2)
			}
			return
		}
		if t1 == 0 || t2 == 0 {
			t.Fatalf("cross-node flight is zero: %v / %v", t1, t2)
		}
		if t1 > t2 {
			t.Fatalf("flight not monotone in bytes: %d bytes -> %v, %d bytes -> %v", n1, t1, n2, t2)
		}
	})
}
