package machine

import (
	"math"
	"testing"
)

func almost(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Abs(want)
}

// The processor models must reproduce the derived quantities the paper's
// Table 1 reports.
func TestSandyBridgeTable1(t *testing.T) {
	p := SandyBridge()
	if got := p.PeakGflopsPerCore(); !almost(got, 20.8, 1e-9) {
		t.Errorf("SB per-core peak = %v, want 20.8", got)
	}
	if got := p.PeakGflops(); !almost(got, 166.4, 1e-9) {
		t.Errorf("SB socket peak = %v, want 166.4", got)
	}
	if p.Cores != 8 || p.ThreadsPerCore != 2 || p.SIMDWidthBits != 256 {
		t.Errorf("SB geometry wrong: %+v", p)
	}
	if p.InOrder {
		t.Error("Sandy Bridge modeled as in-order")
	}
	if p.MT != HyperThreading {
		t.Errorf("SB multithreading = %v", p.MT)
	}
	l3, ok := p.Level("L3")
	if !ok || l3.SizeBytes != 20<<20 || !l3.Shared {
		t.Errorf("SB L3 wrong: %+v ok=%v", l3, ok)
	}
}

func TestXeonPhiTable1(t *testing.T) {
	p := XeonPhi5110P()
	if got := p.PeakGflopsPerCore(); !almost(got, 16.8, 1e-9) {
		t.Errorf("Phi per-core peak = %v, want 16.8", got)
	}
	if got := p.PeakGflops(); !almost(got, 1008, 1e-9) {
		t.Errorf("Phi peak = %v, want 1008", got)
	}
	if p.Cores != 60 || p.ThreadsPerCore != 4 || p.SIMDWidthBits != 512 {
		t.Errorf("Phi geometry wrong: %+v", p)
	}
	if !p.InOrder {
		t.Error("Phi modeled as out-of-order")
	}
	if p.UsableCores() != 59 {
		t.Errorf("Phi usable cores = %d, want 59", p.UsableCores())
	}
	if p.MaxThreads() != 240 {
		t.Errorf("Phi max threads = %d, want 240", p.MaxThreads())
	}
	if _, ok := p.Level("L3"); ok {
		t.Error("Phi must not have an L3")
	}
}

// Section 6.2: total cache per core is 544 KB on the Phi vs 2.788 MB on the
// host, a factor of 5.1.
func TestCachePerCoreRatio(t *testing.T) {
	sb, phi := SandyBridge(), XeonPhi5110P()
	if got := phi.CacheBytesPerCore(); got != 544<<10 {
		t.Errorf("Phi cache/core = %d, want %d", got, 544<<10)
	}
	wantSB := 32<<10 + 256<<10 + (20<<20)/8
	if got := sb.CacheBytesPerCore(); got != wantSB {
		t.Errorf("SB cache/core = %d, want %d", got, wantSB)
	}
	// The paper quotes 5.1 using 2.5 MB = 2500 KB; with binary MB the exact
	// ratio is 5.24.
	ratio := float64(sb.CacheBytesPerCore()) / float64(phi.CacheBytesPerCore())
	if !almost(ratio, 5.1, 0.03) {
		t.Errorf("cache/core ratio = %v, want ~5.1", ratio)
	}
}

func TestLevelLookupMissing(t *testing.T) {
	if _, ok := SandyBridge().Level("L4"); ok {
		t.Error("found nonexistent L4")
	}
}

// Section 2: system peak 301.4 Tflop/s = 42.6 (host) + 258.8 (Phi);
// 2048 host cores and 15360 Phi cores; 6 TB total memory.
func TestSystemTotals(t *testing.T) {
	s := NewSystem()
	host, phi, total := s.PeakTflops()
	if !almost(host, 42.6, 0.01) {
		t.Errorf("host peak = %v Tflop/s, want ~42.6", host)
	}
	if !almost(phi, 258.0, 0.01) {
		t.Errorf("phi peak = %v Tflop/s, want ~258", phi)
	}
	if !almost(total, 301.4, 0.01) {
		t.Errorf("total peak = %v Tflop/s, want ~301.4", total)
	}
	if got := s.TotalHostCores(); got != 2048 {
		t.Errorf("host cores = %d, want 2048", got)
	}
	if got := s.TotalPhiCores(); got != 15360 {
		t.Errorf("phi cores = %d, want 15360", got)
	}
	if got := s.Nodes * s.Node.MemGB(); got != 6144 {
		t.Errorf("total memory = %d GB, want 6144", got)
	}
}

func TestNodeBasics(t *testing.T) {
	n := NewNode()
	if n.HostCores() != 16 {
		t.Errorf("host cores/node = %d, want 16", n.HostCores())
	}
	if !almost(n.HostPeakGflops(), 332.8, 1e-9) {
		t.Errorf("host peak/node = %v, want 332.8", n.HostPeakGflops())
	}
	if n.MemGB() != 48 {
		t.Errorf("node memory = %d GB, want 48", n.MemGB())
	}
	if n.Proc(Phi0).Name != n.PhiProc.Name || n.Proc(Host).Name != n.HostProc.Name {
		t.Error("Proc() device dispatch wrong")
	}
}

func TestDeviceString(t *testing.T) {
	if Host.String() != "host" || Phi0.String() != "Phi0" || Phi1.String() != "Phi1" {
		t.Error("Device.String wrong")
	}
	if Host.IsPhi() || !Phi0.IsPhi() || !Phi1.IsPhi() {
		t.Error("IsPhi wrong")
	}
}

func TestHostPartition(t *testing.T) {
	n := NewNode()
	p := HostPartition(n, 1)
	if p.Threads() != 16 || p.Device != Host {
		t.Errorf("host partition = %+v", p)
	}
	p2 := HostPartition(n, 2)
	if p2.Threads() != 32 {
		t.Errorf("HT host partition threads = %d, want 32", p2.Threads())
	}
	// Clamping.
	if HostPartition(n, 0).ThreadsPerCore != 1 || HostPartition(n, 9).ThreadsPerCore != 2 {
		t.Error("threadsPerCore clamping wrong")
	}
	p3 := HostCoresPartition(n, 4, 1)
	if p3.Cores != 4 || p3.Threads() != 4 {
		t.Errorf("HostCoresPartition(4,1) = %+v", p3)
	}
}

// The paper's thread placements: 59/118/177/236 threads use 59 cores at
// 1..4 threads per core; 60/120/180/240 spill onto the OS core (Fig 24).
func TestPhiThreadsPartition(t *testing.T) {
	n := NewNode()
	cases := []struct {
		threads, cores, tpc int
		osCore              bool
	}{
		{59, 59, 1, false},
		{60, 60, 1, true},
		{118, 59, 2, false},
		{120, 60, 2, true},
		{177, 59, 3, false},
		{180, 60, 3, true},
		{236, 59, 4, false},
		{240, 60, 4, true},
		{1, 1, 1, false},
		{1000, 60, 4, true}, // clamped to 240
	}
	for _, c := range cases {
		p := PhiThreadsPartition(n, Phi0, c.threads)
		if p.Cores != c.cores || p.ThreadsPerCore != c.tpc || p.UsesOSCore != c.osCore {
			t.Errorf("PhiThreadsPartition(%d) = cores %d tpc %d os %v, want %d %d %v",
				c.threads, p.Cores, p.ThreadsPerCore, p.UsesOSCore, c.cores, c.tpc, c.osCore)
		}
	}
}

func TestPhiPartitionPanicsOnHost(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PhiPartition(Host) did not panic")
		}
	}()
	PhiPartition(NewNode(), Host, 1, 1)
}

func TestPartitionString(t *testing.T) {
	n := NewNode()
	p := PhiPartition(n, Phi0, 59, 3)
	if got := p.String(); got != "Phi0[59c x 3t]" {
		t.Errorf("Partition.String() = %q", got)
	}
}

func TestLinkSpecs(t *testing.T) {
	if q := QPI(); q.RawGTs != 8.0 || q.PeakGBs != 32.0 {
		t.Errorf("QPI = %+v", q)
	}
	if p := PCIeGen2x16(); p.Lanes != 16 || p.RawGTs != 5.0 {
		t.Errorf("PCIe gen2 = %+v", p)
	}
	if ib := FDRInfiniBand(); ib.Lanes != 4 {
		t.Errorf("IB = %+v", ib)
	}
}
