package machine

import "fmt"

// Device identifies one of the three compute devices in a Maia node.
type Device int

const (
	// Host is the pair of Sandy Bridge sockets viewed as one 16-core,
	// cache-coherent NUMA system (the paper's "host").
	Host Device = iota
	// Phi0 is the Xeon Phi card on the first PCIe bus (shared with the
	// InfiniBand HCA).
	Phi0
	// Phi1 is the Xeon Phi card on the second PCIe bus. Reaching it from
	// the host crosses the socket-to-socket QPI as well, which is why the
	// paper measures higher latency to Phi1 than to Phi0.
	Phi1
)

// String implements fmt.Stringer.
func (d Device) String() string {
	switch d {
	case Host:
		return "host"
	case Phi0:
		return "Phi0"
	case Phi1:
		return "Phi1"
	default:
		return fmt.Sprintf("Device(%d)", int(d))
	}
}

// IsPhi reports whether d is one of the two coprocessors.
func (d Device) IsPhi() bool { return d == Phi0 || d == Phi1 }

// Node models one Maia node: two Sandy Bridge sockets sharing 32 GB of
// cache-coherent DDR3, and two Xeon Phi cards with 8 GB of GDDR5 each,
// attached by independent 16-lane PCIe 2.0 buses (Figure 1).
type Node struct {
	HostProc ProcessorSpec // per socket
	Sockets  int
	PhiProc  ProcessorSpec // per card
	Phis     int

	QPI       LinkSpec
	PCIe      LinkSpec // host <-> each Phi
	HCA       LinkSpec // InfiniBand adapter on the first PCIe bus
	HostMemGB int      // shared host memory
}

// NewNode returns the Maia node model.
func NewNode() *Node {
	return &Node{
		HostProc:  SandyBridge(),
		Sockets:   2,
		PhiProc:   XeonPhi5110P(),
		Phis:      2,
		QPI:       QPI(),
		PCIe:      PCIeGen2x16(),
		HCA:       FDRInfiniBand(),
		HostMemGB: 32,
	}
}

// Clone returns an independent deep copy of the node: the processor
// specs (including their cache-level slices) are copied, so concurrent
// users of clones share no mutable state.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := *n
	c.HostProc = n.HostProc.Clone()
	c.PhiProc = n.PhiProc.Clone()
	return &c
}

// Proc returns the processor spec backing device d.
func (n *Node) Proc(d Device) ProcessorSpec {
	if d.IsPhi() {
		return n.PhiProc
	}
	return n.HostProc
}

// HostCores returns the total host core count (both sockets).
func (n *Node) HostCores() int { return n.HostProc.Cores * n.Sockets }

// HostPeakGflops returns the peak of both host sockets combined.
func (n *Node) HostPeakGflops() float64 {
	return n.HostProc.PeakGflops() * float64(n.Sockets)
}

// PhiPeakGflops returns the peak of one coprocessor.
func (n *Node) PhiPeakGflops() float64 { return n.PhiProc.PeakGflops() }

// NodePeakGflops returns the total peak of the node.
func (n *Node) NodePeakGflops() float64 {
	return n.HostPeakGflops() + float64(n.Phis)*n.PhiPeakGflops()
}

// MemGB returns the total memory of the node (host + both Phis).
func (n *Node) MemGB() int {
	return n.HostMemGB + n.Phis*n.PhiProc.MemGB
}

// System models the full Maia installation.
type System struct {
	Name  string
	Nodes int
	Node  *Node

	Interconnect string // inter-node fabric topology
	FileSystem   string
	Compiler     string
	MPILibrary   string
	MathLibrary  string
	OS           string
}

// NewSystem returns the model of the 128-node Maia system (Table 1).
func NewSystem() *System {
	return &System{
		Name:         "Maia (SGI Rackable C1104G-RP5)",
		Nodes:        128,
		Node:         NewNode(),
		Interconnect: "4x FDR InfiniBand, hypercube",
		FileSystem:   "Lustre",
		Compiler:     "Intel 13.1",
		MPILibrary:   "Intel MPI 4.1",
		MathLibrary:  "Intel MKL 10.1",
		OS:           "SLES11SP2 / MPSS Gold",
	}
}

// TotalHostCores returns the Sandy Bridge core count of the system (2048).
func (s *System) TotalHostCores() int { return s.Nodes * s.Node.HostCores() }

// TotalPhiCores returns the Phi core count of the system (15360).
func (s *System) TotalPhiCores() int {
	return s.Nodes * s.Node.Phis * s.Node.PhiProc.Cores
}

// PeakTflops returns (host, phi, total) system peak in Tflop/s. The paper
// quotes 42.6 + 258.8 = 301.4 Tflop/s.
func (s *System) PeakTflops() (host, phi, total float64) {
	host = float64(s.Nodes) * s.Node.HostPeakGflops() / 1000
	phi = float64(s.Nodes*s.Node.Phis) * s.Node.PhiPeakGflops() / 1000
	return host, phi, host + phi
}
