package simomp

import (
	"fmt"
	"runtime"
	"sync"

	"maia/internal/simtrace"
	"maia/internal/vclock"
)

// ForOpts configures one work-shared loop.
type ForOpts struct {
	Sched Schedule
	// Chunk is the schedule chunk size; 0 selects the OpenMP default
	// (n/threads for STATIC, 1 for DYNAMIC and GUIDED).
	Chunk int
	// IterCost is the uniform virtual cost of one iteration. When CostFn
	// is non-nil it takes precedence.
	IterCost vclock.Time
	// CostFn gives a per-iteration virtual cost for irregular loops.
	CostFn func(i int) vclock.Time
	// NoWait elides the implied end-of-loop barrier (OpenMP `nowait`).
	NoWait bool
}

// Team is a fork/join thread team bound to a Runtime. Loop bodies execute
// for real on worker goroutines; virtual time is computed by simulating
// the schedule deterministically, so timing never depends on the Go
// scheduler.
type Team struct {
	rt      *Runtime
	threads int
	workers int
}

// NewTeam forks a team using every thread of the runtime's partition.
func NewTeam(rt *Runtime) *Team {
	w := runtime.GOMAXPROCS(0)
	if w > rt.part.Threads() {
		w = rt.part.Threads()
	}
	if w < 1 {
		w = 1
	}
	return &Team{rt: rt, threads: rt.part.Threads(), workers: w}
}

// Threads returns the team size (simulated threads, not Go workers).
func (t *Team) Threads() int { return t.threads }

// Runtime returns the backing runtime.
func (t *Team) Runtime() *Runtime { return t.rt }

// assignment maps each simulated thread to the chunks it executes.
type chunk struct{ lo, hi int } // [lo, hi)

// schedule computes, deterministically, which chunks each simulated
// thread executes and the virtual finish time of each thread, given the
// per-iteration cost model. It returns the per-thread chunk lists and the
// loop's span (max thread busy time, excluding barrier/fork overheads).
func (t *Team) schedule(n int, o ForOpts) (perThread [][]chunk, span vclock.Time) {
	perThread = make([][]chunk, t.threads)
	if n <= 0 {
		return perThread, 0
	}
	// Iteration costs are nominal healthy-machine durations; a straggler
	// device stretches them by the fault plan's steady factor.
	cost := func(lo, hi int) vclock.Time {
		if o.CostFn != nil {
			var s vclock.Time
			for i := lo; i < hi; i++ {
				s += o.CostFn(i)
			}
			return t.rt.scale(s)
		}
		return t.rt.scale(vclock.Time(hi-lo) * o.IterCost)
	}
	busy := make([]vclock.Time, t.threads)
	dispatch := t.rt.dispatchCost()

	switch o.Sched {
	case Static:
		chunkSize := o.Chunk
		if chunkSize <= 0 {
			chunkSize = (n + t.threads - 1) / t.threads
		}
		for c, tid := 0, 0; c*chunkSize < n; c, tid = c+1, (tid+1)%t.threads {
			lo := c * chunkSize
			hi := lo + chunkSize
			if hi > n {
				hi = n
			}
			perThread[tid] = append(perThread[tid], chunk{lo, hi})
			busy[tid] += cost(lo, hi)
		}
	case Dynamic:
		chunkSize := o.Chunk
		if chunkSize <= 0 {
			chunkSize = 1
		}
		// The dynamic scheduler's shared counter is a single serialized
		// resource: each dispatch must wait for both a free thread and
		// the counter. This is what makes DYNAMIC,1 so expensive on 236
		// threads (Figure 16).
		var counterFree vclock.Time
		for lo := 0; lo < n; lo += chunkSize {
			hi := lo + chunkSize
			if hi > n {
				hi = n
			}
			tid := earliest(busy)
			perThread[tid] = append(perThread[tid], chunk{lo, hi})
			start := vclock.Max(busy[tid], counterFree)
			counterFree = start + dispatch
			busy[tid] = start + dispatch + cost(lo, hi)
		}
	case Guided:
		minChunk := o.Chunk
		if minChunk <= 0 {
			minChunk = 1
		}
		var counterFree vclock.Time
		for lo := 0; lo < n; {
			size := (n - lo + t.threads - 1) / t.threads
			if size < minChunk {
				size = minChunk
			}
			hi := lo + size
			if hi > n {
				hi = n
			}
			tid := earliest(busy)
			perThread[tid] = append(perThread[tid], chunk{lo, hi})
			start := vclock.Max(busy[tid], counterFree)
			counterFree = start + dispatch
			busy[tid] = start + dispatch + cost(lo, hi)
			lo = hi
		}
	default:
		panic(fmt.Sprintf("simomp: unknown schedule %d", int(o.Sched)))
	}
	for _, b := range busy {
		if b > span {
			span = b
		}
	}
	return perThread, span
}

// earliest returns the index of the minimum element (ties to the lowest
// thread id, keeping the simulation deterministic).
func earliest(busy []vclock.Time) int {
	best := 0
	for i := 1; i < len(busy); i++ {
		if busy[i] < busy[best] {
			best = i
		}
	}
	return best
}

// run executes the per-thread chunk lists on real goroutines. body may be
// nil for timing-only loops.
func (t *Team) run(perThread [][]chunk, body func(i int)) {
	if body == nil {
		return
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, t.workers)
	for _, chunks := range perThread {
		if len(chunks) == 0 {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(chunks []chunk) {
			defer func() { <-sem; wg.Done() }()
			for _, c := range chunks {
				for i := c.lo; i < c.hi; i++ {
					body(i)
				}
			}
		}(chunks)
	}
	wg.Wait()
}

// For runs a work-shared loop of n iterations under a parallel region
// that already exists (OpenMP `#pragma omp for`). It returns the virtual
// time consumed: schedule span + FOR overhead (+ barrier unless NoWait).
//
// The body, when non-nil, really executes; iterations must be independent
// (the usual OpenMP loop contract).
func (t *Team) For(n int, o ForOpts, body func(i int)) vclock.Time {
	perThread, span := t.schedule(n, o)
	t.run(perThread, body)
	elapsed := span + t.rt.SyncOverhead(For)
	if !o.NoWait {
		elapsed += t.rt.SyncOverhead(Barrier)
	}
	t.rt.trace("for["+schedName(o.Sched)+"]", elapsed, countChunks(perThread))
	return elapsed
}

// ParallelFor runs `#pragma omp parallel for`: fork/join plus the loop.
func (t *Team) ParallelFor(n int, o ForOpts, body func(i int)) vclock.Time {
	perThread, span := t.schedule(n, o)
	t.run(perThread, body)
	elapsed := span + t.rt.SyncOverhead(ParallelFor)
	t.rt.trace("parallel_for["+schedName(o.Sched)+"]", elapsed, countChunks(perThread))
	return elapsed
}

// Parallel runs a bare parallel region: body(tid) executes once per
// simulated thread; perThreadCost gives each thread's virtual work (nil
// means zero). Returns fork/join overhead plus the longest thread.
func (t *Team) Parallel(body func(tid int), perThreadCost func(tid int) vclock.Time) vclock.Time {
	if body != nil {
		var wg sync.WaitGroup
		sem := make(chan struct{}, t.workers)
		for tid := 0; tid < t.threads; tid++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(tid int) {
				defer func() { <-sem; wg.Done() }()
				body(tid)
			}(tid)
		}
		wg.Wait()
	}
	var span vclock.Time
	if perThreadCost != nil {
		for tid := 0; tid < t.threads; tid++ {
			if c := perThreadCost(tid); c > span {
				span = c
			}
		}
	}
	elapsed := t.rt.scale(span) + t.rt.SyncOverhead(Parallel)
	t.rt.trace("parallel", elapsed, 0)
	return elapsed
}

// ForReduceSum runs a reduction loop (`parallel for reduction(+:sum)`),
// returning the real sum of body(i) over all iterations and the virtual
// time including the REDUCTION overhead.
//
// Partial sums are combined in deterministic thread order, so the
// floating-point result is reproducible run to run.
func (t *Team) ForReduceSum(n int, o ForOpts, body func(i int) float64) (float64, vclock.Time) {
	perThread, span := t.schedule(n, o)
	partials := make([]float64, t.threads)
	if body != nil {
		var wg sync.WaitGroup
		sem := make(chan struct{}, t.workers)
		for tid, chunks := range perThread {
			if len(chunks) == 0 {
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(tid int, chunks []chunk) {
				defer func() { <-sem; wg.Done() }()
				s := 0.0
				for _, c := range chunks {
					for i := c.lo; i < c.hi; i++ {
						s += body(i)
					}
				}
				partials[tid] = s
			}(tid, chunks)
		}
		wg.Wait()
	}
	sum := 0.0
	for _, p := range partials {
		sum += p
	}
	elapsed := span + t.rt.SyncOverhead(Reduction)
	t.rt.trace("reduction["+schedName(o.Sched)+"]", elapsed, countChunks(perThread))
	return sum, elapsed
}

// BarrierWait charges one explicit barrier.
func (t *Team) BarrierWait() vclock.Time {
	elapsed := t.rt.SyncOverhead(Barrier)
	if t.rt.tracer != nil {
		t.rt.trace("barrier", elapsed, 0)
		t.rt.tracer.Count(simtrace.CatOMP, "barriers", 1)
	}
	return elapsed
}

// SingleRegion executes body on one thread (`#pragma omp single`) and
// charges the SINGLE overhead plus the body's cost.
func (t *Team) SingleRegion(body func(), cost vclock.Time) vclock.Time {
	if body != nil {
		body()
	}
	elapsed := t.rt.scale(cost) + t.rt.SyncOverhead(Single)
	t.rt.trace("single", elapsed, 0)
	return elapsed
}

// schedName is the lower-case schedule tag in traced span names.
func schedName(s Schedule) string {
	switch s {
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return "static"
	}
}

// countChunks totals the dispatched chunks across a schedule.
func countChunks(perThread [][]chunk) int {
	n := 0
	for _, cs := range perThread {
		n += len(cs)
	}
	return n
}
