// Package simomp is a virtual-time OpenMP-style runtime: fork/join teams,
// work-sharing loops with the three OpenMP schedules, and the
// synchronization constructs whose overheads the paper measures with
// EPCC-style micro-benchmarks (Figures 15 and 16).
//
// The runtime plays two roles:
//
//  1. It is the execution vehicle for the OpenMP versions of the NAS
//     Parallel Benchmarks and the two CFD mini-apps: loop bodies really
//     run (on goroutines), so results are genuine and testable.
//  2. It charges deterministic virtual time: construct overheads come from
//     a per-device calibration table, and loop time is computed by
//     simulating the chosen schedule (chunk by chunk for DYNAMIC and
//     GUIDED) over the per-iteration cost model supplied by the caller.
//
// Virtual time never depends on the Go scheduler, so the reproduced
// figures are bit-for-bit repeatable.
package simomp

import (
	"fmt"
	"math"

	"maia/internal/machine"
	"maia/internal/simfault"
	"maia/internal/simtrace"
	"maia/internal/vclock"
)

// Construct enumerates the OpenMP constructs of the paper's Figure 15
// synchronization benchmark.
type Construct int

const (
	// Parallel is a bare `#pragma omp parallel` fork/join.
	Parallel Construct = iota
	// For is a work-shared loop inside an existing region (`omp for`).
	For
	// ParallelFor is the combined `omp parallel for`.
	ParallelFor
	// Barrier is an explicit `omp barrier`.
	Barrier
	// Single is `omp single` (one thread runs, others wait).
	Single
	// Critical is `omp critical` mutual exclusion.
	Critical
	// Lock is an omp_set_lock/omp_unset_lock pair.
	Lock
	// Ordered is `omp ordered` inside a loop.
	Ordered
	// Atomic is `omp atomic`.
	Atomic
	// Reduction is a loop with a `reduction(...)` clause.
	Reduction
	numConstructs
)

// String implements fmt.Stringer using the paper's labels.
func (c Construct) String() string {
	switch c {
	case Parallel:
		return "PARALLEL"
	case For:
		return "FOR"
	case ParallelFor:
		return "PARALLEL FOR"
	case Barrier:
		return "BARRIER"
	case Single:
		return "SINGLE"
	case Critical:
		return "CRITICAL"
	case Lock:
		return "LOCK/UNLOCK"
	case Ordered:
		return "ORDERED"
	case Atomic:
		return "ATOMIC"
	case Reduction:
		return "REDUCTION"
	default:
		return fmt.Sprintf("Construct(%d)", int(c))
	}
}

// Constructs lists every construct in Figure 15 display order.
func Constructs() []Construct {
	return []Construct{Parallel, For, ParallelFor, Barrier, Single,
		Critical, Lock, Ordered, Atomic, Reduction}
}

// Schedule is an OpenMP loop schedule (Figure 16).
type Schedule int

const (
	// Static divides iterations into chunks assigned round-robin at
	// compile time: no runtime arbitration, lowest overhead.
	Static Schedule = iota
	// Dynamic hands each chunk to the first idle thread via a shared
	// counter: best load balance, highest overhead.
	Dynamic
	// Guided is dynamic with geometrically shrinking chunks: fewer
	// dispatches than Dynamic for the same balance, overhead in between.
	Guided
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "STATIC"
	case Dynamic:
		return "DYNAMIC"
	case Guided:
		return "GUIDED"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// Schedules lists the three schedules in display order.
func Schedules() []Schedule { return []Schedule{Static, Dynamic, Guided} }

// overheadTable holds calibrated construct overheads (EPCC definition:
// Tp − Ts/p) at a reference thread count, plus the per-dispatch cost of
// the dynamic scheduler. All values in microseconds.
type overheadTable struct {
	refThreads int
	sync       [numConstructs]float64 // µs at refThreads
	dispatch   float64                // µs per dynamic chunk dispatch
	osCoreMult float64                // penalty when the OS core is used
}

// hostTable is calibrated so that the host side of Figures 15–16 matches
// EPCC-like measurements on a 16-core Sandy Bridge node.
var hostTable = overheadTable{
	refThreads: 16,
	sync: [numConstructs]float64{
		Parallel:    1.9,
		For:         0.9,
		ParallelFor: 2.1,
		Barrier:     0.8,
		Single:      1.0,
		Critical:    0.45,
		Lock:        0.4,
		Ordered:     0.55,
		Atomic:      0.12,
		Reduction:   2.6,
	},
	dispatch:   0.09,
	osCoreMult: 1,
}

// phiTable is calibrated to the Phi side of Figures 15–16: roughly an
// order of magnitude above the host for every construct, with REDUCTION
// dearest, then PARALLEL FOR and PARALLEL, and ATOMIC cheapest.
var phiTable = overheadTable{
	refThreads: 236,
	sync: [numConstructs]float64{
		Parallel:    21.0,
		For:         9.5,
		ParallelFor: 23.5,
		Barrier:     8.0,
		Single:      10.5,
		Critical:    4.8,
		Lock:        4.2,
		Ordered:     5.6,
		Atomic:      1.1,
		Reduction:   29.0,
	},
	dispatch:   1.0,
	osCoreMult: 2.5,
}

// Runtime is the per-partition OpenMP runtime model.
type Runtime struct {
	part  machine.Partition
	table overheadTable

	// slow is the fault plan's steady compute slowdown for this
	// partition's device (1 on the healthy machine).
	slow float64

	// Tracing state: tracer is nil when tracing is off; clock is the
	// runtime's trace timeline, advanced by each traced construct so
	// spans lay out sequentially on the track.
	tracer *simtrace.Tracer
	track  string
	clock  vclock.Clock
}

// Option configures a Runtime at construction.
type Option func(*Runtime)

// WithTracer returns an option attaching a tracer to the runtime:
// subsequent team constructs emit omp-category spans on the given
// track, laid out back-to-back on the runtime's own trace timeline. A
// nil tracer leaves tracing off.
func WithTracer(t *simtrace.Tracer, track string) Option {
	return func(r *Runtime) { r.setTracer(t, track) }
}

// WithFaultPlan returns an option pricing the runtime's constructs on
// the degraded machine the plan describes. OpenMP regions are priced in
// relative time (no absolute timeline), so the steady per-device
// slowdown — straggler entries — is the fault model that applies here;
// time-anchored throttle windows and failures are handled by the
// runtimes that keep an absolute clock (simmpi, offload). A nil or
// empty plan changes nothing.
func WithFaultPlan(p *simfault.Plan) Option {
	return func(r *Runtime) { r.slow = p.Slowdown(r.part.Device) }
}

// New returns the runtime for a partition.
func New(part machine.Partition, opts ...Option) *Runtime {
	t := hostTable
	if part.Device.IsPhi() {
		t = phiTable
	}
	r := &Runtime{part: part, table: t, slow: 1}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Partition returns the partition the runtime executes on.
func (r *Runtime) Partition() machine.Partition { return r.part }

// setTracer attaches a tracer to the runtime (see WithTracer). A nil
// tracer turns tracing off.
func (r *Runtime) setTracer(t *simtrace.Tracer, track string) {
	r.tracer = t
	r.track = track
}

// scale applies the fault plan's steady slowdown to a virtual duration;
// the healthy runtime returns d unchanged.
func (r *Runtime) scale(d vclock.Time) vclock.Time {
	if r.slow > 1 {
		return vclock.Time(float64(d) * r.slow)
	}
	return d
}

// trace lays the construct just charged onto the runtime's trace
// timeline; a no-op when tracing is off. chunks, when positive, bumps
// the omp/chunks dispatch counter.
func (r *Runtime) trace(name string, elapsed vclock.Time, chunks int) {
	if r.tracer == nil {
		return
	}
	t0 := r.clock.Now()
	if elapsed > 0 {
		r.clock.Advance(elapsed)
	}
	r.tracer.Span(r.track, simtrace.CatOMP, name, t0, r.clock.Now(), 0)
	if chunks > 0 {
		r.tracer.Count(simtrace.CatOMP, "chunks", int64(chunks))
	}
}

// threadScale maps an overhead calibrated at refThreads to the runtime's
// actual thread count. Fork/join and barrier-family constructs grow
// logarithmically (tree barriers); mutual-exclusion constructs grow
// linearly with contenders; reductions carry a log-tree combine plus a
// linear touch of per-thread partials.
func (r *Runtime) threadScale(c Construct) float64 {
	p := float64(r.part.Threads())
	ref := float64(r.table.refThreads)
	logRatio := math.Log2(1+p) / math.Log2(1+ref)
	linRatio := p / ref
	switch c {
	case Critical, Lock, Atomic, Ordered:
		return linRatio
	case Reduction:
		return 0.5*logRatio + 0.5*linRatio
	default:
		return logRatio
	}
}

// SyncOverhead returns the Figure 15 overhead of a construct on this
// runtime's partition (EPCC definition).
func (r *Runtime) SyncOverhead(c Construct) vclock.Time {
	o := r.table.sync[c] * r.threadScale(c)
	if r.part.UsesOSCore {
		// The 60th Phi core runs MPSS services; every fork/join and
		// barrier now waits for a core that keeps getting preempted.
		o *= r.table.osCoreMult
	}
	return r.scale(vclock.Time(o) * vclock.Microsecond)
}

// dispatchCost returns the virtual time of one dynamic-scheduler chunk
// dispatch (the shared-counter fetch-and-add, serialized under
// contention).
func (r *Runtime) dispatchCost() vclock.Time {
	o := r.table.dispatch
	if r.part.UsesOSCore {
		o *= r.table.osCoreMult
	}
	return r.scale(vclock.Time(o) * vclock.Microsecond)
}
