package simomp

import (
	"sync"

	"maia/internal/vclock"
)

// OpenMP explicit tasks (#pragma omp task ... taskwait). The paper's
// micro-benchmark references include the task-overhead suites of LaGrone
// et al. [22] and Bull et al. [24]; this file implements the same
// measurement: tasks are created by one thread (creation serializes on
// the creating thread and the task queue), executed by whichever thread
// is free first, and joined by a taskwait barrier.

// taskCosts are the calibrated per-task overheads (µs at the reference
// thread counts).
type taskCosts struct {
	create   float64 // task allocation + enqueue, paid by the creator
	dispatch float64 // dequeue + start, paid by the executing thread
}

func (r *Runtime) taskCosts() taskCosts {
	if r.part.Device.IsPhi() {
		return taskCosts{create: 3.0, dispatch: 1.2}
	}
	return taskCosts{create: 0.35, dispatch: 0.12}
}

// Tasks runs n explicit tasks followed by a taskwait. body(i), when
// non-nil, really executes for every task. cost gives each task's
// virtual compute (nil = zero). The return value is the construct's
// total virtual time on the creating thread: creation of all tasks,
// execution on the team (earliest-free-thread schedule, like the
// runtime's work-stealing deques in the balanced case), and the join.
func (t *Team) Tasks(n int, cost func(i int) vclock.Time, body func(i int)) vclock.Time {
	rt := t.rt
	tc := rt.taskCosts()
	createCost := vclock.Time(tc.create) * vclock.Microsecond
	dispatchCost := vclock.Time(tc.dispatch) * vclock.Microsecond
	if rt.part.UsesOSCore {
		createCost *= vclock.Time(rt.table.osCoreMult)
		dispatchCost *= vclock.Time(rt.table.osCoreMult)
	}
	createCost = rt.scale(createCost)
	dispatchCost = rt.scale(dispatchCost)

	// Real execution.
	if body != nil {
		var wg sync.WaitGroup
		sem := make(chan struct{}, t.workers)
		for i := 0; i < n; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer func() { <-sem; wg.Done() }()
				body(i)
			}(i)
		}
		wg.Wait()
	}

	// Virtual schedule: the creator emits tasks one creation interval
	// apart; each task starts on the earliest-free thread no earlier
	// than its creation time.
	busy := make([]vclock.Time, t.threads)
	var created vclock.Time
	for i := 0; i < n; i++ {
		created += createCost
		tid := earliest(busy)
		start := vclock.Max(busy[tid], created)
		c := vclock.Time(0)
		if cost != nil {
			c = rt.scale(cost(i))
		}
		busy[tid] = start + dispatchCost + c
	}
	var span vclock.Time
	for _, b := range busy {
		if b > span {
			span = b
		}
	}
	// taskwait: a barrier-class join.
	return span + t.rt.SyncOverhead(Barrier)
}

// MeasureTaskOverhead is the EPCC task benchmark: overhead per task for
// n tasks of the reference grain, Tp - Ts/p normalized per task.
func MeasureTaskOverhead(rt *Runtime, n int) vclock.Time {
	team := NewTeam(rt)
	grain := refIterCost * 8
	ts := vclock.Time(n) * grain
	tp := team.Tasks(n, func(int) vclock.Time { return grain }, nil)
	over := tp - ts/vclock.Time(team.Threads())
	return over / vclock.Time(n)
}
