package simomp

import "maia/internal/vclock"

// This file is the EPCC-style micro-benchmark layer that generates the
// data for Figures 15 and 16. Overhead follows the paper's definition
// (Section 3.4): with Ts the sequential time of a reference loop and Tp
// the time of the same loop executed in parallel inside the construct
// under test, overhead = Tp − Ts/p.

// refIterations and refIterCost define the EPCC reference loop: enough
// work that the parallel span is meaningful, little enough that construct
// overheads dominate neither to zero nor to noise.
const refIterations = 1024

var refIterCost = 100 * vclock.Nanosecond

// MeasureSyncOverhead measures the Figure 15 overhead of a construct by
// running the reference loop through the Team execution path where the
// construct has one (loop-family constructs and REDUCTION), and from the
// runtime's calibration directly for the pure mutual-exclusion and
// barrier constructs (whose EPCC reference loops are degenerate).
func MeasureSyncOverhead(rt *Runtime, c Construct) vclock.Time {
	team := NewTeam(rt)
	p := vclock.Time(team.Threads())
	ts := vclock.Time(refIterations) * refIterCost
	opts := ForOpts{Sched: Static, IterCost: refIterCost}
	switch c {
	case For:
		tp := team.For(refIterations, opts, nil)
		return tp - ts/p
	case ParallelFor:
		tp := team.ParallelFor(refIterations, opts, nil)
		return tp - ts/p
	case Parallel:
		perThread := ts / p
		tp := team.Parallel(nil, func(int) vclock.Time { return perThread })
		return tp - ts/p
	case Reduction:
		_, tp := team.ForReduceSum(refIterations, opts, nil)
		return tp - ts/p
	default:
		return rt.SyncOverhead(c)
	}
}

// SyncOverheads returns the full Figure 15 row for a runtime: construct →
// overhead.
func SyncOverheads(rt *Runtime) map[Construct]vclock.Time {
	out := make(map[Construct]vclock.Time, numConstructs)
	for _, c := range Constructs() {
		out[c] = MeasureSyncOverhead(rt, c)
	}
	return out
}

// MeasureSchedOverhead measures the Figure 16 overhead of one scheduling
// policy at one chunk size, EPCC style.
func MeasureSchedOverhead(rt *Runtime, s Schedule, chunkSize int) vclock.Time {
	team := NewTeam(rt)
	p := vclock.Time(team.Threads())
	ts := vclock.Time(refIterations) * refIterCost
	tp := team.For(refIterations, ForOpts{Sched: s, Chunk: chunkSize, IterCost: refIterCost}, nil)
	return tp - ts/p
}

// SchedOverheads returns the Figure 16 rows for a runtime: schedule →
// overhead at each chunk size in chunks.
func SchedOverheads(rt *Runtime, chunks []int) map[Schedule][]vclock.Time {
	out := make(map[Schedule][]vclock.Time, 3)
	for _, s := range Schedules() {
		row := make([]vclock.Time, len(chunks))
		for i, c := range chunks {
			row[i] = MeasureSchedOverhead(rt, s, c)
		}
		out[s] = row
	}
	return out
}
