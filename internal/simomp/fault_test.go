package simomp

import (
	"testing"

	"maia/internal/machine"
	"maia/internal/simfault"
	"maia/internal/vclock"
)

// A nil plan and an empty plan leave every construct cost untouched.
func TestFaultEmptyPlanIdentical(t *testing.T) {
	node := machine.NewNode()
	part := machine.PhiThreadsPartition(node, machine.Phi0, 236)
	clean := New(part)
	empty := New(part, WithFaultPlan(nil))
	zero := New(part, WithFaultPlan(&simfault.Plan{}))
	for _, c := range Constructs() {
		want := clean.SyncOverhead(c)
		if got := empty.SyncOverhead(c); got != want {
			t.Errorf("%v: nil plan changed overhead %v -> %v", c, want, got)
		}
		if got := zero.SyncOverhead(c); got != want {
			t.Errorf("%v: empty plan changed overhead %v -> %v", c, want, got)
		}
	}
}

// A straggler entry for the runtime's device stretches construct
// overheads and loop spans by its factor; other devices are untouched.
func TestFaultStragglerScalesConstructs(t *testing.T) {
	node := machine.NewNode()
	plan := simfault.PhiStraggler() // both Phis 1.8x
	phiPart := machine.PhiThreadsPartition(node, machine.Phi0, 236)
	hostPart := machine.HostPartition(node, 1)

	phiClean, phiSlow := New(phiPart), New(phiPart, WithFaultPlan(plan))
	for _, c := range Constructs() {
		want := vclock.Time(float64(phiClean.SyncOverhead(c)) * 1.8)
		if got := phiSlow.SyncOverhead(c); !closeEnough(got, want) {
			t.Errorf("%v: straggler overhead %v, want %v", c, got, want)
		}
	}
	hostClean, hostSlow := New(hostPart), New(hostPart, WithFaultPlan(plan))
	for _, c := range Constructs() {
		if hostClean.SyncOverhead(c) != hostSlow.SyncOverhead(c) {
			t.Errorf("%v: Phi straggler plan touched the host runtime", c)
		}
	}

	// Loop bodies stretch too: a static loop's span is iteration work, so
	// the whole loop scales by the straggler factor.
	cleanLoop := NewTeam(phiClean).For(10000, ForOpts{Sched: Static, IterCost: vclock.Microsecond}, nil)
	slowLoop := NewTeam(phiSlow).For(10000, ForOpts{Sched: Static, IterCost: vclock.Microsecond}, nil)
	if want := vclock.Time(float64(cleanLoop) * 1.8); !closeEnough(slowLoop, want) {
		t.Errorf("straggler loop %v, want %v", slowLoop, want)
	}
}

func closeEnough(a, b vclock.Time) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= b*1e-12
}
