package simomp

import (
	"sync"
	"testing"

	"maia/internal/machine"
	"maia/internal/vclock"
)

func TestDataMoveOverheadShape(t *testing.T) {
	host, phi := hostRT(), phiRT()
	for _, c := range DataClauses() {
		h := host.DataMoveOverhead(c, 0)
		p := phi.DataMoveOverhead(c, 0)
		if ratio := p.Seconds() / h.Seconds(); ratio < 5 || ratio > 40 {
			t.Errorf("%v: phi/host = %.1f, want ~10x", c, ratio)
		}
	}
	// FIRSTPRIVATE costs at least PRIVATE plus a copy term.
	const bytes = 1 << 20
	if host.DataMoveOverhead(FirstPrivate, bytes) <= host.DataMoveOverhead(Private, bytes) {
		t.Error("FIRSTPRIVATE must cost more than PRIVATE for a large array")
	}
	// Copy term grows with size.
	small := phi.DataMoveOverhead(FirstPrivate, 1<<10)
	big := phi.DataMoveOverhead(FirstPrivate, 16<<20)
	if big <= small {
		t.Error("privatization cost must grow with array size")
	}
	if Private.String() != "PRIVATE" || CopyPrivate.String() != "COPYPRIVATE" {
		t.Error("DataClause.String wrong")
	}
}

func TestDataMoveOSCorePenalty(t *testing.T) {
	n := machine.NewNode()
	clean := New(machine.PhiThreadsPartition(n, machine.Phi0, 236))
	dirty := New(machine.PhiThreadsPartition(n, machine.Phi0, 240))
	if dirty.DataMoveOverhead(Private, 0) <= clean.DataMoveOverhead(Private, 0) {
		t.Error("OS-core placement must pay more")
	}
}

// The critical-section helper provides real mutual exclusion.
func TestCriticalSectionExcludes(t *testing.T) {
	rt := hostRT()
	cs := NewCriticalSection(rt)
	team := NewTeam(rt)
	counter := 0
	var cost vclock.Time
	var costMu sync.Mutex
	team.Parallel(func(tid int) {
		for i := 0; i < 100; i++ {
			c := cs.Do(func() { counter++ })
			costMu.Lock()
			cost += c
			costMu.Unlock()
		}
	}, nil)
	if counter != team.Threads()*100 {
		t.Fatalf("critical section lost updates: %d", counter)
	}
	// Summation order varies across goroutines; allow FP slack.
	want := vclock.Time(team.Threads()*100) * rt.SyncOverhead(Critical)
	if diff := (cost - want).Seconds(); diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("cost %v, want %v", cost, want)
	}
}

func TestAtomicAccumulator(t *testing.T) {
	rt := hostRT()
	acc := NewAtomicAccumulator(rt)
	team := NewTeam(rt)
	team.Parallel(func(tid int) {
		for i := 0; i < 50; i++ {
			acc.Add(1)
		}
	}, nil)
	if acc.Value() != float64(team.Threads()*50) {
		t.Fatalf("atomic sum = %v", acc.Value())
	}
	if acc.Add(0) != rt.SyncOverhead(Atomic) {
		t.Fatal("atomic cost wrong")
	}
}

// --- explicit tasks ---

func TestTasksExecuteAll(t *testing.T) {
	team := NewTeam(hostRT())
	var mu sync.Mutex
	seen := map[int]int{}
	team.Tasks(100, nil, func(i int) {
		mu.Lock()
		seen[i]++
		mu.Unlock()
	})
	if len(seen) != 100 {
		t.Fatalf("%d distinct tasks ran, want 100", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
}

// Task creation serializes: with zero-cost bodies, the span approaches
// n * createCost regardless of team width.
func TestTaskCreationSerializes(t *testing.T) {
	rt := phiRT()
	team := NewTeam(rt)
	n := 512
	span := team.Tasks(n, nil, nil)
	floor := vclock.Time(float64(n)*rt.taskCosts().create) * vclock.Microsecond
	if span < floor {
		t.Fatalf("task span %v below creation floor %v", span, floor)
	}
}

// The EPCC task-overhead measurement: roughly an order of magnitude
// dearer on the Phi, like every other construct (Figure 15's family).
func TestTaskOverheadPhiRatio(t *testing.T) {
	h := MeasureTaskOverhead(hostRT(), 256)
	p := MeasureTaskOverhead(phiRT(), 256)
	if ratio := p.Seconds() / h.Seconds(); ratio < 4 || ratio > 40 {
		t.Fatalf("task overhead phi/host = %.1f, want ~10x", ratio)
	}
	if h <= 0 || p <= 0 {
		t.Fatal("overheads must be positive")
	}
}

// Tasks with uneven costs balance across threads: makespan is near the
// critical path, far below the serial sum.
func TestTasksBalance(t *testing.T) {
	rt := New(machine.HostCoresPartition(machine.NewNode(), 8, 1))
	team := NewTeam(rt)
	costs := func(i int) vclock.Time { return vclock.Time(i%7+1) * vclock.Microsecond }
	span := team.Tasks(64, costs, nil)
	var serial vclock.Time
	for i := 0; i < 64; i++ {
		serial += costs(i)
	}
	if span.Seconds() > serial.Seconds()/2 {
		t.Fatalf("tasks did not parallelize: span %v vs serial %v", span, serial)
	}
}

// Timing is deterministic.
func TestTasksDeterministic(t *testing.T) {
	team := NewTeam(phiRT())
	costs := func(i int) vclock.Time { return vclock.Time(i%5+1) * vclock.Microsecond }
	a := team.Tasks(200, costs, nil)
	b := team.Tasks(200, costs, nil)
	if a != b {
		t.Fatalf("task timing nondeterministic: %v vs %v", a, b)
	}
}
