package simomp

import (
	"fmt"
	"sync"

	"maia/internal/vclock"
)

// Data-movement constructs: the EPCC suite's third family (Section 3.4
// mentions "data privatization" alongside scheduling and
// synchronization). PRIVATE allocates a per-thread copy; FIRSTPRIVATE
// also copies the master's value in; COPYPRIVATE broadcasts one thread's
// value to the team after a SINGLE.

// DataClause enumerates the measured data-movement clauses.
type DataClause int

const (
	// Private gives each thread an uninitialized copy of the variable.
	Private DataClause = iota
	// FirstPrivate also copies the master's value into each copy.
	FirstPrivate
	// CopyPrivate broadcasts one thread's value after a SINGLE.
	CopyPrivate
	numDataClauses
)

// String implements fmt.Stringer.
func (c DataClause) String() string {
	switch c {
	case Private:
		return "PRIVATE"
	case FirstPrivate:
		return "FIRSTPRIVATE"
	case CopyPrivate:
		return "COPYPRIVATE"
	default:
		return fmt.Sprintf("DataClause(%d)", int(c))
	}
}

// DataClauses lists the clauses in display order.
func DataClauses() []DataClause { return []DataClause{Private, FirstPrivate, CopyPrivate} }

// dataBase are per-clause fixed costs (µs at the reference thread
// counts), before the per-byte copy term.
func (r *Runtime) dataBase(c DataClause) float64 {
	if r.part.Device.IsPhi() {
		switch c {
		case Private:
			return 22.0 // a PARALLEL with per-thread stack carving
		case FirstPrivate:
			return 24.0
		default: // CopyPrivate
			return 14.0
		}
	}
	switch c {
	case Private:
		return 2.0
	case FirstPrivate:
		return 2.2
	default:
		return 1.3
	}
}

// copyGBs is the per-thread memcpy rate used for privatized arrays.
func (r *Runtime) copyGBs() float64 {
	if r.part.Device.IsPhi() {
		return 1.5 // one in-order core's copy bandwidth
	}
	return 9.0
}

// DataMoveOverhead returns the overhead of privatizing `bytes` of data
// per thread under the given clause (EPCC definition). PRIVATE pays
// allocation only; FIRSTPRIVATE adds every thread copying the master's
// array (concurrently, but through the shared memory system);
// COPYPRIVATE is one copy out plus a broadcast tree.
func (r *Runtime) DataMoveOverhead(c DataClause, bytes int) vclock.Time {
	base := r.dataBase(c) * r.threadScale(Parallel)
	if r.part.UsesOSCore {
		base *= r.table.osCoreMult
	}
	o := vclock.Time(base) * vclock.Microsecond
	copyTime := vclock.Time(float64(bytes) / (r.copyGBs() * 1e9))
	switch c {
	case Private:
		// Allocation cost only; no value copy.
		return o
	case FirstPrivate:
		// All threads copy concurrently; bandwidth shared beyond a few
		// threads, modeled as 4-way effective concurrency.
		conc := 4.0
		if t := float64(r.part.Threads()); t < conc {
			conc = t
		}
		return o + vclock.Time(float64(bytes)/(r.copyGBs()*conc*1e9))
	default: // CopyPrivate
		return o + copyTime
	}
}

// --- Real mutual-exclusion helpers -----------------------------------
//
// The microbenchmark overheads above price the constructs; these helpers
// let kernel code EXECUTE them for real when a loop body genuinely needs
// mutual exclusion, charging the modeled cost per acquisition.

// CriticalSection guards a `#pragma omp critical` region: Do runs body
// under a real mutex and returns the construct's virtual cost.
type CriticalSection struct {
	rt *Runtime
	mu sync.Mutex
}

// NewCriticalSection builds a critical section bound to a runtime.
func NewCriticalSection(rt *Runtime) *CriticalSection {
	return &CriticalSection{rt: rt}
}

// Do executes body exclusively and returns the virtual overhead of one
// CRITICAL entry/exit.
func (c *CriticalSection) Do(body func()) vclock.Time {
	c.mu.Lock()
	body()
	c.mu.Unlock()
	return c.rt.SyncOverhead(Critical)
}

// AtomicAdd performs a real atomic-style accumulation (serialized by an
// internal mutex; Go has no float64 atomic add) and returns the ATOMIC
// construct's virtual cost.
type AtomicAccumulator struct {
	rt  *Runtime
	mu  sync.Mutex
	val float64
}

// NewAtomicAccumulator builds an accumulator bound to a runtime.
func NewAtomicAccumulator(rt *Runtime) *AtomicAccumulator {
	return &AtomicAccumulator{rt: rt}
}

// Add accumulates x and returns one ATOMIC's virtual cost.
func (a *AtomicAccumulator) Add(x float64) vclock.Time {
	a.mu.Lock()
	a.val += x
	a.mu.Unlock()
	return a.rt.SyncOverhead(Atomic)
}

// Value returns the accumulated sum.
func (a *AtomicAccumulator) Value() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.val
}
