package simomp_test

import (
	"fmt"

	"maia/internal/machine"
	"maia/internal/simomp"
	"maia/internal/vclock"
)

// A work-shared loop: the body really executes, while virtual time is
// computed by simulating the schedule deterministically.
func ExampleTeam_ParallelFor() {
	rt := simomp.New(machine.HostCoresPartition(machine.NewNode(), 4, 1))
	team := simomp.NewTeam(rt)
	sum := make([]int, 100)
	elapsed := team.ParallelFor(100, simomp.ForOpts{
		Sched:    simomp.Static,
		IterCost: vclock.Microsecond,
	}, func(i int) { sum[i] = i * i })
	fmt.Println(sum[10], elapsed > 25*vclock.Microsecond)
	// Output: 100 true
}

// The Figure 15 measurement: construct overheads are an order of
// magnitude higher on the Phi.
func ExampleMeasureSyncOverhead() {
	node := machine.NewNode()
	host := simomp.New(machine.HostPartition(node, 1))
	phi := simomp.New(machine.PhiThreadsPartition(node, machine.Phi0, 236))
	h := simomp.MeasureSyncOverhead(host, simomp.Reduction)
	p := simomp.MeasureSyncOverhead(phi, simomp.Reduction)
	fmt.Printf("phi/host REDUCTION overhead: %.0fx\n", p.Seconds()/h.Seconds())
	// Output: phi/host REDUCTION overhead: 11x
}
