package simomp

import (
	"testing"
	"testing/quick"

	"maia/internal/machine"
	"maia/internal/vclock"
)

func hostRT() *Runtime {
	return New(machine.HostPartition(machine.NewNode(), 1))
}

func phiRT() *Runtime {
	return New(machine.PhiThreadsPartition(machine.NewNode(), machine.Phi0, 236))
}

// Figure 15: every construct costs roughly an order of magnitude more on
// the Phi (236 threads) than on the host (16 threads).
func TestFig15PhiOrderOfMagnitude(t *testing.T) {
	host, phi := hostRT(), phiRT()
	for _, c := range Constructs() {
		h := MeasureSyncOverhead(host, c).Microseconds()
		p := MeasureSyncOverhead(phi, c).Microseconds()
		ratio := p / h
		if ratio < 5 || ratio > 40 {
			t.Errorf("%v: phi/host overhead ratio = %.1f (phi %.2fus, host %.2fus), want ~10x",
				c, ratio, p, h)
		}
	}
}

// Figure 15 ordering: REDUCTION is the most expensive construct, followed
// by PARALLEL FOR and PARALLEL; ATOMIC is the least expensive.
func TestFig15Ordering(t *testing.T) {
	for _, rt := range []*Runtime{hostRT(), phiRT()} {
		o := SyncOverheads(rt)
		if !(o[Reduction] > o[ParallelFor] && o[ParallelFor] > o[Parallel]) {
			t.Errorf("%v: want REDUCTION > PARALLEL FOR > PARALLEL, got %v > %v > %v",
				rt.Partition(), o[Reduction], o[ParallelFor], o[Parallel])
		}
		for _, c := range Constructs() {
			if c != Atomic && o[c] <= o[Atomic] {
				t.Errorf("%v: %v (%v) not above ATOMIC (%v)", rt.Partition(), c, o[c], o[Atomic])
			}
		}
	}
}

// Figure 16: STATIC < GUIDED < DYNAMIC at the default chunk size, on both
// devices, and the Phi is roughly an order of magnitude worse.
func TestFig16Ordering(t *testing.T) {
	for _, rt := range []*Runtime{hostRT(), phiRT()} {
		st := MeasureSchedOverhead(rt, Static, 0)
		dy := MeasureSchedOverhead(rt, Dynamic, 1)
		gu := MeasureSchedOverhead(rt, Guided, 1)
		if !(st < gu && gu < dy) {
			t.Errorf("%v: want STATIC (%v) < GUIDED (%v) < DYNAMIC (%v)",
				rt.Partition(), st, gu, dy)
		}
	}
	hostDyn := MeasureSchedOverhead(hostRT(), Dynamic, 1)
	phiDyn := MeasureSchedOverhead(phiRT(), Dynamic, 1)
	if r := phiDyn.Seconds() / hostDyn.Seconds(); r < 5 || r > 40 {
		t.Errorf("dynamic phi/host = %.1f, want ~10x", r)
	}
}

// Bigger chunks amortize the dynamic dispatch counter.
func TestFig16ChunkAmortization(t *testing.T) {
	rt := phiRT()
	prev := vclock.Time(1 << 62)
	for _, chunk := range []int{1, 2, 4, 8, 16, 32} {
		o := MeasureSchedOverhead(rt, Dynamic, chunk)
		if o > prev {
			t.Errorf("dynamic overhead rose at chunk %d: %v > %v", chunk, o, prev)
		}
		prev = o
	}
}

// Property: every schedule executes every iteration exactly once.
func TestScheduleCoverage(t *testing.T) {
	rt := New(machine.HostCoresPartition(machine.NewNode(), 7, 1))
	team := NewTeam(rt)
	f := func(nRaw uint16, chunkRaw uint8, schedRaw uint8) bool {
		n := int(nRaw%2048) + 1
		chunk := int(chunkRaw % 64) // 0 = default
		sched := Schedule(schedRaw % 3)
		counts := make([]int32, n)
		team.For(n, ForOpts{Sched: sched, Chunk: chunk, IterCost: vclock.Nanosecond},
			func(i int) { counts[i]++ })
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Real execution: a reduction sums its body deterministically.
func TestForReduceSum(t *testing.T) {
	team := NewTeam(hostRT())
	n := 10000
	want := float64(n*(n-1)) / 2
	for _, sched := range Schedules() {
		sum, elapsed := team.ForReduceSum(n, ForOpts{Sched: sched, Chunk: 8, IterCost: vclock.Nanosecond},
			func(i int) float64 { return float64(i) })
		if sum != want {
			t.Errorf("%v: sum = %v, want %v", sched, sum, want)
		}
		if elapsed <= 0 {
			t.Errorf("%v: non-positive elapsed %v", sched, elapsed)
		}
	}
}

// Virtual time is deterministic: identical calls yield identical times.
func TestTimingDeterministic(t *testing.T) {
	team := NewTeam(phiRT())
	opts := ForOpts{Sched: Dynamic, Chunk: 3, CostFn: func(i int) vclock.Time {
		return vclock.Time(i%7+1) * vclock.Nanosecond
	}}
	a := team.For(5000, opts, nil)
	b := team.For(5000, opts, nil)
	if a != b {
		t.Fatalf("elapsed differs: %v vs %v", a, b)
	}
}

// Fork/join cost: the OS-core partitions (60/120/180/240 threads) pay a
// multiplier over the 59-core placements (substrate for Figure 24).
func TestOSCorePenalty(t *testing.T) {
	n := machine.NewNode()
	clean := New(machine.PhiThreadsPartition(n, machine.Phi0, 236))
	dirty := New(machine.PhiThreadsPartition(n, machine.Phi0, 240))
	for _, c := range []Construct{Parallel, Barrier, Reduction} {
		oc := clean.SyncOverhead(c)
		od := dirty.SyncOverhead(c)
		if od.Seconds()/oc.Seconds() < 2 {
			t.Errorf("%v: OS-core penalty %v/%v = %.2f, want >= 2x", c, od, oc, od.Seconds()/oc.Seconds())
		}
	}
}

// More simulated threads than real work: loops shorter than the team still
// cover all iterations and don't hang.
func TestTinyLoopOnWideTeam(t *testing.T) {
	team := NewTeam(phiRT())
	hit := make([]int32, 3)
	team.For(3, ForOpts{Sched: Dynamic, IterCost: vclock.Nanosecond}, func(i int) { hit[i]++ })
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("iteration %d ran %d times", i, h)
		}
	}
	if got := team.For(0, ForOpts{Sched: Static}, nil); got <= 0 {
		t.Fatal("empty loop must still pay construct overhead")
	}
}

// NoWait elides the barrier.
func TestNoWait(t *testing.T) {
	team := NewTeam(hostRT())
	with := team.For(64, ForOpts{Sched: Static, IterCost: vclock.Nanosecond}, nil)
	without := team.For(64, ForOpts{Sched: Static, IterCost: vclock.Nanosecond, NoWait: true}, nil)
	diff := with - without
	want := team.Runtime().SyncOverhead(Barrier)
	if diff != want {
		t.Fatalf("barrier elision saved %v, want %v", diff, want)
	}
}

// Parallel executes the body once per simulated thread.
func TestParallelBodyPerThread(t *testing.T) {
	rt := New(machine.HostCoresPartition(machine.NewNode(), 5, 2))
	team := NewTeam(rt)
	counts := make([]int32, team.Threads())
	team.Parallel(func(tid int) { counts[tid]++ }, nil)
	for tid, c := range counts {
		if c != 1 {
			t.Fatalf("thread %d ran %d times", tid, c)
		}
	}
}

// SingleRegion runs its body exactly once and charges SINGLE.
func TestSingleRegion(t *testing.T) {
	team := NewTeam(hostRT())
	ran := 0
	el := team.SingleRegion(func() { ran++ }, 2*vclock.Microsecond)
	if ran != 1 {
		t.Fatalf("single body ran %d times", ran)
	}
	want := 2*vclock.Microsecond + team.Runtime().SyncOverhead(Single)
	if el != want {
		t.Fatalf("single elapsed %v, want %v", el, want)
	}
}

// The dynamic scheduler's counter serializes: with zero-cost iterations
// and chunk 1, the loop span approaches n * dispatch regardless of the
// team width.
func TestDynamicSerialization(t *testing.T) {
	rt := phiRT()
	team := NewTeam(rt)
	n := 1024
	elapsed := team.For(n, ForOpts{Sched: Dynamic, Chunk: 1}, nil)
	lower := vclock.Time(float64(n)) * rt.dispatchCost() * 9 / 10
	if elapsed < lower {
		t.Fatalf("dynamic span %v below serialized bound %v", elapsed, lower)
	}
}

func TestStringers(t *testing.T) {
	if Parallel.String() != "PARALLEL" || Reduction.String() != "REDUCTION" ||
		Lock.String() != "LOCK/UNLOCK" {
		t.Error("Construct.String wrong")
	}
	if Static.String() != "STATIC" || Dynamic.String() != "DYNAMIC" || Guided.String() != "GUIDED" {
		t.Error("Schedule.String wrong")
	}
}

func TestSchedOverheadsShape(t *testing.T) {
	chunks := []int{1, 8, 64}
	m := SchedOverheads(hostRT(), chunks)
	if len(m) != 3 {
		t.Fatalf("got %d schedules", len(m))
	}
	for s, row := range m {
		if len(row) != len(chunks) {
			t.Fatalf("%v: %d points, want %d", s, len(row), len(chunks))
		}
	}
}
