// Package simfleet simulates a fleet of Maia nodes in virtual time:
// each node carries a seed-drawn simfault condition (straggling Phis,
// lossy PCIe, thermal throttling, a dead coprocessor) plus a hard-
// failure renewal process from an MTBF profile; a scheduler places a
// stream of NPB/OVERFLOW/MPI jobs priced by the repository's closed-form
// engines; periodic health checks detect degradation; and a remediation
// loop rebalances, cordons, drains, and replaces — generalizing
// ext-fault-straggler's single-node 92% recovery to fleet-wide
// throughput, utilization, queue-latency, and recovery-vs-MTBF curves.
//
// Determinism is the same contract as everywhere else in this
// repository: the event loop is single-threaded over a (time, sequence)
// priority queue, and every random decision — condition draws, job
// interarrivals and classes, failure gaps, repair jitter, random
// placement — is a pure function of (seed, identity, draw index) via
// simfault.EventSeed. Job pricing is closed-form and precomputed into a
// PriceTable, so a fleet run costs O(events), not O(simulated ranks),
// and building the table in parallel is byte-identical to sequential.
package simfleet

import (
	"fmt"
	"sort"
	"strings"

	"maia/internal/vclock"
)

// Fleet-wide limits and defaults.
const (
	// MaxNodes bounds fleet size (the JobSpec fleet.nodes domain).
	MaxNodes = 512
	// DefaultNodes is the fleet size the ext-fleet experiments model.
	DefaultNodes = 128
	// DefaultDuration is the simulated horizon when a config leaves it 0.
	DefaultDuration = 1200 * vclock.Second
	// MaxDuration bounds the simulated horizon (the fleet.duration_s domain).
	MaxDuration = 24 * hour
	// DefaultHealthEvery is the health-check period when a config leaves it 0.
	DefaultHealthEvery = 15 * vclock.Second
	// MaxHealthEvery bounds the health-check period (the fleet.health_s domain).
	MaxHealthEvery = hour
	// DefaultSeed roots every random decision when a config leaves it 0.
	DefaultSeed = 1
	// DefaultLoad is the offered utilization target of the arrival process.
	DefaultLoad = 0.7
	// DefaultScheduler is the placement policy when a config leaves it "".
	DefaultScheduler = "least-loaded"
	// DefaultProfile is the MTBF profile when a config leaves it "".
	DefaultProfile = "steady"
	// ConditionSampled asks Run to draw each node's condition with
	// simfault.SamplePlan (the Config.Condition zero value).
	ConditionSampled = ""
	// ConditionHealthy pins every node healthy.
	ConditionHealthy = "healthy"
)

// Policy is one scheduler placement policy.
type Policy struct {
	// Name identifies the policy (the JobSpec fleet.scheduler value).
	Name string
	// Note is a one-line description for listings.
	Note string
}

// Policies returns the scheduler catalog, sorted by name.
func Policies() []Policy {
	all := []Policy{
		{Name: "least-loaded", Note: "idle node with the least accumulated busy time (wear-leveling)"},
		{Name: "random", Note: "seeded uniform pick among idle nodes"},
		{Name: "round-robin", Note: "rotating cursor over idle nodes"},
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// PolicyNames returns the catalog's policy names, sorted.
func PolicyNames() []string {
	policies := Policies()
	names := make([]string, len(policies))
	for i, p := range policies {
		names[i] = p.Name
	}
	return names
}

// PolicyByName returns the named policy, or an error listing the valid
// names.
func PolicyByName(name string) (Policy, error) {
	for _, p := range Policies() {
		if p.Name == name {
			return p, nil
		}
	}
	return Policy{}, fmt.Errorf("simfleet: unknown scheduler policy %q (have %s)",
		name, strings.Join(PolicyNames(), ", "))
}

// Config describes one fleet run. The zero value of every field selects
// the documented default, so Config{Prices: t} is a valid 128-node run.
type Config struct {
	// Nodes is the fleet size (1..MaxNodes; 0 = DefaultNodes).
	Nodes int
	// Duration is the simulated horizon (0 = DefaultDuration).
	Duration vclock.Time
	// Seed roots every random decision (0 = DefaultSeed).
	Seed uint64
	// Profile names the MTBF profile ("" = DefaultProfile).
	Profile string
	// Scheduler names the placement policy ("" = DefaultScheduler).
	Scheduler string
	// HealthEvery is the health-check period (0 = DefaultHealthEvery).
	HealthEvery vclock.Time
	// Remediate enables the remediation loop: detection, rebalancing,
	// cordon/drain/replace, repair, and requeue. Off, degraded nodes
	// stay degraded and hard-failed nodes stay down with their job lost.
	Remediate bool
	// Condition pins every node's starting condition: ConditionSampled
	// draws per node, ConditionHealthy pins healthy, and any sampleable
	// simfault catalog plan name pins that condition fleet-wide (the
	// recovery experiments).
	Condition string
	// Load is the offered utilization target of the Poisson arrival
	// process (0 = DefaultLoad).
	Load float64
	// Prices is the per-(condition, class) service-time table; required.
	Prices *PriceTable
}

// withDefaults validates cfg and fills every zero field, returning the
// resolved profile alongside.
func (cfg Config) withDefaults() (Config, MTBFProfile, error) {
	if cfg.Prices == nil {
		return cfg, MTBFProfile{}, fmt.Errorf("simfleet: config needs a price table")
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = DefaultNodes
	}
	if cfg.Nodes < 1 || cfg.Nodes > MaxNodes {
		return cfg, MTBFProfile{}, fmt.Errorf("simfleet: %d nodes outside 1..%d", cfg.Nodes, MaxNodes)
	}
	if cfg.Duration == 0 {
		cfg.Duration = DefaultDuration
	}
	if cfg.Duration <= 0 || cfg.Duration > MaxDuration {
		return cfg, MTBFProfile{}, fmt.Errorf("simfleet: duration %v outside (0, %v]", cfg.Duration, MaxDuration)
	}
	if cfg.Seed == 0 {
		cfg.Seed = DefaultSeed
	}
	if cfg.Profile == "" {
		cfg.Profile = DefaultProfile
	}
	profile, err := ProfileByName(cfg.Profile)
	if err != nil {
		return cfg, MTBFProfile{}, err
	}
	if cfg.Scheduler == "" {
		cfg.Scheduler = DefaultScheduler
	}
	if _, err := PolicyByName(cfg.Scheduler); err != nil {
		return cfg, MTBFProfile{}, err
	}
	if cfg.HealthEvery == 0 {
		cfg.HealthEvery = DefaultHealthEvery
	}
	if cfg.HealthEvery <= 0 || cfg.HealthEvery > MaxHealthEvery {
		return cfg, MTBFProfile{}, fmt.Errorf("simfleet: health period %v outside (0, %v]", cfg.HealthEvery, MaxHealthEvery)
	}
	if cfg.Condition != ConditionSampled && cfg.Condition != ConditionHealthy {
		if _, ok := cfg.Prices.Degraded[cfg.Condition]; !ok {
			return cfg, MTBFProfile{}, fmt.Errorf("simfleet: unknown condition %q (have healthy, %s)",
				cfg.Condition, strings.Join(sortedConditions(cfg.Prices), ", "))
		}
	}
	if cfg.Load == 0 {
		cfg.Load = DefaultLoad
	}
	if cfg.Load <= 0 || cfg.Load > 4 {
		return cfg, MTBFProfile{}, fmt.Errorf("simfleet: load %v outside (0, 4]", cfg.Load)
	}
	return cfg, profile, nil
}

// sortedConditions lists a price table's degraded condition names.
func sortedConditions(t *PriceTable) []string {
	names := make([]string, 0, len(t.Degraded))
	for name := range t.Degraded {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
