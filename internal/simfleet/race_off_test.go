//go:build !race

package simfleet

// raceEnabled mirrors race_on_test.go for normal builds.
const raceEnabled = false
