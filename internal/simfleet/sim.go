package simfleet

import (
	"slices"

	"maia/internal/bufpool"
	"maia/internal/simfault"
	"maia/internal/vclock"
)

// Stream tags for the fleet's deterministic draws: the second
// coordinate of simfault.EventSeed (simfault reserves the 100..199
// band for its own sampling streams).
const (
	sbArrival = 1 // interarrival gaps, keyed by arrival index
	sbClass   = 2 // job class draws, keyed by job ID
	sbFail    = 3 // hard-failure gaps, keyed by (node, draw index)
	sbRepair  = 4 // repair-duration jitter, keyed by (node, draw index)
	sbPlace   = 5 // random-policy placement, keyed by dispatch index
)

// defaultReplaceTime is the replacement cost charged for cordoned nodes
// when the MTBF profile defines no MTTR (the "none" profile): swapping
// a card is never free.
const defaultReplaceTime = 10 * minute

// Stats is what one fleet run reports: counters, rate/utilization
// rollups, and queue-wait quantiles, all pure functions of the Config.
type Stats struct {
	// Nodes, Duration, Scheduler, Profile echo the resolved config.
	Nodes     int
	Duration  vclock.Time
	Scheduler string
	Profile   string
	// DegradedStart counts nodes that started in a degraded condition.
	DegradedStart int
	// Arrivals and Completed count jobs offered and finished within the
	// horizon; Requeues counts re-submissions after a detected failure;
	// Lost counts jobs destroyed by failures with remediation off.
	Arrivals  int
	Completed int
	Requeues  int
	Lost      int
	// HardFailures, Rebalanced, Replaced, Repaired count fleet events:
	// failures struck, in-place rebalances, cordon-drain-replacements
	// begun, and hard failures detected into repair. Tolerated counts
	// degraded nodes the loop deliberately left in service because the
	// price table says replacing them would cost capacity.
	HardFailures int
	Rebalanced   int
	Replaced     int
	Repaired     int
	Tolerated    int
	// Throughput is completed jobs per virtual hour.
	Throughput float64
	// Utilization is aggregate busy time over nodes x duration.
	Utilization float64
	// QueueP50 and QueueP99 are dispatch-wait quantiles.
	QueueP50 vclock.Time
	QueueP99 vclock.Time
	// RecoveryPct is the overflow-class rebalance recovery (percent of
	// the straggler-induced slowdown recovered) of the first rebalance
	// this run performed; 0 when no rebalance happened.
	RecoveryPct float64
}

// nodeState is a node's scheduling state.
type nodeState int

const (
	stateReady    nodeState = iota // in service, schedulable
	stateCordoned                  // in service, draining toward replacement
	stateDown                      // failed, repairing, or being replaced
)

// job is one queued unit of work.
type job struct {
	id      int
	class   Class
	arrival vclock.Time
}

// fnode is one simulated node's mutable state.
type fnode struct {
	cond       string // condition name; "" = healthy
	rebalanced bool
	state      nodeState
	// epoch increments whenever the node leaves service; events carry
	// the epoch they were scheduled under, so stale completions and
	// failure draws are dropped instead of firing on a replaced node.
	epoch   int
	failK   int // next failure-gap draw index
	repairK int // next repair-jitter draw index
	// failed marks a struck node awaiting health-check detection.
	failed bool
	// tolerated marks a degraded node the loop decided to keep serving.
	tolerated bool
	// pendingJob is the job a failure interrupted, requeued at detection.
	pendingJob job
	hasPending bool
	// replacePending marks a draining node: replacement begins when the
	// running job completes.
	replacePending bool
	running        bool
	job            job
	jobStart       vclock.Time
	busy           vclock.Time
	// svc caches the per-class service times of the node's current
	// (cond, rebalanced) state, refreshed whenever either changes, so
	// dispatch indexes an array instead of hashing a condition name per
	// job.
	svc [numClasses]vclock.Time
}

// eventKind discriminates the event heap's entries.
type eventKind int

const (
	evArrival  eventKind = iota // next job enters the queue
	evComplete                  // a node finishes its job
	evHealth                    // periodic fleet-wide health check
	evFail                      // a hard failure strikes a node
	evRepair                    // a repair or replacement finishes
)

// event is one entry of the virtual-time priority queue.
type event struct {
	at    vclock.Time
	seq   uint64
	kind  eventKind
	node  int
	epoch int
}

// eventHeap is a binary min-heap of events ordered by (time, push
// sequence). The sequence tie-break makes (at, seq) a total order, so
// the pop sequence is a pure function of the push history — any correct
// priority queue yields the same one. Hand-rolled rather than
// container/heap because heap.Push boxes each event into an interface:
// one heap allocation per scheduled event, the fleet loop's dominant
// malloc source.
type eventHeap []event

// less orders by time, then push sequence.
func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push inserts e and sifts it up.
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	for i := 0; ; {
		small := i
		if l := 2*i + 1; l < n && s.less(l, small) {
			small = l
		}
		if r := 2*i + 2; r < n && s.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	return top
}

// isRebalanceCondition reports whether the remediation loop fixes the
// condition in place by rebalancing on measured speeds (compute-side
// degradation); other conditions need cordon/drain/replace.
func isRebalanceCondition(cond string) bool {
	return cond == "phi-straggler" || cond == "thermal-throttle"
}

// sim is one run's full state.
type sim struct {
	cfg     Config
	profile MTBFProfile
	nodes   []fnode
	events  eventHeap
	seq     uint64
	now     vclock.Time

	// queue[qhead:] is the pending-job FIFO: popping the front advances
	// qhead instead of re-slicing (which makes append grow a fresh
	// backing array every time the old front is still referenced), and
	// enqueue compacts the drained prefix away before growing.
	queue       []job
	qhead       int
	waits       []vclock.Time
	idle        []int // random-policy scratch, reused across dispatches
	meanInter   vclock.Time
	lastArrival vclock.Time
	arrivalK    int
	dispatchK   int
	rrCursor    int

	stats Stats
}

// Run's scratch — node states, the event heap, the job queue, the
// dispatch-wait sample, the idle list — recycles through size-classed
// pools, so a fleet sweep's steady state allocates almost nothing per
// run.
var (
	nodePool  bufpool.Pool[fnode]
	eventPool bufpool.Pool[event]
	jobPool   bufpool.Pool[job]
	waitPool  bufpool.Pool[vclock.Time]
	idlePool  bufpool.Pool[int]
)

// Run simulates one fleet and returns its statistics. The result is a
// pure function of cfg: equal configs (and equal price tables) yield
// identical Stats regardless of how the table was built or how many
// runs execute concurrently.
func Run(cfg Config) (Stats, error) {
	cfg, profile, err := cfg.withDefaults()
	if err != nil {
		return Stats{}, err
	}
	s := &sim{cfg: cfg, profile: profile, nodes: nodePool.GetZeroed(cfg.Nodes)}
	s.events = eventPool.Get(4*cfg.Nodes + 64)[:0]
	s.queue = jobPool.Get(2*cfg.Nodes + 64)[:0]
	s.idle = idlePool.Get(cfg.Nodes)[:0]
	s.stats = Stats{
		Nodes:     cfg.Nodes,
		Duration:  cfg.Duration,
		Scheduler: cfg.Scheduler,
		Profile:   cfg.Profile,
	}
	for i := range s.nodes {
		cond := s.startCondition(i)
		s.nodes[i].cond = cond
		s.refreshPrices(&s.nodes[i])
		if cond != "" {
			s.stats.DegradedStart++
		}
	}
	s.meanInter = cfg.Prices.MeanHealthy() / vclock.Time(float64(cfg.Nodes)*cfg.Load)
	// Size the wait sample for the expected arrival count so steady-state
	// runs never regrow it; the estimate only seeds the capacity class.
	if est := int(float64(cfg.Duration)/float64(s.meanInter)) + 16; est > 0 {
		s.waits = waitPool.Get(est)[:0]
	}
	s.pushArrival()
	if profile.MTBF > 0 {
		for i := range s.nodes {
			s.scheduleFailure(i)
		}
	}
	if cfg.Remediate {
		s.push(event{at: cfg.HealthEvery, kind: evHealth})
	}

	for len(s.events) > 0 {
		e := s.events.pop()
		if e.at > cfg.Duration {
			break
		}
		s.now = e.at
		switch e.kind {
		case evArrival:
			s.arrive()
		case evComplete:
			s.complete(e)
		case evHealth:
			s.healthCheck()
		case evFail:
			s.fail(e)
		case evRepair:
			s.repairDone(e)
		}
	}
	s.finish()
	nodePool.Put(s.nodes)
	eventPool.Put(s.events)
	jobPool.Put(s.queue)
	waitPool.Put(s.waits)
	idlePool.Put(s.idle)
	return s.stats, nil
}

// refreshPrices recomputes a node's cached per-class service times from
// its current condition and rebalance state.
func (s *sim) refreshPrices(n *fnode) {
	for c := Class(0); c < numClasses; c++ {
		n.svc[c] = s.cfg.Prices.Service(n.cond, c, n.rebalanced)
	}
}

// startCondition resolves node i's starting condition.
func (s *sim) startCondition(i int) string {
	switch s.cfg.Condition {
	case ConditionHealthy:
		return ""
	case ConditionSampled:
		return simfault.SampleCondition(s.cfg.Seed, i)
	default:
		return s.cfg.Condition
	}
}

// push enqueues an event with the next sequence number.
func (s *sim) push(e event) {
	e.seq = s.seq
	s.seq++
	s.events.push(e)
}

// enqueue appends a job to the pending FIFO, first compacting the
// drained prefix so a long-lived queue reuses its backing array instead
// of growing past it.
func (s *sim) enqueue(j job) {
	if s.qhead > 0 && len(s.queue) == cap(s.queue) {
		n := copy(s.queue, s.queue[s.qhead:])
		s.queue = s.queue[:n]
		s.qhead = 0
	}
	s.queue = append(s.queue, j)
}

// pushArrival schedules the next job arrival from the seeded
// exponential interarrival stream.
func (s *sim) pushArrival() {
	gap := simfault.Exp(s.meanInter, s.cfg.Seed, s.arrivalK, sbArrival, 0)
	s.lastArrival += gap
	s.push(event{at: s.lastArrival, kind: evArrival})
}

// arrive enqueues the arriving job, schedules the next arrival, and
// tries to place work.
func (s *sim) arrive() {
	id := s.arrivalK
	class := Class(vclock.NewRNG(simfault.EventSeed(s.cfg.Seed, id, sbClass, 0)).Intn(int(numClasses)))
	s.arrivalK++
	s.stats.Arrivals++
	s.enqueue(job{id: id, class: class, arrival: s.now})
	s.pushArrival()
	s.dispatch()
}

// dispatch places queued jobs on eligible nodes until one side runs dry.
func (s *sim) dispatch() {
	for s.qhead < len(s.queue) {
		ni := s.pickNode()
		if ni < 0 {
			return
		}
		j := s.queue[s.qhead]
		s.qhead++
		if s.qhead == len(s.queue) {
			s.queue, s.qhead = s.queue[:0], 0
		}
		n := &s.nodes[ni]
		n.running, n.job, n.jobStart = true, j, s.now
		s.waits = append(s.waits, s.now-j.arrival)
		s.push(event{at: s.now + n.svc[j.class], kind: evComplete, node: ni, epoch: n.epoch})
		s.dispatchK++
	}
}

// eligible reports whether node i can accept a job right now.
func (s *sim) eligible(i int) bool {
	n := &s.nodes[i]
	return n.state == stateReady && !n.running && !n.failed
}

// pickNode selects the next node per the scheduler policy, or -1 when
// no node is eligible.
func (s *sim) pickNode() int {
	switch s.cfg.Scheduler {
	case "round-robin":
		for off := 0; off < len(s.nodes); off++ {
			i := (s.rrCursor + off) % len(s.nodes)
			if s.eligible(i) {
				s.rrCursor = i + 1
				return i
			}
		}
		return -1
	case "random":
		idle := s.idle[:0]
		for i := range s.nodes {
			if s.eligible(i) {
				idle = append(idle, i)
			}
		}
		s.idle = idle
		if len(idle) == 0 {
			return -1
		}
		rng := vclock.NewRNG(simfault.EventSeed(s.cfg.Seed, s.dispatchK, sbPlace, 0))
		return idle[rng.Intn(len(idle))]
	default: // least-loaded
		best := -1
		for i := range s.nodes {
			if s.eligible(i) && (best < 0 || s.nodes[i].busy < s.nodes[best].busy) {
				best = i
			}
		}
		return best
	}
}

// complete finishes a node's job unless the event went stale (the node
// failed or was replaced mid-job).
func (s *sim) complete(e event) {
	n := &s.nodes[e.node]
	if e.epoch != n.epoch || !n.running {
		return
	}
	n.running = false
	n.busy += s.now - n.jobStart
	s.stats.Completed++
	if n.replacePending {
		s.beginReplace(e.node)
		return
	}
	s.dispatch()
}

// disruptionBudget caps how many nodes the remediation loop may hold
// out of ready service at once (cordoned, draining, or replacing):
// roughly a tenth of the fleet, never less than one. Hard-failure
// repairs are exempt — a struck node is already unavailable, and
// fixing it only helps.
func disruptionBudget(nodes int) int { return 1 + nodes/10 }

// healthCheck runs the remediation pass over every node: detect struck
// nodes into repair (requeueing their interrupted job), rebalance
// compute-degraded nodes in place, and cordon degraded nodes toward
// replacement — but only when the price table says replacement wins
// (degraded nodes that still beat a healthy node on the job mix are
// tolerated in service) and only within the disruption budget (never
// cordon more than ~10% of the fleet at once; the rest retry next tick).
func (s *sim) healthCheck() {
	disrupted := 0
	for i := range s.nodes {
		if s.nodes[i].state != stateReady {
			disrupted++
		}
	}
	budget := disruptionBudget(len(s.nodes))
	for i := range s.nodes {
		n := &s.nodes[i]
		if n.failed {
			n.failed = false
			s.stats.Repaired++
			if n.hasPending {
				s.requeueFront(n.pendingJob)
				n.hasPending = false
				s.stats.Requeues++
			}
			s.push(event{at: s.now + s.repairDuration(i), kind: evRepair, node: i, epoch: n.epoch})
			continue
		}
		if n.state != stateReady || n.cond == "" {
			continue
		}
		if isRebalanceCondition(n.cond) {
			if !n.rebalanced {
				n.rebalanced = true
				s.refreshPrices(n)
				s.stats.Rebalanced++
				if s.stats.RecoveryPct == 0 {
					if r, ok := s.cfg.Prices.RebalanceRecovery(n.cond); ok {
						s.stats.RecoveryPct = r
					}
				}
			}
			continue
		}
		if mean, ok := s.cfg.Prices.MeanCondition(n.cond); ok && mean <= s.cfg.Prices.MeanHealthy() {
			if !n.tolerated {
				n.tolerated = true
				s.stats.Tolerated++
			}
			continue
		}
		if disrupted >= budget {
			continue
		}
		disrupted++
		n.state = stateCordoned
		if n.running {
			n.replacePending = true
		} else {
			s.beginReplace(i)
		}
	}
	s.push(event{at: s.now + s.cfg.HealthEvery, kind: evHealth})
	s.dispatch()
}

// requeueFront puts an interrupted job back at the head of the FIFO, so
// detection-time requeues keep their original scheduling priority.
func (s *sim) requeueFront(j job) {
	if s.qhead > 0 {
		s.qhead--
		s.queue[s.qhead] = j
		return
	}
	s.queue = append(s.queue, job{})
	copy(s.queue[1:], s.queue)
	s.queue[0] = j
}

// beginReplace takes a cordoned node out of service and schedules the
// replacement's completion.
func (s *sim) beginReplace(i int) {
	n := &s.nodes[i]
	n.state = stateDown
	n.epoch++
	n.replacePending = false
	s.stats.Replaced++
	s.push(event{at: s.now + s.repairDuration(i), kind: evRepair, node: i, epoch: n.epoch})
}

// repairDuration draws the jittered repair/replacement span for node i:
// the profile's MTTR (or the default replacement cost) scaled by a
// deterministic factor in [0.5, 1.5).
func (s *sim) repairDuration(i int) vclock.Time {
	n := &s.nodes[i]
	base := s.profile.MTTR
	if base <= 0 {
		base = defaultReplaceTime
	}
	jitter := 0.5 + simfault.Uniform(s.cfg.Seed, i, sbRepair, n.repairK)
	n.repairK++
	return vclock.Time(float64(base) * jitter)
}

// fail strikes node e.node with a hard failure unless the draw went
// stale (the node was repaired or replaced since the draw).
func (s *sim) fail(e event) {
	n := &s.nodes[e.node]
	if e.epoch != n.epoch {
		return
	}
	s.stats.HardFailures++
	n.epoch++
	n.state = stateDown
	n.failed = true
	n.replacePending = false
	if n.running {
		n.busy += s.now - n.jobStart
		n.running = false
		if s.cfg.Remediate {
			n.pendingJob, n.hasPending = n.job, true
		} else {
			s.stats.Lost++
		}
	}
}

// repairDone returns a node to service: repaired or replaced hardware
// comes back healthy with a fresh failure clock.
func (s *sim) repairDone(e event) {
	n := &s.nodes[e.node]
	if e.epoch != n.epoch {
		return
	}
	n.state = stateReady
	n.cond = ""
	n.rebalanced = false
	n.failed = false
	n.tolerated = false
	s.refreshPrices(n)
	if s.profile.MTBF > 0 {
		s.scheduleFailure(e.node)
	}
	s.dispatch()
}

// scheduleFailure draws node i's next hard-failure gap and enqueues it.
func (s *sim) scheduleFailure(i int) {
	n := &s.nodes[i]
	gap := simfault.Exp(s.profile.MTBF, s.cfg.Seed, i, sbFail, n.failK)
	n.failK++
	s.push(event{at: s.now + gap, kind: evFail, node: i, epoch: n.epoch})
}

// finish clips still-running jobs at the horizon and computes the
// rate, utilization, and quantile rollups.
func (s *sim) finish() {
	var busy vclock.Time
	for i := range s.nodes {
		n := &s.nodes[i]
		if n.running {
			n.busy += s.cfg.Duration - n.jobStart
			n.running = false
		}
		busy += n.busy
	}
	s.stats.Utilization = float64(busy) / (float64(s.cfg.Duration) * float64(s.cfg.Nodes))
	s.stats.Throughput = float64(s.stats.Completed) / (float64(s.cfg.Duration) / float64(hour))
	if len(s.waits) > 0 {
		// The sample is dead after this, so sort in place: value order is
		// all the quantiles read, and any ascending sort yields it.
		slices.Sort(s.waits)
		s.stats.QueueP50 = quantile(s.waits, 0.50)
		s.stats.QueueP99 = quantile(s.waits, 0.99)
	}
}

// quantile reads the q-th quantile of an ascending-sorted sample.
func quantile(sorted []vclock.Time, q float64) vclock.Time {
	i := int(q*float64(len(sorted)-1) + 0.5)
	return sorted[i]
}
