package simfleet

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"maia/internal/core"
	"maia/internal/machine"
	"maia/internal/simfault"
	"maia/internal/vclock"
)

// testTable builds (once) the default-model price table the tests share.
var testTable = sync.OnceValues(func() (*PriceTable, error) {
	return NewPriceTable(core.DefaultModel(), machine.NewNode(), 1)
})

func mustTable(t *testing.T) *PriceTable {
	t.Helper()
	tab, err := testTable()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestPriceTableParallelBuild pins the parallel == sequential contract
// at the pricing layer: a table built with a worker fan-out is
// identical to the sequential build, cell for cell.
func TestPriceTableParallelBuild(t *testing.T) {
	seq := mustTable(t)
	par, err := NewPriceTable(core.DefaultModel(), machine.NewNode(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel table differs from sequential:\nseq %+v\npar %+v", seq, par)
	}
}

// TestPriceTableShape checks every sampleable condition is priced for
// every class, with positive times, and that degraded static prices
// never beat healthy on the rebalance-sensitive overflow class.
func TestPriceTableShape(t *testing.T) {
	tab := mustTable(t)
	for _, c := range Classes() {
		if tab.Healthy[c] <= 0 {
			t.Errorf("healthy %s price %v not positive", c, tab.Healthy[c])
		}
	}
	for _, cond := range simfault.SampleConditions() {
		prices, ok := tab.Degraded[cond]
		if !ok {
			t.Errorf("condition %q unpriced", cond)
			continue
		}
		for _, c := range Classes() {
			if prices[c].Static <= 0 || prices[c].Rebalanced <= 0 {
				t.Errorf("%q %s has non-positive price %+v", cond, c, prices[c])
			}
		}
		if static := prices[ClassOverflowSym].Static; static < tab.Healthy[ClassOverflowSym] {
			t.Errorf("%q overflow static %v beats healthy %v", cond, static, tab.Healthy[ClassOverflowSym])
		}
	}
}

// TestRecoveryPinsExtFaultStraggler pins the tentpole recovery claim:
// the single-node phi-straggler scenario, run through the fleet's
// remediation loop, reproduces ext-fault-straggler's 92% recovery.
func TestRecoveryPinsExtFaultStraggler(t *testing.T) {
	st, err := Run(Config{
		Nodes:     1,
		Duration:  600 * vclock.Second,
		Profile:   "none",
		Remediate: true,
		Condition: "phi-straggler",
		Prices:    mustTable(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rebalanced != 1 {
		t.Fatalf("want exactly one rebalance, got %d (stats %+v)", st.Rebalanced, st)
	}
	if got := fmt.Sprintf("%.0f%%", st.RecoveryPct); got != "92%" {
		t.Fatalf("fleet-loop recovery %s (%.3f) does not reproduce ext-fault-straggler's 92%%",
			got, st.RecoveryPct)
	}
}

// trialConfig enumerates the 300 property-suite configurations: node
// counts from a single card to the full 512, rotating seeds, policies,
// MTBF profiles, pinned and sampled conditions, remediation on and off.
func trialConfig(i int, tab *PriceTable) Config {
	nodes := []int{1, 2, 3, 8, 32, 512}[i%6]
	durations := []vclock.Time{60 * vclock.Second, 180 * vclock.Second, 420 * vclock.Second}
	conditions := []string{ConditionSampled, ConditionHealthy, "phi-straggler", "lossy-pcie", "thermal-throttle", "phi0-down", ConditionSampled}
	return Config{
		Nodes:     nodes,
		Duration:  durations[i%len(durations)],
		Seed:      uint64(i + 1),
		Profile:   ProfileNames()[i%len(ProfileNames())],
		Scheduler: PolicyNames()[i%len(PolicyNames())],
		Remediate: i%2 == 0,
		Condition: conditions[i%len(conditions)],
		Prices:    tab,
	}
}

// TestRunParallelEqualsSequential is the 300-trial property suite: each
// trial's Stats must be identical whether the trials run one at a time
// or all at once on goroutines, and whether the price table was built
// sequentially or with the worker fan-out. Stats equality is stronger
// than byte-identical rendered output — the harness text is a pure
// function of Stats.
func TestRunParallelEqualsSequential(t *testing.T) {
	const trials = 300
	seqTab := mustTable(t)
	parTab, err := NewPriceTable(core.DefaultModel(), machine.NewNode(), 8)
	if err != nil {
		t.Fatal(err)
	}

	sequential := make([]Stats, trials)
	for i := 0; i < trials; i++ {
		st, err := Run(trialConfig(i, seqTab))
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		sequential[i] = st
	}

	parallel := make([]Stats, trials)
	errs := make([]error, trials)
	var wg sync.WaitGroup
	for i := 0; i < trials; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parallel[i], errs[i] = Run(trialConfig(i, parTab))
		}(i)
	}
	wg.Wait()
	for i := 0; i < trials; i++ {
		if errs[i] != nil {
			t.Fatalf("parallel trial %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(sequential[i], parallel[i]) {
			t.Fatalf("trial %d diverged:\nsequential %+v\nparallel   %+v",
				i, sequential[i], parallel[i])
		}
	}
}

// TestRemediationRecoversThroughput checks the remediation loop earns
// its keep: a fleet pinned to straggling Phis completes more jobs with
// remediation on than off, and fewer than a healthy fleet.
func TestRemediationRecoversThroughput(t *testing.T) {
	tab := mustTable(t)
	base := Config{
		Nodes:    32,
		Duration: 900 * vclock.Second,
		Profile:  "none",
		Load:     1.5, // saturate the fleet so completions measure capacity
		Prices:   tab,
	}
	run := func(cond string, remediate bool) Stats {
		cfg := base
		cfg.Condition, cfg.Remediate = cond, remediate
		st, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	degraded := run("phi-straggler", false)
	remediated := run("phi-straggler", true)
	healthy := run(ConditionHealthy, false)
	if !(degraded.Completed < remediated.Completed && remediated.Completed <= healthy.Completed) {
		t.Errorf("want degraded < remediated <= healthy completions, got %d / %d / %d",
			degraded.Completed, remediated.Completed, healthy.Completed)
	}
}

// TestHardFailuresScaleWithMTBF checks the failure process tracks the
// profile catalog: shorter MTBF means strictly more failures on a big
// fleet, and the "none" profile means zero.
func TestHardFailuresScaleWithMTBF(t *testing.T) {
	tab := mustTable(t)
	prev := -1
	for _, name := range ProfileNames() {
		st, err := Run(Config{
			Nodes:     256,
			Duration:  1800 * vclock.Second,
			Profile:   name,
			Condition: ConditionHealthy,
			Remediate: true,
			Prices:    tab,
		})
		if err != nil {
			t.Fatal(err)
		}
		if name == "none" && st.HardFailures != 0 {
			t.Errorf("profile none struck %d failures", st.HardFailures)
		}
		if st.HardFailures < prev {
			t.Errorf("profile %s struck %d failures, fewer than the longer-MTBF predecessor's %d",
				name, st.HardFailures, prev)
		}
		prev = st.HardFailures
	}
}

// TestSchedulerPolicies checks every cataloged policy runs, places the
// same offered load, and stays deterministic.
func TestSchedulerPolicies(t *testing.T) {
	tab := mustTable(t)
	for _, policy := range PolicyNames() {
		cfg := Config{
			Nodes:     16,
			Duration:  300 * vclock.Second,
			Scheduler: policy,
			Condition: ConditionHealthy,
			Profile:   "none",
			Prices:    tab,
		}
		a, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: repeated runs differ", policy)
		}
		if a.Completed == 0 || a.Utilization <= 0 {
			t.Errorf("%s: no work done: %+v", policy, a)
		}
	}
}

// TestConfigValidation walks the rejection surface.
func TestConfigValidation(t *testing.T) {
	tab := mustTable(t)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no prices", Config{}},
		{"too many nodes", Config{Nodes: MaxNodes + 1, Prices: tab}},
		{"negative nodes", Config{Nodes: -4, Prices: tab}},
		{"bad profile", Config{Profile: "immortal", Prices: tab}},
		{"bad scheduler", Config{Scheduler: "clairvoyant", Prices: tab}},
		{"bad condition", Config{Condition: "degraded", Prices: tab}},
		{"negative duration", Config{Duration: -vclock.Second, Prices: tab}},
		{"huge duration", Config{Duration: MaxDuration + vclock.Second, Prices: tab}},
		{"bad health period", Config{HealthEvery: -vclock.Second, Prices: tab}},
		{"bad load", Config{Load: -1, Prices: tab}},
	}
	for _, tc := range cases {
		if _, err := Run(tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestTableForModelMemoizes checks the per-model memo returns the same
// table pointer for repeated lookups.
func TestTableForModelMemoizes(t *testing.T) {
	a, err := TableForModel(core.DefaultModel(), machine.NewNode(), 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TableForModel(core.DefaultModel(), machine.NewNode(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("repeated TableForModel lookups built distinct tables")
	}
}

// TestCatalogs spot-checks the profile and policy catalogs.
func TestCatalogs(t *testing.T) {
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
	if def, err := PolicyByName(DefaultScheduler); err != nil || def.Name != DefaultScheduler {
		t.Errorf("default scheduler %q not in catalog: %v", DefaultScheduler, err)
	}
	if def, err := ProfileByName(DefaultProfile); err != nil || def.Name != DefaultProfile {
		t.Errorf("default profile %q not in catalog: %v", DefaultProfile, err)
	}
}
