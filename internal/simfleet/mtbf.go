package simfleet

import (
	"fmt"
	"strings"

	"maia/internal/vclock"
)

// Virtual-time unit helpers for fleet horizons (vclock stops at Second).
const (
	minute = 60 * vclock.Second
	hour   = 3600 * vclock.Second
)

// MTBFProfile describes the hard-failure renewal process one fleet runs
// under: nodes fail with exponentially distributed gaps of mean MTBF
// and return to service after a repair of mean MTTR (jittered per
// repair). The catalog spans the early-MIC lifecycle the LRZ operations
// reports describe — burn-in machines fail constantly, mature fleets
// almost never.
type MTBFProfile struct {
	// Name identifies the profile (the JobSpec fleet.mtbf value).
	Name string
	// Note is a one-line description for listings.
	Note string
	// MTBF is the mean time between hard failures per node; zero
	// disables hard failures entirely.
	MTBF vclock.Time
	// MTTR is the mean time to repair a detected failure (also the
	// replacement time the remediation loop charges for cordoned nodes).
	MTTR vclock.Time
}

// Profiles returns the MTBF catalog ordered from no failures to the
// highest failure rate — the sweep order of the ext-fleet-mtbf curves.
func Profiles() []MTBFProfile {
	return []MTBFProfile{
		{Name: "none", Note: "no hard failures; isolates degraded-condition effects"},
		{Name: "mature", Note: "settled production fleet", MTBF: 24 * hour, MTTR: 10 * minute},
		{Name: "steady", Note: "typical early-MIC partition", MTBF: 8 * hour, MTTR: 15 * minute},
		{Name: "erratic", Note: "flaky MPSS/DAPL era", MTBF: 2 * hour, MTTR: 20 * minute},
		{Name: "burn-in", Note: "early-life failures dominate", MTBF: 30 * minute, MTTR: 20 * minute},
	}
}

// ProfileNames returns the catalog's profile names in sweep order.
func ProfileNames() []string {
	profiles := Profiles()
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	return names
}

// ProfileByName returns the named MTBF profile, or an error listing the
// valid names.
func ProfileByName(name string) (MTBFProfile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return MTBFProfile{}, fmt.Errorf("simfleet: unknown MTBF profile %q (have %s)",
		name, strings.Join(ProfileNames(), ", "))
}
