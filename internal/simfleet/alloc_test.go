package simfleet

import (
	"testing"

	"maia/internal/vclock"
)

// Allocation-regression guards for the fleet event loop. The loop's
// cost model is O(1) allocation per EVENT — the heap, queue, wait
// sample, and node states all recycle through pools — so a run's malloc
// count must stay far below its event count and must not scale with the
// simulated horizon.

// allocConfig is the guarded workload: remediation on, sampled
// conditions, hard failures striking, every event kind live.
func allocConfig(tab *PriceTable, d vclock.Time) Config {
	return Config{
		Nodes:     64,
		Duration:  d,
		Profile:   "erratic",
		Remediate: true,
		Prices:    tab,
	}
}

// runEvents approximates the number of events a run processed from its
// stats: arrivals, completions, health-check ticks, failures, repairs.
func runEvents(st Stats, cfg Config, healthEvery vclock.Time) int {
	checks := int(float64(cfg.Duration) / float64(healthEvery))
	return st.Arrivals + st.Completed + st.HardFailures + st.Repaired + st.Replaced + checks
}

// TestRunAllocsFarBelowEvents pins the per-event allocation bound:
// after one warm-up run (which charges the pools), a full fleet run
// must allocate less than a tenth of a malloc per event.
func TestRunAllocsFarBelowEvents(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; bound asserted in normal builds")
	}
	cfg := allocConfig(mustTable(t), 600*vclock.Second)
	st, err := Run(cfg) // warm the pools
	if err != nil {
		t.Fatal(err)
	}
	events := runEvents(st, cfg, DefaultHealthEvery)
	if events < 1000 {
		t.Fatalf("workload too small to be meaningful: %d events", events)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > float64(events)/10 {
		t.Errorf("fleet run allocated %.0f times over %d events (%.3f/event); want < 0.1/event",
			allocs, events, allocs/float64(events))
	}
}

// TestRunAllocsIndependentOfDuration pins that allocations do not scale
// with the horizon: simulating 8x the virtual time processes ~8x the
// events but must stay within a small constant factor of the short
// run's allocations (pool-class growth for the bigger wait sample, not
// per-event cost).
func TestRunAllocsIndependentOfDuration(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; bound asserted in normal builds")
	}
	tab := mustTable(t)
	measure := func(d vclock.Time) float64 {
		cfg := allocConfig(tab, d)
		if _, err := Run(cfg); err != nil { // warm the pools for this size
			t.Fatal(err)
		}
		return testing.AllocsPerRun(5, func() {
			if _, err := Run(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(600 * vclock.Second)
	long := measure(8 * 600 * vclock.Second)
	if long > 2*short+64 {
		t.Errorf("allocations scaled with the horizon: %.0f at 600s, %.0f at 4800s", short, long)
	}
}
