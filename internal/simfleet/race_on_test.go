//go:build race

package simfleet

// raceEnabled reports whether the race detector is active; the
// allocation-bound guards relax under it, since the detector's
// instrumentation adds allocations of its own.
const raceEnabled = true
