package simfleet

import (
	"fmt"
	"sync"

	"maia/internal/apps/overflow"
	"maia/internal/core"
	"maia/internal/machine"
	"maia/internal/npb"
	"maia/internal/offload"
	"maia/internal/pcie"
	"maia/internal/simfault"
	"maia/internal/simmpi"
	"maia/internal/vclock"
)

// Class is one fleet job class: a unit of work whose service time the
// closed-form engines price per machine condition.
type Class int

// The job classes the fleet schedules, each with a distinct degradation
// signature: MG offload pays Phi compute and PCIe transfers, the
// symmetric OVERFLOW step is the rebalance-sensitive class (the 92%
// recovery lever), and the mixed allreduce phase is communication-bound
// — insensitive to compute stragglers but exposed to a lossy PCIe bus.
const (
	// ClassMGOffload is one NPB MG class-C run through the offload
	// engine (host fallback armed, so a dead Phi degrades, not errors).
	ClassMGOffload Class = iota
	// ClassOverflowSym is a block of symmetric-mode OVERFLOW DLRF6
	// steps; the only class whose price splits static vs rebalanced.
	ClassOverflowSym
	// ClassCGAllreduce is a CG-style phase of mixed host+Phi allreduce
	// operations.
	ClassCGAllreduce
	numClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassMGOffload:
		return "mg-offload"
	case ClassOverflowSym:
		return "overflow-sym"
	case ClassCGAllreduce:
		return "cg-allreduce"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Classes returns every job class in scheduling order.
func Classes() []Class {
	return []Class{ClassMGOffload, ClassOverflowSym, ClassCGAllreduce}
}

// Job-size multipliers: how many engine units one scheduled job spans.
const (
	overflowStepsPerJob = 10   // symmetric DLRF6 steps per OVERFLOW job
	cgOpsPerJob         = 2000 // 64 KiB allreduce operations per CG job
	cgMsgBytes          = 64 << 10
)

// Price is one class's service time on a degraded node, before and
// after the remediation loop rebalances it. Classes without a rebalance
// lever carry Static == Rebalanced.
type Price struct {
	// Static is the service time under the condition's static balance.
	Static vclock.Time
	// Rebalanced is the service time after rebalancing on measured speeds.
	Rebalanced vclock.Time
}

// PriceTable holds every (condition, class) service time one model
// admits: the closed-form engines run once per entry at table-build
// time, and the fleet's event loop is pure arithmetic afterwards.
type PriceTable struct {
	// Healthy is the per-class service time of an undegraded node.
	Healthy [numClasses]vclock.Time
	// Degraded maps a sampleable condition name to its per-class prices.
	Degraded map[string][numClasses]Price
}

// Service returns the service time of one job of class c on a node in
// the named condition ("" = healthy), after rebalancing when rebalanced.
func (t *PriceTable) Service(condition string, c Class, rebalanced bool) vclock.Time {
	if condition == "" {
		return t.Healthy[c]
	}
	p := t.Degraded[condition][c]
	if rebalanced {
		return p.Rebalanced
	}
	return p.Static
}

// MeanHealthy returns the mean healthy service time across classes —
// the scale the arrival process targets its load against.
func (t *PriceTable) MeanHealthy() vclock.Time {
	var sum vclock.Time
	for _, v := range t.Healthy {
		sum += v
	}
	return sum / vclock.Time(numClasses)
}

// MeanCondition returns the mean static service time across classes of
// a node in the named condition — what the remediation loop weighs
// against MeanHealthy before cordoning: a degraded node that still
// beats a healthy one on the mix (a dead Phi whose host fallback
// outruns MG offload, say) is worth more in service than in a repair
// bay. The second result is false for unknown conditions.
func (t *PriceTable) MeanCondition(condition string) (vclock.Time, bool) {
	p, ok := t.Degraded[condition]
	if !ok {
		return 0, false
	}
	var sum vclock.Time
	for _, c := range Classes() {
		sum += p[c].Static
	}
	return sum / vclock.Time(numClasses), true
}

// RebalanceRecovery returns the fraction (in percent) of the
// straggler-induced overflow-class slowdown that rebalancing recovers
// on nodes in the named condition — ext-fault-straggler's headline
// metric, generalized. The second result is false when the condition
// has no static-vs-rebalanced gap to recover.
func (t *PriceTable) RebalanceRecovery(condition string) (float64, bool) {
	p, ok := t.Degraded[condition]
	if !ok {
		return 0, false
	}
	static := p[ClassOverflowSym].Static
	rebalanced := p[ClassOverflowSym].Rebalanced
	healthy := t.Healthy[ClassOverflowSym]
	if static <= healthy || static == rebalanced {
		return 0, false
	}
	return 100 * float64(static-rebalanced) / float64(static-healthy), true
}

// priceTask prices one (condition, class) cell on its own node clone.
type priceTask struct {
	condition string // "" = healthy
	class     Class
}

// NewPriceTable prices every (condition, class) cell for the model:
// healthy plus each sampleable simfault condition, each through the
// engine that owns the class. workers > 1 fans the cells out across
// goroutines — each cell runs on its own node clone and writes its own
// slot, so the table is byte-identical to the sequential build.
func NewPriceTable(m core.Model, node *machine.Node, workers int) (*PriceTable, error) {
	// The MG host-fallback rate comes from the repository's own MG
	// numbers, exactly as ext-fault-failover derives it.
	host, err := npb.OMPTime(m, npb.MG, npb.ClassC, machine.HostPartition(node, 1))
	if err != nil {
		return nil, err
	}
	phi, err := npb.OMPTime(m, npb.MG, npb.ClassC, machine.PhiThreadsPartition(node, machine.Phi0, 177))
	if err != nil {
		return nil, err
	}
	hostRate := host.Time.Seconds() / phi.Time.Seconds()

	conditions := simfault.SampleConditions()
	var tasks []priceTask
	for _, c := range Classes() {
		tasks = append(tasks, priceTask{condition: "", class: c})
		for _, cond := range conditions {
			tasks = append(tasks, priceTask{condition: cond, class: c})
		}
	}
	if workers < 1 {
		workers = 1
	}
	prices := make([]Price, len(tasks))
	errs := make([]error, len(tasks))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, task := range tasks {
		wg.Add(1)
		go func(i int, task priceTask) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			prices[i], errs[i] = priceCell(m, node.Clone(), task, hostRate)
		}(i, task)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("simfleet: pricing %s under %q: %w",
				tasks[i].class, tasks[i].condition, err)
		}
	}

	t := &PriceTable{Degraded: make(map[string][numClasses]Price, len(conditions))}
	for i, task := range tasks {
		if task.condition == "" {
			t.Healthy[task.class] = prices[i].Static
			continue
		}
		row := t.Degraded[task.condition]
		row[task.class] = prices[i]
		t.Degraded[task.condition] = row
	}
	return t, nil
}

// priceCell prices one (condition, class) cell.
func priceCell(m core.Model, node *machine.Node, task priceTask, hostRate float64) (Price, error) {
	var plan *simfault.Plan
	if task.condition != "" {
		p, err := simfault.ByName(task.condition)
		if err != nil {
			return Price{}, err
		}
		plan = p
	}
	switch task.class {
	case ClassMGOffload:
		res, err := npb.MGOffload(m, npb.ClassC, node, npb.OffloadSubroutine,
			offload.WithFaultPlan(plan),
			offload.WithHostFallback(func(k vclock.Time) vclock.Time {
				return vclock.Time(float64(k) * hostRate)
			}))
		if err != nil {
			return Price{}, err
		}
		return Price{Static: res.Time, Rebalanced: res.Time}, nil
	case ClassOverflowSym:
		return priceOverflow(m, node, plan)
	case ClassCGAllreduce:
		return priceAllreduce(m, node, plan)
	}
	return Price{}, fmt.Errorf("unknown class %d", task.class)
}

// priceOverflow prices a block of symmetric OVERFLOW steps: the healthy
// static balance, the condition's static balance, and the rebalanced
// balance the remediation loop switches a node to. A dead coprocessor
// has no symmetric mode at all — the job runs host-only instead.
func priceOverflow(m core.Model, node *machine.Node, plan *simfault.Plan) (Price, error) {
	if plan.Failed(machine.Phi0, 0) || plan.Failed(machine.Phi1, 0) {
		step, err := overflow.HostOnlyStepTime(m, node)
		if err != nil {
			return Price{}, err
		}
		t := step * overflowStepsPerJob
		return Price{Static: t, Rebalanced: t}, nil
	}
	cfg := overflow.SymmetricConfig{
		HostCombo: overflow.Combo{Ranks: 16, Threads: 1},
		PhiCombo:  overflow.Combo{Ranks: 8, Threads: 28},
		Software:  pcie.PostUpdate,
	}
	if !plan.Enabled() {
		step, err := overflow.SymmetricStepTime(m, node, cfg)
		if err != nil {
			return Price{}, err
		}
		t := step * overflowStepsPerJob
		return Price{Static: t, Rebalanced: t}, nil
	}
	cfg.Faults = plan
	static, rebalanced, err := overflow.SymmetricStepRebalanced(m, node, cfg)
	if err != nil {
		return Price{}, err
	}
	return Price{
		Static:     static * overflowStepsPerJob,
		Rebalanced: rebalanced * overflowStepsPerJob,
	}, nil
}

// priceAllreduce prices a CG-style phase of mixed host+Phi allreduce
// operations. When Phi0 is dead the scheduler lands the Phi side on the
// surviving card; there is no rebalance lever for a communication
// phase, so Static == Rebalanced.
func priceAllreduce(m core.Model, node *machine.Node, plan *simfault.Plan) (Price, error) {
	dev := machine.Phi0
	if plan.Failed(machine.Phi0, 0) {
		dev = machine.Phi1
	}
	cfg := simmpi.Config{
		Ranks: append(simmpi.HostPlacement(4, 1), simmpi.PhiPlacement(dev, 4, 1)...),
	}
	perOp, err := simmpi.CollectiveTime(cfg, simmpi.AllreduceKind, cgMsgBytes, 2,
		simmpi.WithFaultPlan(plan))
	if err != nil {
		return Price{}, err
	}
	t := perOp * cgOpsPerJob
	return Price{Static: t, Rebalanced: t}, nil
}

// tableMemo caches one PriceTable per model: the table is immutable
// once built and every fleet run under the same model shares it.
var tableMemo struct {
	sync.Mutex
	byModel map[core.Model]*PriceTable
}

// TableForModel returns the memoized price table for a model, building
// it (with the given worker fan-out) on first use. core.Model is a
// comparable value type, so the memo key is the full calibration.
func TableForModel(m core.Model, node *machine.Node, workers int) (*PriceTable, error) {
	tableMemo.Lock()
	defer tableMemo.Unlock()
	if t, ok := tableMemo.byModel[m]; ok {
		return t, nil
	}
	t, err := NewPriceTable(m, node, workers)
	if err != nil {
		return nil, err
	}
	if tableMemo.byModel == nil {
		tableMemo.byModel = make(map[core.Model]*PriceTable)
	}
	tableMemo.byModel[m] = t
	return t, nil
}
