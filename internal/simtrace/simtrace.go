// Package simtrace is a zero-dependency, virtual-time span and counter
// tracer for the simulated runtimes in this repository.
//
// The paper's contribution is *explaining* where time goes on Maia —
// host vs Phi ring vs PCIe/DAPL — yet a simulator normally emits only
// final tables. simtrace records the virtual-time events behind every
// number: a Tracer collects spans (Begin/End with vclock timestamps, a
// track naming the agent — rank, thread, device — and a fixed category
// vocabulary) plus monotonic counters (bytes moved, messages,
// barriers). Instrumented code pays nothing when tracing is off: every
// method on *Tracer is nil-safe, so the idiomatic hook is a plain
// method call on a possibly-nil tracer, guarded by an `!= nil` check
// only where arguments would otherwise allocate.
//
// Timestamps are virtual (vclock.Time), never wall-clock, so a trace is
// exactly reproducible. Export formats: Chrome trace_event JSON
// (WriteChrome, loadable in Perfetto / chrome://tracing) and a
// plain-text per-category time/bytes summary (Summary).
package simtrace

import (
	"sort"
	"sync"

	"maia/internal/vclock"
)

// Category classifies a span or counter into the fixed vocabulary used
// across all simulated runtimes. The transport layer always reports
// flight spans under CatPCIe (the interconnect layer of the stack) with
// the span name identifying the actual fabric ("shm:host", "shm:phi",
// "pcie:HostToPhi0", "ib:fdr").
type Category string

// The category vocabulary. Every span and counter carries exactly one.
const (
	CatMPI     Category = "mpi"     // MPI operations (point-to-point and collectives)
	CatOMP     Category = "omp"     // OpenMP constructs (parallel regions, loops, barriers)
	CatOffload Category = "offload" // offload-engine phases (marshal, scatter)
	CatPCIe    Category = "pcie"    // transport flights and DMA framing, any fabric
	CatIO      Category = "io"      // file-system transfers
	CatCompute Category = "compute" // local computation and injection overhead
	CatFault   Category = "fault"   // injected-fault effects (retries, backoff, fallbacks)
)

// Categories returns the vocabulary in display order.
func Categories() []Category {
	return []Category{CatMPI, CatOMP, CatOffload, CatPCIe, CatIO, CatCompute, CatFault}
}

// Span is one completed virtual-time interval on one track.
type Span struct {
	// Proc groups tracks into a logical process (one experiment ID, one
	// World); it becomes the Chrome trace pid.
	Proc string
	// Track names the agent ("host16/rank3", "omp:phi236", "offload:dma");
	// it becomes the Chrome trace tid.
	Track string
	// Cat is the span's category.
	Cat Category
	// Name identifies the operation ("MPI_Allgather[ring]", "dma:h2d").
	Name string
	// Start and End are the span's virtual-time bounds, End >= Start.
	Start, End vclock.Time
	// Bytes is the payload moved by the span, 0 when not applicable.
	Bytes int64
}

// Dur returns the span's virtual duration.
func (s Span) Dur() vclock.Time { return s.End - s.Start }

// CounterKey identifies one monotonic counter.
type CounterKey struct {
	// Cat is the counter's category.
	Cat Category
	// Name identifies the quantity ("messages", "bytes", "barriers").
	Name string
}

// CounterValue is one counter with its accumulated value.
type CounterValue struct {
	// Key identifies the counter.
	Key CounterKey
	// Value is the accumulated (monotonic) total.
	Value int64
}

// Tracer accumulates spans and counters. The zero value of the pointer
// (nil) is a valid no-op tracer: every method returns immediately, so
// instrumented code needs no conditional around plain record calls. A
// non-nil Tracer is safe for concurrent use.
type Tracer struct {
	mu       sync.Mutex
	proc     string
	spans    []Span
	counters map[CounterKey]int64
}

// New returns an empty, enabled tracer.
func New() *Tracer {
	return &Tracer{counters: make(map[CounterKey]int64)}
}

// Enabled reports whether the tracer records anything (i.e. is non-nil).
func (t *Tracer) Enabled() bool { return t != nil }

// SetProcess names the logical process attributed to subsequently
// recorded spans (typically an experiment ID).
func (t *Tracer) SetProcess(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.proc = name
	t.mu.Unlock()
}

// Reserve grows the tracer's span storage so at least n more spans can
// be recorded without reallocation — the capacity hint for callers that
// know their span count up front (harness runners, Merge). It never
// shrinks and is a no-op on a nil tracer.
func (t *Tracer) Reserve(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.mu.Lock()
	if free := cap(t.spans) - len(t.spans); free < n {
		grown := make([]Span, len(t.spans), len(t.spans)+n)
		copy(grown, t.spans)
		t.spans = grown
	}
	t.mu.Unlock()
}

// Span records one completed interval. End < Start is clamped to an
// instant span at Start (virtual time is monotonic per agent, so this
// only defends against rounding).
func (t *Tracer) Span(track string, cat Category, name string, start, end vclock.Time, bytes int64) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{
		Proc: t.proc, Track: track, Cat: cat, Name: name,
		Start: start, End: end, Bytes: bytes,
	})
	t.mu.Unlock()
}

// Active is an in-progress span returned by Begin. It is a value type:
// when the tracer is nil, Begin returns the zero Active and End is a
// no-op, so the disabled path performs no allocation.
type Active struct {
	t     *Tracer
	track string
	name  string
	cat   Category
	start vclock.Time
}

// Begin opens a span at virtual time now. Close it with End/EndBytes.
func (t *Tracer) Begin(track string, cat Category, name string, now vclock.Time) Active {
	if t == nil {
		return Active{}
	}
	return Active{t: t, track: track, cat: cat, name: name, start: now}
}

// End closes the span at virtual time now with no payload.
func (a Active) End(now vclock.Time) { a.EndBytes(now, 0) }

// EndBytes closes the span at virtual time now, recording the payload.
func (a Active) EndBytes(now vclock.Time, bytes int64) {
	if a.t == nil {
		return
	}
	a.t.Span(a.track, a.cat, a.name, a.start, now, bytes)
}

// Count adds delta to the named monotonic counter.
func (t *Tracer) Count(cat Category, name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.counters == nil {
		t.counters = make(map[CounterKey]int64)
	}
	t.counters[CounterKey{Cat: cat, Name: name}] += delta
	t.mu.Unlock()
}

// Merge folds src into t: spans are appended (keeping their own Proc)
// and counters are summed. Merging the same sources in the same order
// yields the same tracer state, and the canonical sort in Spans makes
// exports independent of merge order entirely. src may be nil.
func (t *Tracer) Merge(src *Tracer) {
	if t == nil || src == nil || t == src {
		return
	}
	src.mu.Lock()
	spans := append([]Span(nil), src.spans...)
	counters := make(map[CounterKey]int64, len(src.counters))
	for k, v := range src.counters {
		counters[k] = v
	}
	src.mu.Unlock()

	t.mu.Lock()
	if free := cap(t.spans) - len(t.spans); free < len(spans) {
		grown := make([]Span, len(t.spans), len(t.spans)+len(spans))
		copy(grown, t.spans)
		t.spans = grown
	}
	t.spans = append(t.spans, spans...)
	if t.counters == nil {
		t.counters = make(map[CounterKey]int64)
	}
	for k, v := range counters {
		t.counters[k] += v
	}
	t.mu.Unlock()
}

// SpanCount reports how many spans have been recorded.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the recorded spans in canonical order:
// (Proc, Track, Start, End, Cat, Name, Bytes). The canonical order
// makes every export deterministic regardless of recording
// interleaving or merge order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Cat != b.Cat {
			return a.Cat < b.Cat
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Bytes < b.Bytes
	})
	return out
}

// Counters returns the accumulated counters sorted by (Cat, Name).
func (t *Tracer) Counters() []CounterValue {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]CounterValue, 0, len(t.counters))
	for k, v := range t.counters {
		out = append(out, CounterValue{Key: k, Value: v})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Key.Cat != b.Key.Cat {
			return a.Key.Cat < b.Key.Cat
		}
		return a.Key.Name < b.Key.Name
	})
	return out
}
