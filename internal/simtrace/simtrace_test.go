package simtrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"maia/internal/vclock"
)

const us = vclock.Microsecond

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.SetProcess("p")
	tr.Span("track", CatMPI, "op", 0, us, 8)
	a := tr.Begin("track", CatMPI, "op", 0)
	a.End(us)
	a.EndBytes(us, 8)
	tr.Count(CatMPI, "messages", 1)
	tr.Merge(New())
	New().Merge(tr)
	if tr.SpanCount() != 0 || tr.Spans() != nil || tr.Counters() != nil {
		t.Fatal("nil tracer recorded something")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tr.Summary().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
}

// The disabled (nil) hooks must not allocate: the instrumented hot
// paths (one simmpi send is three of these calls) rely on it.
func TestNilTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	n := testing.AllocsPerRun(100, func() {
		tr.Span("track", CatMPI, "op", 0, us, 8)
		tr.Begin("track", CatPCIe, "flight", 0).EndBytes(us, 8)
		tr.Count(CatMPI, "bytes", 8)
	})
	if n != 0 {
		t.Fatalf("nil tracer hooks allocate %v times per run", n)
	}
}

// TestReserve pins the capacity-hint contract: nil-safe, non-positive
// counts are no-ops, and after Reserve(n) the next n Span calls must
// not reallocate the backing store.
func TestReserve(t *testing.T) {
	var nilTr *Tracer
	nilTr.Reserve(100) // must not panic
	tr := New()
	tr.Reserve(0)
	tr.Reserve(-3)
	tr.Reserve(64)
	c0 := cap(tr.spans)
	if c0 < 64 {
		t.Fatalf("Reserve(64) left capacity %d", c0)
	}
	for i := 0; i < 64; i++ {
		tr.Span("track", CatMPI, "op", 0, us, 8)
	}
	if cap(tr.spans) != c0 {
		t.Fatalf("reserved store reallocated: capacity %d -> %d", c0, cap(tr.spans))
	}
	// A second Reserve with enough free room must not copy either.
	tr.Reserve(0)
	if cap(tr.spans) != c0 {
		t.Fatalf("no-op Reserve changed capacity to %d", cap(tr.spans))
	}
}

func TestSpanRecordingAndCanonicalOrder(t *testing.T) {
	tr := New()
	tr.SetProcess("exp")
	tr.Span("b", CatCompute, "late", 2*us, 3*us, 0)
	tr.Span("a", CatMPI, "op", 0, 2*us, 16)
	tr.Span("a", CatCompute, "early", 0, us, 0)
	tr.Begin("a", CatPCIe, "flight", us).EndBytes(2*us, 16)

	spans := tr.Spans()
	if len(spans) != 4 || tr.SpanCount() != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	// Canonical order: track "a" before "b"; within "a" by start, then
	// end, then category.
	want := []string{"early", "op", "flight", "late"}
	for i, s := range spans {
		if s.Name != want[i] {
			t.Errorf("span %d is %q, want %q", i, s.Name, want[i])
		}
		if s.Proc != "exp" {
			t.Errorf("span %d proc %q, want exp", i, s.Proc)
		}
		if s.End < s.Start {
			t.Errorf("span %d ends before it starts", i)
		}
	}
	if d := spans[1].Dur(); d != 2*us {
		t.Errorf("op duration %v, want 2us", d)
	}
}

func TestNegativeDurationClamped(t *testing.T) {
	tr := New()
	tr.Span("t", CatIO, "x", 5*us, us, 0)
	s := tr.Spans()[0]
	if s.Dur() != 0 || s.Start != 5*us {
		t.Errorf("want clamped instant span at start, got [%v, %v]", s.Start, s.End)
	}
}

func TestCounters(t *testing.T) {
	tr := New()
	tr.Count(CatMPI, "messages", 2)
	tr.Count(CatMPI, "bytes", 100)
	tr.Count(CatMPI, "messages", 3)
	tr.Count(CatOMP, "barriers", 1)
	got := tr.Counters()
	want := []CounterValue{
		{Key: CounterKey{CatMPI, "bytes"}, Value: 100},
		{Key: CounterKey{CatMPI, "messages"}, Value: 5},
		{Key: CounterKey{CatOMP, "barriers"}, Value: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d counters, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("counter %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// Merging child tracers in any order produces identical exports: the
// engine merges per-experiment tracers in slice order, but determinism
// must not depend on it.
func TestMergeOrderIndependence(t *testing.T) {
	mk := func() (*Tracer, *Tracer) {
		a, b := New(), New()
		a.SetProcess("a")
		a.Span("r0", CatMPI, "send", 0, us, 8)
		a.Count(CatMPI, "messages", 1)
		b.SetProcess("b")
		b.Span("r0", CatMPI, "recv", 0, 2*us, 8)
		b.Count(CatMPI, "messages", 2)
		return a, b
	}

	a1, b1 := mk()
	m1 := New()
	m1.Merge(a1)
	m1.Merge(b1)

	a2, b2 := mk()
	m2 := New()
	m2.Merge(b2)
	m2.Merge(a2)

	var o1, o2 bytes.Buffer
	if err := m1.WriteChrome(&o1); err != nil {
		t.Fatal(err)
	}
	if err := m2.WriteChrome(&o2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(o1.Bytes(), o2.Bytes()) {
		t.Error("merge order changed the Chrome export")
	}
	if m1.Counters()[0].Value != 3 {
		t.Errorf("merged counter %d, want 3", m1.Counters()[0].Value)
	}
}

func TestWriteChromeStructure(t *testing.T) {
	tr := New()
	tr.SetProcess("fig")
	tr.Span("rank0", CatMPI, "MPI_Send", 0, 3*us, 1024)
	tr.Span("rank1", CatPCIe, "shm:host", us, 2*us, 1024)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Args["name"] == nil {
				t.Errorf("metadata event %q lacks a name arg", ev.Name)
			}
		case "X":
			complete++
			if ev.Dur < 0 || ev.Ts < 0 {
				t.Errorf("span %q has negative ts/dur", ev.Name)
			}
			if ev.Pid == 0 || ev.Tid == 0 {
				t.Errorf("span %q lacks pid/tid", ev.Name)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	// 1 process_name + 2 thread_name metadata events, 2 spans.
	if meta != 3 || complete != 2 {
		t.Errorf("got %d metadata + %d complete events, want 3 + 2", meta, complete)
	}
	if doc.TraceEvents[len(doc.TraceEvents)-1].Args["bytes"] == nil {
		t.Error("span with payload lost its bytes arg")
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"traceEvents\":[]") {
		t.Errorf("empty trace should emit an empty traceEvents array, got %s", buf.String())
	}
}

func TestSummary(t *testing.T) {
	tr := New()
	tr.Span("r0", CatMPI, "op", 0, 4*us, 64)
	tr.Span("r1", CatMPI, "op", 0, 2*us, 32)
	tr.Span("r0", CatPCIe, "shm:host", us, 2*us, 64)
	tr.Count(CatMPI, "messages", 2)

	s := tr.Summary()
	if s.Spans != 3 || s.Horizon != 4*us {
		t.Fatalf("summary %d spans horizon %v, want 3 / 4us", s.Spans, s.Horizon)
	}
	if len(s.Categories) != 2 {
		t.Fatalf("got %d categories, want 2", len(s.Categories))
	}
	// Display order puts mpi before pcie.
	if s.Categories[0].Cat != CatMPI || s.Categories[1].Cat != CatPCIe {
		t.Errorf("category order %v, %v", s.Categories[0].Cat, s.Categories[1].Cat)
	}
	if s.Categories[0].Time != 6*us || s.Categories[0].Bytes != 96 {
		t.Errorf("mpi rollup %v/%d, want 6us/96", s.Categories[0].Time, s.Categories[0].Bytes)
	}

	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"trace summary: 3 spans", "mpi", "pcie", "counters:", "mpi/messages"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary text lacks %q:\n%s", want, out)
		}
	}
}

// A tracer shared by many goroutines (one per simulated rank) must not
// lose or corrupt records. Run with -race this is the concurrency audit.
func TestConcurrentRecording(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	const goroutines, per = 8, 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Span("track", CatCompute, "w", vclock.Time(i)*us, vclock.Time(i+1)*us, 1)
				tr.Count(CatCompute, "ops", 1)
			}
		}(g)
	}
	wg.Wait()
	if tr.SpanCount() != goroutines*per {
		t.Errorf("recorded %d spans, want %d", tr.SpanCount(), goroutines*per)
	}
	if v := tr.Counters()[0].Value; v != goroutines*per {
		t.Errorf("counter %d, want %d", v, goroutines*per)
	}
}
