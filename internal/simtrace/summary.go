// Plain-text per-category summary of a trace: where the virtual time
// and bytes went, plus the monotonic counters.
package simtrace

import (
	"fmt"
	"io"

	"maia/internal/vclock"
)

// CategorySummary aggregates all spans of one category.
type CategorySummary struct {
	// Cat is the category summarized.
	Cat Category
	// Spans is how many spans carried the category.
	Spans int
	// Time is the sum of the spans' virtual durations. Spans on
	// different tracks overlap in virtual time, so this is aggregate
	// agent-time (like CPU-seconds), not elapsed time.
	Time vclock.Time
	// Bytes is the sum of the spans' payloads.
	Bytes int64
}

// TraceSummary is the per-category rollup of a whole trace.
type TraceSummary struct {
	// Categories holds one row per category that recorded any span,
	// in the fixed vocabulary display order.
	Categories []CategorySummary
	// Counters are the accumulated counters, sorted by (Cat, Name).
	Counters []CounterValue
	// Spans is the total span count.
	Spans int
	// Horizon is the latest span end: the virtual-time extent of
	// the trace.
	Horizon vclock.Time
}

// Summary computes the per-category rollup of everything recorded.
func (t *Tracer) Summary() TraceSummary {
	var sum TraceSummary
	agg := map[Category]*CategorySummary{}
	for _, s := range t.Spans() {
		c := agg[s.Cat]
		if c == nil {
			c = &CategorySummary{Cat: s.Cat}
			agg[s.Cat] = c
		}
		c.Spans++
		c.Time += s.Dur()
		c.Bytes += s.Bytes
		sum.Spans++
		if s.End > sum.Horizon {
			sum.Horizon = s.End
		}
	}
	for _, cat := range Categories() {
		if c := agg[cat]; c != nil {
			sum.Categories = append(sum.Categories, *c)
			delete(agg, cat)
		}
	}
	// Categories outside the fixed vocabulary (none are produced by this
	// repository, but a trace could be merged from elsewhere) follow in
	// lexical order.
	var extra []CategorySummary
	for _, c := range agg {
		extra = append(extra, *c)
	}
	for i := 0; i < len(extra); i++ {
		for j := i + 1; j < len(extra); j++ {
			if extra[j].Cat < extra[i].Cat {
				extra[i], extra[j] = extra[j], extra[i]
			}
		}
	}
	sum.Categories = append(sum.Categories, extra...)
	sum.Counters = t.Counters()
	return sum
}

// WriteText renders the summary as an aligned plain-text table.
func (s TraceSummary) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "trace summary: %d spans, horizon %v\n", s.Spans, s.Horizon); err != nil {
		return err
	}
	if len(s.Categories) > 0 {
		if _, err := fmt.Fprintf(w, "%-10s %8s %12s %14s\n", "category", "spans", "time", "bytes"); err != nil {
			return err
		}
		for _, c := range s.Categories {
			if _, err := fmt.Fprintf(w, "%-10s %8d %12v %14d\n", c.Cat, c.Spans, c.Time, c.Bytes); err != nil {
				return err
			}
		}
	}
	if len(s.Counters) > 0 {
		if _, err := fmt.Fprintln(w, "counters:"); err != nil {
			return err
		}
		for _, c := range s.Counters {
			if _, err := fmt.Fprintf(w, "  %-28s %14d\n", string(c.Key.Cat)+"/"+c.Key.Name, c.Value); err != nil {
				return err
			}
		}
	}
	return nil
}
