// Chrome trace_event export: the JSON Object Format understood by
// Perfetto (ui.perfetto.dev) and chrome://tracing.
package simtrace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the trace_event "traceEvents" array.
// Complete spans use ph "X" with ts/dur in microseconds; metadata
// events (ph "M") name processes and threads.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes the trace as Chrome trace_event JSON, loadable in
// Perfetto. Processes (pids) are the sorted distinct Proc names, tracks
// (tids) the sorted distinct track names within each process; spans are
// emitted in canonical order, so the output is byte-deterministic for a
// given set of recorded spans regardless of recording or merge order.
// Timestamps are virtual microseconds.
func (t *Tracer) WriteChrome(w io.Writer) error {
	spans := t.Spans()

	// Assign pids to processes and tids to tracks in sorted first-seen
	// order (Spans is already sorted by Proc then Track).
	pids := map[string]int{}
	type trackKey struct {
		proc, track string
	}
	tids := map[trackKey]int{}
	var events []chromeEvent
	for _, s := range spans {
		pid, ok := pids[s.Proc]
		if !ok {
			pid = len(pids) + 1
			pids[s.Proc] = pid
			name := s.Proc
			if name == "" {
				name = "trace"
			}
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": name},
			})
		}
		tk := trackKey{s.Proc, s.Track}
		tid, ok := tids[tk]
		if !ok {
			tid = len(tids) + 1
			tids[tk] = tid
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": s.Track},
			})
		}
		dur := s.Dur().Microseconds()
		ev := chromeEvent{
			Name: s.Name, Cat: string(s.Cat), Ph: "X",
			Ts: s.Start.Microseconds(), Dur: &dur, Pid: pid, Tid: tid,
		}
		if s.Bytes > 0 {
			ev.Args = map[string]any{"bytes": s.Bytes}
		}
		events = append(events, ev)
	}
	if events == nil {
		events = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
