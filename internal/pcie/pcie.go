// Package pcie models the PCI Express paths between the host and the two
// Phi coprocessors of a Maia node, including the two DAPL providers the
// Intel MPI library chooses between and the pre-/post-update software
// stacks whose difference the paper measures (Section 5, Figures 7–9), and
// the offload-mode DMA path (Figure 18).
//
// Three physical paths exist (Figure 1): host to Phi0 (one PCIe hop), host
// to Phi1 (crosses the socket-to-socket QPI first, hence higher latency),
// and Phi0 to Phi1 (PCIe peer-to-peer). Two DAPL providers serve MPI
// traffic:
//
//   - CCL Direct (ofa-v2-mlx4_0-1): lowest latency, modest bandwidth;
//   - SCIF (ofa-v2-scif0): higher latency setup, much higher bandwidth.
//
// The pre-update stack (MPSS Gold, Intel MPI 4.1.0.030) uses CCL Direct
// for all message sizes. The post-update stack (MPSS Gold update 3, MPI
// 4.1.1.036) switches provider and protocol by message size:
//
//	<= 8 KB            eager protocol, CCL Direct
//	8 KB .. 256 KB     rendezvous direct-copy, CCL Direct
//	> 256 KB           rendezvous direct-copy, DAPL over SCIF
package pcie

import (
	"fmt"
	"strconv"
	"strings"

	"maia/internal/vclock"
)

// Path identifies one intra-node PCIe communication path.
type Path int

const (
	// HostPhi0 is host <-> the Phi on the first PCIe bus.
	HostPhi0 Path = iota
	// HostPhi1 is host <-> the Phi on the second PCIe bus (via QPI).
	HostPhi1
	// Phi0Phi1 is coprocessor <-> coprocessor peer-to-peer.
	Phi0Phi1
	numPaths
)

// String implements fmt.Stringer.
func (p Path) String() string {
	switch p {
	case HostPhi0:
		return "host-Phi0"
	case HostPhi1:
		return "host-Phi1"
	case Phi0Phi1:
		return "Phi0-Phi1"
	default:
		return fmt.Sprintf("Path(%d)", int(p))
	}
}

// Paths lists all three paths in display order.
func Paths() []Path { return []Path{HostPhi0, HostPhi1, Phi0Phi1} }

// Provider is a DAPL provider.
type Provider int

const (
	// CCLDirect is the Coprocessor Communication Link direct provider
	// (ofa-v2-mlx4_0-1): lowest latency, available on all segments.
	CCLDirect Provider = iota
	// SCIF is the Symmetric Communication Interface provider
	// (ofa-v2-scif0): a higher-bandwidth data path over PCIe.
	SCIF
)

// String implements fmt.Stringer.
func (p Provider) String() string {
	if p == SCIF {
		return "ofa-v2-scif0"
	}
	return "ofa-v2-mlx4_0-1"
}

// Protocol is the MPI point-to-point wire protocol.
type Protocol int

const (
	// Eager sends the payload immediately with the envelope.
	Eager Protocol = iota
	// RendezvousDirect handshakes first, then copies directly; it costs
	// an extra round trip but avoids intermediate buffering.
	RendezvousDirect
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	if p == RendezvousDirect {
		return "rendezvous direct-copy"
	}
	return "eager"
}

// DAPLConfig mirrors the two environment variables the paper sets to get
// size-based provider switching:
//
//	I_MPI_DAPL_DIRECT_COPY_THRESHOLD=8192,262144
//	I_MPI_DAPL_PROVIDER_LIST=ofa-v2-mlx4_0-1,ofa-v2-scif0
type DAPLConfig struct {
	EagerMaxBytes       int // below or equal: eager protocol
	ProviderSwitchBytes int // above: second provider (SCIF)
	Providers           [2]Provider
}

// DefaultDAPLConfig returns the post-update configuration from Section 5.
func DefaultDAPLConfig() DAPLConfig {
	return DAPLConfig{
		EagerMaxBytes:       8192,
		ProviderSwitchBytes: 262144,
		Providers:           [2]Provider{CCLDirect, SCIF},
	}
}

// ParseDAPLThresholds parses an I_MPI_DAPL_DIRECT_COPY_THRESHOLD value
// ("8192,262144") into a DAPLConfig with the default provider list.
func ParseDAPLThresholds(s string) (DAPLConfig, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return DAPLConfig{}, fmt.Errorf("pcie: want two comma-separated thresholds, got %q", s)
	}
	eager, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return DAPLConfig{}, fmt.Errorf("pcie: bad eager threshold: %w", err)
	}
	sw, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return DAPLConfig{}, fmt.Errorf("pcie: bad provider-switch threshold: %w", err)
	}
	if eager < 0 || sw < eager {
		return DAPLConfig{}, fmt.Errorf("pcie: thresholds out of order: %q", s)
	}
	cfg := DefaultDAPLConfig()
	cfg.EagerMaxBytes, cfg.ProviderSwitchBytes = eager, sw
	return cfg, nil
}

// Software selects the software environment of Section 5.
type Software int

const (
	// PreUpdate is MPSS Gold + Intel MPI 4.1.0.030: CCL Direct for all
	// message sizes, with the host-Phi1 bandwidth asymmetry.
	PreUpdate Software = iota
	// PostUpdate is MPSS Gold update 3 + Intel MPI 4.1.1.036 with the
	// DAPL environment variables set: provider switching, symmetric
	// bandwidth, SCIF for large messages.
	PostUpdate
)

// String implements fmt.Stringer.
func (s Software) String() string {
	if s == PostUpdate {
		return "post-update"
	}
	return "pre-update"
}

// pathParams are the calibrated per-path constants of one provider.
type pathParams struct {
	latency vclock.Time // one-way small-message latency
	gbs     float64     // sustained one-direction bandwidth, GB/s
}

// Stack is one software environment's view of the PCIe fabric. It answers
// timing questions for MPI-over-PCIe traffic.
type Stack struct {
	sw   Software
	cfg  DAPLConfig
	ccl  [numPaths]pathParams
	scif [numPaths]pathParams
}

// NewStack returns the transport model for the given software environment,
// calibrated to the paper's Figures 7 and 8.
func NewStack(sw Software) *Stack {
	s := &Stack{sw: sw, cfg: DefaultDAPLConfig()}
	switch sw {
	case PreUpdate:
		// Figure 7 pre-update latencies; Figure 8 pre-update 4 MB
		// bandwidths (1.6 GB/s, 455 MB/s, 444 MB/s). The host-Phi1
		// asymmetry is the defect the update fixed.
		s.ccl = [numPaths]pathParams{
			HostPhi0: {3.3 * vclock.Microsecond, 1.6},
			HostPhi1: {4.6 * vclock.Microsecond, 0.455},
			Phi0Phi1: {6.3 * vclock.Microsecond, 0.444},
		}
		// Pre-update never routes to SCIF; mirror CCL so Route stays
		// total.
		s.scif = s.ccl
	case PostUpdate:
		// Figure 7 post-update latencies; small/medium CCL bandwidth
		// improves by the Figure 9 factor (~1.4x); SCIF reaches 6 GB/s
		// on both host paths and 899 MB/s peer-to-peer.
		s.ccl = [numPaths]pathParams{
			HostPhi0: {3.3 * vclock.Microsecond, 2.24},
			HostPhi1: {4.1 * vclock.Microsecond, 0.64},
			Phi0Phi1: {6.6 * vclock.Microsecond, 0.62},
		}
		// Wire rates are set slightly above the measured effective
		// bandwidths so that, after handshake and latency overheads,
		// a 4 MB transfer lands on the paper's 6 / 6 / 0.899 GB/s.
		s.scif = [numPaths]pathParams{
			HostPhi0: {6.6 * vclock.Microsecond, 6.13},
			HostPhi1: {8.2 * vclock.Microsecond, 6.13},
			Phi0Phi1: {13.2 * vclock.Microsecond, 0.904},
		}
	default:
		panic(fmt.Sprintf("pcie: unknown software %d", int(sw)))
	}
	return s
}

// Software returns the stack's environment.
func (s *Stack) Software() Software { return s.sw }

// SetDAPLConfig overrides the provider/protocol thresholds (used by the
// ablation benchmarks). It has no effect on a pre-update stack, which
// ignores thresholds by construction.
func (s *Stack) SetDAPLConfig(cfg DAPLConfig) { s.cfg = cfg }

// Route returns the provider and protocol used for a message of the given
// size on this stack.
func (s *Stack) Route(msgBytes int) (Provider, Protocol) {
	proto := Eager
	if msgBytes > s.cfg.EagerMaxBytes {
		proto = RendezvousDirect
	}
	if s.sw == PreUpdate {
		return CCLDirect, proto
	}
	if msgBytes > s.cfg.ProviderSwitchBytes {
		return SCIF, proto
	}
	return CCLDirect, proto
}

// Latency returns the small-message one-way MPI latency of a path
// (Figure 7).
func (s *Stack) Latency(p Path) vclock.Time { return s.ccl[p].latency }

// TransferTime returns the one-way time to move msgBytes across path p,
// including protocol overheads: eager messages pay the base latency;
// rendezvous messages pay an extra handshake round trip.
func (s *Stack) TransferTime(p Path, msgBytes int) vclock.Time {
	prov, proto := s.Route(msgBytes)
	params := s.ccl[p]
	if prov == SCIF {
		params = s.scif[p]
	}
	t := params.latency
	if proto == RendezvousDirect {
		t += 2 * s.ccl[p].latency // handshake runs over the low-latency provider
	}
	return t + vclock.Time(float64(msgBytes)/(params.gbs*1e9))
}

// Bandwidth returns the effective bandwidth in GB/s seen by a ping-pong
// style benchmark for the given message size (Figure 8).
func (s *Stack) Bandwidth(p Path, msgBytes int) float64 {
	if msgBytes <= 0 {
		return 0
	}
	return float64(msgBytes) / s.TransferTime(p, msgBytes).Seconds() / 1e9
}
