package pcie

import (
	"testing"
	"testing/quick"
)

// Transfer time never decreases with message size while the stack stays
// in one (provider, protocol) state. Across state boundaries time may
// legitimately DROP — switching to SCIF above 256 KB is faster, which is
// the whole point of the post-update configuration.
func TestTransferTimeMonotone(t *testing.T) {
	for _, sw := range []Software{PreUpdate, PostUpdate} {
		s := NewStack(sw)
		f := func(aRaw, bRaw uint32) bool {
			a := int(aRaw % (8 << 20))
			b := int(bRaw % (8 << 20))
			if a > b {
				a, b = b, a
			}
			provA, protoA := s.Route(a)
			provB, protoB := s.Route(b)
			if provA != provB || protoA != protoB {
				return true
			}
			for _, p := range Paths() {
				if s.TransferTime(p, a) > s.TransferTime(p, b) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%v: %v", sw, err)
		}
	}
}

// The provider switch pays off immediately: the first SCIF-routed size
// is faster than the last CCL-routed one on the host paths.
func TestProviderSwitchPaysOff(t *testing.T) {
	s := NewStack(PostUpdate)
	cfg := DefaultDAPLConfig()
	for _, p := range []Path{HostPhi0, HostPhi1} {
		atSwitch := s.TransferTime(p, cfg.ProviderSwitchBytes)
		justOver := s.TransferTime(p, cfg.ProviderSwitchBytes+1)
		if justOver >= atSwitch {
			t.Errorf("%v: SCIF switch did not pay off (%v -> %v)", p, atSwitch, justOver)
		}
	}
}

// Effective bandwidth never exceeds the configured wire rates.
func TestBandwidthBounded(t *testing.T) {
	for _, sw := range []Software{PreUpdate, PostUpdate} {
		s := NewStack(sw)
		f := func(mRaw uint32) bool {
			m := int(mRaw%(16<<20)) + 1
			for _, p := range Paths() {
				if s.Bandwidth(p, m) > 6.2 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%v: %v", sw, err)
		}
	}
}

// A zero-byte transfer costs exactly the path latency.
func TestZeroByteIsLatency(t *testing.T) {
	for _, sw := range []Software{PreUpdate, PostUpdate} {
		s := NewStack(sw)
		for _, p := range Paths() {
			if s.TransferTime(p, 0) != s.Latency(p) {
				t.Fatalf("%v %v: zero-byte transfer != latency", sw, p)
			}
		}
	}
}

// Offload DMA: bounded bandwidth everywhere; monotone time for pairs on
// the same side of the 64 KB dip window (the dip itself is deliberately
// non-monotone — it is the paper's measured artifact).
func TestOffloadDMAProperties(t *testing.T) {
	cfg := DefaultDMAConfig()
	side := func(m int) int {
		switch {
		case m <= cfg.DipLow:
			return 0
		case m < cfg.DipHigh:
			return 1
		default:
			return 2
		}
	}
	f := func(aRaw, bRaw uint32) bool {
		a := int(aRaw % (64 << 20))
		b := int(bRaw % (64 << 20))
		if a > b {
			a, b = b, a
		}
		for _, p := range []Path{HostPhi0, HostPhi1} {
			if side(a) == side(b) && OffloadTransferTime(cfg, p, a) > OffloadTransferTime(cfg, p, b) {
				return false
			}
			if OffloadBandwidth(cfg, p, b) > 8.0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
