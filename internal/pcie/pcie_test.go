package pcie

import (
	"math"
	"testing"
)

func within(t *testing.T, what string, got, want, relTol float64) {
	t.Helper()
	if math.Abs(got-want) > relTol*math.Abs(want) {
		t.Errorf("%s = %v, want %v (±%v%%)", what, got, want, relTol*100)
	}
}

// Figure 7: MPI latency per path, pre- and post-update.
func TestFig7Latencies(t *testing.T) {
	pre, post := NewStack(PreUpdate), NewStack(PostUpdate)
	within(t, "pre h-p0", pre.Latency(HostPhi0).Microseconds(), 3.3, 1e-9)
	within(t, "pre h-p1", pre.Latency(HostPhi1).Microseconds(), 4.6, 1e-9)
	within(t, "pre p0-p1", pre.Latency(Phi0Phi1).Microseconds(), 6.3, 1e-9)
	within(t, "post h-p0", post.Latency(HostPhi0).Microseconds(), 3.3, 1e-9)
	within(t, "post h-p1", post.Latency(HostPhi1).Microseconds(), 4.1, 1e-9)
	within(t, "post p0-p1", post.Latency(Phi0Phi1).Microseconds(), 6.6, 1e-9)
}

// Figure 8: 4 MB bandwidths. Pre: 1.6 GB/s, 455 MB/s, 444 MB/s.
// Post: 6 GB/s, 6 GB/s, 899 MB/s.
func TestFig8Bandwidth4MB(t *testing.T) {
	const m = 4 << 20
	pre, post := NewStack(PreUpdate), NewStack(PostUpdate)
	within(t, "pre h-p0", pre.Bandwidth(HostPhi0, m), 1.6, 0.02)
	within(t, "pre h-p1", pre.Bandwidth(HostPhi1, m), 0.455, 0.02)
	within(t, "pre p0-p1", pre.Bandwidth(Phi0Phi1, m), 0.444, 0.02)
	within(t, "post h-p0", post.Bandwidth(HostPhi0, m), 6.0, 0.02)
	within(t, "post h-p1", post.Bandwidth(HostPhi1, m), 6.0, 0.02)
	within(t, "post p0-p1", post.Bandwidth(Phi0Phi1, m), 0.899, 0.02)
}

// The pre-update asymmetry: host-Phi0 is ~3.5x host-Phi1; post-update
// removes it entirely.
func TestUpdateRemovesAsymmetry(t *testing.T) {
	const m = 4 << 20
	pre, post := NewStack(PreUpdate), NewStack(PostUpdate)
	preRatio := pre.Bandwidth(HostPhi0, m) / pre.Bandwidth(HostPhi1, m)
	if preRatio < 3 || preRatio > 4 {
		t.Errorf("pre-update asymmetry = %v, want ~3.5", preRatio)
	}
	postRatio := post.Bandwidth(HostPhi0, m) / post.Bandwidth(HostPhi1, m)
	if math.Abs(postRatio-1) > 0.05 {
		t.Errorf("post-update asymmetry = %v, want ~1", postRatio)
	}
}

// Figure 9: post/pre gain. Small messages gain 1–1.5x (host-Phi0) and
// 1–1.3x (host-Phi1); at/above 256 KB the SCIF switch lifts gains to
// 2–3.8x and 7–13x respectively; Phi0-Phi1 gains 1.8–2x.
func TestFig9Gains(t *testing.T) {
	pre, post := NewStack(PreUpdate), NewStack(PostUpdate)
	gain := func(p Path, bytes int) float64 {
		return post.Bandwidth(p, bytes) / pre.Bandwidth(p, bytes)
	}
	for _, bytes := range []int{1, 64, 1024, 8192} {
		g0 := gain(HostPhi0, bytes)
		if g0 < 0.95 || g0 > 1.5 {
			t.Errorf("h-p0 gain at %d B = %v, want 1–1.5", bytes, g0)
		}
		g1 := gain(HostPhi1, bytes)
		if g1 < 0.95 || g1 > 1.5 {
			t.Errorf("h-p1 gain at %d B = %v, want 1–1.3", bytes, g1)
		}
	}
	g := gain(HostPhi0, 4<<20)
	if g < 2 || g > 3.9 {
		t.Errorf("h-p0 gain at 4 MB = %v, want 2–3.8", g)
	}
	g = gain(HostPhi1, 4<<20)
	if g < 7 || g > 13.5 {
		t.Errorf("h-p1 gain at 4 MB = %v, want 7–13", g)
	}
	g = gain(Phi0Phi1, 4<<20)
	if g < 1.8 || g > 2.1 {
		t.Errorf("p0-p1 gain at 4 MB = %v, want ~2", g)
	}
}

// Routing: the three post-update states of Section 5.
func TestRouteStates(t *testing.T) {
	post := NewStack(PostUpdate)
	cases := []struct {
		bytes int
		prov  Provider
		proto Protocol
	}{
		{1, CCLDirect, Eager},
		{8192, CCLDirect, Eager},
		{8193, CCLDirect, RendezvousDirect},
		{262144, CCLDirect, RendezvousDirect},
		{262145, SCIF, RendezvousDirect},
		{4 << 20, SCIF, RendezvousDirect},
	}
	for _, c := range cases {
		prov, proto := post.Route(c.bytes)
		if prov != c.prov || proto != c.proto {
			t.Errorf("Route(%d) = %v/%v, want %v/%v", c.bytes, prov, proto, c.prov, c.proto)
		}
	}
	// Pre-update: CCL Direct always.
	pre := NewStack(PreUpdate)
	for _, bytes := range []int{1, 8193, 4 << 20} {
		if prov, _ := pre.Route(bytes); prov != CCLDirect {
			t.Errorf("pre-update Route(%d) = %v, want CCL", bytes, prov)
		}
	}
}

func TestBandwidthMonotoneInSizePerState(t *testing.T) {
	// Within one protocol/provider state, effective bandwidth grows with
	// message size (latency amortizes).
	post := NewStack(PostUpdate)
	for _, p := range Paths() {
		prev := 0.0
		for bytes := 512 << 10; bytes <= 64<<20; bytes *= 2 {
			bw := post.Bandwidth(p, bytes)
			if bw < prev {
				t.Errorf("%v: bandwidth fell from %v to %v at %d B", p, prev, bw, bytes)
			}
			prev = bw
		}
	}
}

func TestTransferTimeZeroBytes(t *testing.T) {
	s := NewStack(PostUpdate)
	if got := s.TransferTime(HostPhi0, 0); got != s.Latency(HostPhi0) {
		t.Errorf("zero-byte transfer = %v, want pure latency", got)
	}
	if s.Bandwidth(HostPhi0, 0) != 0 {
		t.Error("zero-byte bandwidth not 0")
	}
}

func TestParseDAPLThresholds(t *testing.T) {
	cfg, err := ParseDAPLThresholds("8192,262144")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.EagerMaxBytes != 8192 || cfg.ProviderSwitchBytes != 262144 {
		t.Fatalf("parsed %+v", cfg)
	}
	for _, bad := range []string{"", "8192", "a,b", "262144,8192", "8192,262144,5"} {
		if _, err := ParseDAPLThresholds(bad); err == nil {
			t.Errorf("ParseDAPLThresholds(%q) accepted", bad)
		}
	}
}

func TestSetDAPLConfigAblation(t *testing.T) {
	// Ablation: disabling the SCIF switch (threshold = infinity) must
	// erase the large-message gain.
	post := NewStack(PostUpdate)
	cfg := DefaultDAPLConfig()
	cfg.ProviderSwitchBytes = 1 << 30
	post.SetDAPLConfig(cfg)
	if bw := post.Bandwidth(HostPhi0, 4<<20); bw > 2.3 {
		t.Errorf("SCIF-disabled 4MB bandwidth = %v GB/s, want CCL-limited ~2.2", bw)
	}
}

func TestStringers(t *testing.T) {
	if HostPhi0.String() != "host-Phi0" || Phi0Phi1.String() != "Phi0-Phi1" {
		t.Error("Path.String")
	}
	if CCLDirect.String() != "ofa-v2-mlx4_0-1" || SCIF.String() != "ofa-v2-scif0" {
		t.Error("Provider.String")
	}
	if Eager.String() != "eager" || RendezvousDirect.String() != "rendezvous direct-copy" {
		t.Error("Protocol.String")
	}
	if PreUpdate.String() != "pre-update" || PostUpdate.String() != "post-update" {
		t.Error("Software.String")
	}
}

// Figure 18 / Section 6.7: framing efficiency 76% at 64 B and 86% at
// 128 B payloads; sustained ~6.4 GB/s; Phi1 ~3% lower; 64 KB dip.
func TestOffloadDMA(t *testing.T) {
	within(t, "eff 64B", PacketEfficiency(64), 0.76, 0.01)
	within(t, "eff 128B", PacketEfficiency(128), 0.86, 0.01)
	if PacketEfficiency(0) != 0 {
		t.Error("PacketEfficiency(0) != 0")
	}

	cfg := DefaultDMAConfig()
	big := 64 << 20
	bw0 := OffloadBandwidth(cfg, HostPhi0, big)
	within(t, "offload h-p0 large", bw0, 6.4, 0.02)
	bw1 := OffloadBandwidth(cfg, HostPhi1, big)
	within(t, "phi1 derate", bw1/bw0, 0.97, 0.005)

	// The 64 KB dip: bandwidth at 64 KB is below both 32 KB and 128 KB.
	dip := OffloadBandwidth(cfg, HostPhi0, 64<<10)
	if dip >= OffloadBandwidth(cfg, HostPhi0, 32<<10) ||
		dip >= OffloadBandwidth(cfg, HostPhi0, 128<<10) {
		t.Errorf("no dip at 64 KB: %v", dip)
	}

	// Small transfers are setup-dominated.
	if small := OffloadBandwidth(cfg, HostPhi0, 64); small > 0.05 {
		t.Errorf("64 B offload bandwidth = %v GB/s, want ~latency-bound", small)
	}
	if OffloadBandwidth(cfg, HostPhi0, 0) != 0 {
		t.Error("zero-byte offload bandwidth not 0")
	}
}
