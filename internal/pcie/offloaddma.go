package pcie

import (
	"maia/internal/simtrace"
	"maia/internal/vclock"
)

// Figure 18 models the offload-mode DMA path, which bypasses the MPI/DAPL
// stack entirely: the offload runtime pins buffers and drives PCIe DMA
// directly. Its throughput is limited by PCIe packet framing: a packet
// carrying 64 or 128 bytes of payload wears 20 bytes of wrapping (framing,
// sequence number, header, digest, link CRC), for a maximum efficiency of
// 76% or 86% — 6.1 or 6.9 GB/s of the 8 GB/s raw gen2 x16 rate. The paper
// measures ~6.4 GB/s sustained for large transfers, host-Phi0 about 3%
// above host-Phi1, and an unexplained dip at 64 KB transfers.

// PacketEfficiency returns the PCIe framing efficiency for a given packet
// payload size: payload / (payload + 20 bytes of wrapping).
func PacketEfficiency(payloadBytes int) float64 {
	if payloadBytes <= 0 {
		return 0
	}
	return float64(payloadBytes) / float64(payloadBytes+20)
}

// DMAConfig parameterizes the offload DMA model.
type DMAConfig struct {
	RawGBs       float64 // raw PCIe payload rate (8 GB/s for gen2 x16)
	PayloadBytes int     // DMA packet payload size
	// SetupLatency is charged once per transfer (pin + descriptor setup).
	SetupLatency vclock.Time
	// Phi1Derate is the small extra inefficiency of the host-Phi1 path.
	Phi1Derate float64
	// DipLow/DipHigh bound the transfer-size region around 64 KB where
	// the runtime switches its internal double-buffering scheme and
	// bandwidth dips (the paper observes this and leaves it open;
	// modeled here as a buffer-switch penalty).
	DipLow, DipHigh int
	DipFactor       float64
}

// DefaultDMAConfig reproduces Figure 18.
func DefaultDMAConfig() DMAConfig {
	return DMAConfig{
		RawGBs:       8.0,
		PayloadBytes: 128,
		SetupLatency: 3 * vclock.Microsecond,
		Phi1Derate:   0.97,
		DipLow:       48 << 10,
		DipHigh:      96 << 10,
		DipFactor:    0.62,
	}
}

// sustainedGBs is the large-transfer ceiling: raw rate times framing
// efficiency times a fixed DMA-engine utilization (calibrated so the
// default config lands on the measured ~6.4 GB/s).
func (c DMAConfig) sustainedGBs() float64 {
	const utilization = 0.925
	return c.RawGBs * PacketEfficiency(c.PayloadBytes) * utilization
}

// OffloadTransferTime returns the time to move `bytes` across path p in
// offload mode.
func OffloadTransferTime(c DMAConfig, p Path, bytes int) vclock.Time {
	bw := c.sustainedGBs()
	if p == HostPhi1 {
		bw *= c.Phi1Derate
	}
	if bytes > c.DipLow && bytes < c.DipHigh {
		bw *= c.DipFactor
	}
	return c.SetupLatency + vclock.Time(float64(bytes)/(bw*1e9))
}

// OffloadBandwidth returns the effective offload bandwidth in GB/s for a
// transfer of the given size (Figure 18's y axis).
func OffloadBandwidth(c DMAConfig, p Path, bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / OffloadTransferTime(c, p, bytes).Seconds() / 1e9
}

// TraceOffloadTransfer prices one offload DMA transfer and, when tr is
// non-nil, records it as a pcie-category span starting at `at` on the
// given track (named "dma:<path>"). It returns the transfer time, so
// callers can thread a running clock: at += TraceOffloadTransfer(...).
func TraceOffloadTransfer(tr *simtrace.Tracer, track string, c DMAConfig, p Path, bytes int, at vclock.Time) vclock.Time {
	t := OffloadTransferTime(c, p, bytes)
	if tr != nil {
		tr.Span(track, simtrace.CatPCIe, "dma:"+p.String(), at, at+t, int64(bytes))
	}
	return t
}
