package vclock

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean of %d uniform draws = %v, want ~0.5", n, mean)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
