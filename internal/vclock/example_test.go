package vclock_test

import (
	"fmt"

	"maia/internal/vclock"
)

// Virtual clocks are how every simulated agent accounts for time:
// explicit charges, never the wall clock.
func ExampleClock() {
	var c vclock.Clock
	c.Advance(3 * vclock.Microsecond)
	c.Advance(500 * vclock.Nanosecond)
	c.AdvanceTo(2 * vclock.Microsecond) // already past: no effect
	fmt.Println(c.Now())
	// Output: 3.5us
}

// Deterministic randomness: the same seed always yields the same stream.
func ExampleRNG() {
	a := vclock.NewRNG(42)
	b := vclock.NewRNG(42)
	fmt.Println(a.Intn(100) == b.Intn(100))
	// Output: true
}
