// Package vclock provides the virtual-time foundation used by every
// simulated runtime in this repository.
//
// All benchmark results in the reproduced paper are wall-clock measurements
// on real hardware. Here, hardware is modeled, so time must be virtual:
// each simulated agent (an MPI rank, an OpenMP thread, a DMA engine) carries
// its own Clock that is advanced by explicit cost charges. Virtual time is
// deterministic — it depends only on the workload and the machine model,
// never on the Go scheduler — which makes every reproduced figure exactly
// repeatable.
package vclock

import (
	"fmt"
	"math"
)

// Time is a point (or span) of virtual time, in seconds.
//
// A float64 of seconds comfortably spans the dynamic range this simulator
// needs: sub-nanosecond cache hits (1.5e-9) up to thousand-second
// application runs, with ~15 significant digits throughout.
type Time float64

// Convenient unit constructors.
const (
	Second      Time = 1
	Millisecond Time = 1e-3
	Microsecond Time = 1e-6
	Nanosecond  Time = 1e-9
)

// Seconds returns t as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// Microseconds returns t expressed in microseconds.
func (t Time) Microseconds() float64 { return float64(t) / 1e-6 }

// Nanoseconds returns t expressed in nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / 1e-9 }

// String formats the time with an auto-selected engineering unit.
func (t Time) String() string {
	abs := math.Abs(float64(t))
	switch {
	case abs == 0:
		return "0s"
	case abs < 1e-6:
		return fmt.Sprintf("%.3gns", t.Nanoseconds())
	case abs < 1e-3:
		return fmt.Sprintf("%.4gus", t.Microseconds())
	case abs < 1:
		return fmt.Sprintf("%.4gms", float64(t)/1e-3)
	default:
		return fmt.Sprintf("%.4gs", float64(t))
	}
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxOf returns the latest of a set of times: the makespan of a group of
// agents' clocks. An empty set has makespan zero.
func MaxOf(ts ...Time) Time {
	var m Time
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}

// Clock is the virtual clock of one simulated agent.
//
// The zero value is a clock at virtual time zero, ready to use.
type Clock struct {
	now Time
}

// Now reports the agent's current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance charges dt of virtual time to the agent. Negative charges are a
// programming error and panic: virtual time is monotonic per agent.
func (c *Clock) Advance(dt Time) {
	if dt < 0 {
		panic(fmt.Sprintf("vclock: negative advance %v", dt))
	}
	c.now += dt
}

// AdvanceTo moves the clock forward to at least t. Used when an agent waits
// for an event that completes at absolute virtual time t (e.g. a message
// arrival): if the agent is already past t the clock is unchanged.
func (c *Clock) AdvanceTo(t Time) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero. Only the owner of a simulation (never an
// agent inside one) should call this, between independent experiments.
func (c *Clock) Reset() { c.now = 0 }
