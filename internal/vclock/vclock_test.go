package vclock

import (
	"testing"
	"testing/quick"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(3 * Microsecond)
	c.Advance(500 * Nanosecond)
	want := Time(3.5e-6)
	if got := c.Now(); got < want*0.999999 || got > want*1.000001 {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	var c Clock
	c.Advance(-1 * Nanosecond)
}

func TestClockAdvanceTo(t *testing.T) {
	var c Clock
	c.Advance(10 * Microsecond)
	c.AdvanceTo(5 * Microsecond) // in the past: no-op
	if got := c.Now(); got != 10*Microsecond {
		t.Fatalf("AdvanceTo into past moved clock to %v", got)
	}
	c.AdvanceTo(20 * Microsecond)
	if got := c.Now(); got != 20*Microsecond {
		t.Fatalf("AdvanceTo(20us) = %v", got)
	}
}

func TestClockReset(t *testing.T) {
	var c Clock
	c.Advance(Second)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset left clock at %v", c.Now())
	}
}

func TestClockMonotonic(t *testing.T) {
	// Property: any sequence of non-negative advances keeps Now
	// non-decreasing and equal to the running sum.
	f := func(steps []uint16) bool {
		var c Clock
		var sum Time
		for _, s := range steps {
			dt := Time(s) * Nanosecond
			prev := c.Now()
			c.Advance(dt)
			sum += dt
			if c.Now() < prev {
				return false
			}
		}
		diff := float64(c.Now() - sum)
		return diff < 1e-15 && diff > -1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMin(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 {
		t.Fatal("Max broken")
	}
	if Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Fatal("Min broken")
	}
	if MaxOf() != 0 || MaxOf(3) != 3 || MaxOf(1, 5, 2) != 5 {
		t.Fatal("MaxOf broken")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{1.5 * Nanosecond, "1.5ns"},
		{3.3 * Microsecond, "3.3us"},
		{12 * Millisecond, "12ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestTimeUnits(t *testing.T) {
	if (2 * Microsecond).Microseconds() != 2 {
		t.Fatal("Microseconds conversion")
	}
	if (3 * Nanosecond).Nanoseconds() != 3 {
		t.Fatal("Nanoseconds conversion")
	}
	if Second.Seconds() != 1 {
		t.Fatal("Seconds conversion")
	}
}
