package vclock

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64). The simulator must not depend on math/rand's global state
// or on seeding from wall-clock time: identical runs must produce identical
// virtual timelines. Every component that needs randomness owns an RNG
// seeded from its configuration.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("vclock: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	r.PermInto(p)
	return p
}

// PermInto fills p with a pseudo-random permutation of [0, len(p)),
// consuming exactly the same stream draws as Perm — callers with pooled
// buffers get the identical permutation without the allocation.
func (r *RNG) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
