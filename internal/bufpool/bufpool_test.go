package bufpool

import "testing"

func TestGetLengthAndClass(t *testing.T) {
	var p Pool[byte]
	for _, n := range []int{1, 2, 3, 7, 8, 9, 1000, 1024, 1025} {
		s := p.Get(n)
		if len(s) != n {
			t.Fatalf("Get(%d) length %d", n, len(s))
		}
		if c := cap(s); c&(c-1) != 0 || c < n {
			t.Fatalf("Get(%d) capacity %d not a covering power of two", n, c)
		}
		p.Put(s)
	}
	if s := p.Get(0); s != nil {
		t.Fatalf("Get(0) = %v, want nil", s)
	}
	if s := p.Get(-5); s != nil {
		t.Fatalf("Get(-5) = %v, want nil", s)
	}
}

func TestRoundTripReuse(t *testing.T) {
	var p Pool[int]
	s := p.Get(100)
	for i := range s {
		s[i] = i
	}
	p.Put(s)
	// A pooled buffer may come back with stale contents...
	s2 := p.Get(100)
	if len(s2) != 100 {
		t.Fatalf("reused length %d", len(s2))
	}
	p.Put(s2)
	// ...but GetZeroed must always be clean.
	z := p.GetZeroed(100)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZeroed[%d] = %d", i, v)
		}
	}
}

func TestPutForeignSlices(t *testing.T) {
	var p Pool[byte]
	p.Put(nil)                 // no-op
	p.Put(make([]byte, 0))     // zero cap: dropped
	p.Put(make([]byte, 10))    // non-power-of-two cap: dropped
	p.Put(make([]byte, 5, 16)) // power-of-two cap from elsewhere: kept
	s := p.Get(16)
	if len(s) != 16 {
		t.Fatalf("Get(16) length %d", len(s))
	}
}

// TestSteadyStateGetPutZeroAlloc pins the box-recycling property: after
// warm-up, a Get/Put cycle allocates nothing — neither the buffer nor
// the slice header placed in the sync.Pool.
func TestSteadyStateGetPutZeroAlloc(t *testing.T) {
	var p Pool[byte]
	p.Put(p.Get(1024)) // warm both the buffer and the box pool
	n := testing.AllocsPerRun(100, func() {
		p.Put(p.Get(1024))
	})
	if n != 0 {
		t.Fatalf("steady-state Get/Put allocates %v times per cycle, want 0", n)
	}
}

func BenchmarkGetPut1K(b *testing.B) {
	b.ReportAllocs()
	var p Pool[byte]
	for i := 0; i < b.N; i++ {
		s := p.Get(1024)
		p.Put(s)
	}
}
