// Package bufpool provides size-classed free lists for the transient
// slices the simulator's hot paths churn through: message payloads,
// FFT pencil scratch, conversion buffers. Slices are recycled in
// power-of-two capacity classes on top of sync.Pool, so concurrent
// ranks and worker goroutines share safely and idle buffers are
// reclaimed by the garbage collector.
//
// Pooling is a host-memory concern only: buffer reuse never touches
// virtual time, so simulation results are unaffected by pool hits,
// misses, or GC timing.
package bufpool

import (
	"math/bits"
	"sync"
)

// maxClasses covers capacities up to 2^32 elements, far beyond any
// buffer the simulator moves.
const maxClasses = 33

// A Pool recycles []T buffers in power-of-two capacity classes.
// The zero value is ready to use.
type Pool[T any] struct {
	classes [maxClasses]sync.Pool
	// boxes recycles the *[]T headers the class pools store, so a
	// steady-state Get/Put cycle allocates nothing: Put would otherwise
	// heap-allocate a fresh header box per call, which at millions of
	// messages per experiment dominated the profile.
	boxes sync.Pool
}

// Get returns a slice of length n with power-of-two capacity. The
// contents are ARBITRARY — callers must fully overwrite before
// reading, or use GetZeroed.
func (p *Pool[T]) Get(n int) []T {
	if n <= 0 {
		return nil
	}
	c := bits.Len(uint(n - 1))
	if c >= maxClasses {
		return make([]T, n)
	}
	if v := p.classes[c].Get(); v != nil {
		box := v.(*[]T)
		s := *box
		*box = nil
		p.boxes.Put(box)
		return s[:n]
	}
	return make([]T, n, 1<<c)
}

// GetZeroed returns a zero-filled slice of length n.
func (p *Pool[T]) GetZeroed(n int) []T {
	s := p.Get(n)
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// Put recycles s for a later Get. Only buffers with exact power-of-two
// capacity (as Get hands out) are kept; anything else is dropped, so
// recycling a slice of unknown origin is always safe. The caller must
// not touch s afterwards.
func (p *Pool[T]) Put(s []T) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	cls := bits.Len(uint(c)) - 1
	if cls >= maxClasses {
		return
	}
	var box *[]T
	if v := p.boxes.Get(); v != nil {
		box = v.(*[]T)
	} else {
		box = new([]T)
	}
	*box = s[:c]
	p.classes[cls].Put(box)
}
