package simfault

import (
	"math"
	"testing"

	"maia/internal/machine"
	"maia/internal/vclock"
)

// A nil plan is the healthy machine on every query.
func TestNilPlanIsHealthy(t *testing.T) {
	var p *Plan
	if p.Enabled() {
		t.Fatal("nil plan reports Enabled")
	}
	if got := p.ComputeTime(machine.Phi0, 0, vclock.Second); got != vclock.Second {
		t.Fatalf("nil plan derates compute: %v", got)
	}
	if s := p.Slowdown(machine.Phi0); s != 1 {
		t.Fatalf("nil plan slowdown %v", s)
	}
	if _, ok := p.Fabric("pcie:host-Phi0"); ok {
		t.Fatal("nil plan matched a fabric")
	}
	if p.Failed(machine.Phi0, vclock.Second) {
		t.Fatal("nil plan failed a device")
	}
	if n := p.Attempts(FabricFault{DropProb: 0.5}, 0, 1, 0); n != 1 {
		t.Fatalf("nil plan wants %d attempts", n)
	}
	if p.String() != "<none>" {
		t.Fatalf("nil plan string %q", p.String())
	}
}

// The zero-value plan injects nothing either.
func TestEmptyPlanIsHealthy(t *testing.T) {
	p := &Plan{}
	if p.Enabled() {
		t.Fatal("empty plan reports Enabled")
	}
	if got := p.ComputeTime(machine.Host, 3*vclock.Millisecond, 7*vclock.Microsecond); got != 7*vclock.Microsecond {
		t.Fatalf("empty plan derates compute: %v", got)
	}
	if _, ok := p.Fabric("shm:host"); ok {
		t.Fatal("empty plan matched a fabric")
	}
}

func TestStragglerSlowdown(t *testing.T) {
	p := PhiStraggler()
	if got := p.ComputeTime(machine.Phi0, 0, vclock.Second); math.Abs(float64(got)-1.8) > 1e-12 {
		t.Fatalf("straggler compute = %v, want 1.8s", got)
	}
	if got := p.ComputeTime(machine.Host, 0, vclock.Second); got != vclock.Second {
		t.Fatalf("host derated by a Phi straggler: %v", got)
	}
	if s := p.Slowdown(machine.Phi1); s != 1.8 {
		t.Fatalf("Slowdown(Phi1) = %v", s)
	}
}

// Throttled compute conserves work: elapsed time equals the integral of
// the derate curve, checked against a brute-force small-step walk.
func TestThrottleIntegration(t *testing.T) {
	th := Throttle{Device: machine.Phi0, Start: 1 * vclock.Millisecond,
		Period: 5 * vclock.Millisecond, Hot: 2 * vclock.Millisecond, Derate: 2.2}
	p := &Plan{Throttles: []Throttle{th}}

	brute := func(start, work vclock.Time) vclock.Time {
		const dt = 1e-7 // 100 ns steps
		now := float64(start)
		remaining := float64(work)
		for remaining > 0 {
			phase := math.Mod(now-float64(th.Start), float64(th.Period))
			rate := 1.0
			if now >= float64(th.Start) && phase < float64(th.Hot) {
				rate = th.Derate
			}
			step := math.Min(dt, remaining*rate)
			now += step
			remaining -= step / rate
		}
		return vclock.Time(now) - start
	}

	cases := []struct{ start, work vclock.Time }{
		{0, 500 * vclock.Microsecond},                     // entirely before the first window
		{0, 3 * vclock.Millisecond},                       // crosses into the first hot window
		{2 * vclock.Millisecond, vclock.Millisecond},      // starts inside a hot window
		{4 * vclock.Millisecond, vclock.Millisecond},      // starts in a cold stretch
		{0, 40 * vclock.Millisecond},                      // spans many periods
		{7 * vclock.Millisecond, 23 * vclock.Millisecond}, // mid-phase, many periods
	}
	for _, c := range cases {
		got := p.ComputeTime(machine.Phi0, c.start, c.work)
		want := brute(c.start, c.work)
		if math.Abs(float64(got-want)) > 2e-6 {
			t.Errorf("ComputeTime(start=%v, work=%v) = %v, brute force %v", c.start, c.work, got, want)
		}
		if got < c.work {
			t.Errorf("throttle sped up compute: %v < %v", got, c.work)
		}
	}
}

// Throttled compute is additive: charging work in two halves lands at
// the same total elapsed time as one charge (the runtimes charge
// compute in arbitrary increments).
func TestThrottleAdditivity(t *testing.T) {
	p := ThermalThrottle()
	start := 300 * vclock.Microsecond
	whole := p.ComputeTime(machine.Phi0, start, 9*vclock.Millisecond)
	half1 := p.ComputeTime(machine.Phi0, start, 4500*vclock.Microsecond)
	half2 := p.ComputeTime(machine.Phi0, start+half1, 4500*vclock.Microsecond)
	if diff := math.Abs(float64(whole - (half1 + half2))); diff > 1e-9 {
		t.Fatalf("split charge differs from whole by %v s", diff)
	}
}

// Attempts is a pure function of (seed, src, dst, seq): stable across
// calls, bounded by the retry cap, and sensitive to each coordinate.
func TestAttemptsDeterministic(t *testing.T) {
	f := FabricFault{Fabric: "pcie:", DropProb: 0.4, MaxRetries: 6}
	p := &Plan{Seed: 42, Fabrics: []FabricFault{f}}
	counts := map[int]int{}
	for seq := 0; seq < 2000; seq++ {
		a := p.Attempts(f, 3, 7, seq)
		if a < 1 || a > 7 {
			t.Fatalf("attempts %d out of [1,7]", a)
		}
		if b := p.Attempts(f, 3, 7, seq); b != a {
			t.Fatalf("attempts not stable: %d then %d", a, b)
		}
		counts[a]++
	}
	if counts[1] == 2000 {
		t.Fatal("40% drop probability never dropped")
	}
	// Roughly 40% of messages need a retry.
	frac := float64(2000-counts[1]) / 2000
	if frac < 0.3 || frac > 0.5 {
		t.Fatalf("retry fraction %.2f implausible for DropProb 0.4", frac)
	}
	other := &Plan{Seed: 43, Fabrics: []FabricFault{f}}
	same := true
	for seq := 0; seq < 200 && same; seq++ {
		same = p.Attempts(f, 3, 7, seq) == other.Attempts(f, 3, 7, seq)
	}
	if same {
		t.Fatal("different seeds produced identical attempt streams")
	}
}

func TestRetryPenalty(t *testing.T) {
	f := FabricFault{} // defaults
	if got := f.RetryPenalty(1); got != 0 {
		t.Fatalf("one attempt has penalty %v", got)
	}
	want := (DefaultTimeout + DefaultBackoff) + (DefaultTimeout + 2*DefaultBackoff)
	if got := f.RetryPenalty(3); got != want {
		t.Fatalf("RetryPenalty(3) = %v, want %v", got, want)
	}
}

func TestFabricPrefixMatch(t *testing.T) {
	p := LossyPCIe()
	for _, name := range []string{"pcie:host-Phi0", "pcie:host-Phi1", "pcie:Phi0-Phi1"} {
		if _, ok := p.Fabric(name); !ok {
			t.Errorf("lossy-pcie missed fabric %s", name)
		}
	}
	for _, name := range []string{"shm:host", "shm:phi", "ib:fdr"} {
		if _, ok := p.Fabric(name); ok {
			t.Errorf("lossy-pcie matched healthy fabric %s", name)
		}
	}
}

func TestFailed(t *testing.T) {
	p := &Plan{Failures: []Failure{{Device: machine.Phi1, At: vclock.Millisecond}}}
	if p.Failed(machine.Phi1, 0) {
		t.Fatal("failed before At")
	}
	if !p.Failed(machine.Phi1, vclock.Millisecond) {
		t.Fatal("not failed at At")
	}
	if p.Failed(machine.Phi0, vclock.Second) {
		t.Fatal("wrong device failed")
	}
}

func TestCatalog(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("empty catalog")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("catalog not sorted: %v", names)
		}
	}
	for _, n := range names {
		p, err := ByName(n)
		if err != nil {
			t.Fatalf("ByName(%s): %v", n, err)
		}
		if !p.Enabled() {
			t.Errorf("catalog plan %s injects nothing", n)
		}
		if p.Note == "" {
			t.Errorf("catalog plan %s has no note", n)
		}
	}
	if _, err := ByName("no-such-plan"); err == nil {
		t.Fatal("ByName accepted an unknown plan")
	}
}
