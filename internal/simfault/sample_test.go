package simfault

import (
	"math"
	"reflect"
	"testing"

	"maia/internal/vclock"
)

// TestSamplePlanDeterministic pins the purity contract: equal
// (seed, node) pairs draw identical plans, distinct nodes draw
// independently, and drawn plans are re-seeded catalog members.
func TestSamplePlanDeterministic(t *testing.T) {
	for node := 0; node < 64; node++ {
		a := SamplePlan(7, node)
		b := SamplePlan(7, node)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("node %d: repeated draws differ: %+v vs %+v", node, a, b)
		}
		if a == nil {
			continue
		}
		catalog, err := ByName(a.Name)
		if err != nil {
			t.Fatalf("node %d drew non-catalog plan %q", node, a.Name)
		}
		if a.Seed == catalog.Seed {
			t.Errorf("node %d: plan %q kept the catalog seed", node, a.Name)
		}
		reseeded := *catalog
		reseeded.Seed = a.Seed
		if !reflect.DeepEqual(*a, reseeded) {
			t.Errorf("node %d: drawn plan differs from re-seeded catalog plan", node)
		}
	}
}

// TestSamplePlanDistribution checks the draw roughly follows the weight
// table over a large fleet: mostly healthy, every degraded condition
// represented.
func TestSamplePlanDistribution(t *testing.T) {
	const fleet = 2000
	counts := map[string]int{}
	for node := 0; node < fleet; node++ {
		counts[SamplePlan(1, node).String()]++
	}
	if h := counts["<none>"]; h < fleet/2 || h > fleet*7/10 {
		t.Errorf("healthy fraction %d/%d outside [0.5, 0.7]", h, fleet)
	}
	for _, name := range SampleConditions() {
		if counts[name] == 0 {
			t.Errorf("condition %q never drawn over %d nodes", name, fleet)
		}
	}
}

// TestExpDraws pins the exponential draws: deterministic, positive,
// mean-scaling, and roughly the right magnitude.
func TestExpDraws(t *testing.T) {
	const mean = 100 * vclock.Second
	var sum vclock.Time
	const n = 4000
	for k := 0; k < n; k++ {
		d := Exp(mean, 3, 0, 3, k)
		if d != Exp(mean, 3, 0, 3, k) {
			t.Fatalf("draw %d not deterministic", k)
		}
		if d <= 0 || math.IsInf(float64(d), 0) {
			t.Fatalf("draw %d = %v out of range", k, d)
		}
		if got, want := Exp(2*mean, 3, 0, 3, k), 2*d; math.Abs(float64(got-want)) > 1e-9*math.Abs(float64(want)) {
			t.Fatalf("draw %d does not scale with the mean: %v vs %v", k, got, want)
		}
		sum += d
	}
	avg := sum / n
	if avg < mean/2 || avg > mean*2 {
		t.Errorf("empirical mean %v far from %v over %d draws", avg, mean, n)
	}
	if Exp(0, 1, 0, 0, 0) != 0 {
		t.Errorf("zero mean must draw 0")
	}
}

// TestEventSeedIndependence spot-checks that distinct coordinate triples
// yield distinct streams.
func TestEventSeedIndependence(t *testing.T) {
	seen := map[uint64]bool{}
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			for c := 0; c < 8; c++ {
				s := EventSeed(9, a, b, c)
				if seen[s] {
					t.Fatalf("seed collision at (%d,%d,%d)", a, b, c)
				}
				seen[s] = true
			}
		}
	}
}
