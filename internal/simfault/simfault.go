// Package simfault provides deterministic, seed-driven fault plans for
// the simulated Maia system: perturbations of the machine model and the
// runtime cost models that play out entirely in virtual time.
//
// The paper's symmetric-mode OVERFLOW result (Section 6.9.1.3, Figure
// 23) is at heart a robustness story — host and Phi ranks run at unequal
// speeds, and the reported gain comes from a load-balance update that
// adapts to the slower party. Production MIC deployments saw exactly the
// failure modes modeled here: straggler ranks, thermally throttled
// coprocessors, erratic PCIe/DAPL fabrics, and outright card failures.
// A Plan describes such a degraded machine; the runtimes (simmpi,
// simomp, offload, the OVERFLOW drivers) consult it through nil-safe
// methods, so a nil (or empty) plan is exactly the healthy machine.
//
// Determinism is the design constraint. Ranks run on goroutines, so no
// shared RNG stream may be consumed in scheduler order: every random
// decision is a pure function of the plan seed and the identity of the
// event it concerns (source rank, destination rank, per-sender message
// sequence number — or the offload invocation index). Two runs of the
// same program under the same plan therefore make byte-identical
// decisions regardless of interleaving, and parallel experiment runs
// stay byte-identical to sequential ones.
package simfault

import (
	"fmt"
	"math"

	"maia/internal/machine"
	"maia/internal/vclock"
)

// Default retry/backoff parameters, used when a FabricFault (or a
// failover probe against a dead device) leaves them zero.
const (
	// DefaultTimeout is the virtual-time delivery deadline after which
	// a lost message is presumed dropped and retransmitted.
	DefaultTimeout = 50 * vclock.Microsecond
	// DefaultBackoff is the base retransmit backoff; it doubles on each
	// further attempt (exponential backoff).
	DefaultBackoff = 20 * vclock.Microsecond
	// DefaultMaxRetries caps retransmissions per message. The transport
	// is reliable at the cap: the final attempt always delivers, so a
	// lossy fabric degrades a run but never wedges it.
	DefaultMaxRetries = 4
)

// Straggler slows every rank on one device by a constant factor — the
// classic degraded-node failure mode (a dusty heatsink, a neighbor VM,
// a misbinned part).
type Straggler struct {
	// Device is the device whose ranks straggle.
	Device machine.Device
	// Slowdown multiplies compute time; values <= 1 mean no slowdown.
	Slowdown float64
}

// Throttle is time-varying frequency derating — the Phi's thermal
// throttling as a square wave: within each Period starting at Start,
// compute runs Derate times slower for the first Hot span, then at full
// speed for the remainder.
type Throttle struct {
	// Device is the throttled device.
	Device machine.Device
	// Start is the virtual time the first hot window opens.
	Start vclock.Time
	// Period is the window repetition period (> 0 for a recurring wave;
	// 0 derates everything from Start onward).
	Period vclock.Time
	// Hot is the derated prefix of each period (clamped to Period).
	Hot vclock.Time
	// Derate multiplies compute time while hot; values <= 1 mean none.
	Derate float64
}

// FabricFault degrades one transport class: bandwidth loss, added
// latency, and seeded message drops that force timeout-and-retransmit.
type FabricFault struct {
	// Fabric selects transports by name prefix, matching the names the
	// transport layer reports in flight spans: "pcie:" (any PCIe/DAPL
	// path), "pcie:host-Phi0", "shm:phi", "ib:fdr", ... The empty
	// string matches every fabric.
	Fabric string
	// Derate multiplies message flight time (bandwidth loss plus
	// latency growth); values <= 1 mean no derating.
	Derate float64
	// Delay is a fixed extra latency added to every message flight.
	Delay vclock.Time
	// DropProb is the per-attempt probability a delivery is lost and
	// must be retried after a timeout. Clamped to [0, 1).
	DropProb float64
	// Timeout, Backoff, and MaxRetries tune the retry schedule; zero
	// values select the package defaults.
	Timeout    vclock.Time
	Backoff    vclock.Time
	MaxRetries int
}

// timeout returns the configured or default delivery deadline.
func (f FabricFault) timeout() vclock.Time {
	if f.Timeout > 0 {
		return f.Timeout
	}
	return DefaultTimeout
}

// backoff returns the configured or default base backoff.
func (f FabricFault) backoff() vclock.Time {
	if f.Backoff > 0 {
		return f.Backoff
	}
	return DefaultBackoff
}

// maxRetries returns the configured or default retransmission cap.
func (f FabricFault) maxRetries() int {
	if f.MaxRetries > 0 {
		return f.MaxRetries
	}
	return DefaultMaxRetries
}

// FlightTime applies the fault's bandwidth derate and fixed delay to a
// healthy flight time.
func (f FabricFault) FlightTime(flight vclock.Time) vclock.Time {
	if f.Derate > 1 {
		flight = vclock.Time(float64(flight) * f.Derate)
	}
	return flight + f.Delay
}

// RetryPenalty returns the virtual time lost before the successful
// attempt when a message needs `attempts` total tries: each failed try
// costs the delivery deadline plus an exponentially growing backoff.
func (f FabricFault) RetryPenalty(attempts int) vclock.Time {
	var p vclock.Time
	backoff := f.backoff()
	for i := 1; i < attempts; i++ {
		p += f.timeout() + backoff
		backoff *= 2
	}
	return p
}

// DetectionPenalty returns the virtual time a runtime spends
// discovering that the far end of the fabric is dead: the full retry
// schedule runs with every attempt timing out.
func (f FabricFault) DetectionPenalty() vclock.Time {
	return f.RetryPenalty(f.maxRetries() + 1)
}

// DetectionRetries returns how many retransmissions the detection
// schedule makes before giving up on the far end.
func (f FabricFault) DetectionRetries() int { return f.maxRetries() }

// Failure marks a whole device failed from a virtual time onward (a
// card dropping off the PCIe bus). Runtimes that can degrade gracefully
// (the offload engine) fall back to the host; At = 0 means the device
// was dead from the start.
type Failure struct {
	Device machine.Device
	At     vclock.Time
}

// Plan is one deterministic fault scenario. The zero value (and a nil
// *Plan) injects nothing: every method then reports the healthy
// machine, so plans can be threaded unconditionally through runtime
// construction.
type Plan struct {
	// Name identifies the plan (see Plans for the named catalog).
	Name string
	// Note is a one-line description for listings.
	Note string
	// Seed drives every random decision; two runs with equal seeds make
	// identical decisions.
	Seed uint64

	Stragglers []Straggler
	Throttles  []Throttle
	Fabrics    []FabricFault
	Failures   []Failure
}

// Enabled reports whether the plan injects anything at all.
func (p *Plan) Enabled() bool {
	return p != nil && (len(p.Stragglers) > 0 || len(p.Throttles) > 0 ||
		len(p.Fabrics) > 0 || len(p.Failures) > 0)
}

// String names the plan.
func (p *Plan) String() string {
	if p == nil {
		return "<none>"
	}
	if p.Name != "" {
		return p.Name
	}
	return fmt.Sprintf("plan(seed=%d)", p.Seed)
}

// Slowdown returns the steady compute slowdown factor (>= 1) of a
// device: the product of its straggler entries, throttling excluded.
func (p *Plan) Slowdown(dev machine.Device) float64 {
	s := 1.0
	if p == nil {
		return s
	}
	for _, st := range p.Stragglers {
		if st.Device == dev && st.Slowdown > 1 {
			s *= st.Slowdown
		}
	}
	return s
}

// throttle returns the first throttle entry covering dev.
func (p *Plan) throttle(dev machine.Device) (Throttle, bool) {
	if p == nil {
		return Throttle{}, false
	}
	for _, th := range p.Throttles {
		if th.Device == dev && th.Derate > 1 {
			return th, true
		}
	}
	return Throttle{}, false
}

// ComputeTime maps a nominal compute duration starting at virtual time
// `start` on device dev to its degraded duration: the straggler factor
// applies throughout, and throttle hot windows stretch the work that
// falls inside them. The healthy plan returns d unchanged.
func (p *Plan) ComputeTime(dev machine.Device, start, d vclock.Time) vclock.Time {
	if p == nil || d <= 0 {
		return d
	}
	slow := p.Slowdown(dev)
	th, throttled := p.throttle(dev)
	if !throttled {
		if slow > 1 {
			return vclock.Time(float64(d) * slow)
		}
		return d
	}
	return throttledElapsed(th, slow, start, d)
}

// throttledElapsed integrates the square-wave derate curve: work
// proceeds at rate 1/slow outside hot windows and 1/(slow*Derate)
// inside them. Returns total elapsed virtual time for `work` of nominal
// (healthy-machine) duration starting at `start`.
func throttledElapsed(th Throttle, slow float64, start, work vclock.Time) vclock.Time {
	if slow < 1 {
		slow = 1
	}
	hot := vclock.Min(th.Hot, th.Period)
	if th.Period <= 0 {
		// Degenerate wave: permanently hot from Start.
		hot = 0
	}
	now := start
	remaining := float64(work)
	var elapsed vclock.Time

	// Before the first window everything runs at the straggler rate.
	if now < th.Start {
		span := th.Start - now
		need := vclock.Time(remaining * slow)
		if need <= span {
			return elapsed + need
		}
		elapsed += span
		remaining -= float64(span) / slow
		now = th.Start
	}

	if th.Period <= 0 {
		// Permanently derated from Start on.
		return elapsed + vclock.Time(remaining*slow*th.Derate)
	}

	// Skip whole periods in closed form: each period absorbs
	// hot/(slow*derate) + (period-hot)/slow of nominal work.
	phase := vclock.Time(math.Mod(float64(now-th.Start), float64(th.Period)))
	perPeriod := float64(hot)/(slow*th.Derate) + float64(th.Period-hot)/slow
	if phase == 0 && perPeriod > 0 {
		if full := int64(remaining / perPeriod); full > 0 {
			elapsed += vclock.Time(full) * th.Period
			remaining -= float64(full) * perPeriod
			// now advances by whole periods; phase stays 0.
		}
	}

	// Walk segment boundaries for the remainder (at most a few
	// segments per period, and less than two periods remain after the
	// closed-form skip unless we started mid-period).
	for remaining > 1e-18 {
		inHot := phase < hot
		var span vclock.Time // time to the next boundary
		rate := slow
		if inHot {
			span = hot - phase
			rate = slow * th.Derate
		} else {
			span = th.Period - phase
		}
		need := vclock.Time(remaining * rate)
		if need <= span {
			return elapsed + need
		}
		elapsed += span
		remaining -= float64(span) / rate
		phase += span
		if phase >= th.Period {
			phase = 0
		}
	}
	return elapsed
}

// Fabric returns the first fault entry whose prefix matches the fabric
// name ("pcie:host-Phi0", "shm:phi", "ib:fdr", ...).
func (p *Plan) Fabric(name string) (FabricFault, bool) {
	if p == nil {
		return FabricFault{}, false
	}
	for _, f := range p.Fabrics {
		if len(f.Fabric) <= len(name) && name[:len(f.Fabric)] == f.Fabric {
			return f, true
		}
	}
	return FabricFault{}, false
}

// Failed reports whether dev is failed at virtual time t.
func (p *Plan) Failed(dev machine.Device, t vclock.Time) bool {
	if p == nil {
		return false
	}
	for _, f := range p.Failures {
		if f.Device == dev && t >= f.At {
			return true
		}
	}
	return false
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over the
// event identity, so per-message RNG streams are independent.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// eventSeed derives the RNG seed of one event from the plan seed and
// three identity coordinates.
func (p *Plan) eventSeed(a, b, c int) uint64 {
	return EventSeed(p.Seed, a, b, c)
}

// Attempts returns how many delivery tries a message needs under fault
// f: a pure function of (plan seed, src, dst, seq), so the answer never
// depends on goroutine interleaving. The result is in [1, maxRetries+1];
// the last permitted attempt always succeeds (reliable at the cap).
func (p *Plan) Attempts(f FabricFault, src, dst, seq int) int {
	if p == nil || f.DropProb <= 0 {
		return 1
	}
	drop := f.DropProb
	if drop >= 1 {
		drop = 0.999999
	}
	rng := vclock.NewRNG(p.eventSeed(src, dst, seq))
	attempts := 1
	for attempts <= f.maxRetries() && rng.Float64() < drop {
		attempts++
	}
	return attempts
}
