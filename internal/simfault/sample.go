package simfault

import (
	"math"
	"sort"
	"sync"

	"maia/internal/vclock"
)

// Fleet-scale sampling: deterministic draws of per-node conditions and
// of the virtual times of renewal processes (hard failures, repairs).
// Everything here is a pure function of (seed, identity coordinates),
// the same contract Plan.Attempts keeps for message drops — so a fleet
// simulation makes byte-identical decisions no matter how its pricing
// or experiment runs are parallelized.

// The stream tags reserved by this file. Callers deriving their own
// streams with EventSeed should stay clear of the 100..199 band in the
// second coordinate.
const (
	streamCondition = 101 // SamplePlan's condition draw
	streamPlanSeed  = 102 // SamplePlan's per-node plan re-seed
)

// conditionWeights is the fleet condition distribution SamplePlan draws
// from, in per-mille: most nodes are healthy, the rest carry one of the
// single-cause catalog plans (the combined "degraded" plan is a
// worst-day scenario, not a steady-state population member).
var conditionWeights = []struct {
	name   string
	weight int
}{
	{"", 600}, // healthy
	{"phi-straggler", 120},
	{"lossy-pcie", 100},
	{"thermal-throttle", 100},
	{"phi0-down", 80},
}

// SampleConditions returns the degraded condition names SamplePlan can
// draw, sorted. "degraded" (the everything-at-once plan) is excluded by
// design.
func SampleConditions() []string {
	var names []string
	for _, c := range conditionWeights {
		if c.name != "" {
			names = append(names, c.name)
		}
	}
	sort.Strings(names)
	return names
}

// EventSeed derives an independent RNG seed from a base seed and three
// event-identity coordinates — the exported form of the per-message
// stream derivation Plan.Attempts uses. Two distinct coordinate triples
// yield independent streams; equal triples yield equal streams.
func EventSeed(seed uint64, a, b, c int) uint64 {
	s := seed
	s = mix64(s ^ uint64(a+1))
	s = mix64(s ^ uint64(b+1)<<20)
	s = mix64(s ^ uint64(c+1)<<40)
	return s
}

// sampleCatalog memoizes the plan catalog SamplePlan draws from: the
// catalog is immutable configuration, SamplePlan copies a plan before
// reseeding it, and nothing writes through the shared fault slices — so
// sampling a 512-node fleet stops rebuilding the five-plan catalog (and
// re-sorting it) once per node.
var sampleCatalog = sync.OnceValue(func() map[string]*Plan {
	byName := make(map[string]*Plan)
	for _, p := range Plans() {
		byName[p.Name] = p
	}
	return byName
})

// SampleCondition returns just the condition name SamplePlan would draw
// for (seed, node) — "" for a healthy node — without building the plan.
// Callers that key behavior on the name alone (the fleet's price-table
// lookups) avoid the per-node plan copy.
func SampleCondition(seed uint64, node int) string {
	rng := vclock.NewRNG(EventSeed(seed, node, streamCondition, 0))
	pick := rng.Intn(1000)
	for _, c := range conditionWeights {
		if pick < c.weight {
			return c.name
		}
		pick -= c.weight
	}
	return ""
}

// SamplePlan draws the condition node `node` carries in the fleet rooted
// at seed: nil for a healthy node, otherwise a catalog plan re-seeded
// per node (so two straggling nodes still make independent drop and
// retry decisions). The draw is a pure function of (seed, node).
func SamplePlan(seed uint64, node int) *Plan {
	name := SampleCondition(seed, node)
	if name == "" {
		return nil
	}
	plan := sampleCatalog()[name]
	if plan == nil {
		return nil // unreachable: the weight table names catalog plans
	}
	reseeded := *plan
	reseeded.Seed = EventSeed(seed, node, streamPlanSeed, 0)
	return &reseeded
}

// Uniform returns a deterministic draw in [0, 1) for the event identity
// (a, b, c) under seed.
func Uniform(seed uint64, a, b, c int) float64 {
	return vclock.NewRNG(EventSeed(seed, a, b, c)).Float64()
}

// Exp returns a deterministic exponential draw with the given mean for
// the event identity (a, b, c) under seed — the building block of the
// fleet's MTBF/MTTR renewal processes. A mean <= 0 returns 0.
func Exp(mean vclock.Time, seed uint64, a, b, c int) vclock.Time {
	if mean <= 0 {
		return 0
	}
	u := Uniform(seed, a, b, c)
	return vclock.Time(-float64(mean) * math.Log1p(-u))
}
