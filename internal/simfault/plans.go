package simfault

import (
	"fmt"
	"sort"
	"strings"

	"maia/internal/machine"
	"maia/internal/vclock"
)

// The named fault-plan catalog: the degraded-machine scenarios the
// ext-fault-* experiments study, selectable on the CLI with
// `maiabench -faults <name>`. Each construction is a pure literal, so
// two lookups of the same name always yield identical plans.

// PhiStraggler returns the straggling-coprocessor plan: both Phi cards
// deliver compute 1.8x slower than the calibrated model (thermal
// headroom loss plus zone-shape sensitivity), while the host and every
// fabric stay healthy. This is the Figure 23 robustness scenario: the
// static zone balance overloads the Phi ranks, and only a load-balance
// update that adapts to measured speeds recovers the makespan.
func PhiStraggler() *Plan {
	return &Plan{
		Name: "phi-straggler",
		Note: "both Phi cards compute 1.8x slower; fabrics healthy",
		Seed: 1,
		Stragglers: []Straggler{
			{Device: machine.Phi0, Slowdown: 1.8},
			{Device: machine.Phi1, Slowdown: 1.8},
		},
	}
}

// LossyPCIe returns the degraded-fabric plan: every PCIe/DAPL path
// loses bandwidth (1.6x longer flights), gains 5 us of latency, and
// drops 3% of deliveries, forcing timeout-and-retransmit with
// exponential backoff. Shared-memory and InfiniBand fabrics stay
// healthy — the erratic-DAPL failure mode of the early MPSS stacks.
func LossyPCIe() *Plan {
	return &Plan{
		Name: "lossy-pcie",
		Note: "PCIe/DAPL paths: 1.6x slower flights, +5us, 3% drops with retry/backoff",
		Seed: 2,
		Fabrics: []FabricFault{{
			Fabric:   "pcie:",
			Derate:   1.6,
			Delay:    5 * vclock.Microsecond,
			DropProb: 0.03,
		}},
	}
}

// ThermalThrottle returns the time-varying derating plan: each Phi
// alternates between a 2 ms hot window at 2.2x slowdown and 3 ms at
// full speed (a 5 ms thermal cycle), starting 1 ms into the run. The
// host is unaffected.
func ThermalThrottle() *Plan {
	return &Plan{
		Name: "thermal-throttle",
		Note: "Phi cards: 2ms hot windows at 2.2x slowdown every 5ms",
		Seed: 3,
		Throttles: []Throttle{
			{Device: machine.Phi0, Start: 1 * vclock.Millisecond, Period: 5 * vclock.Millisecond, Hot: 2 * vclock.Millisecond, Derate: 2.2},
			{Device: machine.Phi1, Start: 1 * vclock.Millisecond, Period: 5 * vclock.Millisecond, Hot: 2 * vclock.Millisecond, Derate: 2.2},
		},
	}
}

// Phi0Down returns the whole-coprocessor-failure plan: Phi0 is dead
// from the start of the run. Offload programs degrade gracefully to
// the host cost model; the other devices and fabrics stay healthy.
func Phi0Down() *Plan {
	return &Plan{
		Name:     "phi0-down",
		Note:     "Phi0 failed from t=0; offload falls back to the host",
		Seed:     4,
		Failures: []Failure{{Device: machine.Phi0, At: 0}},
	}
}

// Degraded returns the everything-at-once plan: straggling, throttled
// coprocessors over a lossy PCIe fabric — the worst realistic day.
func Degraded() *Plan {
	return &Plan{
		Name: "degraded",
		Note: "phi-straggler + thermal-throttle + lossy-pcie combined",
		Seed: 5,
		Stragglers: []Straggler{
			{Device: machine.Phi0, Slowdown: 1.8},
			{Device: machine.Phi1, Slowdown: 1.8},
		},
		Throttles: []Throttle{
			{Device: machine.Phi0, Start: 1 * vclock.Millisecond, Period: 5 * vclock.Millisecond, Hot: 2 * vclock.Millisecond, Derate: 2.2},
			{Device: machine.Phi1, Start: 1 * vclock.Millisecond, Period: 5 * vclock.Millisecond, Hot: 2 * vclock.Millisecond, Derate: 2.2},
		},
		Fabrics: []FabricFault{{
			Fabric:   "pcie:",
			Derate:   1.6,
			Delay:    5 * vclock.Microsecond,
			DropProb: 0.03,
		}},
	}
}

// Plans returns the named catalog, sorted by name.
func Plans() []*Plan {
	all := []*Plan{PhiStraggler(), LossyPCIe(), ThermalThrottle(), Phi0Down(), Degraded()}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// Names returns the catalog's plan names, sorted.
func Names() []string {
	plans := Plans()
	names := make([]string, len(plans))
	for i, p := range plans {
		names[i] = p.Name
	}
	return names
}

// ByName returns the named plan, or an error listing the valid names.
func ByName(name string) (*Plan, error) {
	for _, p := range Plans() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("simfault: unknown fault plan %q (have %s)",
		name, strings.Join(Names(), ", "))
}
