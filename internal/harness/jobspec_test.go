package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"

	"maia/internal/core"
	"maia/internal/simfault"
	"maia/internal/simfleet"
)

// The canonical encoding is pinned byte-for-byte: any drift here would
// silently re-key every cached result in a maiad deployment.
func TestJobSpecCanonicalBytes(t *testing.T) {
	cases := []struct {
		spec JobSpec
		want string
	}{
		{
			JobSpec{Experiment: "fig5"},
			`{"experiment":"fig5","schema_version":1}`,
		},
		{
			JobSpec{Experiment: "fig5", Quick: true},
			`{"experiment":"fig5","quick":true,"schema_version":1}`,
		},
		{
			JobSpec{Experiment: "ext-rack-npb", Nodes: 4, FaultPlan: "degraded", Seed: 99,
				Model: map[string]float64{ModelOSCorePenalty: 1.5, ModelCacheCapture: 0}},
			`{"experiment":"ext-rack-npb","fault_plan":"degraded",` +
				`"model":{"cache_capture":0,"os_core_penalty":1.5},` +
				`"nodes":4,"schema_version":1,"seed":99}`,
		},
		{
			// Redundant spellings normalize away: the catalog seed and
			// default-valued model overrides do not change the job.
			JobSpec{Experiment: "fig5", FaultPlan: "degraded", Seed: 5,
				Model: map[string]float64{ModelCacheCapture: 1}},
			`{"experiment":"fig5","fault_plan":"degraded","schema_version":1}`,
		},
		{
			// A fleet block promotes the spec to schema version 2, with
			// the sub-keys in sorted order.
			JobSpec{Experiment: "ext-fleet-recovery", Quick: true, Seed: 7,
				Fleet: &FleetSpec{Nodes: 64, Scheduler: "round-robin",
					MTBF: "steady", DurationS: 600.5, HealthS: 30}},
			`{"experiment":"ext-fleet-recovery",` +
				`"fleet":{"duration_s":600.5,"health_s":30,"mtbf":"steady","nodes":64,"scheduler":"round-robin"},` +
				`"quick":true,"schema_version":2,"seed":7}`,
		},
		{
			// An all-default fleet block (the default scheduler, the
			// default health period, the default seed) collapses away
			// entirely, landing back on the v1 encoding.
			JobSpec{Experiment: "ext-fleet-recovery", Seed: 1,
				Fleet: &FleetSpec{Scheduler: "least-loaded", HealthS: 15}},
			`{"experiment":"ext-fleet-recovery","schema_version":1}`,
		},
	}
	for _, c := range cases {
		got := c.spec.MarshalCanonical()
		if string(got) != c.want {
			t.Errorf("MarshalCanonical(%+v)\n got %s\nwant %s", c.spec, got, c.want)
		}
		// Canonical bytes are valid JSON that decodes back to a spec
		// with the same canonical bytes (a fixpoint).
		var back JobSpec
		if err := json.Unmarshal(got, &back); err != nil {
			t.Fatalf("canonical bytes are not JSON: %v", err)
		}
		if again := back.MarshalCanonical(); !bytes.Equal(again, got) {
			t.Errorf("canonical encoding is not a fixpoint: %s vs %s", again, got)
		}
	}
}

// Hashing is stable across spellings of the same job and distinct for
// different jobs.
func TestJobSpecHash(t *testing.T) {
	a := JobSpec{Experiment: "fig5", FaultPlan: "degraded"}
	b := JobSpec{Experiment: "fig5", FaultPlan: "degraded", Seed: 5, SchemaVersion: 1}
	if a.Hash() != b.Hash() {
		t.Errorf("equivalent specs hash differently: %s vs %s", a.Hash(), b.Hash())
	}
	c := JobSpec{Experiment: "fig5", FaultPlan: "degraded", Seed: 6}
	if a.Hash() == c.Hash() {
		t.Errorf("re-seeded plan collides with the catalog seed")
	}
	d := JobSpec{Experiment: "fig6"}
	if a.Hash() == d.Hash() {
		t.Errorf("different experiments collide")
	}
	if len(a.Hash()) != 64 {
		t.Errorf("hash is not hex SHA-256: %q", a.Hash())
	}
}

// Validate classifies every rejection with a typed error.
func TestJobSpecValidate(t *testing.T) {
	reg := Paper()
	cases := []struct {
		name string
		spec JobSpec
		want error
	}{
		{"ok", JobSpec{Experiment: "fig5"}, nil},
		{"ok full", JobSpec{SchemaVersion: 1, Experiment: "ext-rack-npb", Quick: true,
			Nodes: 16, FaultPlan: "lossy-pcie", Seed: 7,
			Model: map[string]float64{ModelStreamBankLimit: 0}}, nil},
		{"unknown experiment", JobSpec{Experiment: "fig99"}, ErrUnknownExperiment},
		{"empty experiment", JobSpec{}, ErrUnknownExperiment},
		{"v2 schema ok", JobSpec{SchemaVersion: 2, Experiment: "fig5"}, nil},
		{"bad schema", JobSpec{SchemaVersion: 3, Experiment: "fig5"}, ErrBadSchemaVersion},
		{"fleet ok", JobSpec{Experiment: "ext-fleet-mtbf", Seed: 9,
			Fleet: &FleetSpec{Nodes: 32, Scheduler: "round-robin", MTBF: "steady",
				DurationS: 600, HealthS: 30}}, nil},
		{"fleet on non-fleet experiment", JobSpec{Experiment: "fig5",
			Fleet: &FleetSpec{Nodes: 8}}, ErrBadFleetExperiment},
		{"fleet with fault plan", JobSpec{Experiment: "ext-fleet-mtbf", FaultPlan: "degraded",
			Fleet: &FleetSpec{Nodes: 8}}, ErrBadFleetExperiment},
		{"fleet too large", JobSpec{Experiment: "ext-fleet-mtbf",
			Fleet: &FleetSpec{Nodes: 513}}, ErrBadFleetNodes},
		{"fleet negative nodes", JobSpec{Experiment: "ext-fleet-mtbf",
			Fleet: &FleetSpec{Nodes: -1}}, ErrBadFleetNodes},
		{"fleet bad duration", JobSpec{Experiment: "ext-fleet-mtbf",
			Fleet: &FleetSpec{DurationS: 86401}}, ErrBadFleetDuration},
		{"fleet bad scheduler", JobSpec{Experiment: "ext-fleet-mtbf",
			Fleet: &FleetSpec{Scheduler: "clairvoyant"}}, ErrBadFleetScheduler},
		{"fleet bad mtbf", JobSpec{Experiment: "ext-fleet-mtbf",
			Fleet: &FleetSpec{MTBF: "immortal"}}, ErrBadFleetMTBF},
		{"fleet bad health", JobSpec{Experiment: "ext-fleet-mtbf",
			Fleet: &FleetSpec{HealthS: -5}}, ErrBadFleetHealth},
		{"non-pow2 nodes", JobSpec{Experiment: "fig5", Nodes: 3}, ErrBadNodes},
		{"nodes too large", JobSpec{Experiment: "fig5", Nodes: 256}, ErrBadNodes},
		{"one node", JobSpec{Experiment: "fig5", Nodes: 1}, ErrBadNodes},
		{"unknown plan", JobSpec{Experiment: "fig5", FaultPlan: "nope"}, ErrUnknownFaultPlan},
		{"seed without plan", JobSpec{Experiment: "fig5", Seed: 3}, ErrBadSeed},
		{"unknown model key", JobSpec{Experiment: "fig5",
			Model: map[string]float64{"warp_factor": 9}}, ErrBadModelOverride},
		{"non-boolean bool knob", JobSpec{Experiment: "fig5",
			Model: map[string]float64{ModelCacheCapture: 0.5}}, ErrBadModelOverride},
		{"non-positive penalty", JobSpec{Experiment: "fig5",
			Model: map[string]float64{ModelOSCorePenalty: 0}}, ErrBadModelOverride},
	}
	for _, c := range cases {
		err := c.spec.Validate(reg)
		if c.want == nil {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want errors.Is(%v)", c.name, err, c.want)
		}
	}
}

// Env applies the spec: quick, nodes, re-seeded fault plan, and model
// overrides all land on the built environment.
func TestJobSpecEnv(t *testing.T) {
	spec := JobSpec{Experiment: "fig5", Quick: true, Nodes: 8,
		FaultPlan: "degraded", Seed: 42,
		Model: map[string]float64{ModelOSCorePenalty: 2.0, ModelCacheCapture: 0}}
	env, err := spec.Env()
	if err != nil {
		t.Fatal(err)
	}
	if !env.Quick || env.RackNodes != 8 {
		t.Errorf("quick/nodes not applied: %+v", env)
	}
	if env.Faults == nil || env.Faults.Name != "degraded" || env.Faults.Seed != 42 {
		t.Errorf("fault plan not re-seeded: %v", env.Faults)
	}
	if catalog, _ := simfault.ByName("degraded"); catalog.Seed == 42 {
		t.Fatalf("test needs a seed that differs from the catalog")
	}
	if env.Model.OSCorePenalty != 2.0 || env.Model.CacheCapture {
		t.Errorf("model overrides not applied: %+v", env.Model)
	}
	if env.Model != func() core.Model {
		m := core.DefaultModel()
		m.OSCorePenalty = 2.0
		m.CacheCapture = false
		return m
	}() {
		t.Errorf("unrelated model knobs drifted: %+v", env.Model)
	}
	if _, err := (JobSpec{Experiment: "fig5", Seed: 1}).Env(); !errors.Is(err, ErrBadSeed) {
		t.Errorf("Env accepted a seed without a plan: %v", err)
	}
}

// EnvToSpec refuses environments that a JobSpec cannot faithfully
// describe: ad-hoc fault plans would alias a catalog cache key.
func TestEnvToSpecRejectsUnrepresentable(t *testing.T) {
	plan, err := simfault.ByName("phi-straggler")
	if err != nil {
		t.Fatal(err)
	}
	custom := *plan
	custom.Stragglers = append([]simfault.Straggler(nil), plan.Stragglers...)
	custom.Stragglers[0].Slowdown = 99
	if _, err := EnvToSpec("fig5", DefaultEnv(WithFaults(&custom))); !errors.Is(err, ErrUnknownFaultPlan) {
		t.Errorf("modified plan accepted: %v", err)
	}
	anon := &simfault.Plan{Stragglers: plan.Stragglers}
	if _, err := EnvToSpec("fig5", DefaultEnv(WithFaults(anon))); !errors.Is(err, ErrUnknownFaultPlan) {
		t.Errorf("anonymous plan accepted: %v", err)
	}
}

// randomFleetSpec draws a valid v2 fleet spec over the scheduler and
// MTBF catalogs, the seed space, and the fleet-size/horizon bounds.
func randomFleetSpec(rng *rand.Rand) JobSpec {
	exps := []string{"ext-fleet-mtbf", "ext-fleet-recovery"}
	fleet := &FleetSpec{Nodes: 1 << rng.Intn(7)}
	if rng.Intn(2) == 0 {
		fleet.Scheduler = simfleet.PolicyNames()[rng.Intn(len(simfleet.PolicyNames()))]
	}
	if rng.Intn(2) == 0 {
		fleet.MTBF = simfleet.ProfileNames()[rng.Intn(len(simfleet.ProfileNames()))]
	}
	if rng.Intn(2) == 0 {
		fleet.DurationS = float64(60 + rng.Intn(240))
	}
	if rng.Intn(2) == 0 {
		fleet.HealthS = float64(10 + rng.Intn(50))
	}
	return JobSpec{
		Experiment: exps[rng.Intn(len(exps))],
		Quick:      true,
		Seed:       uint64(rng.Intn(4)), // 0 and 1 both mean the default
		Fleet:      fleet,
	}
}

// randomSpec draws a valid spec over the cheap experiments, the fault
// catalog, the fleet domain, and the model-override domain.
func randomSpec(rng *rand.Rand) JobSpec {
	if rng.Intn(3) == 0 {
		return randomFleetSpec(rng)
	}
	exps := []string{"fig7", "fig13", "fig15", "fig17", "table1"}
	spec := JobSpec{Experiment: exps[rng.Intn(len(exps))], Quick: true}
	if rng.Intn(2) == 0 {
		names := simfault.Names()
		spec.FaultPlan = names[rng.Intn(len(names))]
		if rng.Intn(2) == 0 {
			spec.Seed = uint64(rng.Intn(5)) // 0 = keep the catalog seed
		}
	}
	switch rng.Intn(4) {
	case 0:
		spec.Model = map[string]float64{ModelOSCorePenalty: 1 + rng.Float64()}
	case 1:
		spec.Model = map[string]float64{ModelCacheCapture: float64(rng.Intn(2))}
	case 2:
		spec.Model = map[string]float64{
			ModelThreadLatencyHiding: float64(rng.Intn(2)),
			ModelStreamBankPenalty:   0.5 + rng.Float64(),
		}
	}
	if rng.Intn(4) == 0 {
		spec.Nodes = 2 << rng.Intn(6)
	}
	return spec
}

// The round-trip property: spec -> Env -> EnvToSpec -> Env preserves
// the experiment's rendered output byte-for-byte, and the recovered
// spec lands on the same content address.
func TestJobSpecEnvRoundTripProperty(t *testing.T) {
	reg := Paper()
	rng := rand.New(rand.NewSource(7))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for i := 0; i < trials; i++ {
		spec := randomSpec(rng)
		if err := spec.Validate(reg); err != nil {
			t.Fatalf("trial %d: generated invalid spec %+v: %v", i, spec, err)
		}
		env, err := spec.Env()
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		back, err := EnvToSpec(spec.Experiment, env)
		if err != nil {
			t.Fatalf("trial %d: EnvToSpec: %v", i, err)
		}
		if got, want := back.Hash(), spec.Hash(); got != want {
			t.Fatalf("trial %d: round-tripped spec re-keys: %+v -> %+v", i, spec, back)
		}
		env2, err := back.Env()
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		exp, ok := reg.ByID(spec.Experiment)
		if !ok {
			t.Fatalf("trial %d: experiment vanished", i)
		}
		out1, err := RenderBytes(exp, env)
		if err != nil {
			t.Fatalf("trial %d: render: %v", i, err)
		}
		out2, err := RenderBytes(exp, env2)
		if err != nil {
			t.Fatalf("trial %d: render round-trip: %v", i, err)
		}
		if !bytes.Equal(out1, out2) {
			t.Errorf("trial %d: round-tripped env changes output for %+v", i, spec)
		}
	}
}
