package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"

	"maia/internal/core"
	"maia/internal/simfault"
)

// The canonical encoding is pinned byte-for-byte: any drift here would
// silently re-key every cached result in a maiad deployment.
func TestJobSpecCanonicalBytes(t *testing.T) {
	cases := []struct {
		spec JobSpec
		want string
	}{
		{
			JobSpec{Experiment: "fig5"},
			`{"experiment":"fig5","schema_version":1}`,
		},
		{
			JobSpec{Experiment: "fig5", Quick: true},
			`{"experiment":"fig5","quick":true,"schema_version":1}`,
		},
		{
			JobSpec{Experiment: "ext-rack-npb", Nodes: 4, FaultPlan: "degraded", Seed: 99,
				Model: map[string]float64{ModelOSCorePenalty: 1.5, ModelCacheCapture: 0}},
			`{"experiment":"ext-rack-npb","fault_plan":"degraded",` +
				`"model":{"cache_capture":0,"os_core_penalty":1.5},` +
				`"nodes":4,"schema_version":1,"seed":99}`,
		},
		{
			// Redundant spellings normalize away: the catalog seed and
			// default-valued model overrides do not change the job.
			JobSpec{Experiment: "fig5", FaultPlan: "degraded", Seed: 5,
				Model: map[string]float64{ModelCacheCapture: 1}},
			`{"experiment":"fig5","fault_plan":"degraded","schema_version":1}`,
		},
	}
	for _, c := range cases {
		got := c.spec.MarshalCanonical()
		if string(got) != c.want {
			t.Errorf("MarshalCanonical(%+v)\n got %s\nwant %s", c.spec, got, c.want)
		}
		// Canonical bytes are valid JSON that decodes back to a spec
		// with the same canonical bytes (a fixpoint).
		var back JobSpec
		if err := json.Unmarshal(got, &back); err != nil {
			t.Fatalf("canonical bytes are not JSON: %v", err)
		}
		if again := back.MarshalCanonical(); !bytes.Equal(again, got) {
			t.Errorf("canonical encoding is not a fixpoint: %s vs %s", again, got)
		}
	}
}

// Hashing is stable across spellings of the same job and distinct for
// different jobs.
func TestJobSpecHash(t *testing.T) {
	a := JobSpec{Experiment: "fig5", FaultPlan: "degraded"}
	b := JobSpec{Experiment: "fig5", FaultPlan: "degraded", Seed: 5, SchemaVersion: 1}
	if a.Hash() != b.Hash() {
		t.Errorf("equivalent specs hash differently: %s vs %s", a.Hash(), b.Hash())
	}
	c := JobSpec{Experiment: "fig5", FaultPlan: "degraded", Seed: 6}
	if a.Hash() == c.Hash() {
		t.Errorf("re-seeded plan collides with the catalog seed")
	}
	d := JobSpec{Experiment: "fig6"}
	if a.Hash() == d.Hash() {
		t.Errorf("different experiments collide")
	}
	if len(a.Hash()) != 64 {
		t.Errorf("hash is not hex SHA-256: %q", a.Hash())
	}
}

// Validate classifies every rejection with a typed error.
func TestJobSpecValidate(t *testing.T) {
	reg := Paper()
	cases := []struct {
		name string
		spec JobSpec
		want error
	}{
		{"ok", JobSpec{Experiment: "fig5"}, nil},
		{"ok full", JobSpec{SchemaVersion: 1, Experiment: "ext-rack-npb", Quick: true,
			Nodes: 16, FaultPlan: "lossy-pcie", Seed: 7,
			Model: map[string]float64{ModelStreamBankLimit: 0}}, nil},
		{"unknown experiment", JobSpec{Experiment: "fig99"}, ErrUnknownExperiment},
		{"empty experiment", JobSpec{}, ErrUnknownExperiment},
		{"bad schema", JobSpec{SchemaVersion: 2, Experiment: "fig5"}, ErrBadSchemaVersion},
		{"non-pow2 nodes", JobSpec{Experiment: "fig5", Nodes: 3}, ErrBadNodes},
		{"nodes too large", JobSpec{Experiment: "fig5", Nodes: 256}, ErrBadNodes},
		{"one node", JobSpec{Experiment: "fig5", Nodes: 1}, ErrBadNodes},
		{"unknown plan", JobSpec{Experiment: "fig5", FaultPlan: "nope"}, ErrUnknownFaultPlan},
		{"seed without plan", JobSpec{Experiment: "fig5", Seed: 3}, ErrBadSeed},
		{"unknown model key", JobSpec{Experiment: "fig5",
			Model: map[string]float64{"warp_factor": 9}}, ErrBadModelOverride},
		{"non-boolean bool knob", JobSpec{Experiment: "fig5",
			Model: map[string]float64{ModelCacheCapture: 0.5}}, ErrBadModelOverride},
		{"non-positive penalty", JobSpec{Experiment: "fig5",
			Model: map[string]float64{ModelOSCorePenalty: 0}}, ErrBadModelOverride},
	}
	for _, c := range cases {
		err := c.spec.Validate(reg)
		if c.want == nil {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want errors.Is(%v)", c.name, err, c.want)
		}
	}
}

// Env applies the spec: quick, nodes, re-seeded fault plan, and model
// overrides all land on the built environment.
func TestJobSpecEnv(t *testing.T) {
	spec := JobSpec{Experiment: "fig5", Quick: true, Nodes: 8,
		FaultPlan: "degraded", Seed: 42,
		Model: map[string]float64{ModelOSCorePenalty: 2.0, ModelCacheCapture: 0}}
	env, err := spec.Env()
	if err != nil {
		t.Fatal(err)
	}
	if !env.Quick || env.RackNodes != 8 {
		t.Errorf("quick/nodes not applied: %+v", env)
	}
	if env.Faults == nil || env.Faults.Name != "degraded" || env.Faults.Seed != 42 {
		t.Errorf("fault plan not re-seeded: %v", env.Faults)
	}
	if catalog, _ := simfault.ByName("degraded"); catalog.Seed == 42 {
		t.Fatalf("test needs a seed that differs from the catalog")
	}
	if env.Model.OSCorePenalty != 2.0 || env.Model.CacheCapture {
		t.Errorf("model overrides not applied: %+v", env.Model)
	}
	if env.Model != func() core.Model {
		m := core.DefaultModel()
		m.OSCorePenalty = 2.0
		m.CacheCapture = false
		return m
	}() {
		t.Errorf("unrelated model knobs drifted: %+v", env.Model)
	}
	if _, err := (JobSpec{Experiment: "fig5", Seed: 1}).Env(); !errors.Is(err, ErrBadSeed) {
		t.Errorf("Env accepted a seed without a plan: %v", err)
	}
}

// EnvToSpec refuses environments that a JobSpec cannot faithfully
// describe: ad-hoc fault plans would alias a catalog cache key.
func TestEnvToSpecRejectsUnrepresentable(t *testing.T) {
	plan, err := simfault.ByName("phi-straggler")
	if err != nil {
		t.Fatal(err)
	}
	custom := *plan
	custom.Stragglers = append([]simfault.Straggler(nil), plan.Stragglers...)
	custom.Stragglers[0].Slowdown = 99
	if _, err := EnvToSpec("fig5", DefaultEnv(WithFaults(&custom))); !errors.Is(err, ErrUnknownFaultPlan) {
		t.Errorf("modified plan accepted: %v", err)
	}
	anon := &simfault.Plan{Stragglers: plan.Stragglers}
	if _, err := EnvToSpec("fig5", DefaultEnv(WithFaults(anon))); !errors.Is(err, ErrUnknownFaultPlan) {
		t.Errorf("anonymous plan accepted: %v", err)
	}
}

// randomSpec draws a valid spec over the cheap experiments, the fault
// catalog, and the model-override domain.
func randomSpec(rng *rand.Rand) JobSpec {
	exps := []string{"fig7", "fig13", "fig15", "fig17", "table1"}
	spec := JobSpec{Experiment: exps[rng.Intn(len(exps))], Quick: true}
	if rng.Intn(2) == 0 {
		names := simfault.Names()
		spec.FaultPlan = names[rng.Intn(len(names))]
		if rng.Intn(2) == 0 {
			spec.Seed = uint64(rng.Intn(5)) // 0 = keep the catalog seed
		}
	}
	switch rng.Intn(4) {
	case 0:
		spec.Model = map[string]float64{ModelOSCorePenalty: 1 + rng.Float64()}
	case 1:
		spec.Model = map[string]float64{ModelCacheCapture: float64(rng.Intn(2))}
	case 2:
		spec.Model = map[string]float64{
			ModelThreadLatencyHiding: float64(rng.Intn(2)),
			ModelStreamBankPenalty:   0.5 + rng.Float64(),
		}
	}
	if rng.Intn(4) == 0 {
		spec.Nodes = 2 << rng.Intn(6)
	}
	return spec
}

// The round-trip property: spec -> Env -> EnvToSpec -> Env preserves
// the experiment's rendered output byte-for-byte, and the recovered
// spec lands on the same content address.
func TestJobSpecEnvRoundTripProperty(t *testing.T) {
	reg := Paper()
	rng := rand.New(rand.NewSource(7))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for i := 0; i < trials; i++ {
		spec := randomSpec(rng)
		if err := spec.Validate(reg); err != nil {
			t.Fatalf("trial %d: generated invalid spec %+v: %v", i, spec, err)
		}
		env, err := spec.Env()
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		back, err := EnvToSpec(spec.Experiment, env)
		if err != nil {
			t.Fatalf("trial %d: EnvToSpec: %v", i, err)
		}
		if got, want := back.Hash(), spec.Hash(); got != want {
			t.Fatalf("trial %d: round-tripped spec re-keys: %+v -> %+v", i, spec, back)
		}
		env2, err := back.Env()
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		exp, ok := reg.ByID(spec.Experiment)
		if !ok {
			t.Fatalf("trial %d: experiment vanished", i)
		}
		out1, err := RenderBytes(exp, env)
		if err != nil {
			t.Fatalf("trial %d: render: %v", i, err)
		}
		out2, err := RenderBytes(exp, env2)
		if err != nil {
			t.Fatalf("trial %d: render round-trip: %v", i, err)
		}
		if !bytes.Equal(out1, out2) {
			t.Errorf("trial %d: round-tripped env changes output for %+v", i, spec)
		}
	}
}
