package harness

import (
	"fmt"
	"io"

	"maia/internal/apps/overflow"
	"maia/internal/machine"
	"maia/internal/npb"
	"maia/internal/offload"
	"maia/internal/pcie"
	"maia/internal/simfault"
	"maia/internal/simmpi"
	"maia/internal/simtrace"
	"maia/internal/textplot"
	"maia/internal/vclock"
)

// Fault-injection experiments: the ext-fault-* family re-prices paper
// workloads on deterministically degraded machines (package simfault).
// Each experiment embeds its own catalog plan rather than reading
// env.Faults, so its output is a pure function of the model — stable
// under golden snapshots no matter what -faults selects for the rest of
// the suite. Retry and fallback counts come from a per-experiment
// tracer, keeping parallel suite runs byte-identical to sequential.

// faultExperiments lists the ext-fault-* degraded-machine studies.
func faultExperiments() []Experiment {
	return []Experiment{{
		ID:      "ext-fault-fabric",
		Title:   "EXTENSION: mixed host+Phi MPI over a lossy PCIe fabric",
		Paper:   "not measured; LRZ/Fang et al. report erratic PCIe/DAPL — timeouts, retries, and backoff price that damage here",
		Section: "extension",
		Kind:    KindExtension,
		Run:     runExtFaultFabric,
	}, {
		ID:      "ext-fault-straggler",
		Title:   "EXTENSION: symmetric OVERFLOW with straggling Phis, rebalanced",
		Paper:   "Figure 23's robustness story replayed: static balance overloads slow Phis; rebalancing on measured speeds recovers",
		Section: "extension",
		Kind:    KindExtension,
		Run:     runExtFaultStraggler,
	}, {
		ID:      "ext-fault-failover",
		Title:   "EXTENSION: offload MG survives a dead Phi via host fallback",
		Paper:   "graceful degradation beyond the paper: the run completes on the host cost model instead of erroring",
		Section: "extension",
		Kind:    KindExtension,
		Run:     runExtFaultFailover,
	}}
}

// counterTotal sums a tracer's fault counters matching name.
func counterTotal(tr *simtrace.Tracer, name string) int64 {
	var total int64
	for _, c := range tr.Counters() {
		if c.Key.Cat == simtrace.CatFault && c.Key.Name == name {
			total += c.Value
		}
	}
	return total
}

// runExtFaultFabric runs MPI operations over a mixed host+Phi
// communicator — half the ranks on each side of the PCIe bus — then
// degrades the crossings with the lossy-pcie plan: derated flights,
// added latency, and seeded drops the transport re-delivers under
// timeout/backoff. The ring shows the bandwidth loss; the dense
// collectives cross PCIe often enough that the 3% drop rate surfaces
// as counted retransmissions.
func runExtFaultFabric(w io.Writer, env Env) error {
	plan := simfault.LossyPCIe()
	iters := 2
	if env.Quick {
		iters = 1
	}
	const msg = 64 << 10
	mixed := func() simmpi.Config {
		return simmpi.Config{Ranks: append(simmpi.HostPlacement(4, 1), simmpi.PhiPlacement(machine.Phi0, 4, 1)...)}
	}
	// Each run measures healthy vs faulted virtual time for one
	// operation and counts retransmissions from a local tracer.
	run := func(op string, f func(cfg simmpi.Config, opts ...simmpi.Option) (vclock.Time, error)) (healthy, lossy vclock.Time, retries int64, err error) {
		healthy, err = f(mixed(), simmpi.WithTracer(env.Tracer, "faultmpi:clean:"+op))
		if err != nil {
			return
		}
		tr := simtrace.New() // local tracer: the retry column reads its counters
		lossy, err = f(mixed(), simmpi.WithTracer(tr, "faultmpi:lossy:"+op), simmpi.WithFaultPlan(plan))
		retries = counterTotal(tr, "mpi_retries")
		return
	}
	ops := []struct {
		name string
		f    func(cfg simmpi.Config, opts ...simmpi.Option) (vclock.Time, error)
	}{
		{"ring send/recv", func(cfg simmpi.Config, opts ...simmpi.Option) (vclock.Time, error) {
			bw, err := simmpi.RingBandwidth(cfg, msg, iters, opts...)
			if err != nil || bw <= 0 {
				return 0, err
			}
			// Back out the per-lap time so every row is a duration.
			return vclock.Time(float64(msg) / 1e9 / bw * float64(vclock.Second)), nil
		}},
		{"allreduce", func(cfg simmpi.Config, opts ...simmpi.Option) (vclock.Time, error) {
			return simmpi.CollectiveTime(cfg, simmpi.AllreduceKind, msg, iters, opts...)
		}},
		{"alltoall", func(cfg simmpi.Config, opts ...simmpi.Option) (vclock.Time, error) {
			return simmpi.CollectiveTime(cfg, simmpi.AlltoallKind, msg, iters, opts...)
		}},
	}
	t := textplot.NewTable("op (64KB, host 4 + Phi 4)", "healthy", "lossy-pcie", "slowdown", "retries")
	for _, op := range ops {
		healthy, lossy, retries, err := run(op.name, op.f)
		if err != nil {
			return err
		}
		t.Row(op.name, healthy, lossy,
			fmt.Sprintf("%.2fx", lossy.Seconds()/healthy.Seconds()), retries)
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "plan %s: %s\n", plan, plan.Note)
	return err
}

// runExtFaultStraggler replays the Figure 23 adaptation on a genuinely
// degraded machine: both Phis straggle, the static zone balance
// overloads them, and a rebalance on measured per-rank speeds shifts
// zones back to the host.
func runExtFaultStraggler(w io.Writer, env Env) error {
	plan := simfault.PhiStraggler()
	cfg := overflow.SymmetricConfig{
		HostCombo: overflow.Combo{Ranks: 16, Threads: 1},
		PhiCombo:  overflow.Combo{Ranks: 8, Threads: 28},
		Software:  pcie.PostUpdate,
	}
	healthy, err := overflow.SymmetricStepTime(env.Model, env.Node, cfg)
	if err != nil {
		return err
	}
	cfg.Faults = plan
	static, rebalanced, err := overflow.SymmetricStepRebalanced(env.Model, env.Node, cfg)
	if err != nil {
		return err
	}
	ratio := func(x vclock.Time) string {
		return fmt.Sprintf("%.2fx", x.Seconds()/healthy.Seconds())
	}
	t := textplot.NewTable("configuration", "step time", "vs healthy")
	t.Row("healthy, static balance", healthy, ratio(healthy))
	t.Row("phi-straggler, static balance", static, ratio(static))
	t.Row("phi-straggler, rebalanced", rebalanced, ratio(rebalanced))
	if err := t.Fprint(w); err != nil {
		return err
	}
	recovered := 100 * (static - rebalanced).Seconds() / (static - healthy).Seconds()
	_, err = fmt.Fprintf(w,
		"rebalancing on measured speeds recovers %.0f%% of the straggler-induced slowdown (plan %s: %s)\n",
		recovered, plan, plan.Note)
	return err
}

// runExtFaultFailover offloads MG at a dead coprocessor: the engine
// pays the detection deadline once, then diverts every invocation to
// the host at its native MG rate. The run must complete without error —
// that is the graceful-degradation contract.
func runExtFaultFailover(w io.Writer, env Env) error {
	plan := simfault.Phi0Down()
	healthy, err := npb.MGOffload(env.Model, npb.ClassC, env.Node, npb.OffloadSubroutine,
		offload.WithTracer(env.Tracer, "offload:healthy"))
	if err != nil {
		return err
	}
	// The fallback rate comes from the repository's own MG numbers: how
	// much slower the 16-core host runs MG than the 177-thread Phi the
	// kernels were priced for.
	host, err := npb.OMPTime(env.Model, npb.MG, npb.ClassC, machine.HostPartition(env.Node, 1))
	if err != nil {
		return err
	}
	phi, err := npb.OMPTime(env.Model, npb.MG, npb.ClassC,
		machine.PhiThreadsPartition(env.Node, machine.Phi0, 177))
	if err != nil {
		return err
	}
	hostRate := host.Time.Seconds() / phi.Time.Seconds()
	tr := simtrace.New() // local tracer: the fallback evidence reads its counters
	degraded, err := npb.MGOffload(env.Model, npb.ClassC, env.Node, npb.OffloadSubroutine,
		offload.WithFaultPlan(plan),
		offload.WithHostFallback(func(k vclock.Time) vclock.Time {
			return vclock.Time(float64(k) * hostRate)
		}),
		offload.WithTracer(tr, "offload:failover"))
	if err != nil {
		return err // the fallback contract says this path is unreachable
	}
	t := textplot.NewTable("scenario", "time", "Gflop/s", "invocations", "fallbacks", "retries")
	t.Row("healthy offload (subroutine)", healthy.Time, fmt.Sprintf("%.2f", healthy.Gflops),
		healthy.Report.Invocations, healthy.Report.Fallbacks, healthy.Report.Retries)
	t.Row("phi0-down, host fallback", degraded.Time, fmt.Sprintf("%.2f", degraded.Gflops),
		degraded.Report.Invocations, degraded.Report.Fallbacks, degraded.Report.Retries)
	if err := t.Fprint(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"plan %s: the dead card never errors the run — %d invocations divert to the host after one detection deadline\n",
		plan, counterTotal(tr, "offload_fallbacks")); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w,
		"the fallback outruns the healthy offload: no bytes cross PCIe, which is Figure 25's overhead story in reverse")
	return err
}
