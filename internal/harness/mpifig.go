package harness

import (
	"fmt"
	"io"

	"maia/internal/machine"
	"maia/internal/simmpi"
	"maia/internal/textplot"
	"maia/internal/vclock"
)

// Intra-device MPI function figures (10-14).

// mpiExperiments lists the intra-device MPI function figures.
func mpiExperiments() []Experiment {
	return []Experiment{{
		ID:      "fig10",
		Title:   "MPI_Send/Recv ring bandwidth on host and Phi",
		Paper:   "host(16) over Phi(1t/core) by 1.3-3.5x; over Phi(4t/core) by 24-54x",
		Section: "mpi",
		Kind:    KindFigure,
		Order:   10,
		Run:     runFig10,
	}, {
		ID:      "fig11",
		Title:   "MPI_Bcast on host and Phi",
		Paper:   "host over Phi0(1t/core) by 1.1-3.8x; more threads/core degrade sharply",
		Section: "mpi",
		Kind:    KindFigure,
		Order:   11,
		Run:     collectiveFig(simmpi.BcastKind),
	}, {
		ID:      "fig12",
		Title:   "MPI_Allreduce on host and Phi",
		Paper:   "host over Phi0 by 2.2-13.4x (1t/core), 28-104x (4t/core)",
		Section: "mpi",
		Kind:    KindFigure,
		Order:   12,
		Run:     collectiveFig(simmpi.AllreduceKind),
	}, {
		ID:      "fig13",
		Title:   "MPI_Allgather on host and Phi",
		Paper:   "abrupt jump at 2-4KB (algorithm switch); host over Phi by 2.6-17.1x / 68-1146x",
		Section: "mpi",
		Kind:    KindFigure,
		Order:   13,
		Run:     runFig13,
	}, {
		ID:      "fig14",
		Title:   "MPI_AlltoAll on host and Phi",
		Paper:   "4t/core runs only to 4KB (out of memory); host over Phi by 8-20x / 1003-2603x",
		Section: "mpi",
		Kind:    KindFigure,
		Order:   14,
		Run:     runFig14,
	}}
}

// phiRingConfigs are the paper's four threads-per-core settings.
var phiRingConfigs = []struct {
	ranks, tpc int
}{{59, 1}, {118, 2}, {177, 3}, {236, 4}}

func runFig10(w io.Writer, env Env) error {
	iters := 3
	if env.Quick {
		iters = 1
	}
	t := textplot.NewTable("msg size", "host 16", "Phi 59(1t)", "Phi 118(2t)", "Phi 177(3t)", "Phi 236(4t)")
	for _, m := range sizesUpTo(env, 1<<20) {
		row := []interface{}{byteLabel(m)}
		bw, err := simmpi.RingBandwidth(simmpi.Config{Ranks: simmpi.HostPlacement(16, 1)}, m, iters,
			simmpi.WithTracer(env.Tracer, fmt.Sprintf("ring:host16[%s]", byteLabel(m))),
			simmpi.WithFaultPlan(env.Faults))
		if err != nil {
			return err
		}
		row = append(row, gbs(bw))
		for _, c := range phiRingConfigs {
			bw, err := simmpi.RingBandwidth(simmpi.Config{Ranks: simmpi.PhiPlacement(machine.Phi0, c.ranks, c.tpc)}, m, iters,
				simmpi.WithTracer(env.Tracer, fmt.Sprintf("ring:phi%dx%d[%s]", c.ranks, c.tpc, byteLabel(m))),
				simmpi.WithFaultPlan(env.Faults))
			if err != nil {
				return err
			}
			row = append(row, gbs(bw))
		}
		t.Row(row...)
	}
	return t.Fprint(w)
}

// collectiveFig builds the Figure 11/12 runner for one collective.
func collectiveFig(kind simmpi.CollectiveKind) func(io.Writer, Env) error {
	return func(w io.Writer, env Env) error {
		return runCollective(w, env, kind, 256<<10, nil)
	}
}

func runFig13(w io.Writer, env Env) error {
	// The sweep tops out at 8 KB: the algorithm-switch jump sits at
	// 2-4 KB, and a 236-rank allgather's receive buffer grows with
	// ranks x message size.
	return runCollective(w, env, simmpi.AllgatherKind, 8<<10, nil)
}

func runFig14(w io.Writer, env Env) error {
	feasible := func(dev machine.Device, ranks, m int) bool {
		return simmpi.AlltoallFeasible(dev, machine.NewNode(), ranks, m)
	}
	return runCollective(w, env, simmpi.AlltoallKind, 256<<10, feasible)
}

// runCollective prints per-op times for host(16) and the four Phi
// configurations across a size sweep. feasible, when non-nil, gates each
// cell with the device-memory model and prints OOM for infeasible runs
// (Figure 14's failures).
func runCollective(w io.Writer, env Env, kind simmpi.CollectiveKind, maxBytes int,
	feasible func(dev machine.Device, ranks, m int) bool) error {
	iters := 2
	if env.Quick {
		iters = 1
	}
	phiConfigs := []struct {
		ranks, tpc int
	}{{64, 1}, {128, 2}, {236, 4}}
	header := []string{"msg size", "host 16"}
	for _, c := range phiConfigs {
		header = append(header, fmt.Sprintf("Phi %d(%dt)", c.ranks, c.tpc))
	}
	t := textplot.NewTable(header...)
	for _, m := range sizesUpTo(env, maxBytes) {
		row := []interface{}{byteLabel(m)}
		ht, err := simmpi.CollectiveTime(simmpi.Config{Ranks: simmpi.HostPlacement(16, 1)}, kind, m, iters,
			simmpi.WithTracer(env.Tracer, fmt.Sprintf("host16[%s]", byteLabel(m))),
			simmpi.WithFaultPlan(env.Faults))
		if err != nil {
			return err
		}
		row = append(row, ht.String())
		for _, c := range phiConfigs {
			if feasible != nil && !feasible(machine.Phi0, c.ranks, m) {
				row = append(row, "OOM")
				continue
			}
			pt, err := simmpi.CollectiveTime(simmpi.Config{Ranks: simmpi.PhiPlacement(machine.Phi0, c.ranks, c.tpc)}, kind, m, iters,
				simmpi.WithTracer(env.Tracer, fmt.Sprintf("phi%dx%d[%s]", c.ranks, c.tpc, byteLabel(m))),
				simmpi.WithFaultPlan(env.Faults))
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%v (%.0fx)", pt, pt.Seconds()/vclock.Max(ht, vclock.Nanosecond).Seconds()))
		}
		t.Row(row...)
	}
	return t.Fprint(w)
}
