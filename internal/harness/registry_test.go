package harness

import (
	"io"
	"testing"
)

func noopRun(w io.Writer, env Env) error { return nil }

// exp builds a minimal experiment with the metadata Paper() would give
// that ID, so ordering tests exercise the same fields.
func exp(id string, kind Kind, order int) Experiment {
	return Experiment{ID: id, Title: id, Paper: "none", Kind: kind, Order: order, Run: noopRun}
}

// Registry.All() order is a property of the registered set, not of
// registration order: every permutation of registration yields the same
// sequence — table1 first, figN numeric (fig9 before fig10), report,
// then ext-* by full suffix (ext-alpha before ext-azure).
func TestRegistryOrderProperty(t *testing.T) {
	canonical := []Experiment{
		exp("table1", KindTable, 1),
		exp("fig4", KindFigure, 4),
		exp("fig9", KindFigure, 9),
		exp("fig10", KindFigure, 10),
		exp("fig27", KindFigure, 27),
		exp("report", KindReport, 0),
		exp("ext-alpha", KindExtension, 0),
		exp("ext-azure", KindExtension, 0),
		exp("ext-checkpoint", KindExtension, 0),
	}
	wantIDs := make([]string, len(canonical))
	for i, e := range canonical {
		wantIDs[i] = e.ID
	}

	// Exhaustive permutations would be 9!; a deterministic family of
	// rotations and stride shuffles covers every relative order of each
	// pair while staying cheap.
	perms := [][]Experiment{}
	n := len(canonical)
	for r := 0; r < n; r++ {
		p := append(append([]Experiment{}, canonical[r:]...), canonical[:r]...)
		perms = append(perms, p)
	}
	for _, stride := range []int{2, 4, 5, 7} {
		var p []Experiment
		for i := 0; i < n; i++ {
			p = append(p, canonical[(i*stride)%n])
		}
		if len(uniqueIDs(p)) == n {
			perms = append(perms, p)
		}
	}

	for pi, perm := range perms {
		r := NewRegistry()
		for _, e := range perm {
			if err := r.Register(e); err != nil {
				t.Fatalf("perm %d: %v", pi, err)
			}
		}
		all := r.All()
		for i, e := range all {
			if e.ID != wantIDs[i] {
				t.Fatalf("perm %d: position %d is %s, want %s (full order %v)",
					pi, i, e.ID, wantIDs[i], uniqueIDs(all))
			}
		}
		// All() is stable across repeated calls on the same registry.
		again := r.All()
		for i := range again {
			if again[i].ID != all[i].ID {
				t.Fatalf("perm %d: All() not stable at %d", pi, i)
			}
		}
	}
}

func uniqueIDs(exps []Experiment) []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range exps {
		if !seen[e.ID] {
			seen[e.ID] = true
			out = append(out, e.ID)
		}
	}
	return out
}

// The real suite observes the same ordering contract.
func TestPaperOrdered(t *testing.T) {
	all := Paper().All()
	if all[0].ID != "table1" {
		t.Fatalf("first experiment is %s, want table1", all[0].ID)
	}
	prevKind, prevOrder, prevID := all[0].Kind, all[0].Order, all[0].ID
	for _, e := range all[1:] {
		if e.Kind < prevKind {
			t.Fatalf("kind order broken at %s", e.ID)
		}
		if e.Kind == prevKind {
			if e.Order < prevOrder || (e.Order == prevOrder && e.ID <= prevID) {
				t.Fatalf("experiments out of order at %s", e.ID)
			}
		}
		prevKind, prevOrder, prevID = e.Kind, e.Order, e.ID
	}
	if last := all[len(all)-1].ID; len(last) < 4 || last[:4] != "ext-" {
		t.Fatalf("extensions must sort last, got %s", last)
	}
}

// Registration rejects duplicates, empty IDs, and missing Run funcs —
// as errors, not import-time panics.
func TestRegisterRejects(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(exp("fig4", KindFigure, 4)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(exp("fig4", KindFigure, 4)); err == nil {
		t.Error("duplicate ID accepted")
	}
	if err := r.Register(exp("", KindFigure, 4)); err == nil {
		t.Error("empty ID accepted")
	}
	if err := r.Register(Experiment{ID: "x", Title: "x"}); err == nil {
		t.Error("nil Run accepted")
	}
	if r.Len() != 1 {
		t.Errorf("failed registrations mutated the registry (len %d)", r.Len())
	}
}
