package harness

import (
	"fmt"
	"io"

	"maia/internal/apps/cart3d"
	"maia/internal/apps/overflow"
	"maia/internal/pcie"
	"maia/internal/textplot"
)

// Production-application figures (21, 22, 23).

// appExperiments lists the production-application figures.
func appExperiments() []Experiment {
	return []Experiment{{
		ID:      "fig21",
		Title:   "Cart3D (OneraM6) on host and Phi",
		Paper:   "host ~2x the best Phi; Phi best at 4 threads/core (236 threads)",
		Section: "apps",
		Kind:    KindFigure,
		Order:   21,
		Run:     runFig21,
	}, {
		ID:      "fig22",
		Title:   "OVERFLOW (DLRF6-Medium) native host and Phi, (ranks x threads)",
		Paper:   "host best 16x1, worst 1x16; Phi best 8x28, worst 4x14; best Phi 1.8x slower than best host",
		Section: "apps",
		Kind:    KindFigure,
		Order:   22,
		Run:     runFig22,
	}, {
		ID:      "fig23",
		Title:   "OVERFLOW (DLRF6-Large) symmetric host+Phi0+Phi1, pre/post update",
		Paper:   "post-update gains 2-28%; 1.9x vs native host; still behind two plain hosts",
		Section: "apps",
		Kind:    KindFigure,
		Order:   23,
		Run:     runFig23,
	}}
}

func runFig21(w io.Writer, env Env) error {
	host, phi := cart3d.Fig21(env.Model, env.Node)
	t := textplot.NewTable("configuration", "Gflop/s", "time/iter")
	iterT := func(r cart3d.Result) string {
		return (r.Time / 250).String()
	}
	t.Row("host 16 threads", fmt.Sprintf("%.1f", host.Gflops), iterT(host))
	for _, r := range phi {
		t.Row(fmt.Sprintf("Phi %d threads", r.Partition.Threads()),
			fmt.Sprintf("%.1f", r.Gflops), iterT(r))
	}
	best := cart3d.Best(phi)
	_, err := fmt.Fprintf(w, "host / best Phi = %.2fx (best Phi at %d threads/core)\n",
		host.Gflops/best.Gflops, best.Partition.ThreadsPerCore)
	if err != nil {
		return err
	}
	return t.Fprint(w)
}

func runFig22(w io.Writer, env Env) error {
	host, phi, err := overflow.Fig22(env.Model, env.Node)
	if err != nil {
		return err
	}
	t := textplot.NewTable("configuration", "s/step")
	for _, c := range overflow.HostCombos() {
		t.Row("host "+c.String(), fmt.Sprintf("%.3f", host[c].Seconds()))
	}
	for _, c := range overflow.PhiCombos() {
		t.Row("Phi0 "+c.String(), fmt.Sprintf("%.3f", phi[c].Seconds()))
	}
	return t.Fprint(w)
}

func runFig23(w io.Writer, env Env) error {
	hostOnly, err := overflow.HostOnlyStepTime(env.Model, env.Node)
	if err != nil {
		return err
	}
	twoHosts, err := overflow.TwoHostsStepTime(env.Model, env.Node)
	if err != nil {
		return err
	}
	t := textplot.NewTable("configuration", "pre-update s/step", "post-update s/step", "gain")
	combos := []overflow.Combo{{Ranks: 4, Threads: 14}, {Ranks: 8, Threads: 14},
		{Ranks: 4, Threads: 28}, {Ranks: 8, Threads: 28}}
	if env.Quick {
		combos = combos[2:]
	}
	var bestPost float64
	for _, pc := range combos {
		pre, err := overflow.SymmetricStepTime(env.Model, env.Node, overflow.SymmetricConfig{
			HostCombo: overflow.Combo{Ranks: 16, Threads: 1}, PhiCombo: pc, Software: pcie.PreUpdate})
		if err != nil {
			return err
		}
		post, err := overflow.SymmetricStepTime(env.Model, env.Node, overflow.SymmetricConfig{
			HostCombo: overflow.Combo{Ranks: 16, Threads: 1}, PhiCombo: pc, Software: pcie.PostUpdate})
		if err != nil {
			return err
		}
		if bestPost == 0 || post.Seconds() < bestPost {
			bestPost = post.Seconds()
		}
		t.Row("host 16x1 + 2 Phi "+pc.String(),
			fmt.Sprintf("%.3f", pre.Seconds()), fmt.Sprintf("%.3f", post.Seconds()),
			fmt.Sprintf("%+.1f%%", (pre.Seconds()/post.Seconds()-1)*100))
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w,
		"native host only: %.3f s/step (best symmetric %.2fx faster); two hosts: %.3f s/step\n",
		hostOnly.Seconds(), hostOnly.Seconds()/bestPost, twoHosts.Seconds())
	return err
}
