package harness

import (
	"fmt"
	"io"

	"maia/internal/iosim"
	"maia/internal/machine"
	"maia/internal/pcie"
	"maia/internal/simomp"
	"maia/internal/textplot"
	"maia/internal/vclock"
)

// OpenMP micro-benchmark figures (15, 16) and the I/O figure (17).

// ompExperiments lists the OpenMP micro-benchmark figures and the I/O
// figure.
func ompExperiments() []Experiment {
	return []Experiment{{
		ID:      "fig15",
		Title:   "OpenMP synchronization overhead on host and Phi",
		Paper:   "Phi ~10x host for every construct; REDUCTION dearest, ATOMIC cheapest",
		Section: "openmp",
		Kind:    KindFigure,
		Order:   15,
		Run:     runFig15,
	}, {
		ID:      "fig16",
		Title:   "OpenMP scheduling overheads on host and Phi",
		Paper:   "STATIC < GUIDED < DYNAMIC; Phi ~10x host",
		Section: "openmp",
		Kind:    KindFigure,
		Order:   16,
		Run:     runFig16,
	}, {
		ID:      "fig17",
		Title:   "Sequential I/O bandwidth on host, Phi0, Phi1",
		Paper:   "host 210 W / 295 R MB/s; Phi ~80 W / 75 R MB/s (NFS over PCIe TCP/IP)",
		Section: "io",
		Kind:    KindFigure,
		Order:   17,
		Run:     runFig17,
	}}
}

func runFig15(w io.Writer, env Env) error {
	host := simomp.New(machine.HostPartition(env.Node, 1),
		simomp.WithTracer(env.Tracer, "omp:host16"), simomp.WithFaultPlan(env.Faults))
	phi := simomp.New(machine.PhiThreadsPartition(env.Node, machine.Phi0, 236),
		simomp.WithTracer(env.Tracer, "omp:phi236"), simomp.WithFaultPlan(env.Faults))
	t := textplot.NewTable("construct", "host (16t) us", "Phi0 (236t) us", "ratio")
	for _, c := range simomp.Constructs() {
		h := simomp.MeasureSyncOverhead(host, c).Microseconds()
		p := simomp.MeasureSyncOverhead(phi, c).Microseconds()
		t.Row(c, fmt.Sprintf("%.2f", h), fmt.Sprintf("%.2f", p), fmt.Sprintf("%.1fx", p/h))
	}
	return t.Fprint(w)
}

func runFig16(w io.Writer, env Env) error {
	host := simomp.New(machine.HostPartition(env.Node, 1),
		simomp.WithTracer(env.Tracer, "omp:host16"), simomp.WithFaultPlan(env.Faults))
	phi := simomp.New(machine.PhiThreadsPartition(env.Node, machine.Phi0, 236),
		simomp.WithTracer(env.Tracer, "omp:phi236"), simomp.WithFaultPlan(env.Faults))
	chunks := []int{1, 2, 4, 8, 16, 32, 64, 128}
	if env.Quick {
		chunks = []int{1, 8, 64}
	}
	t := textplot.NewTable("schedule,chunk", "host (16t) us", "Phi0 (236t) us", "ratio")
	for _, s := range simomp.Schedules() {
		for _, chunk := range chunks {
			h := simomp.MeasureSchedOverhead(host, s, chunk).Microseconds()
			p := simomp.MeasureSchedOverhead(phi, s, chunk).Microseconds()
			t.Row(fmt.Sprintf("%v,%d", s, chunk),
				fmt.Sprintf("%.2f", h), fmt.Sprintf("%.2f", p), fmt.Sprintf("%.1fx", p/h))
		}
	}
	return t.Fprint(w)
}

func runFig17(w io.Writer, env Env) error {
	t := textplot.NewTable("block size",
		"host W MB/s", "host R MB/s", "Phi0 W MB/s", "Phi0 R MB/s", "Phi1 W MB/s", "Phi1 R MB/s")
	blocks := []int{4 << 10, 64 << 10, 1 << 20, 16 << 20, 64 << 20}
	for _, b := range blocks {
		t.Row(byteLabel(b),
			fmt.Sprintf("%.0f", iosim.WriteBandwidthMBs(machine.Host, b)),
			fmt.Sprintf("%.0f", iosim.ReadBandwidthMBs(machine.Host, b)),
			fmt.Sprintf("%.0f", iosim.WriteBandwidthMBs(machine.Phi0, b)),
			fmt.Sprintf("%.0f", iosim.ReadBandwidthMBs(machine.Phi0, b)),
			fmt.Sprintf("%.0f", iosim.WriteBandwidthMBs(machine.Phi1, b)),
			fmt.Sprintf("%.0f", iosim.ReadBandwidthMBs(machine.Phi1, b)))
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	stack := pcie.NewStack(pcie.PostUpdate)
	if _, err := fmt.Fprintf(w, "workaround (ship to host over SCIF, 4MB msgs): Phi0 write %.0f MB/s\n",
		iosim.ShipToHostWriteMBs(stack, machine.Phi0, 4<<20)); err != nil {
		return err
	}
	// When tracing, lay a representative 64 MB sequential write and read
	// per device onto io-category tracks.
	if env.Tracer != nil {
		for _, dev := range []machine.Device{machine.Host, machine.Phi0, machine.Phi1} {
			var at vclock.Time
			for _, write := range []bool{true, false} {
				d, err := iosim.TraceTransfer(env.Tracer, "io:"+dev.String(), dev, write, 64<<20, 1<<20, at)
				if err != nil {
					return err
				}
				at += d
			}
		}
	}
	return nil
}
