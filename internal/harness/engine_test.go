package harness

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// Parallel execution of the real suite assembles the exact bytes of a
// sequential run. One worker count here keeps the test affordable; the
// worker-count sweep below covers the scheduler with cheap synthetic
// experiments.
func TestParallelMatchesSequential(t *testing.T) {
	env := quickEnv()
	reg := Paper()
	var seq bytes.Buffer
	if err := reg.RunAll(&seq, env); err != nil {
		t.Fatal(err)
	}
	var par bytes.Buffer
	results, err := reg.RunAllParallel(&par, env, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Error("parallel output differs from sequential")
	}
	if len(results) != reg.Len() {
		t.Errorf("%d results, want %d", len(results), reg.Len())
	}
}

// The scheduler preserves order for every worker count, including more
// workers than experiments, even when completion order is scrambled.
func TestParallelOrderAcrossWorkerCounts(t *testing.T) {
	var exps []Experiment
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("synthetic%02d", i)
		delay := time.Duration((i*7)%13) * time.Millisecond // scramble completion order
		exps = append(exps, Experiment{
			ID: id, Title: "synthetic", Paper: "none",
			Run: func(w io.Writer, env Env) error {
				time.Sleep(delay)
				_, err := fmt.Fprintf(w, "body of %s\n", id)
				return err
			},
		})
	}
	var seq bytes.Buffer
	if _, err := RunExperiments(&seq, quickEnv(), exps, 1); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7, 40, 100} {
		var par bytes.Buffer
		if _, err := RunExperiments(&par, quickEnv(), exps, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(seq.Bytes(), par.Bytes()) {
			t.Errorf("workers=%d: output differs from sequential", workers)
		}
	}
}

// Every experiment, run twice concurrently against cloned environments,
// produces byte-identical output: the runtime stack (simmpi ranks,
// simomp teams, memsim traces) shares no mutable state across Envs.
// Run under -race this is also the data-race audit.
func TestConcurrentDeterminism(t *testing.T) {
	env := quickEnv()
	exps := Paper().All()
	outs := make([][2][]byte, len(exps))

	sem := make(chan struct{}, 4) // bound peak memory, not determinism
	var wg sync.WaitGroup
	for i, e := range exps {
		for j := 0; j < 2; j++ {
			wg.Add(1)
			go func(i, j int, e Experiment) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				out, err := RenderBytes(e, env.Clone())
				if err != nil {
					t.Errorf("%s (copy %d): %v", e.ID, j, err)
					return
				}
				outs[i][j] = out
			}(i, j, e)
		}
	}
	wg.Wait()
	for i, e := range exps {
		if !bytes.Equal(outs[i][0], outs[i][1]) {
			t.Errorf("%s: concurrent runs diverge", e.ID)
		}
	}
}

// Result metadata matches what was actually written.
func TestRunExperimentsResults(t *testing.T) {
	env := quickEnv()
	exps := Paper().All()[:4]
	var out bytes.Buffer
	results, err := RunExperiments(&out, env, exps, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, r := range results {
		if r.ID != exps[i].ID || r.Index != i {
			t.Errorf("result %d is %s/%d, want %s/%d", i, r.ID, r.Index, exps[i].ID, i)
		}
		if r.Err != nil {
			t.Errorf("%s: %v", r.ID, r.Err)
		}
		if r.Bytes <= 0 {
			t.Errorf("%s reports %d bytes", r.ID, r.Bytes)
		}
		if r.Wall <= 0 {
			t.Errorf("%s reports non-positive wall time", r.ID)
		}
		total += r.Bytes
	}
	if total != out.Len() {
		t.Errorf("results claim %d bytes, writer got %d", total, out.Len())
	}
}

// A failing experiment stops output at its position (like RunAll) and is
// reported both as the returned error and in its Result.
func TestRunExperimentsError(t *testing.T) {
	boom := errors.New("boom")
	exps := []Experiment{
		{ID: "ok1", Title: "t", Paper: "p", Run: func(w io.Writer, env Env) error { return nil }},
		{ID: "bad", Title: "t", Paper: "p", Run: func(w io.Writer, env Env) error { return boom }},
		{ID: "ok2", Title: "t", Paper: "p", Run: func(w io.Writer, env Env) error { return nil }},
	}
	var out bytes.Buffer
	results, err := RunExperiments(&out, quickEnv(), exps, 3)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !errors.Is(results[1].Err, boom) {
		t.Errorf("results[1].Err = %v, want wrapped boom", results[1].Err)
	}
	if got, want := out.String(), "== ok1: t ==\npaper: p\n\n"; got != want {
		t.Errorf("output %q, want only the experiment before the failure (%q)", got, want)
	}
}

// Clones share no mutable state with the original environment.
func TestEnvCloneIsolated(t *testing.T) {
	env := DefaultEnv()
	c := env.Clone()
	if c.Node == env.Node {
		t.Fatal("Clone shares the Node pointer")
	}
	c.Node.HostProc.Caches[0].SizeBytes = 1
	if env.Node.HostProc.Caches[0].SizeBytes == 1 {
		t.Fatal("Clone shares the host cache slice")
	}
	c.Node.PhiProc.Caches[0].SizeBytes = 1
	if env.Node.PhiProc.Caches[0].SizeBytes == 1 {
		t.Fatal("Clone shares the Phi cache slice")
	}
	c.Model.OSCorePenalty = 99
	if env.Model.OSCorePenalty == 99 {
		t.Fatal("Clone shares the Model")
	}
}
