package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"maia/internal/simtrace"
)

// traceSummaryGolden is the committed snapshot of fig13's quick-mode
// category summary; regenerate with -update after deliberate changes to
// the trace instrumentation or the MPI model.
const traceSummaryGolden = "testdata/trace_summary_fig13.txt"

// runTracedFig13 runs fig13 in quick mode with tracing on and returns
// the tracer.
func runTracedFig13(t *testing.T) *simtrace.Tracer {
	t.Helper()
	tracer := simtrace.New()
	tracer.SetProcess("fig13")
	env := DefaultEnv(WithQuick(true), WithTracer(tracer))
	e, ok := Paper().ByID("fig13")
	if !ok {
		t.Fatal("fig13 not registered")
	}
	if err := e.Run(&bytes.Buffer{}, env); err != nil {
		t.Fatal(err)
	}
	return tracer
}

// The traced fig13 category summary matches its committed snapshot: the
// span population (counts, per-category virtual time, byte volumes) is
// deterministic down to the formatted text.
func TestTraceSummaryGolden(t *testing.T) {
	tracer := runTracedFig13(t)
	var buf bytes.Buffer
	if err := tracer.Summary().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.WriteFile(traceSummaryGolden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(traceSummaryGolden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace summary drifted from snapshot (rerun with -update if deliberate)\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}

// The exported Chrome trace is structurally sound: valid JSON, complete
// events with non-negative durations, thread metadata for every tid,
// and at least the mpi/pcie/compute categories an intra-device MPI
// figure must produce.
func TestTraceChromeExportStructure(t *testing.T) {
	tracer := runTracedFig13(t)
	var buf bytes.Buffer
	if err := tracer.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q, want ms", doc.DisplayTimeUnit)
	}
	cats := map[string]int{}
	namedTids := map[int]bool{}
	usedTids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				namedTids[e.Tid] = true
			}
		case "X":
			cats[e.Cat]++
			usedTids[e.Tid] = true
			if e.Dur == nil || *e.Dur < 0 {
				t.Fatalf("complete event %q lacks a non-negative dur", e.Name)
			}
			if e.Ts < 0 {
				t.Fatalf("complete event %q has negative ts", e.Name)
			}
		default:
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
	}
	for _, want := range []string{"mpi", "pcie", "compute"} {
		if cats[want] == 0 {
			t.Errorf("no %s-category events in a traced fig13", want)
		}
	}
	if len(cats) < 3 {
		t.Errorf("only %d categories, want >= 3", len(cats))
	}
	for tid := range usedTids {
		if !namedTids[tid] {
			t.Errorf("tid %d has events but no thread_name metadata", tid)
		}
	}
}

// The per-category times in the summary equal the sums over the
// exported spans, and the trace horizon covers every span end.
func TestTraceSummaryConsistentWithSpans(t *testing.T) {
	tracer := runTracedFig13(t)
	sum := tracer.Summary()
	byCat := map[simtrace.Category]int{}
	for _, s := range tracer.Spans() {
		byCat[s.Cat]++
		if s.End > sum.Horizon {
			t.Fatalf("span %q ends at %v, beyond horizon %v", s.Name, s.End, sum.Horizon)
		}
	}
	if sum.Spans != tracer.SpanCount() {
		t.Errorf("summary counts %d spans, tracer has %d", sum.Spans, tracer.SpanCount())
	}
	for _, c := range sum.Categories {
		if byCat[c.Cat] != c.Spans {
			t.Errorf("category %s: summary %d spans, spans() has %d", c.Cat, c.Spans, byCat[c.Cat])
		}
	}
	if !strings.Contains(catNames(sum), "mpi") {
		t.Error("summary lacks the mpi category")
	}
}

func catNames(s simtrace.TraceSummary) string {
	names := make([]string, len(s.Categories))
	for i, c := range s.Categories {
		names[i] = string(c.Cat)
	}
	return strings.Join(names, ",")
}
