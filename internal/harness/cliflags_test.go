package harness

import (
	"errors"
	"flag"
	"io"
	"testing"
)

// The shared flag surface parses into a JobSpec-backed Env: one wiring
// for maiad, maiabench, and npbrun.
func TestJobFlagsEnv(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	jf := AddJobFlags(fs)
	if err := fs.Parse([]string{"-quick", "-faults", "degraded", "-seed", "9", "-nodes", "8"}); err != nil {
		t.Fatal(err)
	}
	env, tracer, err := jf.Env()
	if err != nil {
		t.Fatal(err)
	}
	if tracer != nil {
		t.Errorf("tracer requested without tracing flags")
	}
	if !env.Quick || env.RackNodes != 8 {
		t.Errorf("quick/nodes not applied: %+v", env)
	}
	if env.Faults == nil || env.Faults.Name != "degraded" || env.Faults.Seed != 9 {
		t.Errorf("fault plan not built: %v", env.Faults)
	}
	spec := jf.Spec("fig5")
	if spec.Experiment != "fig5" || spec.FaultPlan != "degraded" || spec.Seed != 9 ||
		!spec.Quick || spec.Nodes != 8 {
		t.Errorf("Spec() = %+v", spec)
	}
	if err := spec.Validate(Paper()); err != nil {
		t.Errorf("flag-built spec invalid: %v", err)
	}
}

// Flag validation is JobSpec validation: bad values classify with the
// same typed errors the wire API returns.
func TestJobFlagsRejections(t *testing.T) {
	parse := func(args ...string) error {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		jf := AddJobFlags(fs)
		if err := fs.Parse(args); err != nil {
			return err
		}
		_, _, err := jf.Env()
		return err
	}
	if err := parse("-nodes", "3"); !errors.Is(err, ErrBadNodes) {
		t.Errorf("-nodes 3: %v", err)
	}
	if err := parse("-faults", "nope"); !errors.Is(err, ErrUnknownFaultPlan) {
		t.Errorf("-faults nope: %v", err)
	}
	if err := parse("-seed", "4"); !errors.Is(err, ErrBadSeed) {
		t.Errorf("-seed without -faults: %v", err)
	}
	if err := parse("-fleet", "600"); !errors.Is(err, ErrBadFleetNodes) {
		t.Errorf("-fleet 600: %v", err)
	}
	if err := parse("-scheduler", "clairvoyant"); !errors.Is(err, ErrBadFleetScheduler) {
		t.Errorf("-scheduler clairvoyant: %v", err)
	}
	if err := parse("-faults", "degraded", "-fleet", "8"); !errors.Is(err, ErrBadFleetExperiment) {
		t.Errorf("-faults with -fleet: %v", err)
	}
	if err := parse("-quick"); err != nil {
		t.Errorf("plain -quick rejected: %v", err)
	}
}

// The fleet flags land on the environment through the same JobSpec
// path as the wire API's fleet block.
func TestJobFlagsFleet(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	jf := AddJobFlags(fs)
	if err := fs.Parse([]string{"-fleet", "8", "-scheduler", "round-robin", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	env, _, err := jf.Env()
	if err != nil {
		t.Fatal(err)
	}
	if env.FleetNodes != 8 || env.FleetScheduler != "round-robin" || env.FleetSeed != 3 {
		t.Errorf("fleet flags not applied: %+v", env)
	}
	spec := jf.Spec("ext-fleet-recovery")
	if spec.Fleet == nil || spec.Fleet.Nodes != 8 || spec.Fleet.Scheduler != "round-robin" {
		t.Errorf("Spec() fleet block = %+v", spec.Fleet)
	}
	if err := spec.Validate(Paper()); err != nil {
		t.Errorf("flag-built fleet spec invalid: %v", err)
	}
}

// A tracer is built exactly when a tracing flag asks for one.
func TestJobFlagsTracer(t *testing.T) {
	jf := &JobFlags{TraceSummary: true}
	if jf.NewTracer() == nil {
		t.Errorf("-trace-summary did not build a tracer")
	}
	if (&JobFlags{}).NewTracer() != nil {
		t.Errorf("tracer built with tracing off")
	}
}
