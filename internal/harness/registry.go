// The typed experiment registry. This replaces the former package-global
// map populated by init() side effects: construction is explicit
// (Paper() assembles the reproduction suite from per-area experiment
// lists), registration failures are errors rather than hidden panics at
// import time, and presentation order comes from Experiment metadata
// (Kind, Order, ID) instead of string-parsing IDs.
package harness

import (
	"fmt"
	"io"
	"sort"
)

// Registry is an explicit, ordered collection of experiments.
type Registry struct {
	exps []Experiment
	byID map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]int)}
}

// Register adds an experiment. An empty ID, a nil Run, or a duplicate
// ID is rejected.
func (r *Registry) Register(e Experiment) error {
	if e.ID == "" {
		return fmt.Errorf("harness: experiment with empty ID (%q)", e.Title)
	}
	if e.Run == nil {
		return fmt.Errorf("harness: experiment %s has no Run function", e.ID)
	}
	if _, dup := r.byID[e.ID]; dup {
		return fmt.Errorf("harness: duplicate experiment %s", e.ID)
	}
	r.byID[e.ID] = len(r.exps)
	r.exps = append(r.exps, e)
	return nil
}

// mustRegister is Register for statically-known experiment lists, where
// a failure is a programming error.
func (r *Registry) mustRegister(exps ...Experiment) {
	for _, e := range exps {
		if err := r.Register(e); err != nil {
			panic(err)
		}
	}
}

// ByID returns the experiment with the given ID.
func (r *Registry) ByID(id string) (Experiment, bool) {
	i, ok := r.byID[id]
	if !ok {
		return Experiment{}, false
	}
	return r.exps[i], true
}

// Len reports how many experiments are registered.
func (r *Registry) Len() int { return len(r.exps) }

// All returns every experiment in presentation order: by Kind (tables,
// figures, report, extensions), then Order (the figure number), then
// ID. The order is a pure function of the registered set — registration
// order never shows through.
func (r *Registry) All() []Experiment {
	out := append([]Experiment(nil), r.exps...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Order != b.Order {
			return a.Order < b.Order
		}
		return a.ID < b.ID
	})
	return out
}

// RunAll executes every experiment in presentation order, streaming each
// one's framed output to w as it completes. With tracing enabled the
// tracer's process name follows the running experiment.
func (r *Registry) RunAll(w io.Writer, env Env) error {
	for _, e := range r.All() {
		env.Tracer.SetProcess(e.ID)
		if err := Render(w, e, env); err != nil {
			return err
		}
	}
	return nil
}

// RunAllParallel runs every experiment on a worker pool (see
// RunExperiments); output bytes are identical to RunAll.
func (r *Registry) RunAllParallel(w io.Writer, env Env, workers int) ([]Result, error) {
	return RunExperiments(w, env, r.All(), workers)
}

// Paper assembles the full reproduction suite: Table 1, Figures 4–27,
// the summary report, and the ext-* extension studies.
func Paper() *Registry {
	r := NewRegistry()
	r.mustRegister(memoryExperiments()...)
	r.mustRegister(pcieExperiments()...)
	r.mustRegister(mpiExperiments()...)
	r.mustRegister(ompExperiments()...)
	r.mustRegister(npbExperiments()...)
	r.mustRegister(appExperiments()...)
	r.mustRegister(reportExperiments()...)
	r.mustRegister(extensionExperiments()...)
	r.mustRegister(rackExperiments()...)
	r.mustRegister(faultExperiments()...)
	r.mustRegister(fleetExperiments()...)
	return r
}
