package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"
)

// BenchSlowest is one entry of a run's slowest-experiments summary:
// the experiment's wall time and its share of the run's summed
// experiment wall time, plus the same breakdown for heap activity —
// an experiment that dominates mallocs without dominating wall time
// is the next GC-pressure target.
type BenchSlowest struct {
	ID          string  `json:"id"`
	WallNs      int64   `json:"wall_ns"`
	Share       float64 `json:"share"`
	Mallocs     uint64  `json:"mallocs"`
	MallocShare float64 `json:"malloc_share"`
}

// BenchRun is one labeled benchmark pass over a set of experiments —
// real host wall-clock and heap numbers, as opposed to the virtual
// times the experiments themselves report. Runs accumulate in a JSON
// file so before/after comparisons live side by side.
type BenchRun struct {
	Label       string         `json:"label"`
	Time        string         `json:"time,omitempty"`
	GoVersion   string         `json:"go_version"`
	GOOS        string         `json:"goos"`
	GOARCH      string         `json:"goarch"`
	NumCPU      int            `json:"num_cpu"`
	Workers     int            `json:"workers"`
	Quick       bool           `json:"quick"`
	TotalWallNs int64          `json:"total_wall_ns"`
	Slowest     []BenchSlowest `json:"slowest,omitempty"`
	// Experiments are the per-experiment records in the versioned
	// Result wire format — the same encoding maiad serves, so bench
	// files and cache entries can never drift apart.
	Experiments []Result `json:"experiments"`
}

// NewBenchRun assembles a BenchRun from engine results. Per-experiment
// alloc numbers are process-wide deltas, so they are only exact when
// workers == 1 (see Result).
func NewBenchRun(label string, quick bool, workers int, total time.Duration, results []Result) BenchRun {
	run := BenchRun{
		Label:       label,
		Time:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Workers:     workers,
		Quick:       quick,
		TotalWallNs: total.Nanoseconds(),
		Experiments: make([]Result, 0, len(results)),
	}
	for _, r := range results {
		run.Experiments = append(run.Experiments, r.Wire())
	}
	run.Slowest = slowestOf(run.Experiments, 5)
	return run
}

// slowestOf ranks the top-k experiments by wall time, with each entry's
// share of the summed experiment wall time (which differs from the
// run's elapsed total under parallel workers).
func slowestOf(exps []Result, k int) []BenchSlowest {
	if len(exps) == 0 {
		return nil
	}
	ranked := append([]Result(nil), exps...)
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Wall != ranked[j].Wall {
			return ranked[i].Wall > ranked[j].Wall
		}
		return ranked[i].ID < ranked[j].ID
	})
	var sum, mallocSum int64
	for _, e := range exps {
		sum += e.Wall.Nanoseconds()
		mallocSum += int64(e.Mallocs)
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	out := make([]BenchSlowest, 0, k)
	for _, e := range ranked[:k] {
		s := BenchSlowest{ID: e.ID, WallNs: e.Wall.Nanoseconds(), Mallocs: e.Mallocs}
		if sum > 0 {
			s.Share = float64(e.Wall.Nanoseconds()) / float64(sum)
		}
		if mallocSum > 0 {
			s.MallocShare = float64(e.Mallocs) / float64(mallocSum)
		}
		out = append(out, s)
	}
	return out
}

// AppendBenchJSON appends run to the JSON array in path, creating the
// file if needed. The file stays a single pretty-printed array so it
// diffs cleanly in review.
func AppendBenchJSON(path string, run BenchRun) error {
	var runs []BenchRun
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if len(data) > 0 {
			if jerr := json.Unmarshal(data, &runs); jerr != nil {
				return fmt.Errorf("harness: %s: existing bench file is not a run array: %w", path, jerr)
			}
		}
	case os.IsNotExist(err):
		// first run: start a fresh array
	default:
		return err
	}
	runs = append(runs, run)
	out, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
