package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// BenchExperiment is the wall-clock and allocation record of one
// experiment inside a BenchRun.
type BenchExperiment struct {
	ID         string `json:"id"`
	WallNs     int64  `json:"wall_ns"`
	Bytes      int    `json:"output_bytes"`
	Mallocs    uint64 `json:"mallocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
	Error      string `json:"error,omitempty"`
}

// BenchRun is one labeled benchmark pass over a set of experiments —
// real host wall-clock and heap numbers, as opposed to the virtual
// times the experiments themselves report. Runs accumulate in a JSON
// file so before/after comparisons live side by side.
type BenchRun struct {
	Label       string            `json:"label"`
	Time        string            `json:"time,omitempty"`
	GoVersion   string            `json:"go_version"`
	GOOS        string            `json:"goos"`
	GOARCH      string            `json:"goarch"`
	NumCPU      int               `json:"num_cpu"`
	Workers     int               `json:"workers"`
	Quick       bool              `json:"quick"`
	TotalWallNs int64             `json:"total_wall_ns"`
	Experiments []BenchExperiment `json:"experiments"`
}

// NewBenchRun assembles a BenchRun from engine results. Per-experiment
// alloc numbers are process-wide deltas, so they are only exact when
// workers == 1 (see Result).
func NewBenchRun(label string, quick bool, workers int, total time.Duration, results []Result) BenchRun {
	run := BenchRun{
		Label:       label,
		Time:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Workers:     workers,
		Quick:       quick,
		TotalWallNs: total.Nanoseconds(),
		Experiments: make([]BenchExperiment, 0, len(results)),
	}
	for _, r := range results {
		be := BenchExperiment{
			ID:         r.ID,
			WallNs:     r.Wall.Nanoseconds(),
			Bytes:      r.Bytes,
			Mallocs:    r.Mallocs,
			AllocBytes: r.AllocBytes,
		}
		if r.Err != nil {
			be.Error = r.Err.Error()
		}
		run.Experiments = append(run.Experiments, be)
	}
	return run
}

// AppendBenchJSON appends run to the JSON array in path, creating the
// file if needed. The file stays a single pretty-printed array so it
// diffs cleanly in review.
func AppendBenchJSON(path string, run BenchRun) error {
	var runs []BenchRun
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if len(data) > 0 {
			if jerr := json.Unmarshal(data, &runs); jerr != nil {
				return fmt.Errorf("harness: %s: existing bench file is not a run array: %w", path, jerr)
			}
		}
	case os.IsNotExist(err):
		// first run: start a fresh array
	default:
		return err
	}
	runs = append(runs, run)
	out, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
