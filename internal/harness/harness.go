// Package harness regenerates every table and figure of the paper's
// evaluation (Section 6). Each Experiment prints the same rows or series
// the paper reports, computed from this repository's simulated Maia
// system; EXPERIMENTS.md records the paper-vs-measured comparison.
package harness

import (
	"io"

	"maia/internal/core"
	"maia/internal/machine"
	"maia/internal/simfault"
	"maia/internal/simtrace"
	"maia/internal/vclock"
)

// Kind groups experiments into presentation tiers; lower kinds print
// first. Within a Kind, Order then ID decide the sequence.
type Kind int

// The presentation tiers, in print order.
const (
	KindTable     Kind = iota // paper tables (table1)
	KindFigure                // numbered paper figures (fig4..fig27)
	KindReport                // whole-paper rollups (report)
	KindExtension             // beyond-the-paper extensions (ext-*)
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindTable:
		return "table"
	case KindFigure:
		return "figure"
	case KindReport:
		return "report"
	case KindExtension:
		return "extension"
	}
	return "unknown"
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the handle used by cmd/maiabench ("table1", "fig4", ...).
	ID string
	// Title is the paper's caption, abbreviated.
	Title string
	// Paper summarizes what the paper measured (the expectation).
	Paper string
	// Section names the paper area the experiment belongs to
	// ("memory", "interconnect", "mpi", "openmp", "io", "npb",
	// "apps", "summary", "extension").
	Section string
	// Kind is the presentation tier; together with Order and ID it
	// fully determines print order — no ID string parsing involved.
	Kind Kind
	// Order ranks experiments within their Kind (the figure number
	// for KindFigure); ties fall back to ID comparison, which is how
	// ext-* extensions order by their full suffix.
	Order int
	// Run computes the experiment and writes its rows.
	Run func(w io.Writer, env Env) error
}

// Env carries the modeled system every experiment runs against.
type Env struct {
	// Model is the calibrated cost model.
	Model core.Model
	// Node is the modeled Maia node.
	Node *machine.Node
	// Quick trims sweep densities so the full suite stays fast (used by
	// tests); the printed shape is unchanged.
	Quick bool
	// Tracer, when non-nil, receives virtual-time spans and counters
	// from every instrumented runtime an experiment touches. Nil (the
	// default) disables tracing at zero cost.
	Tracer *simtrace.Tracer
	// Faults, when non-nil, is the fault plan every experiment threads
	// into the runtimes it constructs, re-pricing the whole suite on the
	// degraded machine. Nil (and the empty plan) reproduces the healthy
	// system bit-for-bit.
	Faults *simfault.Plan
	// RackNodes, when nonzero, caps the node counts the ext-rack
	// experiments sweep (the maiabench -nodes flag). Zero sweeps the
	// full 2..128-node system.
	RackNodes int
	// FleetNodes, when nonzero, caps the fleet sizes the ext-fleet
	// experiments simulate (the maiabench -fleet flag, the JobSpec
	// fleet.nodes field). Zero keeps the default fleet shapes.
	FleetNodes int
	// FleetScheduler, when non-empty, selects the fleet placement
	// policy (see simfleet.Policies; "" = the default policy).
	FleetScheduler string
	// FleetMTBF, when non-empty, pins the ext-fleet experiments to one
	// MTBF profile instead of sweeping the catalog.
	FleetMTBF string
	// FleetDuration, when nonzero, overrides the simulated horizon of
	// every fleet run.
	FleetDuration vclock.Time
	// FleetHealth, when nonzero, overrides the fleet health-check period.
	FleetHealth vclock.Time
	// FleetSeed, when nonzero, re-roots every fleet random decision
	// (condition draws, arrivals, failures); zero keeps the default.
	FleetSeed uint64
}

// Option configures the Env built by DefaultEnv.
type Option func(*Env)

// WithQuick sets quick mode (trimmed sweep densities).
func WithQuick(quick bool) Option {
	return func(env *Env) { env.Quick = quick }
}

// WithTracer attaches a simtrace tracer (nil leaves tracing off).
func WithTracer(t *simtrace.Tracer) Option {
	return func(env *Env) { env.Tracer = t }
}

// WithModel substitutes the cost model.
func WithModel(m core.Model) Option {
	return func(env *Env) { env.Model = m }
}

// WithFaults injects a fault plan into every experiment's runtimes (nil
// runs the healthy machine).
func WithFaults(p *simfault.Plan) Option {
	return func(env *Env) { env.Faults = p }
}

// WithRackNodes caps the ext-rack sweeps' largest node count (0 keeps
// the full 128-node sweep).
func WithRackNodes(n int) Option {
	return func(env *Env) { env.RackNodes = n }
}

// WithFleetNodes caps the ext-fleet fleet sizes (0 keeps the defaults).
func WithFleetNodes(n int) Option {
	return func(env *Env) { env.FleetNodes = n }
}

// WithFleetScheduler selects the fleet placement policy ("" keeps the
// default).
func WithFleetScheduler(policy string) Option {
	return func(env *Env) { env.FleetScheduler = policy }
}

// WithFleetMTBF pins the fleet experiments to one MTBF profile ("" keeps
// the full catalog sweep).
func WithFleetMTBF(profile string) Option {
	return func(env *Env) { env.FleetMTBF = profile }
}

// WithFleetDuration overrides the simulated fleet horizon (0 keeps the
// per-experiment defaults).
func WithFleetDuration(d vclock.Time) Option {
	return func(env *Env) { env.FleetDuration = d }
}

// WithFleetHealth overrides the fleet health-check period (0 keeps the
// default).
func WithFleetHealth(d vclock.Time) Option {
	return func(env *Env) { env.FleetHealth = d }
}

// WithFleetSeed re-roots the fleet's random decisions (0 keeps the
// default seed).
func WithFleetSeed(seed uint64) Option {
	return func(env *Env) { env.FleetSeed = seed }
}

// DefaultEnv returns the calibrated environment, adjusted by opts.
func DefaultEnv(opts ...Option) Env {
	env := Env{Model: core.DefaultModel(), Node: machine.NewNode()}
	for _, opt := range opts {
		opt(&env)
	}
	return env
}

// Clone returns an Env that shares no mutable state with env: the Model
// (a value) is copied and the Node is deep-copied, so experiments running
// against clones can execute concurrently. The Tracer pointer is shared —
// it is the one deliberate cross-experiment sink, and it is safe for
// concurrent use.
func (env Env) Clone() Env {
	c := env
	c.Node = env.Node.Clone()
	return c
}

// sizesUpTo returns a 1 B .. max sweep in multiplicative steps of 4
// (of 16 in Quick mode). A max below 1 yields the single-point sweep
// {max} rather than indexing into an empty slice.
func sizesUpTo(env Env, max int) []int {
	step := 4
	if env.Quick {
		step = 16
	}
	var out []int
	for s := 1; s <= max; s *= step {
		out = append(out, s)
	}
	if len(out) == 0 {
		return []int{max}
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}
