// Package harness regenerates every table and figure of the paper's
// evaluation (Section 6). Each Experiment prints the same rows or series
// the paper reports, computed from this repository's simulated Maia
// system; EXPERIMENTS.md records the paper-vs-measured comparison.
package harness

import (
	"fmt"
	"io"
	"sort"

	"maia/internal/core"
	"maia/internal/machine"
)

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the handle used by cmd/maiabench ("table1", "fig4", ...).
	ID string
	// Title is the paper's caption, abbreviated.
	Title string
	// Paper summarizes what the paper measured (the expectation).
	Paper string
	// Run computes the experiment and writes its rows.
	Run func(w io.Writer, env Env) error
}

// Env carries the modeled system every experiment runs against.
type Env struct {
	Model core.Model
	Node  *machine.Node
	// Quick trims sweep densities so the full suite stays fast (used by
	// tests); the printed shape is unchanged.
	Quick bool
}

// DefaultEnv returns the calibrated environment.
func DefaultEnv() Env {
	return Env{Model: core.DefaultModel(), Node: machine.NewNode()}
}

// Clone returns an Env that shares no mutable state with env: the Model
// (a value) is copied and the Node is deep-copied, so experiments running
// against clones can execute concurrently.
func (env Env) Clone() Env {
	c := env
	c.Node = env.Node.Clone()
	return c
}

// registry is populated by the per-area files' init functions.
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("harness: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment in presentation order (table1, then
// figures by number).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey maps an experiment ID to a sortable key: "table1" first,
// then figN numerically, then the remaining reproduction experiments
// ("report"), then the extension experiments (ext-*) ordered by their
// full suffix.
func orderKey(id string) string {
	var n int
	if _, err := fmt.Sscanf(id, "fig%d", &n); err == nil {
		return fmt.Sprintf("1:%04d", n)
	}
	if id == "table1" {
		return "0"
	}
	if len(id) > 4 && id[:4] == "ext-" {
		return "3:" + id[4:]
	}
	return "2:" + id
}

// RunAll executes every experiment in presentation order, streaming each
// one's framed output to w as it completes.
func RunAll(w io.Writer, env Env) error {
	for _, e := range All() {
		if err := Render(w, e, env); err != nil {
			return err
		}
	}
	return nil
}

// sizesUpTo returns a 1 B .. max sweep in multiplicative steps of 4
// (of 16 in Quick mode).
func sizesUpTo(env Env, max int) []int {
	step := 4
	if env.Quick {
		step = 16
	}
	var out []int
	for s := 1; s <= max; s *= step {
		out = append(out, s)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}
