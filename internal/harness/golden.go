package harness

import (
	"bytes"
	"embed"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Golden snapshots: the byte-exact output of every experiment in full
// (non-Quick) mode, one file per experiment under testdata/golden. They
// pin the whole Section 6 reproduction — any change to a printed number
// is surfaced as a diff instead of slipping through — and they are what
// `maiabench -verify` checks and `maiabench -update` regenerates.

//go:embed testdata/golden
var goldenFS embed.FS

// DefaultGoldenDir is the repository-relative directory holding the
// committed golden snapshots; `maiabench -update` writes here.
const DefaultGoldenDir = "internal/harness/testdata/golden"

// GoldenName returns the snapshot file name for an experiment ID.
func GoldenName(id string) string { return id + ".txt" }

// EmbeddedGolden returns the golden snapshots embedded at build time,
// rooted at the per-experiment files.
func EmbeddedGolden() fs.FS {
	sub, err := fs.Sub(goldenFS, "testdata/golden")
	if err != nil {
		panic(err) // unreachable: the embed directive guarantees the path
	}
	return sub
}

// UpdateGolden renders every experiment in exps with env and writes one
// snapshot file per experiment into dir, creating it if needed.
func UpdateGolden(dir string, env Env, exps []Experiment) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, e := range exps {
		out, err := RenderBytes(e, env)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, GoldenName(e.ID)), out, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// VerifyGolden re-renders every experiment in exps with env and compares
// the bytes against the snapshots in golden (use EmbeddedGolden for the
// build-time copies). It collects every mismatch into a single error so
// a drifted run reports the full damage at once.
func VerifyGolden(env Env, exps []Experiment, golden fs.FS) error {
	var bad []string
	for _, e := range exps {
		want, err := fs.ReadFile(golden, GoldenName(e.ID))
		if err != nil {
			bad = append(bad, e.ID+" (no snapshot)")
			continue
		}
		got, renderErr := RenderBytes(e, env)
		if renderErr != nil {
			return renderErr
		}
		if !bytes.Equal(got, want) {
			bad = append(bad, e.ID)
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("golden mismatch: %s (regenerate with maiabench -update all)",
			strings.Join(bad, ", "))
	}
	return nil
}
