package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strconv"
	"strings"

	"maia/internal/core"
	"maia/internal/simfault"
	"maia/internal/simfleet"
	"maia/internal/vclock"
)

// JobSpec is the single typed description of "run experiment X under
// environment Y": the wire currency of the maiad control plane and the
// common ground the CLIs build their Envs from. A spec is pure data —
// every field is a value with a canonical JSON encoding — so two
// semantically identical jobs hash to the same content address and a
// cache entry computed for one client answers every other.
//
// The zero value of every optional field means "the default, healthy,
// full-density environment"; the canonical encoding omits such fields,
// so adding a new option never changes the hash of old jobs.
type JobSpec struct {
	// SchemaVersion is the wire-format version (JobSpecSchemaVersion).
	// Zero is accepted on input and normalized to the current version.
	SchemaVersion int `json:"schema_version"`
	// Experiment is the registry ID to run ("table1", "fig4", ...).
	Experiment string `json:"experiment"`
	// Quick trims sweep densities exactly like maiabench -quick.
	Quick bool `json:"quick,omitempty"`
	// Nodes caps the ext-rack node sweeps (0 = full 128-node rack);
	// must be a power of two in 2..128 when nonzero.
	Nodes int `json:"nodes,omitempty"`
	// FaultPlan names a simfault catalog plan ("" = healthy machine).
	FaultPlan string `json:"fault_plan,omitempty"`
	// Seed, when nonzero, replaces the fault plan's catalog seed so one
	// named failure mode can be re-rolled into many distinct machines,
	// or (with a fleet block) re-roots every fleet random decision.
	// Without a fault plan or a fleet it is rejected by Validate: a seed
	// that changes nothing must not mint a distinct cache key.
	Seed uint64 `json:"seed,omitempty"`
	// Model overrides individual cost-model knobs by name (see
	// ModelKeys). Boolean knobs encode as 0 or 1.
	Model map[string]float64 `json:"model,omitempty"`
	// Fleet, when non-nil, shapes the ext-fleet experiments (schema v2;
	// valid only on experiments in the "fleet" section, and never
	// alongside a fault plan — fleet runs draw their degradations from
	// the simfault catalog internally).
	Fleet *FleetSpec `json:"fleet,omitempty"`
}

// FleetSpec is the v2 fleet block: every field zero means "the
// experiment's default shape", and an all-default block is normalized
// away entirely, so v1 specs are untouched by the schema bump.
type FleetSpec struct {
	// Nodes caps the simulated fleet sizes (0 = default shapes; at most
	// simfleet.MaxNodes).
	Nodes int `json:"nodes,omitempty"`
	// DurationS overrides the simulated horizon, in virtual seconds
	// (0 = per-experiment defaults; at most 24h).
	DurationS float64 `json:"duration_s,omitempty"`
	// MTBF pins the MTBF profile ("" = sweep the catalog).
	MTBF string `json:"mtbf,omitempty"`
	// Scheduler selects the placement policy ("" = the default).
	Scheduler string `json:"scheduler,omitempty"`
	// HealthS overrides the health-check period, in virtual seconds
	// (0 = the default; at most one hour).
	HealthS float64 `json:"health_s,omitempty"`
}

// JobSpecSchemaVersion is the current JobSpec wire-format version.
// Version 2 adds the fleet block; a spec without one still
// canonicalizes (and therefore hashes) at version 1, so the bump
// re-keys nothing that existed before.
const JobSpecSchemaVersion = 2

// The model-override keys a JobSpec may set, each addressing one scalar
// knob of core.Model. Together they span the whole Model, so any Model
// value round-trips through a JobSpec.
const (
	// ModelCacheCapture toggles the cache-reuse model (bool: 0 or 1).
	ModelCacheCapture = "cache_capture"
	// ModelThreadLatencyHiding toggles the in-order issue model (bool).
	ModelThreadLatencyHiding = "thread_latency_hiding"
	// ModelOSCorePenalty sets the OS-core time multiplier (> 0).
	ModelOSCorePenalty = "os_core_penalty"
	// ModelStreamBankLimit toggles the GDDR5 open-bank model (bool).
	ModelStreamBankLimit = "stream_bank_limit"
	// ModelStreamBankPenalty sets the past-limit bandwidth multiplier
	// (> 0).
	ModelStreamBankPenalty = "stream_bank_penalty"
)

// ModelKeys lists the valid model-override keys, sorted.
func ModelKeys() []string {
	return []string{
		ModelCacheCapture,
		ModelOSCorePenalty,
		ModelStreamBankLimit,
		ModelStreamBankPenalty,
		ModelThreadLatencyHiding,
	}
}

// The typed validation failures Validate wraps; errors.Is against these
// classifies a rejection without string matching.
var (
	// ErrUnknownExperiment marks an experiment ID absent from the registry.
	ErrUnknownExperiment = errors.New("unknown experiment")
	// ErrBadNodes marks a node count that is not a power of two in 2..128.
	ErrBadNodes = errors.New("invalid node count")
	// ErrUnknownFaultPlan marks a fault-plan name absent from the catalog.
	ErrUnknownFaultPlan = errors.New("unknown fault plan")
	// ErrBadModelOverride marks an unknown key or out-of-domain value.
	ErrBadModelOverride = errors.New("invalid model override")
	// ErrBadSchemaVersion marks a spec from an unsupported wire version.
	ErrBadSchemaVersion = errors.New("unsupported schema version")
	// ErrBadSeed marks a seed on a spec with no fault plan or fleet to drive.
	ErrBadSeed = errors.New("seed without fault plan or fleet")
	// ErrBadFleetNodes marks a fleet size outside 1..simfleet.MaxNodes.
	ErrBadFleetNodes = errors.New("invalid fleet node count")
	// ErrBadFleetDuration marks a fleet horizon outside (0, 24h] seconds.
	ErrBadFleetDuration = errors.New("invalid fleet duration")
	// ErrBadFleetScheduler marks a scheduler policy absent from the catalog.
	ErrBadFleetScheduler = errors.New("unknown fleet scheduler")
	// ErrBadFleetMTBF marks an MTBF profile absent from the catalog.
	ErrBadFleetMTBF = errors.New("unknown fleet MTBF profile")
	// ErrBadFleetHealth marks a health-check period outside (0, 1h] seconds.
	ErrBadFleetHealth = errors.New("invalid fleet health-check period")
	// ErrBadFleetExperiment marks a fleet block on an experiment outside
	// the fleet section, or combined with a fault plan (fleet runs price
	// degradations internally; an env-level plan would mint distinct
	// cache keys for identical output).
	ErrBadFleetExperiment = errors.New("fleet block not applicable")
)

// check validates the fleet block's fields against the simfleet
// catalogs and bounds.
func (f *FleetSpec) check() error {
	if f.Nodes < 0 || f.Nodes > simfleet.MaxNodes {
		return fmt.Errorf("%w: %d (want 1..%d, or 0 for the defaults)",
			ErrBadFleetNodes, f.Nodes, simfleet.MaxNodes)
	}
	if math.IsNaN(f.DurationS) || f.DurationS < 0 || f.DurationS > simfleet.MaxDuration.Seconds() {
		return fmt.Errorf("%w: %v s (want (0, %v], or 0 for the defaults)",
			ErrBadFleetDuration, f.DurationS, simfleet.MaxDuration.Seconds())
	}
	if f.Scheduler != "" {
		if _, err := simfleet.PolicyByName(f.Scheduler); err != nil {
			return fmt.Errorf("%w: %q (have %s)",
				ErrBadFleetScheduler, f.Scheduler, strings.Join(simfleet.PolicyNames(), ", "))
		}
	}
	if f.MTBF != "" {
		if _, err := simfleet.ProfileByName(f.MTBF); err != nil {
			return fmt.Errorf("%w: %q (have %s)",
				ErrBadFleetMTBF, f.MTBF, strings.Join(simfleet.ProfileNames(), ", "))
		}
	}
	if math.IsNaN(f.HealthS) || f.HealthS < 0 || f.HealthS > simfleet.MaxHealthEvery.Seconds() {
		return fmt.Errorf("%w: %v s (want (0, %v], or 0 for the default)",
			ErrBadFleetHealth, f.HealthS, simfleet.MaxHealthEvery.Seconds())
	}
	return nil
}

// Validate checks the spec against the registry and the catalogs and
// returns the first violation, wrapped around one of the typed errors
// above. A nil error means Env() will succeed and the experiment exists.
func (s JobSpec) Validate(reg *Registry) error {
	if s.SchemaVersion < 0 || s.SchemaVersion > JobSpecSchemaVersion {
		return fmt.Errorf("%w: %d (this build speaks up to %d)",
			ErrBadSchemaVersion, s.SchemaVersion, JobSpecSchemaVersion)
	}
	if s.Experiment == "" {
		return fmt.Errorf("%w: empty experiment ID", ErrUnknownExperiment)
	}
	if reg != nil {
		if _, ok := reg.ByID(s.Experiment); !ok {
			return fmt.Errorf("%w: %q", ErrUnknownExperiment, s.Experiment)
		}
	}
	if s.Nodes != 0 && (s.Nodes < 2 || s.Nodes > 128 || s.Nodes&(s.Nodes-1) != 0) {
		return fmt.Errorf("%w: %d (want a power of two in 2..128, or 0)", ErrBadNodes, s.Nodes)
	}
	if s.Fleet != nil {
		if s.FaultPlan != "" {
			return fmt.Errorf("%w: a fleet block cannot carry fault plan %q",
				ErrBadFleetExperiment, s.FaultPlan)
		}
		if reg != nil {
			if exp, ok := reg.ByID(s.Experiment); ok && exp.Section != "fleet" {
				return fmt.Errorf("%w: experiment %q is in section %q, not fleet",
					ErrBadFleetExperiment, s.Experiment, exp.Section)
			}
		}
		if err := s.Fleet.check(); err != nil {
			return err
		}
	}
	if s.FaultPlan != "" {
		if _, err := simfault.ByName(s.FaultPlan); err != nil {
			return fmt.Errorf("%w: %q (have %s)",
				ErrUnknownFaultPlan, s.FaultPlan, strings.Join(simfault.Names(), ", "))
		}
	} else if s.Seed != 0 && s.Fleet == nil {
		return fmt.Errorf("%w: seed %d would re-roll nothing", ErrBadSeed, s.Seed)
	}
	for key, v := range s.Model {
		if err := checkModelOverride(key, v); err != nil {
			return err
		}
	}
	return nil
}

// checkModelOverride validates one model-override assignment.
func checkModelOverride(key string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%w: %s = %v is not finite", ErrBadModelOverride, key, v)
	}
	switch key {
	case ModelCacheCapture, ModelThreadLatencyHiding, ModelStreamBankLimit:
		if v != 0 && v != 1 {
			return fmt.Errorf("%w: %s = %v (boolean knobs take 0 or 1)", ErrBadModelOverride, key, v)
		}
	case ModelOSCorePenalty, ModelStreamBankPenalty:
		if v <= 0 {
			return fmt.Errorf("%w: %s = %v (want > 0)", ErrBadModelOverride, key, v)
		}
	default:
		return fmt.Errorf("%w: unknown key %q (have %s)",
			ErrBadModelOverride, key, strings.Join(ModelKeys(), ", "))
	}
	return nil
}

// Normalize returns the spec in canonical semantic form: the schema
// version filled in (1 without a fleet block, 2 with one — so v1 jobs
// keep their pre-fleet content addresses), a seed equal to the fault
// plan's catalog default (or the fleet's default) cleared, default-
// valued fleet fields dropped (an emptied block vanishes), and model
// overrides equal to the default model dropped. Normalizing never
// changes what Env() builds; it only collapses distinct spellings of
// the same job onto one content address.
func (s JobSpec) Normalize() JobSpec {
	n := s
	if n.Fleet != nil {
		f := *n.Fleet
		if f.Scheduler == simfleet.DefaultScheduler {
			f.Scheduler = ""
		}
		if f.HealthS == simfleet.DefaultHealthEvery.Seconds() {
			f.HealthS = 0
		}
		if n.FaultPlan == "" && n.Seed == simfleet.DefaultSeed {
			n.Seed = 0
		}
		if f == (FleetSpec{}) && n.Seed == 0 {
			n.Fleet = nil
		} else {
			n.Fleet = &f
		}
	}
	n.SchemaVersion = 1
	if n.Fleet != nil {
		n.SchemaVersion = JobSpecSchemaVersion
	}
	if n.FaultPlan == "" {
		if n.Fleet == nil {
			n.Seed = 0
		}
	} else if plan, err := simfault.ByName(n.FaultPlan); err == nil && n.Seed == plan.Seed {
		n.Seed = 0
	}
	if len(n.Model) > 0 {
		def := modelToOverrides(core.DefaultModel())
		var trimmed map[string]float64
		for key, v := range n.Model {
			if dv, ok := def[key]; ok && dv == v {
				continue
			}
			if trimmed == nil {
				trimmed = make(map[string]float64)
			}
			trimmed[key] = v
		}
		n.Model = trimmed
	}
	return n
}

// MarshalCanonical encodes the normalized spec as canonical JSON: keys
// in sorted order, zero-valued optional fields omitted, floats in Go's
// shortest round-trip form. Equal canonical bytes iff the specs build
// the same environment, so these bytes are what Hash digests.
func (s JobSpec) MarshalCanonical() []byte {
	n := s.Normalize()
	var b strings.Builder
	b.WriteByte('{')
	// Fields appear in sorted key order: experiment, fault_plan, fleet,
	// model, nodes, quick, schema_version, seed.
	fmt.Fprintf(&b, "%q:%q", "experiment", n.Experiment)
	if n.FaultPlan != "" {
		fmt.Fprintf(&b, ",%q:%q", "fault_plan", n.FaultPlan)
	}
	if n.Fleet != nil {
		b.WriteString(`,"fleet":{`)
		// Fleet keys in sorted order: duration_s, health_s, mtbf,
		// nodes, scheduler.
		comma := false
		field := func(format string, args ...any) {
			if comma {
				b.WriteByte(',')
			}
			comma = true
			fmt.Fprintf(&b, format, args...)
		}
		if n.Fleet.DurationS != 0 {
			field("%q:%s", "duration_s", canonicalFloat(n.Fleet.DurationS))
		}
		if n.Fleet.HealthS != 0 {
			field("%q:%s", "health_s", canonicalFloat(n.Fleet.HealthS))
		}
		if n.Fleet.MTBF != "" {
			field("%q:%q", "mtbf", n.Fleet.MTBF)
		}
		if n.Fleet.Nodes != 0 {
			field("%q:%d", "nodes", n.Fleet.Nodes)
		}
		if n.Fleet.Scheduler != "" {
			field("%q:%q", "scheduler", n.Fleet.Scheduler)
		}
		b.WriteByte('}')
	}
	if len(n.Model) > 0 {
		b.WriteString(`,"model":{`)
		keys := make([]string, 0, len(n.Model))
		for key := range n.Model {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for i, key := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%q:%s", key, canonicalFloat(n.Model[key]))
		}
		b.WriteByte('}')
	}
	if n.Nodes != 0 {
		fmt.Fprintf(&b, ",%q:%d", "nodes", n.Nodes)
	}
	if n.Quick {
		fmt.Fprintf(&b, ",%q:true", "quick")
	}
	fmt.Fprintf(&b, ",%q:%d", "schema_version", n.SchemaVersion)
	if n.Seed != 0 {
		fmt.Fprintf(&b, ",%q:%d", "seed", n.Seed)
	}
	b.WriteByte('}')
	return []byte(b.String())
}

// canonicalFloat formats a float for the canonical encoding: integral
// values print without exponent or decimal point, everything else in
// Go's shortest form that round-trips to the same float64.
func canonicalFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Hash returns the spec's content address: the hex SHA-256 of its
// canonical encoding. Two specs hash equal iff they describe the same
// job, regardless of field spelling, seed redundancy, or JSON layout.
func (s JobSpec) Hash() string {
	sum := sha256.Sum256(s.MarshalCanonical())
	return hex.EncodeToString(sum[:])
}

// Env builds the harness environment the spec describes. It resolves
// the fault plan (re-seeded when Seed is set) and applies the model
// overrides to the calibrated default; errors mirror Validate's typed
// classification. The experiment ID plays no part here — resolve it
// against a Registry separately.
func (s JobSpec) Env() (Env, error) {
	if s.Nodes != 0 && (s.Nodes < 2 || s.Nodes > 128 || s.Nodes&(s.Nodes-1) != 0) {
		return Env{}, fmt.Errorf("%w: %d (want a power of two in 2..128, or 0)", ErrBadNodes, s.Nodes)
	}
	opts := []Option{WithQuick(s.Quick), WithRackNodes(s.Nodes)}
	if s.Fleet != nil {
		if s.FaultPlan != "" {
			return Env{}, fmt.Errorf("%w: a fleet block cannot carry fault plan %q",
				ErrBadFleetExperiment, s.FaultPlan)
		}
		if err := s.Fleet.check(); err != nil {
			return Env{}, err
		}
		opts = append(opts,
			WithFleetNodes(s.Fleet.Nodes),
			WithFleetScheduler(s.Fleet.Scheduler),
			WithFleetMTBF(s.Fleet.MTBF),
			WithFleetDuration(vclock.Time(s.Fleet.DurationS)*vclock.Second),
			WithFleetHealth(vclock.Time(s.Fleet.HealthS)*vclock.Second),
			WithFleetSeed(s.Seed))
	}
	if s.FaultPlan != "" {
		plan, err := simfault.ByName(s.FaultPlan)
		if err != nil {
			return Env{}, fmt.Errorf("%w: %q", ErrUnknownFaultPlan, s.FaultPlan)
		}
		if s.Seed != 0 {
			reseeded := *plan
			reseeded.Seed = s.Seed
			plan = &reseeded
		}
		opts = append(opts, WithFaults(plan))
	} else if s.Seed != 0 && s.Fleet == nil {
		return Env{}, fmt.Errorf("%w: seed %d would re-roll nothing", ErrBadSeed, s.Seed)
	}
	model := core.DefaultModel()
	for key, v := range s.Model {
		if err := checkModelOverride(key, v); err != nil {
			return Env{}, err
		}
		applyModelOverride(&model, key, v)
	}
	opts = append(opts, WithModel(model))
	return DefaultEnv(opts...), nil
}

// applyModelOverride sets one validated knob on the model.
func applyModelOverride(m *core.Model, key string, v float64) {
	switch key {
	case ModelCacheCapture:
		m.CacheCapture = v != 0
	case ModelThreadLatencyHiding:
		m.ThreadLatencyHiding = v != 0
	case ModelOSCorePenalty:
		m.OSCorePenalty = v
	case ModelStreamBankLimit:
		m.Stream.BankLimit = v != 0
	case ModelStreamBankPenalty:
		m.Stream.BankPenalty = v
	}
}

// modelToOverrides expresses a Model as the full override map.
func modelToOverrides(m core.Model) map[string]float64 {
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	return map[string]float64{
		ModelCacheCapture:        b2f(m.CacheCapture),
		ModelThreadLatencyHiding: b2f(m.ThreadLatencyHiding),
		ModelOSCorePenalty:       m.OSCorePenalty,
		ModelStreamBankLimit:     b2f(m.Stream.BankLimit),
		ModelStreamBankPenalty:   m.Stream.BankPenalty,
	}
}

// EnvToSpec inverts Env: it derives the JobSpec that rebuilds env for
// the given experiment ID, normalized. It errors when the environment
// is not representable on the wire — a fault plan outside the named
// catalog, or a tracer (per-request state, never part of a job's
// identity) would silently change what a cache key means.
func EnvToSpec(experiment string, env Env) (JobSpec, error) {
	spec := JobSpec{
		SchemaVersion: JobSpecSchemaVersion,
		Experiment:    experiment,
		Quick:         env.Quick,
		Nodes:         env.RackNodes,
	}
	if env.FleetNodes != 0 || env.FleetScheduler != "" || env.FleetMTBF != "" ||
		env.FleetDuration != 0 || env.FleetHealth != 0 || env.FleetSeed != 0 {
		if env.Faults.Enabled() {
			return JobSpec{}, fmt.Errorf("%w: a fleet environment cannot carry fault plan %q",
				ErrBadFleetExperiment, env.Faults.Name)
		}
		spec.Fleet = &FleetSpec{
			Nodes:     env.FleetNodes,
			DurationS: env.FleetDuration.Seconds(),
			MTBF:      env.FleetMTBF,
			Scheduler: env.FleetScheduler,
			HealthS:   env.FleetHealth.Seconds(),
		}
		spec.Seed = env.FleetSeed
	} else if env.Faults.Enabled() {
		plan, err := simfault.ByName(env.Faults.Name)
		if err != nil {
			return JobSpec{}, fmt.Errorf("%w: plan %q is not in the catalog",
				ErrUnknownFaultPlan, env.Faults.Name)
		}
		spec.FaultPlan = plan.Name
		if env.Faults.Seed != plan.Seed {
			spec.Seed = env.Faults.Seed
		}
		reseeded := *plan
		reseeded.Seed = env.Faults.Seed
		if !reflect.DeepEqual(*env.Faults, reseeded) {
			return JobSpec{}, fmt.Errorf("%w: plan %q was modified beyond its seed",
				ErrUnknownFaultPlan, env.Faults.Name)
		}
	}
	def := modelToOverrides(core.DefaultModel())
	for key, v := range modelToOverrides(env.Model) {
		if v == def[key] {
			continue
		}
		if spec.Model == nil {
			spec.Model = make(map[string]float64)
		}
		spec.Model[key] = v
	}
	return spec.Normalize(), nil
}
