//go:build !race

package harness

import (
	"os"
	"testing"

	"maia/internal/simfault"
)

// An explicitly-empty fault plan reproduces every golden snapshot bit
// for bit: threading &simfault.Plan{} through the whole suite is exactly
// the healthy machine. Full-mode (it re-renders all experiments), so it
// is skipped under -race and -short; TestGoldenSnapshots covers the nil
// plan on every build.
func TestEmptyFaultPlanGoldensUnchanged(t *testing.T) {
	if testing.Short() {
		t.Skip("full-mode golden re-render")
	}
	env := DefaultEnv(WithFaults(&simfault.Plan{}))
	if err := VerifyGolden(env, Paper().All(), os.DirFS("testdata/golden")); err != nil {
		t.Fatal(err)
	}
}
