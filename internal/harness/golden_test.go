package harness

import (
	"flag"
	"io/fs"
	"os"
	"testing"
)

// -update regenerates the committed snapshots:
//
//	go test ./internal/harness -run TestGolden -update
var updateGolden = flag.Bool("update", false, "regenerate testdata/golden snapshots")

// Every experiment's full-mode output matches its committed golden
// snapshot byte for byte. This pins the entire Section 6 reproduction:
// a model change that moves any printed number fails here (rerun with
// -update after deliberate changes).
func TestGoldenSnapshots(t *testing.T) {
	env := DefaultEnv() // full mode: snapshots are what `maiabench all` prints
	if *updateGolden {
		if err := UpdateGolden("testdata/golden", env, Paper().All()); err != nil {
			t.Fatal(err)
		}
		return
	}
	if err := VerifyGolden(env, Paper().All(), os.DirFS("testdata/golden")); err != nil {
		t.Fatal(err)
	}
}

// The build-time embedded copies stay in sync with the files on disk.
func TestGoldenEmbeddedInSync(t *testing.T) {
	embedded := EmbeddedGolden()
	for _, e := range Paper().All() {
		disk, err := os.ReadFile("testdata/golden/" + GoldenName(e.ID))
		if err != nil {
			t.Fatalf("%s: %v (regenerate with -update)", e.ID, err)
		}
		emb, err := fs.ReadFile(embedded, GoldenName(e.ID))
		if err != nil {
			t.Fatalf("%s: not embedded: %v", e.ID, err)
		}
		if string(disk) != string(emb) {
			t.Errorf("%s: embedded snapshot differs from disk (stale build?)", e.ID)
		}
	}
}
