package harness

import (
	"fmt"
	"io"

	"maia/internal/simfleet"
	"maia/internal/textplot"
	"maia/internal/vclock"
)

// Fleet-scale experiments: the ext-fleet-* family simulates hundreds of
// Maia nodes with seed-drawn simfault conditions, hard-failure renewal
// processes, a job scheduler, and a remediation loop (package simfleet)
// — generalizing ext-fault-straggler's single-node 92% recovery to
// fleet-wide throughput/utilization/queue-latency curves. Like the
// ext-fault family, the default shapes are fixed here (not read from
// env.Faults), so goldens are a pure function of the model; the
// env.Fleet* fields reshape runs for CLI and maiad fleet jobs.

// fleetExperiments lists the ext-fleet-* fleet-scale studies.
func fleetExperiments() []Experiment {
	return []Experiment{{
		ID:      "ext-fleet-mtbf",
		Title:   "EXTENSION: fleet throughput/utilization vs MTBF, 128 Maia nodes",
		Paper:   "not measured; Weinberg/Allalen (LRZ) and Fang et al. motivate fleet-scale endurance — per-card variance and early-life failures dominate aggregate behavior",
		Section: "fleet",
		Kind:    KindExtension,
		Run:     runExtFleetMTBF,
	}, {
		ID:      "ext-fleet-recovery",
		Title:   "EXTENSION: fleet remediation recovery by failure mode and fleet size",
		Paper:   "not measured; generalizes ext-fault-straggler's 92% single-node recovery to cordon/drain/replace/rebalance at fleet scale",
		Section: "fleet",
		Kind:    KindExtension,
		Run:     runExtFleetRecovery,
	}}
}

// fleetPrices returns the memoized per-condition job price table for
// the environment's model.
func fleetPrices(env Env) (*simfleet.PriceTable, error) {
	return simfleet.TableForModel(env.Model, env.Node, 1)
}

// fleetCap applies env.FleetNodes to a default fleet size.
func fleetCap(env Env, nodes int) int {
	if env.FleetNodes > 0 && env.FleetNodes < nodes {
		return env.FleetNodes
	}
	return nodes
}

// fleetConfig seeds a simfleet config with the env's fleet shaping.
func fleetConfig(env Env, prices *simfleet.PriceTable, duration vclock.Time) simfleet.Config {
	if env.FleetDuration > 0 {
		duration = env.FleetDuration
	}
	return simfleet.Config{
		Duration:    duration,
		Seed:        env.FleetSeed,
		Scheduler:   env.FleetScheduler,
		HealthEvery: env.FleetHealth,
		Prices:      prices,
	}
}

// fmtFleetDur formats MTBF/MTTR spans in operator units.
func fmtFleetDur(d vclock.Time) string {
	switch {
	case d <= 0:
		return "-"
	case d >= 3600*vclock.Second:
		return fmt.Sprintf("%gh", d.Seconds()/3600)
	case d >= 60*vclock.Second:
		return fmt.Sprintf("%gmin", d.Seconds()/60)
	}
	return d.String()
}

// fmtPct formats a ratio as a percentage.
func fmtPct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// runExtFleetMTBF sweeps the MTBF profile catalog over a fixed fleet
// with sampled per-node conditions and the remediation loop on: as the
// failure rate climbs, throughput and utilization fall while queue
// latency, requeues, and repairs climb — the endurance narrative as a
// curve. A footer quantifies what remediation buys by replaying the
// harshest profile with the loop off.
func runExtFleetMTBF(w io.Writer, env Env) error {
	prices, err := fleetPrices(env)
	if err != nil {
		return err
	}
	nodes := fleetCap(env, simfleet.DefaultNodes)
	duration := 1200 * vclock.Second
	if env.Quick {
		duration = 400 * vclock.Second
	}
	profiles := simfleet.ProfileNames()
	if env.FleetMTBF != "" {
		profiles = []string{env.FleetMTBF}
	}
	t := textplot.NewTable(fmt.Sprintf("profile (%d nodes)", nodes),
		"mtbf", "mttr", "jobs/hr", "util", "queue p99", "failures", "requeued", "replaced", "rebalanced")
	for _, name := range profiles {
		profile, err := simfleet.ProfileByName(name)
		if err != nil {
			return err
		}
		cfg := fleetConfig(env, prices, duration)
		cfg.Nodes = nodes
		cfg.Profile = name
		cfg.Remediate = true
		st, err := simfleet.Run(cfg)
		if err != nil {
			return err
		}
		t.Row(name, fmtFleetDur(profile.MTBF), fmtFleetDur(profile.MTTR),
			fmt.Sprintf("%.0f", st.Throughput), fmtPct(st.Utilization), st.QueueP99,
			st.HardFailures, st.Requeues, st.Replaced, st.Rebalanced)
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	harsh := profiles[len(profiles)-1]
	cfg := fleetConfig(env, prices, duration)
	cfg.Nodes = nodes
	cfg.Profile = harsh
	cfg.Remediate = false
	off, err := simfleet.Run(cfg)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w,
		"remediation off under %s: %.0f jobs/hr at %s utilization, %d jobs lost, struck nodes dead to the horizon\n",
		harsh, off.Throughput, fmtPct(off.Utilization), off.Lost)
	return err
}

// runExtFleetRecovery measures what the remediation loop recovers, per
// failure mode: a saturated fleet pinned to each condition runs with
// the loop off, on, and healthy, and the recovered column is the share
// of the lost capacity the loop wins back. The single-node line pins
// the fleet loop to ext-fault-straggler's 92% result, and the sweep
// table scales the sampled-condition fleet from 8 to 512 nodes.
func runExtFleetRecovery(w io.Writer, env Env) error {
	prices, err := fleetPrices(env)
	if err != nil {
		return err
	}
	duration := 900 * vclock.Second
	if env.Quick {
		duration = 300 * vclock.Second
	}
	nodes := fleetCap(env, 64)
	run := func(condition string, remediate bool) (simfleet.Stats, error) {
		cfg := fleetConfig(env, prices, duration)
		cfg.Nodes = nodes
		cfg.Profile = "none"
		cfg.Condition = condition
		cfg.Remediate = remediate
		cfg.Load = 1.5 // saturate so completions measure capacity
		return simfleet.Run(cfg)
	}
	healthy, err := run(simfleet.ConditionHealthy, false)
	if err != nil {
		return err
	}
	t := textplot.NewTable(fmt.Sprintf("condition (%d nodes, saturated)", nodes),
		"degraded", "remediated", "healthy", "recovered", "rebalanced", "replaced", "tolerated")
	for _, cond := range []string{"phi-straggler", "thermal-throttle", "lossy-pcie", "phi0-down"} {
		degraded, err := run(cond, false)
		if err != nil {
			return err
		}
		remediated, err := run(cond, true)
		if err != nil {
			return err
		}
		recovered := "-"
		if gap := healthy.Throughput - degraded.Throughput; gap > 0 {
			recovered = fmt.Sprintf("%.0f%%", 100*(remediated.Throughput-degraded.Throughput)/gap)
		}
		t.Row(cond,
			fmt.Sprintf("%.0f/hr", degraded.Throughput),
			fmt.Sprintf("%.0f/hr", remediated.Throughput),
			fmt.Sprintf("%.0f/hr", healthy.Throughput),
			recovered, remediated.Rebalanced, remediated.Replaced, remediated.Tolerated)
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w,
		"phi0-down is tolerated, not replaced: host fallback outruns MG offload on this mix, so the loop keeps the survivors serving"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w,
		"lossy-pcie recovery is negative at this horizon: each replacement parks a working node for ~10min, which only pays back over runs much longer than the MTTR"); err != nil {
		return err
	}

	pinCfg := fleetConfig(env, prices, 600*vclock.Second)
	pinCfg.Nodes = 1
	pinCfg.Profile = "none"
	pinCfg.Condition = "phi-straggler"
	pinCfg.Remediate = true
	pin, err := simfleet.Run(pinCfg)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"single node, phi-straggler: the loop's rebalance recovers %.0f%% of the straggler-induced slowdown (matches ext-fault-straggler)\n",
		pin.RecoveryPct); err != nil {
		return err
	}

	sweep := []int{8, 64, 512}
	if env.Quick {
		sweep = []int{8, 64}
	}
	if env.FleetNodes > 0 {
		var capped []int
		for _, n := range sweep {
			if n <= env.FleetNodes {
				capped = append(capped, n)
			}
		}
		if len(capped) == 0 {
			capped = []int{env.FleetNodes}
		}
		sweep = capped
	}
	sweepDuration := 600 * vclock.Second
	if env.Quick {
		sweepDuration = 200 * vclock.Second
	}
	st := textplot.NewTable("fleet (sampled conditions, steady MTBF)",
		"degraded at start", "jobs/hr", "util", "queue p99", "failures", "replaced", "rebalanced")
	for _, n := range sweep {
		cfg := fleetConfig(env, prices, sweepDuration)
		cfg.Nodes = n
		cfg.Profile = "steady"
		cfg.Remediate = true
		s, err := simfleet.Run(cfg)
		if err != nil {
			return err
		}
		st.Row(fmt.Sprintf("%d nodes", n), s.DegradedStart,
			fmt.Sprintf("%.0f", s.Throughput), fmtPct(s.Utilization), s.QueueP99,
			s.HardFailures, s.Replaced, s.Rebalanced)
	}
	return st.Fprint(w)
}
