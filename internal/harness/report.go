package harness

import (
	"errors"
	"fmt"
	"io"

	"maia/internal/apps/cart3d"
	"maia/internal/apps/overflow"
	"maia/internal/iosim"
	"maia/internal/machine"
	"maia/internal/memsim"
	"maia/internal/npb"
	"maia/internal/pcie"
	"maia/internal/simmpi"
	"maia/internal/simomp"
	"maia/internal/stats"
	"maia/internal/textplot"
)

// The report card: every headline claim of the paper, the value measured
// from this simulation, and a PASS/FAIL verdict on the shape. This is
// EXPERIMENTS.md as an executable.

// reportExperiments lists the executable report card.
func reportExperiments() []Experiment {
	return []Experiment{{
		ID:      "report",
		Title:   "Reproduction report card — every headline claim, checked",
		Paper:   "the paper's qualitative findings, § by §",
		Section: "summary",
		Kind:    KindReport,
		Run:     runReport,
	}}
}

// check is one report-card row.
type check struct {
	id       string
	claim    string
	measured string
	pass     bool
}

func runReport(w io.Writer, env Env) error {
	var rows []check
	add := func(id, claim, measured string, pass bool) {
		rows = append(rows, check{id, claim, measured, pass})
	}

	node := env.Node
	m := env.Model
	// Under a fault plan the report re-prices on the degraded machine;
	// paper-range checks are then expected to flag the slowdowns.
	faultOpt := simmpi.WithFaultPlan(env.Faults)

	// --- Figure 4: STREAM shape.
	cfg := memsim.DefaultStreamConfig()
	triad := func(th int) float64 {
		return memsim.StreamCurve(node, machine.Phi0, []int{th}, cfg)[0].TriadGBs
	}
	t59, t118, t177 := triad(59), triad(118), triad(177)
	add("fig4", "Phi triad 180 GB/s @59/118 threads, ~140 beyond 128 streams",
		fmt.Sprintf("%.0f / %.0f / %.0f GB/s", t59, t118, t177),
		t59 == t118 && t59 > 170 && t177 < t118 && t177 > 130)

	// --- Figure 5: latency hierarchy.
	phiMem := memsim.ChaseLatency(memsim.MustHierarchy(node.PhiProc), 8<<20, 1).LatencyNs
	hostMem := memsim.ChaseLatency(memsim.MustHierarchy(node.HostProc), 64<<20, 1).LatencyNs
	add("fig5", "Phi memory latency ~3.6x the host's (295 vs 81 ns)",
		fmt.Sprintf("%.0f vs %.0f ns", phiMem, hostMem),
		phiMem/hostMem > 3 && phiMem/hostMem < 4)

	// --- Figures 8-9: the software update.
	pre, post := pcie.NewStack(pcie.PreUpdate), pcie.NewStack(pcie.PostUpdate)
	g1 := post.Bandwidth(pcie.HostPhi1, 4<<20) / pre.Bandwidth(pcie.HostPhi1, 4<<20)
	add("fig8/9", "post-update lifts host-Phi1 4MB bandwidth 7-13x and kills the asymmetry",
		fmt.Sprintf("gain %.1fx, post asymmetry %.2f", g1,
			post.Bandwidth(pcie.HostPhi0, 4<<20)/post.Bandwidth(pcie.HostPhi1, 4<<20)),
		g1 >= 7 && g1 <= 13.5)

	// --- Figure 10: threads/core vs MPI performance.
	hostBW, err := simmpi.RingBandwidth(simmpi.Config{Ranks: simmpi.HostPlacement(16, 1)}, 64<<10, 2, faultOpt)
	if err != nil {
		return err
	}
	phi1BW, err := simmpi.RingBandwidth(simmpi.Config{Ranks: simmpi.PhiPlacement(machine.Phi0, 59, 1)}, 64<<10, 2, faultOpt)
	if err != nil {
		return err
	}
	phi4BW, err := simmpi.RingBandwidth(simmpi.Config{Ranks: simmpi.PhiPlacement(machine.Phi0, 236, 4)}, 64<<10, 2, faultOpt)
	if err != nil {
		return err
	}
	add("fig10", "host over Phi 1.3-3.5x (1t/core), 24-54x (4t/core)",
		fmt.Sprintf("%.1fx / %.1fx", hostBW/phi1BW, hostBW/phi4BW),
		hostBW/phi1BW >= 1.2 && hostBW/phi1BW <= 4 && hostBW/phi4BW >= 20 && hostBW/phi4BW <= 60)

	// --- Figure 13: the allgather jump.
	agCfg := simmpi.Config{Ranks: simmpi.PhiPlacement(machine.Phi0, 64, 1)}
	ag2, err := simmpi.CollectiveTime(agCfg, simmpi.AllgatherKind, 2048, 1, faultOpt)
	if err != nil {
		return err
	}
	ag4, err := simmpi.CollectiveTime(agCfg, simmpi.AllgatherKind, 4096, 1, faultOpt)
	if err != nil {
		return err
	}
	add("fig13", "abrupt jump at 2-4 KB (algorithm switch)",
		fmt.Sprintf("4KB/2KB time ratio %.1fx", ag4.Seconds()/ag2.Seconds()),
		ag4.Seconds()/ag2.Seconds() > 2.2)

	// --- Figure 14: Alltoall memory wall.
	add("fig14", "236 ranks run Alltoall only to 4 KB on the 8 GB card",
		fmt.Sprintf("4KB fits: %v; 8KB fits: %v",
			simmpi.AlltoallFeasible(machine.Phi0, node, 236, 4<<10),
			simmpi.AlltoallFeasible(machine.Phi0, node, 236, 8<<10)),
		simmpi.AlltoallFeasible(machine.Phi0, node, 236, 4<<10) &&
			!simmpi.AlltoallFeasible(machine.Phi0, node, 236, 8<<10))

	// --- Figure 15: OpenMP overheads.
	hostRT := simomp.New(machine.HostPartition(node, 1), simomp.WithFaultPlan(env.Faults))
	phiRT := simomp.New(machine.PhiThreadsPartition(node, machine.Phi0, 236), simomp.WithFaultPlan(env.Faults))
	var ratios []float64
	for _, c := range simomp.Constructs() {
		ratios = append(ratios, simomp.MeasureSyncOverhead(phiRT, c).Seconds()/
			simomp.MeasureSyncOverhead(hostRT, c).Seconds())
	}
	gm := stats.GeoMean(ratios)
	add("fig15", "every OpenMP construct ~10x dearer on the Phi",
		fmt.Sprintf("geomean ratio %.1fx (range %.1f-%.1f)", gm, stats.Min(ratios), stats.Max(ratios)),
		gm > 5 && gm < 20)

	// --- Figure 17: I/O.
	wRatio := iosim.WriteBandwidthMBs(machine.Host, 64<<20) / iosim.WriteBandwidthMBs(machine.Phi0, 64<<20)
	rRatio := iosim.ReadBandwidthMBs(machine.Host, 64<<20) / iosim.ReadBandwidthMBs(machine.Phi0, 64<<20)
	add("fig17", "host writes 2.6x and reads 3.9x faster than the Phi",
		fmt.Sprintf("%.1fx / %.1fx", wRatio, rRatio),
		wRatio > 2.3 && wRatio < 2.9 && rRatio > 3.5 && rRatio < 4.3)

	// --- Figure 19: the NPB-OpenMP verdict.
	mgHost, mgPhi, err := npb.OMPThreadSweep(m, npb.MG, npb.ClassC, node)
	if err != nil {
		return err
	}
	btHost, btPhi, err := npb.OMPThreadSweep(m, npb.BT, npb.ClassC, node)
	if err != nil {
		return err
	}
	cgHost, cgPhi, err := npb.OMPThreadSweep(m, npb.CG, npb.ClassC, node)
	if err != nil {
		return err
	}
	mgBest, btBest, cgBest := npb.BestPhi(mgPhi), npb.BestPhi(btPhi), npb.BestPhi(cgPhi)
	add("fig19", "MG wins on the Phi; BT/CG (and the rest) lose, CG hardest",
		fmt.Sprintf("MG %.2fx, BT %.2fx, CG %.2fx (host/bestPhi)",
			mgHost.Gflops/mgBest.Gflops, btHost.Gflops/btBest.Gflops, cgHost.Gflops/cgBest.Gflops),
		mgHost.Gflops < mgBest.Gflops && btHost.Gflops > btBest.Gflops &&
			cgHost.Gflops/cgBest.Gflops > btHost.Gflops/btBest.Gflops)

	// --- Figure 20: FT's memory wall.
	_, ftErr := npb.MPIRun(m, npb.FT, npb.ClassC, machine.Phi0, 64, node)
	add("fig20", "FT class C does not fit the Phi's 8 GB (needs ~10 GB)",
		fmt.Sprintf("OOM: %v", errors.Is(ftErr, npb.ErrOOM)),
		errors.Is(ftErr, npb.ErrOOM))

	// --- Figure 21: Cart3D.
	c3Host, c3Phi := cart3d.Fig21(m, node)
	c3Best := cart3d.Best(c3Phi)
	add("fig21", "host ~2x the best Phi; best at 4 threads/core",
		fmt.Sprintf("%.2fx, best at %d t/core", c3Host.Gflops/c3Best.Gflops, c3Best.Partition.ThreadsPerCore),
		c3Host.Gflops/c3Best.Gflops > 1.4 && c3Host.Gflops/c3Best.Gflops < 2.6 &&
			c3Best.Partition.ThreadsPerCore == 4)

	// --- Figures 22-23: OVERFLOW.
	ofHost, ofPhi, err := overflow.Fig22(m, node)
	if err != nil {
		return err
	}
	r1616 := ofHost[overflow.Combo{Ranks: 16, Threads: 1}]
	r116 := ofHost[overflow.Combo{Ranks: 1, Threads: 16}]
	p828 := ofPhi[overflow.Combo{Ranks: 8, Threads: 28}]
	p414 := ofPhi[overflow.Combo{Ranks: 4, Threads: 14}]
	add("fig22", "host best 16x1 / worst 1x16; Phi best 8x28 / worst 4x14; gap ~1.8x",
		fmt.Sprintf("host %.2f->%.2f s, Phi %.2f->%.2f s, gap %.2fx",
			r1616.Seconds(), r116.Seconds(), p828.Seconds(), p414.Seconds(),
			p828.Seconds()/r1616.Seconds()),
		r1616 < r116 && p828 < p414 && p828.Seconds()/r1616.Seconds() > 1.5 &&
			p828.Seconds()/r1616.Seconds() < 2.5)

	hostOnly, err := overflow.HostOnlyStepTime(m, node)
	if err != nil {
		return err
	}
	twoHosts, err := overflow.TwoHostsStepTime(m, node)
	if err != nil {
		return err
	}
	symPost, err := overflow.SymmetricStepTime(m, node, overflow.SymmetricConfig{
		HostCombo: overflow.Combo{Ranks: 16, Threads: 1},
		PhiCombo:  overflow.Combo{Ranks: 8, Threads: 14},
		Software:  pcie.PostUpdate})
	if err != nil {
		return err
	}
	add("fig23", "symmetric beats one host (paper 1.9x) but loses to two hosts",
		fmt.Sprintf("%.2fx vs host-only; two hosts %.2fx", hostOnly.Seconds()/symPost.Seconds(),
			hostOnly.Seconds()/twoHosts.Seconds()),
		symPost < hostOnly && symPost > twoHosts)

	// --- Figure 24: loop collapse + OS core.
	g236, err := npb.MGCollapseGflops(m, npb.ClassC, machine.PhiThreadsPartition(node, machine.Phi0, 236), false)
	if err != nil {
		return err
	}
	g236c, err := npb.MGCollapseGflops(m, npb.ClassC, machine.PhiThreadsPartition(node, machine.Phi0, 236), true)
	if err != nil {
		return err
	}
	hostC0, err := npb.MGCollapseGflops(m, npb.ClassC, machine.HostPartition(node, 1), false)
	if err != nil {
		return err
	}
	hostC1, err := npb.MGCollapseGflops(m, npb.ClassC, machine.HostPartition(node, 1), true)
	if err != nil {
		return err
	}
	add("fig24", "collapse gains 25%+ on the Phi, loses ~1% on the host",
		fmt.Sprintf("Phi(236t) %+.0f%%, host %+.1f%%", (g236c/g236-1)*100, (hostC1/hostC0-1)*100),
		g236c/g236 > 1.2 && hostC1 < hostC0 && hostC1 > 0.95*hostC0)

	// --- Figure 25: MG's three modes.
	mg177, err := npb.OMPTime(m, npb.MG, npb.ClassC, machine.PhiThreadsPartition(node, machine.Phi0, 177))
	if err != nil {
		return err
	}
	offWhole, err := npb.MGOffload(m, npb.ClassC, node, npb.OffloadWhole)
	if err != nil {
		return err
	}
	add("fig25", "native Phi MG beats native host (paper +27%); all offload modes far below",
		fmt.Sprintf("Phi %.1f vs host %.1f GF; best offload %.1f GF",
			mg177.Gflops, mgHost.Gflops, offWhole.Gflops),
		mg177.Gflops > mgHost.Gflops && offWhole.Gflops < mgHost.Gflops)

	// --- Render.
	t := textplot.NewTable("figure", "claim", "measured", "verdict")
	passCount := 0
	for _, r := range rows {
		verdict := "PASS"
		if r.pass {
			passCount++
		} else {
			verdict = "FAIL"
		}
		t.Row(r.id, r.claim, r.measured, verdict)
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%d/%d headline claims reproduce\n", passCount, len(rows))
	return err
}
