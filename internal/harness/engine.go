package harness

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"maia/internal/simtrace"
)

// ResultSchemaVersion is the Result wire-format version: bumped on any
// change to the JSON field set or meanings, so cached results and HTTP
// responses can't silently drift between builds.
const ResultSchemaVersion = 1

// Result is the metadata of one experiment executed by the engine. It
// doubles as a versioned wire type: the JSON field tags are part of the
// maiad response format and the -benchjson file format, pinned by a
// golden encode/decode test. Encode via Wire so SchemaVersion and the
// flattened Error are populated.
type Result struct {
	// SchemaVersion is the wire-format version (ResultSchemaVersion);
	// zero on freshly-computed results until Wire stamps it.
	SchemaVersion int `json:"schema_version,omitempty"`
	// ID and Title identify the experiment.
	ID    string `json:"id"`
	Title string `json:"title,omitempty"`
	// Index is the experiment's position in presentation order.
	Index int `json:"index"`
	// Wall is the host wall-clock time the experiment took (the virtual
	// times it simulates are unaffected by scheduling); it encodes as
	// integer nanoseconds.
	Wall time.Duration `json:"wall_ns"`
	// Bytes is the size of the experiment's rendered output.
	Bytes int `json:"output_bytes"`
	// Mallocs and AllocBytes are the heap activity (object count and
	// cumulative bytes) observed while the experiment ran. They are
	// process-wide runtime.MemStats deltas: exact with one worker,
	// approximate (overlapping) with several.
	Mallocs    uint64 `json:"mallocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
	// Error is the wire form of Err, filled in by Wire.
	Error string `json:"error,omitempty"`
	// Err is the experiment's failure, if any. It never crosses the
	// wire directly — Wire flattens it to Error.
	Err error `json:"-"`
}

// Wire returns the result ready for encoding: SchemaVersion stamped
// with the current version and Err flattened into Error.
func (r Result) Wire() Result {
	r.SchemaVersion = ResultSchemaVersion
	if r.Err != nil {
		r.Error = r.Err.Error()
	}
	return r
}

// Render writes e's framed output — header, paper line, body, trailing
// blank line — exactly as RunAll emits it. Concatenating renders in
// presentation order therefore reproduces RunAll byte for byte.
func Render(w io.Writer, e Experiment, env Env) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\npaper: %s\n", e.ID, e.Title, e.Paper); err != nil {
		return err
	}
	if err := e.Run(w, env); err != nil {
		return fmt.Errorf("harness: %s: %w", e.ID, err)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderBytes returns e's framed output as a byte slice.
func RenderBytes(e Experiment, env Env) ([]byte, error) {
	var buf bytes.Buffer
	err := Render(&buf, e, env)
	return buf.Bytes(), err
}

// RunExperiments executes exps on a pool of workers goroutines, each
// experiment against its own Env clone, and writes the buffered outputs
// to w in slice order as they become available — so the bytes written
// are identical to rendering the slice sequentially, regardless of
// worker count or completion order. Like Registry.RunAll, output stops
// at the first experiment that fails (its error is returned);
// experiments after it still execute and report through the returned
// Results, which are indexed in slice order.
//
// With tracing enabled (env.Tracer non-nil), each experiment records
// into a private child tracer whose process name is the experiment ID;
// the children are merged into env.Tracer in slice order after all
// workers finish, so the merged trace is deterministic for any worker
// count.
func RunExperiments(w io.Writer, env Env, exps []Experiment, workers int) ([]Result, error) {
	n := len(exps)
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	results := make([]Result, n)
	bufs := make([]bytes.Buffer, n)
	ready := make([]chan struct{}, n)
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	var children []*simtrace.Tracer
	if env.Tracer != nil {
		children = make([]*simtrace.Tracer, n)
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				e := exps[i]
				cenv := env.Clone()
				if children != nil {
					children[i] = simtrace.New()
					children[i].SetProcess(e.ID)
					cenv.Tracer = children[i]
				}
				var m0, m1 runtime.MemStats
				runtime.ReadMemStats(&m0)
				start := time.Now()
				err := Render(&bufs[i], e, cenv)
				wall := time.Since(start)
				runtime.ReadMemStats(&m1)
				results[i] = Result{
					ID:         e.ID,
					Title:      e.Title,
					Index:      i,
					Wall:       wall,
					Bytes:      bufs[i].Len(),
					Mallocs:    m1.Mallocs - m0.Mallocs,
					AllocBytes: m1.TotalAlloc - m0.TotalAlloc,
					Err:        err,
				}
				close(ready[i])
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
	}()

	var firstErr error
	for i := 0; i < n; i++ {
		<-ready[i]
		if firstErr != nil {
			continue
		}
		if results[i].Err != nil {
			firstErr = results[i].Err
			continue
		}
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			firstErr = err
		}
	}
	wg.Wait()
	if children != nil {
		// One capacity reservation for the whole merge: per-child Merge
		// growth would reallocate the parent store up to len(children)
		// times.
		total := 0
		for _, child := range children {
			total += child.SpanCount()
		}
		env.Tracer.Reserve(total)
	}
	for _, child := range children {
		env.Tracer.Merge(child)
	}
	return results, firstErr
}
