package harness

import (
	"bytes"
	"strings"
	"testing"
)

func quickEnv() Env {
	return DefaultEnv(WithQuick(true))
}

// Every registered experiment runs without error and produces output.
func TestAllExperimentsRun(t *testing.T) {
	env := quickEnv()
	for _, e := range Paper().All() {
		var buf bytes.Buffer
		if err := e.Run(&buf, env); err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", e.ID)
		}
	}
}

// The registry covers Table 1 and Figures 4 through 27 without gaps.
func TestRegistryComplete(t *testing.T) {
	reg := Paper()
	want := []string{"table1"}
	for f := 4; f <= 27; f++ {
		want = append(want, "fig"+itoa(f))
	}
	want = append(want, "report", "ext-offload-pipeline", "ext-checkpoint", "ext-profile", "ext-stride", "ext-tasks",
		"ext-rack-npb", "ext-rack-overflow",
		"ext-fault-fabric", "ext-fault-straggler", "ext-fault-failover",
		"ext-fleet-mtbf", "ext-fleet-recovery")
	for _, id := range want {
		if _, ok := reg.ByID(id); !ok {
			t.Errorf("experiment %s missing", id)
		}
	}
	if reg.Len() != len(want) {
		t.Errorf("registry has %d experiments, want %d", reg.Len(), len(want))
	}
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}

// Every experiment carries complete presentation metadata: a section, a
// kind consistent with its ID, and (for figures) the figure number as
// Order.
func TestExperimentMetadata(t *testing.T) {
	for _, e := range Paper().All() {
		if e.Section == "" {
			t.Errorf("%s has no Section", e.ID)
		}
		switch {
		case e.ID == "table1":
			if e.Kind != KindTable {
				t.Errorf("%s kind %v, want table", e.ID, e.Kind)
			}
		case strings.HasPrefix(e.ID, "fig"):
			if e.Kind != KindFigure {
				t.Errorf("%s kind %v, want figure", e.ID, e.Kind)
			}
			if e.ID != "fig"+itoa(e.Order) {
				t.Errorf("%s has Order %d", e.ID, e.Order)
			}
		case strings.HasPrefix(e.ID, "ext-"):
			if e.Kind != KindExtension {
				t.Errorf("%s kind %v, want extension", e.ID, e.Kind)
			}
		default:
			if e.Kind != KindReport {
				t.Errorf("%s kind %v, want report", e.ID, e.Kind)
			}
		}
	}
}

func TestByIDMissing(t *testing.T) {
	if _, ok := Paper().ByID("fig99"); ok {
		t.Fatal("found nonexistent experiment")
	}
}

// Spot-check key numbers in the experiments' printed output.
func TestOutputSpotChecks(t *testing.T) {
	env := quickEnv()
	reg := Paper()
	cases := []struct {
		id       string
		contains []string
	}{
		// The paper quotes 301.4 TF total from a rounded 258.8 TF Phi
		// peak; 15360 cores x 16.8 GF is exactly 258.048, so the
		// arithmetically consistent total is 300.6.
		{"table1", []string{"20.8", "16.8", "1008", "300.6"}},
		{"fig4", []string{"180.0", "140.0"}},
		{"fig5", []string{"81.0", "295.0"}},
		{"fig7", []string{"3.3", "4.6", "6.6"}},
		{"fig14", []string{"OOM"}},
		{"fig15", []string{"REDUCTION", "ATOMIC"}},
		{"fig16", []string{"STATIC", "DYNAMIC", "GUIDED"}},
		{"fig17", []string{"210", "295"}},
		{"fig20", []string{"OOM (8 GB card)"}},
		{"fig24", []string{"host 16t", "-"}},
		{"fig25", []string{"native host (16t)", "offload whole computation"}},
		{"fig27", []string{"invocations"}},
	}
	for _, c := range cases {
		e, ok := reg.ByID(c.id)
		if !ok {
			t.Errorf("%s missing", c.id)
			continue
		}
		var buf bytes.Buffer
		if err := e.Run(&buf, env); err != nil {
			t.Errorf("%s: %v", c.id, err)
			continue
		}
		out := buf.String()
		for _, want := range c.contains {
			if !strings.Contains(out, want) {
				t.Errorf("%s output missing %q:\n%s", c.id, want, out)
			}
		}
	}
}

// RunAll stitches every experiment together with headers.
func TestRunAll(t *testing.T) {
	var buf bytes.Buffer
	if err := Paper().RunAll(&buf, quickEnv()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== table1", "== fig4", "== fig27", "paper:"} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}

// Experiments are deterministic: two runs produce identical bytes.
func TestExperimentsDeterministic(t *testing.T) {
	env := quickEnv()
	reg := Paper()
	for _, id := range []string{"fig8", "fig10", "fig13", "fig22"} {
		e, _ := reg.ByID(id)
		var a, b bytes.Buffer
		if err := e.Run(&a, env); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(&b, env); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%s is nondeterministic", id)
		}
	}
}

// DefaultEnv options compose; the zero-option call is the calibrated
// default.
func TestEnvOptions(t *testing.T) {
	if env := DefaultEnv(); env.Quick || env.Tracer != nil || env.Node == nil {
		t.Error("zero-option DefaultEnv is not the calibrated default")
	}
	env := DefaultEnv(WithQuick(true))
	if !env.Quick {
		t.Error("WithQuick(true) ignored")
	}
	m := env.Model
	m.OSCorePenalty = 99
	env = DefaultEnv(WithModel(m), WithQuick(true))
	if env.Model.OSCorePenalty != 99 || !env.Quick {
		t.Error("WithModel/WithQuick combination ignored")
	}
}

// sizesUpTo covers 1..max multiplicatively and always ends exactly at
// max; a max below the first step must not panic (regression: the
// empty-loop case used to index out[-1]).
func TestSizesUpTo(t *testing.T) {
	env := DefaultEnv()
	cases := []struct {
		max  int
		want []int
	}{
		{0, []int{0}},
		{-5, []int{-5}},
		{1, []int{1}},
		{2, []int{1, 2}},
		{4, []int{1, 4}},
		{64, []int{1, 4, 16, 64}},
		{100, []int{1, 4, 16, 64, 100}},
	}
	for _, c := range cases {
		got := sizesUpTo(env, c.max)
		if len(got) != len(c.want) {
			t.Errorf("sizesUpTo(%d) = %v, want %v", c.max, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("sizesUpTo(%d) = %v, want %v", c.max, got, c.want)
				break
			}
		}
	}
	if got := sizesUpTo(DefaultEnv(WithQuick(true)), 0); len(got) != 1 || got[0] != 0 {
		t.Errorf("quick sizesUpTo(0) = %v, want [0]", got)
	}
}
