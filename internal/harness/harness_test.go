package harness

import (
	"bytes"
	"strings"
	"testing"
)

func quickEnv() Env {
	env := DefaultEnv()
	env.Quick = true
	return env
}

// Every registered experiment runs without error and produces output.
func TestAllExperimentsRun(t *testing.T) {
	env := quickEnv()
	for _, e := range All() {
		var buf bytes.Buffer
		if err := e.Run(&buf, env); err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", e.ID)
		}
	}
}

// The registry covers Table 1 and Figures 4 through 27 without gaps.
func TestRegistryComplete(t *testing.T) {
	want := []string{"table1"}
	for f := 4; f <= 27; f++ {
		want = append(want, "fig"+itoa(f))
	}
	want = append(want, "report", "ext-offload-pipeline", "ext-checkpoint", "ext-profile", "ext-stride", "ext-tasks")
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s missing", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}

// Presentation order: table1 first, figures ascending, extensions last.
func TestAllOrdered(t *testing.T) {
	all := All()
	if all[0].ID != "table1" {
		t.Fatalf("first experiment is %s, want table1", all[0].ID)
	}
	prev := orderKey(all[0].ID)
	for _, e := range all[1:] {
		k := orderKey(e.ID)
		if k <= prev {
			t.Fatalf("experiments out of order at %s", e.ID)
		}
		prev = k
	}
	if last := all[len(all)-1].ID; len(last) < 4 || last[:4] != "ext-" {
		t.Fatalf("extensions must sort last, got %s", last)
	}
}

func TestByIDMissing(t *testing.T) {
	if _, ok := ByID("fig99"); ok {
		t.Fatal("found nonexistent experiment")
	}
}

// Spot-check key numbers in the experiments' printed output.
func TestOutputSpotChecks(t *testing.T) {
	env := quickEnv()
	cases := []struct {
		id       string
		contains []string
	}{
		// The paper quotes 301.4 TF total from a rounded 258.8 TF Phi
		// peak; 15360 cores x 16.8 GF is exactly 258.048, so the
		// arithmetically consistent total is 300.6.
		{"table1", []string{"20.8", "16.8", "1008", "300.6"}},
		{"fig4", []string{"180.0", "140.0"}},
		{"fig5", []string{"81.0", "295.0"}},
		{"fig7", []string{"3.3", "4.6", "6.6"}},
		{"fig14", []string{"OOM"}},
		{"fig15", []string{"REDUCTION", "ATOMIC"}},
		{"fig16", []string{"STATIC", "DYNAMIC", "GUIDED"}},
		{"fig17", []string{"210", "295"}},
		{"fig20", []string{"OOM (8 GB card)"}},
		{"fig24", []string{"host 16t", "-"}},
		{"fig25", []string{"native host (16t)", "offload whole computation"}},
		{"fig27", []string{"invocations"}},
	}
	for _, c := range cases {
		e, ok := ByID(c.id)
		if !ok {
			t.Errorf("%s missing", c.id)
			continue
		}
		var buf bytes.Buffer
		if err := e.Run(&buf, env); err != nil {
			t.Errorf("%s: %v", c.id, err)
			continue
		}
		out := buf.String()
		for _, want := range c.contains {
			if !strings.Contains(out, want) {
				t.Errorf("%s output missing %q:\n%s", c.id, want, out)
			}
		}
	}
}

// RunAll stitches every experiment together with headers.
func TestRunAll(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf, quickEnv()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== table1", "== fig4", "== fig27", "paper:"} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}

// Experiments are deterministic: two runs produce identical bytes.
func TestExperimentsDeterministic(t *testing.T) {
	env := quickEnv()
	for _, id := range []string{"fig8", "fig10", "fig13", "fig22"} {
		e, _ := ByID(id)
		var a, b bytes.Buffer
		if err := e.Run(&a, env); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(&b, env); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%s is nondeterministic", id)
		}
	}
}
