// Shared CLI flag wiring. Every command that runs experiments — maiad,
// maiabench, npbrun — parses the same surface through JobFlags, and the
// parsed flags turn into environments only by way of JobSpec, so a CLI
// invocation and a maiad HTTP job can never drift apart in meaning. New
// run options land here (and in JobSpec) once and appear everywhere.
package harness

import (
	"flag"
	"fmt"
	"io"
	"os"

	"maia/internal/simfault"
	"maia/internal/simtrace"
)

// JobFlags holds the shared experiment-surface flags. Register the
// groups a command supports, then build the environment with Env — the
// values route through a JobSpec, so CLI validation and wire validation
// are the same code.
type JobFlags struct {
	// Quick trims sweep densities (-quick).
	Quick bool
	// Faults names a simfault catalog plan (-faults).
	Faults string
	// Seed re-seeds the fault plan (-seed, 0 = the catalog seed).
	Seed uint64
	// Nodes caps the ext-rack node sweeps (-nodes).
	Nodes int
	// Fleet caps the ext-fleet simulated fleet sizes (-fleet).
	Fleet int
	// Scheduler selects the fleet placement policy (-scheduler).
	Scheduler string
	// Trace is the Chrome trace_event output path (-trace).
	Trace string
	// TraceSummary requests the per-category text rollup (-trace-summary).
	TraceSummary bool

	prog string
}

// AddJobFlags registers the full shared surface on fs and returns the
// bound flags: -quick, -faults, -seed, -nodes, -fleet, -scheduler,
// -trace, -trace-summary.
func AddJobFlags(fs *flag.FlagSet) *JobFlags {
	f := &JobFlags{}
	f.RegisterRun(fs)
	f.RegisterTrace(fs)
	return f
}

// RegisterRun registers the environment-shaping flags (-quick, -faults,
// -seed, -nodes, -fleet, -scheduler).
func (f *JobFlags) RegisterRun(fs *flag.FlagSet) {
	f.prog = fs.Name()
	fs.BoolVar(&f.Quick, "quick", false, "trim sweep densities for a fast pass")
	fs.StringVar(&f.Faults, "faults", "", "run under a named fault plan (see -list for the catalog); incompatible with -verify/-update")
	fs.Uint64Var(&f.Seed, "seed", 0, "re-seed the -faults plan or the -fleet draws (0 = the defaults); incompatible with -verify/-update")
	fs.IntVar(&f.Nodes, "nodes", 0, "cap the ext-rack node sweeps at this power-of-two node count (0 = full 128-node system); incompatible with -verify/-update")
	fs.IntVar(&f.Fleet, "fleet", 0, "cap the ext-fleet simulated fleet sizes at this node count (0 = default shapes); incompatible with -verify/-update")
	fs.StringVar(&f.Scheduler, "scheduler", "", "fleet placement policy for the ext-fleet experiments (see -list for the catalog); incompatible with -verify/-update")
}

// RegisterTrace registers the tracing flags (-trace, -trace-summary).
func (f *JobFlags) RegisterTrace(fs *flag.FlagSet) {
	f.prog = fs.Name()
	fs.StringVar(&f.Trace, "trace", "", "write a Chrome trace_event JSON of all virtual-time spans to this file (load at ui.perfetto.dev)")
	fs.BoolVar(&f.TraceSummary, "trace-summary", false, "print the per-category trace time/bytes summary after the run")
}

// RegisterFaults registers just the fault flags (-faults, -seed) for
// commands that take a degraded machine but no sweep shaping.
func (f *JobFlags) RegisterFaults(fs *flag.FlagSet) {
	f.prog = fs.Name()
	fs.StringVar(&f.Faults, "faults", "", "run under a named fault plan (see simfault catalog)")
	fs.Uint64Var(&f.Seed, "seed", 0, "re-seed the -faults plan (0 = the catalog seed)")
}

// Spec returns the JobSpec the flags describe for one experiment ID.
// The -fleet/-scheduler pair becomes a v2 fleet block (so a fault plan
// alongside it is rejected exactly like on the wire).
func (f *JobFlags) Spec(experiment string) JobSpec {
	spec := JobSpec{
		SchemaVersion: JobSpecSchemaVersion,
		Experiment:    experiment,
		Quick:         f.Quick,
		Nodes:         f.Nodes,
		FaultPlan:     f.Faults,
		Seed:          f.Seed,
	}
	if f.Fleet != 0 || f.Scheduler != "" {
		spec.Fleet = &FleetSpec{Nodes: f.Fleet, Scheduler: f.Scheduler}
	}
	return spec
}

// FaultPlan resolves the -faults/-seed pair to a plan (nil when -faults
// is unset; -seed alone is rejected like everywhere else).
func (f *JobFlags) FaultPlan() (*simfault.Plan, error) {
	if f.Faults == "" {
		if f.Seed != 0 {
			return nil, fmt.Errorf("%w: -seed %d without -faults", ErrBadSeed, f.Seed)
		}
		return nil, nil
	}
	plan, err := simfault.ByName(f.Faults)
	if err != nil {
		return nil, err
	}
	if f.Seed != 0 {
		reseeded := *plan
		reseeded.Seed = f.Seed
		plan = &reseeded
	}
	return plan, nil
}

// NewTracer returns a fresh tracer when a tracing flag asked for one,
// nil otherwise (tracing off at zero cost).
func (f *JobFlags) NewTracer() *simtrace.Tracer {
	if f.Trace == "" && !f.TraceSummary {
		return nil
	}
	return simtrace.New()
}

// Env validates the flag values through a JobSpec and builds the
// environment plus the requested tracer (nil when tracing is off);
// opts apply on top for command-specific additions.
func (f *JobFlags) Env(opts ...Option) (Env, *simtrace.Tracer, error) {
	env, err := f.Spec("").Env()
	if err != nil {
		return Env{}, nil, err
	}
	tracer := f.NewTracer()
	env.Tracer = tracer
	for _, opt := range opts {
		opt(&env)
	}
	return env, tracer, nil
}

// WriteTrace exports what the tracer collected: Chrome JSON to the
// -trace path (when set) and/or the text summary to w. Exports run even
// after a failed run — a partial trace is exactly what explains a
// failure. A nil tracer is a no-op.
func (f *JobFlags) WriteTrace(tracer *simtrace.Tracer, w io.Writer) error {
	if tracer == nil {
		return nil
	}
	if f.Trace != "" {
		out, err := os.Create(f.Trace)
		if err != nil {
			return err
		}
		if err := tracer.WriteChrome(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s: wrote %d spans to %s\n", f.prog, tracer.SpanCount(), f.Trace)
	}
	if f.TraceSummary {
		return tracer.Summary().WriteText(w)
	}
	return nil
}
