package harness

import (
	"fmt"
	"io"

	"maia/internal/apps/overflow"
	"maia/internal/iosim"
	"maia/internal/machine"
	"maia/internal/memsim"
	"maia/internal/npb"
	"maia/internal/offload"
	"maia/internal/pcie"
	"maia/internal/simomp"
	"maia/internal/textplot"
)

// Extension experiments: follow-ups the paper's conclusions point toward
// but does not measure. They are marked ext-* and sort after the
// reproduced figures.

// extensionExperiments lists the ext-* extension studies. They share
// Order 0, so KindExtension's ID tie-break orders them by full suffix.
func extensionExperiments() []Experiment {
	return []Experiment{{
		ID:      "ext-offload-pipeline",
		Title:   "EXTENSION: double-buffered (signal/wait) offload for MG",
		Paper:   "not in the paper; its conclusion asks for granularity/overhead mitigation — this is the async-offload answer",
		Section: "extension",
		Kind:    KindExtension,
		Run:     runExtOffloadPipeline,
	}, {
		ID:      "ext-checkpoint",
		Title:   "EXTENSION: checkpointing a 2 GB solution file per device",
		Paper:   "quantifies Section 6.6's warning for checkpointing codes, with the ship-to-host workaround",
		Section: "extension",
		Kind:    KindExtension,
		Run:     runExtCheckpoint,
	}, {
		ID:      "ext-profile",
		Title:   "EXTENSION: MPInside-style profile of symmetric OVERFLOW",
		Paper:   "quantifies Section 6.9.1.3: compute balance and MPI share behind the symmetric-mode result",
		Section: "extension",
		Kind:    KindExtension,
		Run:     runExtProfile,
	}, {
		ID:      "ext-tasks",
		Title:   "EXTENSION: OpenMP task overheads on host and Phi",
		Paper:   "the EPCC task suites the paper cites ([22],[24]); tasks follow Figure 15's ~10x pattern",
		Section: "extension",
		Kind:    KindExtension,
		Run:     runExtTasks,
	}, {
		ID:      "ext-stride",
		Title:   "EXTENSION: measured stride derates from the cache simulator",
		Paper:   "backs the execution model's stride factors with simulated line-waste measurements",
		Section: "extension",
		Kind:    KindExtension,
		Run:     runExtStride,
	}}
}

func runExtOffloadPipeline(w io.Writer, env Env) error {
	sync, err := npb.MGOffload(env.Model, npb.ClassC, env.Node, npb.OffloadSubroutine,
		offload.WithTracer(env.Tracer, "offload:sync"), offload.WithFaultPlan(env.Faults))
	if err != nil {
		return err
	}
	pipe, err := npb.MGOffloadPipelined(env.Model, npb.ClassC, env.Node,
		offload.WithTracer(env.Tracer, "offload:pipelined"), offload.WithFaultPlan(env.Faults))
	if err != nil {
		return err
	}
	native, err := npb.OMPTime(env.Model, npb.MG, npb.ClassC,
		machine.PhiThreadsPartition(env.Node, machine.Phi0, 177))
	if err != nil {
		return err
	}
	t := textplot.NewTable("schedule", "Gflop/s", "time")
	t.Row("synchronous offload (subroutine)", fmt.Sprintf("%.2f", sync.Gflops), sync.Time)
	t.Row("pipelined offload (subroutine)", fmt.Sprintf("%.2f", pipe.Gflops), pipe.Time)
	t.Row("native Phi (177t), for scale", fmt.Sprintf("%.2f", native.Gflops), native.Time)
	if err := t.Fprint(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "pipelining buys %.2fx but PCIe volume still caps offload below native\n",
		sync.Time.Seconds()/pipe.Time.Seconds())
	return err
}

func runExtCheckpoint(w io.Writer, env Env) error {
	stack := pcie.NewStack(pcie.PostUpdate)
	const solution = 2 << 30
	t := textplot.NewTable("device", "native write", "ship-to-host workaround")
	for _, dev := range []machine.Device{machine.Host, machine.Phi0, machine.Phi1} {
		native, workaround, err := iosim.CheckpointTime(stack, dev, solution, 4<<20)
		if err != nil {
			return err
		}
		// The traced span re-prices the native write (same model call),
		// so the span duration equals the tabulated time.
		if _, err := iosim.TraceTransfer(env.Tracer, "ckpt:"+dev.String(), dev, true, solution, 4<<20, 0); err != nil {
			return err
		}
		t.Row(dev, native, workaround)
	}
	return t.Fprint(w)
}

func runExtProfile(w io.Writer, env Env) error {
	t := textplot.NewTable("configuration", "makespan", "compute balance", "mean MPI", "max MPI")
	for _, sw := range []pcie.Software{pcie.PreUpdate, pcie.PostUpdate} {
		tt, prof, err := overflow.SymmetricStepProfile(env.Model, env.Node, overflow.SymmetricConfig{
			HostCombo: overflow.Combo{Ranks: 16, Threads: 1},
			PhiCombo:  overflow.Combo{Ranks: 8, Threads: 28},
			Software:  sw,
		})
		if err != nil {
			return err
		}
		t.Row(fmt.Sprintf("host 16x1 + 2 Phi 8x28, %v", sw),
			tt, fmt.Sprintf("%.2f", prof.ComputeBalance), prof.MeanMPI, prof.MaxMPI)
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w,
		"compute balance > 1 is the load-imbalance overhead; MPI columns the communication overhead")
	return err
}

func runExtTasks(w io.Writer, env Env) error {
	host := simomp.New(machine.HostPartition(env.Node, 1), simomp.WithFaultPlan(env.Faults))
	phi := simomp.New(machine.PhiThreadsPartition(env.Node, machine.Phi0, 236), simomp.WithFaultPlan(env.Faults))
	t := textplot.NewTable("tasks", "host us/task", "Phi us/task", "ratio")
	for _, n := range []int{64, 256, 1024} {
		h := simomp.MeasureTaskOverhead(host, n).Microseconds()
		p := simomp.MeasureTaskOverhead(phi, n).Microseconds()
		t.Row(n, fmt.Sprintf("%.2f", h), fmt.Sprintf("%.2f", p), fmt.Sprintf("%.1fx", p/h))
	}
	return t.Fprint(w)
}

func runExtStride(w io.Writer, env Env) error {
	t := textplot.NewTable("stride (bytes)", "host derate", "Phi derate")
	strides := []int{16, 32, 64}
	if env.Quick {
		strides = []int{32}
	}
	for _, s := range strides {
		t.Row(s,
			fmt.Sprintf("%.3f", memsim.StrideDerate(machine.SandyBridge(), s)),
			fmt.Sprintf("%.3f", memsim.StrideDerate(machine.XeonPhi5110P(), s)))
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	hostH := memsim.MustHierarchy(machine.SandyBridge())
	phiH := memsim.MustHierarchy(machine.XeonPhi5110P())
	_, err := fmt.Fprintf(w, "random gather (DRAM-resident, 8 B elems): host %.3f GB/s, Phi %.3f GB/s (latency-bound)\n",
		memsim.GatherLatencyBound(hostH, 64<<20, 8, 1),
		memsim.GatherLatencyBound(phiH, 16<<20, 8, 1))
	return err
}
