package harness

import (
	"fmt"
	"io"

	"maia/internal/apps/overflow"
	"maia/internal/npb"
	"maia/internal/simmpi"
	"maia/internal/textplot"
)

// Rack-scale extension experiments: the paper measures one node (and a
// two-host InfiniBand pair); Table 1's system is 128 nodes on an FDR
// InfiniBand hypercube. These experiments sweep the full fabric —
// feasible because node-major worlds price on the hierarchical replay
// (hierrepeat.go), which makes a 2048-rank collective cost
// microseconds of wall clock instead of a 2048-goroutine run.

// rackExperiments lists the ext-rack-* studies.
func rackExperiments() []Experiment {
	return []Experiment{{
		ID:      "ext-rack-npb",
		Title:   "EXTENSION: NPB CG/MG/FT strong-scaled across the 128-node fabric",
		Paper:   "not in the paper; extrapolates Figure 20's MPI kernels over Table 1's full rack",
		Section: "extension",
		Kind:    KindExtension,
		Run:     runExtRackNPB,
	}, {
		ID:      "ext-rack-overflow",
		Title:   "EXTENSION: OVERFLOW time step at rack scale, host-only vs symmetric",
		Paper:   "not in the paper; scales Figure 23's symmetric-mode question to the full system",
		Section: "extension",
		Kind:    KindExtension,
		Run:     runExtRackOverflow,
	}}
}

// rackNodeSweep returns the node counts to sweep: the full rack by
// default, trimmed in quick mode, capped by -nodes, and kept small
// under a fault plan (faulted worlds refuse the replay and run the
// goroutine engine).
func rackNodeSweep(env Env) []int {
	sweep := []int{2, 8, 32, 128}
	if env.Quick {
		sweep = []int{2, 8}
	}
	if env.Faults.Enabled() {
		sweep = []int{2, 4}
	}
	if env.RackNodes > 0 {
		var capped []int
		for _, n := range sweep {
			if n <= env.RackNodes {
				capped = append(capped, n)
			}
		}
		if len(capped) == 0 {
			capped = []int{2}
		}
		sweep = capped
	}
	return sweep
}

func runExtRackNPB(w io.Writer, env Env) error {
	const perNode = 16 // every host core runs a rank
	t := textplot.NewTable("bench", "nodes", "ranks", "Gflop/s", "time", "scaling")
	for _, b := range []npb.Benchmark{npb.CG, npb.MG, npb.FT} {
		var base npb.RackResult
		for i, nodes := range rackNodeSweep(env) {
			r, err := npb.RackRun(env.Model, b, npb.ClassC, nodes, perNode, env.Node,
				simmpi.WithTracer(env.Tracer, fmt.Sprintf("rack:%v", b)),
				simmpi.WithFaultPlan(env.Faults))
			if err != nil {
				return err
			}
			scaling := "1.00x"
			if i == 0 {
				base = r
			} else {
				scaling = fmt.Sprintf("%.2fx", r.Gflops/base.Gflops)
			}
			t.Row(b, nodes, r.Ranks, fmt.Sprintf("%.1f", r.Gflops), r.Time, scaling)
		}
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w,
		"scaling is Gflop/s vs the smallest sweep point; hop-count latency and bisection derating set the roll-off")
	return err
}

func runExtRackOverflow(w io.Writer, env Env) error {
	t := textplot.NewTable("nodes", "host ranks", "total ranks", "host-only step", "symmetric step", "symmetric gain")
	for _, nodes := range rackNodeSweep(env) {
		hostCfg := overflow.RackHostOnly(nodes)
		hostCfg.Faults = env.Faults
		host, err := overflow.RackStepTime(env.Model, env.Node, hostCfg,
			simmpi.WithTracer(env.Tracer, "rack:overflow-host"))
		if err != nil {
			return err
		}
		symCfg := overflow.RackConfig{
			Nodes:     nodes,
			HostCombo: overflow.Combo{Ranks: 16, Threads: 1},
			PhiCombo:  overflow.Combo{Ranks: 8, Threads: 28},
			Faults:    env.Faults,
		}
		sym, err := overflow.RackStepTime(env.Model, env.Node, symCfg,
			simmpi.WithTracer(env.Tracer, "rack:overflow-sym"))
		if err != nil {
			return err
		}
		t.Row(nodes, nodes*16, nodes*symCfg.PerNode(), host, sym,
			fmt.Sprintf("%.2fx", host.Seconds()/sym.Seconds()))
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w,
		"the single-node imbalance story survives at rack scale: the biased balancer overfeeds the Phi ranks on every node")
	return err
}
