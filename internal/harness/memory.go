package harness

import (
	"fmt"
	"io"

	"maia/internal/machine"
	"maia/internal/memsim"
	"maia/internal/textplot"
)

// Table 1 and the memory-subsystem figures (4, 5, 6).

// memoryExperiments lists Table 1 and the memory-subsystem figures.
func memoryExperiments() []Experiment {
	return []Experiment{{
		ID:      "table1",
		Title:   "Characteristics of Maia, SGI Rackable system",
		Paper:   "host 20.8 GF/core & 166.4 GF/socket; Phi 16.8 GF/core & 1008 GF; system 301.4 TF",
		Section: "memory",
		Kind:    KindTable,
		Order:   1,
		Run:     runTable1,
	}, {
		ID:      "fig4",
		Title:   "STREAM triad bandwidth for host and Phi",
		Paper:   "Phi peaks at 180 GB/s (59/118 threads), drops to 140 GB/s beyond 118; host ~76 GB/s",
		Section: "memory",
		Kind:    KindFigure,
		Order:   4,
		Run:     runFig4,
	}, {
		ID:      "fig5",
		Title:   "Memory load latency for host and Phi",
		Paper:   "host 1.5/4.6/15/81 ns (L1/L2/L3/mem); Phi 2.9/22.9/295 ns (L1/L2/mem)",
		Section: "memory",
		Kind:    KindFigure,
		Order:   5,
		Run:     runFig5,
	}, {
		ID:      "fig6",
		Title:   "Read/write memory bandwidth per core",
		Paper:   "host R 12.6/12.3/11.6/7.5, W 10.4/9.5/8.6/7.2 GB/s; Phi R 1.68/0.97/0.50, W 1.54/0.96/0.26",
		Section: "memory",
		Kind:    KindFigure,
		Order:   6,
		Run:     runFig6,
	}}
}

func runTable1(w io.Writer, env Env) error {
	n := env.Node
	sys := machine.NewSystem()
	host, phi := n.HostProc, n.PhiProc
	t := textplot.NewTable("characteristic", "host (per socket)", "coprocessor (per card)")
	t.Row("Processor type", host.Name, phi.Name)
	t.Row("Architecture", host.Architecture, phi.Architecture)
	t.Row("Cores", host.Cores, phi.Cores)
	t.Row("Base frequency (GHz)", host.BaseGHz, phi.BaseGHz)
	t.Row("Floating points/clock", host.FlopsPerClock, phi.FlopsPerClock)
	t.Row("Perf/core (Gflop/s)", host.PeakGflopsPerCore(), phi.PeakGflopsPerCore())
	t.Row("Proc perf (Gflop/s)", host.PeakGflops(), phi.PeakGflops())
	t.Row("SIMD width (bits)", host.SIMDWidthBits, phi.SIMDWidthBits)
	t.Row("Threads/core", host.ThreadsPerCore, phi.ThreadsPerCore)
	t.Row("Multithreading", host.MT, phi.MT)
	t.Row("L1 cache/core", "32 KB(I)+32 KB(D)", "32 KB(I)+32 KB(D)")
	t.Row("L2 cache/core (KB)", 256, 512)
	t.Row("L3 cache (MB, shared)", 20, "-")
	t.Row("Memory type", host.MemTechnology, phi.MemTechnology)
	t.Row("Memory peak BW (GB/s)", host.MemPeakGBs, phi.MemPeakGBs)
	t.Row("Memory/device (GB)", n.HostMemGB, phi.MemGB)
	if err := t.Fprint(w); err != nil {
		return err
	}
	hostTF, phiTF, totalTF := sys.PeakTflops()
	_, err := fmt.Fprintf(w,
		"system: %d nodes, %d host cores (%.1f TF) + %d Phi cores (%.1f TF) = %.1f TF peak, %d GB memory\n",
		sys.Nodes, sys.TotalHostCores(), hostTF, sys.TotalPhiCores(), phiTF, totalTF,
		sys.Nodes*sys.Node.MemGB())
	return err
}

func runFig4(w io.Writer, env Env) error {
	cfg := memsim.DefaultStreamConfig()
	hostThreads := []int{1, 2, 4, 8, 12, 16}
	phiThreads := []int{1, 15, 30, 59, 90, 118, 150, 177, 200, 236}
	t := textplot.NewTable("threads", "host triad GB/s", "Phi0 triad GB/s")
	hostPts := memsim.StreamCurve(env.Node, machine.Host, hostThreads, cfg)
	phiPts := memsim.StreamCurve(env.Node, machine.Phi0, phiThreads, cfg)
	n := len(phiPts)
	var phiYs []float64
	for i := 0; i < n; i++ {
		hostCell := "-"
		if i < len(hostPts) {
			hostCell = fmt.Sprintf("%.1f", hostPts[i].TriadGBs)
		}
		t.Row(fmt.Sprint(phiPts[i].Threads), hostCell, fmt.Sprintf("%.1f", phiPts[i].TriadGBs))
		phiYs = append(phiYs, phiPts[i].TriadGBs)
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	chart := textplot.NewChart(8).
		Series("Phi0 triad GB/s", phiYs).
		XRange("1 thread", "236 threads").
		Render()
	_, err := io.WriteString(w, chart)
	return err
}

func runFig5(w io.Writer, env Env) error {
	// The host's DRAM plateau starts past its 20 MB L3, so the sweep must
	// reach well beyond it even in quick mode.
	minWS := 4 << 10
	maxWS := 64 << 20
	if env.Quick {
		minWS = 1 << 20
	}
	host := memsim.LatencyCurve(env.Node.HostProc, minWS, maxWS)
	phi := memsim.LatencyCurve(env.Node.PhiProc, minWS, maxWS)
	t := textplot.NewTable("working set", "host ns", "Phi ns")
	for i := range host {
		t.Row(byteLabel(host[i].WorkingSetBytes),
			fmt.Sprintf("%.1f", host[i].LatencyNs),
			fmt.Sprintf("%.1f", phi[i].LatencyNs))
	}
	return t.Fprint(w)
}

func runFig6(w io.Writer, env Env) error {
	maxWS := 64 << 20
	if env.Quick {
		maxWS = 4 << 20
	}
	host := memsim.BandwidthCurve(env.Node.HostProc, 4<<10, maxWS)
	phi := memsim.BandwidthCurve(env.Node.PhiProc, 4<<10, maxWS)
	t := textplot.NewTable("working set", "host R GB/s", "host W GB/s", "Phi R GB/s", "Phi W GB/s")
	for i := range host {
		t.Row(byteLabel(host[i].WorkingSetBytes),
			fmt.Sprintf("%.2f", host[i].ReadGBs), fmt.Sprintf("%.2f", host[i].WriteGBs),
			fmt.Sprintf("%.3f", phi[i].ReadGBs), fmt.Sprintf("%.3f", phi[i].WriteGBs))
	}
	return t.Fprint(w)
}

// byteLabel formats a byte count compactly (4KB, 2MB, ...).
func byteLabel(b int) string {
	switch {
	case b >= 1<<30 && b%(1<<30) == 0:
		return fmt.Sprintf("%dGB", b>>30)
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dKB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
