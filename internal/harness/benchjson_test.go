package harness

import (
	"testing"
	"time"
)

// TestBenchRunSlowest pins the -benchjson summary: the run carries a
// top-k slowest table ranked by wall time, with shares of the summed
// experiment wall time.
func TestBenchRunSlowest(t *testing.T) {
	results := []Result{
		{ID: "a", Wall: 1 * time.Second},
		{ID: "b", Wall: 3 * time.Second},
		{ID: "c", Wall: 2 * time.Second},
		{ID: "d", Wall: 4 * time.Second},
	}
	run := NewBenchRun("test", false, 1, 10*time.Second, results)
	if len(run.Slowest) != 4 {
		t.Fatalf("slowest has %d entries, want 4", len(run.Slowest))
	}
	wantOrder := []string{"d", "b", "c", "a"}
	var shareSum float64
	for i, s := range run.Slowest {
		if s.ID != wantOrder[i] {
			t.Errorf("slowest[%d] = %s, want %s", i, s.ID, wantOrder[i])
		}
		shareSum += s.Share
	}
	if run.Slowest[0].WallNs != (4 * time.Second).Nanoseconds() {
		t.Errorf("slowest[0].WallNs = %d", run.Slowest[0].WallNs)
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Errorf("shares sum to %v, want 1", shareSum)
	}
	if got := slowestOf(run.Experiments, 2); len(got) != 2 || got[0].ID != "d" || got[1].ID != "b" {
		t.Errorf("top-2 = %+v", got)
	}
	if got := slowestOf(nil, 5); got != nil {
		t.Errorf("empty runs should have no slowest table, got %+v", got)
	}
}
