package harness

import (
	"fmt"
	"io"

	"maia/internal/pcie"
	"maia/internal/textplot"
	"maia/internal/vclock"
)

// PCIe interconnect figures (7, 8, 9, 18).

// pcieExperiments lists the PCIe/DAPL interconnect figures.
func pcieExperiments() []Experiment {
	return []Experiment{{
		ID:      "fig7",
		Title:   "MPI latency between host and Phi",
		Paper:   "pre: 3.3/4.6/6.3 us; post: 3.3/4.1/6.6 us (host-Phi0 / host-Phi1 / Phi0-Phi1)",
		Section: "interconnect",
		Kind:    KindFigure,
		Order:   7,
		Run:     runFig7,
	}, {
		ID:      "fig8",
		Title:   "MPI bandwidth between host and Phi",
		Paper:   "4MB: pre 1.6 GB/s / 455 MB/s / 444 MB/s; post 6 / 6 / 0.899 GB/s; knees at 8KB and 256KB",
		Section: "interconnect",
		Kind:    KindFigure,
		Order:   8,
		Run:     runFig8,
	}, {
		ID:      "fig9",
		Title:   "Post-update / pre-update MPI bandwidth gain",
		Paper:   "small msgs 1-1.5x; >=256KB: 2-3.8x (h-p0), 7-13x (h-p1), 1.8-2x (p0-p1)",
		Section: "interconnect",
		Kind:    KindFigure,
		Order:   9,
		Run:     runFig9,
	}, {
		ID:      "fig18",
		Title:   "Offload-mode bandwidth between host and Phi",
		Paper:   "~6.4 GB/s for large transfers; Phi1 ~3% lower; dip at 64KB; framing eff 76%/86%",
		Section: "interconnect",
		Kind:    KindFigure,
		Order:   18,
		Run:     runFig18,
	}}
}

func runFig7(w io.Writer, env Env) error {
	pre, post := pcie.NewStack(pcie.PreUpdate), pcie.NewStack(pcie.PostUpdate)
	t := textplot.NewTable("path", "pre-update us", "post-update us")
	for _, p := range pcie.Paths() {
		t.Row(p, fmt.Sprintf("%.1f", pre.Latency(p).Microseconds()),
			fmt.Sprintf("%.1f", post.Latency(p).Microseconds()))
	}
	return t.Fprint(w)
}

func runFig8(w io.Writer, env Env) error {
	pre, post := pcie.NewStack(pcie.PreUpdate), pcie.NewStack(pcie.PostUpdate)
	t := textplot.NewTable("msg size",
		"pre h-p0", "pre h-p1", "pre p0-p1",
		"post h-p0", "post h-p1", "post p0-p1")
	var preH0, postH0 []float64
	sizes := sizesUpTo(env, 4<<20)
	for _, m := range sizes {
		t.Row(byteLabel(m),
			gbs(pre.Bandwidth(pcie.HostPhi0, m)), gbs(pre.Bandwidth(pcie.HostPhi1, m)),
			gbs(pre.Bandwidth(pcie.Phi0Phi1, m)),
			gbs(post.Bandwidth(pcie.HostPhi0, m)), gbs(post.Bandwidth(pcie.HostPhi1, m)),
			gbs(post.Bandwidth(pcie.Phi0Phi1, m)))
		preH0 = append(preH0, pre.Bandwidth(pcie.HostPhi0, m))
		postH0 = append(postH0, post.Bandwidth(pcie.HostPhi0, m))
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	chart := textplot.NewChart(8).
		Series("post-update host-Phi0 GB/s", postH0).
		Series("pre-update host-Phi0 GB/s", preH0).
		XRange(byteLabel(sizes[0]), byteLabel(sizes[len(sizes)-1])).
		Render()
	_, err := io.WriteString(w, chart)
	return err
}

func runFig9(w io.Writer, env Env) error {
	pre, post := pcie.NewStack(pcie.PreUpdate), pcie.NewStack(pcie.PostUpdate)
	t := textplot.NewTable("msg size", "h-p0 gain", "h-p1 gain", "p0-p1 gain")
	for _, m := range sizesUpTo(env, 4<<20) {
		t.Row(byteLabel(m),
			fmt.Sprintf("%.2fx", post.Bandwidth(pcie.HostPhi0, m)/pre.Bandwidth(pcie.HostPhi0, m)),
			fmt.Sprintf("%.2fx", post.Bandwidth(pcie.HostPhi1, m)/pre.Bandwidth(pcie.HostPhi1, m)),
			fmt.Sprintf("%.2fx", post.Bandwidth(pcie.Phi0Phi1, m)/pre.Bandwidth(pcie.Phi0Phi1, m)))
	}
	return t.Fprint(w)
}

func runFig18(w io.Writer, env Env) error {
	cfg := pcie.DefaultDMAConfig()
	if _, err := fmt.Fprintf(w, "PCIe framing efficiency: %.0f%% at 64 B payload, %.0f%% at 128 B\n",
		100*pcie.PacketEfficiency(64), 100*pcie.PacketEfficiency(128)); err != nil {
		return err
	}
	t := textplot.NewTable("transfer size", "host-Phi0 GB/s", "host-Phi1 GB/s")
	var at0, at1 vclock.Time
	for _, m := range sizesUpTo(env, 64<<20) {
		t.Row(byteLabel(m),
			gbs(pcie.OffloadBandwidth(cfg, pcie.HostPhi0, m)),
			gbs(pcie.OffloadBandwidth(cfg, pcie.HostPhi1, m)))
		at0 += pcie.TraceOffloadTransfer(env.Tracer, "dma:host-Phi0", cfg, pcie.HostPhi0, m, at0)
		at1 += pcie.TraceOffloadTransfer(env.Tracer, "dma:host-Phi1", cfg, pcie.HostPhi1, m, at1)
	}
	return t.Fprint(w)
}

// gbs formats a GB/s value adaptively (MB/s below 1 GB/s).
func gbs(v float64) string {
	if v < 1 {
		return fmt.Sprintf("%.0fMB/s", v*1000)
	}
	return fmt.Sprintf("%.2fGB/s", v)
}
