package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"testing"
	"time"
)

// wireResult is the fixed specimen the golden file pins.
func wireResult() Result {
	return Result{
		ID:         "fig5",
		Title:      "STREAM triad bandwidth vs threads",
		Index:      3,
		Wall:       1500 * time.Microsecond,
		Bytes:      388,
		Mallocs:    1234,
		AllocBytes: 56789,
		Err:        errors.New("boom"),
	}
}

// The Result wire encoding is pinned byte-for-byte: maiad cache entries,
// HTTP responses, and -benchjson files all speak this format, so any
// unintended field rename/retype surfaces here as a golden diff (and an
// intended one must bump ResultSchemaVersion alongside the golden).
func TestResultWireGoldenEncode(t *testing.T) {
	got, err := json.MarshalIndent(wireResult().Wire(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	want, err := os.ReadFile("testdata/result_wire.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Result wire encoding drifted:\n got: %s\nwant: %s", got, want)
	}
}

// Decoding the golden bytes recovers the specimen (modulo Err, which
// never crosses the wire — its flattened Error string does).
func TestResultWireGoldenDecode(t *testing.T) {
	data, err := os.ReadFile("testdata/result_wire.json")
	if err != nil {
		t.Fatal(err)
	}
	var got Result
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	want := wireResult().Wire()
	want.Err = nil
	if got != want {
		t.Errorf("decoded result = %+v\nwant %+v", got, want)
	}
	if got.SchemaVersion != ResultSchemaVersion {
		t.Errorf("golden schema version %d != current %d", got.SchemaVersion, ResultSchemaVersion)
	}
}

// Wire stamps the version and flattens the error without touching the
// original; a clean result stays error-free on the wire.
func TestResultWire(t *testing.T) {
	r := Result{ID: "x", Err: errors.New("bad")}
	w := r.Wire()
	if w.SchemaVersion != ResultSchemaVersion || w.Error != "bad" {
		t.Errorf("Wire() = %+v", w)
	}
	if r.SchemaVersion != 0 || r.Error != "" {
		t.Errorf("Wire mutated its receiver: %+v", r)
	}
	if clean := (Result{ID: "y"}).Wire(); clean.Error != "" {
		t.Errorf("clean result grew an error: %+v", clean)
	}
}
