package harness

import (
	"errors"
	"fmt"
	"io"

	"maia/internal/machine"
	"maia/internal/npb"
	"maia/internal/offload"
	"maia/internal/textplot"
)

// NPB figures (19, 20, 24, 25, 26, 27).

// npbExperiments lists the NAS Parallel Benchmark figures.
func npbExperiments() []Experiment {
	return []Experiment{{
		ID:      "fig19",
		Title:   "NPB OpenMP class C on host and Phi",
		Paper:   "host wins everything but MG; 3 threads/core usually best; BT best and CG worst on Phi",
		Section: "npb",
		Kind:    KindFigure,
		Order:   19,
		Run:     runFig19,
	}, {
		ID:      "fig20",
		Title:   "NPB MPI class C on host and Phi",
		Paper:   "FT does not fit the Phi's 8 GB (needs ~10 GB); threads/core optimum varies per benchmark",
		Section: "npb",
		Kind:    KindFigure,
		Order:   20,
		Run:     runFig20,
	}, {
		ID:      "fig24",
		Title:   "OpenMP loop collapse gain for MG on Phi",
		Paper:   "collapse gains 25-28% on Phi, loses ~1% on host(16t); 59/118/177/236 beat 60/120/180/240",
		Section: "npb",
		Kind:    KindFigure,
		Order:   24,
		Run:     runFig24,
	}, {
		ID:      "fig25",
		Title:   "MG in native host, native Phi, and offload modes",
		Paper:   "host 23.5 GF (16t), HT 22.2 GF (32t), Phi 29.9 GF (177t); all offload variants far lower",
		Section: "npb",
		Kind:    KindFigure,
		Order:   25,
		Run:     runFig25,
	}, {
		ID:      "fig26",
		Title:   "Overhead of the three MG offload versions",
		Paper:   "host setup+gather / PCIe transfer / Phi setup+scatter; loop version worst",
		Section: "npb",
		Kind:    KindFigure,
		Order:   26,
		Run:     runFig26,
	}, {
		ID:      "fig27",
		Title:   "Offload invocations and data volume of the three MG versions",
		Paper:   "loop version: most invocations and data; whole-computation: least",
		Section: "npb",
		Kind:    KindFigure,
		Order:   27,
		Run:     runFig27,
	}}
}

func runFig19(w io.Writer, env Env) error {
	t := textplot.NewTable("bench", "host 16t GF",
		"Phi 59t", "Phi 118t", "Phi 177t", "Phi 236t", "host/bestPhi")
	for _, b := range npb.Fig19Benchmarks() {
		host, phi, err := npb.OMPThreadSweep(env.Model, b, npb.ClassC, env.Node)
		if err != nil {
			return err
		}
		best := npb.BestPhi(phi)
		t.Row(b, fmt.Sprintf("%.1f", host.Gflops),
			fmt.Sprintf("%.1f", phi[0].Gflops), fmt.Sprintf("%.1f", phi[1].Gflops),
			fmt.Sprintf("%.1f", phi[2].Gflops), fmt.Sprintf("%.1f", phi[3].Gflops),
			fmt.Sprintf("%.2fx", host.Gflops/best.Gflops))
	}
	return t.Fprint(w)
}

func runFig20(w io.Writer, env Env) error {
	t := textplot.NewTable("bench", "ranks", "host GF", "Phi0 GF")
	run := func(b npb.Benchmark, hostRanks int, phiRanks []int) error {
		host, err := npb.MPIRun(env.Model, b, npb.ClassC, machine.Host, hostRanks, env.Node)
		if err != nil {
			return err
		}
		for i, ranks := range phiRanks {
			hostCell := "-"
			if i == 0 {
				hostCell = fmt.Sprintf("%.1f (%d ranks)", host.Gflops, hostRanks)
			}
			phi, err := npb.MPIRun(env.Model, b, npb.ClassC, machine.Phi0, ranks, env.Node)
			if errors.Is(err, npb.ErrOOM) {
				t.Row(b, ranks, hostCell, "OOM (8 GB card)")
				continue
			}
			if err != nil {
				return err
			}
			t.Row(b, ranks, hostCell, fmt.Sprintf("%.1f", phi.Gflops))
		}
		return nil
	}
	pow2 := []int{64, 128}
	squares := []int{64, 121, 169, 225}
	if env.Quick {
		// One Phi rank count per benchmark family is enough for the quick
		// smoke: it still exercises every benchmark's script and keeps the
		// FT-on-Phi OOM row the tests spot-check.
		pow2 = []int{64}
		squares = []int{64}
	}
	for _, b := range []npb.Benchmark{npb.CG, npb.MG, npb.FT, npb.LU} {
		if err := run(b, 16, pow2); err != nil {
			return err
		}
	}
	for _, b := range []npb.Benchmark{npb.BT, npb.SP} {
		if err := run(b, 16, squares); err != nil {
			return err
		}
	}
	return t.Fprint(w)
}

func runFig24(w io.Writer, env Env) error {
	t := textplot.NewTable("placement", "original GF", "collapsed GF", "gain")
	threads := []int{59, 60, 118, 120, 177, 180, 236, 240}
	if env.Quick {
		threads = []int{59, 60, 236, 240}
	}
	for _, th := range threads {
		part := machine.PhiThreadsPartition(env.Node, machine.Phi0, th)
		g0, err := npb.MGCollapseGflops(env.Model, npb.ClassC, part, false)
		if err != nil {
			return err
		}
		g1, err := npb.MGCollapseGflops(env.Model, npb.ClassC, part, true)
		if err != nil {
			return err
		}
		t.Row(fmt.Sprintf("Phi %dt", th), fmt.Sprintf("%.1f", g0), fmt.Sprintf("%.1f", g1),
			fmt.Sprintf("%+.1f%%", (g1/g0-1)*100))
	}
	hostPart := machine.HostPartition(env.Node, 1)
	h0, err := npb.MGCollapseGflops(env.Model, npb.ClassC, hostPart, false)
	if err != nil {
		return err
	}
	h1, err := npb.MGCollapseGflops(env.Model, npb.ClassC, hostPart, true)
	if err != nil {
		return err
	}
	t.Row("host 16t", fmt.Sprintf("%.1f", h0), fmt.Sprintf("%.1f", h1),
		fmt.Sprintf("%+.1f%%", (h1/h0-1)*100))
	return t.Fprint(w)
}

func runFig25(w io.Writer, env Env) error {
	t := textplot.NewTable("mode", "Gflop/s")
	host, err := npb.OMPTime(env.Model, npb.MG, npb.ClassC, machine.HostPartition(env.Node, 1))
	if err != nil {
		return err
	}
	ht, err := npb.OMPTime(env.Model, npb.MG, npb.ClassC, machine.HostPartition(env.Node, 2))
	if err != nil {
		return err
	}
	t.Row("native host (16t)", fmt.Sprintf("%.1f", host.Gflops))
	t.Row("native host HT (32t)", fmt.Sprintf("%.1f", ht.Gflops))
	for _, th := range []int{59, 118, 177, 236} {
		phi, err := npb.OMPTime(env.Model, npb.MG, npb.ClassC,
			machine.PhiThreadsPartition(env.Node, machine.Phi0, th))
		if err != nil {
			return err
		}
		t.Row(fmt.Sprintf("native Phi (%dt)", th), fmt.Sprintf("%.1f", phi.Gflops))
	}
	for _, v := range npb.MGOffloadVariants() {
		r, err := npb.MGOffload(env.Model, npb.ClassC, env.Node, v,
			offload.WithTracer(env.Tracer, "offload:"+v.String()), offload.WithFaultPlan(env.Faults))
		if err != nil {
			return err
		}
		t.Row(v, fmt.Sprintf("%.2f", r.Gflops))
	}
	return t.Fprint(w)
}

func runFig26(w io.Writer, env Env) error {
	t := textplot.NewTable("variant", "host side", "PCIe", "Phi side", "total overhead")
	for _, v := range npb.MGOffloadVariants() {
		r, err := npb.MGOffload(env.Model, npb.ClassC, env.Node, v,
			offload.WithTracer(env.Tracer, "offload:"+v.String()), offload.WithFaultPlan(env.Faults))
		if err != nil {
			return err
		}
		t.Row(v, r.Report.HostTime, r.Report.TransferTime, r.Report.PhiTime, r.Report.Overhead())
	}
	return t.Fprint(w)
}

func runFig27(w io.Writer, env Env) error {
	t := textplot.NewTable("variant", "invocations", "data in", "data out")
	for _, v := range npb.MGOffloadVariants() {
		r, err := npb.MGOffload(env.Model, npb.ClassC, env.Node, v,
			offload.WithTracer(env.Tracer, "offload:"+v.String()), offload.WithFaultPlan(env.Faults))
		if err != nil {
			return err
		}
		t.Row(v, r.Report.Invocations,
			byteLabel(int(r.Report.BytesIn)), byteLabel(int(r.Report.BytesOut)))
	}
	return t.Fprint(w)
}
