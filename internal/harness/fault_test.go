package harness

import (
	"bytes"
	"testing"

	"maia/internal/simfault"
)

// faultFamily returns the ext-fault-* experiments from the registry.
func faultFamily(t *testing.T) []Experiment {
	t.Helper()
	var fam []Experiment
	for _, e := range Paper().All() {
		if len(e.ID) >= 10 && e.ID[:10] == "ext-fault-" {
			fam = append(fam, e)
		}
	}
	if len(fam) != 3 {
		t.Fatalf("expected 3 ext-fault experiments, registry has %d", len(fam))
	}
	return fam
}

// Every fault experiment embeds its own seeded plan, so two renders are
// byte-identical — the property the golden snapshots rely on.
func TestFaultExperimentsDeterministic(t *testing.T) {
	env := DefaultEnv(WithQuick(true))
	for _, e := range faultFamily(t) {
		first, err := RenderBytes(e, env)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		second, err := RenderBytes(e, env)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("%s: two renders differ under the same seed", e.ID)
		}
	}
}

// Under an injected fault plan the parallel suite runner still produces
// byte-identical output to the sequential one: every fault decision is a
// pure function of (seed, event identity), never goroutine interleaving.
func TestFaultedSuiteParallelMatchesSequential(t *testing.T) {
	env := DefaultEnv(WithQuick(true), WithFaults(simfault.Degraded()))
	reg := Paper()
	// The fault-sensitive cross-section: MPI, OpenMP, offload, the
	// OVERFLOW driver, and the fault family itself.
	var exps []Experiment
	for _, id := range []string{"fig10", "fig12", "fig15", "fig25",
		"ext-offload-pipeline", "ext-fault-fabric", "ext-fault-straggler", "ext-fault-failover"} {
		e, ok := reg.ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing from registry", id)
		}
		exps = append(exps, e)
	}
	var seq, par bytes.Buffer
	if _, err := RunExperiments(&seq, env, exps, 1); err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	if _, err := RunExperiments(&par, env, exps, 4); err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatal("faulted parallel run diverged from sequential")
	}
}
