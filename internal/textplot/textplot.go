// Package textplot renders the harness's experiment output: aligned
// tables and compact ASCII series, one per reproduced figure.
package textplot

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of cells and prints them column-aligned.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends one row; values are formatted with %v (floats use %.4g).
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Fprint writes the aligned table.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			// Right-align all but the first column.
			if i == 0 {
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.header); err != nil {
		return err
	}
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// Bar renders a proportional ASCII bar of the given value against a
// maximum, `width` characters wide.
func Bar(value, max float64, width int) string {
	if max <= 0 || value < 0 || width <= 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}
