package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders one or more y-series over a shared categorical x axis
// (sweep positions) as a compact ASCII plot — the harness's stand-in for
// the paper's figures. Series are drawn with distinct markers in input
// order; y is linear, from 0 to the largest value.
type Chart struct {
	height int
	names  []string
	series [][]float64
	xlabel [2]string // first and last x tick labels
}

// chartMarkers are assigned to series in order.
var chartMarkers = []byte{'*', 'o', '+', 'x', '#', '@'}

// NewChart creates a chart `height` rows tall (minimum 4).
func NewChart(height int) *Chart {
	if height < 4 {
		height = 4
	}
	return &Chart{height: height}
}

// Series adds a named series. All series should share x positions.
func (c *Chart) Series(name string, ys []float64) *Chart {
	c.names = append(c.names, name)
	c.series = append(c.series, ys)
	return c
}

// XRange labels the first and last x positions.
func (c *Chart) XRange(first, last string) *Chart {
	c.xlabel = [2]string{first, last}
	return c
}

// Render returns the plot. An empty chart renders as an empty string.
func (c *Chart) Render() string {
	maxY, width := 0.0, 0
	for _, s := range c.series {
		if len(s) > width {
			width = len(s)
		}
		for _, y := range s {
			if y > maxY && !math.IsInf(y, 0) && !math.IsNaN(y) {
				maxY = y
			}
		}
	}
	if width == 0 || maxY <= 0 {
		return ""
	}
	grid := make([][]byte, c.height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.series {
		marker := chartMarkers[si%len(chartMarkers)]
		for x, y := range s {
			if math.IsNaN(y) || y < 0 {
				continue
			}
			row := int(y / maxY * float64(c.height-1))
			if row > c.height-1 {
				row = c.height - 1
			}
			grid[c.height-1-row][x] = marker
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%.4g ┤\n", maxY)
	for _, row := range grid {
		b.WriteString("     │")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("   0 └")
	b.WriteString(strings.Repeat("─", width))
	b.WriteByte('\n')
	if c.xlabel[0] != "" || c.xlabel[1] != "" {
		pad := width - len(c.xlabel[0]) - len(c.xlabel[1])
		if pad < 1 {
			pad = 1
		}
		fmt.Fprintf(&b, "      %s%s%s\n", c.xlabel[0], strings.Repeat(" ", pad), c.xlabel[1])
	}
	// Legend.
	for i, name := range c.names {
		fmt.Fprintf(&b, "      %c %s\n", chartMarkers[i%len(chartMarkers)], name)
	}
	return b.String()
}
