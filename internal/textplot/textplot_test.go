package textplot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tab := NewTable("name", "value")
	tab.Row("short", 1)
	tab.Row("a-much-longer-name", 123.456)
	var buf bytes.Buffer
	if err := tab.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4 (header, rule, 2 rows)", len(lines))
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[1], "---") {
		t.Fatalf("header/rule wrong: %q %q", lines[0], lines[1])
	}
	if !strings.Contains(lines[3], "123.5") {
		t.Fatalf("float formatting wrong: %q", lines[3])
	}
	// Value column right-aligned: both data rows end at the same column.
	if len(lines[2]) > len(lines[3]) {
		t.Fatalf("rows unaligned: %q vs %q", lines[2], lines[3])
	}
}

func TestTableMixedTypes(t *testing.T) {
	tab := NewTable("a", "b", "c")
	tab.Row("x", float32(1.5), 7)
	var buf bytes.Buffer
	if err := tab.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1.5") || !strings.Contains(buf.String(), "7") {
		t.Fatalf("output %q", buf.String())
	}
}

func TestBar(t *testing.T) {
	if Bar(5, 10, 10) != "#####" {
		t.Fatalf("Bar(5,10,10) = %q", Bar(5, 10, 10))
	}
	if Bar(20, 10, 10) != "##########" {
		t.Fatal("Bar must clamp to width")
	}
	if Bar(1, 0, 10) != "" || Bar(-1, 10, 10) != "" || Bar(1, 10, 0) != "" {
		t.Fatal("degenerate bars must be empty")
	}
}

func TestChartRender(t *testing.T) {
	out := NewChart(5).
		Series("rising", []float64{1, 2, 3, 4, 5}).
		Series("flat", []float64{2, 2, 2, 2, 2}).
		XRange("1B", "4MB").
		Render()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "rising") || !strings.Contains(out, "flat") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "1B") || !strings.Contains(out, "4MB") {
		t.Fatalf("x labels missing:\n%s", out)
	}
	if !strings.Contains(out, "5 ┤") {
		t.Fatalf("y max label missing:\n%s", out)
	}
	// The rising series' last point sits on the top row.
	lines := strings.Split(out, "\n")
	if !strings.HasSuffix(strings.TrimRight(lines[1], " "), "*") {
		t.Fatalf("max point not on top row: %q", lines[1])
	}
}

func TestChartDegenerate(t *testing.T) {
	if NewChart(5).Render() != "" {
		t.Fatal("empty chart should render nothing")
	}
	if NewChart(5).Series("zeros", []float64{0, 0}).Render() != "" {
		t.Fatal("all-zero chart should render nothing")
	}
	// NaN values are skipped, not plotted.
	out := NewChart(4).Series("gaps", []float64{1, math.NaN(), 3}).Render()
	if out == "" {
		t.Fatal("chart with NaN gaps should still render")
	}
}
