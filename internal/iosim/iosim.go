// Package iosim models the sequential I/O paths of a Maia node
// (Section 6.6, Figure 17).
//
// The benchmark the paper runs is a single-process sequential read/write
// of a file on an NFS filesystem mounted on the host. The host reaches it
// directly over the node's network; the Phis reach the same mount through
// the MPSS virtualized TCP/IP stack that runs over the PCIe fabric, which
// roughly quarters the achievable bandwidth (write 210 vs ~80 MB/s, read
// 295 vs ~75 MB/s). The paper also describes Intel's recommended
// workaround: ship the data to a host process with MPI over SCIF and
// perform the file I/O there; ShipToHostWriteMBs models it.
package iosim

import (
	"fmt"

	"maia/internal/machine"
	"maia/internal/pcie"
	"maia/internal/simtrace"
	"maia/internal/vclock"
)

// pathParams hold one I/O path's calibration: sustained streaming
// bandwidth and the fixed per-operation overhead (RPC round trip, page
// cache management) that throttles small block sizes.
type pathParams struct {
	writeMBs float64
	readMBs  float64
	perOp    vclock.Time
}

// params returns the calibrated I/O path constants for a device.
func params(dev machine.Device) pathParams {
	if dev.IsPhi() {
		// NFS re-exported over the MPSS virtual TCP/IP stack on PCIe:
		// low bandwidth and a heavy per-RPC cost.
		p := pathParams{writeMBs: 80, readMBs: 75, perOp: 800 * vclock.Microsecond}
		if dev == machine.Phi1 {
			// The second card shares no bus with the HCA but crosses
			// QPI; the paper's Figure 17 shows it marginally slower.
			p.writeMBs, p.readMBs = 77, 72
		}
		return p
	}
	return pathParams{writeMBs: 210, readMBs: 295, perOp: 150 * vclock.Microsecond}
}

// WriteBandwidthMBs returns the sequential write bandwidth in MB/s seen
// by a single process on dev using the given block size.
func WriteBandwidthMBs(dev machine.Device, blockBytes int) float64 {
	return effective(params(dev).writeMBs, params(dev).perOp, blockBytes)
}

// ReadBandwidthMBs returns the sequential read bandwidth in MB/s.
func ReadBandwidthMBs(dev machine.Device, blockBytes int) float64 {
	return effective(params(dev).readMBs, params(dev).perOp, blockBytes)
}

// effective folds the per-operation overhead into the streaming rate:
// each block costs perOp + block/bw.
func effective(mbs float64, perOp vclock.Time, blockBytes int) float64 {
	if blockBytes <= 0 {
		return 0
	}
	t := perOp.Seconds() + float64(blockBytes)/(mbs*1e6)
	return float64(blockBytes) / t / 1e6
}

// TransferTime returns the virtual time for one process on dev to read or
// write totalBytes sequentially using the given block size.
func TransferTime(dev machine.Device, write bool, totalBytes int64, blockBytes int) (vclock.Time, error) {
	if blockBytes <= 0 {
		return 0, fmt.Errorf("iosim: non-positive block size %d", blockBytes)
	}
	if totalBytes < 0 {
		return 0, fmt.Errorf("iosim: negative byte count %d", totalBytes)
	}
	p := params(dev)
	mbs := p.readMBs
	if write {
		mbs = p.writeMBs
	}
	blocks := (totalBytes + int64(blockBytes) - 1) / int64(blockBytes)
	t := vclock.Time(blocks) * p.perOp
	t += vclock.Time(float64(totalBytes) / (mbs * 1e6))
	return t, nil
}

// TraceTransfer prices a sequential read or write like TransferTime
// and, when tr is non-nil, records it as an io-category span starting
// at `at` on the given track, named "write:<dev>" or "read:<dev>". It
// returns the transfer time, so callers can thread a running clock.
func TraceTransfer(tr *simtrace.Tracer, track string, dev machine.Device, write bool, totalBytes int64, blockBytes int, at vclock.Time) (vclock.Time, error) {
	t, err := TransferTime(dev, write, totalBytes, blockBytes)
	if err != nil {
		return 0, err
	}
	if tr != nil {
		name := "read:" + dev.String()
		if write {
			name = "write:" + dev.String()
		}
		tr.Span(track, simtrace.CatIO, name, at, at+t, totalBytes)
	}
	return t, nil
}

// CheckpointTime prices the paper's motivating I/O case (Section 3.5):
// a solver checkpointing its solution file — OVERFLOW's DLRF6-Large
// solution is 2 GB. Native mode writes through the device's own path;
// with the workaround, a Phi first ships the data to a host rank over
// SCIF and the host writes. Returns (native, workaround) durations.
func CheckpointTime(stack *pcie.Stack, dev machine.Device, solutionBytes int64, blockBytes int) (native, workaround vclock.Time, err error) {
	native, err = TransferTime(dev, true, solutionBytes, blockBytes)
	if err != nil {
		return 0, 0, err
	}
	if !dev.IsPhi() {
		return native, native, nil
	}
	path := pcie.HostPhi0
	if dev == machine.Phi1 {
		path = pcie.HostPhi1
	}
	// Pipeline of SCIF transfer and host NFS write: block by block, the
	// slower stage dominates; add one transfer's latency to fill the
	// pipe.
	ship := stack.TransferTime(path, blockBytes)
	hostWrite, err := TransferTime(machine.Host, true, solutionBytes, blockBytes)
	if err != nil {
		return 0, 0, err
	}
	blocks := (solutionBytes + int64(blockBytes) - 1) / int64(blockBytes)
	shipAll := vclock.Time(blocks) * ship
	workaround = vclock.Max(shipAll, hostWrite) + ship
	return native, workaround, nil
}

// ShipToHostWriteMBs models the paper's workaround for the Phi's poor
// native I/O: send the data from the Phi to a dedicated host MPI rank
// over SCIF (6 GB/s for >= 4 MB messages) and let that rank do the NFS
// write. The two stages run as a pipeline, so the sustained rate is set
// by the slower stage — in practice the host's write bandwidth, which is
// why Intel recommends it.
func ShipToHostWriteMBs(stack *pcie.Stack, dev machine.Device, msgBytes int) float64 {
	if !dev.IsPhi() {
		return params(machine.Host).writeMBs
	}
	path := pcie.HostPhi0
	if dev == machine.Phi1 {
		path = pcie.HostPhi1
	}
	scifMBs := stack.Bandwidth(path, msgBytes) * 1e3
	hostMBs := params(machine.Host).writeMBs
	if scifMBs < hostMBs {
		return scifMBs
	}
	return hostMBs
}
