package iosim

import (
	"math"
	"testing"

	"maia/internal/machine"
	"maia/internal/pcie"
)

func within(t *testing.T, what string, got, want, relTol float64) {
	t.Helper()
	if math.Abs(got-want) > relTol*math.Abs(want) {
		t.Errorf("%s = %v, want %v (±%v%%)", what, got, want, relTol*100)
	}
}

// Figure 17 plateaus at large block sizes: host 210 W / 295 R MB/s,
// Phi0 80 W / 75 R MB/s.
func TestFig17Plateaus(t *testing.T) {
	const big = 64 << 20
	within(t, "host write", WriteBandwidthMBs(machine.Host, big), 210, 0.02)
	within(t, "host read", ReadBandwidthMBs(machine.Host, big), 295, 0.02)
	within(t, "phi0 write", WriteBandwidthMBs(machine.Phi0, big), 80, 0.02)
	within(t, "phi0 read", ReadBandwidthMBs(machine.Phi0, big), 75, 0.02)
}

// Section 6.6 ratios: host write 2.6x and read 3.9x the Phi's.
func TestFig17Ratios(t *testing.T) {
	const big = 64 << 20
	within(t, "write ratio",
		WriteBandwidthMBs(machine.Host, big)/WriteBandwidthMBs(machine.Phi0, big), 2.6, 0.05)
	within(t, "read ratio",
		ReadBandwidthMBs(machine.Host, big)/ReadBandwidthMBs(machine.Phi0, big), 3.9, 0.05)
}

// Small blocks are overhead-dominated; bandwidth grows monotonically with
// block size on every device.
func TestBlockSizeRamp(t *testing.T) {
	for _, dev := range []machine.Device{machine.Host, machine.Phi0, machine.Phi1} {
		prev := 0.0
		for bs := 4 << 10; bs <= 64<<20; bs *= 4 {
			bw := WriteBandwidthMBs(dev, bs)
			if bw <= prev {
				t.Errorf("%v: write bandwidth not increasing at block %d", dev, bs)
			}
			prev = bw
		}
	}
	if WriteBandwidthMBs(machine.Host, 4<<10) > 30 {
		t.Error("4 KB host writes should be overhead-dominated")
	}
}

func TestPhi1SlightlySlower(t *testing.T) {
	const big = 64 << 20
	if !(WriteBandwidthMBs(machine.Phi1, big) < WriteBandwidthMBs(machine.Phi0, big)) {
		t.Error("Phi1 should be marginally slower than Phi0")
	}
}

func TestTransferTime(t *testing.T) {
	// 1 GB write on the host at ~210 MB/s is ~4.9 s.
	tt, err := TransferTime(machine.Host, true, 1<<30, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "1GB host write", tt.Seconds(), 5.1, 0.05)

	// The paper's OVERFLOW dataset: a 2 GB solution file write on the Phi
	// takes minutes, on the host half a minute — the reason native-Phi
	// I/O is unusable for checkpointing codes.
	phiT, err := TransferTime(machine.Phi0, true, 2<<30, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	hostT, err := TransferTime(machine.Host, true, 2<<30, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if phiT.Seconds()/hostT.Seconds() < 2 {
		t.Errorf("phi/host 2GB write ratio = %v, want > 2", phiT.Seconds()/hostT.Seconds())
	}

	if _, err := TransferTime(machine.Host, true, 100, 0); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := TransferTime(machine.Host, false, -1, 4096); err == nil {
		t.Error("negative size accepted")
	}
}

func TestZeroBlock(t *testing.T) {
	if WriteBandwidthMBs(machine.Host, 0) != 0 || ReadBandwidthMBs(machine.Phi0, -5) != 0 {
		t.Error("non-positive block size must yield 0 bandwidth")
	}
}

// The ship-to-host workaround restores (nearly) host-class write
// bandwidth for large messages, and degrades gracefully for small ones.
func TestShipToHostWorkaround(t *testing.T) {
	stack := pcie.NewStack(pcie.PostUpdate)
	big := ShipToHostWriteMBs(stack, machine.Phi0, 4<<20)
	within(t, "workaround large", big, 210, 0.02)
	if big <= WriteBandwidthMBs(machine.Phi0, 64<<20) {
		t.Error("workaround must beat native Phi writes")
	}
	small := ShipToHostWriteMBs(stack, machine.Phi0, 64)
	if small >= big {
		t.Error("small-message shipping should be slower")
	}
	// Host passthrough.
	within(t, "host passthrough", ShipToHostWriteMBs(stack, machine.Host, 4<<20), 210, 1e-9)
}

// The paper's checkpointing case: OVERFLOW's 2 GB solution file takes
// minutes through the Phi's virtual TCP/IP stack; shipping to the host
// over SCIF restores host-class write times.
func TestCheckpointWorkaround(t *testing.T) {
	stack := pcie.NewStack(pcie.PostUpdate)
	const solution = 2 << 30
	native, workaround, err := CheckpointTime(stack, machine.Phi0, solution, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	hostNative, hostWk, err := CheckpointTime(stack, machine.Host, solution, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if hostNative != hostWk {
		t.Error("host checkpoint needs no workaround")
	}
	if native.Seconds() < 2*hostNative.Seconds() {
		t.Errorf("native Phi checkpoint (%v) should be several times the host's (%v)", native, hostNative)
	}
	if workaround >= native {
		t.Errorf("workaround (%v) must beat native Phi (%v)", workaround, native)
	}
	// The workaround is bounded below by the host's own write time.
	if workaround < hostNative {
		t.Errorf("workaround (%v) cannot beat the host write itself (%v)", workaround, hostNative)
	}
	// Degenerate block size surfaces as an error.
	if _, _, err := CheckpointTime(stack, machine.Phi0, solution, 0); err == nil {
		t.Error("zero block size accepted")
	}
}
