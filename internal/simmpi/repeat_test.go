package simmpi

import (
	"math/rand"
	"testing"

	"maia/internal/machine"
	"maia/internal/simfault"
	"maia/internal/vclock"
)

// withSlowPath runs fn with the repeated-op fast path disabled, as if
// MAIA_NO_FASTPATH were set.
func withSlowPath(fn func()) {
	prev := noFastPathEnv
	noFastPathEnv = true
	defer func() { noFastPathEnv = prev }()
	fn()
}

// withFastPath runs fn with the fast path force-enabled, so assertions
// that the replay engages still hold when the whole test binary runs
// under MAIA_NO_FASTPATH=1 (the CI slow-path job).
func withFastPath(fn func()) {
	prev := noFastPathEnv
	noFastPathEnv = false
	defer func() { noFastPathEnv = prev }()
	fn()
}

// randomHomogeneous builds a homogeneous world placement.
func randomHomogeneous(rng *rand.Rand) Config {
	sizes := []int{2, 3, 4, 5, 8, 16}
	n := sizes[rng.Intn(len(sizes))]
	if rng.Intn(2) == 0 {
		return Config{Ranks: HostPlacement(n, 1+rng.Intn(2))}
	}
	return Config{Ranks: PhiPlacement(machine.Phi0, n, 1+rng.Intn(4))}
}

// TestRepeatOpMatchesFullRun is the simmpi exactness property: the
// closed-form replay must reproduce the goroutine run's virtual time
// BIT for bit over randomized homogeneous (placement × kind × size ×
// iteration) combinations, spanning the eager/rendezvous threshold and
// both Allgather algorithm regimes. Asymmetric combinations fall back
// to the full run on both sides and compare trivially — which also
// pins that the fallback stays reachable.
func TestRepeatOpMatchesFullRun(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	kinds := []CollectiveKind{BcastKind, AllreduceKind, AllgatherKind, AlltoallKind}
	for trial := 0; trial < 200; trial++ {
		cfg := randomHomogeneous(rng)
		kind := kinds[rng.Intn(len(kinds))]
		msg := 1 + rng.Intn(32<<10) // crosses eager (8K) and allgather (2K) switches
		iters := 1 + rng.Intn(3)
		fast, err := CollectiveTime(cfg, kind, msg, iters)
		if err != nil {
			t.Fatalf("trial %d: fast: %v", trial, err)
		}
		var slow vclock.Time
		withSlowPath(func() {
			slow, err = CollectiveTime(cfg, kind, msg, iters)
		})
		if err != nil {
			t.Fatalf("trial %d: slow: %v", trial, err)
		}
		if fast != slow {
			t.Fatalf("trial %d (n=%d dev=%v kind=%v msg=%d iters=%d): fast %v, slow %v",
				trial, len(cfg.Ranks), cfg.Ranks[0].Device, kind, msg, iters, fast, slow)
		}
	}
}

// TestRepeatSendrecvMatchesFullRun covers the Figure 10 ring loop.
func TestRepeatSendrecvMatchesFullRun(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		cfg := randomHomogeneous(rng)
		msg := 1 + rng.Intn(32<<10)
		iters := 1 + rng.Intn(4)
		fast, err := RingBandwidth(cfg, msg, iters)
		if err != nil {
			t.Fatalf("trial %d: fast: %v", trial, err)
		}
		var slow float64
		withSlowPath(func() {
			slow, err = RingBandwidth(cfg, msg, iters)
		})
		if err != nil {
			t.Fatalf("trial %d: slow: %v", trial, err)
		}
		if fast != slow {
			t.Fatalf("trial %d (n=%d msg=%d iters=%d): fast %v, slow %v",
				trial, len(cfg.Ranks), msg, iters, fast, slow)
		}
	}
}

// TestRepeatOpRefusals pins every fallback condition — heterogeneous
// placement, fault plans, single-rank worlds, the escape hatch — and
// the positive side: asymmetric algorithms (binomial Bcast, the
// non-power-of-two reduce+bcast Allreduce) now price on the clock
// vector instead of refusing.
func TestRepeatOpRefusals(t *testing.T) {
	// Force-enable so the positive assertions hold under MAIA_NO_FASTPATH.
	prev := noFastPathEnv
	noFastPathEnv = false
	defer func() { noFastPathEnv = prev }()
	homog := Config{Ranks: HostPlacement(4, 1)}
	w, err := NewWorld(homog)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.RepeatOp(BcastKind, 64, 1); !ok {
		t.Error("refused the binomial Bcast (clock-vector replayable)")
	}
	if _, ok := w.RepeatOp(AllreduceKind, 64, 1); !ok {
		t.Error("refused a power-of-two Allreduce")
	}
	w3, err := NewWorld(Config{Ranks: HostPlacement(3, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w3.RepeatOp(AllreduceKind, 64, 1); !ok {
		t.Error("refused the reduce+bcast Allreduce (clock-vector replayable)")
	}
	mixed := Config{Ranks: append(HostPlacement(2, 1), PhiPlacement(machine.Phi0, 2, 1)...)}
	wm, err := NewWorld(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := wm.RepeatOp(AllgatherKind, 64, 1); ok {
		t.Error("replayed a heterogeneous world")
	}
	faulted, err := NewWorld(homog, WithFaultPlan(simfault.PhiStraggler()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := faulted.RepeatOp(AllgatherKind, 64, 1); ok {
		t.Error("replayed a faulted world")
	}
	w1, err := NewWorld(Config{Ranks: HostPlacement(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w1.RepeatOp(AllgatherKind, 64, 1); ok {
		t.Error("replayed a single-rank world")
	}
	withSlowPath(func() {
		if _, ok := w.RepeatOp(AllgatherKind, 64, 1); ok {
			t.Error("ignored the MAIA_NO_FASTPATH escape hatch")
		}
	})
}
