package simmpi

import (
	"math/rand"
	"testing"

	"maia/internal/machine"
	"maia/internal/simfault"
	"maia/internal/vclock"
)

// pipelineBody is the goroutine-engine wavefront the replay is pinned
// against: LU's per-iteration shape (receive the upstream boundary,
// compute, send downstream).
func pipelineBody(msg, rounds int, compute vclock.Time) func(r *Rank) {
	return func(r *Rank) {
		n, id := r.Size(), r.ID()
		buf := GetPayload(msg)
		for p := 0; p < rounds; p++ {
			if id > 0 {
				Recycle(r.Recv(id-1, p))
			}
			r.Compute(compute)
			if id < n-1 {
				r.Send(id+1, p, buf)
			}
		}
		Recycle(buf)
	}
}

// TestRepeatPipelineMatchesFullRun is the wavefront exactness property:
// the clock-vector replay must reproduce the goroutine run's makespan
// BIT for bit over randomized homogeneous worlds, message sizes that
// cross the eager/rendezvous threshold, and round counts that cover
// both the fill and the steady phase of the pipeline.
func TestRepeatPipelineMatchesFullRun(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 150; trial++ {
		cfg := randomHomogeneous(rng)
		cfg.SizeOnlyPayloads = true
		msg := 1 + rng.Intn(32<<10)
		rounds := 1 + rng.Intn(8)
		compute := vclock.Time(rng.Float64() * 5e4)
		var fast vclock.Time
		var ok bool
		withFastPath(func() {
			w, err := NewWorld(cfg)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			fast, ok = w.RepeatPipeline(msg, rounds, compute)
		})
		if !ok {
			t.Fatalf("trial %d: replay refused a homogeneous %d-rank world", trial, len(cfg.Ranks))
		}
		w, err := NewWorld(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := w.Run(pipelineBody(msg, rounds, compute)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if slow := w.MaxTime(); fast != slow {
			t.Fatalf("trial %d (n=%d msg=%d rounds=%d compute=%v): fast %v, slow %v",
				trial, len(cfg.Ranks), msg, rounds, compute, fast, slow)
		}
	}
}

// TestRingSeqMatchesFullRun pins the RingKind step: the shifted-neighbor
// exchange must replay bit-identically on any world size, including the
// odd sizes PairKind refuses (BT/SP's 121/169/225-rank grids).
func TestRingSeqMatchesFullRun(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		cfg := randomHomogeneous(rng)
		cfg.SizeOnlyPayloads = true
		steps := []SeqStep{
			{Compute: vclock.Time(rng.Float64() * 1e4), Kind: RingKind, Bytes: 1 + rng.Intn(16<<10)},
			{Kind: RingKind, Bytes: 1 + rng.Intn(16<<10)},
		}
		iters := 1 + rng.Intn(3)
		var fast vclock.Time
		var ok bool
		withFastPath(func() {
			w, err := NewWorld(cfg)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			fast, ok = w.RepeatSeq(steps, iters)
		})
		if !ok {
			t.Fatalf("trial %d: replay refused a homogeneous %d-rank ring", trial, len(cfg.Ranks))
		}
		w, err := NewWorld(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := w.RunSeq(steps, iters); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if slow := w.MaxTime(); fast != slow {
			t.Fatalf("trial %d (n=%d iters=%d): fast %v, slow %v",
				trial, len(cfg.Ranks), iters, fast, slow)
		}
	}
}

// TestRepeatPipelineRefusals pins the fallback conditions that keep the
// goroutine engine reachable.
func TestRepeatPipelineRefusals(t *testing.T) {
	withFastPath(func() {
		homog := Config{Ranks: HostPlacement(4, 1)}
		w, err := NewWorld(homog)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := w.RepeatPipeline(64, 2, 1); !ok {
			t.Error("refused a homogeneous pipeline")
		}
		mixed := Config{Ranks: append(HostPlacement(2, 1), PhiPlacement(machine.Phi0, 2, 1)...)}
		wm, err := NewWorld(mixed)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := wm.RepeatPipeline(64, 2, 1); ok {
			t.Error("replayed a heterogeneous world")
		}
		faulted, err := NewWorld(homog, WithFaultPlan(simfault.PhiStraggler()))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := faulted.RepeatPipeline(64, 2, 1); ok {
			t.Error("replayed a faulted world")
		}
		w1, err := NewWorld(Config{Ranks: HostPlacement(1, 1)})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := w1.RepeatPipeline(64, 2, 1); ok {
			t.Error("replayed a single-rank world")
		}
		withSlowPath(func() {
			if _, ok := w.RepeatPipeline(64, 2, 1); ok {
				t.Error("ignored the MAIA_NO_FASTPATH escape hatch")
			}
		})
	})
}
