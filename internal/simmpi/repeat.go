package simmpi

import (
	"fmt"
	"os"

	"maia/internal/simtrace"
	"maia/internal/vclock"
)

// The repeated-op fast path prices N identical collectives (or ring
// exchanges) without spawning rank goroutines or moving messages. It
// rests on a symmetry argument: in a homogeneous world (every rank on
// the same device, threads-per-core and node) running a symmetric
// algorithm — one where every rank sends and receives the same byte
// count to a partner each round — all rank clocks are equal at every
// round boundary, so one scalar clock replayed through the exact
// send/recv cost recurrence reproduces every rank's clock bit for bit.
// Float additions happen in the same order as the goroutine run, so the
// result is identical, not just close.
//
// Asymmetric algorithms (binomial Bcast/Reduce, the non-power-of-two
// reduce+bcast Allreduce, linear Gather/Scatter) break the equal-clock
// argument but not the replayability: homogeneity still fixes every
// pair's transfer cost, so one clock per rank replayed in dependency
// order prices them exactly (vecrepeat.go). Only faulted or
// heterogeneous worlds fall back to the full run.

// noFastPathEnv force-disables the repeated-op fast path process-wide
// (the same knob memsim honors).
var noFastPathEnv = os.Getenv("MAIA_NO_FASTPATH") != ""

// symmetric reports whether every rank has the same placement.
func (w *World) symmetric() bool {
	l0 := w.cfg.Ranks[0]
	for _, l := range w.cfg.Ranks[1:] {
		if l != l0 {
			return false
		}
	}
	return true
}

// symReplay is the scalar clock of any one rank in a symmetric round.
type symReplay struct {
	w     *World
	t     vclock.Time
	msgs  int64
	bytes int64
}

// exchange prices one round: post a send of n bytes to a partner, then
// receive the n bytes the symmetric partner posted at the same clock.
// The float operations mirror send/recvAt exactly: Advance(sendSide),
// then AdvanceTo(start + flight) with the rendezvous gated on the
// receive's post time.
func (s *symReplay) exchange(n int) {
	tsPost := s.t
	sendSide, flight, rendezvous := s.w.transferCost(0, 1, n)
	s.t += sendSide
	start := tsPost
	if rendezvous {
		start = vclock.Max(tsPost, s.t)
	}
	if done := start + flight; done > s.t {
		s.t = done
	}
	s.msgs++
	s.bytes += int64(n)
}

// replayOnce replays one collective's round structure, returning the
// algorithm name and whether the kind/size/world combination is
// symmetric (replayable) at all.
func (w *World) replayOnce(s *symReplay, kind CollectiveKind, msgBytes int) (string, bool) {
	n := w.size
	switch kind {
	case AllgatherKind:
		if n&(n-1) == 0 && msgBytes <= w.cfg.AllgatherSwitchBytes {
			for mask := 1; mask < n; mask <<= 1 {
				s.exchange(mask * msgBytes)
			}
			return "rd", true
		}
		for step := 0; step < n-1; step++ {
			s.exchange(msgBytes)
		}
		return "ring", true
	case AlltoallKind:
		for step := 1; step < n; step++ {
			s.exchange(msgBytes)
		}
		return "pairwise", true
	case AllreduceKind:
		if n&(n-1) != 0 {
			return "", false // reduce+bcast is asymmetric
		}
		elems := msgBytes / 8
		if elems < 1 {
			elems = 1
		}
		for mask := 1; mask < n; mask <<= 1 {
			s.exchange(8 * elems)
		}
		return "rd", true
	default:
		return "", false // tree-shaped collectives are asymmetric
	}
}

// repeatable reports whether the world as a whole may use the replay.
func (w *World) repeatable() bool {
	return !noFastPathEnv && w.cfg.Faults == nil && w.size >= 2 && w.symmetric()
}

// RepeatOp prices iters identical back-to-back collectives of the given
// per-rank message size in one closed-form replay and returns the total
// virtual time. Symmetric algorithms replay on a scalar clock;
// asymmetric ones (Bcast, the non-power-of-two Allreduce) on the full
// clock vector. ok is false when the combination needs the full
// goroutine run: heterogeneous placement, a fault plan, or a world
// smaller than two ranks.
//
// RepeatOp does not populate per-rank profiles or final clocks; callers
// use the returned time. With a tracer attached it emits one aggregated
// span covering the whole batch (name "op[algo] xN") instead of the
// per-operation spans of a full run.
func (w *World) RepeatOp(kind CollectiveKind, msgBytes, iters int) (vclock.Time, bool) {
	if w.rack != nil {
		// Two-level worlds replay hierarchically (hierrepeat.go).
		return w.rackRepeatSeq([]SeqStep{{Kind: kind, Bytes: msgBytes}}, iters)
	}
	if !w.repeatable() {
		return 0, false
	}
	s := symReplay{w: w}
	var algo string
	for i := 0; i < iters; i++ {
		a, ok := w.replayOnce(&s, kind, msgBytes)
		if !ok {
			// The algorithm is asymmetric (same refusal on every
			// iteration): price it on the clock vector instead.
			return w.vecRepeatOp(kind, msgBytes, iters)
		}
		algo = a
	}
	if w.cfg.Tracer != nil {
		w.traceRepeat(fmt.Sprintf("%s[%s] x%d", kind, algo, iters), &s)
	}
	return s.t, true
}

// RepeatSendrecv prices iters ring exchanges (each rank sends msgBytes
// right and receives msgBytes from the left, the Figure 10 loop) under
// the same eligibility rules as RepeatOp.
func (w *World) RepeatSendrecv(msgBytes, iters int) (vclock.Time, bool) {
	if w.rack != nil {
		// The ring's node-boundary exchanges cross varying hop counts;
		// rack worlds take the goroutine engine.
		return 0, false
	}
	if !w.repeatable() {
		return 0, false
	}
	s := symReplay{w: w}
	for i := 0; i < iters; i++ {
		s.exchange(msgBytes)
	}
	if w.cfg.Tracer != nil {
		w.traceRepeat(fmt.Sprintf("MPI_Sendrecv x%d", iters), &s)
	}
	return s.t, true
}

// traceRepeat records the batch as one aggregated span plus the world-
// wide message/byte counters a full run would have accumulated.
func (w *World) traceRepeat(name string, s *symReplay) {
	tr := w.cfg.Tracer
	if tr == nil {
		return
	}
	track := w.cfg.TraceLabel
	if track == "" {
		track = "repeat"
	}
	tr.Span(track, simtrace.CatMPI, name, 0, s.t, s.bytes*int64(w.size))
	tr.Count(simtrace.CatMPI, "messages", s.msgs*int64(w.size))
	tr.Count(simtrace.CatMPI, "bytes", s.bytes*int64(w.size))
}
