package simmpi

import (
	"testing"

	"maia/internal/machine"
	"maia/internal/simfault"
	"maia/internal/simtrace"
	"maia/internal/vclock"
)

// mixedLocs places half the ranks on the host and half on Phi0, so
// every Sendrecv pair in a ring crosses at least one PCIe hop.
func mixedLocs(n int) []Location {
	locs := make([]Location, n)
	for i := range locs {
		if i%2 == 0 {
			locs[i] = Location{Device: machine.Host, ThreadsPerCore: 1}
		} else {
			locs[i] = Location{Device: machine.Phi0, ThreadsPerCore: 1}
		}
	}
	return locs
}

// ringTime runs a small cross-device ring under a plan and returns the
// makespan.
func ringTime(t *testing.T, plan *simfault.Plan, tracer *simtrace.Tracer) vclock.Time {
	t.Helper()
	w, err := NewWorld(Config{Ranks: mixedLocs(8), SizeOnlyPayloads: true},
		WithFaultPlan(plan), WithTracer(tracer, "faultring"))
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 32<<10)
	if err := w.Run(func(r *Rank) {
		n := r.Size()
		for i := 0; i < 4; i++ {
			Recycle(r.Sendrecv((r.ID()+1)%n, 0, payload, (r.ID()-1+n)%n, 0))
		}
		r.Compute(200 * vclock.Microsecond)
		r.AllreduceSum(1)
	}); err != nil {
		t.Fatal(err)
	}
	return w.MaxTime()
}

// A nil plan and an empty plan price identically: fault plumbing is
// invisible until a plan actually injects something.
func TestEmptyPlanIdenticalToNil(t *testing.T) {
	clean := ringTime(t, nil, nil)
	empty := ringTime(t, &simfault.Plan{}, nil)
	if clean != empty {
		t.Fatalf("empty plan changed makespan: %v vs %v", empty, clean)
	}
}

// The same fault plan prices identically on every run — virtual time
// under faults stays independent of the Go scheduler.
func TestFaultedRunDeterministic(t *testing.T) {
	plan := simfault.LossyPCIe()
	first := ringTime(t, plan, nil)
	for i := 0; i < 5; i++ {
		if got := ringTime(t, plan, nil); got != first {
			t.Fatalf("run %d: makespan %v, want %v", i, got, first)
		}
	}
}

// A lossy fabric strictly slows the run, and the retries show up in the
// trace as fault-category spans and counters.
func TestLossyFabricChargesRetries(t *testing.T) {
	clean := ringTime(t, nil, nil)
	tracer := simtrace.New()
	// A heavier drop rate than the catalog plan, so the short test run
	// is guaranteed to see retransmissions.
	plan := &simfault.Plan{Seed: 7, Fabrics: []simfault.FabricFault{{
		Fabric: "pcie:", Derate: 1.6, Delay: 5 * vclock.Microsecond, DropProb: 0.25,
	}}}
	lossy := ringTime(t, plan, tracer)
	if lossy <= clean {
		t.Fatalf("lossy fabric did not slow the ring: %v <= %v", lossy, clean)
	}
	var retries int64
	for _, c := range tracer.Counters() {
		if c.Key.Cat == simtrace.CatFault && c.Key.Name == "mpi_retries" {
			retries = c.Value
		}
	}
	if retries == 0 {
		t.Fatal("3% drop probability produced no retries over the run")
	}
	var faultSpans int
	for _, s := range tracer.Spans() {
		if s.Cat == simtrace.CatFault {
			faultSpans++
			if s.Dur() <= 0 {
				t.Fatalf("fault span %q has non-positive duration", s.Name)
			}
		}
	}
	if faultSpans == 0 {
		t.Fatal("no fault-category retry spans recorded")
	}
}

// Intra-device fabrics stay healthy under the PCIe-only plan: a pure
// host world prices identically with and without it.
func TestLossyPCIeSparesSharedMemory(t *testing.T) {
	run := func(plan *simfault.Plan) vclock.Time {
		w, err := NewWorld(Config{Ranks: HostPlacement(8, 1), SizeOnlyPayloads: true},
			WithFaultPlan(plan))
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, 16<<10)
		if err := w.Run(func(r *Rank) {
			n := r.Size()
			Recycle(r.Sendrecv((r.ID()+1)%n, 0, payload, (r.ID()-1+n)%n, 0))
		}); err != nil {
			t.Fatal(err)
		}
		return w.MaxTime()
	}
	if clean, faulted := run(nil), run(simfault.LossyPCIe()); clean != faulted {
		t.Fatalf("PCIe plan touched a shared-memory world: %v vs %v", faulted, clean)
	}
}

// Straggler compute derating applies per device and feeds the profiles
// (the signal the OVERFLOW rebalancer keys on).
func TestStragglerDeratesComputeProfiles(t *testing.T) {
	w, err := NewWorld(Config{Ranks: mixedLocs(4), SizeOnlyPayloads: true},
		WithFaultPlan(simfault.PhiStraggler()))
	if err != nil {
		t.Fatal(err)
	}
	const work = vclock.Millisecond
	if err := w.Run(func(r *Rank) {
		r.Compute(work)
		r.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	for i, p := range w.Profiles() {
		want := work
		if w.cfg.Ranks[i].Device.IsPhi() {
			want = vclock.Time(float64(work) * 1.8)
		}
		if diff := p.Compute - want; diff < -1e-12 || diff > 1e-12 {
			t.Errorf("rank %d (%v) compute %v, want %v", i, w.cfg.Ranks[i].Device, p.Compute, want)
		}
	}
}

// Collectives ride the faulted point-to-point path: CollectiveTime on a
// cross-device world slows down under the lossy plan but stays
// deterministic.
func TestCollectiveUnderFaults(t *testing.T) {
	cfg := Config{Ranks: mixedLocs(8)}
	clean, err := CollectiveTime(cfg, AllgatherKind, 4<<10, 2)
	if err != nil {
		t.Fatal(err)
	}
	lossy1, err := CollectiveTime(cfg, AllgatherKind, 4<<10, 2, WithFaultPlan(simfault.LossyPCIe()))
	if err != nil {
		t.Fatal(err)
	}
	lossy2, err := CollectiveTime(cfg, AllgatherKind, 4<<10, 2, WithFaultPlan(simfault.LossyPCIe()))
	if err != nil {
		t.Fatal(err)
	}
	if lossy1 != lossy2 {
		t.Fatalf("faulted allgather not deterministic: %v vs %v", lossy1, lossy2)
	}
	if lossy1 <= clean {
		t.Fatalf("faulted allgather not slower: %v <= %v", lossy1, clean)
	}
}
