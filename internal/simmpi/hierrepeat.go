package simmpi

import (
	"fmt"

	"maia/internal/simtrace"
	"maia/internal/vclock"
)

// The rack replay generalizes repeat.go's scalar-clock argument to
// two-level worlds. In a rack of IDENTICAL nodes (same per-node layout
// at every node, power-of-two node count) every hierarchical collective
// phase is symmetric per LOCAL rank index:
//
//   - intra-node phases are the same local program on every node, so
//     local rank j's clock is equal across all nodes at every point;
//   - inter-node rounds pair each leader with a partner at the SAME hop
//     distance (recursive doubling: popcount(mask); Gray-code ring: 1;
//     XOR pairwise step s: popcount(s)), whose clock equals its own.
//
// One clock vector t[0..perNode) — a single representative node —
// therefore reproduces all nodes*perNode rank clocks bit for bit,
// replaying the exact send/recvAt float recurrences of the goroutine
// engine. ~17k-rank worlds price in microseconds of wall clock.
//
// The replay refuses (falling back to the goroutine engine): fault
// plans, non-power-of-two node counts, per-node layouts that differ
// across nodes, Bcast (its binomial trees are asymmetric), and the
// MAIA_NO_FASTPATH escape hatch — mirrors of repeat.go's refusals.

// SeqStep is one step of a communication-pattern script: optional
// compute followed by one operation. Scripts (see RunSeq / SeqTime)
// describe an application's per-iteration shape — the NPB and OVERFLOW
// rack drivers are scripts of a few SeqSteps.
type SeqStep struct {
	// Compute is charged to every rank before the operation.
	Compute vclock.Time
	// ComputePer, when non-nil, charges rank i ComputePer[i%len] —
	// with len == ranksPerNode this is per-local-index compute,
	// identical across nodes (the OVERFLOW host/Phi imbalance shape).
	// It overrides Compute.
	ComputePer []vclock.Time
	// Kind selects the operation: BcastKind, AllreduceKind,
	// AllgatherKind, AlltoallKind, PairKind, RingKind, or ComputeStep.
	Kind CollectiveKind
	// Bytes is the per-rank payload: the block size for
	// Allgather/Alltoall, the vector bytes for Allreduce, the message
	// size for Pair/Ring exchanges. Ignored by ComputeStep.
	Bytes int
	// BytesPer, when non-nil, gives rank i a BytesPer[i%len]-byte
	// payload instead of Bytes — the OVERFLOW fringe shape, where each
	// rank's exchange volume tracks its zone load. Valid only for
	// PairKind and RingKind (collectives take one uniform size).
	BytesPer []int
	// Shift is RingKind's exchange distance: rank i sends to
	// (i+Shift)%size and receives from (i-Shift+size)%size. Zero (and
	// any multiple of the world size) shifts by one — a rank never
	// exchanges with itself.
	Shift int
}

// rackRepeatable reports whether the world qualifies for the rack
// replay at all: healthy (a plan that injects nothing IS the healthy
// machine), power-of-two node count, identical nodes.
func (w *World) rackRepeatable() bool {
	if noFastPathEnv || w.cfg.Faults.Enabled() || w.rack == nil {
		return false
	}
	if n := w.rack.nodes; n&(n-1) != 0 {
		return false
	}
	R := w.rack.perNode
	for i, l := range w.cfg.Ranks {
		l0 := w.cfg.Ranks[i%R]
		if l.Device != l0.Device || l.ThreadsPerCore != l0.ThreadsPerCore {
			return false
		}
	}
	return true
}

// rackStepReplayable reports whether one script step keeps the
// per-local-index symmetry the replay rests on.
func (w *World) rackStepReplayable(st SeqStep) bool {
	R := w.rack.perNode
	if st.ComputePer != nil && R%len(st.ComputePer) != 0 {
		return false // would differ across nodes
	}
	if st.BytesPer != nil {
		return false // per-rank payload sizes break per-local-index symmetry
	}
	switch st.Kind {
	case ComputeStep, AllreduceKind, AllgatherKind, AlltoallKind:
		return true
	case PairKind:
		// id^1 pairs stay intra-node when R is even; with one rank per
		// node they are uniform one-hop leader exchanges. Odd R > 1
		// mixes intra- and inter-node pairs and falls back.
		return R == 1 || R%2 == 0
	default:
		// Bcast's binomial trees are not index-symmetric, and RingKind's
		// node-boundary exchanges cross varying hop counts (the same
		// reason RepeatSendrecv refuses rack worlds).
		return false
	}
}

// rackReplay is the clock vector of one representative node.
type rackReplay struct {
	w *World
	// t[j] is local rank j's clock (equal across nodes by symmetry).
	t []vclock.Time
	// up[x] records a send's post time for the edge into local rank x
	// (or, per phase, the single upward send of local rank x).
	up []vclock.Time
	// msgs/bytes count one node's traffic for the aggregated trace.
	msgs, bytes int64
}

func newRackReplay(w *World) *rackReplay {
	R := w.rack.perNode
	return &rackReplay{w: w, t: make([]vclock.Time, R), up: make([]vclock.Time, R)}
}

// sendLocal mirrors Rank.send between two local ranks of the
// representative node: records the post time, advances the sender by
// the send-side cost, and returns the post time.
func (s *rackReplay) sendLocal(src, dst, n int) vclock.Time {
	tsPost := s.t[src]
	sendSide, _, _ := s.w.transferCost(src, dst, n)
	s.t[src] += sendSide
	s.msgs++
	s.bytes += int64(n)
	return tsPost
}

// recvLocal mirrors recvAt on local rank dst for a message of n bytes
// posted by local rank src at tsPost.
func (s *rackReplay) recvLocal(dst, src, n int, tsPost vclock.Time) {
	post := s.t[dst]
	_, flight, rendezvous := s.w.transferCost(src, dst, n)
	start := tsPost
	if rendezvous {
		start = vclock.Max(tsPost, post)
	}
	if done := start + flight; done > s.t[dst] {
		s.t[dst] = done
	}
}

// exchangeInter prices one leader round: send n bytes to the leader of
// a node repNode hops away, receive the n bytes the symmetric partner
// posted at the same clock. Exactly repeat.go's exchange, with the
// fabric-priced inter-node transferCost.
func (s *rackReplay) exchangeInter(repNode, n int) {
	R := s.w.rack.perNode
	tsPost := s.t[0]
	sendSide, flight, rendezvous := s.w.transferCost(0, repNode*R, n)
	s.t[0] += sendSide
	start := tsPost
	if rendezvous {
		start = vclock.Max(tsPost, s.t[0])
	}
	if done := start + flight; done > s.t[0] {
		s.t[0] = done
	}
	s.msgs++
	s.bytes += int64(n)
}

// replayLocalGather replays the linear gather of n-byte payloads to the
// node leader: every non-leader posts its send, then the leader
// receives in ascending source order (hierAllgather/hierAlltoall
// phase 1).
func (s *rackReplay) replayLocalGather(n int) {
	R := s.w.rack.perNode
	if R == 1 {
		return
	}
	for j := 1; j < R; j++ {
		s.up[j] = s.sendLocal(j, 0, n)
	}
	for src := 1; src < R; src++ {
		s.recvLocal(0, src, n, s.up[src])
	}
}

// replayLocalScatter replays the leader's linear scatter of n-byte
// payloads (hierAlltoall phase 3): sends in ascending destination
// order, then each destination receives.
func (s *rackReplay) replayLocalScatter(n int) {
	R := s.w.rack.perNode
	if R == 1 {
		return
	}
	for l := 1; l < R; l++ {
		s.up[l] = s.sendLocal(0, l, n)
	}
	for l := 1; l < R; l++ {
		s.recvLocal(l, 0, n, s.up[l])
	}
}

// replayLocalBcast replays the binomial broadcast of n-byte payloads
// from the leader down the node. Ranks are processed in ascending local
// index: a rank's parent (j - lowbit(j)) always precedes it, and each
// rank's own receive-then-send program order is preserved.
func (s *rackReplay) replayLocalBcast(n int) {
	R := s.w.rack.perNode
	if R == 1 {
		return
	}
	for j := 0; j < R; j++ {
		var mask int
		if j != 0 {
			mask = j & -j
			s.recvLocal(j, j-mask, n, s.up[j])
			mask >>= 1
		} else {
			mask = 1
			for mask < R {
				mask <<= 1
			}
			mask >>= 1
		}
		for ; mask > 0; mask >>= 1 {
			if j+mask < R {
				s.up[j+mask] = s.sendLocal(j, j+mask, n)
			}
		}
	}
}

// replayLocalReduce replays the binomial reduce of n-byte payloads to
// the node leader. Ranks are processed in descending local index: a
// rank's children (j + mask) always precede it, so their upward send
// times are recorded before j consumes them.
func (s *rackReplay) replayLocalReduce(n int) {
	R := s.w.rack.perNode
	if R == 1 {
		return
	}
	for j := R - 1; j >= 0; j-- {
		mask := 1
		for mask < R {
			if j&mask != 0 {
				s.up[j] = s.sendLocal(j, j-mask, n)
				break
			}
			if j+mask < R {
				s.recvLocal(j, j+mask, n, s.up[j+mask])
			}
			mask <<= 1
		}
	}
}

// replayStep replays one script step, mirroring the goroutine phase
// structure of hier.go exactly. The caller has already verified
// rackStepReplayable.
func (s *rackReplay) replayStep(st SeqStep) string {
	w := s.w
	R, N := w.rack.perNode, w.rack.nodes
	if st.ComputePer != nil {
		L := len(st.ComputePer)
		for j := 0; j < R; j++ {
			if c := st.ComputePer[j%L]; c > 0 {
				s.t[j] += c
			}
		}
	} else if st.Compute > 0 {
		for j := 0; j < R; j++ {
			s.t[j] += st.Compute
		}
	}
	switch st.Kind {
	case ComputeStep:
		return "compute"
	case PairKind:
		if R == 1 {
			s.exchangeInter(1, st.Bytes)
			return "pair-inter"
		}
		// All pairs (j, j^1) are intra-node: every rank posts its send,
		// then receives its partner's.
		for j := 0; j < R; j++ {
			s.up[j] = s.sendLocal(j, j^1, st.Bytes)
		}
		for j := 0; j < R; j++ {
			s.recvLocal(j, j^1, st.Bytes, s.up[j^1])
		}
		return "pair"
	case AllreduceKind:
		elems := st.Bytes / 8
		if elems < 1 {
			elems = 1
		}
		nb := 8 * elems
		s.replayLocalReduce(nb)
		for mask := 1; mask < N; mask <<= 1 {
			s.exchangeInter(mask, nb)
		}
		s.replayLocalBcast(nb)
		return "hier:rd"
	case AllgatherKind:
		m := st.Bytes
		nb := R * m
		s.replayLocalGather(m)
		algo := "hier:rd"
		if nb <= w.cfg.AllgatherSwitchBytes {
			for mask := 1; mask < N; mask <<= 1 {
				s.exchangeInter(mask, mask*nb)
			}
		} else {
			// Gray-code ring: every step is a one-hop exchange of one
			// node block; node 1 is the representative one-hop partner.
			algo = "hier:gray-ring"
			for step := 0; step < N-1; step++ {
				s.exchangeInter(1, nb)
			}
		}
		s.replayLocalBcast(N * nb)
		return algo
	case AlltoallKind:
		m := st.Bytes
		full := N * R * m
		s.replayLocalGather(full)
		for step := 1; step < N; step++ {
			s.exchangeInter(step, R*R*m)
		}
		s.replayLocalScatter(full)
		return "hier:pairwise"
	default:
		panic(fmt.Sprintf("simmpi: unreplayable kind %v", st.Kind))
	}
}

// makespan returns the representative node's latest clock — by
// symmetry, the world's.
func (s *rackReplay) makespan() vclock.Time { return vclock.MaxOf(s.t...) }

// rackRepeatSeq replays a script iters times on a rack world. ok is
// false when the world or any step refuses the replay.
func (w *World) rackRepeatSeq(steps []SeqStep, iters int) (vclock.Time, bool) {
	if !w.rackRepeatable() {
		return 0, false
	}
	for _, st := range steps {
		if !w.rackStepReplayable(st) {
			return 0, false
		}
	}
	s := newRackReplay(w)
	algo := ""
	for i := 0; i < iters; i++ {
		for _, st := range steps {
			algo = s.replayStep(st)
		}
	}
	if w.cfg.Tracer != nil {
		name := fmt.Sprintf("rack-seq[%s] x%d", algo, iters)
		if len(steps) == 1 && steps[0].Kind != ComputeStep {
			name = fmt.Sprintf("%s[%s] x%d", steps[0].Kind, algo, iters)
		}
		w.traceRackRepeat(name, s)
	}
	return s.makespan(), true
}

// traceRackRepeat records the replayed batch as one aggregated span
// plus the world-wide counters (one node's traffic times the node
// count) a full run would have accumulated.
func (w *World) traceRackRepeat(name string, s *rackReplay) {
	tr := w.cfg.Tracer
	track := w.cfg.TraceLabel
	if track == "" {
		track = "repeat"
	}
	nodes := int64(w.rack.nodes)
	tr.Span(track, simtrace.CatMPI, name, 0, s.makespan(), s.bytes*nodes)
	tr.Count(simtrace.CatMPI, "messages", s.msgs*nodes)
	tr.Count(simtrace.CatMPI, "bytes", s.bytes*nodes)
}

// validateSeq rejects scripts no engine (replay or goroutine) can run.
func (w *World) validateSeq(steps []SeqStep) error {
	for i, st := range steps {
		if st.Bytes < 0 || st.Compute < 0 {
			return fmt.Errorf("simmpi: step %d has negative cost", i)
		}
		if st.ComputePer != nil && len(st.ComputePer) == 0 {
			return fmt.Errorf("simmpi: step %d has empty ComputePer", i)
		}
		if st.Shift < 0 {
			return fmt.Errorf("simmpi: step %d has negative Shift", i)
		}
		if st.BytesPer != nil {
			if st.Kind != PairKind && st.Kind != RingKind {
				return fmt.Errorf("simmpi: step %d sets BytesPer on %v (Pair/Ring only)", i, st.Kind)
			}
			if len(st.BytesPer) == 0 {
				return fmt.Errorf("simmpi: step %d has empty BytesPer", i)
			}
			for _, b := range st.BytesPer {
				if b < 0 {
					return fmt.Errorf("simmpi: step %d has negative BytesPer entry", i)
				}
			}
		}
		switch st.Kind {
		case ComputeStep, BcastKind, AllreduceKind, AllgatherKind, AlltoallKind:
		case PairKind:
			if w.size%2 != 0 {
				return fmt.Errorf("simmpi: step %d pairs id^1 in an odd %d-rank world", i, w.size)
			}
		case RingKind:
			if w.size < 2 {
				return fmt.Errorf("simmpi: step %d ring-exchanges in a %d-rank world", i, w.size)
			}
		default:
			return fmt.Errorf("simmpi: step %d has unknown kind %v", i, st.Kind)
		}
	}
	return nil
}

// seqBody is the goroutine-engine execution of a script: the fallback
// the replay is pinned against, and the only path under fault plans or
// MAIA_NO_FASTPATH.
func seqBody(r *Rank, steps []SeqStep, iters int) {
	n := r.Size()
	for it := 0; it < iters; it++ {
		for _, st := range steps {
			c := st.Compute
			if st.ComputePer != nil {
				c = st.ComputePer[r.ID()%len(st.ComputePer)]
			}
			if c > 0 {
				r.Compute(c)
			}
			switch st.Kind {
			case ComputeStep:
			case PairKind:
				partner := r.ID() ^ 1
				buf := GetPayload(stepRankBytes(r.ID(), st.Bytes, st.BytesPer))
				Recycle(r.Sendrecv(partner, 0, buf, partner, 0))
				Recycle(buf)
			case RingKind:
				sh := seqShift(st, n)
				right := (r.ID() + sh) % n
				left := (r.ID() - sh + n) % n
				buf := GetPayload(stepRankBytes(r.ID(), st.Bytes, st.BytesPer))
				Recycle(r.Sendrecv(right, 0, buf, left, 0))
				Recycle(buf)
			case BcastKind:
				buf := GetPayload(st.Bytes)
				out := r.Bcast(0, buf)
				if r.ID() != 0 {
					Recycle(out)
				}
				Recycle(buf)
			case AllreduceKind:
				elems := st.Bytes / 8
				if elems < 1 {
					elems = 1
				}
				vec := f64Pool.Get(elems)
				RecycleF64(r.Allreduce(vec, OpSum))
				RecycleF64(vec)
			case AllgatherKind:
				buf := GetPayload(st.Bytes)
				Recycle(r.Allgather(buf))
				Recycle(buf)
			case AlltoallKind:
				buf := GetPayload(n * st.Bytes)
				Recycle(r.Alltoall(buf, st.Bytes))
				Recycle(buf)
			}
		}
	}
}

// RunSeq executes a script on the goroutine engine (one goroutine per
// rank). Most callers want SeqTime, which replays when it can.
func (w *World) RunSeq(steps []SeqStep, iters int) error {
	if err := w.validateSeq(steps); err != nil {
		return err
	}
	return w.Run(func(r *Rank) { seqBody(r, steps, iters) })
}

// RepeatSeq prices a script in closed form when the world and every
// step qualify: flat symmetric worlds replay with repeat.go's scalar
// clock, node-major rack worlds with the per-local-index clock vector.
// ok is false when the goroutine engine is needed.
func (w *World) RepeatSeq(steps []SeqStep, iters int) (vclock.Time, bool) {
	if w.rack != nil {
		return w.rackRepeatSeq(steps, iters)
	}
	return w.flatRepeatSeq(steps, iters)
}

// flatRepeatSeq replays a script on a flat symmetric world: on the
// scalar clock when every step keeps every rank's clock equal, on the
// clock vector otherwise (per-rank compute or payload sizes, binomial
// Bcast, the non-power-of-two Allreduce).
func (w *World) flatRepeatSeq(steps []SeqStep, iters int) (vclock.Time, bool) {
	if !w.repeatable() {
		return 0, false
	}
	if !w.seqScalar(steps) {
		return w.vecRepeatSeq(steps, iters)
	}
	s := symReplay{w: w}
	for i := 0; i < iters; i++ {
		for _, st := range steps {
			if st.Compute > 0 {
				s.t += st.Compute
			}
			switch st.Kind {
			case ComputeStep:
			case PairKind, RingKind:
				s.exchange(st.Bytes)
			default:
				if _, ok := w.replayOnce(&s, st.Kind, st.Bytes); !ok {
					return 0, false
				}
			}
		}
	}
	if w.cfg.Tracer != nil {
		w.traceRepeat(fmt.Sprintf("seq x%d", iters), &s)
	}
	return s.t, true
}

// seqScalar reports whether every step of a script preserves the scalar
// replay's equal-clock symmetry.
func (w *World) seqScalar(steps []SeqStep) bool {
	for _, st := range steps {
		if st.ComputePer != nil || st.BytesPer != nil {
			return false // per-rank shapes need the clock vector
		}
		switch st.Kind {
		case ComputeStep, AllgatherKind, AlltoallKind:
		case PairKind:
			if w.size%2 != 0 {
				return false
			}
		case RingKind:
			// A ring shift is symmetric for any size >= 2: every rank
			// posts one send and receives one message posted at the same
			// clock (repeatable() already requires size >= 2).
		case AllreduceKind:
			if w.size&(w.size-1) != 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// SeqTime builds a world and prices a script run of iters iterations:
// in closed form when the replay qualifies (rack worlds of identical
// nodes, flat symmetric worlds), on the goroutine engine otherwise.
// Scripts never read payload contents, so the world runs size-only.
// With a tracer attached the replay emits one aggregated span — rack
// experiments stay traceable without goroutine-running ~17k ranks.
func SeqTime(cfg Config, steps []SeqStep, iters int, opts ...Option) (vclock.Time, error) {
	cfg.SizeOnlyPayloads = true
	w, err := NewWorld(cfg, opts...)
	if err != nil {
		return 0, err
	}
	if err := w.validateSeq(steps); err != nil {
		return 0, err
	}
	if total, ok := w.RepeatSeq(steps, iters); ok {
		return total, nil
	}
	if err := w.RunSeq(steps, iters); err != nil {
		return 0, err
	}
	return w.MaxTime(), nil
}
