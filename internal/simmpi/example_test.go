package simmpi_test

import (
	"fmt"

	"maia/internal/simmpi"
)

// A minimal MPI program: four ranks sum their IDs with Allreduce. Ranks
// are goroutines, messages carry real bytes, and the world's makespan is
// deterministic virtual time.
func ExampleWorld_Run() {
	w, err := simmpi.NewWorld(simmpi.Config{Ranks: simmpi.HostPlacement(4, 1)})
	if err != nil {
		panic(err)
	}
	sums := make([]float64, 4)
	if err := w.Run(func(r *simmpi.Rank) {
		sums[r.ID()] = r.AllreduceSum(float64(r.ID()))
	}); err != nil {
		panic(err)
	}
	fmt.Println(sums[0], sums[3], w.MaxTime() > 0)
	// Output: 6 6 true
}
