package simmpi

import (
	"strings"
	"testing"

	"maia/internal/machine"
	"maia/internal/simtrace"
	"maia/internal/vclock"
)

// A traced collective's spans agree with the world's reported virtual
// times: the latest span end equals the makespan CollectiveTime derives
// its answer from, and the per-rank MPI op spans carry the algorithm
// actually chosen.
func TestTraceCollectiveConsistency(t *testing.T) {
	tr := simtrace.New()
	cfg := Config{Ranks: HostPlacement(16, 1)}
	const iters = 2
	tt, err := CollectiveTime(cfg, AllgatherKind, 1024, iters, WithTracer(tr, "host16"))
	if err != nil {
		t.Fatal(err)
	}
	sum := tr.Summary()
	if got, want := sum.Horizon, tt*vclock.Time(iters); !closeTo(got, want) {
		t.Errorf("trace horizon %v, want makespan %v", got, want)
	}

	var mpi, pcie, compute, rd int
	for _, s := range tr.Spans() {
		if s.End < s.Start {
			t.Fatalf("span %q ends before it starts", s.Name)
		}
		switch s.Cat {
		case simtrace.CatMPI:
			mpi++
			if s.Name == "MPI_Allgather[rd]" {
				rd++
			}
		case simtrace.CatPCIe:
			pcie++
			if s.Name != "shm:host" {
				t.Errorf("host-only world produced flight fabric %q", s.Name)
			}
		case simtrace.CatCompute:
			compute++
		default:
			t.Errorf("unexpected category %q", s.Cat)
		}
		if !strings.HasPrefix(s.Track, "host16/rank") {
			t.Errorf("track %q lacks the TraceLabel prefix", s.Track)
		}
	}
	// 16 ranks x 2 iters outer op spans; 1 KB on 16 pow2 ranks is
	// recursive doubling (4 rounds): 64 messages per iter, each with an
	// inject (compute) and a flight (pcie) span.
	if rd != 16*iters {
		t.Errorf("%d MPI_Allgather[rd] spans, want %d", rd, 16*iters)
	}
	if mpi != 16*iters {
		t.Errorf("%d mpi spans, want %d", mpi, 16*iters)
	}
	if want := 16 * 4 * iters; pcie != want || compute != want {
		t.Errorf("pcie/compute spans %d/%d, want %d each", pcie, compute, want)
	}

	// Counters match the message count.
	var msgs, bytes int64
	for _, c := range tr.Counters() {
		switch c.Key {
		case simtrace.CounterKey{Cat: simtrace.CatMPI, Name: "messages"}:
			msgs = c.Value
		case simtrace.CounterKey{Cat: simtrace.CatMPI, Name: "bytes"}:
			bytes = c.Value
		}
	}
	if msgs != int64(16*4*iters) {
		t.Errorf("messages counter %d, want %d", msgs, 16*4*iters)
	}
	// Recursive doubling round k moves 2^k KB blocks: 1+2+4+8 KB per
	// rank per iter.
	if want := int64(16*iters) * 15 * 1024; bytes != want {
		t.Errorf("bytes counter %d, want %d", bytes, want)
	}
}

func closeTo(a, b vclock.Time) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-15*vclock.Time(1)+b*1e-9
}

// The ring algorithm (non-power-of-two world) names its spans [ring],
// and cross-fabric flights are named by the fabric they ride.
func TestTraceAlgorithmAndFabricNames(t *testing.T) {
	tr := simtrace.New()
	cfg := Config{Ranks: PhiPlacement(machine.Phi0, 6, 1)}
	if _, err := CollectiveTime(cfg, AllgatherKind, 256, 1, WithTracer(tr, "")); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range tr.Spans() {
		names[s.Name] = true
	}
	if !names["MPI_Allgather[ring]"] {
		t.Error("non-power-of-two allgather did not trace as [ring]")
	}
	if !names["shm:phi"] {
		t.Error("Phi-local flights not named shm:phi")
	}

	// Cross-device world: host rank 0, Phi0 rank 1.
	tr2 := simtrace.New()
	w, err := NewWorld(Config{Ranks: []Location{
		{Device: machine.Host, ThreadsPerCore: 1},
		{Device: machine.Phi0, ThreadsPerCore: 1},
	}}, WithTracer(tr2, ""))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, make([]byte, 4096))
		} else {
			r.Recv(0, 7)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range tr2.Spans() {
		if s.Cat == simtrace.CatPCIe && s.Name == "pcie:host-Phi0" {
			found = true
		}
	}
	if !found {
		t.Error("cross-device flight not named pcie:host-Phi0")
	}
}

// Barrier bumps the barrier counter and names its algorithm.
func TestTraceBarrier(t *testing.T) {
	tr := simtrace.New()
	w, err := NewWorld(Config{Ranks: HostPlacement(4, 1)}, WithTracer(tr, ""))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(r *Rank) { r.Barrier(); r.Barrier() }); err != nil {
		t.Fatal(err)
	}
	var barriers int64
	for _, c := range tr.Counters() {
		if c.Key == (simtrace.CounterKey{Cat: simtrace.CatMPI, Name: "barriers"}) {
			barriers = c.Value
		}
	}
	if barriers != 8 {
		t.Errorf("barriers counter %d, want 8 (4 ranks x 2)", barriers)
	}
	found := false
	for _, s := range tr.Spans() {
		if s.Name == "MPI_Barrier[dissemination]" {
			found = true
		}
	}
	if !found {
		t.Error("barrier span lacks [dissemination]")
	}
}

// A world with tracing off behaves identically (same virtual times) and
// the rank clocks are unaffected by tracing on: the tracer observes,
// never perturbs.
func TestTracingDoesNotPerturbVirtualTime(t *testing.T) {
	run := func(tr *simtrace.Tracer) vclock.Time {
		cfg := Config{Ranks: PhiPlacement(machine.Phi0, 8, 2)}
		tt, err := CollectiveTime(cfg, AlltoallKind, 2048, 3, WithTracer(tr, ""))
		if err != nil {
			t.Fatal(err)
		}
		return tt
	}
	off := run(nil)
	on := run(simtrace.New())
	if off != on {
		t.Errorf("tracing changed virtual time: off %v, on %v", off, on)
	}
}

// The send path with tracing off must not allocate more than the
// untraced baseline: the hooks are nil-guarded. The eager-path
// allocations are the payload copy and mailbox bookkeeping; assert the
// tracing hooks add zero by comparing against the traced run's delta
// being entirely tracer-side.
func BenchmarkSendPathTracingOff(b *testing.B) {
	benchSendPath(b, nil)
}

// The traced counterpart, for comparing -benchmem numbers.
func BenchmarkSendPathTracingOn(b *testing.B) {
	benchSendPath(b, simtrace.New())
}

func benchSendPath(b *testing.B, tr *simtrace.Tracer) {
	b.ReportAllocs()
	payload := make([]byte, 1024)
	for i := 0; i < b.N; i++ {
		w, err := NewWorld(Config{Ranks: HostPlacement(2, 1)}, WithTracer(tr, ""))
		if err != nil {
			b.Fatal(err)
		}
		err = w.Run(func(r *Rank) {
			if r.ID() == 0 {
				for k := 0; k < 64; k++ {
					r.Send(1, 1, payload)
				}
			} else {
				for k := 0; k < 64; k++ {
					r.Recv(0, 1)
				}
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
