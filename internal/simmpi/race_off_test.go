//go:build !race

package simmpi

// raceEnabled mirrors race_on_test.go for normal builds.
const raceEnabled = false
