package simmpi

import (
	"fmt"

	"maia/internal/machine"
	"maia/internal/simtrace"
	"maia/internal/vclock"
)

// AnyTag matches any message tag in Recv.
const AnyTag = -1

// Rank is the per-process handle passed to the body function of
// World.Run. All methods must be called only from that rank's goroutine.
type Rank struct {
	id    int
	w     *World
	clock vclock.Clock

	// Profiling state (see profile.go).
	prof   RankProfile
	inColl bool

	// sendSeq numbers this rank's sends in program order; together with
	// (src, dst) it identifies a message for the fault plan's seeded
	// drop decisions, independent of goroutine interleaving.
	sendSeq int

	// Tracing state: tracer is nil when tracing is off (every hook is
	// then a no-op); track is the precomputed tracer track name;
	// collAlgo is the algorithm chosen by the outermost running
	// collective, used to suffix its span name.
	tracer   *simtrace.Tracer
	track    string
	collAlgo string
}

// ID returns the rank number in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.size }

// Location returns the rank's placement.
func (r *Rank) Location() Location { return r.w.cfg.Ranks[r.id] }

// Device returns the device the rank runs on.
func (r *Rank) Device() machine.Device { return r.w.cfg.Ranks[r.id].Device }

// Now returns the rank's current virtual time.
func (r *Rank) Now() vclock.Time { return r.clock.Now() }

// Compute charges local computation time to the rank's clock. Under a
// fault plan the nominal duration is first degraded by the device's
// straggler factor and any thermal-throttle window the work falls into,
// so profiles and traces report the time the degraded machine actually
// spent.
func (r *Rank) Compute(t vclock.Time) {
	t0 := r.clock.Now()
	if plan := r.w.cfg.Faults; plan != nil {
		t = plan.ComputeTime(r.w.cfg.Ranks[r.id].Device, t0, t)
	}
	r.clock.Advance(t)
	r.prof.Compute += t
	if r.tracer != nil {
		r.tracer.Span(r.track, simtrace.CatCompute, "compute", t0, r.clock.Now(), 0)
	}
}

// Send posts a message to rank dst. It is buffered: the call charges only
// the sender-side injection cost and returns; delivery timing is settled
// when the receiver matches the message. Sending to oneself panics, as
// does an out-of-range destination.
func (r *Rank) Send(dst, tag int, data []byte) {
	if dst == r.id {
		panic(fmt.Sprintf("simmpi: rank %d sends to itself", r.id))
	}
	if dst < 0 || dst >= r.w.size {
		panic(fmt.Sprintf("simmpi: rank %d sends to invalid rank %d", r.id, dst))
	}
	if tag < 0 {
		panic(fmt.Sprintf("simmpi: negative user tag %d", tag))
	}
	r.send(dst, tag, data)
}

// send is the internal path shared with collectives (which use negative
// tags from the reserved space).
func (r *Rank) send(dst, tag int, data []byte) {
	if !r.inColl {
		defer func(t0 vclock.Time) {
			r.record("MPI_Send", int64(len(data)), r.clock.Now()-t0)
			r.traceOp("MPI_Send", int64(len(data)), t0)
		}(r.clock.Now())
	}
	tsPost := r.clock.Now()
	sendSide, _, _ := r.w.transferCost(r.id, dst, len(data))
	r.clock.Advance(sendSide)
	if r.tracer != nil {
		r.tracer.Span(r.track, simtrace.CatCompute, "inject", tsPost, r.clock.Now(), int64(len(data)))
		r.tracer.Count(simtrace.CatMPI, "messages", 1)
		r.tracer.Count(simtrace.CatMPI, "bytes", int64(len(data)))
	}

	// The message owns a pooled buffer of the payload's exact length; in
	// size-only mode the bytes themselves are never read, so the copy is
	// skipped and the buffer rides along uninitialized.
	buf := payloadPool.Get(len(data))
	if !r.w.cfg.SizeOnlyPayloads {
		copy(buf, data)
	}
	seq := r.sendSeq
	r.sendSeq++
	box := r.w.boxes[dst]
	box.mu.Lock()
	box.bySrc[r.id] = append(box.bySrc[r.id], message{tag: tag, data: buf, sendTime: tsPost, seq: seq})
	box.cond.Signal()
	box.mu.Unlock()
}

// Recv blocks until a message from src with the given tag (or AnyTag)
// arrives, charges the receiver's clock, and returns the payload.
func (r *Rank) Recv(src, tag int) []byte {
	if src == r.id || src < 0 || src >= r.w.size {
		panic(fmt.Sprintf("simmpi: rank %d receives from invalid rank %d", r.id, src))
	}
	return r.recv(src, tag)
}

func (r *Rank) recv(src, tag int) []byte {
	// A blocking receive is a nonblocking receive posted and completed
	// at the same instant.
	t0 := r.clock.Now()
	data := r.recvAt(src, tag, t0)
	if !r.inColl {
		r.record("MPI_Recv", int64(len(data)), r.clock.Now()-t0)
		r.traceOp("MPI_Recv", int64(len(data)), t0)
	}
	return data
}

// Sendrecv sends to dst and receives from src in one exchange (the shape
// of the paper's Figure 10 ring benchmark).
func (r *Rank) Sendrecv(dst, sendTag int, data []byte, src, recvTag int) []byte {
	r.Send(dst, sendTag, data)
	return r.Recv(src, recvTag)
}
