package simmpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"maia/internal/simtrace"
)

// Reserved internal tags (user tags are non-negative).
const (
	tagBarrier = -2 - iota
	tagBcast
	tagReduce
	tagAllreduce
	tagAllgatherRD
	tagAllgatherRing
	tagAlltoall
	tagGather
	tagScatter
	// Hierarchical-collective phases (hier.go): up-funnel to the node
	// leader, leader-to-leader inter-node traffic, down-distribution.
	tagHierUp
	tagHierInter
	tagHierDown
)

// Op combines src into dst element-wise (dst = op(dst, src)). All
// collectives apply ops in a fixed tree order, so floating-point results
// are deterministic.
type Op func(dst, src []float64)

// OpSum adds src into dst.
func OpSum(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// OpMax keeps the element-wise maximum in dst.
func OpMax(dst, src []float64) {
	for i := range dst {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// OpMin keeps the element-wise minimum in dst.
func OpMin(dst, src []float64) {
	for i := range dst {
		if src[i] < dst[i] {
			dst[i] = src[i]
		}
	}
}

// Barrier synchronizes all ranks with the dissemination algorithm:
// ceil(log2 n) rounds of zero-byte exchanges.
func (r *Rank) barrierImpl() {
	n := r.w.size
	r.setAlgo("dissemination")
	if n == 1 {
		return
	}
	for step := 1; step < n; step <<= 1 {
		dst := (r.id + step) % n
		src := (r.id - step + n) % n
		r.send(dst, tagBarrier, nil)
		r.recv(src, tagBarrier)
	}
}

// Bcast broadcasts root's buffer to every rank and returns each rank's
// copy. As in MPI, every rank passes a buffer of the same length (the
// "count" argument of MPI_Bcast); only root's contents matter. Short
// messages take the binomial tree (log n latency steps); long messages
// take the van de Geijn scatter-plus-ring-allgather, which moves only
// ~2x the message per rank — the algorithm real MPI libraries switch to
// for payloads like Cart3D's 56 MB broadcasts (Section 6.4.2).
func (r *Rank) bcastImpl(root int, data []byte) []byte {
	n := r.w.size
	if root < 0 || root >= n {
		panic(fmt.Sprintf("simmpi: Bcast root %d out of range", root))
	}
	if n == 1 {
		return data
	}
	if r.w.rack != nil {
		return r.hierBcast(root, data)
	}
	if len(data) > r.w.cfg.BcastLongBytes && n > 2 {
		r.setAlgo("vandegeijn")
		return r.bcastVanDeGeijn(root, data, len(data))
	}
	r.setAlgo("binomial")
	return r.bcastBinomial(root, data)
}

// bcastBinomial is MPICH's classic binomial-tree broadcast.
func (r *Rank) bcastBinomial(root int, data []byte) []byte {
	n := r.w.size
	rel := (r.id - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := (r.id - mask + n) % n
			data = r.recv(src, tagBcast)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := (r.id + mask) % n
			r.send(dst, tagBcast, data)
		}
		mask >>= 1
	}
	return data
}

// bcastVanDeGeijn scatters the message down the binomial tree in blocks,
// then ring-allgathers the blocks. Each rank moves O(2m) bytes instead
// of the binomial tree's O(m log n) on the critical path.
func (r *Rank) bcastVanDeGeijn(root int, data []byte, msgBytes int) []byte {
	n := r.w.size
	block := (msgBytes + n - 1) / n
	padded := block * n
	// Root pads to a whole number of blocks (zeroed: the padding bytes
	// travel through the scatter/allgather, so keep them deterministic).
	var buf []byte
	if r.id == root {
		if r.w.cfg.SizeOnlyPayloads {
			buf = payloadPool.Get(padded)
		} else {
			buf = payloadPool.GetZeroed(padded)
			copy(buf, data)
		}
	}
	mine := r.Scatter(root, buf, block)
	Recycle(buf)
	// Scatter hands rank i block i, so the allgather reassembles the
	// message in rank order regardless of the root.
	full := r.Allgather(mine)
	Recycle(mine)
	return full[:msgBytes]
}

// Reduce combines every rank's vector with op down a binomial tree and
// returns the result on root (nil elsewhere). vec is not modified.
func (r *Rank) reduceImpl(root int, vec []float64, op Op) []float64 {
	n := r.w.size
	if root < 0 || root >= n {
		panic(fmt.Sprintf("simmpi: Reduce root %d out of range", root))
	}
	r.setAlgo("binomial")
	acc := f64Pool.Get(len(vec))
	copy(acc, vec)
	rel := (r.id - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			dst := (r.id - mask + n) % n
			pb := r.packF64(acc)
			r.send(dst, tagReduce, pb)
			Recycle(pb)
			if rel == 0 {
				break
			}
			RecycleF64(acc)
			return nil
		}
		if rel+mask < n {
			src := (r.id + mask) % n
			rb := r.recv(src, tagReduce)
			other := r.unpackF64(rb)
			Recycle(rb)
			if len(other) != len(acc) {
				panic(fmt.Sprintf("simmpi: Reduce length mismatch %d vs %d", len(other), len(acc)))
			}
			r.combine(op, acc, other)
			RecycleF64(other)
		}
		mask <<= 1
	}
	if rel == 0 {
		return acc
	}
	return nil
}

// Allreduce combines every rank's vector with op and returns the result
// on every rank. Power-of-two worlds use recursive doubling; others fall
// back to Reduce-then-Bcast. vec is not modified.
func (r *Rank) allreduceImpl(vec []float64, op Op) []float64 {
	n := r.w.size
	if n == 1 {
		out := f64Pool.Get(len(vec))
		copy(out, vec)
		return out
	}
	if r.w.rack != nil {
		return r.hierAllreduce(vec, op)
	}
	if n&(n-1) == 0 {
		r.setAlgo("rd")
		acc := f64Pool.Get(len(vec))
		copy(acc, vec)
		for mask := 1; mask < n; mask <<= 1 {
			partner := r.id ^ mask
			pb := r.packF64(acc)
			r.send(partner, tagAllreduce, pb)
			Recycle(pb)
			rb := r.recv(partner, tagAllreduce)
			other := r.unpackF64(rb)
			Recycle(rb)
			if len(other) != len(acc) {
				panic(fmt.Sprintf("simmpi: Allreduce length mismatch %d vs %d", len(other), len(acc)))
			}
			// Fixed combine order regardless of partner side keeps the
			// result identical on every rank.
			if r.id < partner {
				r.combine(op, acc, other)
				RecycleF64(other)
			} else {
				r.combine(op, other, acc)
				RecycleF64(acc)
				acc = other
			}
		}
		return acc
	}
	r.setAlgo("reduce+bcast")
	res := r.Reduce(0, vec, op)
	var buf []byte
	if r.id == 0 {
		buf = r.packF64(res)
		RecycleF64(res)
	} else {
		// Only the length matters on non-root ranks (Bcast replaces or
		// ignores the contents), so an uninitialized pooled buffer is fine.
		buf = payloadPool.Get(8 * len(vec))
	}
	out := r.Bcast(0, buf)
	result := r.unpackF64(out)
	Recycle(out)
	return result
}

// Allgather concatenates every rank's block (all blocks must be the same
// size) in rank order on every rank. Small blocks on power-of-two worlds
// use recursive doubling; larger blocks (or non-power-of-two worlds) use
// the ring algorithm. The size switch is what produces the step in the
// paper's Figure 13 at 2–4 KB.
func (r *Rank) allgatherImpl(block []byte) []byte {
	if r.w.rack != nil {
		return r.hierAllgather(block)
	}
	n := r.w.size
	m := len(block)
	// Every block of out is overwritten below, so an uninitialized
	// pooled buffer is safe. Callers own the result; Recycle returns it.
	sizeOnly := r.w.cfg.SizeOnlyPayloads
	out := payloadPool.Get(n * m)
	if !sizeOnly {
		copy(out[r.id*m:], block)
	}
	if n == 1 {
		return out
	}
	pow2 := n&(n-1) == 0
	if pow2 && m <= r.w.cfg.AllgatherSwitchBytes {
		r.setAlgo("rd")
		// Recursive doubling: before round k (mask = 2^k) each rank
		// holds the contiguous mask-block run of its group; the round
		// swaps whole runs between partner groups.
		for mask := 1; mask < n; mask <<= 1 {
			partner := r.id ^ mask
			group := (r.id / mask) * mask
			pgroup := (partner / mask) * mask
			r.send(partner, tagAllgatherRD, out[group*m:(group+mask)*m])
			incoming := r.recv(partner, tagAllgatherRD)
			if !sizeOnly {
				copy(out[pgroup*m:(pgroup+mask)*m], incoming)
			}
			Recycle(incoming)
		}
		return out
	}
	// Ring: n-1 steps; at each step pass the block received previously.
	r.setAlgo("ring")
	right := (r.id + 1) % n
	left := (r.id - 1 + n) % n
	cur := r.id
	for step := 0; step < n-1; step++ {
		r.send(right, tagAllgatherRing, out[cur*m:(cur+1)*m])
		cur = (cur - 1 + n) % n
		data := r.recv(left, tagAllgatherRing)
		if !sizeOnly {
			copy(out[cur*m:(cur+1)*m], data)
		}
		Recycle(data)
	}
	return out
}

// Alltoall sends block i of the input to rank i and returns the blocks
// received from every rank, in rank order. All blocks are blockBytes
// long; len(data) must be Size()*blockBytes. The pairwise-exchange
// algorithm runs n-1 communication rounds.
func (r *Rank) alltoallImpl(data []byte, blockBytes int) []byte {
	n := r.w.size
	if len(data) != n*blockBytes {
		panic(fmt.Sprintf("simmpi: Alltoall buffer %d bytes, want %d", len(data), n*blockBytes))
	}
	if r.w.rack != nil {
		return r.hierAlltoall(data, blockBytes)
	}
	r.setAlgo("pairwise")
	sizeOnly := r.w.cfg.SizeOnlyPayloads
	out := payloadPool.Get(n * blockBytes)
	if !sizeOnly {
		copy(out[r.id*blockBytes:], data[r.id*blockBytes:(r.id+1)*blockBytes])
	}
	for step := 1; step < n; step++ {
		dst := (r.id + step) % n
		src := (r.id - step + n) % n
		r.send(dst, tagAlltoall, data[dst*blockBytes:(dst+1)*blockBytes])
		got := r.recv(src, tagAlltoall)
		if !sizeOnly {
			copy(out[src*blockBytes:(src+1)*blockBytes], got)
		}
		Recycle(got)
	}
	return out
}

// Gather collects every rank's block on root (linear algorithm) and
// returns the concatenation there, nil elsewhere.
func (r *Rank) gatherImpl(root int, block []byte) []byte {
	n := r.w.size
	if root < 0 || root >= n {
		panic(fmt.Sprintf("simmpi: Gather root %d out of range", root))
	}
	r.setAlgo("linear")
	if r.id != root {
		r.send(root, tagGather, block)
		return nil
	}
	m := len(block)
	sizeOnly := r.w.cfg.SizeOnlyPayloads
	out := payloadPool.Get(n * m)
	if !sizeOnly {
		copy(out[root*m:], block)
	}
	for src := 0; src < n; src++ {
		if src == root {
			continue
		}
		data := r.recv(src, tagGather)
		if !sizeOnly {
			copy(out[src*m:(src+1)*m], data)
		}
		Recycle(data)
	}
	return out
}

// Scatter distributes root's buffer (Size() equal blocks) and returns
// each rank's block.
func (r *Rank) scatterImpl(root int, data []byte, blockBytes int) []byte {
	n := r.w.size
	if root < 0 || root >= n {
		panic(fmt.Sprintf("simmpi: Scatter root %d out of range", root))
	}
	r.setAlgo("linear")
	if r.id == root {
		if len(data) != n*blockBytes {
			panic(fmt.Sprintf("simmpi: Scatter buffer %d bytes, want %d", len(data), n*blockBytes))
		}
		for dst := 0; dst < n; dst++ {
			if dst == root {
				continue
			}
			r.send(dst, tagScatter, data[dst*blockBytes:(dst+1)*blockBytes])
		}
		out := payloadPool.Get(blockBytes)
		if !r.w.cfg.SizeOnlyPayloads {
			copy(out, data[root*blockBytes:(root+1)*blockBytes])
		}
		return out
	}
	return r.recv(root, tagScatter)
}

// AllreduceSum is shorthand for a one-element sum Allreduce.
func (r *Rank) AllreduceSum(x float64) float64 {
	in := f64Pool.Get(1)
	in[0] = x
	out := r.Allreduce(in, OpSum)
	v := out[0]
	RecycleF64(out)
	RecycleF64(in)
	return v
}

// packF64, unpackF64 and combine are the size-only-aware conversion and
// reduction hooks: a world whose rank bodies never read message
// contents (Config.SizeOnlyPayloads) skips the per-element conversion
// loops and the reduction arithmetic, keeping only the byte lengths —
// which is all any modeled time derives from. Content-preserving worlds
// take the full path.
func (r *Rank) packF64(v []float64) []byte {
	if r.w.cfg.SizeOnlyPayloads {
		return payloadPool.Get(8 * len(v))
	}
	return f64ToBytes(v)
}

func (r *Rank) unpackF64(b []byte) []float64 {
	if r.w.cfg.SizeOnlyPayloads {
		return f64Pool.Get(len(b) / 8)
	}
	return bytesToF64(b)
}

func (r *Rank) combine(op Op, dst, src []float64) {
	if !r.w.cfg.SizeOnlyPayloads {
		op(dst, src)
	}
}

// f64ToBytes and bytesToF64 move real float64 payloads through the byte
// transport. Both draw their output from the package free lists (the
// result is fully overwritten), so conversion scratch recycles through
// Recycle/RecycleF64 instead of churning the heap.
func f64ToBytes(v []float64) []byte {
	b := payloadPool.Get(8 * len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

func bytesToF64(b []byte) []float64 {
	v := f64Pool.Get(len(b) / 8)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return v
}

// --- Public collective entry points -----------------------------------
//
// Each wraps its implementation so the profiler attributes the whole
// operation (including its internal point-to-point traffic) to the MPI
// function, the way MPInside-style tools report.

// Barrier synchronizes all ranks (dissemination algorithm).
func (r *Rank) Barrier() {
	r.collective("MPI_Barrier", 0, func() { r.barrierImpl() })
	r.tracer.Count(simtrace.CatMPI, "barriers", 1)
}

// Bcast broadcasts root's buffer; see bcastImpl for algorithm selection.
func (r *Rank) Bcast(root int, data []byte) (out []byte) {
	r.collective("MPI_Bcast", int64(len(data)), func() { out = r.bcastImpl(root, data) })
	return out
}

// Reduce combines every rank's vector onto root.
func (r *Rank) Reduce(root int, vec []float64, op Op) (out []float64) {
	r.collective("MPI_Reduce", int64(8*len(vec)), func() { out = r.reduceImpl(root, vec, op) })
	return out
}

// Allreduce combines every rank's vector onto every rank.
func (r *Rank) Allreduce(vec []float64, op Op) (out []float64) {
	r.collective("MPI_Allreduce", int64(8*len(vec)), func() { out = r.allreduceImpl(vec, op) })
	return out
}

// Allgather concatenates every rank's equal-size block on every rank.
func (r *Rank) Allgather(block []byte) (out []byte) {
	r.collective("MPI_Allgather", int64(len(block)), func() { out = r.allgatherImpl(block) })
	return out
}

// Alltoall delivers block i of every rank's buffer to rank i.
func (r *Rank) Alltoall(data []byte, blockBytes int) (out []byte) {
	r.collective("MPI_Alltoall", int64(len(data)), func() { out = r.alltoallImpl(data, blockBytes) })
	return out
}

// Gather collects every rank's block on root.
func (r *Rank) Gather(root int, block []byte) (out []byte) {
	r.collective("MPI_Gather", int64(len(block)), func() { out = r.gatherImpl(root, block) })
	return out
}

// Scatter distributes root's buffer as equal blocks.
func (r *Rank) Scatter(root int, data []byte, blockBytes int) (out []byte) {
	r.collective("MPI_Scatter", int64(blockBytes), func() { out = r.scatterImpl(root, data, blockBytes) })
	return out
}
