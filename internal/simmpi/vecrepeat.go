package simmpi

import (
	"fmt"

	"maia/internal/simtrace"
	"maia/internal/vclock"
)

// The clock-vector replay generalizes repeat.go's scalar argument to
// ASYMMETRIC algorithms on flat homogeneous worlds. The scalar replay
// needs every rank's clock equal at every round boundary; a binomial
// tree (Bcast, the reduce half of the non-power-of-two Allreduce) or a
// linear scatter breaks that. But homogeneity still pins the one thing
// asymmetry could vary: every rank pair has the same transferCost, so
// the full world is reproduced by one clock PER RANK replayed through
// the exact send/recvAt float recurrences in the goroutine engine's
// message-matching order. Messages match per (src, tag) FIFO in
// program order, so replaying ranks in dependency order (a bcast
// parent before its children, reduce children before their parent, all
// sends of a round before its receives) reproduces every rank's clock
// bit for bit — the same argument hierrepeat.go makes for one
// representative node, applied to the whole flat world.
//
// The replay refuses exactly where repeat.go does: fault plans,
// heterogeneous placement, worlds smaller than two ranks, and the
// MAIA_NO_FASTPATH escape hatch. Rack worlds keep the hierarchical
// replay. Cost: O(ranks) state and O(messages) scalar arithmetic —
// fig11/fig12's 236-rank catalogs price in microseconds.

// vecReplay is the full clock vector of a flat homogeneous world.
type vecReplay struct {
	w *World
	// t[j] is rank j's clock.
	t []vclock.Time
	// post[x] records the post time of the in-flight send addressed to
	// rank x (or, in reduce, the single upward send OF rank x). Every
	// pattern below has at most one outstanding message per slot.
	post []vclock.Time
	// msgs/bytes count the whole world's traffic for the aggregated
	// trace span (unlike symReplay's per-rank counters).
	msgs, bytes int64
}

func newVecReplay(w *World) *vecReplay {
	n := w.size
	return &vecReplay{w: w, t: make([]vclock.Time, n), post: make([]vclock.Time, n)}
}

// send mirrors Rank.send on rank src: records the post time, advances
// the sender by the send-side cost, and returns the post time. All
// pairs share transferCost(0, 1, ·) — the world is homogeneous.
func (s *vecReplay) send(src, n int) vclock.Time {
	tsPost := s.t[src]
	sendSide, _, _ := s.w.transferCost(0, 1, n)
	s.t[src] += sendSide
	s.msgs++
	s.bytes += int64(n)
	return tsPost
}

// recv mirrors recvAt on rank dst for a message of n bytes posted at
// tsPost.
func (s *vecReplay) recv(dst, n int, tsPost vclock.Time) {
	post := s.t[dst]
	_, flight, rendezvous := s.w.transferCost(0, 1, n)
	start := tsPost
	if rendezvous {
		start = vclock.Max(tsPost, post)
	}
	if done := start + flight; done > s.t[dst] {
		s.t[dst] = done
	}
}

// makespan returns the latest rank clock — the world's MaxTime.
func (s *vecReplay) makespan() vclock.Time { return vclock.MaxOf(s.t...) }

// replayBcastBinomial replays the binomial broadcast of nb bytes from
// root 0 (rel == id). Ranks are processed in ascending index: a rank's
// parent (j - lowbit(j)) always precedes it, and each rank's own
// receive-then-send program order is preserved.
func (s *vecReplay) replayBcastBinomial(nb int) {
	n := s.w.size
	for j := 0; j < n; j++ {
		var mask int
		if j != 0 {
			mask = j & -j
			s.recv(j, nb, s.post[j])
			mask >>= 1
		} else {
			mask = 1
			for mask < n {
				mask <<= 1
			}
			mask >>= 1
		}
		for ; mask > 0; mask >>= 1 {
			if j+mask < n {
				s.post[j+mask] = s.send(j, nb)
			}
		}
	}
}

// replayReduce replays the binomial reduce of nb bytes to root 0.
// Ranks are processed in descending index: a rank's children (j + mask)
// always precede it, so their upward send times are recorded before j
// consumes them.
func (s *vecReplay) replayReduce(nb int) {
	n := s.w.size
	for j := n - 1; j >= 0; j-- {
		mask := 1
		for mask < n {
			if j&mask != 0 {
				s.post[j] = s.send(j, nb)
				break
			}
			if j+mask < n {
				s.recv(j, nb, s.post[j+mask])
			}
			mask <<= 1
		}
	}
}

// replayScatter replays root 0's linear scatter of block-byte payloads:
// the root posts its sends in ascending destination order, then each
// destination receives.
func (s *vecReplay) replayScatter(block int) {
	n := s.w.size
	for dst := 1; dst < n; dst++ {
		s.post[dst] = s.send(0, block)
	}
	for dst := 1; dst < n; dst++ {
		s.recv(dst, block, s.post[dst])
	}
}

// replayBcast mirrors bcastImpl's algorithm selection for a root-0
// broadcast of nb bytes: binomial for short messages, van de Geijn
// (binomial-block scatter + allgather) past BcastLongBytes.
func (s *vecReplay) replayBcast(nb int) string {
	n := s.w.size
	if nb > s.w.cfg.BcastLongBytes && n > 2 {
		block := (nb + n - 1) / n
		s.replayScatter(block)
		s.replayAllgather(block)
		return "vandegeijn"
	}
	s.replayBcastBinomial(nb)
	return "binomial"
}

// replayAllgather mirrors allgatherImpl: recursive doubling for small
// blocks on power-of-two worlds, the ring otherwise. Each round's sends
// all precede its receives — every rank's program is send-then-recv, so
// the round's post times are complete before any rank matches.
func (s *vecReplay) replayAllgather(m int) string {
	n := s.w.size
	if n&(n-1) == 0 && m <= s.w.cfg.AllgatherSwitchBytes {
		for mask := 1; mask < n; mask <<= 1 {
			run := mask * m
			for j := 0; j < n; j++ {
				s.post[j] = s.send(j, run)
			}
			for j := 0; j < n; j++ {
				s.recv(j, run, s.post[j^mask])
			}
		}
		return "rd"
	}
	for step := 0; step < n-1; step++ {
		for j := 0; j < n; j++ {
			s.post[j] = s.send(j, m)
		}
		for j := 0; j < n; j++ {
			s.recv(j, m, s.post[(j-1+n)%n])
		}
	}
	return "ring"
}

// replayRDAllreduce replays the power-of-two recursive-doubling
// Allreduce of nb bytes.
func (s *vecReplay) replayRDAllreduce(nb int) {
	n := s.w.size
	for mask := 1; mask < n; mask <<= 1 {
		for j := 0; j < n; j++ {
			s.post[j] = s.send(j, nb)
		}
		for j := 0; j < n; j++ {
			s.recv(j, nb, s.post[j^mask])
		}
	}
}

// replayAlltoall replays the pairwise exchange of block-byte payloads.
func (s *vecReplay) replayAlltoall(block int) {
	n := s.w.size
	for step := 1; step < n; step++ {
		for j := 0; j < n; j++ {
			s.post[j] = s.send(j, block)
		}
		for j := 0; j < n; j++ {
			s.recv(j, block, s.post[(j-step+n)%n])
		}
	}
}

// replayPair replays one id^1 Sendrecv exchange (even-size worlds).
func (s *vecReplay) replayPair(bytes int, bytesPer []int) {
	n := s.w.size
	for j := 0; j < n; j++ {
		s.post[j] = s.send(j, stepRankBytes(j, bytes, bytesPer))
	}
	for j := 0; j < n; j++ {
		s.recv(j, stepRankBytes(j^1, bytes, bytesPer), s.post[j^1])
	}
}

// replayShift replays one ring Sendrecv exchange at the given shift:
// rank j sends its payload to (j+shift)%n and receives the payload
// rank (j-shift+n)%n posted at the same program point.
func (s *vecReplay) replayShift(shift int, bytes int, bytesPer []int) {
	n := s.w.size
	for j := 0; j < n; j++ {
		s.post[j] = s.send(j, stepRankBytes(j, bytes, bytesPer))
	}
	for j := 0; j < n; j++ {
		src := (j - shift + n) % n
		s.recv(j, stepRankBytes(src, bytes, bytesPer), s.post[src])
	}
}

// stepRankBytes resolves rank j's payload size for a Pair/Ring step.
func stepRankBytes(j, bytes int, bytesPer []int) int {
	if bytesPer != nil {
		return bytesPer[j%len(bytesPer)]
	}
	return bytes
}

// replayOp replays one collective, mirroring the engine's algorithm
// selection, and returns the algorithm name. ok is false for kinds the
// vector replay does not price (Pair/Ring/Compute take replayStep).
func (s *vecReplay) replayOp(kind CollectiveKind, msgBytes int) (string, bool) {
	switch kind {
	case BcastKind:
		return s.replayBcast(msgBytes), true
	case AllreduceKind:
		elems := msgBytes / 8
		if elems < 1 {
			elems = 1
		}
		nb := 8 * elems
		if n := s.w.size; n&(n-1) == 0 {
			s.replayRDAllreduce(nb)
			return "rd", true
		}
		s.replayReduce(nb)
		s.replayBcast(nb)
		return "reduce+bcast", true
	case AllgatherKind:
		return s.replayAllgather(msgBytes), true
	case AlltoallKind:
		s.replayAlltoall(msgBytes)
		return "pairwise", true
	default:
		return "", false
	}
}

// replayStep replays one script step. The caller has already verified
// the step is vector-replayable (vecRepeatSeq).
func (s *vecReplay) replayStep(st SeqStep) {
	n := s.w.size
	if st.ComputePer != nil {
		L := len(st.ComputePer)
		for j := 0; j < n; j++ {
			if c := st.ComputePer[j%L]; c > 0 {
				s.t[j] += c
			}
		}
	} else if st.Compute > 0 {
		for j := 0; j < n; j++ {
			s.t[j] += st.Compute
		}
	}
	switch st.Kind {
	case ComputeStep:
	case PairKind:
		s.replayPair(st.Bytes, st.BytesPer)
	case RingKind:
		s.replayShift(seqShift(st, n), st.Bytes, st.BytesPer)
	default:
		s.replayOp(st.Kind, st.Bytes)
	}
}

// seqShift resolves a RingKind step's effective shift: Shift modulo the
// world size, shifting by one when that is zero (a rank never exchanges
// with itself) — the same normalization seqBody applies.
func seqShift(st SeqStep, n int) int {
	sh := st.Shift % n
	if sh == 0 {
		sh = 1
	}
	return sh
}

// vecRepeatOp prices iters identical collectives whose algorithm the
// scalar replay refuses (binomial Bcast, the non-power-of-two
// reduce+bcast Allreduce) with the full clock vector. The caller has
// already checked repeatable().
func (w *World) vecRepeatOp(kind CollectiveKind, msgBytes, iters int) (vclock.Time, bool) {
	switch kind {
	case BcastKind, AllreduceKind, AllgatherKind, AlltoallKind:
	default:
		return 0, false
	}
	s := newVecReplay(w)
	var algo string
	for i := 0; i < iters; i++ {
		algo, _ = s.replayOp(kind, msgBytes)
	}
	if w.cfg.Tracer != nil {
		w.traceVecRepeat(fmt.Sprintf("%s[%s] x%d", kind, algo, iters), s)
	}
	return s.makespan(), true
}

// vecRepeatSeq replays a script whose steps break the scalar symmetry
// (per-rank compute, per-rank payload sizes, asymmetric collectives)
// but stay within the vector replay's reach. The caller has already
// checked repeatable().
func (w *World) vecRepeatSeq(steps []SeqStep, iters int) (vclock.Time, bool) {
	for _, st := range steps {
		switch st.Kind {
		case ComputeStep, BcastKind, AllreduceKind, AllgatherKind, AlltoallKind, RingKind:
		case PairKind:
			if w.size%2 != 0 {
				return 0, false
			}
		default:
			return 0, false
		}
	}
	s := newVecReplay(w)
	for i := 0; i < iters; i++ {
		for _, st := range steps {
			s.replayStep(st)
		}
	}
	if w.cfg.Tracer != nil {
		w.traceVecRepeat(fmt.Sprintf("seq x%d", iters), s)
	}
	return s.makespan(), true
}

// traceVecRepeat records the replayed batch as one aggregated span plus
// the world-wide counters a full run would have accumulated. Unlike
// traceRepeat, the vector replay's counters already cover every rank.
func (w *World) traceVecRepeat(name string, s *vecReplay) {
	tr := w.cfg.Tracer
	if tr == nil {
		return
	}
	track := w.cfg.TraceLabel
	if track == "" {
		track = "repeat"
	}
	tr.Span(track, simtrace.CatMPI, name, 0, s.makespan(), s.bytes)
	tr.Count(simtrace.CatMPI, "messages", s.msgs)
	tr.Count(simtrace.CatMPI, "bytes", s.bytes)
}
