package simmpi

import "maia/internal/bufpool"

// payloadPool and f64Pool recycle the transport's transient buffers:
// every send copies its payload into a pooled buffer, and the
// collectives return their receive-side scratch as soon as the bytes
// are copied out. Pooling is host-memory bookkeeping only — message
// lengths, matching order, and every virtual-time number are identical
// with the pool hot, cold, or collected.
var (
	payloadPool bufpool.Pool[byte]
	f64Pool     bufpool.Pool[float64]
)

// Recycle returns a payload buffer to the transport's free list. Use
// it on buffers whose lifetime has ended: a Recv/Sendrecv/Wait result
// after its contents are consumed, or a collective's returned buffer.
// Recycling is always optional (unrecycled buffers are simply garbage
// collected) and safe on nil or foreign slices, but the caller must
// not touch the slice afterwards.
func Recycle(buf []byte) { payloadPool.Put(buf) }

// RecycleF64 is Recycle for float64 buffers returned by Reduce,
// Allreduce, and friends.
func RecycleF64(vec []float64) { f64Pool.Put(vec) }

// GetPayload hands out an n-byte buffer from the transport's free list
// with unspecified contents — scratch for communication-pattern scripts
// whose payload bytes are never read (pair with Recycle).
func GetPayload(n int) []byte { return payloadPool.Get(n) }
