// Package simmpi is a virtual-time MPI runtime. Ranks are goroutines that
// exchange real bytes through a deterministic matching engine; every
// transfer is charged virtual time from a LogGP-style cost model over the
// modeled fabrics:
//
//   - intra-host: shared-memory transport between Sandy Bridge cores;
//   - intra-Phi: shared-memory transport between Phi cores, whose
//     latency and bandwidth degrade sharply as hardware threads per core
//     grow (the paper's Figure 10: one thread per core is best for
//     communication-dominant code);
//   - host<->Phi and Phi<->Phi: the PCIe DAPL stacks of package pcie,
//     pre- or post-update.
//
// Collective operations (Bcast, Reduce, Allreduce, Allgather, Alltoall,
// Barrier) are implemented on top of point-to-point messages with the
// classic algorithms real MPI libraries use, including size-based
// algorithm switching — which is what produces the abrupt step the paper
// observes in MPI_Allgather at 2–4 KB (Figure 13).
//
// Virtual time is deterministic: it depends only on the program and the
// machine model, never on the Go scheduler.
package simmpi

import (
	"fmt"
	"sync"

	"maia/internal/machine"
	"maia/internal/pcie"
	"maia/internal/simfault"
	"maia/internal/simtrace"
	"maia/internal/vclock"
)

// Location places one rank on the cluster.
type Location struct {
	Device machine.Device
	// ThreadsPerCore is the hardware-thread oversubscription of the
	// rank's core (1–4 on the Phi, 1–2 on the host). It sets the
	// intra-device transport parameters.
	ThreadsPerCore int
	// Node is the cluster node index; ranks on different nodes
	// communicate over the FDR InfiniBand fabric (used by the paper's
	// host1+host2 comparison in Section 6.9.1.3).
	Node int
}

// Config describes a world of ranks.
type Config struct {
	// Ranks places each rank; len(Ranks) is the world size.
	Ranks []Location
	// Stack is the PCIe software environment used for cross-device
	// messages. Defaults to the post-update stack.
	Stack *pcie.Stack
	// EagerMaxBytes is the intra-device eager/rendezvous threshold.
	// Zero selects the 8 KB default.
	EagerMaxBytes int
	// AllgatherSwitchBytes is the per-rank message size above which
	// Allgather switches from recursive doubling to the ring algorithm
	// (the Figure 13 jump). Zero selects the 2 KB default.
	AllgatherSwitchBytes int
	// BcastLongBytes is the payload size above which Bcast switches
	// from the binomial tree to van de Geijn scatter+allgather. Zero
	// selects the 512 KB default.
	BcastLongBytes int
	// Tracer, when non-nil, records a virtual-time span per MPI
	// operation (named with the algorithm actually chosen, e.g.
	// "MPI_Allgather[ring]"), per transport flight (category "pcie",
	// named by fabric), and per sender-side injection, plus
	// message/byte/barrier counters. Nil disables tracing at zero cost.
	Tracer *simtrace.Tracer
	// TraceLabel prefixes the per-rank track names ("label/rank3"), so
	// several worlds can share one tracer without track collisions.
	TraceLabel string
	// SizeOnlyPayloads declares that the world's rank bodies never read
	// message contents — only sizes matter. The transport then skips
	// copying (and zeroing) payload bytes: every message and collective
	// result keeps its exact byte length, but the contents are
	// unspecified. All virtual times, profiles, and trace records derive
	// from lengths alone, so modeled results are identical to a
	// content-preserving run. Communication-pattern scripts (the NPB MPI
	// driver, the IMB-style micro-benchmarks) run in this mode.
	SizeOnlyPayloads bool
	// Faults, when non-nil, is the deterministic fault plan the world
	// runs under: straggler/throttle compute derating and lossy-fabric
	// flight derating with virtual-time delivery deadlines, retransmits,
	// and exponential backoff. All waiting is charged to the virtual
	// clock, never wall clock. Nil (or an empty plan) is the healthy
	// machine and leaves every modeled number bit-identical.
	Faults *simfault.Plan
	// Fabric, when non-nil, prices inter-node messages over the rack's
	// hypercube topology (hop-count latency and bandwidth derating)
	// instead of the flat single-hop constants. When the placement is
	// node-major (rank i on node i/perNode, equal blocks, >= 2 nodes)
	// the world additionally becomes two-level: collectives decompose
	// into an intra-node phase, an inter-node phase among node leaders,
	// and an intra-node distribution phase (see hier.go). Nil keeps the
	// single-node model and the legacy flat two-host constants.
	Fabric *machine.InterNodeFabric
}

// Option adjusts a Config at world construction. Options are the one
// idiom for attaching cross-cutting concerns (tracing, fault plans, the
// PCIe software stack) across the simulated runtimes: simmpi.NewWorld,
// simomp.New, offload.NewEngine, and harness.DefaultEnv all accept the
// same shape.
type Option func(*Config)

// WithTracer attaches a simtrace tracer, with the track-name prefix the
// world's per-rank tracks appear under ("label/rank3"). A nil tracer
// leaves tracing off at zero cost.
func WithTracer(t *simtrace.Tracer, label string) Option {
	return func(c *Config) {
		c.Tracer = t
		c.TraceLabel = label
	}
}

// WithFaultPlan runs the world under a deterministic fault plan. A nil
// plan injects nothing.
func WithFaultPlan(p *simfault.Plan) Option {
	return func(c *Config) { c.Faults = p }
}

// WithStack selects the PCIe software environment for cross-device
// messages.
func WithStack(s *pcie.Stack) Option {
	return func(c *Config) { c.Stack = s }
}

// WithFabric attaches the rack-level interconnect model: inter-node
// messages are then priced by hypercube hop count, and node-major worlds
// run hierarchical collectives. A nil fabric keeps the single-node model.
func WithFabric(f *machine.InterNodeFabric) Option {
	return func(c *Config) { c.Fabric = f }
}

// HostPlacement places n ranks on the host at the given threads per core.
func HostPlacement(n, threadsPerCore int) []Location {
	locs := make([]Location, n)
	for i := range locs {
		locs[i] = Location{Device: machine.Host, ThreadsPerCore: threadsPerCore}
	}
	return locs
}

// PhiPlacement places n ranks on a Phi at the given threads per core.
func PhiPlacement(dev machine.Device, n, threadsPerCore int) []Location {
	locs := make([]Location, n)
	for i := range locs {
		locs[i] = Location{Device: dev, ThreadsPerCore: threadsPerCore}
	}
	return locs
}

// RackPlacement places nodes x perNode ranks node-major: rank i lives on
// node i/perNode, all on the same device at the given threads per core.
// Pair it with WithFabric to build a two-level rack world.
func RackPlacement(dev machine.Device, nodes, perNode, threadsPerCore int) []Location {
	locs := make([]Location, nodes*perNode)
	for i := range locs {
		locs[i] = Location{Device: dev, ThreadsPerCore: threadsPerCore, Node: i / perNode}
	}
	return locs
}

// ReplicateNodes tiles one node's rank layout across nodes, node-major:
// rank i is nodeLocs[i%len(nodeLocs)] placed on node i/len(nodeLocs).
// Use it for mixed host+Phi per-node layouts at rack scale.
func ReplicateNodes(nodeLocs []Location, nodes int) []Location {
	per := len(nodeLocs)
	locs := make([]Location, nodes*per)
	for i := range locs {
		l := nodeLocs[i%per]
		l.Node = i / per
		locs[i] = l
	}
	return locs
}

// intraParams returns the LogGP parameters (one-way latency, bandwidth in
// GB/s) for messages between two ranks on the same device, calibrated to
// Figure 10: the host transport, and the Phi transport at 1–4 threads per
// core.
func intraParams(dev machine.Device, tpc int) (alpha vclock.Time, gbs float64) {
	if !dev.IsPhi() {
		return 0.4 * vclock.Microsecond, 5.0
	}
	switch {
	case tpc <= 1:
		return 1.0 * vclock.Microsecond, 3.85
	case tpc == 2:
		return 3.6 * vclock.Microsecond, 1.6
	case tpc == 3:
		return 9.0 * vclock.Microsecond, 0.62
	default:
		return 21.6 * vclock.Microsecond, 0.21
	}
}

// pciePath maps a device pair to its PCIe path.
func pciePath(a, b machine.Device) pcie.Path {
	switch {
	case a == machine.Phi0 && b == machine.Phi1,
		a == machine.Phi1 && b == machine.Phi0:
		return pcie.Phi0Phi1
	case a == machine.Phi1 || b == machine.Phi1:
		return pcie.HostPhi1
	default:
		return pcie.HostPhi0
	}
}

// message is one in-flight point-to-point message.
type message struct {
	tag  int
	data []byte
	// sendTime is the sender's virtual clock when the send was posted.
	sendTime vclock.Time
	// seq is the sender's program-order send number, identifying the
	// message for seeded fault decisions.
	seq int
}

// mailbox is one rank's incoming-message store: a FIFO queue per source.
// Each receiver owns its mailbox, so a send wakes only its destination.
type mailbox struct {
	mu       sync.Mutex
	cond     *sync.Cond
	bySrc    map[int][]message
	poisoned bool
}

func newMailbox() *mailbox {
	b := &mailbox{bySrc: make(map[int][]message)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// World is one MPI job: a set of ranks, the matching engine, and the
// fabric model.
type World struct {
	cfg  Config
	size int

	boxes []*mailbox

	finalClocks []vclock.Time
	profiles    []RankProfile

	// tracks holds the precomputed per-rank tracer track names; nil
	// when tracing is off.
	tracks []string

	// faults caches the per-(src,dst) fabric fault (nil entries mean a
	// healthy pair); nil when the plan degrades no fabric, so the hot
	// path pays one nil check.
	faults []*simfault.FabricFault

	// rack is non-nil when a fabric is attached and the placement is
	// node-major: collectives then run hierarchically (see hier.go).
	rack *rackInfo
}

// NewWorld validates cfg, applies opts, and builds a world.
func NewWorld(cfg Config, opts ...Option) (*World, error) {
	for _, opt := range opts {
		opt(&cfg)
	}
	if len(cfg.Ranks) == 0 {
		return nil, fmt.Errorf("simmpi: empty world")
	}
	for i, l := range cfg.Ranks {
		if l.ThreadsPerCore < 1 {
			return nil, fmt.Errorf("simmpi: rank %d has %d threads per core", i, l.ThreadsPerCore)
		}
		if cfg.Fabric != nil && (l.Node < 0 || l.Node >= cfg.Fabric.Nodes) {
			return nil, fmt.Errorf("simmpi: rank %d on node %d outside the %d-node fabric",
				i, l.Node, cfg.Fabric.Nodes)
		}
	}
	if cfg.Stack == nil {
		cfg.Stack = pcie.NewStack(pcie.PostUpdate)
	}
	if cfg.EagerMaxBytes == 0 {
		cfg.EagerMaxBytes = 8 << 10
	}
	if cfg.AllgatherSwitchBytes == 0 {
		cfg.AllgatherSwitchBytes = 2 << 10
	}
	if cfg.BcastLongBytes == 0 {
		cfg.BcastLongBytes = 512 << 10
	}
	w := &World{
		cfg:         cfg,
		size:        len(cfg.Ranks),
		boxes:       make([]*mailbox, len(cfg.Ranks)),
		finalClocks: make([]vclock.Time, len(cfg.Ranks)),
		profiles:    make([]RankProfile, len(cfg.Ranks)),
	}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	w.rack = deriveRack(&cfg)
	if cfg.Tracer != nil {
		w.tracks = make([]string, w.size)
		for i := range w.tracks {
			if cfg.TraceLabel != "" {
				w.tracks[i] = fmt.Sprintf("%s/rank%d", cfg.TraceLabel, i)
			} else {
				w.tracks[i] = fmt.Sprintf("rank%d", i)
			}
		}
	}
	if cfg.Faults != nil && len(cfg.Faults.Fabrics) > 0 {
		// Resolve each rank pair's fabric fault once, up front: the
		// receive path then pays a slice load instead of a string match
		// per message.
		w.faults = make([]*simfault.FabricFault, w.size*w.size)
		for a := 0; a < w.size; a++ {
			for b := 0; b < w.size; b++ {
				if a == b {
					continue
				}
				if f, ok := cfg.Faults.Fabric(w.fabricName(a, b)); ok {
					fv := f
					w.faults[a*w.size+b] = &fv
				}
			}
		}
	}
	return w, nil
}

// fabricFault returns the fault entry degrading messages from rank a to
// rank b, or nil for a healthy pair.
func (w *World) fabricFault(a, b int) *simfault.FabricFault {
	if w.faults == nil {
		return nil
	}
	return w.faults[a*w.size+b]
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Run executes body once per rank, each on its own goroutine, and blocks
// until all ranks return. A panic in any rank is recovered and returned
// as an error (other ranks may then block forever in a real deadlock; Run
// unblocks them by poisoning the matching engine).
func (w *World) Run(body func(r *Rank)) (err error) {
	var wg sync.WaitGroup
	errs := make([]error, w.size)
	for id := 0; id < w.size; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := &Rank{id: id, w: w, tracer: w.cfg.Tracer}
			if w.tracks != nil {
				r.track = w.tracks[id]
			}
			r.prof.Rank = id
			defer func() {
				if p := recover(); p != nil {
					errs[id] = fmt.Errorf("simmpi: rank %d: %v", id, p)
					w.poison()
				}
				w.finalClocks[id] = r.clock.Now()
				w.profiles[id] = r.prof
			}()
			body(r)
		}(id)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// poison marks every mailbox dead so blocked receivers unwind instead of
// deadlocking when a rank has failed.
func (w *World) poison() {
	for _, b := range w.boxes {
		b.mu.Lock()
		b.poisoned = true
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

// MaxTime returns the latest rank clock after Run: the job's makespan.
func (w *World) MaxTime() vclock.Time {
	var m vclock.Time
	for _, c := range w.finalClocks {
		if c > m {
			m = c
		}
	}
	return m
}

// RankTime returns the final virtual clock of one rank after Run.
func (w *World) RankTime(id int) vclock.Time { return w.finalClocks[id] }

// fabricName names the transport a message from rank a to rank b rides,
// for flight spans: the span category is always "pcie" (the interconnect
// layer); the name identifies the actual fabric.
func (w *World) fabricName(a, b int) string {
	la, lb := w.cfg.Ranks[a], w.cfg.Ranks[b]
	switch {
	case la.Node != lb.Node:
		return "ib:fdr"
	case la.Device == lb.Device:
		if la.Device.IsPhi() {
			return "shm:phi"
		}
		return "shm:host"
	default:
		return "pcie:" + pciePath(la.Device, lb.Device).String()
	}
}

// transferCost returns (sendSideCost, flightTime, rendezvous) for a
// message of n bytes from rank a to rank b.
//
//   - sendSideCost is charged to the sender's clock (injection overhead
//     plus, for eager messages, the copy into the transport buffer);
//   - flightTime is the latency+bandwidth term from injection to delivery;
//   - rendezvous reports whether the receiver must synchronize with the
//     sender before the transfer starts.
func (w *World) transferCost(a, b int, n int) (sendSide, flight vclock.Time, rendezvous bool) {
	la, lb := w.cfg.Ranks[a], w.cfg.Ranks[b]
	rendezvous = n > w.cfg.EagerMaxBytes
	if la.Node != lb.Node {
		// Inter-node: 4x FDR InfiniBand. A Phi endpoint adds its PCIe
		// leg to reach the HCA. With a fabric attached the hypercube
		// hop count sets latency and derated bandwidth; without one the
		// legacy flat single-hop constants apply (which the fabric's
		// one-hop calibration reproduces exactly).
		alpha := 1.8 * vclock.Microsecond
		gbs := 5.8
		if f := w.cfg.Fabric; f != nil {
			hops := f.HopCount(la.Node, lb.Node)
			alpha = f.Alpha(hops)
			gbs = f.HopGBs(hops)
		}
		for _, l := range []Location{la, lb} {
			if l.Device.IsPhi() {
				path := pciePath(machine.Host, l.Device)
				alpha += w.cfg.Stack.Latency(path)
				if pathBW := w.cfg.Stack.Bandwidth(path, n); pathBW > 0 && pathBW < gbs {
					gbs = pathBW
				}
			}
		}
		flight = alpha + vclock.Time(float64(n)/(gbs*1e9))
		if rendezvous {
			flight += 2 * alpha
		}
		return alpha / 2, flight, rendezvous
	}
	if la.Device == lb.Device {
		tpc := la.ThreadsPerCore
		if lb.ThreadsPerCore > tpc {
			tpc = lb.ThreadsPerCore
		}
		alpha, gbs := intraParams(la.Device, tpc)
		bwTerm := vclock.Time(float64(n) / (gbs * 1e9))
		sendSide = alpha / 2
		if !rendezvous {
			sendSide += bwTerm
		}
		flight = alpha + bwTerm
		if rendezvous {
			flight += 2 * alpha // handshake round trip
		}
		return sendSide, flight, rendezvous
	}
	// Cross-device: the DAPL stack prices the whole transfer.
	path := pciePath(la.Device, lb.Device)
	flight = w.cfg.Stack.TransferTime(path, n)
	sendSide = w.cfg.Stack.Latency(path) / 2
	return sendSide, flight, rendezvous
}
