package simmpi

import (
	"fmt"

	"maia/internal/simtrace"
	"maia/internal/vclock"
)

// Nonblocking point-to-point operations. Send is already buffered (the
// MPI_Isend+internal-buffer semantics real codes rely on), so Isend is an
// alias that returns a completed request; Irecv posts a receive whose
// match is resolved at Wait, with the POST time (not the wait time)
// gating the rendezvous — which is exactly the overlap nonblocking
// receives buy on real machines.

// Request is a handle for a pending nonblocking operation.
type Request struct {
	rank *Rank
	// recv-side state; nil rank means already complete.
	src, tag int
	post     vclock.Time
	done     bool
	data     []byte
}

// Isend posts a buffered send and returns an already-complete request.
func (r *Rank) Isend(dst, tag int, data []byte) *Request {
	r.Send(dst, tag, data)
	return &Request{done: true}
}

// Irecv posts a receive. The returned request must be completed with
// Wait; the message may arrive (in virtual time) any time after this
// post.
func (r *Rank) Irecv(src, tag int) *Request {
	if src == r.id || src < 0 || src >= r.w.size {
		panic(fmt.Sprintf("simmpi: rank %d irecvs from invalid rank %d", r.id, src))
	}
	return &Request{rank: r, src: src, tag: tag, post: r.clock.Now()}
}

// Wait blocks until the request completes and returns the received
// payload (nil for sends).
func (req *Request) Wait() []byte {
	if req.done {
		return req.data
	}
	t0 := req.rank.clock.Now()
	req.data = req.rank.recvAt(req.src, req.tag, req.post)
	if !req.rank.inColl {
		req.rank.record("MPI_Wait", int64(len(req.data)), req.rank.clock.Now()-t0)
		req.rank.traceOp("MPI_Wait", int64(len(req.data)), t0)
	}
	req.done = true
	return req.data
}

// Waitall completes every request, returning the payloads in order.
func Waitall(reqs []*Request) [][]byte {
	out := make([][]byte, len(reqs))
	for i, req := range reqs {
		out[i] = req.Wait()
	}
	return out
}

// recvAt is recv with an explicit post time: the rendezvous (or eager
// arrival) is gated by when the receive was POSTED, so computation
// between Irecv and Wait overlaps the transfer.
//
// On a faulted fabric the delivery runs under a virtual-time deadline:
// each seeded drop costs the timeout plus an exponentially growing
// backoff before the retransmission, and the (derated) successful
// flight lands after the accumulated penalty. Everything is charged to
// the receiver's virtual clock — wall-clock behavior is unchanged.
func (r *Rank) recvAt(src, tag int, post vclock.Time) []byte {
	w := r.w
	box := w.boxes[r.id]
	box.mu.Lock()
	var msg message
	for {
		if box.poisoned {
			box.mu.Unlock()
			panic("world poisoned by a failed rank")
		}
		q := box.bySrc[src]
		found := -1
		for i, m := range q {
			if tag == AnyTag || m.tag == tag {
				found = i
				break
			}
		}
		if found >= 0 {
			msg = q[found]
			box.bySrc[src] = append(q[:found:found], q[found+1:]...)
			break
		}
		box.cond.Wait()
	}
	box.mu.Unlock()

	_, flight, rendezvous := w.transferCost(src, r.id, len(msg.data))
	start := msg.sendTime
	if rendezvous {
		start = vclock.Max(msg.sendTime, post)
	}
	if f := w.fabricFault(src, r.id); f != nil {
		flight = f.FlightTime(flight)
		if attempts := w.cfg.Faults.Attempts(*f, src, r.id, msg.seq); attempts > 1 {
			penalty := f.RetryPenalty(attempts)
			if r.tracer != nil {
				r.tracer.Span(r.track, simtrace.CatFault, "retry["+w.fabricName(src, r.id)+"]",
					start, start+penalty, int64(len(msg.data)))
				r.tracer.Count(simtrace.CatFault, "mpi_retries", int64(attempts-1))
			}
			start += penalty
		}
	}
	done := start + flight
	r.clock.AdvanceTo(done)
	if r.tracer != nil {
		r.tracer.Span(r.track, simtrace.CatPCIe, w.fabricName(src, r.id), start, done, int64(len(msg.data)))
	}
	return msg.data
}
