package simmpi

import (
	"testing"

	"maia/internal/machine"
	"maia/internal/vclock"
)

// Allocation-regression guards for the pooled send/recv path. The
// per-message steady-state cost with a recycling receiver is a handful
// of fixed-size bookkeeping allocations (the free-list boxes and the
// amortized mailbox slice growth); payload bytes themselves must come
// from the pool. A regression that reintroduces per-message payload
// allocation blows straight through these bounds.

// sendrecvWorldAllocs runs a 2-rank world exchanging msgs pooled
// messages of msgBytes each (receiver recycles) and returns the total
// allocation count of the world run.
func sendrecvWorldAllocs(t testing.TB, msgs, msgBytes int) float64 {
	payload := GetPayload(msgBytes)
	defer Recycle(payload)
	return testing.AllocsPerRun(3, func() {
		w, err := NewWorld(Config{Ranks: HostPlacement(2, 1)})
		if err != nil {
			t.Fatal(err)
		}
		err = w.Run(func(r *Rank) {
			if r.ID() == 0 {
				for k := 0; k < msgs; k++ {
					r.Send(1, 1, payload)
				}
			} else {
				for k := 0; k < msgs; k++ {
					Recycle(r.Recv(0, 1))
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestSendRecvPooledAllocBound pins the marginal allocations per pooled
// send/recv pair. The bound is deliberately loose (the true steady
// state is ~2: the two free-list boxes) so only a real regression —
// e.g. the payload copy buffer no longer pooling — trips it.
func TestSendRecvPooledAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; bound asserted in normal builds")
	}
	const msgBytes = 4096
	base := sendrecvWorldAllocs(t, 64, msgBytes)
	more := sendrecvWorldAllocs(t, 64+1024, msgBytes)
	perMsg := (more - base) / 1024
	if perMsg > 4 {
		t.Errorf("pooled send/recv allocates %.2f allocs/message, want <= 4", perMsg)
	}
}

// TestRepeatOpAllocsIndependentOfIters pins the closed-form replay's
// defining property: pricing 4096 collectives must not allocate more
// than pricing 4 (the replay is a scalar recurrence, not a message
// loop). This is the structural guarantee behind the fig13/fig14
// malloc reduction.
func TestRepeatOpAllocsIndependentOfIters(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; bound asserted in normal builds")
	}
	repeatAllocs := func(iters int) float64 {
		w, err := NewWorld(Config{Ranks: HostPlacement(4, 1)})
		if err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(5, func() {
			if _, ok := w.RepeatOp(AllgatherKind, 4096, iters); !ok {
				t.Fatal("fast path refused a symmetric Allgather")
			}
		})
	}
	var base, more float64
	withFastPath(func() { base, more = repeatAllocs(4), repeatAllocs(4096) })
	if more > base {
		t.Errorf("RepeatOp allocs grew with iters: %v at 4 iters, %v at 4096", base, more)
	}
}

// rackSeqAllocs prices a rack script on the hierarchical replay and
// returns the allocation count of the pricing alone (world construction
// excluded).
func rackSeqAllocs(t testing.TB, nodes, perNode, iters int) float64 {
	w, err := NewWorld(Config{
		Ranks:  RackPlacement(machine.Host, nodes, perNode, 1),
		Fabric: machine.NewRackFabric(nodes),
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := []SeqStep{
		{Compute: 3 * vclock.Microsecond, Kind: AllreduceKind, Bytes: 64},
		{Kind: AllgatherKind, Bytes: 256},
	}
	return testing.AllocsPerRun(5, func() {
		if _, ok := w.RepeatSeq(steps, iters); !ok {
			t.Fatal("rack replay refused a healthy power-of-two rack")
		}
	})
}

// TestRackReplayAllocsIndependentOfIters pins the hierarchical replay's
// defining property: pricing 4096 script iterations on a rack world
// must not allocate more than pricing 4. The replay's state is one
// clock vector allocated up front, not per-iteration messages.
func TestRackReplayAllocsIndependentOfIters(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; bound asserted in normal builds")
	}
	var base, more float64
	withFastPath(func() {
		base, more = rackSeqAllocs(t, 8, 4, 4), rackSeqAllocs(t, 8, 4, 4096)
	})
	if more > base {
		t.Errorf("rack replay allocs grew with iters: %v at 4 iters, %v at 4096", base, more)
	}
}

// TestRackReplayAllocsIndependentOfNodes pins the replay's scaling law:
// its state is O(ranks-per-node) — one representative node's clock
// vector — so pricing 64 nodes must not allocate more than pricing 2.
// This is what makes the full 128-node rack priceable in closed form.
func TestRackReplayAllocsIndependentOfNodes(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; bound asserted in normal builds")
	}
	var small, large float64
	withFastPath(func() {
		small, large = rackSeqAllocs(t, 2, 4, 16), rackSeqAllocs(t, 64, 4, 16)
	})
	if large > small {
		t.Errorf("rack replay allocs grew with node count: %v at 2 nodes, %v at 64", small, large)
	}
}

// BenchmarkSendRecvPooled is the -benchmem view of the same path: a
// 2-rank world streaming pooled messages with a recycling receiver.
func BenchmarkSendRecvPooled(b *testing.B) {
	b.ReportAllocs()
	payload := GetPayload(4096)
	defer Recycle(payload)
	for i := 0; i < b.N; i++ {
		w, err := NewWorld(Config{Ranks: HostPlacement(2, 1)})
		if err != nil {
			b.Fatal(err)
		}
		err = w.Run(func(r *Rank) {
			if r.ID() == 0 {
				for k := 0; k < 64; k++ {
					r.Send(1, 1, payload)
				}
			} else {
				for k := 0; k < 64; k++ {
					Recycle(r.Recv(0, 1))
				}
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
