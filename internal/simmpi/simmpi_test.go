package simmpi

import (
	"strings"
	"testing"

	"maia/internal/machine"
	"maia/internal/vclock"
)

func hostCfg(n int) Config {
	return Config{Ranks: HostPlacement(n, 1)}
}

func phiCfg(n, tpc int) Config {
	return Config{Ranks: PhiPlacement(machine.Phi0, n, tpc)}
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(Config{}); err == nil {
		t.Error("empty world accepted")
	}
	if _, err := NewWorld(Config{Ranks: []Location{{Device: machine.Host}}}); err == nil {
		t.Error("zero threads-per-core accepted")
	}
	w, err := NewWorld(hostCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 4 {
		t.Fatalf("Size() = %d", w.Size())
	}
}

func TestSendRecvRoundtrip(t *testing.T) {
	w, _ := NewWorld(hostCfg(2))
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, []byte("hello phi"))
		} else {
			got := r.Recv(0, 7)
			if string(got) != "hello phi" {
				panic("payload corrupted: " + string(got))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.MaxTime() <= 0 {
		t.Fatal("transfer consumed no virtual time")
	}
}

func TestSendBufferIsCopied(t *testing.T) {
	w, _ := NewWorld(hostCfg(2))
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			buf := []byte{1, 2, 3}
			r.Send(1, 0, buf)
			buf[0] = 99 // must not affect the in-flight message
			r.Send(1, 0, []byte{4})
		} else {
			if got := r.Recv(0, 0); got[0] != 1 {
				panic("send did not copy its buffer")
			}
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	w, _ := NewWorld(hostCfg(2))
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 1, []byte("first"))
			r.Send(1, 2, []byte("second"))
		} else {
			// Receive tag 2 first: matching must skip the tag-1 message.
			if got := r.Recv(0, 2); string(got) != "second" {
				panic("tag matching broken")
			}
			if got := r.Recv(0, AnyTag); string(got) != "first" {
				panic("AnyTag should find the remaining message")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPairFIFOOrder(t *testing.T) {
	w, _ := NewWorld(hostCfg(2))
	err := w.Run(func(r *Rank) {
		const k = 20
		if r.ID() == 0 {
			for i := 0; i < k; i++ {
				r.Send(1, 5, []byte{byte(i)})
			}
		} else {
			for i := 0; i < k; i++ {
				if got := r.Recv(0, 5); got[0] != byte(i) {
					panic("same-tag messages overtook each other")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankPanicsSurface(t *testing.T) {
	cases := []struct {
		name string
		body func(r *Rank)
	}{
		{"self send", func(r *Rank) { r.Send(r.ID(), 0, nil) }},
		{"bad dst", func(r *Rank) { r.Send(99, 0, nil) }},
		{"bad src", func(r *Rank) { r.Recv(-3, 0) }},
		{"negative tag", func(r *Rank) { r.Send((r.ID()+1)%2, -5, nil) }},
	}
	for _, c := range cases {
		w, _ := NewWorld(hostCfg(2))
		if err := w.Run(func(r *Rank) {
			if r.ID() == 0 {
				c.body(r)
			}
		}); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

// A failed rank must poison blocked receivers instead of deadlocking.
func TestPoisonUnblocksReceivers(t *testing.T) {
	w, _ := NewWorld(hostCfg(3))
	err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			panic("deliberate failure")
		default:
			r.Recv(0, 0) // would block forever without poisoning
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("err = %v, want the deliberate failure", err)
	}
}

// Virtual time is deterministic across runs despite goroutine scheduling.
func TestDeterministicTiming(t *testing.T) {
	run := func() vclock.Time {
		w, _ := NewWorld(phiCfg(16, 2))
		err := w.Run(func(r *Rank) {
			n := r.Size()
			payload := make([]byte, 1024)
			for i := 0; i < 10; i++ {
				r.Sendrecv((r.ID()+1)%n, 0, payload, (r.ID()-1+n)%n, 0)
				r.Allreduce([]float64{float64(r.ID())}, OpSum)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.MaxTime()
	}
	a := run()
	for i := 0; i < 5; i++ {
		if b := run(); b != a {
			t.Fatalf("run %d: MaxTime %v != %v", i, b, a)
		}
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	w, _ := NewWorld(hostCfg(1))
	err := w.Run(func(r *Rank) {
		r.Compute(3 * vclock.Millisecond)
		if r.Now() != 3*vclock.Millisecond {
			panic("clock wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.RankTime(0) != 3*vclock.Millisecond {
		t.Fatalf("RankTime = %v", w.RankTime(0))
	}
}

// Barrier: no rank leaves before the slowest arrives.
func TestBarrierSynchronizes(t *testing.T) {
	w, _ := NewWorld(hostCfg(8))
	slow := 500 * vclock.Microsecond
	err := w.Run(func(r *Rank) {
		if r.ID() == 3 {
			r.Compute(slow)
		}
		r.Barrier()
		if r.Now() < slow {
			panic("left the barrier before the slowest rank arrived")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Rendezvous semantics: a large message cannot be delivered before the
// receiver posts, and the sender's post time gates the transfer.
func TestRendezvousTiming(t *testing.T) {
	w, _ := NewWorld(hostCfg(2))
	big := make([]byte, 1<<20) // > 8 KB: rendezvous
	late := 2 * vclock.Millisecond
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, big)
		} else {
			r.Compute(late) // receiver posts late
			r.Recv(0, 0)
			if r.Now() <= late {
				panic("rendezvous transfer took no time after the post")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Eager message sent long before the recv is already there: the receive
// should complete at (almost) the receiver's post time.
func TestEagerOverlap(t *testing.T) {
	w, _ := NewWorld(hostCfg(2))
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, []byte{1}) // eager, in flight during the compute
		} else {
			r.Compute(vclock.Millisecond)
			before := r.Now()
			r.Recv(0, 0)
			if r.Now() != before {
				panic("eager message already delivered should cost nothing")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBytesF64Roundtrip(t *testing.T) {
	v := []float64{0, 1.5, -2.25, 1e300, -1e-300}
	got := bytesToF64(f64ToBytes(v))
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, got[i], v[i])
		}
	}
}

func TestSendrecvRing(t *testing.T) {
	w, _ := NewWorld(hostCfg(5))
	err := w.Run(func(r *Rank) {
		n := r.Size()
		got := r.Sendrecv((r.ID()+1)%n, 0, []byte{byte(r.ID())}, (r.ID()-1+n)%n, 0)
		if got[0] != byte((r.ID()-1+n)%n) {
			panic("ring exchange wrong neighbor data")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZeroByteMessages(t *testing.T) {
	w, _ := NewWorld(hostCfg(2))
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, nil)
		} else {
			if got := r.Recv(0, 0); len(got) != 0 {
				panic("zero-byte message grew")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCrossDevicePath(t *testing.T) {
	// One rank on the host, one on each Phi: messages must take the PCIe
	// paths with their distinct latencies.
	cfg := Config{Ranks: []Location{
		{Device: machine.Host, ThreadsPerCore: 1},
		{Device: machine.Phi0, ThreadsPerCore: 1},
		{Device: machine.Phi1, ThreadsPerCore: 1},
	}}
	w, _ := NewWorld(cfg)
	var t01, t02 vclock.Time
	err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 0, []byte{1})
			r.Send(2, 0, []byte{1})
		case 1:
			r.Recv(0, 0)
			t01 = r.Now()
		case 2:
			r.Recv(0, 0)
			t02 = r.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(t02 > t01) {
		t.Fatalf("host-Phi1 (%v) should be slower than host-Phi0 (%v)", t02, t01)
	}
	if t01 < 3*vclock.Microsecond {
		t.Fatalf("host-Phi0 delivery %v below PCIe latency", t01)
	}
}

func TestAlltoallFootprintModel(t *testing.T) {
	node := machine.NewNode()
	// Figure 14: 236 ranks on the 8 GB Phi run at 4 KB but not at 8 KB.
	if !AlltoallFeasible(machine.Phi0, node, 236, 4<<10) {
		t.Error("236 ranks at 4 KB should fit")
	}
	if AlltoallFeasible(machine.Phi0, node, 236, 8<<10) {
		t.Error("236 ranks at 8 KB should NOT fit")
	}
	// The host's 32 GB runs the full sweep with 16 ranks.
	if !AlltoallFeasible(machine.Host, node, 16, 4<<20) {
		t.Error("host at 4 MB should fit")
	}
	if AlltoallFootprint(2, 1024) <= 0 {
		t.Error("footprint must be positive")
	}
}

// Stress: a random mixture of point-to-point traffic and collectives on
// a mixed-device world neither deadlocks nor loses determinism.
func TestStressRandomTraffic(t *testing.T) {
	mk := func(seed uint64) vclock.Time {
		rng := vclock.NewRNG(seed)
		n := rng.Intn(6) + 3
		locs := make([]Location, n)
		for i := range locs {
			if rng.Intn(2) == 0 {
				locs[i] = Location{Device: machine.Host, ThreadsPerCore: 1}
			} else {
				locs[i] = Location{Device: machine.Phi0, ThreadsPerCore: rng.Intn(4) + 1}
			}
		}
		w, err := NewWorld(Config{Ranks: locs})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(func(r *Rank) {
			local := vclock.NewRNG(seed ^ uint64(r.ID()))
			for round := 0; round < 20; round++ {
				right := (r.ID() + 1) % n
				left := (r.ID() - 1 + n) % n
				size := local.Intn(32 << 10)
				// The ring pattern is symmetric, so sizes must agree
				// pairwise; derive from the round only.
				size = int(seed%7)*1024 + round
				r.Sendrecv(right, round, make([]byte, size), left, round)
				switch round % 4 {
				case 0:
					r.AllreduceSum(1)
				case 1:
					r.Allgather(make([]byte, round+1))
				case 2:
					r.Barrier()
				default:
					r.Bcast(0, make([]byte, 128))
				}
				_ = size
			}
		}); err != nil {
			t.Fatal(err)
		}
		return w.MaxTime()
	}
	for seed := uint64(1); seed <= 8; seed++ {
		a := mk(seed)
		if b := mk(seed); a != b {
			t.Fatalf("seed %d: nondeterministic makespan %v vs %v", seed, a, b)
		}
	}
}
