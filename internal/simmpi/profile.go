package simmpi

import (
	"fmt"
	"sort"
	"strings"

	"maia/internal/simtrace"
	"maia/internal/vclock"
)

// MPInside-style profiling (the paper's authors built and cite such a
// tool [29]): every rank records where its virtual time went — compute
// vs. each MPI function — plus call counts and byte volumes. Profiles
// are always collected; they cost a map update per operation.

// OpStats accumulates one operation kind on one rank.
type OpStats struct {
	Calls int
	Bytes int64
	Time  vclock.Time
}

// RankProfile is one rank's timeline summary.
type RankProfile struct {
	Rank    int
	Compute vclock.Time
	MPI     map[string]OpStats
}

// MPITime returns the rank's total time inside MPI operations.
func (p RankProfile) MPITime() vclock.Time {
	var t vclock.Time
	for _, s := range p.MPI {
		t += s.Time
	}
	return t
}

// Total returns compute plus MPI time.
func (p RankProfile) Total() vclock.Time { return p.Compute + p.MPITime() }

// record notes dt spent in op, moving `bytes`.
func (r *Rank) record(op string, bytes int64, dt vclock.Time) {
	if r.prof.MPI == nil {
		r.prof.MPI = make(map[string]OpStats)
	}
	s := r.prof.MPI[op]
	s.Calls++
	s.Bytes += bytes
	s.Time += dt
	r.prof.MPI[op] = s
}

// traceOp emits the mpi-category span of one completed MPI operation
// when tracing is on; a no-op (and allocation-free) otherwise.
func (r *Rank) traceOp(op string, bytes int64, t0 vclock.Time) {
	if r.tracer == nil {
		return
	}
	r.tracer.Span(r.track, simtrace.CatMPI, op, t0, r.clock.Now(), bytes)
}

// setAlgo notes the algorithm the outermost running collective chose
// ("rd", "ring", "binomial", ...); its span is named "op[algo]". Nested
// collectives (e.g. the Bcast inside a non-power-of-two Allreduce) do
// not overwrite the outer choice.
func (r *Rank) setAlgo(algo string) {
	if r.tracer != nil && r.collAlgo == "" {
		r.collAlgo = algo
	}
}

// collective wraps a collective implementation so its internal
// point-to-point traffic is attributed to the collective, not to
// MPI_Send/MPI_Recv.
func (r *Rank) collective(name string, bytes int64, body func()) {
	if r.inColl {
		body() // nested (e.g. Bcast inside Allreduce): outermost wins
		return
	}
	r.inColl = true
	r.collAlgo = ""
	t0 := r.clock.Now()
	body()
	r.inColl = false
	r.record(name, bytes, r.clock.Now()-t0)
	if r.tracer != nil {
		span := name
		if r.collAlgo != "" {
			span += "[" + r.collAlgo + "]"
		}
		r.traceOp(span, bytes, t0)
	}
}

// Profiles returns every rank's profile after Run.
func (w *World) Profiles() []RankProfile { return w.profiles }

// ProfileSummary aggregates rank profiles for reporting.
type ProfileSummary struct {
	Ranks          int
	MaxTotal       vclock.Time // the makespan
	MeanCompute    vclock.Time
	MaxCompute     vclock.Time
	MeanMPI        vclock.Time
	MaxMPI         vclock.Time
	ComputeBalance float64 // max/mean compute: 1.0 is perfect
}

// Summarize reduces the world's profiles.
func (w *World) Summarize() ProfileSummary {
	ps := w.Profiles()
	s := ProfileSummary{Ranks: len(ps)}
	if len(ps) == 0 {
		return s
	}
	var sumC, sumM vclock.Time
	for _, p := range ps {
		c, m := p.Compute, p.MPITime()
		sumC += c
		sumM += m
		if c > s.MaxCompute {
			s.MaxCompute = c
		}
		if m > s.MaxMPI {
			s.MaxMPI = m
		}
		if t := p.Total(); t > s.MaxTotal {
			s.MaxTotal = t
		}
	}
	s.MeanCompute = sumC / vclock.Time(len(ps))
	s.MeanMPI = sumM / vclock.Time(len(ps))
	if s.MeanCompute > 0 {
		s.ComputeBalance = s.MaxCompute.Seconds() / s.MeanCompute.Seconds()
	} else {
		s.ComputeBalance = 1
	}
	return s
}

// String renders the summary in one MPInside-like line.
func (s ProfileSummary) String() string {
	return fmt.Sprintf("ranks=%d makespan=%v compute(mean=%v max=%v balance=%.2f) mpi(mean=%v max=%v)",
		s.Ranks, s.MaxTotal, s.MeanCompute, s.MaxCompute, s.ComputeBalance, s.MeanMPI, s.MaxMPI)
}

// FormatProfile renders one rank's per-function table, functions sorted
// by time descending.
func FormatProfile(p RankProfile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rank %d: compute %v, MPI %v\n", p.Rank, p.Compute, p.MPITime())
	type row struct {
		name string
		s    OpStats
	}
	rows := make([]row, 0, len(p.MPI))
	for name, s := range p.MPI {
		rows = append(rows, row{name, s})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].s.Time != rows[j].s.Time {
			return rows[i].s.Time > rows[j].s.Time
		}
		return rows[i].name < rows[j].name
	})
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s calls=%-6d bytes=%-12d time=%v\n",
			r.name, r.s.Calls, r.s.Bytes, r.s.Time)
	}
	return b.String()
}
