package simmpi

import (
	"testing"

	"maia/internal/vclock"
)

func TestIsendIrecvRoundtrip(t *testing.T) {
	w, _ := NewWorld(hostCfg(2))
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			req := r.Isend(1, 3, []byte("async"))
			if got := req.Wait(); got != nil {
				panic("send request returned data")
			}
		} else {
			req := r.Irecv(0, 3)
			if string(req.Wait()) != "async" {
				panic("irecv payload wrong")
			}
			// Waiting twice is idempotent.
			if string(req.Wait()) != "async" {
				panic("second Wait lost the payload")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The whole point of Irecv: computation between post and Wait overlaps a
// rendezvous transfer, so posting early finishes earlier.
func TestIrecvOverlapsRendezvous(t *testing.T) {
	big := make([]byte, 4<<20)
	work := 10 * vclock.Millisecond

	run := func(early bool) vclock.Time {
		w, _ := NewWorld(hostCfg(2))
		var finish vclock.Time
		err := w.Run(func(r *Rank) {
			if r.ID() == 0 {
				r.Send(1, 0, big)
				return
			}
			if early {
				req := r.Irecv(0, 0)
				r.Compute(work)
				req.Wait()
			} else {
				r.Compute(work)
				r.Recv(0, 0)
			}
			finish = r.Now()
		})
		if err != nil {
			t.Fatal(err)
		}
		return finish
	}
	posted := run(true)
	blocked := run(false)
	if posted >= blocked {
		t.Fatalf("early post (%v) should beat late blocking recv (%v)", posted, blocked)
	}
}

func TestWaitall(t *testing.T) {
	w, _ := NewWorld(hostCfg(3))
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			var reqs []*Request
			reqs = append(reqs, r.Irecv(1, 0), r.Irecv(2, 0))
			got := Waitall(reqs)
			if got[0][0] != 1 || got[1][0] != 2 {
				panic("waitall order wrong")
			}
		} else {
			r.Send(0, 0, []byte{byte(r.ID())})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvValidation(t *testing.T) {
	w, _ := NewWorld(hostCfg(2))
	if err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Irecv(0, 0) // self
		}
	}); err == nil {
		t.Fatal("self irecv accepted")
	}
}

// Nonblocking ops preserve determinism.
func TestNonblockingDeterministic(t *testing.T) {
	run := func() vclock.Time {
		w, _ := NewWorld(hostCfg(4))
		if err := w.Run(func(r *Rank) {
			n := r.Size()
			req := r.Irecv((r.ID()-1+n)%n, 0)
			r.Isend((r.ID()+1)%n, 0, make([]byte, 100<<10))
			r.Compute(vclock.Millisecond)
			req.Wait()
		}); err != nil {
			t.Fatal(err)
		}
		return w.MaxTime()
	}
	a := run()
	for i := 0; i < 3; i++ {
		if b := run(); b != a {
			t.Fatalf("nondeterministic: %v vs %v", b, a)
		}
	}
}
