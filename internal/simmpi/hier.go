package simmpi

// Hierarchical collectives for two-level rack worlds. When a fabric is
// attached and the placement is node-major, Bcast / Allreduce /
// Allgather / Alltoall decompose into three phases:
//
//  1. intra-node: the node's ranks funnel their contribution to the
//     node leader (local rank 0) over the shared-memory transport;
//  2. inter-node: the leaders run the collective among themselves over
//     the hypercube fabric — recursive doubling, a Gray-code ring
//     (every step is one cube hop), or XOR-pairwise exchange, all of
//     which keep every round's hop count uniform across nodes;
//  3. intra-node: the leader distributes the result back down.
//
// This is how real MPI libraries behave on fat-node clusters, and it is
// what makes the rack replay (hierrepeat.go) possible: in a world of
// identical nodes every phase is symmetric per LOCAL rank index, so one
// representative node's clock vector reproduces all ~17k ranks bit for
// bit. Barrier, Reduce, Gather, and Scatter keep their flat algorithms
// (their traffic still rides the fabric-priced links).

// rackInfo marks a world as two-level: nodes x perNode ranks, node-major.
type rackInfo struct {
	nodes   int
	perNode int
}

// deriveRack detects the node-major layout: rank i on node i/perNode,
// equal per-node blocks, at least two nodes. Any other placement with a
// fabric attached stays flat (fabric-priced links, flat algorithms).
func deriveRack(cfg *Config) *rackInfo {
	if cfg.Fabric == nil {
		return nil
	}
	size := len(cfg.Ranks)
	nodes := cfg.Ranks[size-1].Node + 1
	if nodes < 2 || size%nodes != 0 {
		return nil
	}
	per := size / nodes
	for i, l := range cfg.Ranks {
		if l.Node != i/per {
			return nil
		}
	}
	return &rackInfo{nodes: nodes, perNode: per}
}

// Rack reports the world's two-level shape: (nodes, ranksPerNode, true)
// for a node-major fabric world, (0, 0, false) otherwise.
func (w *World) Rack() (nodes, perNode int, ok bool) {
	if w.rack == nil {
		return 0, 0, false
	}
	return w.rack.nodes, w.rack.perNode, true
}

// rackNode and rackLocal decompose a rank id; leaderOf names a node's
// leader rank. Only valid when w.rack != nil.
func (r *Rank) rackNode() int         { return r.id / r.w.rack.perNode }
func (r *Rank) rackLocal() int        { return r.id % r.w.rack.perNode }
func (r *Rank) leaderOf(node int) int { return node * r.w.rack.perNode }

// hierBcast is the two-level broadcast: root hands its payload to its
// node leader, the leaders run a binomial tree over the cube, and each
// leader runs a binomial tree down its node. Every rank but the root
// receives exactly once (the root's node rebroadcasts to the root too,
// keeping the local phase uniform).
func (r *Rank) hierBcast(root int, data []byte) []byte {
	R, N := r.w.rack.perNode, r.w.rack.nodes
	rootNode, rootLocal := root/R, root%R
	k, j := r.rackNode(), r.rackLocal()
	r.setAlgo("hier:binomial")
	// Phase 0: root -> its node leader.
	if rootLocal != 0 {
		if r.id == root {
			r.send(r.leaderOf(rootNode), tagHierUp, data)
		}
		if k == rootNode && j == 0 {
			data = r.recv(root, tagHierUp)
		}
	}
	// Phase 1: binomial over node leaders, rooted at rootNode.
	if j == 0 {
		rel := (k - rootNode + N) % N
		mask := 1
		for mask < N {
			if rel&mask != 0 {
				src := ((rel - mask) + rootNode) % N
				data = r.recv(r.leaderOf(src), tagHierInter)
				break
			}
			mask <<= 1
		}
		mask >>= 1
		for mask > 0 {
			if rel+mask < N {
				dst := ((rel + mask) + rootNode) % N
				r.send(r.leaderOf(dst), tagHierInter, data)
			}
			mask >>= 1
		}
	}
	// Phase 2: binomial from the leader down the node (local root 0).
	if R > 1 {
		mask := 1
		for mask < R {
			if j&mask != 0 {
				data = r.recv(r.id-mask, tagHierDown)
				break
			}
			mask <<= 1
		}
		mask >>= 1
		for mask > 0 {
			if j+mask < R {
				r.send(r.id+mask, tagHierDown, data)
			}
			mask >>= 1
		}
	}
	return data
}

// hierAllreduce reduces to the node leaders (binomial over local
// indices), allreduces among the leaders (recursive doubling on
// power-of-two node counts, reduce-then-bcast over the node tree
// otherwise), and broadcasts back down each node.
func (r *Rank) hierAllreduce(vec []float64, op Op) []float64 {
	R, N := r.w.rack.perNode, r.w.rack.nodes
	k, j := r.rackNode(), r.rackLocal()
	acc := f64Pool.Get(len(vec))
	copy(acc, vec)
	// Phase 1: binomial reduce to the node leader (local root 0).
	if R > 1 {
		mask := 1
		for mask < R {
			if j&mask != 0 {
				pb := r.packF64(acc)
				r.send(r.id-mask, tagHierUp, pb)
				Recycle(pb)
				RecycleF64(acc)
				acc = nil
				break
			}
			if j+mask < R {
				rb := r.recv(r.id+mask, tagHierUp)
				other := r.unpackF64(rb)
				Recycle(rb)
				r.combine(op, acc, other)
				RecycleF64(other)
			}
			mask <<= 1
		}
	}
	// Phase 2: leaders allreduce across the cube.
	if j == 0 {
		if N&(N-1) == 0 {
			r.setAlgo("hier:rd")
			for mask := 1; mask < N; mask <<= 1 {
				pk := k ^ mask
				pb := r.packF64(acc)
				r.send(r.leaderOf(pk), tagHierInter, pb)
				Recycle(pb)
				rb := r.recv(r.leaderOf(pk), tagHierInter)
				other := r.unpackF64(rb)
				Recycle(rb)
				// Fixed combine order by node id keeps every leader's
				// result identical (same rule as the flat rd).
				if k < pk {
					r.combine(op, acc, other)
					RecycleF64(other)
				} else {
					r.combine(op, other, acc)
					RecycleF64(acc)
					acc = other
				}
			}
		} else {
			r.setAlgo("hier:reduce+bcast")
			// Reduce up the node binomial tree to node 0's leader...
			mask := 1
			for mask < N {
				if k&mask != 0 {
					pb := r.packF64(acc)
					r.send(r.leaderOf(k-mask), tagHierInter, pb)
					Recycle(pb)
					RecycleF64(acc)
					acc = nil
					break
				}
				if k+mask < N {
					rb := r.recv(r.leaderOf(k+mask), tagHierInter)
					other := r.unpackF64(rb)
					Recycle(rb)
					r.combine(op, acc, other)
					RecycleF64(other)
				}
				mask <<= 1
			}
			// ...then binomial-bcast the result back to every leader.
			mask = 1
			for mask < N {
				if k&mask != 0 {
					rb := r.recv(r.leaderOf(k-mask), tagHierInter)
					acc = r.unpackF64(rb)
					Recycle(rb)
					break
				}
				mask <<= 1
			}
			mask >>= 1
			for mask > 0 {
				if k+mask < N {
					pb := r.packF64(acc)
					r.send(r.leaderOf(k+mask), tagHierInter, pb)
					Recycle(pb)
				}
				mask >>= 1
			}
		}
	}
	// Phase 3: binomial from the leader down the node.
	if R > 1 {
		mask := 1
		for mask < R {
			if j&mask != 0 {
				rb := r.recv(r.id-mask, tagHierDown)
				acc = r.unpackF64(rb)
				Recycle(rb)
				break
			}
			mask <<= 1
		}
		mask >>= 1
		for mask > 0 {
			if j+mask < R {
				pb := r.packF64(acc)
				r.send(r.id+mask, tagHierDown, pb)
				Recycle(pb)
			}
			mask >>= 1
		}
	}
	return acc
}

// hierAllgather gathers each node's blocks to its leader (linear), runs
// the allgather of node blocks among the leaders — recursive doubling
// while the node block fits the rd regime, otherwise a Gray-code ring
// whose every step is a single cube hop (plain ring on non-power-of-two
// node counts) — and broadcasts the assembled result down each node.
func (r *Rank) hierAllgather(block []byte) []byte {
	R, N := r.w.rack.perNode, r.w.rack.nodes
	k, j := r.rackNode(), r.rackLocal()
	n, m := r.w.size, len(block)
	sizeOnly := r.w.cfg.SizeOnlyPayloads
	out := payloadPool.Get(n * m)
	// Phase 1: linear gather to the leader.
	if R > 1 && j != 0 {
		r.send(r.leaderOf(k), tagHierUp, block)
	}
	if j == 0 {
		if !sizeOnly {
			copy(out[r.id*m:], block)
		}
		for src := 1; src < R; src++ {
			d := r.recv(r.id+src, tagHierUp)
			if !sizeOnly {
				copy(out[(r.id+src)*m:], d)
			}
			Recycle(d)
		}
	}
	// Phase 2: leaders exchange node blocks (R*m bytes each) across the
	// cube, assembling all n ranks' blocks in rank order.
	if j == 0 {
		nb := R * m
		switch {
		case N&(N-1) == 0 && nb <= r.w.cfg.AllgatherSwitchBytes:
			r.setAlgo("hier:rd")
			for mask := 1; mask < N; mask <<= 1 {
				pk := k ^ mask
				group := (k / mask) * mask
				pgroup := (pk / mask) * mask
				r.send(r.leaderOf(pk), tagHierInter, out[group*nb:(group+mask)*nb])
				inc := r.recv(r.leaderOf(pk), tagHierInter)
				if !sizeOnly {
					copy(out[pgroup*nb:(pgroup+mask)*nb], inc)
				}
				Recycle(inc)
			}
		case N&(N-1) == 0:
			// Gray-code ring: consecutive ring positions differ in one
			// address bit, so every step costs exactly one hop.
			r.setAlgo("hier:gray-ring")
			p := grayIndex(k)
			right := grayCode((p + 1) % N)
			left := grayCode((p - 1 + N) % N)
			cur := k
			for step := 0; step < N-1; step++ {
				r.send(r.leaderOf(right), tagHierInter, out[cur*nb:(cur+1)*nb])
				cur = grayCode((p - step - 1 + N) % N)
				d := r.recv(r.leaderOf(left), tagHierInter)
				if !sizeOnly {
					copy(out[cur*nb:(cur+1)*nb], d)
				}
				Recycle(d)
			}
		default:
			r.setAlgo("hier:ring")
			right := (k + 1) % N
			left := (k - 1 + N) % N
			cur := k
			for step := 0; step < N-1; step++ {
				r.send(r.leaderOf(right), tagHierInter, out[cur*nb:(cur+1)*nb])
				cur = (cur - 1 + N) % N
				d := r.recv(r.leaderOf(left), tagHierInter)
				if !sizeOnly {
					copy(out[cur*nb:(cur+1)*nb], d)
				}
				Recycle(d)
			}
		}
	}
	// Phase 3: binomial broadcast of the full result down the node.
	if R > 1 {
		mask := 1
		for mask < R {
			if j&mask != 0 {
				d := r.recv(r.id-mask, tagHierDown)
				if !sizeOnly {
					copy(out, d)
				}
				Recycle(d)
				break
			}
			mask <<= 1
		}
		mask >>= 1
		for mask > 0 {
			if j+mask < R {
				r.send(r.id+mask, tagHierDown, out)
			}
			mask >>= 1
		}
	}
	return out
}

// hierAlltoall funnels each node's full send buffers to the leader,
// exchanges aggregated R*R-block bundles between node pairs (XOR
// ordering on power-of-two node counts — step s costs popcount(s) hops
// uniformly — shifted pairs otherwise), and scatters each rank's
// received row back down the node. The inter-node phase moves R-times
// fewer, R^2-times larger messages than the flat pairwise exchange.
func (r *Rank) hierAlltoall(data []byte, blockBytes int) []byte {
	R, N := r.w.rack.perNode, r.w.rack.nodes
	k, j := r.rackNode(), r.rackLocal()
	n, m := r.w.size, blockBytes
	sizeOnly := r.w.cfg.SizeOnlyPayloads
	r.setAlgo("hier:pairwise")
	out := payloadPool.Get(n * m)
	// Phase 1: non-leaders ship their whole buffer to the leader.
	if j != 0 {
		r.send(r.leaderOf(k), tagHierUp, data)
		d := r.recv(r.leaderOf(k), tagHierDown)
		if !sizeOnly {
			copy(out, d)
		}
		Recycle(d)
		return out
	}
	// Leader: agg[localSrc][globalDst] holds the node's outgoing blocks.
	var agg []byte
	if R > 1 {
		agg = payloadPool.Get(R * n * m)
		if !sizeOnly {
			copy(agg[:n*m], data)
		}
		for src := 1; src < R; src++ {
			d := r.recv(r.id+src, tagHierUp)
			if !sizeOnly {
				copy(agg[src*n*m:(src+1)*n*m], d)
			}
			Recycle(d)
		}
	} else {
		agg = data
	}
	// res[localDst][globalSrc] accumulates the node's incoming blocks.
	res := payloadPool.Get(R * n * m)
	if !sizeOnly {
		for jj := 0; jj < R; jj++ {
			for l := 0; l < R; l++ {
				src := (k*R + jj) * m
				copy(res[l*n*m+src:l*n*m+src+m], agg[jj*n*m+(k*R+l)*m:jj*n*m+(k*R+l)*m+m])
			}
		}
	}
	// Phase 2: aggregated pairwise exchange across the cube. The wire
	// order of a bundle is [localSrc][localDst] blocks of m bytes.
	for step := 1; step < N; step++ {
		var dstNode, srcNode int
		if N&(N-1) == 0 {
			dstNode, srcNode = k^step, k^step
		} else {
			dstNode, srcNode = (k+step)%N, (k-step+N)%N
		}
		sb := payloadPool.Get(R * R * m)
		if !sizeOnly {
			for jj := 0; jj < R; jj++ {
				for l := 0; l < R; l++ {
					dst := (dstNode*R + l) * m
					copy(sb[(jj*R+l)*m:(jj*R+l+1)*m], agg[jj*n*m+dst:jj*n*m+dst+m])
				}
			}
		}
		r.send(r.leaderOf(dstNode), tagHierInter, sb)
		Recycle(sb)
		d := r.recv(r.leaderOf(srcNode), tagHierInter)
		if !sizeOnly {
			for jj := 0; jj < R; jj++ {
				for l := 0; l < R; l++ {
					src := (srcNode*R + jj) * m
					copy(res[l*n*m+src:l*n*m+src+m], d[(jj*R+l)*m:(jj*R+l+1)*m])
				}
			}
		}
		Recycle(d)
	}
	if R > 1 {
		Recycle(agg)
	}
	// Phase 3: linear scatter of each local rank's result row.
	if !sizeOnly {
		copy(out, res[:n*m])
	}
	for l := 1; l < R; l++ {
		r.send(r.id+l, tagHierDown, res[l*n*m:(l+1)*n*m])
	}
	Recycle(res)
	return out
}

// grayCode returns the i-th binary-reflected Gray code; grayIndex is its
// inverse.
func grayCode(i int) int { return i ^ (i >> 1) }

func grayIndex(g int) int {
	i := 0
	for b := g; b != 0; b >>= 1 {
		i ^= b
	}
	return i
}
